"""Property tests for the Fig. 2 BCN wire format.

Round-trip law: for any BCNMessage and any positive sigma quantum,
``unpack_bcn(pack_bcn(m))`` recovers the addresses, the EtherType, and
the FB field as the clamped quantized sigma — including at the signed
32-bit boundaries where the switch-side saturation engages.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.frames import BCN_ETHERTYPE, BCNMessage
from repro.simulation.wire import (
    FB_MAX,
    FB_MIN,
    WIRE_LENGTH_BYTES,
    pack_bcn,
    unpack_bcn,
)

# Ordinary sigmas plus values that land exactly on / beyond the signed
# 32-bit FB boundaries once quantized.
fb_values = st.one_of(
    st.floats(min_value=-1e12, max_value=1e12,
              allow_nan=False, allow_infinity=False),
    st.sampled_from([
        float(FB_MIN), float(FB_MIN) - 1.0, float(FB_MIN) + 1.0,
        float(FB_MAX), float(FB_MAX) + 1.0, float(FB_MAX) - 1.0,
        -0.0, 0.0, 0.5, -0.5,
    ]),
)

messages = st.builds(
    BCNMessage,
    da=st.integers(min_value=0, max_value=2**48 - 1),
    sa=st.just("sw"),
    cpid=st.text(min_size=1, max_size=24),
    fb=fb_values,
    q_off=st.just(0.0),
    q_delta=st.just(0.0),
    fb_raw=st.just(0.0),
)


@given(
    message=messages,
    switch_address=st.integers(min_value=0, max_value=2**48 - 1),
    sigma_quantum=st.floats(min_value=1e-6, max_value=1e6,
                            allow_nan=False, allow_infinity=False),
)
@settings(max_examples=200, deadline=None)
def test_pack_unpack_round_trip(message, switch_address, sigma_quantum):
    payload = pack_bcn(message, switch_address=switch_address,
                       sigma_quantum=sigma_quantum)
    assert len(payload) == WIRE_LENGTH_BYTES

    wire = unpack_bcn(payload)
    assert wire.da == message.da
    assert wire.sa == switch_address
    assert wire.ethertype == BCN_ETHERTYPE
    assert wire.is_bcn

    expected_fb = round(message.fb / sigma_quantum)
    expected_fb = max(FB_MIN, min(FB_MAX, expected_fb))
    assert wire.fb_quanta == expected_fb
    assert FB_MIN <= wire.fb_quanta <= FB_MAX
    assert wire.positive == (wire.fb_quanta > 0)


@given(message=messages)
@settings(max_examples=100, deadline=None)
def test_packing_is_deterministic_and_cpid_stable(message):
    a = pack_bcn(message)
    b = pack_bcn(message)
    assert a == b
    assert unpack_bcn(a).cpid == unpack_bcn(b).cpid


@given(fb=st.sampled_from([float(FB_MIN) * 3, float(FB_MAX) * 3]))
@settings(max_examples=10, deadline=None)
def test_fb_saturates_not_wraps(fb):
    wire = unpack_bcn(pack_bcn(BCNMessage(
        da=1, sa="sw", cpid="cp", fb=fb, q_off=0.0, q_delta=0.0,
        fb_raw=fb)))
    assert wire.fb_quanta in (FB_MIN, FB_MAX)
    # Sign is preserved by saturation.
    assert (wire.fb_quanta > 0) == (fb > 0)

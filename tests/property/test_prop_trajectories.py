"""Property-based tests for the closed-form trajectory machinery.

Random parameters and initial conditions; the invariants come straight
from the mathematics: the closed forms must satisfy their ODEs, crossing
solvers must land on their loci, extrema must be true extrema, and the
composed trajectory must be continuous across switches.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.eigen import eigenstructure
from repro.core.parameters import NormalizedParams
from repro.core.phase_plane import PhasePlaneAnalyzer
from repro.core.trajectories import linear_trajectory

# Keep magnitudes within a few orders so FP tolerances stay meaningful.
n_values = st.floats(min_value=0.05, max_value=50.0)
k_values = st.floats(min_value=0.05, max_value=5.0)
coords = st.floats(min_value=-50.0, max_value=50.0)
times = st.floats(min_value=0.0, max_value=20.0)


@given(n=n_values, k=k_values, x0=coords, y0=coords, t=times)
@settings(max_examples=150, deadline=None)
def test_closed_form_satisfies_ode(n, k, x0, y0, t):
    """x' = y and y' = -n x - k n y, checked by central differences."""
    assume(abs(x0) + abs(y0) > 1e-3)
    eig = eigenstructure(n, k)
    traj = linear_trajectory(eig, x0, y0)
    h = 1e-6 / max(1.0, k * n)
    assume(t - h >= 0.0)
    x_m, y_m = traj.state(t - h)
    x_0, y_0t = traj.state(t)
    x_p, y_p = traj.state(t + h)
    dx = (x_p - x_m) / (2 * h)
    dy = (y_p - y_m) / (2 * h)
    scale = max(abs(x_0), abs(y_0t), abs(x0), abs(y0), 1.0) * max(1.0, n * k, n)
    assert dx == pytest.approx(y_0t, abs=1e-3 * scale)
    assert dy == pytest.approx(-n * x_0 - k * n * y_0t, abs=1e-3 * scale)


@given(n=n_values, k=k_values, x0=coords, y0=coords)
@settings(max_examples=150, deadline=None)
def test_first_y_zero_really_zeroes_y(n, k, x0, y0):
    assume(abs(x0) + abs(y0) > 1e-3)
    traj = linear_trajectory(eigenstructure(n, k), x0, y0)
    t_star = traj.first_y_zero_time()
    if t_star is None:
        return
    _, y = traj.state(t_star)
    scale = max(abs(x0), abs(y0), 1.0)
    assert abs(y) < 1e-7 * scale * max(1.0, n)


@given(n=n_values, k=k_values, line_k=k_values, x0=coords, y0=coords)
@settings(max_examples=150, deadline=None)
def test_line_crossing_lands_on_line(n, k, line_k, x0, y0):
    assume(abs(x0) + abs(y0) > 1e-3)
    traj = linear_trajectory(eigenstructure(n, k), x0, y0)
    t_cross = traj.first_line_crossing_time(line_k)
    if t_cross is None:
        return
    x, y = traj.state(t_cross)
    scale = max(abs(x0), abs(y0), 1.0)
    assert abs(x + line_k * y) < 1e-6 * scale * (1.0 + line_k)


@given(n=n_values, k=k_values, x0=coords, y0=coords)
@settings(max_examples=100, deadline=None)
def test_extremum_bounds_neighbourhood(n, k, x0, y0):
    """The extremum dominates x in a neighbourhood of its time."""
    assume(abs(y0) > 1e-3)
    traj = linear_trajectory(eigenstructure(n, k), x0, y0)
    t_star = traj.first_y_zero_time()
    if t_star is None:
        return
    ext = traj.extremum_x()
    window = np.linspace(max(0.0, t_star * 0.9), t_star * 1.1, 41)
    xs = traj.states(window)[:, 0]
    tol = 1e-9 * max(abs(ext), 1.0)
    if y0 > 0:
        assert ext >= xs.max() - tol
    else:
        assert ext <= xs.min() + tol


@given(n=n_values, k=k_values, x0=coords, y0=coords, t=times)
@settings(max_examples=100, deadline=None)
def test_trajectories_decay_to_origin(n, k, x0, y0, t):
    """Both subsystems are asymptotically stable (Proposition 1):
    the state norm at large time is below its initial value."""
    assume(abs(x0) + abs(y0) > 1e-2)
    eig = eigenstructure(n, k)
    traj = linear_trajectory(eig, x0, y0)
    # pick a time several slowest-time-constants out
    slow = abs(max(eig.lambda1.real, eig.lambda2.real)) or 1.0
    t_far = 50.0 / slow
    x, y = traj.state(t_far)
    assert math.hypot(x, y) < 1e-6 * math.hypot(x0, y0) + 1e-9


@given(
    a=st.floats(min_value=0.1, max_value=30.0),
    b=st.floats(min_value=0.002, max_value=0.3),
    k=st.floats(min_value=0.05, max_value=2.0),
)
@settings(max_examples=60, deadline=None)
def test_composition_continuous_and_on_line(a, b, k):
    p = NormalizedParams(a=a, b=b, k=k, capacity=100.0, q0=10.0,
                         buffer_size=1e12)
    traj = PhasePlaneAnalyzer(p).compose(max_switches=12)
    for prev, nxt in zip(traj.segments, traj.segments[1:]):
        ex, ey = prev.end_state()
        sx, sy = nxt.start_state
        scale = max(abs(ex), abs(ey), 1.0)
        assert abs(ex - sx) < 1e-7 * scale
        assert abs(ey - sy) < 1e-7 * scale
    for _, x, y in traj.switch_states:
        assert abs(x + p.k * y) < 1e-6 * (abs(x) + p.k * abs(y) + 1.0)


@given(
    a=st.floats(min_value=0.1, max_value=30.0),
    b=st.floats(min_value=0.002, max_value=0.3),
    k=st.floats(min_value=0.05, max_value=2.0),
)
@settings(max_examples=60, deadline=None)
def test_composed_extrema_alternate_in_sign(a, b, k):
    p = NormalizedParams(a=a, b=b, k=k, capacity=100.0, q0=10.0,
                         buffer_size=1e12)
    traj = PhasePlaneAnalyzer(p).compose(max_switches=12)
    signs = [math.copysign(1.0, x) for _, x in traj.extrema if x != 0.0]
    assert all(s1 != s2 for s1, s2 in zip(signs, signs[1:]))

"""Differential property test: reference vs batched packet engine.

For random small dumbbells the two engines must agree on aggregate
behaviour.  Pointwise trajectory equality is not expected — the batched
engine applies control messages at window boundaries, so the two queue
sample paths decouple after a few control periods — but conservation
laws hold exactly and the summary statistics stay within a documented
tolerance:

* bottleneck utilisation within 5 percentage points;
* delivered bits within 5%;
* total BCN volume within 30% (plus a small absolute floor for sparse
  runs);
* both engines agree on whether the buffer ever dropped frames, to
  within a few frames.

Both engines use deterministic (counter-based) ``pm`` sampling so they
see the same sampling pattern.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import BCNParams
from repro.simulation.network import BCNNetworkSimulator

DURATION = 0.01


def _run(engine, *, n_flows, pm, q0_frames, gd_shift):
    params = BCNParams(
        capacity=1e9,
        n_flows=n_flows,
        q0=q0_frames * 12_000.0,
        buffer_size=8 * q0_frames * 12_000.0,
        w=2.0,
        pm=pm,
        gi=4.0,
        gd=2.0**-gd_shift,
        ru=8e6,
    )
    net = BCNNetworkSimulator(params, frame_bits=12_000, engine=engine)
    return net.run(DURATION)


@given(
    n_flows=st.integers(min_value=2, max_value=6),
    pm=st.sampled_from([0.05, 0.1, 0.2]),
    q0_frames=st.integers(min_value=20, max_value=120),
    gd_shift=st.integers(min_value=6, max_value=9),
)
@settings(max_examples=12, deadline=None)
def test_engines_agree_on_random_dumbbells(n_flows, pm, q0_frames, gd_shift):
    ref = _run("reference", n_flows=n_flows, pm=pm, q0_frames=q0_frames,
               gd_shift=gd_shift)
    bat = _run("batched", n_flows=n_flows, pm=pm, q0_frames=q0_frames,
               gd_shift=gd_shift)

    # Conservation invariants hold for each engine independently.
    for res in (ref, bat):
        assert res.queue.min() >= 0.0
        assert (res.t[1:] >= res.t[:-1]).all()
        assert 0.0 <= res.utilization() <= 1.0 + 1e-9
        assert res.delivered_bits <= res.capacity * res.duration * (1 + 1e-9)

    # Differential tolerances (see module docstring).
    assert abs(bat.utilization() - ref.utilization()) <= 0.05
    assert abs(bat.delivered_bits - ref.delivered_bits) <= (
        0.05 * max(ref.delivered_bits, 1.0)
    )
    ref_msgs = ref.bcn_negative + ref.bcn_positive
    bat_msgs = bat.bcn_negative + bat.bcn_positive
    assert abs(bat_msgs - ref_msgs) <= max(10, 0.3 * ref_msgs)
    assert abs(bat.dropped_frames - ref.dropped_frames) <= max(
        8, 0.25 * max(ref.dropped_frames, 1)
    )

"""Property tests for the scenario layer.

Four guarantees, each over randomly generated event schedules:

* **Totality** — any interleaving of arrivals, bursts, departures,
  outages and capacity changes runs to completion on both engines, with
  the queue bounded by the buffer and utilisation physically sane.
* **Conservation** — bits injected equal bits delivered + queued +
  dropped, up to the documented in-flight slack of
  ``(n_sources + 2) * frame_bits``.
* **Outage windows deliver nothing** — with a (single) outage in the
  schedule, delivered bits stay below the deliverable-bit integral
  ``∫C(t) dt`` with the outage window excluded, so a frozen port cannot
  smuggle bits out.  (Schedules with *overlapping* outages are only
  checked for totality: ``capacity_integral()`` deliberately
  double-subtracts the overlap, making the bound conservative-invalid.)
* **Permutation invariance** — a :class:`Scenario` built from any
  permutation of the same event set is the *same object* (canonical
  ordering), so engine results cannot depend on declaration order.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import BCNParams
from repro.scenarios import (
    CapacityChange,
    FlowArrival,
    FlowDeparture,
    IncastBurst,
    LinkOutage,
    Scenario,
    run_scenario,
)

DURATION = 0.008
FRAME_BITS = 12_000
N_BASE = 2


def _params():
    return BCNParams(
        capacity=1e9,
        n_flows=N_BASE,
        q0=1e6,
        buffer_size=4e6,
        w=2.0,
        pm=0.1,
        gi=4.0,
        gd=1 / 128,
        ru=8e6,
    )


_times = st.floats(min_value=0.0, max_value=0.9 * DURATION,
                   allow_nan=False, allow_infinity=False)
_demands = st.sampled_from([1e8, 2e8, 4e8])

_arrival = st.builds(
    FlowArrival,
    t=_times,
    demand=_demands,
    size_bits=st.one_of(
        st.none(),
        st.integers(min_value=4, max_value=15).map(
            lambda k: float(k * FRAME_BITS)),
    ),
)
_incast = st.builds(
    IncastBurst,
    t=_times,
    n_servers=st.integers(min_value=2, max_value=5),
    response_bits=st.integers(min_value=4, max_value=10).map(
        lambda k: float(k * FRAME_BITS)),
    demand=_demands,
)
_departure = st.builds(
    FlowDeparture, t=_times, address=st.integers(0, N_BASE - 1))
_outage = st.builds(
    LinkOutage,
    t=_times,
    duration=st.floats(min_value=2e-4, max_value=1.5e-3),
)
_capacity = st.builds(
    CapacityChange,
    t=_times,
    capacity=st.sampled_from([4e8, 6e8, 8e8, 1e9]),
)

_any_schedule = st.lists(
    st.one_of(_arrival, _incast, _departure, _outage, _capacity),
    max_size=6,
)


def _scenario(events, name="prop"):
    return Scenario(
        name=name,
        params=_params(),
        duration=DURATION,
        events=tuple(events),
        frame_bits=FRAME_BITS,
    )


def _outages(events):
    return [e for e in events if isinstance(e, LinkOutage)]


def _outages_overlap(events) -> bool:
    spans = sorted((e.t, e.t + e.duration) for e in _outages(events))
    return any(b0 > a1 for (a0, b0), (a1, b1) in zip(spans, spans[1:]))


@given(events=_any_schedule, engine=st.sampled_from(["reference", "batched"]))
@settings(max_examples=25, deadline=None)
def test_arbitrary_schedules_run_and_conserve(events, engine):
    result = run_scenario(_scenario(events), engine=engine)
    sim = result.sim

    # Physical sanity.
    assert sim.queue.min() >= 0.0
    assert sim.queue.max() <= _params().buffer_size * (1 + 1e-9)
    assert (sim.t[1:] >= sim.t[:-1]).all()
    assert sim.delivered_bits >= 0.0

    # Conservation up to in-flight slack.
    n_sources = sim.per_source_rate.size
    slack = (n_sources + 2) * FRAME_BITS
    assert abs(result.conservation_error()) <= slack

    # Deliverable-bit bound (single/no outage only; see module docstring).
    if not _outages_overlap(events):
        assert sim.delivered_bits <= (
            result.capacity_integral + 2 * FRAME_BITS)

    # Every harvested FCT is causal.
    for flow in result.flows:
        if flow.finish_time is not None:
            assert flow.finish_time >= flow.start_time
            assert flow.fct > 0.0


@given(
    outage=_outage,
    extra=st.lists(st.one_of(_arrival, _capacity), max_size=3),
    engine=st.sampled_from(["reference", "batched"]),
)
@settings(max_examples=20, deadline=None)
def test_outage_window_delivers_nothing(outage, extra, engine):
    result = run_scenario(_scenario([outage] + extra), engine=engine)
    # capacity_integral() excludes the outage window, so staying below
    # it (+ slack for the in-flight store-and-forward frame) proves no
    # new service started while the port was frozen.
    assert result.sim.delivered_bits <= (
        result.capacity_integral + 2 * FRAME_BITS)


@given(events=_any_schedule, data=st.data())
@settings(max_examples=50, deadline=None)
def test_event_order_permutation_invariant(events, data):
    shuffled = data.draw(st.permutations(events))
    assert _scenario(shuffled) == _scenario(events)


@given(events=st.lists(st.one_of(_arrival, _outage, _capacity), min_size=2,
                       max_size=4))
@settings(max_examples=8, deadline=None)
def test_permuted_schedules_run_bit_identically(events):
    forward = run_scenario(_scenario(events), engine="reference")
    backward = run_scenario(_scenario(list(reversed(events))),
                            engine="reference")
    assert forward.sim.delivered_bits == backward.sim.delivered_bits
    np.testing.assert_array_equal(forward.sim.queue, backward.sim.queue)
    assert forward.fcts == backward.fcts

"""Differential properties: batch RK4 kernel vs the solve_ivp reference.

The batch integrator (:mod:`repro.fluid.batch`) re-implements the
switched-fluid semantics of :func:`repro.fluid.integrate.simulate_fluid`
with a completely different numerical engine (fixed-step RK4 + Hermite
event refinement instead of per-segment adaptive ``solve_ivp``).  Random
parameters and initial conditions must therefore agree on everything the
analysis layer consumes:

* sampled states within the documented tolerance of the natural scales;
* identical switch counts, buffer-hit flags and end reasons;
* the batched Poincaré return map within tolerance of the scalar one.

Grazing geometries (trajectory tangent to a buffer level or barely
reaching the switching line) are `assume`-d away: there the *reference*
is itself event-order fragile, so no fixed tolerance is meaningful.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.limit_cycle import return_map
from repro.core.parameters import NormalizedParams
from repro.fluid.batch import (
    batch_return_map,
    default_time_step,
    simulate_fluid_batch,
)
from repro.fluid.integrate import simulate_fluid

#: Documented state tolerance relative to the natural scales (q0, C).
STATE_RTOL = 2e-3

n_values = st.floats(min_value=0.5, max_value=30.0)
k_values = st.floats(min_value=0.05, max_value=0.5)
cap_values = st.floats(min_value=20.0, max_value=200.0)
q0_values = st.floats(min_value=2.0, max_value=20.0)
buf_factors = st.floats(min_value=4.0, max_value=40.0)
x0_fracs = st.floats(min_value=-0.85, max_value=0.85)
y0_fracs = st.floats(min_value=-0.35, max_value=0.35)
modes = st.sampled_from(["nonlinear", "linearized", "physical"])


def make_params(n_inc, n_dec, k, capacity, q0, buf_factor):
    return NormalizedParams(
        a=n_inc,
        b=n_dec / capacity,
        k=k,
        capacity=capacity,
        q0=q0,
        buffer_size=buf_factor * q0,
    )


def not_grazing(traj, p):
    """Reject runs whose events sit too close to a tangency.

    Buffer crossings with ``|y|`` near zero and extrema near a buffer
    level are the geometries where event ordering depends on solver
    noise rather than on the dynamics.
    """
    x_full = p.buffer_size - p.q0
    x_empty = -p.q0
    for e in traj.events:
        if e.kind in ("buffer_full", "buffer_empty"):
            if abs(e.y) < 1e-3 * p.capacity:
                return False
        if e.kind == "extremum":
            gap = min(abs(e.x - x_full), abs(e.x - x_empty))
            if gap < 1e-3 * p.q0:
                return False
        if e.kind == "switch":
            # near-tangential line crossing: d(x+ky)/dt = y on the line
            if abs(e.y) < 1e-4 * p.capacity:
                return False
    return True


@given(
    n_inc=n_values,
    n_dec=n_values,
    k=k_values,
    capacity=cap_values,
    q0=q0_values,
    buf_factor=buf_factors,
    x0_frac=x0_fracs,
    y0_frac=y0_fracs,
    mode=modes,
)
@settings(max_examples=30, deadline=None)
def test_batch_matches_reference(
    n_inc, n_dec, k, capacity, q0, buf_factor, x0_frac, y0_frac, mode
):
    p = make_params(n_inc, n_dec, k, capacity, q0, buf_factor)
    x0 = x0_frac * p.q0
    y0 = y0_frac * p.capacity
    # a few hundred RK4 steps regardless of the natural rates
    t_max = 400.0 * default_time_step(p)

    ref = simulate_fluid(p, x0=x0, y0=y0, t_max=t_max, mode=mode,
                         max_switches=40)
    assume(not_grazing(ref, p))

    res = simulate_fluid_batch(p, np.array([x0]), np.array([y0]),
                               t_max=t_max, mode=mode, max_switches=40)
    tr = res.trajectory(0)

    assert int(res.switch_counts[0]) == len(ref.switch_times)
    assert tr.end_reason == ref.end_reason
    assert bool(res.hit_buffer_full()[0]) == ref.hit_buffer_full()
    assert bool(res.converged[0]) == ref.converged

    # Compare at the batch sample times: the batch node states are the
    # kernel's actual output, while interpolating the uniform batch grid
    # *across* a pinning corner would charge the kernel for the
    # comparison's own linear-interpolation error (~|y_pin| dt / 2).
    # The reference series has a node at every event, so interpolating
    # it at these times stays within one smooth piece.
    sel = tr.t <= min(ref.t[-1], tr.t[-1])
    tt = tr.t[sel]
    x_err = np.abs(np.interp(tt, ref.t, ref.x) - tr.x[sel])
    y_err = np.abs(np.interp(tt, ref.t, ref.y) - tr.y[sel])
    # tolerance scales: the larger of the natural scale and the actual
    # excursion of the reference orbit (|y0| >> q0*sqrt(n) drives x far
    # beyond q0, and errors are relative to amplitude, not to q0)
    x_scale = max(p.q0, float(np.abs(ref.x).max()),
                  p.k * float(np.abs(ref.y).max()))
    y_scale = max(p.capacity, float(np.abs(ref.y).max()))
    assert x_err.max() <= STATE_RTOL * x_scale
    assert y_err.max() <= STATE_RTOL * y_scale


@given(
    n_inc=st.floats(min_value=1.0, max_value=20.0),
    n_dec=st.floats(min_value=1.0, max_value=20.0),
    k=st.floats(min_value=0.02, max_value=0.3),
    capacity=cap_values,
    q0=q0_values,
    y_frac=st.floats(min_value=0.05, max_value=0.7),
)
@settings(max_examples=15, deadline=None)
def test_batch_return_map_matches_scalar(
    n_inc, n_dec, k, capacity, q0, y_frac
):
    """Case-1 spiral pairs: the batched map tracks the scalar map."""
    p = make_params(n_inc, n_dec, k, capacity, q0, 40.0)
    # both regions must be spirals for the return map to exist
    assume(k * k * max(n_inc, n_dec) < 3.6)
    y = y_frac * p.capacity
    got = batch_return_map(p, np.array([y]))[0]
    want = return_map(p, y)
    assert got == pytest.approx(want, abs=1e-5 * p.capacity)


@given(mode=st.sampled_from(["nonlinear", "linearized"]))
@settings(max_examples=4, deadline=None)
def test_batch_ensemble_rows_equal_individual_runs(mode):
    """Row i of an ensemble equals the same start integrated alone."""
    p = NormalizedParams(a=2.0, b=0.02, k=0.1, capacity=100.0, q0=10.0,
                         buffer_size=200.0)
    x0 = np.array([-0.8, -0.3, 0.4]) * p.q0
    y0 = np.array([0.0, 0.2, -0.1]) * p.capacity
    batch = simulate_fluid_batch(p, x0, y0, t_max=8.0, mode=mode,
                                 max_switches=20)
    for i in range(x0.size):
        solo = simulate_fluid_batch(p, x0[i:i + 1], y0[i:i + 1], t_max=8.0,
                                    mode=mode, max_switches=20)
        np.testing.assert_allclose(batch.x[:, i], solo.x[:, 0], rtol=0,
                                   atol=1e-12 * p.q0)
        assert int(batch.switch_counts[i]) == int(solo.switch_counts[0])

"""Property-based tests for the observability layer.

Three algebraic contracts the rest of the PR leans on:

* **trace round trip** — ``write_trace`` then ``read_trace`` is lossless
  for arbitrary records (``None`` fields are omitted on disk and
  restored on read), so the JSONL export is a faithful serialisation;
* **histogram merge is associative and commutative** — bucket counts
  are integers, so folding worker histograms in any grouping/order
  gives identical counts (sums agree to float round-off);
* **registry merge is commutative across worker splits** — any split of
  one op stream over N simulated workers, folded back in any order,
  reproduces the single-process registry exactly (counter values,
  bucket counts) — the invariant that makes the pool's
  completion-order-dependent merge in ``run_sweep_parallel`` sound.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    EVENT_KINDS,
    Histogram,
    MetricsRegistry,
    TraceRecord,
    read_trace,
    write_trace,
)

_FINITE = st.floats(allow_nan=False, allow_infinity=False, width=32)

_RECORDS = st.builds(
    TraceRecord,
    kind=st.sampled_from(sorted(EVENT_KINDS)),
    t=_FINITE,
    engine=st.sampled_from(["", "fluid.reference", "fluid.batch",
                            "packet.reference", "packet.batched", "runner"]),
    node=st.none() | st.text(max_size=8),
    row=st.none() | st.integers(min_value=0, max_value=10_000),
    flow=st.none() | st.integers(min_value=0, max_value=10_000),
    value=st.none() | _FINITE,
    detail=st.text(max_size=16),
)

_EDGES = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=2, max_size=8, unique=True,
).map(sorted)

_VALUES = st.lists(st.floats(min_value=-1e9, max_value=1e9,
                             allow_nan=False), max_size=40)


@settings(max_examples=50, deadline=None)
@given(records=st.lists(_RECORDS, max_size=20),
       meta=st.dictionaries(st.sampled_from(["engine", "duration", "note"]),
                            st.text(max_size=8), max_size=2))
def test_trace_write_read_round_trip(tmp_path_factory, records, meta):
    path = tmp_path_factory.mktemp("trace") / "t.jsonl"
    write_trace(path, records, meta=meta)
    header, back = read_trace(path)
    assert back == records
    for key, value in meta.items():
        assert header[key] == value


@settings(max_examples=50, deadline=None)
@given(edges=_EDGES, a=_VALUES, b=_VALUES, c=_VALUES)
def test_histogram_merge_associative_and_commutative(edges, a, b, c):
    def hist(values):
        h = Histogram(edges)
        h.observe_many(values)
        return h

    left = hist(a)           # (a + b) + c
    left.merge(hist(b))
    left.merge(hist(c))

    bc = hist(b)             # a + (b + c)
    bc.merge(hist(c))
    right = hist(a)
    right.merge(bc)

    swapped = hist(c)        # (c + b) + a
    swapped.merge(hist(b))
    swapped.merge(hist(a))

    assert left.counts.tolist() == right.counts.tolist()
    assert left.counts.tolist() == swapped.counts.tolist()
    assert left.count == len(a) + len(b) + len(c)
    assert math.isclose(left.sum, right.sum, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(left.sum, swapped.sum, rel_tol=1e-9, abs_tol=1e-6)


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("inc"),
                  st.sampled_from(["events.bcn", "events.drop",
                                   "runner.evaluated"]),
                  st.integers(min_value=1, max_value=5)),
        st.tuples(st.just("observe"),
                  st.sampled_from(["queue_frac", "point_wall"]),
                  st.floats(min_value=-2.0, max_value=2.0,
                            allow_nan=False)),
    ),
    max_size=60,
)

_HIST_EDGES = {"queue_frac": (0.0, 0.5, 1.0), "point_wall": (0.0, 1.0)}


def _apply(registry, ops):
    for op in ops:
        if op[0] == "inc":
            registry.inc(op[1], op[2])
        else:
            registry.observe(op[1], op[2], _HIST_EDGES[op[1]])


@settings(max_examples=50, deadline=None)
@given(ops=_OPS,
       cuts=st.lists(st.integers(min_value=0, max_value=60), max_size=3),
       order=st.randoms(use_true_random=False))
def test_registry_merge_commutes_across_worker_splits(ops, cuts, order):
    serial = MetricsRegistry()
    _apply(serial, ops)

    # split the op stream over simulated workers at the random cuts
    bounds = sorted({min(c, len(ops)) for c in cuts} | {0, len(ops)})
    chunks = [ops[lo:hi] for lo, hi in zip(bounds, bounds[1:])]
    snapshots = []
    for chunk in chunks:
        worker = MetricsRegistry()
        _apply(worker, chunk)
        snapshots.append(worker.snapshot())

    order.shuffle(snapshots)  # pool futures complete in arbitrary order
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge_snapshot(snap)

    assert merged.counter_values() == serial.counter_values()
    assert set(merged.histograms) == set(serial.histograms)
    for name, hist in serial.histograms.items():
        assert merged.histograms[name].counts.tolist() == hist.counts.tolist()
        assert math.isclose(merged.histograms[name].sum, hist.sum,
                            rel_tol=1e-9, abs_tol=1e-9)

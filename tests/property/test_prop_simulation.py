"""Property-based tests for the DES substrate.

Conservation and ordering invariants that must hold for any workload:
frames in = frames out + dropped + resident; FIFO order preserved;
the event engine never runs time backwards; regulators stay in bounds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.engine import Simulator
from repro.simulation.frames import BCNMessage, EthernetFrame
from repro.simulation.queueing import DropTailQueue
from repro.simulation.source import RateRegulator
from repro.simulation.switch import CoreSwitch

frame_sizes = st.lists(st.integers(min_value=512, max_value=18000),
                       min_size=1, max_size=60)


@given(sizes=frame_sizes, capacity=st.integers(min_value=4000, max_value=60000))
@settings(max_examples=100, deadline=None)
def test_drop_tail_conservation(sizes, capacity):
    q = DropTailQueue(float(capacity))
    polls = 0
    for i, size in enumerate(sizes):
        q.offer(EthernetFrame(src=0, dst="sink", size_bits=size, flow_id=0))
        if i % 3 == 2:
            if q.poll() is not None:
                polls += 1
    assert q.conservation_holds()
    assert q.enqueued_frames == polls + len(q) + 0
    assert q.enqueued_frames + q.dropped_frames == len(sizes)
    assert q.occupancy_bits <= capacity


@given(sizes=frame_sizes)
@settings(max_examples=100, deadline=None)
def test_queue_fifo_order(sizes):
    q = DropTailQueue(1e12)
    for i, size in enumerate(sizes):
        q.offer(EthernetFrame(src=i, dst="sink", size_bits=size, flow_id=i))
    out = []
    while (f := q.poll()) is not None:
        out.append(f.src)
    assert out == sorted(out)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                       min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_engine_time_monotone(delays):
    sim = Simulator()
    seen = []
    for d in delays:
        sim.schedule(d, lambda: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


@given(
    fbs=st.lists(st.floats(min_value=-64.0, max_value=63.0), min_size=1,
                 max_size=50),
)
@settings(max_examples=100, deadline=None)
def test_regulator_rate_stays_in_bounds(fbs):
    reg = RateRegulator(gi=4.0, gd=1 / 128, ru=8e6, initial_rate=1e8,
                        min_rate=1e6, line_rate=1e9)
    for fb in fbs:
        reg.apply(BCNMessage(da=0, sa="s", cpid="s", fb=fb, q_off=0.0,
                             q_delta=0.0, fb_raw=fb))
        assert 1e6 <= reg.rate <= 1e9
    assert reg.updates_applied == len(fbs)


@given(
    n_frames=st.integers(min_value=1, max_value=120),
    pm=st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_switch_conserves_frames(n_frames, pm):
    sim = Simulator()
    forwarded = []
    switch = CoreSwitch(sim, cpid="c", capacity=1e6, q0=50000.0,
                        buffer_bits=200000.0, pm=pm,
                        forward=forwarded.append)
    for i in range(n_frames):
        switch.receive(EthernetFrame(src=0, dst="sink", size_bits=12000,
                                     flow_id=0))
    sim.run()
    dropped = switch.queue.dropped_frames
    assert len(forwarded) + dropped == n_frames
    assert switch.queue.is_empty
    # deterministic sampling fires floor-ish n_frames * pm times
    if pm < 1.0:
        assert switch.stats.samples <= n_frames

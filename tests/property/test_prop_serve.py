"""Property tests: job-key canonicalisation (repro.serve.jobs).

The dedup contract: *equivalent* submissions — reordered fields,
``4.0`` for ``4``, defaults elided versus spelled out, ``n_seeds``
sugar versus the explicit list — map to exactly one job key, and
*distinct* canonical requests never collide.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import PRESETS
from repro.serve import job_key, normalize_request
from repro.simulation.network import PACKET_ENGINES

PRESET_NAMES = sorted(PRESETS)
ENGINE_NAMES = sorted(PACKET_ENGINES)

seeds = st.integers(min_value=-(2 ** 53), max_value=2 ** 53)


@st.composite
def scenario_payloads(draw):
    payload = {
        "kind": "scenario",
        "preset": draw(st.sampled_from(PRESET_NAMES)),
    }
    if draw(st.booleans()):
        payload["seed"] = draw(seeds)
    if draw(st.booleans()):
        payload["engine"] = draw(st.sampled_from(ENGINE_NAMES))
    return payload


@st.composite
def sweep_payloads(draw):
    payload = {
        "kind": "sweep",
        "preset": draw(st.sampled_from(PRESET_NAMES)),
    }
    if draw(st.booleans()):
        payload["n_seeds"] = draw(st.integers(min_value=1, max_value=12))
    elif draw(st.booleans()):
        payload["seeds"] = draw(
            st.lists(seeds, min_size=1, max_size=6))
    if draw(st.booleans()):
        payload["engine"] = draw(st.sampled_from(ENGINE_NAMES))
    return payload


payloads = st.one_of(scenario_payloads(), sweep_payloads())


def _reordered(payload, order_seed):
    items = sorted(payload.items(),
                   key=lambda kv: hash((order_seed, kv[0])))
    return dict(items)


def _floatified(payload):
    """Ints an IEEE double can hold exactly become equal floats."""
    out = {}
    for key, value in payload.items():
        if (isinstance(value, int) and not isinstance(value, bool)
                and float(value) == value and key != "n_seeds"):
            out[key] = float(value)
        elif isinstance(value, list):
            out[key] = [float(v) if float(v) == v else v for v in value]
        else:
            out[key] = value
    return out


@given(payloads, st.integers())
@settings(max_examples=60, deadline=None)
def test_field_order_never_changes_the_key(payload, order_seed):
    assert (normalize_request(_reordered(payload, order_seed)).key()
            == normalize_request(payload).key())


@given(payloads)
@settings(max_examples=60, deadline=None)
def test_int_vs_float_spellings_collapse(payload):
    assert (normalize_request(_floatified(payload)).key()
            == normalize_request(payload).key())


@given(scenario_payloads())
@settings(max_examples=60, deadline=None)
def test_default_elision_equals_spelled_out(payload):
    spelled = {"seed": 0, "engine": "reference", **payload}
    assert (normalize_request(spelled).key()
            == normalize_request(payload).key())


@given(st.sampled_from(PRESET_NAMES), st.integers(1, 12),
       st.sampled_from(ENGINE_NAMES))
@settings(max_examples=30, deadline=None)
def test_n_seeds_sugar_equals_explicit_list(preset, n, engine):
    sugar = {"kind": "sweep", "preset": preset, "n_seeds": n,
             "engine": engine}
    explicit = {"kind": "sweep", "preset": preset,
                "seeds": list(range(n)), "engine": engine}
    assert (normalize_request(sugar).key()
            == normalize_request(explicit).key())


@given(payloads, payloads)
@settings(max_examples=100, deadline=None)
def test_distinct_canonical_requests_never_collide(a, b):
    ra, rb = normalize_request(a), normalize_request(b)
    if ra == rb:
        assert ra.key() == rb.key()
    else:
        assert ra.key() != rb.key()


@given(payloads)
@settings(max_examples=60, deadline=None)
def test_normalisation_is_idempotent(payload):
    once = normalize_request(payload)
    twice = normalize_request(once.to_payload())
    assert once == twice and once.key() == twice.key()


@given(payloads)
@settings(max_examples=30, deadline=None)
def test_canonical_spec_is_json_safe(payload):
    request = normalize_request(payload)
    restored = json.loads(json.dumps(request.to_payload()))
    assert normalize_request(restored).key() == request.key()

"""Property-based tests for the stability theory.

The headline invariant is Theorem 1's soundness: whenever the criterion
accepts a configuration, the exact composed trajectory respects the
buffer.  Secondary invariants: the analytic per-case bounds match the
exact first-round excursions, node-decrease cases never overshoot, and
the return map contracts.
"""


import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.limit_cycle import linearized_contraction, return_map
from repro.core.parameters import NormalizedParams
from repro.core.phase_plane import PaperCase, PhasePlaneAnalyzer, classify_case
from repro.core.stability import (
    case1_excursion_bounds,
    case2_peak_bound,
    max_queue_bound,
    required_buffer,
    theorem1_criterion,
)

a_values = st.floats(min_value=0.1, max_value=50.0)
b_values = st.floats(min_value=0.002, max_value=0.5)
k_values = st.floats(min_value=0.02, max_value=2.0)


def norm(a, b, k, buffer_size=1e12, q0=10.0):
    return NormalizedParams(a=a, b=b, k=k, capacity=100.0, q0=q0,
                            buffer_size=buffer_size)


@given(a=a_values, b=b_values, k=k_values)
@settings(max_examples=80, deadline=None)
def test_theorem1_bound_dominates_exact_peak(a, b, k):
    p = norm(a, b, k)
    traj = PhasePlaneAnalyzer(p).compose(max_switches=40)
    bound = max_queue_bound(p) - p.q0  # bound on x peak
    assert traj.max_x() <= bound * (1.0 + 1e-9) + 1e-12


@given(a=a_values, b=b_values, k=k_values)
@settings(max_examples=80, deadline=None)
def test_theorem1_sufficiency(a, b, k):
    """Criterion accepted => strongly stable trajectory (no overflow,
    no re-emptying, contracting)."""
    need = required_buffer(norm(a, b, k))
    p = norm(a, b, k, buffer_size=need * 1.01)
    assert theorem1_criterion(p)
    traj = PhasePlaneAnalyzer(p).compose(max_switches=60)
    assert not traj.overflows()
    assert not traj.underflows_after_start()
    trend = traj.amplitude_trend()
    assert trend is None or trend < 1.0


@given(a=a_values, b=b_values, k=k_values)
@settings(max_examples=80, deadline=None)
def test_case_bounds_match_composition(a, b, k):
    p = norm(a, b, k)
    case = classify_case(p)
    traj = PhasePlaneAnalyzer(p).compose(max_switches=8)
    peaks = [x for _, x in traj.extrema if x > 0]
    if case is PaperCase.CASE1:
        max1, min1 = case1_excursion_bounds(p)
        troughs = [x for _, x in traj.extrema if x < 0]
        assert peaks and max1 == pytest.approx(peaks[0], rel=1e-6)
        if troughs:
            assert min1 == pytest.approx(troughs[0], rel=1e-6)
        else:
            # heavily damped near the node boundary: the composition
            # converged before the first trough; the formula's trough
            # must then be negligible
            assert traj.converged
            assert abs(min1) < 1e-3 * p.q0
        assert min1 > -p.q0  # the Theorem 1 proof's claim
    elif case is PaperCase.CASE2:
        assert peaks and case2_peak_bound(p) == pytest.approx(
            peaks[0], rel=1e-6)
    else:
        # node-type decrease (or degenerate): no overshoot past q0
        assert traj.max_x() <= 1e-9 * p.q0


@given(a=a_values, b=b_values, k=k_values,
       y=st.floats(min_value=0.1, max_value=80.0))
@settings(max_examples=40, deadline=None)
def test_return_map_contracts(a, b, k, y):
    p = norm(a, b, k)
    assume(classify_case(p) is PaperCase.CASE1)
    # stay clear of the focus/node boundary, where beta -> 0 makes the
    # half-turn time diverge and the numeric map ill-conditioned
    assume(k * k * p.n_increase < 3.5)
    assume(k * k * p.n_decrease < 3.5)
    rho = linearized_contraction(p)
    assert rho < 1.0
    assert return_map(p, y, mode="linearized") == pytest.approx(
        rho * y, rel=1e-3)
    assert return_map(p, y, mode="nonlinear") <= rho * y * (1.0 + 1e-3)


@given(a=a_values, b=b_values, k=k_values,
       scale=st.floats(min_value=0.1, max_value=1000.0))
@settings(max_examples=60, deadline=None)
def test_required_buffer_scale_invariance(a, b, k, scale):
    """The bound is linear in q0 and depends on (a, bC) only through
    their ratio — the paper's scaling remark."""
    p1 = norm(a, b, k, q0=10.0)
    p2 = norm(a, b, k, q0=10.0 * scale)
    assert required_buffer(p2) == pytest.approx(required_buffer(p1) * scale,
                                                rel=1e-12)
    # w/pm (i.e. k) independence:
    p3 = norm(a, b, min(2.0, k * 1.7))
    assert required_buffer(p3) == pytest.approx(required_buffer(p1))

"""Property-based invariants for fabric topologies and the partitioner.

The sharded engine trusts two structural layers: the generators in
:mod:`repro.topology.graphs` (node/link counts and reachability follow
the published construction rules) and :func:`repro.topology.partition.
partition_graph` (every partition is an exact, non-empty, symmetric-cut
cover, deterministically).  Both are checked here over the whole small
parameter space rather than at single pinned sizes:

* **fat-tree** — for every even ``k``: ``k^3/4`` hosts, ``5k^2/4``
  switches, ``3k^3/4`` links and ``k``-regular switch tiers (Al-Fares
  et al.);
* **DCell** — the recursive counts ``t_l = t_{l-1} (t_{l-1} + 1)``
  hosts and ``s_l = s_{l-1} (t_{l-1} + 1)`` switches;
* **reachability** — every generated fabric is connected, so every
  host pair has a route for the multi-hop engine to resolve;
* **partitioner** — exact cover, no empty shard, canonical symmetric
  cut set, balance within the BFS-growth bound, and bit-for-bit
  determinism across repeated calls.
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.graphs import dcell, fat_tree, monsoon
from repro.topology.partition import partition_graph

even_k = st.integers(min_value=1, max_value=4).map(lambda half: 2 * half)


class TestFatTreeCounts:
    @given(k=even_k)
    @settings(max_examples=10, deadline=None)
    def test_published_counts(self, k):
        g = fat_tree(k)
        kinds = {}
        for _, data in g.nodes(data=True):
            kinds[data["kind"]] = kinds.get(data["kind"], 0) + 1
        assert kinds["host"] == k**3 // 4
        assert kinds["core"] == (k // 2) ** 2
        assert kinds["edge"] == kinds["agg"] == k * (k // 2)
        n_switches = kinds["core"] + kinds["edge"] + kinds["agg"]
        assert n_switches == 5 * k**2 // 4
        # one link per host plus (k/2)^2 edge-agg links per pod plus
        # k/2 core uplinks per aggregation switch
        assert g.number_of_edges() == 3 * k**3 // 4

    @given(k=even_k)
    @settings(max_examples=10, deadline=None)
    def test_switch_tiers_are_k_regular(self, k):
        g = fat_tree(k)
        for node, data in g.nodes(data=True):
            if data["kind"] == "host":
                assert g.degree(node) == 1
            else:
                assert g.degree(node) == k, (node, data["kind"])

    @given(k=even_k, cap=st.sampled_from([1e9, 10e9, 40e9]))
    @settings(max_examples=10, deadline=None)
    def test_uniform_capacity(self, k, cap):
        g = fat_tree(k, capacity=cap)
        assert all(d["capacity"] == cap for _, _, d in g.edges(data=True))


class TestDCellCounts:
    @given(n=st.integers(min_value=2, max_value=5),
           level=st.integers(min_value=0, max_value=1))
    @settings(max_examples=20, deadline=None)
    def test_recursive_counts(self, n, level):
        g = dcell(n, level)
        hosts = sum(1 for _, d in g.nodes(data=True) if d["kind"] == "host")
        switches = sum(1 for _, d in g.nodes(data=True) if d["kind"] == "tor")
        t, s = n, 1
        for _ in range(level):
            s = s * (t + 1)
            t = t * (t + 1)
        assert hosts == t
        assert switches == s

    @given(n=st.integers(min_value=2, max_value=3))
    @settings(max_examples=5, deadline=None)
    def test_level_2_counts(self, n):
        g = dcell(n, 2)
        hosts = sum(1 for _, d in g.nodes(data=True) if d["kind"] == "host")
        t1 = n * (n + 1)
        assert hosts == t1 * (t1 + 1)

    @given(n=st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_cross_cell_links_form_full_mesh(self, n):
        # level 1: one host-to-host link per unordered pair of the
        # n + 1 cells, on top of the n host-switch links per cell
        g = dcell(n, 1)
        intra = (n + 1) * n
        mesh = (n + 1) * n // 2
        assert g.number_of_edges() == intra + mesh


class TestReachability:
    @given(k=even_k)
    @settings(max_examples=10, deadline=None)
    def test_fat_tree_connected(self, k):
        assert nx.is_connected(fat_tree(k))

    @given(n=st.integers(min_value=2, max_value=5),
           level=st.integers(min_value=0, max_value=1))
    @settings(max_examples=20, deadline=None)
    def test_dcell_connected(self, n, level):
        assert nx.is_connected(dcell(n, level))

    @given(n_tors=st.integers(min_value=1, max_value=6),
           n_aggs=st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_monsoon_connected(self, n_tors, n_aggs):
        assert nx.is_connected(monsoon(n_tors, n_aggs))


def fabric_graphs(draw):
    choice = draw(st.integers(min_value=0, max_value=2))
    if choice == 0:
        return fat_tree(draw(st.sampled_from([2, 4, 6])))
    if choice == 1:
        return dcell(draw(st.integers(min_value=2, max_value=4)), 1)
    return monsoon(draw(st.integers(min_value=2, max_value=5)))


fabrics = st.composite(fabric_graphs)()


class TestPartitioner:
    @given(graph=fabrics, data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_invariants(self, graph, data):
        n = graph.number_of_nodes()
        n_shards = data.draw(st.integers(min_value=1, max_value=min(n, 12)))
        part = partition_graph(graph, n_shards)
        # exact cover of the node set
        assert set(part.assignment) == set(graph.nodes)
        assert all(0 <= s < n_shards for s in part.assignment.values())
        # no empty shard
        sizes = part.sizes()
        assert len(sizes) == n_shards
        assert all(size > 0 for size in sizes)
        assert sum(sizes) == n
        # validate() agrees
        part.validate(graph)

    @given(graph=fabrics, data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_cut_is_canonical_and_symmetric(self, graph, data):
        n_shards = data.draw(
            st.integers(min_value=2, max_value=min(graph.number_of_nodes(), 8)))
        part = partition_graph(graph, n_shards)
        cut = part.cut_edges(graph)
        assert cut == sorted(cut)
        for u, v in cut:
            assert u <= v
            # both directed orientations cross the same boundary
            assert part.shard_of(u) != part.shard_of(v)
        # completeness: every boundary edge of the graph is listed
        expected = sorted(
            (u, v) if u <= v else (v, u)
            for u, v in graph.edges()
            if part.shard_of(u) != part.shard_of(v)
        )
        assert cut == expected

    @given(graph=fabrics, data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_deterministic(self, graph, data):
        n_shards = data.draw(
            st.integers(min_value=1, max_value=min(graph.number_of_nodes(), 8)))
        first = partition_graph(graph, n_shards)
        second = partition_graph(graph, n_shards)
        assert first == second

    @given(k=st.sampled_from([4, 6, 8]))
    @settings(max_examples=6, deadline=None)
    def test_fat_tree_balance(self, k):
        g = fat_tree(k)
        part = partition_graph(g, k)
        sizes = part.sizes()
        # BFS growth targets ceil(remaining / shards-left); refinement
        # may move boundary nodes but keeps shards within 2x of each
        # other on regular fabrics
        assert max(sizes) <= 2 * min(sizes)

    def test_rejects_bad_shard_counts(self):
        g = fat_tree(4)
        n = g.number_of_nodes()
        for bad in (0, -1, n + 1):
            try:
                partition_graph(g, bad)
            except ValueError:
                continue
            raise AssertionError(f"n_shards={bad} accepted")

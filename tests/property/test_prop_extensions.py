"""Property-based tests for the extension modules.

Wire-format round-trips, trace-generator statistics, design-calculator
tightness and the Lyapunov decay law, over randomised inputs.
"""


from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.design import max_flows, max_gi, max_q0, min_gd
from repro.core.lyapunov import (
    crossing_energy_ratio,
    decrease_energy,
    decrease_energy_rate,
    increase_energy,
    increase_energy_rate,
)
from repro.core.parameters import BCNParams, NormalizedParams
from repro.core.stability import theorem1_criterion
from repro.simulation.frames import BCNMessage
from repro.simulation.wire import pack_bcn, unpack_bcn
from repro.workloads.traces import TraceConfig, generate_trace


# -- wire format -----------------------------------------------------------

@given(
    da=st.integers(min_value=0, max_value=2**48 - 1),
    sa=st.integers(min_value=0, max_value=2**48 - 1),
    fb=st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    quantum=st.floats(min_value=1e-3, max_value=1e6),
    cpid=st.text(min_size=1, max_size=40),
)
@settings(max_examples=200, deadline=None)
def test_wire_round_trip(da, sa, fb, quantum, cpid):
    message = BCNMessage(da=da, sa="sw", cpid=cpid, fb=fb, q_off=0.0,
                         q_delta=0.0, fb_raw=fb)
    wire = unpack_bcn(pack_bcn(message, switch_address=sa,
                               sigma_quantum=quantum))
    assert wire.da == da
    assert wire.sa == sa
    assert wire.is_bcn
    expected = round(fb / quantum)
    expected = max(-(2**31), min(2**31 - 1, expected))
    assert wire.fb_quanta == expected


@given(cpid=st.text(min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_wire_cpid_stable(cpid):
    m = BCNMessage(da=0, sa="sw", cpid=cpid, fb=1.0, q_off=0.0, q_delta=0.0)
    w1 = unpack_bcn(pack_bcn(m))
    w2 = unpack_bcn(pack_bcn(m))
    assert w1.cpid == w2.cpid
    assert 0 <= w1.cpid < 2**32


# -- traces ------------------------------------------------------------------

@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rate=st.floats(min_value=50.0, max_value=500.0),
    shape=st.floats(min_value=1.05, max_value=1.9),
)
@settings(max_examples=40, deadline=None)
def test_trace_invariants(seed, rate, shape):
    config = TraceConfig(arrival_rate=rate, mean_size_bits=1e6, horizon=0.5,
                         pareto_shape=shape, seed=seed)
    hosts = [f"h{i}" for i in range(6)]
    trace = generate_trace(config, hosts)
    starts = [f.start_time for f in trace.flows]
    assert starts == sorted(starts)
    for flow in trace.flows:
        assert 0.0 <= flow.start_time < 0.5
        assert config.min_size_bits <= flow.size_bits <= config.max_size_bits
        assert flow.src != flow.dst
        assert flow.src in hosts and flow.dst in hosts
    ids = [f.flow_id for f in trace.flows]
    assert ids == list(range(len(ids)))


# -- design calculators -------------------------------------------------------

design_caps = st.floats(min_value=1e9, max_value=100e9)
design_flows = st.integers(min_value=2, max_value=500)
design_ratio = st.floats(min_value=1.5, max_value=50.0)


@given(capacity=design_caps, n_flows=design_flows, ratio=design_ratio)
@settings(max_examples=80, deadline=None)
def test_design_inverses_are_tight(capacity, n_flows, ratio):
    q0 = capacity / 4000.0
    params = BCNParams(capacity=capacity, n_flows=n_flows, q0=q0,
                       buffer_size=q0 * ratio)
    n_max = max_flows(params)
    if n_max >= 1:
        assert theorem1_criterion(params.with_(n_flows=n_max))
    assert not theorem1_criterion(params.with_(n_flows=n_max + 1))

    gi_max = max_gi(params)
    assume(gi_max > 1e-9)
    assert theorem1_criterion(params.with_(gi=gi_max * 0.999))
    assert not theorem1_criterion(params.with_(gi=gi_max * 1.001))

    q0_max = max_q0(params)
    if q0_max < params.buffer_size:
        assert theorem1_criterion(params.with_(q0=q0_max * 0.999))

    gd_min = min_gd(params)
    assert theorem1_criterion(params.with_(gd=gd_min * 1.001))


# -- Lyapunov -----------------------------------------------------------------

lyap_states = st.tuples(
    st.floats(min_value=-50.0, max_value=50.0),
    st.floats(min_value=-80.0, max_value=400.0),
)


@given(
    state=lyap_states,
    a=st.floats(min_value=0.1, max_value=20.0),
    b=st.floats(min_value=0.005, max_value=0.3),
    k=st.floats(min_value=0.01, max_value=2.0),
)
@settings(max_examples=150, deadline=None)
def test_lyapunov_rates_nonpositive(state, a, b, k):
    x, y = state
    p = NormalizedParams(a=a, b=b, k=k, capacity=100.0, q0=10.0,
                         buffer_size=1e9)
    assert increase_energy(p, x, y) >= 0.0
    assert increase_energy_rate(p, x, y) <= 0.0
    assert decrease_energy(p, x, y) >= -1e-12
    assert decrease_energy_rate(p, x, y) <= 0.0


@given(
    y=st.floats(min_value=1e-3, max_value=99.0),
    b=st.floats(min_value=0.005, max_value=0.3),
)
@settings(max_examples=100, deadline=None)
def test_crossing_ratio_in_unit_interval(y, b):
    p = NormalizedParams(a=2.0, b=b, k=0.1, capacity=100.0, q0=10.0,
                         buffer_size=1e9)
    ratio = crossing_energy_ratio(p, y)
    assert 0.0 < ratio < 1.0
    # larger amplitudes lose more
    smaller = crossing_energy_ratio(p, y / 2.0)
    assert ratio <= smaller + 1e-9

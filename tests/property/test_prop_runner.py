"""Property-based differential tests for the parallel sweep runner.

Two invariants, over random small grids and a pure module-level
``evaluate`` (pure so replay is sound, module-level so the process pool
can pickle it by reference):

* **parallel == serial** — :func:`repro.runner.run_sweep_parallel`
  returns records *exactly* equal (same order, same values, ``==`` not
  approx) to the serial reference :func:`repro.analysis.sweeps.sweep`;
* **cached replay is free** — a second run against a warm cache returns
  identical records with **zero** evaluations, proven by handing the
  second run an evaluate that raises unconditionally.
"""

import shutil
import tempfile
from dataclasses import dataclass, replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweeps import sweep
from repro.runner import ResultCache, RunnerStats, run_sweep_parallel


@dataclass(frozen=True)
class GridPoint:
    """Minimal ``with_``-style parameter object for runner tests."""

    u: float = 1.0
    v: float = 1.0
    n: int = 1

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("n must be >= 0")  # exercises skip_invalid

    def with_(self, **changes) -> "GridPoint":
        return replace(self, **changes)


def pure_evaluate(p: GridPoint) -> dict:
    return {
        "total": p.u * p.v + p.n,
        "diff": p.u - p.v,
        "label": f"u={p.u!r},n={p.n}",  # embeds a comma: stresses to_csv too
    }


def raising_evaluate(p: GridPoint) -> dict:
    raise AssertionError("evaluate must not run on a fully cached sweep")


finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
AXIS_VALUES = {
    "u": finite,
    "v": finite,
    "n": st.integers(min_value=-2, max_value=5),  # negatives get skipped
}


@st.composite
def axes_grids(draw):
    keys = draw(st.lists(st.sampled_from(sorted(AXIS_VALUES)),
                         unique=True, min_size=1, max_size=3))
    return {k: draw(st.lists(AXIS_VALUES[k], min_size=1, max_size=3))
            for k in keys}


@settings(max_examples=25, deadline=None)
@given(axes=axes_grids(), workers=st.sampled_from([0, 1, 2]))
def test_parallel_records_exactly_equal_serial(axes, workers):
    serial = sweep(GridPoint(), axes, pure_evaluate)
    parallel = run_sweep_parallel(GridPoint(), axes, pure_evaluate,
                                  workers=workers)
    assert parallel.axes == serial.axes
    assert parallel.records == serial.records


@settings(max_examples=15, deadline=None)
@given(axes=axes_grids())
def test_cached_rerun_is_identical_with_zero_evaluations(axes):
    tmp = tempfile.mkdtemp(prefix="runner-prop-")
    try:
        cache = ResultCache(tmp)
        first = run_sweep_parallel(GridPoint(), axes, pure_evaluate,
                                   workers=0, cache=cache, cache_id="prop")
        stats = RunnerStats()
        again = run_sweep_parallel(GridPoint(), axes, raising_evaluate,
                                   workers=0, cache=cache, cache_id="prop",
                                   stats=stats)
        assert again.records == first.records
        assert stats.evaluated == 0
        assert stats.cache_hits == len(first.records)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


@settings(max_examples=10, deadline=None)
@given(axes=axes_grids())
def test_to_csv_round_trips_comma_values(axes):
    result = sweep(GridPoint(), axes, pure_evaluate)
    if not result.records:
        return
    tmp = tempfile.mkdtemp(prefix="runner-csv-")
    try:
        path = result.to_csv(f"{tmp}/out.csv")
        lines = path.read_text().splitlines()
        # header + one line per record: quoting keeps embedded commas
        # from splitting rows into extra columns
        assert len(lines) == 1 + len(result.records)
        n_cols = len(lines[0].split(","))
        for line in lines[1:]:
            cells, in_quotes, current = [], False, []
            for ch in line:
                if ch == '"':
                    in_quotes = not in_quotes
                elif ch == "," and not in_quotes:
                    cells.append("".join(current))
                    current = []
                else:
                    current.append(ch)
            cells.append("".join(current))
            assert len(cells) == n_cols
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

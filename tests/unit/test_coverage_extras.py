"""Additional coverage: FCT accounting, CLI report, blend extremes,
transient Case 2, wire defaults, downsampled experiments glue."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.parameters import NormalizedParams
from repro.core.phase_plane import PaperCase
from repro.core.transient import transient_report
from repro.simulation.multihop import MultiHopNetwork, PortConfig
from repro.topology.graphs import dumbbell
from repro.workloads.flows import FlowSpec


class TestFlowCompletionTimes:
    def run_two_finite_flows(self):
        g = dumbbell(2, capacity=1e8)
        flows = [
            FlowSpec(flow_id=0, src="h0", dst="sink", demand=5e7,
                     size_bits=1e6),
            FlowSpec(flow_id=1, src="h1", dst="sink", demand=5e7,
                     size_bits=4e6, start_time=0.01),
        ]
        net = MultiHopNetwork(
            g, flows, PortConfig(q0=5e4, buffer_bits=5e5, pm=0.1),
            frame_bits=8000)
        return net.run(0.6)

    def test_finite_flows_get_finish_times(self):
        res = self.run_two_finite_flows()
        assert set(res.completed_flows()) == {0, 1}
        for fid in (0, 1):
            fct = res.flow_completion_time(fid)
            assert fct is not None and fct > 0

    def test_fct_measured_from_start_time(self):
        res = self.run_two_finite_flows()
        # flow 1 started at 0.01; its absolute finish exceeds its FCT
        assert res.finish_times[1] > res.flow_completion_time(1)
        assert res.flow_completion_time(1) == pytest.approx(
            res.finish_times[1] - 0.01)

    def test_bigger_flow_takes_longer(self):
        res = self.run_two_finite_flows()
        assert res.flow_completion_time(1) > res.flow_completion_time(0)

    def test_unfinished_flow_returns_none(self):
        g = dumbbell(1, capacity=1e6)  # tiny link: cannot finish in time
        flows = [FlowSpec(flow_id=0, src="h0", dst="sink", demand=1e6,
                          size_bits=1e9)]
        net = MultiHopNetwork(
            g, flows, PortConfig(q0=5e4, buffer_bits=5e5, pm=0.1),
            frame_bits=8000)
        res = net.run(0.01)
        assert res.flow_completion_time(0) is None


class TestCLIReport:
    def test_report_command(self, tmp_path, capsys):
        out_path = tmp_path / "R.md"
        code = cli_main(["report", "fig4", "--out", str(out_path)])
        captured = capsys.readouterr().out
        assert code == 0
        assert out_path.exists()
        assert "fig4" in captured and "PASS" in captured


class TestE2CMBlendExtremes:
    def test_blend_zero_is_pure_bcn(self):
        from repro.baselines.e2cm import E2CMParams, run_e2cm_dumbbell

        res = run_e2cm_dumbbell(
            E2CMParams(capacity=1e8, n_flows=4, q0=1e5, buffer_bits=1e6,
                       pm=0.1, blend=0.0),
            0.1, frame_bits=8000)
        assert res.utilization() > 0.5


class TestTransientCase2:
    def test_case2_report(self):
        p = NormalizedParams(a=8.0, b=0.02, k=1.0, capacity=100.0, q0=10.0,
                             buffer_size=100.0)
        report = transient_report(p)
        assert report.case is PaperCase.CASE2
        assert report.overshoot_ratio > 0
        assert report.contraction is None  # not a two-spiral system
        assert report.crossings == 2

    def test_case5_report(self):
        p = NormalizedParams(a=4.0, b=0.02, k=1.0, capacity=100.0, q0=10.0,
                             buffer_size=100.0)
        report = transient_report(p)
        assert report.case is PaperCase.CASE5
        assert "overshoot" in report.summary()


class TestFluidIntegratorExtras:
    def test_explicit_initial_state(self):
        from repro.fluid.integrate import simulate_fluid

        p = NormalizedParams(a=2.0, b=0.02, k=0.1, capacity=100.0, q0=10.0,
                             buffer_size=200.0)
        traj = simulate_fluid(p, x0=3.0, y0=-4.0, t_max=5.0,
                              max_switches=50)
        assert traj.x[0] == pytest.approx(3.0)
        assert traj.y[0] == pytest.approx(-4.0)

    def test_modes_agree_at_small_amplitude(self):
        from repro.fluid.integrate import simulate_fluid

        p = NormalizedParams(a=2.0, b=0.02, k=0.1, capacity=100.0, q0=10.0,
                             buffer_size=200.0)
        lin = simulate_fluid(p, x0=-0.01, y0=0.0, t_max=10.0,
                             mode="linearized", max_switches=50)
        non = simulate_fluid(p, x0=-0.01, y0=0.0, t_max=10.0,
                             mode="nonlinear", max_switches=50)
        x_lin = np.interp(non.t, lin.t, lin.x)
        assert np.max(np.abs(x_lin - non.x)) < 1e-4 * 0.01

    def test_physical_mode_never_leaves_strip(self):
        from repro.fluid.integrate import simulate_fluid

        p = NormalizedParams(a=2.0, b=0.02, k=0.01, capacity=100.0,
                             q0=10.0, buffer_size=14.0)
        traj = simulate_fluid(p, t_max=150.0, mode="physical",
                              max_switches=2000)
        assert traj.x.max() <= p.buffer_size - p.q0 + 1e-6
        assert traj.x.min() >= -p.q0 - 1e-6


class TestSegmentSampling:
    def test_final_infinite_segment_sampled_over_horizon(self):
        from repro.core.phase_plane import PhasePlaneAnalyzer

        p = NormalizedParams(a=2.0, b=0.08, k=1.0, capacity=100.0,
                             q0=10.0, buffer_size=100.0)  # Case 3
        traj = PhasePlaneAnalyzer(p).compose(max_switches=5)
        samples = traj.sample(100, final_horizon=2.0)
        final_start = traj.segments[-1].t_start
        assert samples[-1, 0] == pytest.approx(final_start + 2.0)

"""Unit tests for the Lyapunov/energy analysis (repro.core.lyapunov)."""


import numpy as np
import pytest

from repro.core.lyapunov import (
    crossing_energy_ratio,
    decrease_energy,
    decrease_energy_rate,
    energy_along,
    increase_energy,
    increase_energy_rate,
)
from repro.core.parameters import NormalizedParams
from repro.fluid.model import decrease_field, increase_field


def norm(k=0.1):
    return NormalizedParams(a=2.0, b=0.02, k=k, capacity=100.0, q0=10.0,
                            buffer_size=1e9)


STATES = [(3.0, 4.0), (-5.0, 2.0), (1.0, -8.0), (-2.0, -0.5)]


class TestEnergies:
    def test_positive_definite(self):
        p = norm()
        for x, y in STATES:
            assert increase_energy(p, x, y) > 0
            assert decrease_energy(p, x, y) > 0
        assert increase_energy(p, 0.0, 0.0) == 0.0
        assert decrease_energy(p, 0.0, 0.0) == pytest.approx(0.0)

    @pytest.mark.parametrize("x,y", STATES)
    def test_increase_rate_matches_chain_rule(self, x, y):
        p = norm()
        field = increase_field(p)
        h = 1e-7
        dx, dy = field(0.0, np.array([x, y]))
        numeric = (
            increase_energy(p, x + h * dx, y + h * dy)
            - increase_energy(p, x - h * dx, y - h * dy)
        ) / (2 * h)
        assert numeric == pytest.approx(increase_energy_rate(p, x, y),
                                        abs=1e-5)

    @pytest.mark.parametrize("x,y", STATES)
    def test_decrease_rate_matches_chain_rule(self, x, y):
        p = norm()
        field = decrease_field(p)
        h = 1e-7
        dx, dy = field(0.0, np.array([x, y]))
        numeric = (
            decrease_energy(p, x + h * dx, y + h * dy)
            - decrease_energy(p, x - h * dx, y - h * dy)
        ) / (2 * h)
        assert numeric == pytest.approx(decrease_energy_rate(p, x, y),
                                        abs=1e-5)

    def test_all_dissipation_through_k(self):
        """dV/dt = -(gain) k y^2 in both regions: zero at k -> 0."""
        for x, y in STATES:
            assert increase_energy_rate(norm(k=0.1), x, y) <= 0
            assert decrease_energy_rate(norm(k=0.1), x, y) <= 0
            # scaled linearly by k
            r1 = increase_energy_rate(norm(k=0.1), x, y)
            r2 = increase_energy_rate(norm(k=0.2), x, y)
            assert r2 == pytest.approx(2.0 * r1)

    def test_decrease_energy_domain(self):
        with pytest.raises(ValueError):
            decrease_energy(norm(), 0.0, -100.0)

    def test_energy_along_matches_pointwise(self):
        p = norm()
        xs = np.array([x for x, _ in STATES])
        ys = np.array([y for _, y in STATES])
        vi = energy_along(p, xs, ys, region="increase")
        vd = energy_along(p, xs, ys, region="decrease")
        for i, (x, y) in enumerate(STATES):
            assert vi[i] == pytest.approx(increase_energy(p, x, y))
            assert vd[i] == pytest.approx(decrease_energy(p, x, y))
        with pytest.raises(ValueError):
            energy_along(p, xs, ys, region="bogus")


class TestConservationAndDecay:
    def test_energy_decays_along_simulated_trajectory(self):
        from repro.fluid.integrate import simulate_fluid

        p = norm()
        traj = simulate_fluid(p, x0=-p.q0, y0=0.0, t_max=5.0,
                              mode="nonlinear", max_switches=10)
        # within the first increase segment, V_i is non-increasing
        s = traj.x + p.k * traj.y
        inc = s < 0
        vi = energy_along(p, traj.x[inc], traj.y[inc], region="increase")
        assert np.all(np.diff(vi) <= 1e-6 * vi[0])

    def test_undamped_energy_conserved(self):
        from repro.fluid.integrate import simulate_fluid

        p = norm(k=1e-9)
        traj = simulate_fluid(p, x0=-8.0, y0=0.0, t_max=3.0,
                              mode="nonlinear", max_switches=4)
        s = traj.x + p.k * traj.y
        inc = s < 0
        vi = energy_along(p, traj.x[inc], traj.y[inc], region="increase")
        assert np.ptp(vi) < 1e-5 * vi[0]


class TestCrossingRatio:
    def test_strictly_below_one(self):
        p = norm()
        for y in (1.0, 11.3, 50.0, 90.0):
            assert crossing_energy_ratio(p, y) < 1.0

    def test_approaches_one_for_small_amplitude(self):
        p = norm()
        assert crossing_energy_ratio(p, 0.01) == pytest.approx(1.0, abs=1e-3)

    def test_matches_direct_integration(self):
        """The energy-level prediction equals the simulated exit ordinate."""
        from repro.fluid.integrate import simulate_fluid

        p = norm(k=1e-9)
        y_enter = 11.3
        traj = simulate_fluid(p, x0=0.0, y0=y_enter, t_max=10.0,
                              mode="nonlinear", max_switches=1)
        switches = [e for e in traj.events if e.kind == "switch"]
        assert switches
        y_exit = -switches[0].y
        predicted = crossing_energy_ratio(p, y_enter) * y_enter
        assert y_exit == pytest.approx(predicted, rel=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            crossing_energy_ratio(norm(), 0.0)
        with pytest.raises(ValueError):
            crossing_energy_ratio(norm(), 200.0)

"""Unit tests for the fairness dynamics and the QCN fluid model."""

import numpy as np
import pytest

from repro.analysis.fairness import fairness_trajectory, simulate_two_flows
from repro.baselines.qcn_fluid import (
    QCNFluidParams,
    compare_bcn_qcn_fluid,
    simulate_qcn_fluid,
)
from repro.core.parameters import BCNParams, paper_example_params


def gentle_params():
    return BCNParams(capacity=1e9, n_flows=2, q0=2e6, buffer_size=16e6,
                     pm=0.1, gd=1e-5, ru=2000.0)


class TestTwoFlowFairness:
    def test_converges_to_fairness(self):
        traj = fairness_trajectory(gentle_params(), imbalance=4.0, t_max=3.0)
        assert traj.final_jain() > 0.999
        assert traj.gap_series()[-1] < 0.01

    def test_symmetric_start_stays_symmetric(self):
        p = gentle_params()
        traj = simulate_two_flows(p, r1_0=5e8, r2_0=5e8, t_max=1.0)
        assert np.allclose(traj.r1, traj.r2, rtol=1e-6)

    def test_total_rate_tracks_capacity(self):
        traj = fairness_trajectory(gentle_params(), imbalance=3.0, t_max=3.0)
        util = traj.utilization_series()
        assert util[traj.t > 1.0].mean() == pytest.approx(1.0, abs=0.1)

    def test_queue_respects_buffer(self):
        p = gentle_params()
        traj = simulate_two_flows(p, r1_0=0.9e9, r2_0=0.9e9, t_max=2.0)
        assert traj.q.max() <= p.buffer_size + 1e-6
        assert traj.q.min() >= -1e-6

    def test_rates_stay_nonnegative(self):
        traj = fairness_trajectory(gentle_params(), imbalance=10.0, t_max=3.0)
        assert traj.r1.min() >= 0.0
        assert traj.r2.min() >= 0.0

    def test_imbalance_validation(self):
        with pytest.raises(ValueError):
            fairness_trajectory(gentle_params(), imbalance=0.0, t_max=1.0)

    def test_gap_is_monotone_in_envelope(self):
        """The round-to-round gap envelope shrinks (fairness progress)."""
        traj = fairness_trajectory(gentle_params(), imbalance=4.0, t_max=3.0)
        gap = traj.gap_series()
        thirds = np.array_split(gap, 3)
        assert thirds[0].max() > thirds[1].max() > thirds[2].max()


class TestQCNFluid:
    def params(self, **overrides):
        config = dict(capacity=10e9, n_flows=50, q0=2.5e6,
                      buffer_size=20e6)
        config.update(overrides)
        return QCNFluidParams(**config)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.params(q0=30e6)
        with pytest.raises(ValueError):
            self.params(capacity=0.0)

    def test_sigma_unit_default(self):
        assert self.params().effective_sigma_unit == pytest.approx(
            2.5e6 / 16.0)

    def test_overload_start_settles_near_q0(self):
        traj = simulate_qcn_fluid(self.params(), initial_rate=1.5 * 10e9 / 50,
                                  t_max=0.3)
        assert traj.converged_near(2.5e6, rtol=0.5)
        assert traj.q.max() <= 20e6 + 1e-6

    def test_negative_only_feedback_sawtooth(self):
        """QCN hunts: the settled queue oscillates (CNMs cut, AI refills)."""
        traj = simulate_qcn_fluid(self.params(), initial_rate=1.5 * 10e9 / 50,
                                  t_max=0.3)
        tail = traj.q[traj.t > 0.2]
        assert tail.std() > 0.05 * tail.mean()

    def test_rate_floor_respected(self):
        traj = simulate_qcn_fluid(self.params(), initial_rate=3e8, t_max=0.1)
        assert traj.r.min() >= 0.0

    def test_compare_helper_shapes(self):
        out = compare_bcn_qcn_fluid(paper_example_params(), duration=0.15)
        assert out["bcn_t"].shape == out["bcn_q"].shape
        assert out["qcn_t"].shape == out["qcn_q"].shape
        assert out["bcn_peak"] > 0
        assert out["qcn_peak"] > 0
        # BCN's positive feedback reins the transient in sooner here
        assert out["bcn_peak"] <= out["qcn_peak"] + 1e-6

"""Unit tests for the sharding plan and per-shard runtime (repro.shard).

The differential suites prove the sharded engine *as a whole* matches
serial; these tests pin the pieces the proofs rest on — ownership
rules, the lookahead bound, multiplication-stable window edges, timed
event routing, the RemoteLink outbox protocol and the one-shard
runtime lifecycle.
"""

import math

import networkx as nx
import pytest

from repro.shard import RemoteLink, ShardRuntime, build_plan, resolve_shards
from repro.simulation.multihop import PortConfig
from repro.topology.graphs import fat_tree
from repro.topology.partition import Partition
from repro.workloads.flows import FlowSpec

DELAY = 1e-6
CONFIG_KW = dict(
    frame_bits=12_000, delay=DELAY, hop_level_pause=True,
    engine="reference", queue_dt=1e-5,
)


def chain_graph():
    """h0 - s1 - s2 - s3 - h1, 10G everywhere."""
    g = nx.Graph()
    for h in ("h0", "h1"):
        g.add_node(h, kind="host", layer=0)
    for s in ("s1", "s2", "s3"):
        g.add_node(s, kind="tor", layer=1)
    for u, v in (("h0", "s1"), ("s1", "s2"), ("s2", "s3"), ("s3", "h1")):
        g.add_edge(u, v, capacity=10e9)
    return g


CHAIN_ROUTE = ("h0", "s1", "s2", "s3", "h1")
CHAIN_FLOW = FlowSpec(flow_id=0, src="h0", dst="h1", demand=1e9,
                      route=CHAIN_ROUTE)
SPLIT = Partition(n_shards=2, assignment={
    "h0": 0, "s1": 0, "s2": 1, "s3": 1, "h1": 1,
})


def chain_plan(n_shards=2, partition=SPLIT, **overrides):
    kw = dict(CONFIG_KW)
    kw.update(overrides)
    return build_plan(chain_graph(), [CHAIN_FLOW], PortConfig(q0=8 * 12_000, buffer_bits=150 * 12_000),
                      n_shards=n_shards, partition=partition, **kw)


class TestResolveShards:
    def test_auto_caps_at_switch_count(self):
        g = chain_graph()  # 3 switches
        assert resolve_shards("auto", g, workers=8) == 3
        assert resolve_shards("auto", g, workers=2) == 2
        assert resolve_shards("auto", g, workers=1) == 1

    def test_auto_default_workers_is_machine_bound(self):
        g = fat_tree(4)
        n = resolve_shards("auto", g, workers=None)
        assert 1 <= n <= 20  # 20 switches in a k=4 fat-tree

    def test_integers_pass_through(self):
        assert resolve_shards(5, chain_graph(), workers=None) == 5

    @pytest.mark.parametrize("bad", [0, -1, True, 2.5, "four"])
    def test_rejects_non_counts(self, bad):
        with pytest.raises(ValueError):
            resolve_shards(bad, chain_graph(), workers=None)


class TestBuildPlan:
    def test_ownership_rules(self):
        plan = chain_plan()
        # host NIC edge is pacing, not a port
        assert ("h0", "s1") not in plan.port_owner
        assert plan.port_edges == (("s1", "s2"), ("s2", "s3"), ("s3", "h1"))
        # directed port (u, v) lives with the transmitting node u
        assert plan.port_owner[("s1", "s2")] == 0
        assert plan.port_owner[("s2", "s3")] == 1
        assert plan.port_owner[("s3", "h1")] == 1
        # the source lives with the first route node
        assert plan.source_owner[0] == 0

    def test_lookahead_is_min_cross_channel_latency(self):
        # the cheapest cut channel on the chain is one forwarding hop
        assert chain_plan().lookahead == DELAY

    def test_single_shard_lookahead_is_infinite(self):
        whole = Partition(n_shards=1, assignment={
            n: 0 for n in chain_graph().nodes
        })
        plan = chain_plan(n_shards=1, partition=whole)
        assert plan.lookahead == math.inf
        assert plan.window_edges(0.5) == [0.5]

    def test_zero_delay_rejected_when_cut(self):
        with pytest.raises(ValueError, match="propagation delay"):
            chain_plan(delay=0.0)

    def test_partition_shard_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            chain_plan(n_shards=3)

    def test_needs_flows(self):
        with pytest.raises(ValueError):
            build_plan(chain_graph(), [],
                       PortConfig(q0=8 * 12_000, buffer_bits=150 * 12_000),
                       n_shards=1, partition=None, **CONFIG_KW)

    def test_plan_is_picklable(self):
        import pickle

        plan = chain_plan()
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.port_owner == plan.port_owner
        assert clone.lookahead == plan.lookahead


class TestWindowEdges:
    def test_multiplication_stable_edges(self):
        plan = chain_plan()
        duration = 17.3 * DELAY
        edges = plan.window_edges(duration)
        assert edges[-1] == duration
        assert all(b > a for a, b in zip(edges, edges[1:]))
        for k, edge in enumerate(edges[:-1]):
            assert edge == (k + 1) * plan.lookahead

    def test_exact_multiple_has_no_sliver_window(self):
        plan = chain_plan()
        edges = plan.window_edges(10 * DELAY)
        assert len(edges) == 10
        assert edges[-1] == 10 * DELAY

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            chain_plan().window_edges(0.0)


class TestEventRouting:
    EVENTS = [
        (1e-4, 0, "capacity", (("s1", "s2"), 5e9)),
        (2e-4, 1, "capacity", (("s2", "s3"), 5e9)),
        (3e-4, 2, "outage", (1e-5, None)),
        (4e-4, 3, "departure", (0,)),
    ]

    def test_events_go_to_owners(self):
        plan = chain_plan()
        mine0 = plan.events_for_shard(0, self.EVENTS)
        mine1 = plan.events_for_shard(1, self.EVENTS)
        kinds0 = [(kind, seq) for _, seq, kind, _ in mine0]
        kinds1 = [(kind, seq) for _, seq, kind, _ in mine1]
        # port events to the port owner, global outage everywhere,
        # departure to the source owner
        assert kinds0 == [("capacity", 0), ("outage", 2), ("departure", 3)]
        assert kinds1 == [("capacity", 1), ("outage", 2)]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown timed event"):
            chain_plan().events_for_shard(0, [(0.0, 0, "comet", ())])


class _EmitRecorder:
    def __init__(self):
        self.sent = []
        self.sim = type("S", (), {"now": 2.5})()

    def _emit(self, dst, arrival, kind, target, payload):
        self.sent.append((dst, arrival, kind, target, payload))


class TestRemoteLink:
    def test_transmit_stamps_arrival_and_routes_to_outbox(self):
        runtime = _EmitRecorder()
        link = RemoteLink(runtime=runtime, dst_shard=3, delay=0.5,
                          kind="frame", target=("s1", "s2"))
        link.transmit("payload")
        assert runtime.sent == [(3, 3.0, "frame", ("s1", "s2"), "payload")]


class TestShardRuntimeLifecycle:
    def test_one_shard_run_delivers(self):
        whole = Partition(n_shards=1, assignment={
            n: 0 for n in chain_graph().nodes
        })
        plan = chain_plan(n_shards=1, partition=whole)
        runtime = ShardRuntime(plan, 0, [], False)
        duration = 2e-4
        runtime.start(duration)
        outbox = runtime.run_window(duration, [])
        assert outbox == {}  # nothing crosses a one-shard plan
        partial = runtime.finish()
        assert partial["shard"] == 0
        assert partial["delivered"][0] > 0
        assert partial["msgs_sent"] == 0

    def test_cross_shard_messages_carry_positional_seq(self):
        plan = chain_plan()
        rt0 = ShardRuntime(plan, 0, [], False)
        duration = 5 * DELAY
        rt0.start(duration)
        outbox = rt0.run_window(plan.window_edges(duration)[0], [])
        # the source's first frames head for shard 1 via (s1, s2)
        assert set(outbox) <= {1}
        for arrival, _kind, _target, _payload in outbox.get(1, []):
            assert arrival > plan.window_edges(duration)[0] - 1e-18

"""Unit tests for the fluid substrate (repro.fluid)."""


import numpy as np
import pytest

from repro.core.parameters import NormalizedParams, paper_example_params
from repro.core.phase_plane import PhasePlaneAnalyzer
from repro.fluid.integrate import simulate_fluid
from repro.fluid.model import (
    decrease_field,
    full_field,
    increase_field,
    linearized_decrease_field,
    pinned_empty_field,
    pinned_full_field,
)


def norm(a=2.0, b=0.02, k=0.1, q0=10.0, buffer_size=200.0):
    return NormalizedParams(a=a, b=b, k=k, capacity=100.0, q0=q0,
                            buffer_size=buffer_size)


class TestVectorFields:
    def test_increase_field_values(self):
        p = norm()
        f = increase_field(p)
        dx, dy = f(0.0, np.array([-5.0, 2.0]))
        assert dx == 2.0
        assert dy == pytest.approx(-p.a * (-5.0 + p.k * 2.0))

    def test_decrease_field_nonlinearity(self):
        p = norm()
        f = decrease_field(p)
        _, dy = f(0.0, np.array([5.0, 2.0]))
        assert dy == pytest.approx(-p.b * (2.0 + p.capacity) * (5.0 + p.k * 2.0))

    def test_linearized_decrease_drops_y_factor(self):
        p = norm()
        f = linearized_decrease_field(p)
        _, dy = f(0.0, np.array([5.0, 2.0]))
        assert dy == pytest.approx(-p.b * p.capacity * 5.0
                                   - p.b * p.k * p.capacity * 2.0)

    def test_linearizations_agree_at_small_y(self):
        p = norm()
        nl = decrease_field(p)
        lin = linearized_decrease_field(p)
        state = np.array([3.0, 1e-6])
        assert nl(0.0, state)[1] == pytest.approx(lin(0.0, state)[1], rel=1e-6)

    def test_full_field_switches_by_sigma(self):
        p = norm()
        f = full_field(p)
        inc = increase_field(p)
        dec = decrease_field(p)
        left = np.array([-5.0, 0.0])
        right = np.array([5.0, 0.0])
        assert f(0.0, left) == inc(0.0, left)
        assert f(0.0, right) == dec(0.0, right)

    def test_pinned_fields(self):
        p = norm()
        full = pinned_full_field(p)
        (dy,) = full(0.0, np.array([3.0]))
        assert dy == pytest.approx(
            -p.b * (3.0 + p.capacity) * (p.buffer_size - p.q0))
        empty = pinned_empty_field(p)
        (dy,) = empty(0.0, np.array([-40.0]))
        assert dy == pytest.approx(p.a * p.q0)  # warm-up law

    def test_accepts_physical_params(self):
        f = increase_field(paper_example_params())
        dx, dy = f(0.0, np.array([0.0, 0.0]))
        assert (dx, dy) == (0.0, 0.0)


class TestIntegration:
    def test_linearized_matches_closed_form(self):
        p = norm(k=1.0, buffer_size=1e9)
        composed = PhasePlaneAnalyzer(p).compose(max_switches=8)
        horizon = composed.switch_states[-1][0]
        fluid = simulate_fluid(p, t_max=horizon, mode="linearized",
                               max_switches=20)
        ct = [t for t, _, _ in composed.switch_states]
        ft = fluid.switch_times
        assert len(ft) >= len(ct) - 1
        for c, f in zip(ct, ft):
            assert f == pytest.approx(c, abs=1e-4)

    def test_extrema_events_recorded(self):
        p = norm(k=1.0, buffer_size=1e9)
        fluid = simulate_fluid(p, t_max=20.0, mode="linearized",
                               max_switches=20)
        assert len(fluid.extrema) >= 2
        # each recorded extremum has y ~ 0
        for e in fluid.events:
            if e.kind == "extremum":
                assert abs(e.y) < 1e-5 * p.capacity

    def test_nonlinear_converges_case1(self):
        fluid = simulate_fluid(norm(), t_max=200.0, mode="nonlinear",
                               max_switches=500)
        assert fluid.converged

    def test_nonlinear_peak_below_linearized(self):
        p = norm(k=0.05, buffer_size=1e9)
        lin = simulate_fluid(p, t_max=30.0, mode="linearized", max_switches=60)
        non = simulate_fluid(p, t_max=30.0, mode="nonlinear", max_switches=60)
        assert non.max_x() <= lin.max_x() * (1 + 1e-6)

    def test_physical_pins_at_buffer(self):
        p = norm(k=0.01, buffer_size=14.0)  # peak would exceed B - q0 = 4
        fluid = simulate_fluid(p, t_max=100.0, mode="physical",
                               max_switches=500)
        assert fluid.hit_buffer_full()
        assert fluid.max_x() <= p.buffer_size - p.q0 + 1e-6

    def test_physical_warmup_start(self):
        p = norm()
        fluid = simulate_fluid(p, x0=-p.q0, y0=-50.0, t_max=300.0,
                               mode="physical", max_switches=400)
        # Pinned-empty start: x stays at -q0 while y climbs linearly
        # for T0 = 50 / (a q0) seconds (the warm-up law).
        t0 = 50.0 / (p.a * p.q0)
        early = fluid.t < t0 * 0.5
        assert np.allclose(fluid.x[early], -p.q0)
        assert fluid.converged

    def test_queue_and_rate_units(self):
        p = norm()
        fluid = simulate_fluid(p, t_max=5.0, max_switches=50)
        assert fluid.queue()[0] == pytest.approx(0.0)
        assert fluid.aggregate_rate()[0] == pytest.approx(p.capacity)

    def test_strongly_stable_helper(self):
        assert simulate_fluid(norm(), t_max=200.0, max_switches=500,
                              mode="physical").strongly_stable()
        tight = norm(k=0.01, buffer_size=14.0)
        assert not simulate_fluid(tight, t_max=100.0, max_switches=500,
                                  mode="physical").strongly_stable()

    def test_max_switch_cap(self):
        p = norm(k=0.001)  # contraction ~ 0.996: many rounds needed
        fluid = simulate_fluid(p, t_max=1e9, mode="linearized",
                               max_switches=10)
        assert fluid.end_reason == "max_switches"

    def test_events_sorted(self):
        fluid = simulate_fluid(norm(), t_max=30.0, max_switches=100)
        times = [e.time for e in fluid.events]
        assert times == sorted(times)

"""Unit tests for repro.workloads."""

import pytest

from repro.workloads.flows import FlowSpec
from repro.workloads.generators import (
    OnOffSchedule,
    homogeneous,
    incast,
    on_off,
    parallel_io,
    staggered,
)


class TestFlowSpec:
    def test_valid_spec(self):
        spec = FlowSpec(flow_id=0, src="a", dst="b", demand=1e9)
        assert spec.size_bits is None

    @pytest.mark.parametrize("kwargs", [
        dict(demand=0.0),
        dict(start_time=-1.0),
        dict(size_bits=0.0),
    ])
    def test_validation(self, kwargs):
        base = dict(flow_id=0, src="a", dst="b", demand=1e9)
        base.update(kwargs)
        with pytest.raises(ValueError):
            FlowSpec(**base)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            FlowSpec(flow_id=0, src="a", dst="a", demand=1e9)


class TestGenerators:
    def test_homogeneous(self):
        flows = homogeneous(["h0", "h1", "h2"], "sink", demand=1e8)
        assert len(flows) == 3
        assert {f.flow_id for f in flows} == {0, 1, 2}
        assert all(f.dst == "sink" and f.demand == 1e8 for f in flows)
        assert all(f.size_bits is None for f in flows)

    def test_homogeneous_requires_sources(self):
        with pytest.raises(ValueError):
            homogeneous([], "sink", demand=1e8)

    def test_incast_is_finite_and_synchronized(self):
        flows = incast(["s0", "s1"], "client", response_bits=1e6, demand=1e9)
        assert all(f.size_bits == 1e6 for f in flows)
        assert all(f.start_time == 0.0 for f in flows)
        assert all(f.dst == "client" for f in flows)

    def test_parallel_io_write_direction(self):
        flows = parallel_io(["c0", "c1"], ["s0", "s1", "s2"],
                            stripe_bits=1e6, demand=1e9, write=True)
        assert len(flows) == 6
        assert all(f.src.startswith("c") and f.dst.startswith("s")
                   for f in flows)

    def test_parallel_io_read_direction(self):
        flows = parallel_io(["c0"], ["s0", "s1"], stripe_bits=1e6,
                            demand=1e9, write=False)
        assert all(f.src.startswith("s") and f.dst == "c0" for f in flows)

    def test_staggered_spacing(self):
        flows = staggered(["h0", "h1", "h2"], "sink", demand=1e8,
                          interval=0.5)
        assert [f.start_time for f in flows] == [0.0, 0.5, 1.0]


class TestOnOff:
    def test_schedule_deterministic(self):
        s1 = OnOffSchedule(3, mean_on=1.0, mean_off=1.0, horizon=10.0, seed=7)
        s2 = OnOffSchedule(3, mean_on=1.0, mean_off=1.0, horizon=10.0, seed=7)
        assert s1.intervals == s2.intervals

    def test_different_seeds_differ(self):
        s1 = OnOffSchedule(3, mean_on=1.0, mean_off=1.0, horizon=10.0, seed=1)
        s2 = OnOffSchedule(3, mean_on=1.0, mean_off=1.0, horizon=10.0, seed=2)
        assert s1.intervals != s2.intervals

    def test_intervals_within_horizon(self):
        sched = OnOffSchedule(5, mean_on=2.0, mean_off=1.0, horizon=20.0)
        for spans in sched.intervals:
            for on, off in spans:
                assert 0.0 <= on <= off <= 20.0

    def test_duty_cycle_roughly_matches_means(self):
        sched = OnOffSchedule(40, mean_on=3.0, mean_off=1.0, horizon=500.0,
                              seed=0)
        duty = sum(sched.duty_cycle(i) for i in range(40)) / 40
        assert 0.6 <= duty <= 0.9  # expectation 0.75

    def test_active_at(self):
        sched = OnOffSchedule(1, mean_on=1.0, mean_off=1.0, horizon=10.0,
                              seed=3)
        on, off = sched.intervals[0][0]
        mid = (on + off) / 2
        assert sched.active_at(0, mid)

    def test_on_off_helper(self):
        flows, sched = on_off(["h0", "h1"], "sink", demand=1e8, mean_on=1.0,
                              mean_off=1.0, horizon=5.0)
        assert len(flows) == 2
        assert len(sched.intervals) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffSchedule(1, mean_on=0.0, mean_off=1.0, horizon=5.0)


class TestShuffle:
    def test_all_pairs(self):
        from repro.workloads.generators import shuffle

        flows = shuffle(["a", "b", "c"], transfer_bits=1e6, demand=1e9)
        assert len(flows) == 6
        pairs = {(f.src, f.dst) for f in flows}
        assert ("a", "b") in pairs and ("c", "a") in pairs
        assert all(f.src != f.dst for f in flows)
        assert all(f.size_bits == 1e6 for f in flows)

    def test_requires_two_hosts(self):
        from repro.workloads.generators import shuffle

        import pytest
        with pytest.raises(ValueError):
            shuffle(["solo"], transfer_bits=1e6, demand=1e9)


class TestPoissonShortFlows:
    def _make(self, **kw):
        from repro.workloads import poisson_short_flows

        defaults = dict(arrival_rate=1000.0, demand=1e8, size_bits=120_000,
                        horizon=0.05, seed=0)
        defaults.update(kw)
        return poisson_short_flows(["h0", "h1", "h2"], "sink", **defaults)

    def test_flows_are_finite_mice_within_horizon(self):
        flows = self._make()
        assert flows, "expect ~50 arrivals at rate 1000/s over 50 ms"
        for f in flows:
            assert 0.0 < f.start_time < 0.05
            assert f.size_bits == 120_000
            assert f.dst == "sink"
            assert f.src in {"h0", "h1", "h2"}
        starts = [f.start_time for f in flows]
        assert starts == sorted(starts)

    def test_flow_ids_continue_from_first_flow_id(self):
        flows = self._make(first_flow_id=10)
        assert [f.flow_id for f in flows] == list(
            range(10, 10 + len(flows)))

    def test_seeded_and_seed_sensitive(self):
        assert self._make() == self._make()
        a = [f.start_time for f in self._make()]
        b = [f.start_time for f in self._make(seed=1)]
        assert a != b

    def test_host_choice_stream_independent_of_arrival_stream(self):
        """Per-flow streams: flow i's host draw is keyed (seed, i), so
        doubling the arrival rate leaves earlier flows' hosts alone."""
        sparse = self._make(arrival_rate=500.0)
        dense = self._make(arrival_rate=500.0, horizon=0.1)
        n = min(len(sparse), len(dense))
        assert [f.src for f in sparse[:n]] == [f.src for f in dense[:n]]
        assert [f.start_time for f in sparse[:n]] == \
            [f.start_time for f in dense[:n]]

    def test_on_off_per_flow_streams(self):
        """OnOffSchedule flow i's intervals don't depend on n_flows."""
        from repro.workloads.generators import OnOffSchedule

        small = OnOffSchedule(2, mean_on=1.0, mean_off=1.0, horizon=20.0,
                              seed=5)
        large = OnOffSchedule(6, mean_on=1.0, mean_off=1.0, horizon=20.0,
                              seed=5)
        assert small.intervals[0] == large.intervals[0]
        assert small.intervals[1] == large.intervals[1]

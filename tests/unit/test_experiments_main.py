"""Unit tests for the experiments command-line runner."""

import pytest

from repro.experiments.__main__ import main


class TestExperimentsMain:
    def test_runs_selected_ids(self, capsys):
        code = main(["fig4", "--no-plots"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig4" in out
        assert "[PASS]" in out

    def test_csv_output(self, tmp_path, capsys):
        code = main(["fig5", "--no-plots", "--csv", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "fig5.csv").exists()

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            main(["not-an-experiment"])

    def test_plots_rendered_by_default(self, capsys):
        code = main(["fig4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "+---" in out  # ASCII figure frame

"""Unit tests for the case map and report generation."""

import numpy as np
import pytest

from repro.analysis.reporting import run_reproduction_report
from repro.core.case_map import case_boundaries, case_map
from repro.core.phase_plane import PaperCase


class TestCaseBoundaries:
    def test_thresholds(self):
        b = case_boundaries(1.0, 100.0)
        assert b["a_star"] == pytest.approx(4.0)
        assert b["b_star"] == pytest.approx(0.04)

    def test_scaling_with_k(self):
        assert case_boundaries(0.5, 100.0)["a_star"] == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            case_boundaries(0.0, 100.0)


class TestCaseMap:
    @pytest.fixture(scope="class")
    def grid(self):
        return case_map(np.geomspace(0.5, 32.0, 10),
                        np.geomspace(0.005, 0.32, 8))

    def test_quadrant_structure(self, grid):
        """Below both thresholds: Case 1; above both: Case 4; etc."""
        b = case_boundaries(grid.k, grid.capacity)
        for i, bv in enumerate(grid.b_values):
            for j, av in enumerate(grid.a_values):
                code = grid.case_codes[i, j]
                if av < b["a_star"] and bv < b["b_star"]:
                    assert code == 1
                elif av > b["a_star"] and bv < b["b_star"]:
                    assert code == 2
                elif av < b["a_star"] and bv > b["b_star"]:
                    assert code == 3
                elif av > b["a_star"] and bv > b["b_star"]:
                    assert code == 4

    def test_contraction_defined_exactly_in_case1(self, grid):
        case1 = grid.case_codes == 1
        assert np.all(np.isfinite(grid.contraction[case1]))
        assert np.all(np.isnan(grid.contraction[~case1]))
        assert np.all(grid.contraction[case1] < 1.0)

    def test_overshoot_zero_in_node_cases(self, grid):
        node = (grid.case_codes == 3) | (grid.case_codes == 4)
        assert np.all(grid.overshoot[node] == 0.0)
        spiral_d = (grid.case_codes == 1) | (grid.case_codes == 2)
        assert np.all(grid.overshoot[spiral_d] > 0.0)

    def test_buffer_ratio_formula(self, grid):
        import math

        i, j = 0, 0
        expected = 1.0 + math.sqrt(
            grid.a_values[j] / (grid.b_values[i] * grid.capacity))
        assert grid.buffer_ratio[i, j] == pytest.approx(expected)

    def test_fraction_and_ascii(self, grid):
        total = sum(
            grid.fraction_in_case(c)
            for c in (PaperCase.CASE1, PaperCase.CASE2, PaperCase.CASE3,
                      PaperCase.CASE4, PaperCase.CASE5)
        )
        assert total == pytest.approx(1.0)
        art = grid.to_ascii(title="map")
        assert art.startswith("map")
        assert "1" in art and "4" in art


class TestReporting:
    def test_report_runs_selected_experiments(self, tmp_path):
        report = run_reproduction_report(["fig4", "fig5"],
                                         csv_dir=tmp_path / "csv")
        assert report.all_passed
        assert [e.experiment_id for e in report.entries] == ["fig4", "fig5"]
        assert (tmp_path / "csv" / "fig4.csv").exists()

    def test_markdown_and_write(self, tmp_path):
        report = run_reproduction_report(["fig4"])
        text = report.to_markdown()
        assert "# Reproduction report" in text
        assert "| fig4 | PASS" in text
        path = report.write(tmp_path / "REPORT.md")
        assert path.read_text() == text

    def test_options_forwarded(self):
        report = run_reproduction_report(
            ["v3"], options_by_id={"v3": {"duration": 0.01}})
        assert report.entries[0].experiment_id == "v3"

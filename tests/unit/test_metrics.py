"""Unit tests for the analysis metrics (repro.analysis.metrics)."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    amplitude_decay_ratio,
    find_peaks,
    jain_index,
    oscillation_period,
    overshoot,
    settling_time,
    summarize_oscillation,
    undershoot,
)


def damped_wave(decay=0.2, freq=2.0, n=2000, t_end=20.0, offset=1.0):
    t = np.linspace(0.0, t_end, n)
    return t, offset + np.exp(-decay * t) * np.cos(2 * np.pi * freq / t_end * t * t_end / t_end) * np.cos(freq * t)


class TestExcursions:
    def test_overshoot(self):
        assert overshoot(np.array([0.0, 1.5, 0.8]), 1.0) == pytest.approx(0.5)
        assert overshoot(np.array([0.0, 0.9]), 1.0) == 0.0
        assert overshoot(np.array([]), 1.0) == 0.0

    def test_undershoot(self):
        assert undershoot(np.array([2.0, 0.3, 1.0]), 1.0) == pytest.approx(0.7)
        assert undershoot(np.array([1.5, 2.0]), 1.0) == 0.0


class TestSettling:
    def test_settles_after_last_excursion(self):
        t = np.linspace(0.0, 10.0, 101)
        v = np.where(t < 4.0, 3.0, 1.0)
        assert settling_time(t, v, 1.0, band=0.5) == pytest.approx(4.0)

    def test_never_settles(self):
        t = np.linspace(0.0, 10.0, 101)
        v = np.full_like(t, 5.0)
        assert settling_time(t, v, 1.0, band=0.5) is None

    def test_always_inside(self):
        t = np.linspace(0.0, 10.0, 101)
        v = np.full_like(t, 1.1)
        assert settling_time(t, v, 1.0, band=0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            settling_time(np.array([0.0]), np.array([1.0, 2.0]), 0.0, band=1.0)
        with pytest.raises(ValueError):
            settling_time(np.array([0.0, 1.0]), np.array([1.0, 2.0]), 0.0,
                          band=0.0)


class TestPeaks:
    def test_finds_sine_peaks(self):
        t = np.linspace(0.0, 4.0 * np.pi, 2000)
        peaks = find_peaks(t, np.sin(t))
        assert len(peaks) == 2
        assert peaks[0][0] == pytest.approx(np.pi / 2, abs=0.02)

    def test_prominence_filters_ripple(self):
        t = np.linspace(0.0, 4.0 * np.pi, 4000)
        v = np.sin(t) + 0.01 * np.sin(100.0 * t)
        noisy = find_peaks(t, v)
        clean = find_peaks(t, v, min_prominence_frac=0.05)
        assert len(noisy) > len(clean)
        assert len(clean) == 2

    def test_period(self):
        t = np.linspace(0.0, 20.0, 5000)
        v = np.sin(2 * np.pi * t / 3.0)
        assert oscillation_period(t, v) == pytest.approx(3.0, rel=0.02)

    def test_period_none_for_monotone(self):
        t = np.linspace(0.0, 5.0, 100)
        assert oscillation_period(t, t) is None

    def test_too_short_signal(self):
        assert find_peaks(np.array([0.0]), np.array([1.0])) == []


class TestDecayRatio:
    def test_damped_oscillation_ratio(self):
        t = np.linspace(0.0, 20.0, 8000)
        decay = 0.15
        v = 1.0 + np.exp(-decay * t) * np.cos(2.0 * t)
        ratio = amplitude_decay_ratio(t, v, 1.0)
        period = np.pi  # between successive maxima of cos(2t)
        assert ratio == pytest.approx(np.exp(-decay * period), rel=0.05)

    def test_constant_oscillation_ratio_one(self):
        t = np.linspace(0.0, 20.0, 8000)
        v = 1.0 + np.cos(2.0 * t)
        assert amplitude_decay_ratio(t, v, 1.0) == pytest.approx(1.0, abs=0.02)

    def test_none_without_peaks(self):
        t = np.linspace(0.0, 5.0, 100)
        assert amplitude_decay_ratio(t, np.zeros_like(t), 1.0) is None


class TestJain:
    def test_equal_rates_give_one(self):
        assert jain_index(np.array([5.0, 5.0, 5.0])) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_index(np.array([1.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_all_zero_defined(self):
        assert jain_index(np.zeros(3)) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index(np.array([]))


class TestSummary:
    def test_converging_classification(self):
        t = np.linspace(0.0, 30.0, 8000)
        v = 1.0 + np.exp(-0.2 * t) * np.cos(2.0 * t)
        summary = summarize_oscillation(t, v, 1.0)
        assert summary.classification == "converging"
        assert summary.n_peaks >= 3

    def test_limit_cycle_classification(self):
        t = np.linspace(0.0, 30.0, 8000)
        v = 1.0 + np.cos(2.0 * t)
        assert summarize_oscillation(t, v, 1.0).classification == "limit_cycle"

    def test_diverging_classification(self):
        t = np.linspace(0.0, 10.0, 8000)
        v = 1.0 + np.exp(0.3 * t) * np.cos(4.0 * t)
        assert summarize_oscillation(t, v, 1.0).classification == "diverging"

    def test_monotone_classification(self):
        t = np.linspace(0.0, 10.0, 500)
        v = 1.0 - np.exp(-t)
        assert summarize_oscillation(t, v, 1.0).classification == "monotone"

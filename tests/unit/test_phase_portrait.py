"""Unit tests for repro.core.phase_portrait."""

import numpy as np
import pytest

from repro.core.phase_portrait import (
    phase_portrait,
    vector_field_grid,
)
from repro.experiments.presets import CASE1_SLOW, CASE3
from repro.fluid.model import decrease_field, increase_field


class TestVectorFieldGrid:
    def test_grid_shape_and_normalisation(self):
        grid = vector_field_grid(CASE1_SLOW, x_range=(-10, 10),
                                 y_range=(-20, 20), nx=8, ny=6)
        assert grid.shape == (6, 8)
        speed = np.hypot(grid.u, grid.v)
        nonzero = grid.magnitude > 0
        assert np.allclose(speed[nonzero], 1.0)

    def test_field_matches_region_laws(self):
        p = CASE1_SLOW
        grid = vector_field_grid(p, x_range=(-10, 10), y_range=(-20, 20),
                                 nx=9, ny=9)
        inc = increase_field(p)
        dec = decrease_field(p)
        for i in range(9):
            for j in range(9):
                x, y = grid.x[i, j], grid.y[i, j]
                field = inc if x + p.k * y < 0 else dec
                du, dv = field(0.0, np.array([x, y]))
                mag = np.hypot(du, dv)
                if mag > 0:
                    assert grid.u[i, j] == pytest.approx(du / mag)
                    assert grid.v[i, j] == pytest.approx(dv / mag)

    def test_dx_dt_is_y_direction(self):
        grid = vector_field_grid(CASE1_SLOW, x_range=(-10, 10),
                                 y_range=(-20, 20), nx=5, ny=5)
        # sign(u) == sign(y) wherever speed > 0 (since dx/dt = y)
        nz = grid.magnitude > 0
        assert np.all(np.sign(grid.u[nz]) == np.sign(grid.y[nz]))


class TestPhasePortrait:
    def test_default_start_family(self):
        portrait = phase_portrait(CASE1_SLOW)
        assert len(portrait.orbits) == 7
        for orbit in portrait.orbits:
            assert orbit.ndim == 2 and orbit.shape[1] == 2
            assert np.isfinite(orbit).all()

    def test_orbits_start_where_asked(self):
        starts = [(-5.0, 0.0), (2.0, 3.0)]
        portrait = phase_portrait(CASE1_SLOW, starts=starts)
        for (x0, y0), orbit in zip(starts, portrait.orbits):
            assert orbit[0, 0] == pytest.approx(x0)
            assert orbit[0, 1] == pytest.approx(y0)

    def test_orbits_shrink_towards_origin(self):
        portrait = phase_portrait(CASE1_SLOW, max_switches=40)
        for orbit in portrait.orbits:
            start_r = np.hypot(*orbit[0])
            end_r = np.hypot(*orbit[-1])
            assert end_r < start_r + 1e-9

    def test_case3_portrait_never_overshoots(self):
        portrait = phase_portrait(CASE3, starts=[(-CASE3.q0, 0.0)])
        assert portrait.orbits[0][:, 0].max() <= 1e-9 * CASE3.q0

    def test_ascii_rendering(self):
        portrait = phase_portrait(CASE1_SLOW)
        art = portrait.to_ascii(title="portrait", height=12)
        assert "portrait" in art
        assert ":" in art  # switching line

    def test_csv_columns(self):
        portrait = phase_portrait(CASE1_SLOW, starts=[(-5.0, 0.0)])
        cols = portrait.to_csv_columns()
        assert set(cols) == {"orbit0_x", "orbit0_y"}
        assert cols["orbit0_x"].size == cols["orbit0_y"].size

    def test_bounding_box_contains_orbits(self):
        portrait = phase_portrait(CASE1_SLOW)
        x_lo, x_hi, y_lo, y_hi = portrait.bounding_box()
        for orbit in portrait.orbits:
            assert orbit[:, 0].min() >= x_lo
            assert orbit[:, 0].max() <= x_hi
            assert orbit[:, 1].min() >= y_lo
            assert orbit[:, 1].max() <= y_hi

    def test_with_grid(self):
        portrait = phase_portrait(CASE1_SLOW, with_grid=True)
        assert portrait.grid is not None
        assert portrait.grid.shape == (18, 24)

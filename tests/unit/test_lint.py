"""Tests for :mod:`repro.lint` — the repo-specific static analysis suite."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    LintError,
    check_names,
    collect_files,
    render_json,
    render_text,
    run_lint,
    worst_severity,
)
from repro.lint.core import LintProject
from repro.lint.seams import accepted_literals, seam_registries
from repro.lint.vocab import load_vocabulary

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
FIXTURES = Path(__file__).parent / "lint_fixtures"


def by_check(findings, check):
    return [f for f in findings if f.check == check]


def write_tree(root: Path, files: dict[str, str]) -> Path:
    """Lay out a synthetic ``repro`` package; returns its root dir."""
    pkg = root / "repro"
    for rel, body in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body))
    return pkg


# -- framework -------------------------------------------------------------

def test_check_registry_is_the_advertised_five():
    assert check_names() == (
        "engine-seam", "kernel-parity", "obs-vocab", "rng", "wall-clock")


def test_collect_files_dedups_and_rejects_missing(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "b.py").write_text("y = 2\n")
    files = collect_files([tmp_path, tmp_path / "a.py"])
    assert [f.name for f in files] == ["a.py", "b.py"]
    with pytest.raises(LintError):
        collect_files([tmp_path / "nope.py"])


def test_unknown_select_raises():
    with pytest.raises(LintError, match="unknown check"):
        run_lint([FIXTURES / "rng_clean.py"], select=["bogus"])


def test_reporters_round_trip():
    findings = run_lint([FIXTURES / "rng_bad.py"], select=["rng"])
    assert findings
    text = render_text(findings)
    assert "[rng]" in text and "error(s)" in text
    doc = json.loads(render_json(findings))
    assert doc["summary"]["errors"] == len(findings)
    assert doc["findings"][0]["check"] == "rng"
    assert worst_severity(findings) == 1
    assert worst_severity([]) == 0


# -- rng -------------------------------------------------------------------

def test_rng_flags_every_module_level_and_unseeded_site():
    findings = by_check(
        run_lint([FIXTURES / "rng_bad.py"], select=["rng"]), "rng")
    lines = sorted(f.line for f in findings)
    # from-import, rand, random.random, seed, two unseeded constructors
    # via attribute, one via bare name, one unseeded random.Random
    assert len(findings) == 7
    assert lines[0] == 7  # the banned from-import
    assert any("without a seed" in f.message for f in findings)
    assert any("module-level" in f.message for f in findings)


def test_rng_accepts_seeded_generators():
    assert run_lint([FIXTURES / "rng_clean.py"], select=["rng"]) == []


# -- wall-clock ------------------------------------------------------------

def test_wall_clock_flags_clocks_timers_and_set_iteration():
    findings = by_check(
        run_lint([FIXTURES / "wallclock_bad.py"], select=["wall-clock"]),
        "wall-clock")
    messages = " | ".join(f.message for f in findings)
    assert len(findings) == 5
    assert "time.time" in messages
    assert "datetime.datetime.now" in messages
    assert "time.perf_counter" in messages
    assert "imported by name" in messages
    assert "hash-seed" in messages


def test_wall_clock_suppressions_and_sorted_sets_are_clean():
    assert run_lint([FIXTURES / "wallclock_clean.py"]) == []


def test_timers_allowed_outside_hot_packages(tmp_path):
    # A file that maps into a non-hot repro package keeps its monotonic
    # timers without suppression; the wall clock stays banned.
    pkg = write_tree(tmp_path, {"runner/timing.py": """\
        import time

        def wall():
            a = time.perf_counter()
            b = time.time()
            return a, b
        """})
    findings = run_lint([pkg / "runner" / "timing.py"],
                        select=["wall-clock"], repro_root=pkg)
    assert [f.message for f in findings] == [
        "time.time reads the wall clock; simulated time is the only "
        "time in this repo"]


# -- suppressions ----------------------------------------------------------

def test_suppression_meta_check():
    findings = run_lint([FIXTURES / "suppression_bad.py"])
    sup = by_check(findings, "suppression")
    assert len(sup) == 3
    assert not by_check(findings, "wall-clock")  # consumed on line 7
    reasons = {f.line: f.message for f in sup}
    assert "without a reason" in reasons[7]
    assert "unknown check" in reasons[8]
    assert "unused suppression" in reasons[9]
    assert [f.severity for f in sup] == ["error", "error", "warning"]


def test_select_does_not_misreport_foreign_suppressions():
    # A wall-clock suppression must be neither "unknown" nor "unused"
    # when the wall-clock check was simply not selected.
    findings = run_lint([FIXTURES / "wallclock_clean.py"], select=["rng"])
    assert findings == []


# -- obs-vocab -------------------------------------------------------------

_OBS_TREE = {
    "obs/trace.py": """\
        EVENT_KINDS = frozenset({"drop", "bcn"})
        """,
    "obs/vocab.py": """\
        SPAN_NAMES = ("runner.sweep",)
        SPAN_PREFIXES = ()
        SPAN_SUFFIXES = (".run",)
        COUNTER_NAMES = ("runner.cache_hit",)
        COUNTER_PREFIXES = ("events.",)
        HISTOGRAM_NAMES = ()
        HISTOGRAM_PREFIXES = ("queue_frac.",)
        GAUGE_NAMES = ()
        """,
}


def test_obs_vocab_resolves_literals_and_templates(tmp_path):
    pkg = write_tree(tmp_path, dict(_OBS_TREE, **{"sim/emit.py": """\
        def instrument(obs, engine):
            obs.event("drop", 0.0)
            obs.event("dorp", 0.0)
            obs.inc("runner.cache_hit")
            obs.count("runner.cache_hti", 2)
            obs.observe(f"queue_frac.{engine}", 0.5)
            obs.observe(f"bogus.{engine}", 0.5)
            with obs.span(f"packet.{engine}.run"):
                pass
            emit_sign_switches(trace, kind="bcn")
            emit_sign_switches(trace, kind="extremum")
        """}))
    findings = run_lint([pkg / "sim" / "emit.py"], select=["obs-vocab"],
                        repro_root=pkg)
    flagged = sorted((f.line, f.message.split("'")[1]) for f in findings)
    assert flagged == [
        (3, "dorp"), (5, "runner.cache_hti"), (7, "bogus.*"),
        (11, "extremum"),
    ]


def test_obs_vocab_warns_when_registries_missing(tmp_path):
    target = tmp_path / "emit.py"
    target.write_text("def f(obs):\n    obs.event('drop', 0.0)\n")
    findings = run_lint([target], select=["obs-vocab"],
                        repro_root=tmp_path / "nothing")
    assert [f.severity for f in findings] == ["warning"]
    assert "cannot locate" in findings[0].message


def test_real_vocabulary_matches_runtime_registries():
    from repro.obs import trace as rt_trace
    from repro.obs import vocab as rt_vocab

    vocab = load_vocabulary(LintProject(files=[], repro_root=SRC))
    assert vocab is not None
    assert vocab.events == rt_trace.EVENT_KINDS
    assert vocab.names["counter"] == frozenset(rt_vocab.COUNTER_NAMES)
    assert vocab.names["span"] == frozenset(rt_vocab.SPAN_NAMES)
    assert vocab.names["histogram"] == frozenset(rt_vocab.HISTOGRAM_NAMES)
    assert rt_vocab.registered_counter("runner.cache_hit")
    assert rt_vocab.registered_counter("events.drop")
    assert not rt_vocab.registered_counter("events.not_a_kind")
    assert rt_vocab.registered_span("kernels.jit_warmup.numba")
    assert not rt_vocab.registered_span("kernels.jit_warmup.")
    assert rt_vocab.registered_histogram("queue_frac.packet.reference")
    assert not rt_vocab.registered_gauge("anything")


# -- engine-seam -----------------------------------------------------------

_SEAM_TREE = {
    "simulation/network.py": """\
        PACKET_ENGINES = ("reference", "batched", "compiled")
        """,
}


def test_engine_seam_literals_and_dispatch(tmp_path):
    pkg = write_tree(tmp_path, dict(_SEAM_TREE, **{"sim/run.py": """\
        def typo(engine):
            return engine == "referense"

        def partial(engine):
            if engine == "reference":
                return 1
            elif engine == "batched":
                return 2

        def total(engine):
            if engine == "reference":
                return 1
            elif engine == "batched":
                return 2
            else:
                return 3

        def tagged(obs):
            obs.attach(engine="packet.reference")
            engine = "packet.referense"
            return engine

        def defaults(engine="compiled", fluid_method="numpyy"):
            return run(fluid_method="auto")
        """}))
    findings = run_lint([pkg / "sim" / "run.py"], select=["engine-seam"],
                        repro_root=pkg)
    got = sorted((f.line, f.message.split("'")[1]) for f in findings
                 if "not a registered" in f.message)
    assert (2, "referense") in got          # comparison literal
    assert (20, "packet.referense") in got  # bad obs tag assignment
    assert (23, "numpyy") in got            # bad seam default
    dispatch = [f for f in findings if "dispatch covers" in f.message]
    assert [f.line for f in dispatch] == [5]
    assert "compiled" in dispatch[0].message
    assert len(findings) == 4


def test_seam_registry_tracks_runtime_packet_engines():
    from repro.simulation.network import PACKET_ENGINES

    project = LintProject(files=[], repro_root=SRC)
    registries = seam_registries(project)
    assert registries["engine"] == frozenset(PACKET_ENGINES)
    accepted = accepted_literals(registries)
    assert "packet.reference" in accepted["engine"]
    assert "fluid.compiled" in accepted["engine"]
    assert "" in accepted["engine"]
    assert "packet.referense" not in accepted["engine"]
    assert accepted["fluid_method"] == registries["fluid_method"]


def test_seam_registry_tracks_runtime_job_kinds():
    from repro.serve import JOB_KINDS

    project = LintProject(files=[], repro_root=SRC)
    registries = seam_registries(project)
    assert registries["job_kind"] == frozenset(JOB_KINDS)
    accepted = accepted_literals(registries)
    assert accepted["job_kind"] == registries["job_kind"]


def test_job_kind_seam_literals_and_dispatch(tmp_path):
    pkg = write_tree(tmp_path, dict(_SEAM_TREE, **{"serve/route.py": """\
        def typo(job_kind):
            return job_kind == "experimentt"

        def partial(job_kind):
            if job_kind == "experiment":
                return 1
            elif job_kind == "scenario":
                return 2

        def total(job_kind):
            if job_kind == "experiment":
                return 1
            elif job_kind == "scenario":
                return 2
            else:
                return 3

        def keyword():
            return submit(job_kind="sweeep")
        """}))
    findings = run_lint([pkg / "serve" / "route.py"], select=["engine-seam"],
                        repro_root=pkg)
    unknown = sorted((f.line, f.message.split("'")[1]) for f in findings
                     if "not a registered" in f.message)
    assert unknown == [(2, "experimentt"), (19, "sweeep")]
    dispatch = [f for f in findings if "dispatch covers" in f.message]
    assert [f.line for f in dispatch] == [5]
    assert "sweep" in dispatch[0].message
    assert len(findings) == 3


# -- kernel-parity ---------------------------------------------------------

_KERNEL_TREE = {
    "kernels/_scalar.py": """\
        def add_one(x, out):
            for i in range(out.shape[0]):
                out[i] = x[i] + 1.0
            return out.shape[0]
        """,
    "kernels/_backend.py": """\
        from . import _scalar

        class KernelBackend:
            add_one = staticmethod(_scalar.add_one)

        class _NumbaKernels(KernelBackend):
            def __init__(self):
                self.add_one = jit(_scalar.add_one)

        class _CffiKernels(KernelBackend):
            def add_one(self, x, out):
                return self._lib.k_add_one(
                    x.shape[0], self._d(x), self._d(out))
        """,
    "kernels/_cbuild.py": '''\
        CDEF = """
        int64_t k_add_one(int64_t n, double *x, double *out);
        """
        ''',
}


def _parity(tmp_path, **overrides):
    tree = dict(_KERNEL_TREE, **overrides)
    pkg = write_tree(tmp_path, tree)
    return run_lint([pkg / "kernels" / "_backend.py"],
                    select=["kernel-parity"], repro_root=pkg)


def test_kernel_parity_clean_tree(tmp_path):
    assert _parity(tmp_path) == []


def test_kernel_parity_flags_signature_drift(tmp_path):
    findings = _parity(tmp_path, **{"kernels/_backend.py": """\
        from . import _scalar

        class KernelBackend:
            add_one = staticmethod(_scalar.add_one)

        class _NumbaKernels(KernelBackend):
            def __init__(self):
                self.add_one = jit(_scalar.add_one)

        class _CffiKernels(KernelBackend):
            def add_one(self, x, result):
                return self._lib.k_add_one(
                    x.shape[0], self._d(x), self._d(result))
        """})
    messages = " | ".join(f.message for f in findings)
    assert "signatures drifted" in messages      # out vs result
    assert "names the parameter 'out'" in messages


def test_kernel_parity_flags_missing_jit_and_arity(tmp_path):
    findings = _parity(tmp_path, **{"kernels/_backend.py": """\
        from . import _scalar

        class KernelBackend:
            add_one = staticmethod(_scalar.add_one)

        class _NumbaKernels(KernelBackend):
            def __init__(self):
                pass

        class _CffiKernels(KernelBackend):
            def add_one(self, x, out):
                return self._lib.k_add_one(self._d(x), self._d(out))
        """})
    messages = " | ".join(f.message for f in findings)
    assert "never jits kernel 'add_one'" in messages
    assert "declares 3" in messages              # called with 2 args


def test_kernel_parity_flags_dtype_drift_and_dead_prototypes(tmp_path):
    findings = _parity(tmp_path, **{"kernels/_cbuild.py": '''\
        CDEF = """
        int64_t k_add_one(int64_t n, float *x, double *out);
        int64_t k_orphan(int64_t n);
        """
        '''})
    messages = " | ".join(f.message for f in findings)
    assert "marshalled as double* but the C prototype declares float*" \
        in messages
    assert "k_orphan" in messages and "never referenced" in messages


def test_kernel_parity_flags_object_mode_scalar_bodies(tmp_path):
    findings = _parity(tmp_path, **{"kernels/_scalar.py": """\
        def add_one(x, out):
            cache = {}
            for i in range(out.shape[0]):
                out[i] = x[i] + 1.0
            return len(cache)
        """})
    assert any("dict literal" in f.message
               and "not" in f.message for f in findings)


def test_kernel_parity_skips_non_repro_trees(tmp_path):
    target = tmp_path / "standalone.py"
    target.write_text("def f():\n    return 1\n")
    assert run_lint([target], select=["kernel-parity"],
                    repro_root=tmp_path) == []


# -- the real tree ---------------------------------------------------------

def test_real_src_tree_is_lint_clean():
    findings = run_lint([SRC])
    assert findings == [], "\n" + render_text(findings)


def test_cli_lint_subcommand(capsys):
    from repro.cli import main

    assert main(["lint", "--list-checks"]) == 0
    out = capsys.readouterr().out
    assert out.split() == list(check_names())

    assert main(["lint", str(FIXTURES / "rng_bad.py"),
                 "--select", "rng", "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["errors"] > 0

    assert main(["lint", str(FIXTURES / "rng_clean.py")]) == 0
    assert "0 error(s)" in capsys.readouterr().out

    assert main(["lint", "--select", "nope", str(FIXTURES)]) == 2
    assert "unknown check" in capsys.readouterr().err

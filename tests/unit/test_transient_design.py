"""Unit tests for repro.core.transient and repro.core.design."""

import math

import pytest

from repro.core.design import (
    design_report,
    design_w,
    headroom_ratio,
    max_flows,
    max_gi,
    max_q0,
    min_buffer,
    min_gd,
)
from repro.core.limit_cycle import linearized_contraction
from repro.core.parameters import BCNParams, NormalizedParams, paper_example_params
from repro.core.phase_plane import PaperCase
from repro.core.stability import required_buffer, theorem1_criterion
from repro.core.transient import (
    overshoot_ratio,
    round_period,
    settling_rounds,
    settling_time,
    transient_report,
)


def norm(a=2.0, b=0.02, k=0.1):
    return NormalizedParams(a=a, b=b, k=k, capacity=100.0, q0=10.0,
                            buffer_size=200.0)


class TestTransient:
    def test_round_period_formula(self):
        p = norm()
        beta_i = math.sqrt(p.a - (p.a * p.k / 2) ** 2)
        beta_d = math.sqrt(p.b * p.capacity
                           - (p.b * p.capacity * p.k / 2) ** 2)
        assert round_period(p) == pytest.approx(
            math.pi / beta_i + math.pi / beta_d)

    def test_round_period_matches_composed_switch_spacing(self):
        from repro.core.phase_plane import PhasePlaneAnalyzer

        p = norm()
        traj = PhasePlaneAnalyzer(p).compose(max_switches=8)
        times = [t for t, _, _ in traj.switch_states]
        # after the first partial round, crossings come every half-round
        spacing = times[3] - times[1]
        assert spacing == pytest.approx(round_period(p), rel=1e-9)

    def test_round_period_rejects_node_cases(self):
        with pytest.raises(ValueError):
            round_period(norm(a=8.0, k=1.0))

    def test_settling_rounds_consistency(self):
        p = norm()
        rho = linearized_contraction(p)
        n = settling_rounds(p, fraction=0.01)
        assert rho**n == pytest.approx(0.01, rel=1e-9)
        assert settling_time(p) == pytest.approx(n * round_period(p))

    def test_settling_fraction_validation(self):
        with pytest.raises(ValueError):
            settling_rounds(norm(), fraction=1.5)

    def test_overshoot_ratio_by_case(self):
        assert overshoot_ratio(norm()) > 0  # case 1
        assert overshoot_ratio(norm(a=8.0, b=0.02, k=1.0)) > 0  # case 2
        assert overshoot_ratio(norm(a=2.0, b=0.08, k=1.0)) == 0.0  # case 3
        assert overshoot_ratio(norm(a=8.0, b=0.08, k=1.0)) == 0.0  # case 4

    def test_report_case1_fields(self):
        report = transient_report(norm())
        assert report.case is PaperCase.CASE1
        assert report.contraction is not None and report.contraction < 1
        assert report.round_period is not None
        assert report.settling_time_1pct is not None
        assert "rho=" in report.summary()

    def test_report_case3_fields(self):
        report = transient_report(norm(a=2.0, b=0.08, k=1.0))
        assert report.contraction is None
        assert report.overshoot_ratio == 0.0
        assert report.crossings == 1

    def test_report_physical_includes_warmup(self):
        report = transient_report(paper_example_params(), max_switches=20)
        assert report.warmup_time == pytest.approx(
            paper_example_params().warmup_duration())


class TestDesign:
    def params(self, **overrides):
        config = dict(capacity=10e9, n_flows=50, q0=2.5e6, buffer_size=20e6)
        config.update(overrides)
        return BCNParams(**config)

    def test_headroom(self):
        p = self.params()
        assert headroom_ratio(p) == pytest.approx(
            20e6 / required_buffer(p))

    def test_max_flows_is_tight(self):
        p = self.params()
        n_max = max_flows(p)
        assert theorem1_criterion(p.with_(n_flows=n_max))
        assert not theorem1_criterion(p.with_(n_flows=n_max + 1))

    def test_max_gi_is_tight(self):
        p = self.params()
        gi_max = max_gi(p)
        assert theorem1_criterion(p.with_(gi=gi_max * 0.999))
        assert not theorem1_criterion(p.with_(gi=gi_max * 1.001))

    def test_min_gd_is_tight(self):
        p = self.params()
        gd_min = min_gd(p)
        assert theorem1_criterion(p.with_(gd=gd_min * 1.001))
        assert not theorem1_criterion(p.with_(gd=gd_min * 0.999))

    def test_max_q0_is_tight(self):
        p = self.params()
        q0_max = max_q0(p)
        assert theorem1_criterion(p.with_(q0=q0_max * 0.999))
        assert not theorem1_criterion(p.with_(q0=q0_max * 1.001))

    def test_min_buffer_alias(self):
        p = self.params()
        assert min_buffer(p) == required_buffer(p)

    def test_design_w_achieves_target(self):
        # gentle regime where a Case-1 solution exists
        p = BCNParams(capacity=1e9, n_flows=10, q0=2e6, buffer_size=16e6,
                      pm=0.1, gd=1e-5, ru=400.0)
        target = 0.5
        w = design_w(p, settle_seconds=target)
        achieved = settling_time(p.with_(w=w))
        assert achieved == pytest.approx(target, rel=0.05)

    def test_design_w_validation(self):
        with pytest.raises(ValueError):
            design_w(self.params(), settle_seconds=0.0)

    def test_design_report_verdicts(self):
        ok = design_report(self.params())
        assert ok.admitted
        assert "ADMITTED" in ok.render()
        bad = design_report(self.params(buffer_size=5e6))
        assert not bad.admitted
        assert "REJECTED" in bad.render()

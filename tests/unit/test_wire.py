"""Unit tests for the Fig. 2 wire format (repro.simulation.wire)."""

import pytest

from repro.simulation.frames import BCN_ETHERTYPE, BCNMessage
from repro.simulation.wire import (
    WIRE_LENGTH_BYTES,
    pack_bcn,
    unpack_bcn,
)


def message(fb=-5.0, da=7, cpid="core-0"):
    return BCNMessage(da=da, sa="sw", cpid=cpid, fb=fb, q_off=0.0,
                      q_delta=0.0, fb_raw=fb)


class TestPacking:
    def test_frame_is_26_bytes(self):
        assert len(pack_bcn(message())) == WIRE_LENGTH_BYTES == 26

    def test_round_trip_preserves_fields(self):
        wire = unpack_bcn(pack_bcn(message(fb=-12.0, da=42),
                                   switch_address=0xABCDEF))
        assert wire.da == 42
        assert wire.sa == 0xABCDEF
        assert wire.ethertype == BCN_ETHERTYPE
        assert wire.is_bcn
        assert wire.fb_quanta == -12
        assert not wire.positive

    def test_positive_feedback_flag(self):
        wire = unpack_bcn(pack_bcn(message(fb=3.0)))
        assert wire.positive

    def test_sigma_quantum_scales_fb(self):
        wire = unpack_bcn(pack_bcn(message(fb=-1000.0), sigma_quantum=250.0))
        assert wire.fb_quanta == -4

    def test_fb_saturates_at_32_bits(self):
        wire = unpack_bcn(pack_bcn(message(fb=-1e30)))
        assert wire.fb_quanta == -(2**31)
        wire = unpack_bcn(pack_bcn(message(fb=1e30)))
        assert wire.fb_quanta == 2**31 - 1

    def test_distinct_cpids_distinct_wire_values(self):
        w1 = unpack_bcn(pack_bcn(message(cpid="core-0")))
        w2 = unpack_bcn(pack_bcn(message(cpid="core-1")))
        assert w1.cpid != w2.cpid

    def test_same_cpid_is_stable(self):
        w1 = unpack_bcn(pack_bcn(message(cpid="p0a1->p0e0")))
        w2 = unpack_bcn(pack_bcn(message(cpid="p0a1->p0e0")))
        assert w1.cpid == w2.cpid


class TestValidation:
    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            unpack_bcn(b"\x00" * 10)

    def test_rejects_oversized_address(self):
        with pytest.raises(ValueError):
            pack_bcn(message(da=2**48))

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            pack_bcn(message(), sigma_quantum=0.0)

"""Unit tests for repro.analysis.sweeps and repro.analysis.validation."""

import numpy as np
import pytest

from repro.analysis.sweeps import SweepResult, grid, sweep
from repro.analysis.validation import compare_series
from repro.core.parameters import BCNParams
from repro.core.stability import required_buffer


def base_params():
    return BCNParams(capacity=1e9, n_flows=10, q0=1e6, buffer_size=8e6)


class TestGrid:
    def test_cartesian_product(self):
        combos = grid(a=[1, 2], b=["x", "y", "z"])
        assert len(combos) == 6
        assert {(c["a"], c["b"]) for c in combos} == {
            (1, "x"), (1, "y"), (1, "z"), (2, "x"), (2, "y"), (2, "z")
        }

    def test_single_axis(self):
        assert grid(n=[1, 2, 3]) == [{"n": 1}, {"n": 2}, {"n": 3}]


class TestSweep:
    def test_records_contain_overrides_and_results(self):
        result = sweep(
            base_params(),
            {"n_flows": [5, 10, 20]},
            lambda p: {"buffer": required_buffer(p)},
        )
        assert len(result.records) == 3
        assert result.records[0]["n_flows"] == 5
        assert all("buffer" in r for r in result.records)
        # more flows -> more buffer
        buffers = result.column("buffer")
        assert buffers[0] < buffers[1] < buffers[2]

    def test_skip_invalid_combinations(self):
        result = sweep(
            base_params(),
            {"q0": [1e6, 9e6]},  # 9e6 > buffer 8e6: invalid
            lambda p: {"ok": True},
        )
        assert len(result.records) == 1

    def test_strict_mode_raises(self):
        with pytest.raises(ValueError):
            sweep(base_params(), {"q0": [9e6]}, lambda p: {},
                  skip_invalid=False)

    def test_where_filter(self):
        result = sweep(base_params(), {"n_flows": [5, 10]},
                       lambda p: {"v": p.n_flows * 2})
        assert result.where(n_flows=5)[0]["v"] == 10

    def test_to_rows_and_csv(self, tmp_path):
        result = sweep(base_params(), {"n_flows": [5, 10]},
                       lambda p: {"v": 1.0})
        rows = result.to_rows(["n_flows", "v"])
        assert rows == [[5, 1.0], [10, 1.0]]
        path = tmp_path / "out.csv"
        result.to_csv(str(path), ["n_flows", "v"])
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "n_flows,v"
        assert len(lines) == 3

    def test_to_csv_accepts_path_and_returns_it(self, tmp_path):
        result = sweep(base_params(), {"n_flows": [5]}, lambda p: {"v": 1.0})
        out = result.to_csv(tmp_path / "nested" / "out.csv")
        assert out == tmp_path / "nested" / "out.csv"
        assert out.exists()

    def test_to_csv_quotes_values_with_commas(self, tmp_path):
        result = sweep(base_params(), {"n_flows": [5]},
                       lambda p: {"label": "case1, spiral", "v": 2.0})
        path = result.to_csv(tmp_path / "out.csv", ["n_flows", "label", "v"])
        lines = path.read_text().splitlines()
        # the embedded comma must not add a column
        assert lines[1] == '5,"case1, spiral",2'
        import csv

        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[1] == ["5", "case1, spiral", "2"]

    def test_to_csv_escapes_quotes_and_formats_floats(self, tmp_path):
        result = sweep(base_params(), {"n_flows": [5]},
                       lambda p: {"q": 'say "hi"', "x": 1.0 / 3.0})
        path = result.to_csv(tmp_path / "out.csv", ["q", "x"])
        line = path.read_text().splitlines()[1]
        # RFC-4180 doubled quotes; floats in write_csv's .10g format
        assert line == '"say ""hi""",0.3333333333'

    def test_csv_requires_records(self, tmp_path):
        empty = SweepResult(axes={})
        with pytest.raises(ValueError):
            empty.to_csv(str(tmp_path / "x.csv"))


class TestCompareSeries:
    def test_identical_series_agree(self):
        t = np.linspace(0.0, 10.0, 300)
        v = 1.0 + np.exp(-0.3 * t) * np.cos(3.0 * t)
        report = compare_series(t, v, t, v, reference_level=1.0)
        assert report.nrmse == pytest.approx(0.0, abs=1e-12)
        assert report.peak_ratio == pytest.approx(1.0)
        assert report.mean_ratio == pytest.approx(1.0)
        assert report.reference_class == report.candidate_class
        assert report.period_ratio == pytest.approx(1.0)
        assert report.agrees()

    def test_scaled_series_detected(self):
        t = np.linspace(0.0, 10.0, 300)
        v = 1.0 + np.exp(-0.3 * t) * np.cos(3.0 * t)
        report = compare_series(t, v, t, 3.0 * v, reference_level=1.0)
        assert report.peak_ratio == pytest.approx(3.0, rel=0.01)
        assert not report.agrees()

    def test_non_overlapping_rejected(self):
        t1 = np.linspace(0.0, 1.0, 10)
        t2 = np.linspace(2.0, 3.0, 10)
        with pytest.raises(ValueError):
            compare_series(t1, t1, t2, t2, reference_level=0.0)

    def test_short_series_rejected(self):
        with pytest.raises(ValueError):
            compare_series(np.array([0.0]), np.array([1.0]),
                           np.array([0.0, 1.0]), np.array([1.0, 2.0]),
                           reference_level=0.0)

"""Unit tests for the batch fluid kernel and its limit-cycle fast path.

The heavy differential coverage (batch vs ``solve_ivp`` on random
parameters) lives in ``tests/property/test_prop_batch_fluid.py``; this
module pins the deterministic contracts: step/horizon heuristics, edge
cases of the ensemble state machine, input validation, and — the point
of the fast path — that :func:`repro.core.limit_cycle.find_limit_cycle`
locates the *same* cycle through the batched bracket scan as through
the sequential reference scan.
"""

import math

import numpy as np
import pytest

import repro.core.limit_cycle as lc
import repro.fluid.batch as batch_mod
from repro.core.limit_cycle import amplitude_scan, find_limit_cycle
from repro.core.parameters import NormalizedParams
from repro.fluid.batch import (
    batch_return_map,
    default_horizon,
    default_time_step,
    simulate_fluid_batch,
    switched_derivatives,
)
from repro.experiments.presets import CASE1_SLOW


def norm(**overrides) -> NormalizedParams:
    base = dict(a=2.0, b=0.02, k=0.1, capacity=100.0, q0=10.0,
                buffer_size=200.0)
    base.update(overrides)
    return NormalizedParams(**base)


class TestHeuristics:
    def test_default_time_step_resolves_fastest_spiral(self):
        p = norm()
        dt = default_time_step(p)
        omega = math.sqrt(max(p.n_increase, p.n_decrease))
        # ~300 steps per period of the fastest focus
        assert 2.0 * math.pi / (omega * dt) > 250.0

    def test_default_time_step_scale_knob(self):
        p = norm()
        assert default_time_step(p, dt_scale=0.04) == pytest.approx(
            2.0 * default_time_step(p, dt_scale=0.02)
        )

    def test_default_horizon_reaches_convergence_ball(self):
        p = norm()
        t_max = default_horizon(p)
        res = simulate_fluid_batch(p, np.array([-0.8 * p.q0]), 0.0,
                                   t_max=t_max, max_switches=500)
        assert bool(res.converged[0])

    def test_default_horizon_capped_by_max_switches(self):
        p = norm()
        assert default_horizon(p, max_switches=4) < default_horizon(p)


class TestEnsembleEdgeCases:
    def test_start_inside_convergence_ball_freezes_at_t0(self):
        p = norm()
        res = simulate_fluid_batch(p, np.array([0.0]), np.array([0.0]),
                                   t_max=5.0)
        assert bool(res.converged[0])
        assert res.end_reason[0] == "converged"
        assert res.t_end[0] == 0.0
        assert int(res.switch_counts[0]) == 0

    def test_physical_pinned_start_registers_empty_buffer(self):
        p = norm()
        res = simulate_fluid_batch(
            p, np.array([-p.q0]), np.array([-0.2 * p.capacity]),
            t_max=5.0, mode="physical",
        )
        assert bool(res.hit_buffer_empty()[0])
        # the pinned row rejoins the interior flow and keeps integrating
        assert res.t_end[0] > 0.0

    def test_scalar_starts_broadcast_to_ensemble(self):
        p = norm()
        res = simulate_fluid_batch(p, -p.q0, np.array([0.0, 1.0, 2.0]),
                                   t_max=1.0)
        assert res.n_rows == 3
        np.testing.assert_allclose(res.x[0], -p.q0)

    def test_step_budget_guard(self):
        with pytest.raises(ValueError, match="steps"):
            simulate_fluid_batch(norm(), np.array([-1.0]), t_max=1e9)


class TestSwitchedDerivatives:
    def test_field_matches_region_laws_off_the_line(self):
        p = norm()
        states = np.array([[5.0, 2.0],    # s > 0: decrease law
                           [-5.0, 2.0]])  # s < 0: increase law
        for rule in ("decrease", "flow"):
            d = switched_derivatives(p, states, on_line=rule)
            s = states[:, 0] + p.k * states[:, 1]
            np.testing.assert_allclose(d[:, 0], states[:, 1])
            assert d[0, 1] == pytest.approx(
                -p.b * (states[0, 1] + p.capacity) * s[0])
            assert d[1, 1] == pytest.approx(-p.a * s[1])

    def test_on_line_acceleration_vanishes_under_both_conventions(self):
        # exactly on s = 0 the acceleration is -coef * s = 0 whichever
        # region the convention assigns, so the two rules agree there
        p = norm()
        state = np.array([-p.k * -5.0, -5.0])
        for rule in ("decrease", "flow"):
            d = switched_derivatives(p, state, on_line=rule)
            assert d[0] == -5.0
            assert d[1] == 0.0

    def test_unknown_on_line_rule_raises(self):
        with pytest.raises(ValueError, match="on_line"):
            switched_derivatives(norm(), np.zeros(2), on_line="bogus")


class TestBatchReturnMapValidation:
    def test_rejects_nonpositive_ordinates(self):
        with pytest.raises(ValueError, match="y > 0"):
            batch_return_map(norm(), np.array([10.0, -1.0]))

    def test_rejects_ordinates_at_capacity(self):
        p = norm()
        with pytest.raises(ValueError, match="y < C"):
            batch_return_map(p, np.array([p.capacity]))

    def test_requires_case1(self):
        p = norm(a=0.5, b=0.005, k=3.0)  # node-type regions
        with pytest.raises(ValueError, match="Case 1"):
            batch_return_map(p, np.array([10.0]))


class TestFindLimitCycleScanParity:
    def test_both_scans_agree_no_cycle_exists(self):
        # Proposition 1: the nonlinear Case-1 map contracts everywhere,
        # so the generic outcome — through either scan — is None.
        assert find_limit_cycle(CASE1_SLOW, scan="batch") is None
        assert find_limit_cycle(CASE1_SLOW, scan="reference") is None

    def test_unknown_scan_method_raises(self):
        with pytest.raises(ValueError, match="scan"):
            find_limit_cycle(CASE1_SLOW, scan="bogus")

    def test_amplitude_scan_methods_agree(self):
        p = CASE1_SLOW
        ys = np.geomspace(0.01, 0.8, 9) * p.capacity
        fast = amplitude_scan(p, ys, method="batch")
        slow = amplitude_scan(p, ys, method="reference")
        np.testing.assert_allclose(fast[:, 1], slow[:, 1], rtol=0, atol=1e-3)

    @staticmethod
    def _patch_synthetic_cycle(monkeypatch, batch_values=None,
                               batch_error=None):
        """Install P(y) = 0.5 y + 0.2 C in both scan backends.

        The real dynamics have no interior cycle (Proposition 1), so the
        found-cycle path is exercised against a synthetic contraction
        map with the isolated fixed point ``y* = 0.4 C``.
        """
        c = CASE1_SLOW.capacity

        def fake_map(params, y, *, mode="nonlinear", t_max=None,
                     with_orbit=False):
            out = 0.5 * y + 0.2 * c
            if with_orbit:
                orbit = np.array([[0.0, -y, y], [1.0, y, -y]])
                return out, 1.0, orbit
            return out

        def fake_batch(params, ys, *, mode="nonlinear", **kwargs):
            ys = np.asarray(ys, dtype=float)
            if batch_error is not None:
                raise batch_error
            if batch_values is not None:
                return batch_values(ys)
            return 0.5 * ys + 0.2 * c

        monkeypatch.setattr(lc, "return_map", fake_map)
        monkeypatch.setattr(batch_mod, "batch_return_map", fake_batch)
        return 0.4 * c

    def test_batched_scan_finds_same_cycle_amplitude(self, monkeypatch):
        y_star = self._patch_synthetic_cycle(monkeypatch)
        via_batch = find_limit_cycle(CASE1_SLOW, scan="batch")
        via_ref = find_limit_cycle(CASE1_SLOW, scan="reference")
        assert via_batch is not None and via_ref is not None
        tol = 1e-3 * CASE1_SLOW.capacity
        assert abs(via_batch.entry_ordinate - y_star) < tol
        assert abs(via_batch.entry_ordinate - via_ref.entry_ordinate) < tol
        assert abs(via_batch.queue_amplitude - via_ref.queue_amplitude) < tol
        assert via_batch.stable and via_batch.derivative == pytest.approx(0.5)

    def test_batch_scan_falls_back_on_runtime_error(self, monkeypatch):
        y_star = self._patch_synthetic_cycle(
            monkeypatch, batch_error=RuntimeError("no re-cross"))
        cycle = find_limit_cycle(CASE1_SLOW, scan="batch")
        assert cycle is not None
        assert cycle.entry_ordinate == pytest.approx(y_star, abs=1e-6)

    def test_spurious_batch_bracket_defers_to_reference(self, monkeypatch):
        # Batch values shifted so the sign change lands where the
        # reference residual has none: the re-check must reject the
        # bracket and re-scan sequentially, still finding y*.
        c = CASE1_SLOW.capacity
        y_star = self._patch_synthetic_cycle(
            monkeypatch,
            batch_values=lambda ys: 0.5 * ys + 0.05 * c,  # fixed pt 0.1 C
        )
        cycle = find_limit_cycle(CASE1_SLOW, scan="batch")
        assert cycle is not None
        assert cycle.entry_ordinate == pytest.approx(y_star, abs=1e-6)

"""Unit tests for the declarative scenario layer (repro.scenarios)."""

import pytest

from repro.scenarios import (
    CapacityChange,
    FlowArrival,
    FlowDeparture,
    IncastBurst,
    LinkOutage,
    PRESETS,
    Scenario,
    ScenarioPoint,
    base_params,
    evaluate_scenario_point,
    get_preset,
    piecewise_capacity,
    preset_names,
    run_scenario,
    sinusoidal_capacity,
)


def _scenario(events=(), **kw):
    defaults = dict(name="t", params=base_params(), duration=0.02,
                    events=tuple(events))
    defaults.update(kw)
    return Scenario(**defaults)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FlowArrival(t=-1e-3, demand=1e8)

    def test_nonfinite_time_rejected(self):
        with pytest.raises(ValueError):
            LinkOutage(t=float("nan"), duration=1e-3)

    def test_nonpositive_fields_rejected(self):
        with pytest.raises(ValueError):
            FlowArrival(t=0.0, demand=0.0)
        with pytest.raises(ValueError):
            FlowArrival(t=0.0, demand=1e8, size_bits=-1.0)
        with pytest.raises(ValueError):
            IncastBurst(t=0.0, n_servers=0, response_bits=1e5, demand=1e8)
        with pytest.raises(ValueError):
            LinkOutage(t=0.0, duration=0.0)
        with pytest.raises(ValueError):
            CapacityChange(t=0.0, capacity=0.0)
        with pytest.raises(ValueError):
            FlowDeparture(t=0.0, address=-1)


class TestScenarioContainer:
    def test_events_sorted_canonically(self):
        late = FlowArrival(t=0.01, demand=1e8)
        early = CapacityChange(t=0.001, capacity=5e8)
        s = _scenario([late, early])
        assert s.events == (early, late)

    def test_same_timestamp_ordered_by_kind_rank(self):
        t = 0.005
        arrival = FlowArrival(t=t, demand=1e8)
        outage = LinkOutage(t=t, duration=1e-3)
        capacity = CapacityChange(t=t, capacity=5e8)
        departure = FlowDeparture(t=t, address=0)
        s = _scenario([departure, arrival, outage, capacity])
        assert s.events == (capacity, outage, arrival, departure)

    def test_departure_of_unknown_address_rejected(self):
        with pytest.raises(ValueError, match="departure"):
            _scenario([FlowDeparture(t=0.0, address=99)])

    def test_bad_container_fields_rejected(self):
        with pytest.raises(ValueError):
            _scenario(name="")
        with pytest.raises(ValueError):
            _scenario(duration=0.0)
        with pytest.raises(ValueError):
            _scenario(frame_bits=0)
        with pytest.raises(TypeError):
            _scenario(["not an event"])

    def test_with_re_sorts(self):
        s = _scenario()
        s2 = s.with_(events=(FlowArrival(t=0.01, demand=1e8),
                             CapacityChange(t=0.001, capacity=5e8)))
        assert s2.events[0].t == 0.001
        assert s.events == ()  # original untouched


class TestCapacityViews:
    def test_profile_and_transitions(self):
        s = _scenario(piecewise_capacity([(0.005, 6e8), (0.010, 1e9)]))
        assert s.capacity_profile() == [(0.0, 1e9), (0.005, 6e8),
                                        (0.010, 1e9)]
        assert s.n_capacity_transitions() == 2

    def test_events_beyond_horizon_ignored(self):
        s = _scenario([CapacityChange(t=1.0, capacity=5e8)])
        assert s.n_capacity_transitions() == 0
        assert s.capacity_integral() == pytest.approx(1e9 * 0.02)

    def test_integral_with_steps_and_outage(self):
        s = _scenario(
            piecewise_capacity([(0.01, 5e8)])
            + (LinkOutage(t=0.005, duration=0.01),)
        )
        # 1e9 * 5ms (pre-outage) + 5e8 * 5ms (post-outage tail at 5e8);
        # [5, 10) ms of 1e9 and [10, 15) ms of 5e8 are frozen.
        assert s.capacity_integral() == pytest.approx(
            1e9 * 0.005 + 5e8 * 0.005)

    def test_sinusoidal_capacity_shape(self):
        steps = sinusoidal_capacity(base=1e9, amplitude=2e8, period=0.01,
                                    t_start=0.0, t_end=0.01, steps=4)
        assert len(steps) == 5
        assert steps[-1].capacity == 1e9
        assert all(0 < c.capacity for c in steps)

    def test_sinusoidal_capacity_validation(self):
        with pytest.raises(ValueError):
            sinusoidal_capacity(base=1e9, amplitude=1e9, period=0.01,
                                t_start=0.0, t_end=0.01)
        with pytest.raises(ValueError):
            sinusoidal_capacity(base=1e9, amplitude=1e8, period=0.01,
                                t_start=0.01, t_end=0.01)
        with pytest.raises(ValueError):
            sinusoidal_capacity(base=1e9, amplitude=1e8, period=0.01,
                                t_start=0.0, t_end=0.01, steps=1)

    def test_dynamic_flow_count(self):
        s = _scenario([
            FlowArrival(t=0.001, demand=1e8),
            IncastBurst(t=0.002, n_servers=8, response_bits=1e5,
                        demand=1e8),
            FlowDeparture(t=0.003, address=0),
        ])
        assert s.dynamic_flow_count() == 9


class TestPresets:
    def test_registry_names(self):
        assert preset_names() == sorted(PRESETS)
        assert "incast-32" in PRESETS

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown scenario preset"):
            get_preset("nope")

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_build_and_validate(self, name):
        s = get_preset(name, seed=1)
        assert s.name == name
        assert s.seed == 1
        assert s.duration > 0
        # canonical order holds by construction
        times = [e.t for e in s.events]
        assert times == sorted(times)

    def test_varying_capacity_meets_acceptance_floor(self):
        assert get_preset("varying-capacity").n_capacity_transitions() >= 2

    def test_incast_preset_has_pause_threshold(self):
        s = get_preset("incast-32")
        assert s.params.q_sc is not None
        burst = s.events[0]
        assert isinstance(burst, IncastBurst)
        # offered rate must oversubscribe the port to force the episode
        assert burst.n_servers * burst.demand > s.params.capacity


class TestRuntime:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown packet engine"):
            run_scenario(_scenario(), engine="quantum")

    def test_finite_flows_report_fct_and_slowdown(self):
        s = _scenario(
            [FlowArrival(t=0.001, demand=2e8, size_bits=10 * 12_000.0)],
            duration=0.01,
        )
        result = run_scenario(s, engine="reference")
        (flow,) = result.flows
        assert flow.finish_time is not None
        assert flow.fct > 0
        assert flow.slowdown >= 1.0 - 1e-9  # cannot beat size/demand
        assert result.fcts == {flow.address: flow.fct}
        assert result.unfinished == []

    def test_unfinished_flow_has_no_fct(self):
        s = _scenario(
            [FlowArrival(t=0.001, demand=1e6, size_bits=1e9)],
            duration=0.005,
        )
        result = run_scenario(s, engine="reference")
        (flow,) = result.flows
        assert flow.finish_time is None
        assert flow.fct is None and flow.slowdown is None
        assert result.unfinished == [flow.address]


class TestSweep:
    def test_point_validates_preset_and_engine(self):
        with pytest.raises(ValueError):
            ScenarioPoint(preset="nope")
        with pytest.raises(ValueError):
            ScenarioPoint(preset="dc-baseline", engine="quantum")
        point = ScenarioPoint(preset="dc-baseline")
        with pytest.raises(ValueError):
            point.with_(engine="quantum")

    def test_evaluate_record_shape(self):
        record = evaluate_scenario_point(
            ScenarioPoint(preset="varying-capacity", engine="batched"))
        assert record["preset"] == "varying-capacity"
        assert record["engine"] == "batched"
        assert 0.9 < record["utilization"] <= 1.0 + 1e-9
        assert record["n_dynamic_flows"] == 0
        assert record["fct_mean"] is None and record["fct_p99"] is None
        assert record["fcts"] == []


class TestScenarioCli:
    def test_list_shows_registry(self, capsys):
        from repro.cli import main

        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        for name in preset_names():
            assert name in out

    def test_single_run_reports_metrics(self, capsys):
        from repro.cli import main

        assert main(["scenario", "varying-capacity", "--engine", "batched",
                     "--plot"]) == 0
        out = capsys.readouterr().out
        assert "capacity transitions" in out
        assert "utilization" in out
        assert "queue q(t)" in out

    def test_sweep_reports_per_seed_rows(self, capsys):
        from repro.cli import main

        assert main(["scenario", "dc-baseline", "--seeds", "2",
                     "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "seed" in out
        assert "2 seeds on the reference engine" in out

"""Unit tests for repro.topology (graphs + routing)."""

import networkx as nx
import pytest

from repro.topology.graphs import dcell, dumbbell, fat_tree, hosts, monsoon, switches
from repro.topology.routing import (
    bottleneck_edge,
    ecmp_route,
    route_edges,
    shortest_route,
)


class TestDumbbell:
    def test_structure(self):
        g = dumbbell(5, capacity=1e9)
        hs = hosts(g)
        assert len(hs) == 6  # 5 sources + sink
        assert "sink" in hs
        assert g.edges["core0", "sink"]["capacity"] == 1e9

    def test_edge_uplink_scales_with_sources(self):
        g = dumbbell(4, capacity=1e9)
        assert g.edges["edge0", "core0"]["capacity"] == 4e9

    def test_rejects_zero_sources(self):
        with pytest.raises(ValueError):
            dumbbell(0)


class TestFatTree:
    def test_k4_counts(self):
        g = fat_tree(4)
        assert len(hosts(g)) == 16  # k^3/4
        assert len(switches(g)) == 20  # 4 core + 8 agg + 8 edge
        assert g.number_of_edges() == 48

    def test_k6_host_count(self):
        assert len(hosts(fat_tree(6))) == 54

    def test_all_links_same_capacity(self):
        g = fat_tree(4, capacity=7e9)
        assert all(d["capacity"] == 7e9 for _, _, d in g.edges(data=True))

    def test_connected(self):
        assert nx.is_connected(fat_tree(4))

    def test_rejects_odd_arity(self):
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_inter_pod_path_length(self):
        g = fat_tree(4)
        hs = hosts(g)
        # hosts in different pods are 6 hops apart (h-e-a-c-a-e-h)
        path = shortest_route(g, "p0e0h0", "p1e0h0")
        assert len(path) == 7


class TestDCell:
    def test_level0(self):
        g = dcell(4, 0)
        assert len(hosts(g)) == 4
        assert len(switches(g)) == 1

    def test_level1_counts(self):
        g = dcell(4, 1)
        # t1 = n * (n + 1) = 20 hosts in n+1 = 5 cells
        assert len(hosts(g)) == 20
        assert len(switches(g)) == 5

    def test_level1_cross_links(self):
        g = dcell(3, 1)
        # C(4,2) = 6 host-to-host links between cells
        host_links = [
            (u, v) for u, v, in g.edges()
            if g.nodes[u]["kind"] == "host" and g.nodes[v]["kind"] == "host"
        ]
        assert len(host_links) == 6

    def test_connected(self):
        assert nx.is_connected(dcell(4, 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            dcell(1)
        with pytest.raises(ValueError):
            dcell(4, 3)


class TestMonsoon:
    def test_counts(self):
        g = monsoon(4, n_aggs=2, n_hosts_per_tor=4)
        assert len(hosts(g)) == 16
        assert len(switches(g)) == 6
        # complete bipartite tor-agg core: 4*2 links + 16 host links
        assert g.number_of_edges() == 24

    def test_dual_homing(self):
        g = monsoon(3, n_aggs=2)
        for t in range(3):
            assert g.degree[f"tor{t}"] == 2 + 4  # 2 aggs + 4 hosts

    def test_validation(self):
        with pytest.raises(ValueError):
            monsoon(0)


class TestRouting:
    def test_shortest_route_endpoints(self):
        g = fat_tree(4)
        path = shortest_route(g, "p0e0h0", "p3e1h1")
        assert path[0] == "p0e0h0"
        assert path[-1] == "p3e1h1"

    def test_ecmp_deterministic_per_flow(self):
        g = fat_tree(4)
        r1 = ecmp_route(g, "p0e0h0", "p1e0h0", flow_id=42)
        r2 = ecmp_route(g, "p0e0h0", "p1e0h0", flow_id=42)
        assert r1 == r2

    def test_ecmp_spreads_flows(self):
        g = fat_tree(4)
        routes = {tuple(ecmp_route(g, "p0e0h0", "p1e0h0", flow_id=i))
                  for i in range(32)}
        assert len(routes) > 1  # multiple equal-cost paths used

    def test_ecmp_routes_are_shortest(self):
        g = fat_tree(4)
        base = len(shortest_route(g, "p0e0h0", "p1e0h0"))
        for i in range(8):
            assert len(ecmp_route(g, "p0e0h0", "p1e0h0", flow_id=i)) == base

    def test_route_edges(self):
        assert route_edges(["a", "b", "c"]) == [("a", "b"), ("b", "c")]

    def test_bottleneck_edge(self):
        g = dumbbell(4)
        routes = [shortest_route(g, f"h{i}", "sink") for i in range(4)]
        edge, count = bottleneck_edge(g, routes)
        assert count == 4
        assert set(edge) <= {"edge0", "core0", "sink"}

    def test_bottleneck_edge_empty(self):
        with pytest.raises(ValueError):
            bottleneck_edge(dumbbell(2), [])

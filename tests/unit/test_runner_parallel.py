"""Unit tests for the parallel sweep runner (repro.runner.parallel).

The Hypothesis differential suite lives in
``tests/property/test_prop_runner.py``; these are the deterministic
corner cases: ordering, skip/strict semantics, chunking, worker
resolution and instrumentation.
"""

import pytest

from repro.analysis.sweeps import sweep
from repro.core.parameters import BCNParams
from repro.core.stability import required_buffer
from repro.runner import ResultCache, RunnerStats, resolve_workers, run_sweep_parallel

BASE = BCNParams(capacity=1e9, n_flows=10, q0=1e6, buffer_size=8e6)
AXES = {"n_flows": [5, 10, 20], "q0": [1e6, 2e6]}


def evaluate(params: BCNParams) -> dict:
    return {"buffer": required_buffer(params), "flows": params.n_flows}


def failing_evaluate(params: BCNParams) -> dict:
    raise RuntimeError("boom")


class TestResolveWorkers:
    def test_none_means_cpu_count(self):
        import os

        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_explicit_passthrough(self):
        assert resolve_workers(0) == 0
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestDifferential:
    @pytest.mark.parametrize("workers", [0, 1, 2])
    def test_matches_serial_reference(self, workers):
        serial = sweep(BASE, AXES, evaluate)
        parallel = run_sweep_parallel(BASE, AXES, evaluate, workers=workers)
        assert parallel.axes == serial.axes
        assert parallel.records == serial.records

    @pytest.mark.parametrize("chunk_size", [1, 2, 100])
    def test_chunking_preserves_order(self, chunk_size):
        serial = sweep(BASE, AXES, evaluate)
        parallel = run_sweep_parallel(
            BASE, AXES, evaluate, workers=2, chunk_size=chunk_size
        )
        assert parallel.records == serial.records

    def test_skip_invalid_matches_serial(self):
        axes = {"q0": [1e6, 9e6]}  # 9e6 >= buffer: invalid, skipped
        serial = sweep(BASE, axes, evaluate)
        parallel = run_sweep_parallel(BASE, axes, evaluate, workers=2)
        assert len(parallel.records) == 1
        assert parallel.records == serial.records

    def test_strict_mode_raises_like_serial(self):
        with pytest.raises(ValueError):
            run_sweep_parallel(BASE, {"q0": [9e6]}, evaluate,
                               workers=0, skip_invalid=False)

    def test_evaluate_errors_propagate(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_sweep_parallel(BASE, AXES, failing_evaluate, workers=2)

    def test_empty_grid(self):
        result = run_sweep_parallel(BASE, {"n_flows": []}, evaluate, workers=2)
        assert result.records == []


class TestCacheIntegration:
    def test_second_run_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_sweep_parallel(BASE, AXES, evaluate, workers=0, cache=cache)
        stats = RunnerStats()
        second = run_sweep_parallel(
            BASE, AXES, evaluate, workers=0, cache=cache, stats=stats
        )
        assert second.records == first.records
        assert stats.evaluated == 0
        assert stats.cache_hits == len(first.records)
        assert stats.cache_hit_rate == 1.0

    def test_cache_shared_between_parallel_and_inline(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep_parallel(BASE, AXES, evaluate, workers=2, cache=cache)
        stats = RunnerStats()
        run_sweep_parallel(BASE, AXES, evaluate, workers=0, cache=cache,
                           stats=stats)
        assert stats.evaluated == 0

    def test_distinct_cache_ids_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep_parallel(BASE, AXES, evaluate, workers=0, cache=cache,
                           cache_id="one")
        stats = RunnerStats()
        run_sweep_parallel(BASE, AXES, evaluate, workers=0, cache=cache,
                           cache_id="two", stats=stats)
        assert stats.cache_hits == 0

    def test_base_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep_parallel(BASE, AXES, evaluate, workers=0, cache=cache)
        stats = RunnerStats()
        run_sweep_parallel(BASE.with_(w=3.0), AXES, evaluate, workers=0,
                           cache=cache, stats=stats)
        assert stats.cache_hits == 0


class TestInstrumentation:
    def test_stats_populated(self):
        stats = RunnerStats()
        run_sweep_parallel(BASE, AXES, evaluate, workers=2, stats=stats)
        assert len(stats.points) == 6
        assert stats.evaluated == 6
        assert stats.elapsed > 0
        assert stats.workers == 2
        assert stats.compute_wall > 0
        assert 0 < stats.utilization <= 1.0
        assert stats.max_point_wall >= stats.mean_point_wall

    def test_summary_table_and_notes_render(self):
        stats = RunnerStats()
        run_sweep_parallel(BASE, AXES, evaluate, workers=0, stats=stats)
        table = stats.summary_table()
        assert "work units" in table and "worker utilization" in table
        notes = stats.notes()
        assert any("runner:" in line for line in notes)


# -- persistent worker pool (repro.runner.pool) ----------------------------


class Accumulator:
    """Module-level actor class so pool workers can unpickle it."""

    def __init__(self, start=0):
        self.total = start

    def add(self, x):
        self.total += x
        return self.total

    def boom(self):
        raise RuntimeError("remote failure")


class TestPersistentWorkerPool:
    def test_actors_keep_state_across_calls(self):
        from repro.runner.pool import PersistentWorkerPool

        with PersistentWorkerPool(2) as pool:
            pool.create(0, "acc", Accumulator, 10)
            pool.result(0)
            assert pool.call_sync(0, "acc", "add", 5) == 15
            assert pool.call_sync(0, "acc", "add", 5) == 20

    def test_pipelined_calls_reply_in_order(self):
        from repro.runner.pool import PersistentWorkerPool

        with PersistentWorkerPool(1) as pool:
            pool.create(0, "acc", Accumulator)
            pool.result(0)
            for x in (1, 2, 3):
                pool.call(0, "acc", "add", x)
            assert [pool.result(0) for _ in range(3)] == [1, 3, 6]

    def test_remote_exception_surfaces_as_worker_error(self):
        from repro.runner.pool import PersistentWorkerPool, WorkerError

        with PersistentWorkerPool(1) as pool:
            pool.create(0, "acc", Accumulator)
            pool.result(0)
            with pytest.raises(WorkerError) as exc_info:
                pool.call_sync(0, "acc", "boom")
            assert exc_info.value.worker == 0
            assert "remote failure" in exc_info.value.remote_traceback
            # the worker survives its own exception
            assert pool.call_sync(0, "acc", "add", 1) == 1

    def test_result_without_command_is_an_error(self):
        from repro.runner.pool import PersistentWorkerPool

        with PersistentWorkerPool(1) as pool:
            with pytest.raises(RuntimeError, match="no outstanding"):
                pool.result(0)

    def test_closed_pool_rejects_commands(self):
        from repro.runner.pool import PersistentWorkerPool

        pool = PersistentWorkerPool(1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.create(0, "acc", Accumulator)

    def test_rejects_zero_workers(self):
        from repro.runner.pool import PersistentWorkerPool

        with pytest.raises(ValueError):
            PersistentWorkerPool(0)

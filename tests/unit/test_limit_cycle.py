"""Unit tests for repro.core.limit_cycle (Poincaré return map)."""

import math

import numpy as np
import pytest

from repro.core.limit_cycle import (
    amplitude_scan,
    contraction_ratio,
    find_limit_cycle,
    linearized_contraction,
    return_map,
)
from repro.core.parameters import NormalizedParams


def norm(a=2.0, b=0.02, k=0.1):
    return NormalizedParams(a=a, b=b, k=k, capacity=100.0, q0=10.0,
                            buffer_size=1e9)


class TestLinearizedContraction:
    def test_closed_form(self):
        p = norm()
        a, bc, k = p.a, p.b * p.capacity, p.k
        alpha_i, beta_i = -a * k / 2, math.sqrt(a - (a * k / 2) ** 2)
        alpha_d, beta_d = -bc * k / 2, math.sqrt(bc - (bc * k / 2) ** 2)
        expected = math.exp(math.pi * (alpha_i / beta_i + alpha_d / beta_d))
        assert linearized_contraction(p) == pytest.approx(expected)

    def test_below_one(self):
        for k in (0.5, 0.1, 0.01):
            assert 0 < linearized_contraction(norm(k=k)) < 1

    def test_monotone_in_k(self):
        rhos = [linearized_contraction(norm(k=k)) for k in (0.5, 0.1, 0.01)]
        assert rhos[0] < rhos[1] < rhos[2]

    def test_rejects_node_cases(self):
        with pytest.raises(ValueError):
            linearized_contraction(norm(a=8.0, k=1.0))


class TestReturnMap:
    def test_linearized_map_is_linear(self):
        p = norm()
        rho = linearized_contraction(p)
        for y in (1.0, 10.0, 50.0):
            assert return_map(p, y, mode="linearized") == pytest.approx(
                rho * y, rel=1e-6)

    def test_nonlinear_contracts_at_least_as_much(self):
        p = norm()
        rho = linearized_contraction(p)
        for y in (5.0, 30.0, 80.0):
            assert contraction_ratio(p, y) <= rho * (1 + 1e-6)

    def test_returns_to_upper_half_line(self):
        p = norm()
        y2, period, orbit = return_map(p, 20.0, with_orbit=True)
        assert y2 > 0
        assert period > 0
        # orbit starts on the line and is time-ordered
        assert orbit[0, 1] + p.k * orbit[0, 2] == pytest.approx(
            0.0, abs=1e-6 * 20.0)
        assert np.all(np.diff(orbit[:, 0]) >= 0)

    def test_rejects_bad_ordinates(self):
        p = norm()
        with pytest.raises(ValueError):
            return_map(p, -1.0)
        with pytest.raises(ValueError):
            return_map(p, 150.0)  # above capacity in nonlinear mode

    def test_linearized_allows_large_ordinates(self):
        p = norm()
        assert return_map(p, 150.0, mode="linearized") > 0

    def test_rejects_node_region_cases(self):
        with pytest.raises(ValueError):
            return_map(norm(a=8.0, k=1.0), 1.0)


class TestSearch:
    def test_no_cycle_for_generic_parameters(self):
        assert find_limit_cycle(norm()) is None

    def test_amplitude_scan_shape_and_values(self):
        p = norm()
        scan = amplitude_scan(p, np.array([1.0, 10.0, 40.0]))
        assert scan.shape == (3, 2)
        assert np.all(scan[:, 1] < 1.0)
        assert np.all(scan[:, 0] == [1.0, 10.0, 40.0])

"""Unit tests for repro.core.phase_plane (composer + taxonomy)."""

import math

import numpy as np
import pytest

from repro.core.eigen import Region
from repro.core.parameters import NormalizedParams
from repro.core.phase_plane import (
    PaperCase,
    PhasePlaneAnalyzer,
    WarmupSegment,
    classify_case,
)


def norm(a, b, k=1.0, q0=10.0, buffer_size=100.0):
    return NormalizedParams(a=a, b=b, k=k, capacity=100.0, q0=q0,
                            buffer_size=buffer_size)


CASE_TABLE = [
    (2.0, 0.02, PaperCase.CASE1),
    (8.0, 0.02, PaperCase.CASE2),
    (2.0, 0.08, PaperCase.CASE3),
    (8.0, 0.08, PaperCase.CASE4),
    (4.0, 0.02, PaperCase.CASE5),  # a at the threshold
    (2.0, 0.04, PaperCase.CASE5),  # bC at the threshold
]


class TestClassification:
    @pytest.mark.parametrize("a,b,expected", CASE_TABLE)
    def test_six_case_table(self, a, b, expected):
        assert classify_case(norm(a, b)) is expected

    def test_analyzer_exposes_case(self):
        assert PhasePlaneAnalyzer(norm(2.0, 0.02)).case is PaperCase.CASE1

    def test_analyzer_accepts_physical_params(self):
        from repro.core.parameters import paper_example_params

        analyzer = PhasePlaneAnalyzer(paper_example_params())
        assert analyzer.case is PaperCase.CASE1

    def test_region_of_resolves_flow_on_line(self):
        analyzer = PhasePlaneAnalyzer(norm(2.0, 0.02))
        assert analyzer.region_of(-1.0, 1.0) is Region.DECREASE  # on line, y>0
        assert analyzer.region_of(1.0, -1.0) is Region.INCREASE


class TestComposition:
    def test_segments_are_continuous(self):
        analyzer = PhasePlaneAnalyzer(norm(2.0, 0.02))
        traj = analyzer.compose(max_switches=10)
        for prev, nxt in zip(traj.segments, traj.segments[1:]):
            end = prev.end_state()
            start = nxt.start_state
            assert end[0] == pytest.approx(start[0], abs=1e-9)
            assert end[1] == pytest.approx(start[1], abs=1e-9)
            assert nxt.t_start == pytest.approx(prev.t_end)

    def test_regions_alternate(self):
        traj = PhasePlaneAnalyzer(norm(2.0, 0.02)).compose(max_switches=10)
        regions = [seg.region for seg in traj.segments]
        assert all(r1 is not r2 for r1, r2 in zip(regions, regions[1:]))

    def test_switch_states_lie_on_line(self):
        p = norm(2.0, 0.02)
        traj = PhasePlaneAnalyzer(p).compose(max_switches=10)
        assert traj.n_switches > 0
        for _, x, y in traj.switch_states:
            assert x + p.k * y == pytest.approx(0.0, abs=1e-6 * (abs(x) + 1))

    def test_starts_at_canonical_point(self):
        p = norm(2.0, 0.02)
        traj = PhasePlaneAnalyzer(p).compose()
        assert traj.segments[0].start_state == (pytest.approx(-p.q0), 0.0)
        assert traj.segments[0].region is Region.INCREASE

    def test_case1_converges(self):
        traj = PhasePlaneAnalyzer(norm(2.0, 0.02)).compose(max_switches=100)
        assert traj.converged
        assert traj.end_reason == "converged"

    def test_case3_single_switch_then_final(self):
        traj = PhasePlaneAnalyzer(norm(2.0, 0.08)).compose(max_switches=10)
        assert traj.n_switches == 1
        assert math.isinf(traj.segments[-1].duration)

    def test_max_min_match_dense_sampling(self):
        p = norm(2.0, 0.02, k=0.1, buffer_size=1e9)
        traj = PhasePlaneAnalyzer(p).compose(max_switches=30)
        samples = traj.sample(2000)
        assert traj.max_x() == pytest.approx(float(samples[:, 1].max()),
                                             rel=1e-4)
        assert traj.min_x() == pytest.approx(float(samples[:, 1].min()),
                                             rel=1e-4)

    def test_extrema_recorded_with_alternating_signs(self):
        p = norm(2.0, 0.02, k=0.1, buffer_size=1e9)
        traj = PhasePlaneAnalyzer(p).compose(max_switches=12)
        signs = [np.sign(x) for _, x in traj.extrema]
        assert len(signs) >= 4
        assert all(s1 != s2 for s1, s2 in zip(signs, signs[1:]))

    def test_min_x_after_start_excludes_initial_point(self):
        p = norm(2.0, 0.08)  # Case 3: never returns to -q0
        traj = PhasePlaneAnalyzer(p).compose(max_switches=10)
        assert traj.min_x() == pytest.approx(-p.q0)  # the start itself
        assert traj.min_x_after_start() > -p.q0

    def test_time_limit_respected(self):
        p = norm(2.0, 0.02, k=0.01)
        traj = PhasePlaneAnalyzer(p).compose(max_switches=1000, t_max=1.0)
        assert traj.total_duration <= 1.0 + 1e-9
        assert traj.end_reason in ("time_limit", "converged")

    def test_amplitude_trend_below_one_for_case1(self):
        p = norm(2.0, 0.02, k=0.1, buffer_size=1e9)
        traj = PhasePlaneAnalyzer(p).compose(max_switches=20)
        trend = traj.amplitude_trend()
        assert trend is not None
        assert 0 < trend < 1

    def test_overflow_detection(self):
        p = norm(2.0, 0.02, k=0.01, q0=10.0, buffer_size=12.0)
        traj = PhasePlaneAnalyzer(p).compose(max_switches=10)
        assert traj.overflows()

    def test_queue_series_units(self):
        p = norm(2.0, 0.02)
        traj = PhasePlaneAnalyzer(p).compose(max_switches=6)
        t, q, rate = traj.queue_time_series(50)
        assert q[0] == pytest.approx(0.0)  # starts empty
        assert rate[0] == pytest.approx(p.capacity)
        assert np.all(np.diff(t) >= -1e-12)


class TestWarmup:
    def test_warmup_segment_math(self):
        seg = WarmupSegment(t_start=0.0, y_start=-50.0, a=2.0, q0=10.0)
        assert seg.duration == pytest.approx(50.0 / 20.0)
        x, y = seg.state(seg.duration)
        assert (x, y) == (pytest.approx(-10.0), pytest.approx(0.0))

    def test_compose_with_warmup(self):
        p = norm(2.0, 0.02)
        traj = PhasePlaneAnalyzer(p).compose(
            include_warmup=True, initial_rate_offset=-50.0, max_switches=10)
        assert traj.warmup is not None
        assert traj.warmup.duration == pytest.approx(50.0 / (p.a * p.q0))
        # first real segment starts when warm-up ends
        assert traj.segments[0].t_start == pytest.approx(traj.warmup.duration)
        samples = traj.sample(50)
        assert samples[0, 1] == pytest.approx(-p.q0)
        assert samples[0, 2] == pytest.approx(-50.0)

    def test_warmup_conflicts_with_explicit_start(self):
        with pytest.raises(ValueError):
            PhasePlaneAnalyzer(norm(2.0, 0.02)).compose(
                x0=0.0, include_warmup=True)

    def test_warmup_requires_deficit_rate(self):
        with pytest.raises(ValueError):
            PhasePlaneAnalyzer(norm(2.0, 0.02)).compose(
                include_warmup=True, initial_rate_offset=5.0)


class TestDiagnostics:
    def test_first_round_peak_positive_for_case1(self):
        analyzer = PhasePlaneAnalyzer(norm(2.0, 0.02, k=0.1, buffer_size=1e9))
        assert analyzer.first_round_peak() > 0

    def test_first_round_trough_negative(self):
        analyzer = PhasePlaneAnalyzer(norm(2.0, 0.02, k=0.1, buffer_size=1e9))
        assert analyzer.first_round_trough() < 0

    def test_switching_ordinates_alternate_and_decay(self):
        analyzer = PhasePlaneAnalyzer(norm(2.0, 0.02, k=0.1, buffer_size=1e9))
        ys = analyzer.switching_ordinates(n_rounds=5)
        assert len(ys) >= 6
        assert all(y1 * y2 < 0 for y1, y2 in zip(ys, ys[1:]))
        assert abs(ys[2]) < abs(ys[0])

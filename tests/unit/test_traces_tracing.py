"""Unit tests for synthetic traces and DES tracing."""

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.frames import BCNMessage, EthernetFrame, PauseFrame
from repro.simulation.switch import CoreSwitch
from repro.simulation.tracing import FrameTracer, TraceEvent
from repro.workloads.traces import TraceConfig, generate_trace


HOSTS = [f"h{i}" for i in range(8)]


def config(**overrides):
    base = dict(arrival_rate=200.0, mean_size_bits=1e6, horizon=1.0, seed=7)
    base.update(overrides)
    return TraceConfig(**base)


class TestTraceGeneration:
    def test_reproducible(self):
        t1 = generate_trace(config(), HOSTS)
        t2 = generate_trace(config(), HOSTS)
        assert [f.start_time for f in t1.flows] == [
            f.start_time for f in t2.flows]
        assert [f.size_bits for f in t1.flows] == [
            f.size_bits for f in t2.flows]

    def test_different_seeds_differ(self):
        t1 = generate_trace(config(seed=1), HOSTS)
        t2 = generate_trace(config(seed=2), HOSTS)
        assert [f.size_bits for f in t1.flows] != [
            f.size_bits for f in t2.flows]

    def test_arrival_count_roughly_poisson(self):
        trace = generate_trace(config(arrival_rate=500.0, horizon=2.0), HOSTS)
        # mean 1000; allow +-20%
        assert 800 <= trace.n_flows <= 1200

    def test_sizes_within_bounds(self):
        trace = generate_trace(config(), HOSTS)
        for flow in trace.flows:
            assert config().min_size_bits <= flow.size_bits <= config().max_size_bits

    def test_mean_size_calibrated(self):
        trace = generate_trace(config(arrival_rate=2000.0, horizon=2.0), HOSTS)
        mean = trace.total_bits() / trace.n_flows
        assert mean == pytest.approx(1e6, rel=0.5)  # heavy tail: loose

    def test_heavy_tail_elephant_share(self):
        trace = generate_trace(config(arrival_rate=2000.0, horizon=2.0), HOSTS)
        # a minority of flows above 8 Mbit carries a large byte share
        big_flows = sum(1 for f in trace.flows if f.size_bits >= 8e6)
        assert big_flows / trace.n_flows < 0.2
        assert trace.elephant_share(threshold_bits=8e6) > 0.3

    def test_sink_mode(self):
        trace = generate_trace(config(), HOSTS, sink="collector")
        assert all(f.dst == "collector" for f in trace.flows)
        assert all(f.src in HOSTS for f in trace.flows)

    def test_start_times_ordered_within_horizon(self):
        trace = generate_trace(config(), HOSTS)
        starts = [f.start_time for f in trace.flows]
        assert starts == sorted(starts)
        assert all(0 <= s < 1.0 for s in starts)

    def test_offered_load(self):
        trace = generate_trace(config(arrival_rate=1000.0, horizon=1.0), HOSTS)
        load = trace.offered_load(1e9)
        assert load == pytest.approx(trace.total_bits() / 1e9, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            config(arrival_rate=0.0)
        with pytest.raises(ValueError):
            config(pareto_shape=0.9)
        with pytest.raises(ValueError):
            generate_trace(config(), ["only-one"])


class TestFrameTracer:
    def make_switch(self, tracer):
        sim = Simulator()
        switch = CoreSwitch(sim, cpid="sw0", capacity=12000.0, q0=60000.0,
                            buffer_bits=24000.0)
        tracer.attach_switch(switch)
        return sim, switch

    def frame(self, src=0):
        return EthernetFrame(src=src, dst="sink", size_bits=12000,
                             flow_id=src)

    def test_records_arrivals_and_departures(self):
        tracer = FrameTracer()
        sim, switch = self.make_switch(tracer)
        switch.receive(self.frame(0))
        switch.receive(self.frame(1))
        sim.run()
        counts = tracer.counts()
        assert counts["arrive"] == 2
        assert counts["depart"] == 2

    def test_records_drops(self):
        tracer = FrameTracer()
        sim, switch = self.make_switch(tracer)
        for i in range(6):
            switch.receive(self.frame(i))
        assert tracer.counts().get("drop", 0) >= 1

    def test_flow_filter(self):
        tracer = FrameTracer()
        sim, switch = self.make_switch(tracer)
        switch.receive(self.frame(0))
        switch.receive(self.frame(7))
        sim.run()
        assert all(e.flow_id == 7 for e in tracer.for_flow(7))
        assert len(tracer.for_flow(7)) == 2  # arrive + depart

    def test_control_hook_traces_bcn_and_pause(self):
        tracer = FrameTracer()
        seen = []
        handler = tracer.control_hook("h0")(seen.append)
        handler(BCNMessage(da=0, sa="s", cpid="s", fb=-3.0, q_off=0.0,
                           q_delta=0.0, sent_at=1.0))
        handler(PauseFrame(sa="s", duration=1e-4, sent_at=2.0))
        assert len(seen) == 2
        kinds = [e.kind for e in tracer.events]
        assert kinds == ["bcn", "pause"]

    def test_max_events_cap(self):
        tracer = FrameTracer(max_events=1)
        tracer.record(TraceEvent(0.0, "arrive", "a"))
        tracer.record(TraceEvent(1.0, "arrive", "a"))
        assert len(tracer.events) == 1

    def test_between_and_summary(self):
        tracer = FrameTracer()
        for t in (0.1, 0.5, 0.9):
            tracer.record(TraceEvent(t, "arrive", "a", 0))
        assert len(tracer.between(0.2, 0.8)) == 1
        assert "3 events" in tracer.summary()

    def test_dump(self, tmp_path):
        tracer = FrameTracer()
        tracer.record(TraceEvent(0.25, "drop", "sw0", 3, "size=12000"))
        path = tracer.dump(tmp_path / "trace.txt")
        content = path.read_text()
        assert "drop" in content and "flow=3" in content

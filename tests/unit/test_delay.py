"""Unit tests for the delayed-feedback DDE integrator (repro.fluid.delay)."""

import numpy as np
import pytest

from repro.baselines.linear_analysis import nyquist_delay_margin
from repro.core.parameters import NormalizedParams
from repro.fluid.delay import critical_delay, simulate_delayed
from repro.fluid.integrate import simulate_fluid


def norm(**overrides):
    config = dict(a=2.0, b=0.02, k=1.0, capacity=100.0, q0=10.0,
                  buffer_size=1e9)
    config.update(overrides)
    return NormalizedParams(**config)


class TestIntegrator:
    def test_tiny_delay_matches_undelayed(self):
        p = norm()
        delayed = simulate_delayed(p, tau=1e-4, t_max=10.0)
        undelayed = simulate_fluid(p, t_max=10.0, mode="nonlinear",
                                   max_switches=200)
        x_interp = np.interp(delayed.t, undelayed.t, undelayed.x)
        span = undelayed.x.max() - undelayed.x.min()
        assert np.max(np.abs(delayed.x - x_interp)) < 0.02 * span

    def test_initial_condition(self):
        p = norm()
        traj = simulate_delayed(p, tau=0.1, t_max=1.0, x0=-5.0, y0=2.0)
        assert traj.x[0] == -5.0
        assert traj.y[0] == 2.0

    def test_small_delay_stable_classification(self):
        traj = simulate_delayed(norm(), tau=0.05, t_max=60.0)
        assert traj.classify() == "stable"

    def test_large_delay_unstable_classification(self):
        traj = simulate_delayed(norm(), tau=1.2, t_max=60.0)
        assert traj.classify() == "unstable"

    def test_unstable_amplitude_grows_but_stays_bounded(self):
        # Beyond the margin the oscillation grows, yet the (y+C)
        # nonlinearity prevents true divergence: the trajectory remains
        # finite (it saturates into a cycle; see TestDelayInducedCycle).
        traj = simulate_delayed(norm(), tau=1.2, t_max=80.0)
        assert np.isfinite(traj.x).all()
        # saturation happens within a few rounds, so compare the very
        # first excursion against the late amplitude
        early = np.abs(traj.x[traj.t < 2.0]).max()
        late = np.abs(traj.x[traj.t > 60.0]).max()
        assert late > 2.0 * early

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_delayed(norm(), tau=0.0, t_max=1.0)
        with pytest.raises(ValueError):
            simulate_delayed(norm(), tau=0.01, t_max=1.0, step=0.02)


class TestCriticalDelay:
    def test_matches_nyquist_margin(self):
        p = norm()
        margin = nyquist_delay_margin(p.n_increase, p.k)
        tau_c = critical_delay(p, tau_lo=0.1 * margin, tau_hi=2.5 * margin,
                               t_max=60.0, iterations=7)
        assert tau_c == pytest.approx(margin, rel=0.15)

    def test_bracket_validation(self):
        p = norm()
        with pytest.raises(ValueError):
            critical_delay(p, tau_lo=1.2, tau_hi=2.0, t_max=40.0)
        with pytest.raises(ValueError):
            critical_delay(p, tau_lo=0.01, tau_hi=0.02, t_max=40.0)


class TestDelayInducedCycle:
    def test_growth_saturates(self):
        """Past the margin the (y+C) nonlinearity caps the amplitude:
        an attracting limit cycle, not divergence to infinity."""
        p = norm()
        traj = simulate_delayed(p, tau=0.8, t_max=250.0)
        late = np.abs(traj.x[traj.t > 150.0])
        assert late.max() < 50.0 * p.q0  # bounded
        assert late.max() > 2.0 * p.q0   # but large: a real oscillation

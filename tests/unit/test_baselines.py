"""Unit tests for the baseline schemes (repro.baselines)."""

import math

import pytest

from repro.baselines.aimd import AIMDParams, run_aimd_dumbbell
from repro.baselines.bcn import run_bcn_dumbbell
from repro.baselines.common import PacedSource, QueuedPort
from repro.baselines.e2cm import E2CMParams, run_e2cm_dumbbell
from repro.baselines.fera import FERAParams, run_fera_dumbbell
from repro.baselines.linear_analysis import (
    gain_crossover,
    linear_verdict,
    nyquist_delay_margin,
    routh_hurwitz_stable,
)
from repro.baselines.qcn import CNMessage, QCNParams, QCNRegulator, run_qcn_dumbbell
from repro.core.parameters import BCNParams, paper_example_params
from repro.simulation.engine import Simulator
from repro.simulation.frames import EthernetFrame


CAP, NFLOWS, Q0, BUF = 1e8, 4, 1e5, 1e6


class TestCommonHarness:
    def test_queued_port_serves_fifo(self):
        sim = Simulator()
        out = []
        port = QueuedPort(sim, capacity=8000.0, buffer_bits=1e6,
                          forward=lambda f: out.append((sim.now, f.src)))
        for i in range(2):
            port.receive(EthernetFrame(src=i, dst="sink", size_bits=8000,
                                       flow_id=i))
        sim.run()
        assert out == [(1.0, 0), (2.0, 1)]

    def test_paced_source_clamps(self):
        sim = Simulator()
        source = PacedSource(sim, address=0, rate=100.0, send=lambda f: None,
                             min_rate=10.0, max_rate=1000.0)
        source.set_rate(5.0)
        assert source.rate == 10.0
        source.set_rate(5000.0)
        assert source.rate == 1000.0

    def test_paced_source_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PacedSource(Simulator(), address=0, rate=0.0, send=lambda f: None)


class TestQCN:
    def params(self, **overrides):
        config = dict(capacity=CAP, n_flows=NFLOWS, q0=Q0, buffer_bits=BUF,
                      sample_interval_bits=80e3, bc_limit_bits=80e3)
        config.update(overrides)
        return QCNParams(**config)

    def test_regulator_decrease_and_target(self):
        sim = Simulator()
        source = PacedSource(sim, address=0, rate=1e7, send=lambda f: None)
        reg = QCNRegulator(self.params(), source)
        reg.on_cnm(CNMessage(da=0, fb_quantized=32, sent_at=0.0))
        assert source.rate == pytest.approx(1e7 * (1 - 32 / 128))
        assert reg.target_rate == 1e7

    def test_fast_recovery_averages_towards_target(self):
        sim = Simulator()
        source = PacedSource(sim, address=0, rate=1e7, send=lambda f: None)
        reg = QCNRegulator(self.params(), source)
        reg.on_cnm(CNMessage(da=0, fb_quantized=64, sent_at=0.0))
        halved = source.rate
        reg.on_bits_sent(80e3)  # one byte-counter cycle
        assert source.rate == pytest.approx((halved + 1e7) / 2)

    def test_active_increase_after_fast_recovery(self):
        sim = Simulator()
        source = PacedSource(sim, address=0, rate=1e7, send=lambda f: None,
                             max_rate=1e9)
        p = self.params(fast_recovery_cycles=2, r_ai=1e6)
        reg = QCNRegulator(p, source)
        reg.on_cnm(CNMessage(da=0, fb_quantized=64, sent_at=0.0))
        for _ in range(3):
            reg.on_bits_sent(80e3)
        assert reg.target_rate == pytest.approx(1e7 + 1e6)

    def test_dumbbell_run(self):
        res = run_qcn_dumbbell(self.params(), 0.1, frame_bits=8000)
        assert res.scheme == "qcn"
        assert res.utilization() > 0.3
        assert res.control_messages > 0

    def test_fb_max(self):
        assert self.params(fb_bits=6).fb_max == 32


class TestFERA:
    def params(self, **overrides):
        config = dict(capacity=CAP, n_flows=NFLOWS, buffer_bits=BUF, q0=Q0,
                      measurement_interval=2e-3)
        config.update(overrides)
        return FERAParams(**config)

    def test_converges_to_fair_share(self):
        res = run_fera_dumbbell(self.params(), 0.2, frame_bits=8000)
        fair = 0.95 * CAP / NFLOWS
        for rate in res.per_source_rate:
            assert rate == pytest.approx(fair, rel=0.25)
        assert res.jain_fairness() > 0.99

    def test_keeps_queue_small(self):
        res = run_fera_dumbbell(self.params(), 0.2, frame_bits=8000)
        assert res.queue_mean(settle=0.1) < Q0 * 3

    def test_no_drops(self):
        res = run_fera_dumbbell(self.params(), 0.2, frame_bits=8000)
        assert res.dropped_frames == 0


class TestE2CM:
    def params(self, **overrides):
        config = dict(capacity=CAP, n_flows=NFLOWS, q0=Q0, buffer_bits=BUF,
                      pm=0.1)
        config.update(overrides)
        return E2CMParams(**config)

    def test_blend_validation(self):
        with pytest.raises(ValueError):
            self.params(blend=1.5)

    def test_dumbbell_run(self):
        res = run_e2cm_dumbbell(self.params(), 0.1, frame_bits=8000)
        assert res.scheme == "e2cm"
        assert res.utilization() > 0.5

    def test_pure_explicit_blend_matches_fera_style(self):
        res = run_e2cm_dumbbell(self.params(blend=1.0), 0.2, frame_bits=8000)
        assert res.jain_fairness() > 0.9


class TestAIMD:
    def params(self):
        return AIMDParams(capacity=CAP, n_flows=NFLOWS, q0=Q0,
                          buffer_bits=BUF, control_interval=2e-3,
                          additive_step=1e6)

    def test_dumbbell_run(self):
        res = run_aimd_dumbbell(self.params(), 0.2, frame_bits=8000)
        assert res.scheme == "aimd"
        assert res.utilization() > 0.4
        assert res.jain_fairness() > 0.8  # AIMD converges to fairness

    def test_sawtooth_queue(self):
        res = run_aimd_dumbbell(self.params(), 0.3, frame_bits=8000)
        # The binary scheme oscillates; the recorder undersamples the
        # brief excursions above q0, so count half-level crossings.
        half = Q0 / 2
        crossings = ((res.queue[:-1] < half) & (res.queue[1:] >= half)).sum()
        assert crossings >= 2


class TestBCNAdapter:
    def test_common_shape(self):
        params = BCNParams(capacity=CAP, n_flows=NFLOWS, q0=Q0,
                           buffer_size=BUF, pm=0.1, ru=1e5)
        res = run_bcn_dumbbell(params, 0.1, frame_bits=8000)
        assert res.scheme == "bcn"
        assert res.control_messages >= 0
        assert res.t.shape == res.queue.shape


class TestLinearAnalysis:
    def test_routh_hurwitz_always_true_for_physical(self):
        assert routh_hurwitz_stable(paper_example_params())

    def test_gain_crossover_solves_equation(self):
        for n, k in [(1.6e9, 2e-8), (2.0, 1.0), (100.0, 0.05)]:
            w = gain_crossover(n, k)
            assert w**2 == pytest.approx(n * math.sqrt(1 + (k * w) ** 2),
                                         rel=1e-9)

    def test_delay_margin_formula(self):
        n, k = 2.0, 1.0
        w = gain_crossover(n, k)
        assert nyquist_delay_margin(n, k) == pytest.approx(
            math.atan(k * w) / w)

    def test_margin_shrinks_with_stiffer_loop(self):
        assert nyquist_delay_margin(1e6, 1e-4) < nyquist_delay_margin(1e2, 1e-4)

    def test_verdict_is_buffer_blind(self):
        p = paper_example_params()
        small = p.with_(buffer_size=5e6, q_sc=None)
        assert linear_verdict(p).stable == linear_verdict(small).stable

    def test_stable_with_delay(self):
        verdict = linear_verdict(paper_example_params())
        assert verdict.stable_with_delay(1e-12)
        assert not verdict.stable_with_delay(1.0)

    def test_crossover_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            gain_crossover(0.0, 1.0)

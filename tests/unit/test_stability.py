"""Unit tests for repro.core.stability (Props. 2-4, Theorem 1)."""

import math

import pytest

from repro.core.parameters import NormalizedParams, paper_example_params
from repro.core.phase_plane import PaperCase, PhasePlaneAnalyzer
from repro.core.stability import (
    case1_excursion_bounds,
    case2_peak_bound,
    is_strongly_stable,
    max_queue_bound,
    proposition2_holds,
    proposition3_holds,
    proposition4_applies,
    required_buffer,
    strong_stability_report,
    theorem1_criterion,
)


def norm(a, b, k=1.0, q0=10.0, buffer_size=100.0):
    return NormalizedParams(a=a, b=b, k=k, capacity=100.0, q0=q0,
                            buffer_size=buffer_size)


CASE1 = norm(2.0, 0.02)
CASE2 = norm(8.0, 0.02)
CASE3 = norm(2.0, 0.08)
CASE4 = norm(8.0, 0.08)


class TestCase1Bounds:
    def test_bounds_match_composed_first_round(self):
        for k in (1.0, 0.3, 0.05):
            p = norm(2.0, 0.02, k=k, buffer_size=1e9)
            max1, min1 = case1_excursion_bounds(p)
            traj = PhasePlaneAnalyzer(p).compose(max_switches=8)
            peaks = [x for _, x in traj.extrema if x > 0]
            troughs = [x for _, x in traj.extrema if x < 0]
            assert max1 == pytest.approx(peaks[0], rel=1e-9)
            assert min1 == pytest.approx(troughs[0], rel=1e-9)

    def test_min1_above_minus_q0(self):
        # The Theorem 1 proof claims the first trough never re-empties
        # the queue; verify across a k sweep.
        for k in (1.0, 0.1, 0.01):
            p = norm(2.0, 0.02, k=k, buffer_size=1e9)
            _, min1 = case1_excursion_bounds(p)
            assert min1 > -p.q0

    def test_rejects_wrong_case(self):
        with pytest.raises(ValueError):
            case1_excursion_bounds(CASE2)


class TestCase2Bound:
    def test_bound_matches_composed_peak(self):
        for a in (8.0, 32.0):
            p = norm(a, 0.02, buffer_size=1e9)
            bound = case2_peak_bound(p)
            traj = PhasePlaneAnalyzer(p).compose(max_switches=6)
            peaks = [x for _, x in traj.extrema if x > 0]
            assert bound == pytest.approx(peaks[0], rel=1e-9)

    def test_rejects_wrong_case(self):
        with pytest.raises(ValueError):
            case2_peak_bound(CASE1)


class TestPropositions:
    def test_proposition2_tracks_buffer(self):
        max1, _ = case1_excursion_bounds(norm(2.0, 0.02, buffer_size=1e9))
        roomy = norm(2.0, 0.02, buffer_size=10.0 + 2 * max1)
        tight = norm(2.0, 0.02, buffer_size=10.0 + 0.5 * max1)
        assert proposition2_holds(roomy)
        assert not proposition2_holds(tight)

    def test_proposition3_tracks_buffer(self):
        peak = case2_peak_bound(norm(8.0, 0.02, buffer_size=1e9))
        assert proposition3_holds(norm(8.0, 0.02, buffer_size=10.0 + 2 * peak))
        assert not proposition3_holds(
            norm(8.0, 0.02, buffer_size=10.0 + 0.5 * peak))

    def test_proposition4_cases(self):
        assert not proposition4_applies(CASE1)
        assert not proposition4_applies(CASE2)
        assert proposition4_applies(CASE3)
        assert proposition4_applies(CASE4)
        assert proposition4_applies(norm(4.0, 0.02))  # a at threshold
        assert proposition4_applies(norm(2.0, 0.04))  # bC at threshold


class TestTheorem1:
    def test_formula(self):
        p = CASE1
        expected = (1.0 + math.sqrt(p.a / (p.b * p.capacity))) * p.q0
        assert required_buffer(p) == pytest.approx(expected)
        assert max_queue_bound(p) == required_buffer(p)

    def test_criterion_is_buffer_comparison(self):
        p = CASE1
        need = required_buffer(p)
        assert theorem1_criterion(norm(2.0, 0.02, buffer_size=need * 1.01))
        assert not theorem1_criterion(norm(2.0, 0.02, buffer_size=need * 0.99))

    def test_paper_worked_example(self):
        assert required_buffer(paper_example_params()) == pytest.approx(
            13.81e6, rel=1e-2)

    def test_sufficiency_on_case_grid(self):
        # Theorem 1 satisfied  ==>  strongly stable (Definition 1).
        for a in (0.5, 2.0, 8.0):
            for b in (0.01, 0.08):
                for k in (1.0, 0.1):
                    need = required_buffer(norm(a, b, k=k, buffer_size=1e9))
                    p = norm(a, b, k=k, buffer_size=need * 1.05)
                    assert theorem1_criterion(p)
                    assert is_strongly_stable(p), (a, b, k)

    def test_accepts_physical_params(self):
        assert theorem1_criterion(paper_example_params())


class TestReport:
    def test_case1_report_fields(self):
        p = norm(2.0, 0.02, k=0.1, buffer_size=200.0)
        report = strong_stability_report(p)
        assert report.case is PaperCase.CASE1
        assert report.proposition == 2
        assert report.strongly_stable
        assert report.bound_peak is not None
        assert report.queue_peak <= report.bound_peak + 1e-9
        assert report.consistent

    def test_case3_report_has_no_bound(self):
        report = strong_stability_report(CASE3)
        assert report.proposition == 4
        assert report.bound_peak is None
        assert report.strongly_stable

    def test_overflow_flips_verdict(self):
        p = norm(2.0, 0.02, k=0.01, buffer_size=12.0)
        report = strong_stability_report(p)
        assert not report.strongly_stable
        assert not report.theorem1_satisfied  # consistency
        assert report.consistent

    def test_slow_convergence_counts_as_stable(self):
        # Paper-example-like contraction (~0.998/round) exceeds any
        # reasonable switch budget but the trend resolves it.
        report = strong_stability_report(paper_example_params(),
                                         max_switches=50)
        assert report.strongly_stable
        assert not report.limit_cycle_suspected

    def test_trough_reported_after_start(self):
        report = strong_stability_report(paper_example_params())
        assert report.queue_trough > 0.0  # never re-empties

"""Unit tests for the BCN core switch (repro.simulation.switch)."""

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.frames import BCNMessage, EthernetFrame, PauseFrame
from repro.simulation.link import Link
from repro.simulation.switch import CoreSwitch


FRAME_BITS = 12000


def make_switch(sim, **overrides):
    config = dict(
        cpid="core-0",
        capacity=1e9,
        q0=60000.0,  # 5 frames
        buffer_bits=600000.0,
        w=2.0,
        pm=0.25,  # sample every 4th frame
        fb_bits=None,  # raw sigma unless a test opts in
    )
    config.update(overrides)
    return CoreSwitch(sim, **config)


def frame(src=0, rrt=None):
    return EthernetFrame(src=src, dst="sink", size_bits=FRAME_BITS,
                         flow_id=src, rrt_cpid=rrt)


def wire_source(sim, switch, src=0):
    inbox = []
    switch.register_bcn_link(src, Link(sim, 0.0, inbox.append))
    return inbox


class TestSampling:
    def test_deterministic_sampling_cadence(self):
        sim = Simulator()
        switch = make_switch(sim)
        for _ in range(12):
            switch.receive(frame())
        assert switch.stats.samples == 3  # every 4th arrival

    def test_random_sampling_reproducible(self):
        def run(seed):
            sim = Simulator()
            switch = make_switch(sim, random_sampling=True, sampling_seed=seed)
            for _ in range(200):
                switch.receive(frame())
            return switch.stats.samples

        assert run(1) == run(1)
        # roughly pm * 200 = 50 samples
        assert 25 <= run(1) <= 80

    def test_sigma_computation_matches_eq1(self):
        sim = Simulator()
        switch = make_switch(sim)
        for _ in range(4):
            switch.receive(frame())
        sim.run(until=0.0)  # no service yet (service takes >0 time)
        assert len(switch.sigma_history) == 1
        _, sigma = switch.sigma_history[0]
        # 4 frames arrived at t=0; the head frame entered service (it is
        # polled out of the FIFO), so q = 3 frames; dq = q - 0.
        q = 3 * FRAME_BITS
        expected = (switch.q0 - q) - switch.w * q
        assert sigma == pytest.approx(expected)


class TestBCNGeneration:
    def test_negative_bcn_on_congestion(self):
        sim = Simulator()
        switch = make_switch(sim, q0=12000.0)
        inbox = wire_source(sim, switch)
        for _ in range(8):
            switch.receive(frame())
        sim.run(until=0.0)
        assert switch.stats.bcn_negative >= 1
        sim.run()
        assert inbox
        assert all(isinstance(m, BCNMessage) and m.fb_raw < 0 for m in inbox)

    def test_positive_bcn_requires_association_by_default(self):
        sim = Simulator()
        switch = make_switch(sim)
        inbox = wire_source(sim, switch)
        for _ in range(4):
            switch.receive(frame())  # q < q0 at 4th? q=4 frames < 5 frames
        # sigma: q=48000 < q0=60000 but dq term: sigma = 12000 - 2*48000 < 0
        # use a drained switch instead: serve everything, then send 4 more
        sim.run()
        assert all(m.fb_raw < 0 for m in inbox if isinstance(m, BCNMessage))

    def test_positive_bcn_sent_to_associated_source(self):
        sim = Simulator()
        # Large q0 so sigma stays positive; sample every frame for speed.
        switch = make_switch(sim, q0=300000.0, pm=1.0)
        inbox = wire_source(sim, switch)
        switch.receive(frame(rrt="core-0"))
        sim.run()
        assert switch.stats.bcn_positive == 1
        assert inbox and inbox[0].fb_raw > 0

    def test_positive_bcn_withheld_without_rrt(self):
        sim = Simulator()
        switch = make_switch(sim, q0=300000.0, pm=1.0)
        wire_source(sim, switch)
        switch.receive(frame(rrt=None))
        sim.run()
        assert switch.stats.bcn_positive == 0

    def test_positive_bcn_unconditional_when_idealized(self):
        sim = Simulator()
        switch = make_switch(sim, q0=300000.0, pm=1.0,
                             require_association=False)
        inbox = wire_source(sim, switch)
        switch.receive(frame(rrt=None))
        sim.run()
        assert switch.stats.bcn_positive == 1
        assert inbox

    def test_positive_gate_on_q_below_q0(self):
        sim = Simulator()
        switch = make_switch(sim, q0=300000.0, pm=1.0,
                             require_association=False, w=0.0)
        # Fill above q0 with w = 0: sigma = q0 - q.
        inbox = wire_source(sim, switch)
        for _ in range(30):  # 360000 bits > q0
            switch.receive(frame())
        sim.run(until=0.0)
        positive = [m for m in inbox if isinstance(m, BCNMessage) and m.fb_raw > 0]
        # every positive sigma sample had q < q0
        for m in positive:
            assert m.q_off > 0

    def test_message_fields(self):
        sim = Simulator()
        switch = make_switch(sim, q0=300000.0, pm=1.0,
                             require_association=False)
        inbox = wire_source(sim, switch, src=7)
        switch.receive(frame(src=7))
        sim.run()
        msg = inbox[0]
        assert msg.da == 7
        assert msg.sa == "core-0"
        assert msg.cpid == "core-0"


class TestQuantization:
    def test_fb_quantized_and_clamped(self):
        sim = Simulator()
        switch = make_switch(sim, fb_bits=6)
        assert switch.sigma_unit == pytest.approx(switch.q0 / 16.0)
        assert switch.quantize_fb(0.4 * switch.sigma_unit) == 0.0
        assert switch.quantize_fb(1.4 * switch.sigma_unit) == 1.0
        assert switch.quantize_fb(1e12) == 31.0
        assert switch.quantize_fb(-1e12) == -32.0

    def test_raw_mode_passthrough(self):
        sim = Simulator()
        switch = make_switch(sim, fb_bits=None)
        assert switch.quantize_fb(1234.5) == 1234.5


class TestPause:
    def test_pause_emitted_above_threshold(self):
        sim = Simulator()
        switch = make_switch(sim, q_sc=100000.0, pause_duration=1e-4)
        pauses = []
        switch.register_pause_link(Link(sim, 0.0, pauses.append))
        for _ in range(10):  # 120000 bits > q_sc
            switch.receive(frame())
        sim.run(until=0.0)
        assert switch.stats.pauses_sent == 1  # armed once per excursion
        sim.run()
        assert pauses and isinstance(pauses[0], PauseFrame)

    def test_pause_rearms_after_duration(self):
        sim = Simulator()
        switch = make_switch(sim, q_sc=50000.0, pause_duration=1e-6,
                             capacity=1.0)  # absurdly slow service
        pauses = []
        switch.register_pause_link(Link(sim, 0.0, pauses.append))
        for _ in range(6):
            switch.receive(frame())
        sim.run(until=2e-6)
        switch.receive(frame())  # still congested after re-arm
        sim.run(until=3e-6)
        assert switch.stats.pauses_sent == 2

    def test_no_pause_when_disabled(self):
        sim = Simulator()
        switch = make_switch(sim, q_sc=None)
        switch.register_pause_link(Link(sim, 0.0, lambda p: None))
        for _ in range(40):
            switch.receive(frame())
        sim.run(until=0.0)
        assert switch.stats.pauses_sent == 0


class TestDataPlane:
    def test_forwards_all_accepted_frames(self):
        sim = Simulator()
        forwarded = []
        switch = make_switch(sim, forward=forwarded.append)
        for i in range(6):
            switch.receive(frame(src=i))
        sim.run()
        assert [f.src for f in forwarded] == list(range(6))
        assert switch.stats.forwarded_frames == 6
        assert switch.queue.conservation_holds()

    def test_service_rate_paces_departures(self):
        sim = Simulator()
        times = []
        switch = make_switch(sim, capacity=12000.0,
                             forward=lambda f: times.append(sim.now))
        for _ in range(3):
            switch.receive(frame())
        sim.run()
        assert times == pytest.approx([1.0, 2.0, 3.0])

    def test_drops_when_buffer_full(self):
        sim = Simulator()
        switch = make_switch(sim, buffer_bits=30000.0, capacity=1.0)
        for _ in range(5):
            switch.receive(frame())
        # Head frame is in service (out of the FIFO); two more fit in
        # 30000 bits; the remaining two are tail-dropped.
        assert switch.queue.dropped_frames == 2

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            make_switch(Simulator(), capacity=0.0)
        with pytest.raises(ValueError):
            make_switch(Simulator(), pm=0.0)

"""Unit tests for repro.serve: protocol, job canonicalisation, progress."""

import json

import pytest

from repro.obs.trace import SCHEMA_VERSION, TraceRecord
from repro.runner.executor import EXECUTION_OPTIONS
from repro.serve import (
    JOB_KINDS,
    JobError,
    JobRequest,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    ServeError,
    decode_line,
    encode_line,
    execute_job,
    job_key,
    normalize_request,
)
from repro.serve.client import _check
from repro.serve.progress import (
    ProgressStats,
    StreamingTraceSink,
    TraceStreamWriter,
    TraceTail,
)
from repro.serve.protocol import OPS, error_response, validate_request
from repro.serve.server import JobState


# -- protocol ---------------------------------------------------------------


class TestProtocol:
    def test_round_trip(self):
        msg = {"op": "submit", "job": {"kind": "scenario", "seed": 3}}
        assert decode_line(encode_line(msg)) == msg

    def test_encode_is_one_compact_line(self):
        wire = encode_line({"b": 1, "a": 2})
        assert wire.endswith(b"\n") and wire.count(b"\n") == 1
        assert wire == b'{"a":2,"b":1}\n'  # sorted + compact

    def test_encode_rejects_nan(self):
        with pytest.raises(ValueError):
            encode_line({"x": float("nan")})

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2]\n")

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{nope}\n")

    def test_decode_rejects_empty(self):
        with pytest.raises(ProtocolError):
            decode_line(b"\n")

    def test_decode_rejects_oversized(self):
        with pytest.raises(ProtocolError):
            decode_line(b"x" * (MAX_LINE_BYTES + 1))

    def test_validate_request_ops(self):
        for op in OPS:
            assert validate_request({"op": op}) == op
        with pytest.raises(ProtocolError):
            validate_request({"op": "reboot"})
        with pytest.raises(ProtocolError):
            validate_request({})

    def test_validate_request_version(self):
        assert validate_request({"op": "ping"}) == "ping"
        assert validate_request({"op": "ping", "v": PROTOCOL_VERSION})
        with pytest.raises(ProtocolError):
            validate_request({"op": "ping", "v": PROTOCOL_VERSION + 1})

    def test_error_response_shape(self):
        obj = error_response("boom")
        assert obj == {"ok": False, "error": "boom"}

    def test_client_check_raises(self):
        with pytest.raises(ServeError, match="boom"):
            _check(error_response("boom"))
        assert _check({"ok": True, "x": 1}) == {"ok": True, "x": 1}


# -- canonicalisation -------------------------------------------------------


SCENARIO = {"kind": "scenario", "preset": "dc-baseline", "seed": 2}


class TestNormalize:
    def test_job_kinds_registry(self):
        assert JOB_KINDS == ("experiment", "scenario", "sweep")

    def test_unknown_kind(self):
        with pytest.raises(JobError, match="unknown job kind"):
            normalize_request({"kind": "massage"})

    def test_non_mapping_payload(self):
        with pytest.raises(JobError, match="must be an object"):
            normalize_request(["kind", "scenario"])

    def test_unknown_field_rejected(self):
        with pytest.raises(JobError, match="unknown field"):
            normalize_request({**SCENARIO, "sede": 3})

    def test_unknown_preset(self):
        with pytest.raises(JobError, match="unknown scenario preset"):
            normalize_request({**SCENARIO, "preset": "nope"})

    def test_unknown_engine(self):
        with pytest.raises(JobError, match="unknown packet engine"):
            normalize_request({**SCENARIO, "engine": "referense"})

    def test_unknown_experiment(self):
        with pytest.raises(JobError, match="unknown experiment id"):
            normalize_request({"kind": "experiment", "id": "fig99"})

    def test_experiment_requires_id(self):
        with pytest.raises(JobError, match="non-empty string 'id'"):
            normalize_request({"kind": "experiment"})

    def test_seed_must_be_integral(self):
        with pytest.raises(JobError, match="must be an integer"):
            normalize_request({**SCENARIO, "seed": 1.5})
        with pytest.raises(JobError, match="must be an integer"):
            normalize_request({**SCENARIO, "seed": True})
        with pytest.raises(JobError, match="must be an integer"):
            normalize_request({**SCENARIO, "seed": "3"})

    def test_sweep_seed_sugar(self):
        a = normalize_request(
            {"kind": "sweep", "preset": "dc-baseline", "n_seeds": 3})
        b = normalize_request(
            {"kind": "sweep", "preset": "dc-baseline", "seeds": [0, 1, 2]})
        assert a == b and a.key() == b.key()
        assert a.spec["seeds"] == [0, 1, 2]

    def test_sweep_rejects_both_seed_forms(self):
        with pytest.raises(JobError, match="not both"):
            normalize_request({"kind": "sweep", "preset": "dc-baseline",
                               "seeds": [1], "n_seeds": 1})

    def test_sweep_rejects_empty_seeds(self):
        with pytest.raises(JobError, match="non-empty list"):
            normalize_request({"kind": "sweep", "preset": "dc-baseline",
                               "seeds": []})
        with pytest.raises(JobError, match=r"n_seeds must be >= 1"):
            normalize_request({"kind": "sweep", "preset": "dc-baseline",
                               "n_seeds": 0})

    def test_int_float_equivalence(self):
        a = normalize_request({**SCENARIO, "seed": 4})
        b = normalize_request({**SCENARIO, "seed": 4.0})
        assert a.key() == b.key()
        assert a.spec["seed"] == 4 and isinstance(a.spec["seed"], int)

    def test_default_elision_equivalence(self):
        a = normalize_request(SCENARIO)
        b = normalize_request({**SCENARIO, "engine": "reference"})
        assert a.key() == b.key()

    def test_field_order_irrelevant(self):
        a = normalize_request(
            {"seed": 2, "preset": "dc-baseline", "kind": "scenario"})
        assert a.key() == normalize_request(SCENARIO).key()

    def test_distinct_values_distinct_keys(self):
        base = normalize_request(SCENARIO)
        assert normalize_request({**SCENARIO, "seed": 3}).key() != base.key()
        assert normalize_request(
            {**SCENARIO, "engine": "batched"}).key() != base.key()
        assert normalize_request(
            {"kind": "sweep", "preset": "dc-baseline",
             "seeds": [2]}).key() != base.key()

    def test_huge_ints_stay_distinct(self):
        a = normalize_request({**SCENARIO, "seed": 2 ** 53})
        b = normalize_request({**SCENARIO, "seed": 2 ** 53 + 1})
        assert a.key() != b.key()

    def test_payload_round_trip(self):
        request = normalize_request(SCENARIO)
        assert normalize_request(request.to_payload()) == request

    def test_execution_options_stripped(self):
        some_id = sorted(_experiment_ids())[0]
        noisy = {"kind": "experiment", "id": some_id,
                 "options": {opt: 7 for opt in EXECUTION_OPTIONS}}
        clean = {"kind": "experiment", "id": some_id}
        assert (normalize_request(noisy).key()
                == normalize_request(clean).key())

    def test_options_must_be_object(self):
        some_id = sorted(_experiment_ids())[0]
        with pytest.raises(JobError, match="options must be an object"):
            normalize_request({"kind": "experiment", "id": some_id,
                               "options": [1, 2]})

    def test_unsupported_value_type(self):
        some_id = sorted(_experiment_ids())[0]
        with pytest.raises(JobError, match="unsupported value type"):
            normalize_request({"kind": "experiment", "id": some_id,
                               "options": {"x": object()}})

    def test_describe(self):
        assert "dc-baseline" in normalize_request(SCENARIO).describe()
        sweep = normalize_request(
            {"kind": "sweep", "preset": "dc-baseline", "n_seeds": 4})
        assert "x4" in sweep.describe()

    def test_execute_unknown_kind_raises(self):
        bogus = JobRequest(job_kind="massage", spec={})
        with pytest.raises(JobError, match="unknown job kind"):
            execute_job(bogus)


def _experiment_ids():
    import repro.experiments  # noqa: F401 - registration side effects
    from repro.experiments.base import all_experiments

    return all_experiments()


def test_job_key_is_content_address():
    request = normalize_request(SCENARIO)
    key = job_key(request)
    assert isinstance(key, str) and len(key) == 64
    int(key, 16)  # hex digest
    assert key == request.key()


def test_execute_scenario_matches_direct_run():
    from repro.scenarios.sweep import ScenarioPoint, evaluate_scenario_point

    request = normalize_request(SCENARIO)
    payload = execute_job(request)
    direct = evaluate_scenario_point(
        ScenarioPoint(preset="dc-baseline", engine="reference", seed=2))
    assert payload["record"]["utilization"] == pytest.approx(
        direct["utilization"])
    json.dumps(payload)  # JSON-safe


# -- progress streaming -----------------------------------------------------


class TestProgress:
    def test_stream_writer_is_valid_trace_at_every_prefix(self, tmp_path):
        from repro.obs.trace import read_trace

        path = tmp_path / "job.trace.jsonl"
        with TraceStreamWriter(path, meta={"job": "k"}) as writer:
            header, records = read_trace(path)
            assert header["schema_version"] == SCHEMA_VERSION
            assert header["job"] == "k" and records == []
            writer.write(TraceRecord(kind="job_queued", t=0.0,
                                     engine="serve", node="k", value=1.0))
            _, records = read_trace(path)
            assert [r.kind for r in records] == ["job_queued"]
        # writes after close are dropped, not an error
        writer.write(TraceRecord(kind="job_started", t=0.1, engine="serve"))
        _, records = read_trace(path)
        assert len(records) == 1

    def test_tail_returns_only_new_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceStreamWriter(path)
        tail = TraceTail(path)
        assert tail.poll() == []
        assert tail.header == {"schema_version": SCHEMA_VERSION}
        writer.write(TraceRecord(kind="job_started", t=0.0, engine="serve"))
        writer.write(TraceRecord(kind="job_progress", t=0.1, engine="serve"))
        assert [r.kind for r in tail.poll()] == ["job_started",
                                                 "job_progress"]
        assert tail.poll() == []
        writer.write(TraceRecord(kind="job_finished", t=0.2, engine="serve"))
        assert [r.kind for r in tail.poll()] == ["job_finished"]

    def test_tail_tolerates_partial_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceStreamWriter(path)
        writer.write(TraceRecord(kind="job_started", t=0.0, engine="serve"))
        # simulate a half-flushed record
        with path.open("a") as fh:
            fh.write('{"t": 0.5, "kind": "job_prog')
        tail = TraceTail(path)
        assert [r.kind for r in tail.poll()] == ["job_started"]
        with path.open("a") as fh:
            fh.write('ress"}\n')
        assert [r.kind for r in tail.poll()] == ["job_progress"]

    def test_tail_missing_file(self, tmp_path):
        assert TraceTail(tmp_path / "absent.jsonl").poll() == []

    def test_tail_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema_version": 999}\n')
        with pytest.raises(ValueError, match="schema_version"):
            TraceTail(path).poll()

    def test_streaming_sink_mirrors_to_writer(self, tmp_path):
        path = tmp_path / "sink.jsonl"
        writer = TraceStreamWriter(path)
        sink = StreamingTraceSink(writer, max_records=1)
        r1 = TraceRecord(kind="job_started", t=0.0, engine="serve")
        r2 = TraceRecord(kind="job_progress", t=0.1, engine="serve")
        sink.append(r1)
        sink.append(r2)  # over the memory cap...
        assert sink.records == [r1] and sink.truncated == 1
        tail = TraceTail(path)  # ...but the file keeps the full stream
        assert [r.kind for r in tail.poll()] == ["job_started",
                                                 "job_progress"]

    def test_progress_stats_reports_units(self):
        seen = []
        stats = ProgressStats(lambda done, label, cached:
                              seen.append((done, label, cached)))
        stats.record("a", 0.5)
        stats.record("b", 0.0, cached=True)
        assert seen == [(1, "a", False), (2, "b", True)]
        assert stats.evaluated == 1 and stats.cache_hits == 1


def test_job_state_registry():
    assert JobState.TERMINAL <= JobState.ALL
    assert JobState.QUEUED in JobState.ALL
    assert JobState.RUNNING not in JobState.TERMINAL

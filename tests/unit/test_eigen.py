"""Unit tests for repro.core.eigen."""

import numpy as np
import pytest

from repro.core.eigen import (
    FixedPointType,
    Region,
    characteristic_coefficients,
    eigenstructure,
    region_eigenstructure,
)
from repro.core.parameters import NormalizedParams


def norm(a=2.0, b=0.02, k=1.0):
    return NormalizedParams(a=a, b=b, k=k, capacity=100.0, q0=10.0,
                            buffer_size=100.0)


class TestEigenstructure:
    def test_focus_below_threshold(self):
        eig = eigenstructure(n=2.0, k=1.0)  # 4/k^2 = 4 > 2
        assert eig.kind is FixedPointType.FOCUS
        assert eig.lambda1.imag != 0

    def test_node_above_threshold(self):
        eig = eigenstructure(n=8.0, k=1.0)
        assert eig.kind is FixedPointType.NODE
        lam1, lam2 = eig.real_eigenvalues
        assert lam1 < lam2 < 0

    def test_degenerate_at_threshold(self):
        eig = eigenstructure(n=4.0, k=1.0)
        assert eig.kind is FixedPointType.DEGENERATE_NODE
        assert eig.lambda1 == eig.lambda2

    def test_eigenvalues_match_numpy_roots(self):
        for n, k in [(2.0, 1.0), (8.0, 1.0), (5.0, 0.3), (100.0, 0.5)]:
            eig = eigenstructure(n, k)
            roots = sorted(np.roots([1.0, k * n, n]), key=lambda z: (z.real, z.imag))
            mine = sorted([eig.lambda1, eig.lambda2],
                          key=lambda z: (z.real, z.imag))
            for r, m in zip(roots, mine):
                assert complex(r) == pytest.approx(complex(m), abs=1e-9)

    def test_alpha_beta_for_focus(self):
        eig = eigenstructure(n=2.0, k=1.0)
        assert eig.alpha == pytest.approx(-1.0)
        assert eig.beta == pytest.approx(np.sqrt(2.0 - 1.0))
        assert eig.alpha**2 + eig.beta**2 == pytest.approx(eig.n)

    def test_m_and_discriminant(self):
        eig = eigenstructure(n=3.0, k=0.5)
        assert eig.m == pytest.approx(1.5)
        assert eig.discriminant == pytest.approx(1.5**2 - 12.0)

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValueError):
            eigenstructure(0.0, 1.0)
        with pytest.raises(ValueError):
            eigenstructure(1.0, -1.0)

    def test_real_eigenvalues_raises_for_focus(self):
        with pytest.raises(ValueError):
            eigenstructure(2.0, 1.0).real_eigenvalues

    def test_natural_period(self):
        eig = eigenstructure(2.0, 1.0)
        assert eig.natural_period() == pytest.approx(2 * np.pi / eig.beta)
        with pytest.raises(ValueError):
            eigenstructure(8.0, 1.0).natural_period()

    def test_atol_forces_degenerate(self):
        eig = eigenstructure(n=4.0 + 1e-12, k=1.0, atol=1e-6)
        assert eig.kind is FixedPointType.DEGENERATE_NODE


class TestRegionCoefficients:
    def test_characteristic_coefficients_per_region(self):
        p = norm(a=2.0, b=0.02)
        m_i, n_i = characteristic_coefficients(p, Region.INCREASE)
        m_d, n_d = characteristic_coefficients(p, Region.DECREASE)
        assert (m_i, n_i) == (pytest.approx(2.0), pytest.approx(2.0))
        assert n_d == pytest.approx(2.0)  # b * C
        assert m_d == pytest.approx(p.k * n_d)

    def test_m_equals_k_times_n_structurally(self):
        # eq. (35): the damping is always k*n in both regions.
        for a, b, k in [(0.7, 0.01, 0.4), (9.0, 0.3, 0.2)]:
            p = norm(a=a, b=b, k=k)
            for region in Region:
                m, n = characteristic_coefficients(p, region)
                assert m == pytest.approx(k * n)

    def test_region_eigenstructure_classification(self):
        p = norm(a=2.0, b=0.08)  # increase focus, decrease node
        assert region_eigenstructure(p, Region.INCREASE).kind is FixedPointType.FOCUS
        assert region_eigenstructure(p, Region.DECREASE).kind is FixedPointType.NODE

    def test_node_eigenvalues_steeper_than_switching_line(self):
        # lambda_1 < lambda_2 < -1/k: the geometric fact behind the
        # no-re-crossing property of node regions.
        for n_val, k in [(8.0, 1.0), (5.0, 1.0), (100.0, 0.25)]:
            eig = eigenstructure(n_val, k)
            if eig.kind is FixedPointType.NODE:
                lam1, lam2 = eig.real_eigenvalues
                assert lam1 < lam2 < -1.0 / k

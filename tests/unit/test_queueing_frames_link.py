"""Unit tests for frames, the drop-tail queue and links."""

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.frames import BCNMessage, EthernetFrame, PauseFrame
from repro.simulation.link import Link
from repro.simulation.queueing import DropTailQueue


def frame(size_bits=12000, src=0):
    return EthernetFrame(src=src, dst="sink", size_bits=size_bits, flow_id=src)


class TestFrames:
    def test_bcn_message_polarity(self):
        positive = BCNMessage(da=1, sa="sw", cpid="sw", fb=3.0, q_off=3.0,
                              q_delta=0.0)
        negative = BCNMessage(da=1, sa="sw", cpid="sw", fb=-2.0, q_off=-2.0,
                              q_delta=1.0)
        assert positive.positive
        assert not negative.positive
        assert negative.size_bits == 64 * 8

    def test_frame_uids_unique(self):
        assert frame().uid != frame().uid

    def test_pause_frame(self):
        p = PauseFrame(sa="sw", duration=5e-5)
        assert p.duration == 5e-5
        assert p.size_bits == 64 * 8


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue(100000)
        frames = [frame(src=i) for i in range(3)]
        for f in frames:
            assert q.offer(f)
        assert [q.poll().src for _ in range(3)] == [0, 1, 2]

    def test_occupancy_tracks_bits(self):
        q = DropTailQueue(100000)
        q.offer(frame(12000))
        q.offer(frame(8000))
        assert q.occupancy_bits == 20000
        q.poll()
        assert q.occupancy_bits == 8000

    def test_drop_tail_when_full(self):
        q = DropTailQueue(20000)
        assert q.offer(frame(12000))
        assert not q.offer(frame(12000))  # would exceed 20000
        assert q.dropped_frames == 1
        assert q.dropped_bits == 12000
        assert q.occupancy_bits == 12000

    def test_poll_empty_returns_none(self):
        assert DropTailQueue(1000).poll() is None

    def test_conservation_counters(self):
        q = DropTailQueue(30000)
        for _ in range(5):
            q.offer(frame(12000))
        q.poll()
        assert q.enqueued_frames == 2
        assert q.dropped_frames == 3
        assert q.dequeued_frames == 1
        assert len(q) == 1
        assert q.conservation_holds()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestLink:
    def test_delivers_after_delay(self):
        sim = Simulator()
        got = []
        link = Link(sim, 2.0, lambda payload: got.append((sim.now, payload)))
        link.transmit("hello")
        sim.run()
        assert got == [(2.0, "hello")]
        assert link.delivered == 1

    def test_zero_delay_still_asynchronous(self):
        sim = Simulator()
        got = []
        link = Link(sim, 0.0, got.append)
        link.transmit("x")
        assert got == []  # not delivered synchronously
        sim.run()
        assert got == ["x"]

    def test_preserves_order(self):
        sim = Simulator()
        got = []
        link = Link(sim, 1.0, got.append)
        for i in range(4):
            link.transmit(i)
        sim.run()
        assert got == [0, 1, 2, 3]

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Link(Simulator(), -0.1, lambda p: None)

"""Unit tests for the observability layer (``repro.obs``)."""

import pickle

import numpy as np
import pytest

from repro.obs import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observability,
    POINT_WALL_EDGES,
    QUEUE_FRAC_EDGES,
    SOJOURN_REL_EDGES,
    SpanProfiler,
    SpanStats,
    TraceRecord,
    TraceSink,
    emit_sign_switches,
    read_trace,
    write_trace,
)


class TestCounterGauge:
    def test_counter_inc_and_merge(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        c.merge(Counter(value=1.5))
        c.merge(1.0)
        assert c.value == 6.0

    def test_gauge_keeps_more_updated_value(self):
        a, b = Gauge(), Gauge()
        a.set(1.0)
        b.set(2.0)
        b.set(3.0)
        a.merge(b)
        assert a.value == 3.0
        assert a.updates == 3

    def test_gauge_tie_prefers_self(self):
        a, b = Gauge(), Gauge()
        a.set(1.0)
        b.set(2.0)
        a.merge((b.value, b.updates))
        assert a.value == 1.0
        assert a.updates == 2


class TestHistogram:
    def test_bucket_boundaries(self):
        h = Histogram([0.0, 1.0, 2.0])
        for v in (-0.1, 0.0, 0.5, 1.0, 1.5, 2.0, 5.0):
            h.observe(v)
        # counts: below 0 | [0,1) | [1,2) | >= 2
        assert h.counts.tolist() == [1, 2, 2, 2]
        assert h.count == 7
        assert h.mean() == pytest.approx(sum((-0.1, 0, .5, 1, 1.5, 2, 5)) / 7)

    def test_observe_many_matches_observe(self):
        values = np.linspace(-0.5, 4.5, 37)
        a, b = Histogram([0.0, 1.0, 2.0, 4.0]), Histogram([0.0, 1.0, 2.0, 4.0])
        a.observe_many(values)
        for v in values:
            b.observe(v)
        assert a.counts.tolist() == b.counts.tolist()
        assert a.sum == pytest.approx(b.sum)

    def test_observe_many_empty_is_noop(self):
        h = Histogram([0.0, 1.0])
        h.observe_many([])
        assert h.count == 0

    def test_merge_requires_identical_edges(self):
        h = Histogram([0.0, 1.0])
        with pytest.raises(ValueError, match="different edges"):
            h.merge(Histogram([0.0, 2.0]))

    def test_edges_must_be_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram([0.0, 0.0, 1.0])
        with pytest.raises(ValueError, match="at least two"):
            Histogram([0.0])

    def test_snapshot_round_trip(self):
        h = Histogram(QUEUE_FRAC_EDGES)
        h.observe_many([0.1, 0.5, 0.9, 1.4])
        back = Histogram.from_snapshot(h.snapshot())
        assert back.edges == h.edges
        assert back.counts.tolist() == h.counts.tolist()
        assert back.sum == h.sum


class TestMetricsRegistry:
    def test_histogram_requires_edges_on_first_use(self):
        reg = MetricsRegistry()
        with pytest.raises(KeyError):
            reg.histogram("h")
        reg.observe("h", 0.5, [0.0, 1.0])
        reg.observe("h", 0.7)  # edges now optional
        assert reg.histograms["h"].count == 2

    def test_histogram_edge_conflict(self):
        reg = MetricsRegistry()
        reg.histogram("h", [0.0, 1.0])
        with pytest.raises(ValueError, match="other edges"):
            reg.histogram("h", [0.0, 2.0])

    def test_merge_snapshot_folds_all_kinds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 2)
        b.inc("n", 3)
        b.inc("only_b")
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        b.gauge("g").set(4.0)
        a.observe("h", 0.5, [0.0, 1.0])
        b.observe("h", 1.5, [0.0, 1.0])
        b.observe("h2", 0.5, [0.0, 1.0])
        a.merge_snapshot(b.snapshot())
        assert a.counters["n"].value == 5
        assert a.counters["only_b"].value == 1
        assert a.gauges["g"].value == 4.0
        assert a.histograms["h"].count == 2
        assert a.histograms["h2"].count == 1

    def test_snapshot_is_picklable_plain_data(self):
        reg = MetricsRegistry()
        reg.inc("n")
        reg.observe("h", 0.5, [0.0, 1.0])
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        fresh = MetricsRegistry()
        fresh.merge_snapshot(snap)
        assert fresh.counters["n"].value == 1

    def test_counter_values_prefix_filter(self):
        reg = MetricsRegistry()
        reg.inc("events.drop", 2)
        reg.inc("runner.evaluated")
        assert reg.counter_values("events.") == {"events.drop": 2.0}

    def test_summary_table_renders(self):
        reg = MetricsRegistry()
        reg.inc("n")
        reg.gauge("g").set(1.0)
        reg.observe("h", 0.5, [0.0, 1.0])
        table = reg.summary_table()
        assert "n" in table and "h (n, mean)" in table


class TestSpanProfiler:
    def test_span_context_manager_accumulates(self):
        prof = SpanProfiler()
        with prof.span("work"):
            pass
        with prof.span("work"):
            pass
        stats = prof.spans["work"]
        assert stats.count == 2
        assert stats.total >= stats.max >= stats.min >= 0.0

    def test_disabled_span_is_shared_noop(self):
        prof = SpanProfiler(enabled=False)
        assert prof.span("a") is prof.span("b")
        with prof.span("a"):
            pass
        prof.add("a", 1.0)
        assert prof.spans == {}

    def test_merge_snapshot(self):
        a, b = SpanProfiler(), SpanProfiler()
        a.add("s", 1.0)
        b.add("s", 3.0)
        b.add("t", 0.5)
        a.merge_snapshot(b.snapshot())
        assert a.spans["s"].count == 2
        assert a.spans["s"].max == 3.0
        assert a.spans["s"].min == 1.0
        assert a.spans["t"].total == 0.5

    def test_span_stats_mean(self):
        s = SpanStats()
        assert s.mean() == 0.0
        s.add(1.0)
        s.add(3.0)
        assert s.mean() == 2.0

    def test_summary_table_sorted_by_total(self):
        prof = SpanProfiler()
        prof.add("small", 0.1)
        prof.add("big", 9.0)
        rows = prof.summary_rows()
        assert rows[0][0] == "big"
        assert "span" in prof.summary_table()


class TestTrace:
    def test_record_json_round_trip_omits_none(self):
        r = TraceRecord(kind="drop", t=1.5, engine="packet.reference",
                        node="cp0", flow=3, value=12000.0)
        obj = r.to_json_obj()
        assert "row" not in obj and "detail" not in obj
        assert TraceRecord.from_json_obj(obj) == r

    def test_sink_caps_and_counts_truncated(self):
        sink = TraceSink(max_records=2)
        sink.extend(TraceRecord(kind="drop", t=float(i)) for i in range(5))
        assert len(sink.records) == 2
        assert sink.truncated == 3
        assert sink.counts() == {"drop": 2}
        assert len(sink.of_kind("drop")) == 2

    def test_sorted_records_orders_by_time(self):
        sink = TraceSink()
        sink.append(TraceRecord(kind="bcn", t=2.0))
        sink.append(TraceRecord(kind="bcn", t=1.0))
        assert [r.t for r in sink.sorted_records()] == [1.0, 2.0]

    def test_write_read_trace(self, tmp_path):
        records = [
            TraceRecord(kind="region_switch", t=0.5, engine="fluid.batch",
                        row=3, value=-1.0),
            TraceRecord(kind="pause_on", t=0.7, engine="packet.batched",
                        node="cp0", detail="excursion"),
        ]
        path = write_trace(tmp_path / "t.jsonl", records, meta={"run": "x"})
        header, back = read_trace(path)
        assert header["schema_version"] == SCHEMA_VERSION
        assert header["run"] == "x"
        assert back == records

    def test_read_trace_rejects_empty_and_bad_version(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty trace"):
            read_trace(empty)
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema_version": 999}\n')
        with pytest.raises(ValueError, match="schema_version"):
            read_trace(bad)


class TestObservabilityHandle:
    def test_event_counts_counter_vs_trace_filter(self):
        obs = Observability()
        obs.event("drop", 0.1, engine="packet.reference")
        obs.event("drop", 0.2, engine="packet.batched")
        obs.event("bcn", 0.3, engine="packet.batched")
        assert obs.event_counts() == {"bcn": 1, "drop": 2}
        assert obs.event_counts("packet.batched") == {"bcn": 1, "drop": 1}

    def test_event_rejects_unknown_kind(self):
        obs = Observability()
        with pytest.raises(AssertionError):
            obs.event("nonsense", 0.0, engine="x")

    def test_counters_stay_exact_past_trace_cap(self):
        obs = Observability(max_trace_events=3)
        for i in range(10):
            obs.event("bcn", float(i), engine="e")
        assert obs.event_counts() == {"bcn": 10}
        assert len(obs.trace.records) == 3
        assert obs.trace.truncated == 7

    def test_disabled_handle_swallows_everything(self):
        obs = Observability.disabled()
        obs.event("drop", 0.0, engine="e")
        obs.count("c")
        obs.gauge("g", 1.0)
        obs.observe("h", 0.5, [0.0, 1.0])
        obs.observe_array("h", [0.5], [0.0, 1.0])
        obs.observe_queue("e", [1.0], 2.0, 1.0)
        obs.add_span("s", 1.0)
        with obs.span("s"):
            pass
        obs.merge_metrics({"metrics": {"counters": {"c": 1.0}}})
        assert obs.event_counts() == {}
        assert obs.metrics.counters == {}
        assert obs.profiler.spans == {}

    def test_enabled_metric_helpers_record(self):
        obs = Observability()
        obs.count("c", 2.0)
        obs.gauge("g", 7.0)
        obs.observe("h", 0.5, [0.0, 1.0])
        obs.observe_array("h", [0.2, 0.8], [0.0, 1.0])
        assert obs.metrics.counters["c"].value == 2.0
        assert obs.metrics.gauges["g"].value == 7.0
        assert obs.metrics.histograms["h"].count == 3

    def test_observe_queue_normalises(self):
        obs = Observability()
        obs.observe_queue("fluid.reference", [0.0, 5.0, 10.0],
                          buffer_bits=10.0, q0_bits=2.5)
        frac = obs.metrics.histograms["queue_frac.fluid.reference"]
        rel = obs.metrics.histograms["sojourn_rel.fluid.reference"]
        assert frac.edges == QUEUE_FRAC_EDGES
        assert rel.edges == SOJOURN_REL_EDGES
        assert frac.count == rel.count == 3
        assert frac.sum == pytest.approx(0.0 + 0.5 + 1.0)
        assert rel.sum == pytest.approx(0.0 + 2.0 + 4.0)

    def test_observe_queue_skips_degenerate_scales(self):
        obs = Observability()
        obs.observe_queue("e", [], 10.0, 2.5)
        obs.observe_queue("e", [1.0], 0.0, 0.0)
        assert obs.metrics.histograms == {}

    def test_snapshot_merge_between_handles(self):
        worker = Observability()
        worker.event("drop", 0.0, engine="e")
        worker.add_span("s", 2.0)
        parent = Observability()
        parent.merge_metrics(worker.snapshot())
        assert parent.metrics.counters["events.drop"].value == 1
        assert parent.profiler.spans["s"].total == 2.0

    def test_write_trace_includes_truncation_meta(self, tmp_path):
        obs = Observability(max_trace_events=1)
        obs.event("bcn", 0.2, engine="e")
        obs.event("bcn", 0.1, engine="e")
        path = obs.write_trace(tmp_path / "t.jsonl", meta={"engine": "e"})
        header, records = read_trace(path)
        assert header["events_truncated"] == 1
        assert header["engine"] == "e"
        assert len(records) == 1

    def test_summary_line(self):
        obs = Observability()
        obs.event("drop", 0.0, engine="e")
        obs.event("bcn", 0.1, engine="e")
        line = obs.summary()
        assert "2 events" in line and "drop=1" in line


class TestEmitSignSwitches:
    def test_counts_sign_changes(self):
        obs = Observability()
        times = [0.0, 1.0, 2.0, 3.0, 4.0]
        values = [1.0, -1.0, -2.0, 3.0, 4.0]
        n = emit_sign_switches(obs, times, values, engine="e", node="cp0")
        assert n == 2
        switches = obs.trace.of_kind("region_switch")
        assert [r.t for r in switches] == [1.0, 3.0]
        assert switches[0].value == -1.0

    def test_zeros_inherit_previous_sign(self):
        obs = Observability()
        # grazing touch of the switching line: not a crossing
        n = emit_sign_switches(obs, [0, 1, 2], [1.0, 0.0, 2.0], engine="e")
        assert n == 0
        # zero then genuine crossing counts once
        n = emit_sign_switches(obs, [0, 1, 2], [1.0, 0.0, -2.0], engine="e")
        assert n == 1

    def test_none_disabled_and_short_inputs(self):
        assert emit_sign_switches(None, [0, 1], [1, -1], engine="e") == 0
        disabled = Observability.disabled()
        assert emit_sign_switches(disabled, [0, 1], [1, -1], engine="e") == 0
        obs = Observability()
        assert emit_sign_switches(obs, [0.0], [1.0], engine="e") == 0


def test_point_wall_edges_are_increasing():
    assert list(POINT_WALL_EDGES) == sorted(POINT_WALL_EDGES)
    assert EVENT_KINDS  # vocabulary is non-empty and importable

"""Unit tests for repro.viz (ASCII plots + series export)."""

import numpy as np
import pytest

from repro.viz.ascii import AsciiCanvas, line_plot, phase_plot
from repro.viz.series import downsample, format_table, write_csv


class TestCanvas:
    def test_plots_marker_at_data_point(self):
        canvas = AsciiCanvas(20, 10, x_range=(0.0, 1.0), y_range=(0.0, 1.0))
        canvas.plot([0.5], [0.5], marker="@")
        assert "@" in canvas.render()

    def test_clips_out_of_range(self):
        canvas = AsciiCanvas(20, 10, x_range=(0.0, 1.0), y_range=(0.0, 1.0))
        canvas.plot([5.0], [5.0])
        assert "*" not in canvas.render()

    def test_nan_skipped(self):
        canvas = AsciiCanvas(20, 10, x_range=(0.0, 1.0), y_range=(0.0, 1.0))
        canvas.plot([np.nan, 0.5], [0.5, np.nan])
        assert "*" not in canvas.render()

    def test_guide_lines(self):
        canvas = AsciiCanvas(20, 10, x_range=(-1.0, 1.0), y_range=(-1.0, 1.0))
        canvas.hline(0.0)
        canvas.vline(0.0)
        rendered = canvas.render()
        assert "-" in rendered.replace("+--", "")  # interior guide
        assert "|" in rendered

    def test_render_has_frame_and_ranges(self):
        canvas = AsciiCanvas(20, 10, x_range=(0.0, 2.0), y_range=(0.0, 4.0))
        out = canvas.render(title="demo")
        assert out.startswith("demo\n+")
        assert "x: [0, 2]" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            AsciiCanvas(2, 2, x_range=(0, 1), y_range=(0, 1))
        with pytest.raises(ValueError):
            AsciiCanvas(20, 10, x_range=(1.0, 1.0), y_range=(0, 1))


class TestHighLevelPlots:
    def test_phase_plot_renders(self):
        theta = np.linspace(0.0, 6.0, 200)
        out = phase_plot(np.cos(theta), np.sin(theta), switching_k=1.0,
                         title="circle")
        assert "circle" in out
        assert out.count("*") > 20

    def test_line_plot_with_reference(self):
        t = np.linspace(0.0, 1.0, 100)
        out = line_plot(t, np.sin(6 * t), reference=0.0)
        assert "=" in out


class TestSeries:
    def test_write_csv_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "s.csv", {"t": np.array([0.0, 1.0]),
                                              "v": np.array([2.0, 3.0])})
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "t,v"
        assert lines[1] == "0,2"

    def test_write_csv_validates_lengths(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "s.csv", {"a": np.array([1.0]),
                                           "b": np.array([1.0, 2.0])})

    def test_write_csv_requires_columns(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "s.csv", {})

    def test_downsample_keeps_endpoints(self):
        t = np.arange(1000.0)
        (thin,) = downsample(t, max_points=50)
        assert thin.size <= 50
        assert thin[0] == 0.0
        assert thin[-1] == 999.0

    def test_downsample_noop_when_small(self):
        t = np.arange(10.0)
        (thin,) = downsample(t, max_points=50)
        assert thin.size == 10

    def test_downsample_parallel_validation(self):
        with pytest.raises(ValueError):
            downsample(np.arange(5.0), np.arange(6.0))

    def test_format_table_alignment(self):
        out = format_table(["name", "value"], [["a", 1.23456], ["bb", 2.0]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in out  # default .4g formatting
        assert len(lines) == 4

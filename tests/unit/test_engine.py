"""Unit tests for the discrete-event engine (repro.simulation.engine)."""

import math

import pytest

from repro.simulation.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for name in "abcde":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_at_absolute(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(("first", sim.now))
            sim.schedule(1.0, lambda: fired.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [("first", 1.0), ("second", 2.0)]

    def test_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(math.inf, lambda: None)

    def test_rejects_past_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert sim.events_processed == 0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_max_events_cap(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_schedule_every_respects_until(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(1.0, lambda: ticks.append(sim.now), until=3.5)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_schedule_every_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Simulator().schedule_every(0.0, lambda: None)

    def test_reset(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending == 0
        assert sim.events_processed == 0

    def test_determinism(self):
        def run_once():
            sim = Simulator()
            out = []
            sim.schedule_every(0.3, lambda: out.append(round(sim.now, 9)),
                               until=2.0)
            sim.schedule(0.9, lambda: out.append("mark"))
            sim.run()
            return out

        assert run_once() == run_once()

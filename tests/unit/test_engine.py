"""Unit tests for the discrete-event engines (repro.simulation.engine).

Every behavioural test runs against both kernels (binary heap and
calendar queue) through the ``sim`` fixture; the two must be
observationally identical.  Kernel-specific internals (lazy compaction,
horizon rolling) get their own classes.
"""

import math

import pytest

from repro.simulation.engine import (
    _COMPACT_MIN_PENDING,
    CalendarSimulator,
    Simulator,
    make_simulator,
)

KERNELS = ["heap", "calendar"]


@pytest.fixture(params=KERNELS)
def sim(request):
    # A small slot width relative to the test times exercises the
    # overflow heap and horizon rolling on the calendar variant.
    if request.param == "calendar":
        return make_simulator("calendar", slot_width=0.01, n_slots=64)
    return make_simulator("heap")


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self, sim):
        fired = []
        for name in "abcde":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_at_absolute(self, sim):
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_nested_scheduling(self, sim):
        fired = []

        def first():
            fired.append(("first", sim.now))
            sim.schedule(1.0, lambda: fired.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [("first", 1.0), ("second", 2.0)]

    def test_rejects_negative_delay(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(math.inf, lambda: None)

    def test_rejects_past_absolute_time(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self, sim):
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert sim.events_processed == 0

    def test_double_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()
        assert sim.events_processed == 0


class TestCompaction:
    """Cancelling most of the queue must shrink it, not leak (satellite:
    heap-leak fix)."""

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_mass_cancellation_compacts_queue(self, kernel):
        sim = make_simulator(kernel, slot_width=0.5, n_slots=32)
        n = 4 * _COMPACT_MIN_PENDING
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(n)]
        assert sim.pending == n
        # Cancel ~75% of the events: compaction should trigger once the
        # cancelled fraction crosses one half, so the store must not
        # retain all the dead entries.
        survivors = []
        for i, h in enumerate(handles):
            if i % 4 == 0:
                survivors.append(h)
            else:
                h.cancel()
        assert sim.pending < n // 2
        assert sim.pending >= len(survivors)
        sim.run()
        assert sim.events_processed == len(survivors)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_small_queues_skip_compaction(self, kernel):
        sim = make_simulator(kernel, slot_width=0.5, n_slots=32)
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(8)]
        for h in handles:
            h.cancel()
        # Below _COMPACT_MIN_PENDING nothing compacts eagerly; the pops
        # still skip every cancelled event.
        sim.run()
        assert sim.events_processed == 0
        assert sim.pending == 0

    def test_compaction_preserves_order_and_results(self):
        for kernel in KERNELS:
            sim = make_simulator(kernel, slot_width=0.25, n_slots=16)
            fired = []
            n = 4 * _COMPACT_MIN_PENDING
            handles = [
                sim.schedule(float(i + 1) * 0.125, lambda i=i: fired.append(i))
                for i in range(n)
            ]
            for i, h in enumerate(handles):
                if i % 3:
                    h.cancel()
            sim.run()
            assert fired == [i for i in range(n) if i % 3 == 0]


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_max_events_cap(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_schedule_every_respects_until(self, sim):
        ticks = []
        sim.schedule_every(1.0, lambda: ticks.append(sim.now), until=3.5)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_schedule_every_rejects_nonpositive(self, sim):
        with pytest.raises(ValueError):
            sim.schedule_every(0.0, lambda: None)

    def test_reset(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending == 0
        assert sim.events_processed == 0
        # The kernel stays usable after a reset.
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0]

    def test_determinism(self, sim):
        def run_once(s):
            out = []
            s.schedule_every(0.3, lambda: out.append(round(s.now, 9)),
                             until=2.0)
            s.schedule(0.9, lambda: out.append("mark"))
            s.run()
            return out

        first = run_once(sim)
        sim.reset()
        assert run_once(sim) == first


class TestCalendarKernel:
    def test_far_events_cross_the_horizon(self):
        # horizon = 4 * 0.5 = 2 s; events at 10 s start in the overflow
        # heap and must still fire in exact order.
        sim = CalendarSimulator(slot_width=0.5, n_slots=4)
        fired = []
        sim.schedule(10.0, lambda: fired.append("far"))
        sim.schedule(0.25, lambda: fired.append("near"))
        sim.schedule(25.0, lambda: fired.append("farther"))
        sim.run()
        assert fired == ["near", "far", "farther"]
        assert sim.now == 25.0

    def test_matches_heap_kernel_on_mixed_workload(self):
        def run_once(s):
            out = []
            s.schedule_every(0.017, lambda: out.append(round(s.now, 12)),
                             until=1.0)
            for k in range(40):
                s.schedule(0.013 * (k + 1) + 3.0,
                           lambda k=k: out.append(("late", k)))
            handles = [s.schedule(0.5 + 0.001 * k, lambda k=k: out.append(k))
                       for k in range(20)]
            for h in handles[::2]:
                h.cancel()
            s.run()
            return out

        heap_out = run_once(make_simulator("heap"))
        cal_out = run_once(make_simulator("calendar", slot_width=0.01,
                                          n_slots=16))
        assert cal_out == heap_out

    def test_slot_edge_times_do_not_crash(self):
        sim = CalendarSimulator(slot_width=0.1, n_slots=10)
        fired = []
        # Exactly at the horizon end and exactly on bucket boundaries.
        for t in (0.0, 0.1, 0.999999999999, 1.0, 1.0000000001):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == 5

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CalendarSimulator(slot_width=0.0)
        with pytest.raises(ValueError):
            CalendarSimulator(slot_width=math.inf)
        with pytest.raises(ValueError):
            CalendarSimulator(n_slots=1)


class TestMakeSimulator:
    def test_builds_each_kernel(self):
        assert type(make_simulator("heap")) is Simulator
        assert isinstance(make_simulator("calendar"), CalendarSimulator)

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            make_simulator("splay-tree")


class TestWindowBarrier:
    """freeze_horizon / run_window: the conservative-parallel contract."""

    def test_run_window_processes_only_the_window(self, sim):
        fired = []
        for t in (0.01, 0.02, 0.03, 0.04):
            sim.schedule(t, lambda t=t: fired.append(t))
        n = sim.run_window(0.025)
        assert fired == [0.01, 0.02]
        assert n == 2
        assert sim.now == 0.025
        assert sim.freeze_horizon == math.inf  # restored afterwards

    def test_windowed_replay_matches_single_run(self, sim):
        def load(s):
            order = []
            for i, t in enumerate([0.005, 0.011, 0.011, 0.02, 0.033, 0.04]):
                s.schedule(t, lambda i=i: order.append(i))
            return order

        want_sim = make_simulator("heap")
        want = load(want_sim)
        want_sim.run(until=0.05)

        got = load(sim)
        edge = 0.0
        while edge < 0.05:
            edge = min(edge + 0.012, 0.05)
            sim.run_window(edge)
        assert got == want
        assert sim.now == 0.05

    def test_horizon_caps_reentrant_run(self, sim):
        fired = []
        sim.schedule(0.03, lambda: fired.append("late"))

        def greedy():
            fired.append("early")
            # A callback that tries to drag the clock past the barrier
            # must still be capped by the freeze horizon.
            sim.run(until=1.0)

        sim.schedule(0.01, greedy)
        sim.run_window(0.02)
        assert fired == ["early"]
        assert sim.now == 0.02
        sim.run_window(0.05)
        assert fired == ["early", "late"]

    def test_scheduling_beyond_horizon_waits(self, sim):
        fired = []
        sim.schedule(0.005, lambda: sim.schedule_at(0.03, lambda: fired.append("x")))
        sim.run_window(0.01)
        assert fired == []
        sim.run_window(0.04)
        assert fired == ["x"]

    def test_set_freeze_horizon_rejects_the_past(self, sim):
        sim.run_window(0.02)
        with pytest.raises(ValueError):
            sim.set_freeze_horizon(0.01)
        sim.clear_freeze_horizon()
        assert sim.freeze_horizon == math.inf

    def test_run_window_rejects_infinite_edge(self, sim):
        with pytest.raises(ValueError):
            sim.run_window(math.inf)

    def test_reset_clears_horizon(self, sim):
        sim.set_freeze_horizon(0.5)
        sim.reset()
        assert sim.freeze_horizon == math.inf

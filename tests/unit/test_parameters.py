"""Unit tests for repro.core.parameters."""

import math

import pytest

from repro.core.parameters import (
    PAPER_EXAMPLE,
    BCNParams,
    NormalizedParams,
    paper_example_params,
)


def make(**overrides):
    defaults = dict(capacity=1e9, n_flows=10, q0=1e6, buffer_size=8e6)
    defaults.update(overrides)
    return BCNParams(**defaults)


class TestBCNParamsValidation:
    def test_accepts_reasonable_configuration(self):
        params = make()
        assert params.capacity == 1e9
        assert params.fair_rate == 1e8

    @pytest.mark.parametrize("field,value", [
        ("capacity", 0.0),
        ("capacity", -1.0),
        ("capacity", math.nan),
        ("q0", 0.0),
        ("buffer_size", -5.0),
        ("w", 0.0),
        ("gi", 0.0),
        ("gd", -0.1),
        ("ru", 0.0),
    ])
    def test_rejects_nonpositive_fields(self, field, value):
        with pytest.raises(ValueError):
            make(**{field: value})

    @pytest.mark.parametrize("pm", [0.0, -0.1, 1.5])
    def test_rejects_bad_sampling_probability(self, pm):
        with pytest.raises(ValueError):
            make(pm=pm)

    def test_rejects_zero_flows(self):
        with pytest.raises(ValueError):
            make(n_flows=0)

    def test_rejects_q0_at_or_above_buffer(self):
        with pytest.raises(ValueError):
            make(q0=8e6, buffer_size=8e6)

    def test_rejects_q_sc_outside_range(self):
        with pytest.raises(ValueError):
            make(q_sc=0.5e6)  # below q0
        with pytest.raises(ValueError):
            make(q_sc=9e6)  # above buffer

    def test_q_sc_at_buffer_is_allowed(self):
        params = make(q_sc=8e6 * 0.999)
        assert params.q_sc == pytest.approx(8e6 * 0.999)

    def test_rejects_initial_rate_at_capacity(self):
        with pytest.raises(ValueError):
            make(initial_rate=1e8)  # N * mu == C

    def test_severe_threshold_defaults_to_buffer(self):
        assert make().severe_threshold == 8e6
        assert make(q_sc=4e6).severe_threshold == 4e6


class TestDerivedQuantities:
    def test_normalization_formulas(self):
        params = make(w=2.0, pm=0.01, gi=4.0, gd=1 / 128, ru=8e6)
        n = params.normalized()
        assert n.a == pytest.approx(8e6 * 4.0 * 10)
        assert n.b == pytest.approx(1 / 128)
        assert n.k == pytest.approx(2.0 / (0.01 * 1e9))
        assert n.capacity == params.capacity
        assert n.q0 == params.q0
        assert n.buffer_size == params.buffer_size

    def test_with_replaces_fields(self):
        params = make()
        changed = params.with_(n_flows=20)
        assert changed.n_flows == 20
        assert changed.capacity == params.capacity
        assert params.n_flows == 10  # original untouched

    def test_warmup_duration_formula(self):
        params = make(initial_rate=5e7)  # aggregate 5e8 of 1e9
        a = params.ru * params.gi * params.n_flows
        expected = (1e9 - 10 * 5e7) / (a * params.q0)
        assert params.warmup_duration() == pytest.approx(expected)

    def test_warmup_shrinks_with_larger_q0(self):
        slow = make(q0=0.5e6).warmup_duration()
        fast = make(q0=2e6).warmup_duration()
        assert fast < slow


class TestNormalizedParams:
    def test_focus_threshold(self):
        n = NormalizedParams(a=1.0, b=0.01, k=2.0, capacity=100.0, q0=10.0,
                             buffer_size=50.0)
        assert n.focus_threshold == pytest.approx(1.0)
        assert n.n_increase == 1.0
        assert n.n_decrease == pytest.approx(1.0)

    def test_focus_flags(self):
        n = NormalizedParams(a=2.0, b=0.08, k=1.0, capacity=100.0, q0=10.0,
                             buffer_size=50.0)
        assert n.increase_is_focus  # 2 < 4
        assert not n.decrease_is_focus  # 8 > 4

    def test_sigma_sign_convention(self):
        n = NormalizedParams(a=1.0, b=0.01, k=1.0, capacity=100.0, q0=10.0,
                             buffer_size=50.0)
        assert n.sigma(-5.0, 0.0) > 0  # queue below reference -> increase
        assert n.sigma(5.0, 0.0) < 0
        assert n.sigma(-2.0, 2.0) == 0.0  # on the switching line

    def test_rejects_buffer_below_q0(self):
        with pytest.raises(ValueError):
            NormalizedParams(a=1.0, b=0.01, k=1.0, capacity=100.0, q0=10.0,
                             buffer_size=9.0)

    def test_to_physical_round_trip(self):
        n = NormalizedParams(a=1.6e9, b=1 / 128, k=2e-8, capacity=10e9,
                             q0=2.5e6, buffer_size=20e6)
        physical = n.to_physical(n_flows=50, w=2.0)
        back = physical.normalized()
        assert back.a == pytest.approx(n.a)
        assert back.b == pytest.approx(n.b)
        assert back.k == pytest.approx(n.k)

    def test_to_physical_rejects_invalid_pm(self):
        n = NormalizedParams(a=1.0, b=0.01, k=1e-12, capacity=1.0, q0=0.5,
                             buffer_size=5.0)
        with pytest.raises(ValueError):
            n.to_physical(w=10.0)


class TestPaperExample:
    def test_values_match_section_iv(self):
        p = PAPER_EXAMPLE
        assert p.capacity == 10e9
        assert p.n_flows == 50
        assert p.q0 == 2.5e6
        assert p.gi == 4.0
        assert p.gd == pytest.approx(1 / 128)
        assert p.ru == 8e6

    def test_helper_applies_overrides(self):
        assert paper_example_params() is PAPER_EXAMPLE
        assert paper_example_params(n_flows=10).n_flows == 10

    def test_paper_sqrt_factor(self):
        n = PAPER_EXAMPLE.normalized()
        factor = math.sqrt(n.a / (n.b * n.capacity))
        assert factor == pytest.approx(4.5255, abs=1e-4)

"""Unit tests for sources and rate regulators (repro.simulation.source)."""

import math

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.frames import BCNMessage, PauseFrame
from repro.simulation.source import (
    RateRegulator,
    TrafficSource,
    expected_message_interval,
)


def regulator(mode="message", **overrides):
    config = dict(gi=4.0, gd=1.0 / 128.0, ru=8e6, initial_rate=1e8,
                  min_rate=1e6, line_rate=1e9, mode=mode)
    config.update(overrides)
    return RateRegulator(**config)


def message(fb, fb_raw=None, cpid="core-0"):
    return BCNMessage(da=0, sa=cpid, cpid=cpid, fb=fb, q_off=0.0,
                      q_delta=0.0, fb_raw=fb if fb_raw is None else fb_raw)


class TestMessageMode:
    def test_additive_increase(self):
        reg = regulator()
        reg.apply(message(2.0))
        assert reg.rate == pytest.approx(1e8 + 4.0 * 8e6 * 2.0)

    def test_multiplicative_decrease(self):
        reg = regulator()
        reg.apply(message(-16.0))
        assert reg.rate == pytest.approx(1e8 * (1 - 16.0 / 128.0))

    def test_max_quantized_decrease_halves(self):
        # Gd = 1/128 with 6-bit FB (|fb| <= 64): worst case is -50%.
        reg = regulator()
        reg.apply(message(-64.0))
        assert reg.rate == pytest.approx(0.5e8)

    def test_rate_clamped_to_bounds(self):
        reg = regulator()
        reg.apply(message(1e6))
        assert reg.rate == 1e9  # line rate
        reg = regulator()
        reg.apply(message(-1e6))
        assert reg.rate == 1e6  # floor, never negative

    def test_zero_fb_is_noop(self):
        reg = regulator()
        reg.apply(message(0.0))
        assert reg.rate == 1e8


class TestFluidModes:
    def test_first_message_integrates_nothing(self):
        reg = regulator(mode="fluid-exact")
        reg.apply(message(-10.0, fb_raw=-1e6), now=1.0)
        assert reg.rate == 1e8  # dt unknown on the first message

    def test_exact_decrease_is_exponential(self):
        reg = regulator(mode="fluid-exact")
        reg.apply(message(-1.0, fb_raw=-1e5), now=0.0)
        reg.apply(message(-1.0, fb_raw=-1e5), now=0.001)
        expected = 1e8 * math.exp((1.0 / 128.0) * (-1e5) * 0.001)
        assert reg.rate == pytest.approx(expected)

    def test_euler_decrease_matches_small_step(self):
        exact = regulator(mode="fluid-exact")
        euler = regulator(mode="fluid-euler")
        for reg in (exact, euler):
            reg.apply(message(-1.0, fb_raw=-100.0), now=0.0)
            reg.apply(message(-1.0, fb_raw=-100.0), now=1e-5)
        assert euler.rate == pytest.approx(exact.rate, rel=1e-6)

    def test_exact_never_goes_negative(self):
        reg = regulator(mode="fluid-exact")
        reg.apply(message(-1.0, fb_raw=-1e9), now=0.0)
        reg.apply(message(-1.0, fb_raw=-1e9), now=1.0)
        assert reg.rate >= reg.min_rate

    def test_increase_integrates_sigma_dt(self):
        reg = regulator(mode="fluid-euler")
        reg.apply(message(1.0, fb_raw=1e3), now=0.0)
        reg.apply(message(1.0, fb_raw=1e3), now=0.002)
        assert reg.rate == pytest.approx(1e8 + 4.0 * 8e6 * 1e3 * 0.002)

    def test_max_dt_caps_integration(self):
        reg = regulator(mode="fluid-euler", max_dt=1e-3)
        reg.apply(message(1.0, fb_raw=1e3), now=0.0)
        reg.apply(message(1.0, fb_raw=1e3), now=10.0)
        assert reg.rate == pytest.approx(1e8 + 4.0 * 8e6 * 1e3 * 1e-3)


class TestAssociation:
    def test_negative_bcn_associates(self):
        reg = regulator()
        assert reg.associated_cpid is None
        reg.apply(message(-4.0, cpid="core-7"))
        assert reg.associated_cpid == "core-7"

    def test_association_released_at_line_rate(self):
        reg = regulator()
        reg.apply(message(-4.0))
        reg.apply(message(1e6))  # clamps to line rate
        assert reg.associated_cpid is None

    def test_validation(self):
        with pytest.raises(ValueError):
            regulator(initial_rate=0.0)
        with pytest.raises(ValueError):
            regulator(min_rate=0.0)
        with pytest.raises(ValueError):
            regulator(mode="bogus")


class TestTrafficSource:
    def make_source(self, sim, reg, **overrides):
        sent = []
        config = dict(address=3, regulator=reg, send=sent.append,
                      frame_bits=12000)
        config.update(overrides)
        return TrafficSource(sim, **config), sent

    def test_paces_at_regulator_rate(self):
        sim = Simulator()
        source, sent = self.make_source(sim, regulator(initial_rate=12000.0))
        source.start()
        sim.run(until=3.5)
        assert len(sent) == 3  # one frame per second
        assert source.frames_sent == 3

    def test_frames_carry_rrt_after_association(self):
        sim = Simulator()
        reg = regulator(initial_rate=12000.0)
        source, sent = self.make_source(sim, reg)
        source.start()
        sim.run(until=1.5)
        assert sent[0].rrt_cpid is None
        source.receive_control(message(-4.0, cpid="core-9"))
        sim.run(until=2.5)
        assert sent[-1].rrt_cpid == "core-9"

    def test_pause_silences_until_expiry(self):
        sim = Simulator()
        source, sent = self.make_source(sim, regulator(initial_rate=12000.0))
        source.start()
        sim.run(until=1.5)  # one frame out
        source.receive_control(PauseFrame(sa="sw", duration=3.0))
        sim.run(until=4.0)  # pause covers until t=4.5
        assert len(sent) == 1
        sim.run(until=6.0)
        assert len(sent) >= 2

    def test_finite_flow_stops(self):
        sim = Simulator()
        source, sent = self.make_source(
            sim, regulator(initial_rate=12000.0), total_bits=24000.0)
        source.start()
        sim.run(until=10.0)
        assert len(sent) == 2
        assert source.finished

    def test_muted_source_sends_nothing(self):
        sim = Simulator()
        source, sent = self.make_source(sim, regulator(initial_rate=12000.0))
        source.muted = True
        source.start()
        sim.run(until=5.0)
        assert sent == []
        source.muted = False
        sim.run(until=8.0)
        assert sent

    def test_rate_change_observer(self):
        sim = Simulator()
        seen = []
        source, _ = self.make_source(
            sim, regulator(initial_rate=12000.0),
            on_rate_change=lambda t, r: seen.append((t, r)))
        source.receive_control(message(-16.0))
        assert len(seen) == 1

    def test_start_idempotent(self):
        sim = Simulator()
        source, sent = self.make_source(sim, regulator(initial_rate=12000.0))
        source.start()
        source.start()
        sim.run(until=1.5)
        assert len(sent) == 1


class TestHelpers:
    def test_expected_message_interval(self):
        assert expected_message_interval(10, 1500, 0.1, 1e9) == pytest.approx(
            10 * 1500 / (0.1 * 1e9))

    def test_expected_message_interval_validation(self):
        with pytest.raises(ValueError):
            expected_message_interval(0, 1500, 0.1, 1e9)
        with pytest.raises(ValueError):
            expected_message_interval(10, 1500, 1.5, 1e9)

"""Unit tests for tools/bench_report.py (report building and merging)."""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "tools"))

from bench_report import build_report, main, validate_report  # noqa: E402


def _bench(name, mean, *, workload=None, engine=None, **extra):
    info = dict(extra)
    if workload:
        info["workload"] = workload
    if engine:
        info["engine"] = engine
    return {
        "name": name,
        "stats": {"mean": mean, "min": mean, "stddev": 0.0, "rounds": 3},
        "extra_info": info,
    }


def _raw(*benches, datetime="2026-01-01"):
    return {
        "datetime": datetime,
        "machine_info": {"node": "test", "cpu": {"brand_raw": "x"}},
        "benchmarks": list(benches),
    }


class TestSpeedupPairing:
    def test_pairs_batch_against_reference(self):
        report = build_report(_raw(
            _bench("a", 1.0, workload="w", engine="batch"),
            _bench("b", 5.0, workload="w", engine="reference"),
        ))
        assert report["speedups"]["w"]["speedup"] == 5.0
        assert report["speedups"]["w"]["fast_engine"] == "batch"

    def test_pairs_batched_against_reference(self):
        report = build_report(_raw(
            _bench("a", 0.5, workload="p", engine="batched"),
            _bench("b", 4.0, workload="p", engine="reference"),
        ))
        assert report["speedups"]["p"]["speedup"] == 8.0
        assert report["speedups"]["p"]["fast_engine"] == "batched"

    def test_other_engine_tags_are_not_gated(self):
        # heap/calendar microbenches share a workload but neither is a
        # fast engine, so no speedup row (and hence no gate) appears.
        report = build_report(_raw(
            _bench("a", 1.0, workload="storm", engine="heap"),
            _bench("b", 0.5, workload="storm", engine="calendar"),
        ))
        assert report["speedups"] == {}
        assert set(report["kernels"]) == {"a", "b"}


class TestThroughputFigures:
    def test_trajectory_seconds_figure(self):
        report = build_report(_raw(
            _bench("a", 2.0, trajectory_seconds=100.0)))
        assert report["kernels"]["a"]["ns_per_trajectory_second"] == (
            2.0 / 100.0 * 1e9
        )

    def test_simulated_seconds_figure(self):
        report = build_report(_raw(
            _bench("a", 0.3, simulated_seconds=0.2)))
        assert report["kernels"]["a"]["ns_per_simulated_second"] == (
            0.3 / 0.2 * 1e9
        )


class TestObservabilitySections:
    def test_event_counts_grouped_by_workload_and_engine(self):
        report = build_report(_raw(
            _bench("a", 1.0, workload="w", engine="batched",
                   event_counts={"bcn": 10, "drop": 2}),
            _bench("b", 1.0, workload="w",
                   event_counts={"region_switch": 3}),
        ))
        assert report["events"]["w"]["batched"] == {"bcn": 10, "drop": 2}
        assert report["events"]["w"]["-"] == {"region_switch": 3}

    def test_obs_overhead_relative_to_baseline(self):
        report = build_report(_raw(_bench(
            "a", 1.0, workload="w",
            obs_overhead={"baseline_s": 1.0, "obs_disabled_s": 1.01,
                          "obs_enabled_s": 1.5},
        )))
        row = report["overheads"]["w"]
        assert row["baseline_s"] == 1.0
        assert abs(row["obs_disabled_overhead"] - 0.01) < 1e-12
        assert abs(row["obs_enabled_overhead"] - 0.5) < 1e-12

    def test_no_obs_tags_yields_empty_sections(self):
        report = build_report(_raw(_bench("a", 1.0)))
        assert report["events"] == {}
        assert report["overheads"] == {}


class TestMerging:
    def test_merges_kernels_from_multiple_raws(self):
        fluid = _raw(_bench("fluid_batch", 1.0, workload="f", engine="batch"),
                     _bench("fluid_ref", 5.0, workload="f",
                            engine="reference"))
        packet = _raw(_bench("pkt_batched", 0.3, workload="p",
                             engine="batched"),
                      _bench("pkt_ref", 2.4, workload="p",
                             engine="reference"))
        report = build_report([fluid, packet])
        assert set(report["kernels"]) == {
            "fluid_batch", "fluid_ref", "pkt_batched", "pkt_ref",
        }
        assert set(report["speedups"]) == {"f", "p"}

    def test_duplicates_keep_first_occurrence(self, capsys):
        first = _raw(_bench("k", 1.0, workload="w", engine="batch"),
                     _bench("r", 9.0, workload="w", engine="reference"))
        second = _raw(_bench("k", 100.0, workload="w", engine="batch"))
        report = build_report([first, second])
        assert report["kernels"]["k"]["mean_s"] == 1.0
        assert report["speedups"]["w"]["speedup"] == 9.0
        assert "duplicate benchmark" in capsys.readouterr().err

    def test_machine_info_from_first_raw(self):
        a = _raw(datetime="2026-02-02")
        b = _raw(datetime="2030-01-01")
        report = build_report([a, b])
        assert report["source_datetime"] == "2026-02-02"

    def test_single_dict_still_accepted(self):
        report = build_report(_raw(_bench("solo", 1.0)))
        assert set(report["kernels"]) == {"solo"}


class TestValidate:
    def _report(self):
        return build_report(_raw(
            _bench("a", 1.0, workload="w", engine="batch",
                   event_counts={"bcn": 3}),
            _bench("b", 5.0, workload="w", engine="reference"),
            _bench("c", 1.0, workload="w",
                   obs_overhead={"baseline_s": 1.0, "obs_enabled_s": 1.2}),
        ))

    def test_generated_report_is_schema_clean(self):
        assert validate_report(self._report()) == []

    def test_committed_reports_are_schema_clean(self):
        import json

        for path in sorted(ROOT.glob("BENCH_*.json")):
            doc = json.loads(path.read_text())
            assert validate_report(doc, label=path.name) == []

    def test_missing_keys_and_bad_types(self):
        assert validate_report([]) == ["report: top level must be a "
                                       "JSON object"]
        problems = validate_report({"generated_by": "elsewhere"})
        assert any("missing required key" in p for p in problems)

    def test_speedup_drift_is_flagged(self):
        doc = self._report()
        doc["speedups"]["w"]["speedup"] = 2.0  # truth is 5.0
        problems = validate_report(doc)
        assert any("drifted from reference_s/batch_s" in p
                   for p in problems)

    def test_unknown_engine_tag_and_event_kind(self):
        doc = self._report()
        doc["speedups"]["w"]["fast_engine"] = "warp"
        doc["events"]["w"]["batch"] = {"not_a_kind": 1}
        problems = validate_report(doc)
        assert any("fast_engine 'warp'" in p for p in problems)
        assert any("unknown event kind 'not_a_kind'" in p
                   for p in problems)

    def test_overhead_drift_is_flagged(self):
        doc = self._report()
        doc["overheads"]["w"]["obs_enabled_overhead"] = 0.0
        problems = validate_report(doc)
        assert any("obs_enabled_overhead" in p and "drifted" in p
                   for p in problems)

    def test_legacy_reports_without_new_fields_pass(self):
        doc = self._report()
        for entry in doc["kernels"].values():
            entry["min_s"] = None
        del doc["speedups"]["w"]["fast_engine"]
        del doc["events"]
        del doc["overheads"]
        assert validate_report(doc) == []

    def test_cli_validate_mode(self, tmp_path, capsys):
        import json

        good = tmp_path / "BENCH_good.json"
        good.write_text(json.dumps(self._report()))
        assert main(["--validate", str(good)]) == 0
        assert "ok (" in capsys.readouterr().out

        bad_doc = self._report()
        bad_doc["speedups"]["w"]["speedup"] = 123.0
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps(bad_doc))
        assert main(["--validate", str(bad)]) == 1
        assert "drifted" in capsys.readouterr().err

        assert main(["--validate", str(tmp_path / "missing.json")]) == 1

"""Unit tests for the content-addressed result cache (repro.runner.cache)."""

import numpy as np

from repro.core.parameters import BCNParams
from repro.runner import ResultCache, canonical_key


def make_cache(tmp_path, version="1.0.0"):
    return ResultCache(tmp_path / "cache", version=version)


class TestKeying:
    def test_key_stable_across_dict_ordering(self, tmp_path):
        cache = make_cache(tmp_path)
        assert cache.key("x", {"a": 1, "b": 2}) == cache.key("x", {"b": 2, "a": 1})

    def test_key_stable_for_nested_dicts(self, tmp_path):
        cache = make_cache(tmp_path)
        k1 = cache.key("x", {"outer": {"p": 1.5, "q": "s"}, "n": 3})
        k2 = cache.key("x", {"n": 3, "outer": {"q": "s", "p": 1.5}})
        assert k1 == k2

    def test_dataclass_params_canonicalised(self, tmp_path):
        cache = make_cache(tmp_path)
        p1 = BCNParams(capacity=1e9, n_flows=10, q0=1e6, buffer_size=8e6)
        p2 = BCNParams(capacity=1e9, n_flows=10, q0=1e6, buffer_size=8e6)
        assert cache.key("x", {"base": p1}) == cache.key("x", {"base": p2})

    def test_key_changes_on_param_change(self, tmp_path):
        cache = make_cache(tmp_path)
        assert cache.key("x", {"a": 1}) != cache.key("x", {"a": 2})
        assert cache.key("x", {"a": 1}) != cache.key("y", {"a": 1})

    def test_key_changes_on_version_bump(self):
        assert (canonical_key("x", {"a": 1}, "1.0.0")
                != canonical_key("x", {"a": 1}, "2.0.0"))

    def test_numpy_scalars_equal_python_scalars(self, tmp_path):
        cache = make_cache(tmp_path)
        assert (cache.key("x", {"a": np.float64(1.5)})
                == cache.key("x", {"a": 1.5}))

    def test_default_version_is_package_version(self, tmp_path):
        import repro

        cache = ResultCache(tmp_path / "c")
        assert cache.version == repro.__version__


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        cache = make_cache(tmp_path)
        value = {"peak": 1.25, "arr": np.arange(4.0)}
        cache.put("v1", {"a": 1}, value)
        got = cache.get("v1", {"a": 1})
        assert got["peak"] == 1.25
        assert np.array_equal(got["arr"], value["arr"])
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_miss_returns_default(self, tmp_path):
        cache = make_cache(tmp_path)
        sentinel = object()
        assert cache.get("v1", {"a": 1}, sentinel) is sentinel
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_version_bump_invalidates(self, tmp_path):
        make_cache(tmp_path, version="1.0.0").put("v1", {"a": 1}, "old")
        cache2 = make_cache(tmp_path, version="2.0.0")
        assert cache2.get("v1", {"a": 1}) is None
        assert cache2.stats.misses == 1

    def test_param_change_misses(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put("v1", {"a": 1}, "one")
        assert cache.get("v1", {"a": 2}) is None
        assert cache.get("v1", {"a": 1}) == "one"


class TestCorruptionTolerance:
    def test_corrupt_entry_is_a_miss_and_dropped(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put("v1", {"a": 1}, "value")
        path = cache.path("v1", {"a": 1})
        path.write_bytes(b"\x00not a pickle")
        assert cache.get("v1", {"a": 1}) is None  # no crash
        assert cache.stats.corrupt == 1
        assert not path.exists()  # dropped, so the recompute can store

    def test_recompute_after_corruption(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put("v1", {"a": 1}, "value")
        cache.path("v1", {"a": 1}).write_bytes(b"garbage")
        assert cache.get("v1", {"a": 1}) is None
        cache.put("v1", {"a": 1}, "recomputed")
        assert cache.get("v1", {"a": 1}) == "recomputed"

    def test_truncated_pickle_is_a_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put("v1", {"a": 1}, {"big": list(range(100))})
        path = cache.path("v1", {"a": 1})
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get("v1", {"a": 1}) is None
        assert cache.stats.corrupt == 1


class TestMaintenance:
    def fill(self, cache):
        cache.put("v1", {"a": 1}, 1)
        cache.put("v1", {"a": 2}, 2)
        cache.put("fig6", {"a": 1}, 3)

    def test_size(self, tmp_path):
        cache = make_cache(tmp_path)
        self.fill(cache)
        assert cache.size() == 3
        assert cache.size("v1") == 2
        assert cache.size("unknown") == 0

    def test_invalidate_one_experiment(self, tmp_path):
        cache = make_cache(tmp_path)
        self.fill(cache)
        assert cache.invalidate("v1") == 2
        assert cache.get("v1", {"a": 1}) is None
        assert cache.get("fig6", {"a": 1}) == 3

    def test_invalidate_all(self, tmp_path):
        cache = make_cache(tmp_path)
        self.fill(cache)
        assert cache.invalidate() == 3
        assert cache.size() == 0

    def test_stats_summary_mentions_hits(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put("v1", {"a": 1}, 1)
        cache.get("v1", {"a": 1})
        cache.get("v1", {"a": 2})
        assert "1/2 hits" in cache.stats.summary()

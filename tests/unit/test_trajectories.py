"""Unit tests for the closed-form trajectories (repro.core.trajectories).

Each family is checked against an independent numerical integration of
the same linear ODE (``x' = y``, ``y' = -n x - k n y``) and against the
structural facts the paper derives from it.
"""

import math

import numpy as np
import pytest
from scipy.integrate import solve_ivp

from repro.core.eigen import eigenstructure
from repro.core.trajectories import (
    DegenerateTrajectory,
    NodeTrajectory,
    SpiralTrajectory,
    linear_trajectory,
    trajectory_for,
)

FOCUS = eigenstructure(2.0, 1.0)
NODE = eigenstructure(8.0, 1.0)
DEGEN = eigenstructure(4.0, 1.0)


def integrate_reference(eig, x0, y0, t_end, n_points=200):
    n, k = eig.n, eig.k

    def rhs(t, s):
        return [s[1], -n * s[0] - k * n * s[1]]

    ts = np.linspace(0.0, t_end, n_points)
    sol = solve_ivp(rhs, (0.0, t_end), [x0, y0], t_eval=ts, rtol=1e-11,
                    atol=1e-13)
    return ts, sol.y[0], sol.y[1]


@pytest.mark.parametrize("eig,x0,y0", [
    (FOCUS, -10.0, 0.0),
    (FOCUS, 3.0, -7.0),
    (NODE, -10.0, 0.0),
    (NODE, 2.0, 5.0),
    (DEGEN, -4.0, 1.0),
    (DEGEN, 1.0, -2.0),
])
def test_closed_form_matches_numerical_integration(eig, x0, y0):
    traj = linear_trajectory(eig, x0, y0)
    ts, x_ref, y_ref = integrate_reference(eig, x0, y0, 5.0)
    states = traj.states(ts)
    scale = max(abs(x0), abs(y0), 1.0)
    assert np.allclose(states[:, 0], x_ref, atol=1e-7 * scale)
    assert np.allclose(states[:, 1], y_ref, atol=1e-7 * scale)


@pytest.mark.parametrize("eig", [FOCUS, NODE, DEGEN])
def test_state_matches_states_vectorised(eig):
    traj = linear_trajectory(eig, -3.0, 4.0)
    ts = np.linspace(0.0, 2.0, 17)
    batch = traj.states(ts)
    for i, t in enumerate(ts):
        x, y = traj.state(float(t))
        assert x == pytest.approx(batch[i, 0], abs=1e-12)
        assert y == pytest.approx(batch[i, 1], abs=1e-12)


@pytest.mark.parametrize("eig", [FOCUS, NODE, DEGEN])
def test_initial_condition_reproduced(eig):
    traj = linear_trajectory(eig, -2.5, 1.5)
    assert traj.state(0.0) == (pytest.approx(-2.5), pytest.approx(1.5))


class TestFactory:
    def test_dispatches_by_kind(self):
        assert isinstance(linear_trajectory(FOCUS, 1, 0), SpiralTrajectory)
        assert isinstance(linear_trajectory(NODE, 1, 0), NodeTrajectory)
        assert isinstance(linear_trajectory(DEGEN, 1, 0), DegenerateTrajectory)

    def test_trajectory_for_builds_and_classifies(self):
        assert isinstance(trajectory_for(2.0, 1.0, 1, 0), SpiralTrajectory)
        assert isinstance(trajectory_for(8.0, 1.0, 1, 0), NodeTrajectory)

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SpiralTrajectory(1.0, 0.0, NODE)
        with pytest.raises(ValueError):
            NodeTrajectory(1.0, 0.0, FOCUS)
        with pytest.raises(ValueError):
            DegenerateTrajectory(1.0, 0.0, FOCUS)


class TestSpiral:
    def test_amplitude_matches_paper_formula(self):
        # A = sqrt((alpha^2+beta^2) x0^2 - 2 alpha x0 y0 + y0^2) / beta
        x0, y0 = -3.0, 5.0
        traj = SpiralTrajectory(x0, y0, FOCUS)
        a, b = FOCUS.alpha, FOCUS.beta
        expected = math.sqrt((a * a + b * b) * x0 * x0 - 2 * a * x0 * y0
                             + y0 * y0) / b
        assert traj.amplitude == pytest.approx(expected)

    def test_amplitude_phase_reconstruct_x(self):
        traj = SpiralTrajectory(-3.0, 5.0, FOCUS)
        for t in (0.0, 0.3, 1.7):
            expected = (traj.amplitude * math.exp(FOCUS.alpha * t)
                        * math.cos(FOCUS.beta * t + traj.phase))
            assert traj.state(t)[0] == pytest.approx(expected, abs=1e-10)

    def test_polar_radius_law(self):
        # eq. (17): r = sqrt(c1) exp(alpha/beta * theta); check the log
        # radius is affine in theta along the trajectory.
        traj = SpiralTrajectory(-10.0, 0.0, FOCUS)
        slope = FOCUS.alpha / FOCUS.beta
        r0, th0 = traj.polar(0.0)
        for t in (0.1, 0.5, 1.1):
            r, th = traj.polar(t)
            # theta from atan2 wraps; use the time form theta = beta t + phase
            dtheta = FOCUS.beta * t
            assert math.log(r / r0) == pytest.approx(slope * dtheta, abs=1e-9)

    def test_first_y_zero_is_first(self):
        traj = SpiralTrajectory(-10.0, 0.0, FOCUS)
        t_star = traj.first_y_zero_time()
        assert t_star > 0
        # y keeps one sign strictly inside (0, t_star)
        ts = np.linspace(1e-6, t_star * 0.999, 100)
        ys = traj.states(ts)[:, 1]
        assert np.all(ys > 0) or np.all(ys < 0)
        assert traj.state(t_star)[1] == pytest.approx(0.0, abs=1e-9)

    def test_line_crossing_lands_on_line(self):
        traj = SpiralTrajectory(-10.0, 0.0, FOCUS)
        k = 0.7
        t_cross = traj.first_line_crossing_time(k)
        x, y = traj.state(t_cross)
        assert x + k * y == pytest.approx(0.0, abs=1e-8)

    def test_crossing_from_on_line_advances_half_turn(self):
        k = FOCUS.k
        y0 = 5.0
        traj = SpiralTrajectory(-k * y0, y0, FOCUS)
        t_cross = traj.first_line_crossing_time(k)
        assert t_cross == pytest.approx(math.pi / FOCUS.beta, rel=1e-9)

    def test_half_turn_contraction(self):
        traj = SpiralTrajectory(-10.0, 0.0, FOCUS)
        assert traj.half_turn_contraction() == pytest.approx(
            math.exp(FOCUS.alpha * math.pi / FOCUS.beta))
        assert 0 < traj.half_turn_contraction() < 1

    def test_extremum_is_local_max_for_positive_y0(self):
        traj = SpiralTrajectory(-1.0, 4.0, FOCUS)
        t_star = traj.first_y_zero_time()
        ext = traj.extremum_x()
        eps = 1e-4
        assert ext > traj.state(t_star - eps)[0]
        assert ext > traj.state(t_star + eps)[0]


class TestNode:
    def test_coefficients_match_paper(self):
        x0, y0 = -3.0, 2.0
        traj = NodeTrajectory(x0, y0, NODE)
        l1, l2 = NODE.real_eigenvalues
        assert traj.a1 == pytest.approx((l2 * x0 - y0) / (l2 - l1))
        assert traj.a2 == pytest.approx((y0 - l1 * x0) / (l2 - l1))
        assert traj.a1 + traj.a2 == pytest.approx(x0)

    def test_invariant_lines_are_trajectories(self):
        l1, l2 = NODE.real_eigenvalues
        for lam in (l1, l2):
            traj = NodeTrajectory(2.0, 2.0 * lam, NODE)
            for t in (0.5, 2.0):
                x, y = traj.state(t)
                assert y == pytest.approx(lam * x, abs=1e-10)

    def test_no_line_crossing_from_switching_line(self):
        # Starting on x + k y = 0 a node trajectory never returns to it.
        k = NODE.k
        traj = NodeTrajectory(-k * 3.0, 3.0, NODE)
        assert traj.first_line_crossing_time(k) is None

    def test_interior_start_crosses_line(self):
        k = NODE.k
        traj = NodeTrajectory(-10.0, 0.0, NODE)
        t_cross = traj.first_line_crossing_time(k)
        assert t_cross is not None
        x, y = traj.state(t_cross)
        assert x + k * y == pytest.approx(0.0, abs=1e-9)

    def test_extremum_against_numeric_scan(self):
        # (-6, 45): y starts positive, changes sign -> x has a true max.
        traj = NodeTrajectory(-6.0, 45.0, NODE)
        assert traj.first_y_zero_time() is not None
        ts = np.linspace(0.0, 10.0, 40001)
        xs = traj.states(ts)[:, 0]
        assert traj.extremum_x() == pytest.approx(float(xs.max()), rel=1e-6)

    def test_monotone_start_has_no_extremum(self):
        # (-6, 9): both modes of y positive -> x climbs to 0 from below.
        traj = NodeTrajectory(-6.0, 9.0, NODE)
        assert traj.first_y_zero_time() is None
        assert traj.extremum_x() is None

    def test_paper_formula_matches_robust_where_defined(self):
        for x0, y0 in [(-6.0, 45.0), (-1.0, 8.0), (4.0, -30.0)]:
            traj = NodeTrajectory(x0, y0, NODE)
            paper = traj.extremum_x_paper_formula()
            robust = traj.extremum_x()
            if paper is not None and robust is not None:
                assert paper == pytest.approx(robust, rel=1e-9)

    def test_extremum_none_when_monotone(self):
        # Start on the slow invariant line moving towards the origin:
        # y never vanishes.
        l1, l2 = NODE.real_eigenvalues
        traj = NodeTrajectory(1.0, l2 * 1.0, NODE)
        assert traj.first_y_zero_time() is None
        assert traj.extremum_x() is None

    def test_curve_exponent_relation_constant(self):
        # eq. (26)/(27): |v| = c |u|^{lambda1/lambda2} — the signs of
        # u and v are constant along one trajectory, so the log relation
        # holds branch-wise.
        traj = NodeTrajectory(-6.0, 9.0, NODE)
        l1, l2 = NODE.real_eigenvalues
        consts = []
        for t in np.linspace(0.0, 0.6, 20):
            u, v = traj.curve_exponent_relation(float(t))
            consts.append(math.log(abs(v)) - (l1 / l2) * math.log(abs(u)))
        assert len(consts) == 20
        assert max(consts) - min(consts) < 1e-9


class TestDegenerate:
    def test_coefficients(self):
        traj = DegenerateTrajectory(-4.0, 1.0, DEGEN)
        lam = DEGEN.lambda1.real
        assert traj.a3 == -4.0
        assert traj.a4 == pytest.approx(1.0 - lam * (-4.0))

    def test_invariant_line(self):
        lam = DEGEN.lambda1.real
        traj = DegenerateTrajectory(2.0, 2.0 * lam, DEGEN)
        for t in (0.4, 1.3):
            x, y = traj.state(t)
            assert y == pytest.approx(lam * x, abs=1e-10)
        assert traj.invariant_line() == pytest.approx(lam)

    def test_paper_formula_eq34(self):
        for x0, y0 in [(-4.0, 20.0), (-1.0, 5.0)]:
            traj = DegenerateTrajectory(x0, y0, DEGEN)
            paper = traj.extremum_x_paper_formula()
            robust = traj.extremum_x()
            if paper is not None and robust is not None:
                assert paper == pytest.approx(robust, rel=1e-9)

    def test_start_on_invariant_line_has_no_extremum(self):
        # (-4, 8) sits exactly on y = lambda x (lambda = -2): monotone.
        traj = DegenerateTrajectory(-4.0, 8.0, DEGEN)
        assert traj.a4 == pytest.approx(0.0)
        assert traj.first_y_zero_time() is None

    def test_extremum_against_numeric_scan(self):
        traj = DegenerateTrajectory(-4.0, 20.0, DEGEN)
        assert traj.first_y_zero_time() is not None
        ts = np.linspace(0.0, 8.0, 40001)
        xs = traj.states(ts)[:, 0]
        assert traj.extremum_x() == pytest.approx(float(xs.max()), rel=1e-6)

    def test_degenerate_eigenvalue_is_minus_two_over_k(self):
        # Paper erratum (Case 5): the text claims lambda_{1,2} = -1/k at
        # the degenerate boundary, but the repeated root of
        # lambda^2 + k n lambda + n = 0 at n = 4/k^2 is -k n / 2 = -2/k.
        # The switching line is therefore NOT itself a trajectory; the
        # strong-stability conclusion still holds (next test).
        lam = DEGEN.lambda1.real
        assert lam == pytest.approx(-2.0 / DEGEN.k)
        assert lam != pytest.approx(-1.0 / DEGEN.k)

    def test_no_recrossing_from_switching_line(self):
        # Starting on x + k y = 0 the degenerate trajectory leaves the
        # line but never crosses it again — which is what Case 5's
        # stability conclusion actually needs.
        traj = DegenerateTrajectory(1.0, -1.0 / DEGEN.k, DEGEN)
        assert traj.first_line_crossing_time(DEGEN.k) is None

"""Unit tests for the compiled kernel package (:mod:`repro.kernels`).

Backend selection, the differential guarantees of the individual
kernels against their pure-python reference bodies, the compiled
calendar queue, the fluid precision modes, and the one-time warm-up
span.  Tests marked ``requires_compiled`` exercise a real compiled
tier (numba or cffi) and skip on the pure-numpy fallback; everything
else runs on every tier.
"""

import math

import numpy as np
import pytest

from repro.kernels import (available_backends, get_backend, reset_backend,
                           simulate_fluid_batch_compiled)
from repro.kernels._backend import KernelBackend, consume_warmup_span
from repro.simulation.engine import CalendarSimulator, make_simulator
from repro.simulation.frames import BCNMessage
from repro.simulation.source import RateRegulator

requires_compiled = pytest.mark.skipif(
    not get_backend().compiled,
    reason="no compiled backend (numba, or cffi + C compiler) available",
)


# -- backend selection ------------------------------------------------------


def test_available_backends_always_lists_numpy():
    names = available_backends()
    assert names[-1] == "numpy"


def test_numpy_tier_is_the_scalar_reference():
    be = KernelBackend()
    assert be.name == "numpy"
    assert not be.compiled
    assert be.warmup_seconds == 0.0


def test_unknown_backend_env_is_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "bogus")
    reset_backend()
    try:
        with pytest.raises(ValueError, match="REPRO_KERNEL_BACKEND"):
            get_backend()
    finally:
        monkeypatch.undo()
        reset_backend()


def test_numpy_env_selects_the_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
    reset_backend()
    try:
        be = get_backend()
        assert be.name == "numpy"
        assert not be.compiled
    finally:
        monkeypatch.undo()
        reset_backend()


def test_warmup_span_is_reported_once_per_process():
    class Spy:
        enabled = True

        def __init__(self):
            self.spans = []

        def add_span(self, name, seconds):
            self.spans.append((name, seconds))

    reset_backend()
    be = get_backend()
    first, second = Spy(), Spy()
    consume_warmup_span(first)
    consume_warmup_span(second)
    if be.warmup_seconds > 0.0:
        assert len(first.spans) == 1
        name, seconds = first.spans[0]
        assert name == f"kernels.jit_warmup.{be.name}"
        assert seconds == be.warmup_seconds
    else:
        assert first.spans == []
    assert second.spans == []  # consumed: steady-state stays clean


# -- merge_trains -----------------------------------------------------------


def _reference_merge(first, gaps, counts, assoc, d):
    """The batched engine's repeat/cumsum/stable-argsort train merge."""
    n = first.size
    total = int(counts.sum())
    srcs = np.repeat(np.arange(n), counts)
    ends = np.cumsum(counts)
    offsets = np.arange(total) - np.repeat(ends - counts, counts)
    times = np.repeat(first, counts) + np.repeat(gaps, counts) * offsets + d
    order = np.argsort(times, kind="stable")
    return times[order], srcs[order], assoc[srcs[order]]


@requires_compiled
def test_merge_trains_matches_argsort_merge():
    rng = np.random.default_rng(3)
    n = 8
    first = rng.uniform(0.0, 1e-3, n)
    gaps = rng.uniform(1e-6, 1e-4, n)
    counts = rng.integers(0, 50, n).astype(np.int64)
    assoc = rng.integers(0, 2, n).astype(np.uint8)
    d = 5e-6
    exp_t, exp_src, exp_assoc = _reference_merge(first, gaps, counts,
                                                 assoc, d)
    total = int(counts.sum())
    out_t = np.empty(total)
    out_src = np.empty(total, dtype=np.int64)
    out_assoc = np.empty(total, dtype=np.uint8)
    get_backend().merge_trains(first, gaps, counts, assoc, d,
                               out_t, out_src, out_assoc)
    np.testing.assert_array_equal(out_t, exp_t)
    np.testing.assert_array_equal(out_src, exp_src)
    np.testing.assert_array_equal(out_assoc, exp_assoc)


@requires_compiled
def test_merge_trains_breaks_time_ties_by_source():
    # Identical trains: every emission time collides across sources, and
    # the stable argsort the batched engine uses resolves each tie in
    # ascending source order — merge_trains must do the same.
    first = np.array([1e-3, 1e-3])
    gaps = np.array([1e-5, 1e-5])
    counts = np.array([3, 3], dtype=np.int64)
    assoc = np.array([1, 0], dtype=np.uint8)
    out_t = np.empty(6)
    out_src = np.empty(6, dtype=np.int64)
    out_assoc = np.empty(6, dtype=np.uint8)
    get_backend().merge_trains(first, gaps, counts, assoc, 0.0,
                               out_t, out_src, out_assoc)
    np.testing.assert_array_equal(out_src, [0, 1, 0, 1, 0, 1])
    np.testing.assert_array_equal(out_assoc, [1, 0, 1, 0, 1, 0])


# -- next_nonempty ----------------------------------------------------------


def test_next_nonempty_python_semantics():
    from repro.kernels import _scalar

    counts = np.array([0, 0, 3, 0, 1, 0], dtype=np.int64)
    assert _scalar.next_nonempty(counts, 0) == 2
    assert _scalar.next_nonempty(counts, 2) == 2
    assert _scalar.next_nonempty(counts, 3) == 4
    assert _scalar.next_nonempty(counts, 5) == -1


@requires_compiled
def test_next_nonempty_compiled_matches_python():
    be = get_backend()
    counts = np.array([0, 0, 3, 0, 1, 0], dtype=np.int64)
    for cursor in range(counts.size):
        from repro.kernels import _scalar

        assert int(be.next_nonempty(counts, cursor)) == \
            _scalar.next_nonempty(counts, cursor)


# -- apply_messages ---------------------------------------------------------


_MODES = [("message", 0), ("fluid-euler", 1), ("fluid-exact", 2)]


@requires_compiled
@pytest.mark.parametrize("mode, code", _MODES)
def test_apply_messages_matches_regulator_objects(mode, code):
    rng = np.random.default_rng(7)
    n, n_msg = 6, 400
    gi, gd, ru, max_dt = 4.0, 1 / 128, 8e6, 5e-4
    d, t_commit = 5e-6, 0.0105
    line_rate = np.full(n, 1e9)
    min_rate = np.full(n, 1e5)
    regs = [
        RateRegulator(gi=gi, gd=gd, ru=ru, initial_rate=2e7, min_rate=1e5,
                      line_rate=1e9, mode=mode, max_dt=max_dt)
        for _ in range(n)
    ]
    msg_t = np.sort(rng.uniform(0.0, 0.01, n_msg))
    msg_src = rng.integers(0, n, n_msg).astype(np.int64)
    msg_sigma = rng.uniform(-3e6, 3e6, n_msg)
    msg_fb = rng.uniform(-128.0, 127.0, n_msg)

    # object path: the batched orchestrator's delivery loop
    owed_obj = np.zeros(n)
    total_obj = float(sum(r.rate for r in regs))
    for k in range(n_msg):
        i = int(msg_src[k])
        now = float(msg_t[k]) + d
        before = regs[i].rate
        regs[i].apply(
            BCNMessage(da=i, sa="cp", cpid="cp", fb=float(msg_fb[k]),
                       q_off=0.0, q_delta=0.0, fb_raw=float(msg_sigma[k]),
                       sent_at=float(msg_t[k])),
            now,
        )
        after = regs[i].rate
        if after != before:
            delta = after - before
            owed_obj[i] += delta * max(t_commit - now, 0.0)
            total_obj += delta

    # kernel path: struct-of-array state
    rate = np.full(n, 2e7)
    last_update = np.full(n, np.nan)
    assoc8 = np.zeros(n, dtype=np.uint8)
    updates = np.zeros(n, dtype=np.int64)
    owed = np.zeros(n)
    out_d = np.array([n * 2e7])
    get_backend().apply_messages(
        msg_t, msg_src, msg_fb, msg_sigma, code, gi, gd, ru, max_dt,
        d, t_commit, rate, last_update, assoc8, updates,
        min_rate, line_rate, owed, out_d,
    )

    np.testing.assert_array_equal(rate, [r.rate for r in regs])
    np.testing.assert_array_equal(owed, owed_obj)
    assert float(out_d[0]) == total_obj
    np.testing.assert_array_equal(updates,
                                  [r.updates_applied for r in regs])
    for i, reg in enumerate(regs):
        assert bool(assoc8[i]) == (reg.associated_cpid == "cp")
        lu = float(last_update[i])
        if reg._last_update is None:
            assert lu != lu  # NaN encodes "never updated"
        else:
            assert lu == reg._last_update


# -- pacing kernels ---------------------------------------------------------


def _pacing_case(seed=5, n=7):
    rng = np.random.default_rng(seed)
    next_emit = rng.uniform(0.0, 2e-3, n)
    paused = np.where(rng.random(n) < 0.4,
                      rng.uniform(0.0, 2e-3, n), 0.0)
    active = (rng.random(n) < 0.8).astype(bool)
    remaining = np.where(rng.random(n) < 0.5,
                         rng.integers(1, 40, n).astype(float), np.inf)
    gaps = rng.uniform(1e-5, 2e-4, n)
    return next_emit, paused, active, remaining, gaps


@pytest.mark.parametrize("seed", [5, 6, 7])
def test_pacing_plan_matches_scalar_reference(seed):
    from repro.kernels import _scalar

    next_emit, paused, active, remaining, gaps = _pacing_case(seed)
    until = 1.5e-3
    n = next_emit.size
    ref_first, ref_counts = np.empty(n), np.empty(n, dtype=np.int64)
    ref_total = _scalar.pacing_plan(next_emit, paused, active, remaining,
                                    gaps, until, ref_first, ref_counts)
    first, counts = np.empty(n), np.empty(n, dtype=np.int64)
    total = get_backend().pacing_plan(next_emit, paused, active, remaining,
                                      gaps, until, first, counts)
    assert int(total) == ref_total == int(counts.sum())
    np.testing.assert_array_equal(first, ref_first)
    np.testing.assert_array_equal(counts, ref_counts)
    # a paused or inactive source never plans emissions before resume
    assert np.all(first >= next_emit)
    assert np.all(counts[~active] == 0)
    assert np.all(counts <= np.where(np.isfinite(remaining),
                                     remaining, np.inf))


@pytest.mark.parametrize("truncate", [False, True])
def test_pacing_commit_matches_scalar_reference(truncate):
    from repro.kernels import _scalar

    next_emit, paused, _, remaining, gaps = _pacing_case(9)
    until = 1.5e-3
    n = next_emit.size
    active = np.ones(n, dtype=bool)  # everyone emits: exercise finishes
    remaining[:3] = [1.0, 2.0, 3.0]  # force some sources to run out
    first, counts = np.empty(n), np.empty(n, dtype=np.int64)
    total = int(get_backend().pacing_plan(
        next_emit, paused, active, remaining, gaps, until, first, counts))
    assert total > 0
    srcs = np.repeat(np.arange(n, dtype=np.int64), counts)
    m_committed = total // 2 if truncate else total

    def run(fn):
        ne, rem = next_emit.copy(), remaining.copy()
        act = active.copy().astype(np.uint8)
        fa = np.zeros(n, dtype=np.int64)
        comm = np.empty(n, dtype=np.int64)
        fin_idx = np.empty(n, dtype=np.int64)
        fin_t = np.empty(n)
        n_fin = fn(srcs, m_committed, first, gaps, counts, 1,
                   ne, rem, act, fa, comm, fin_idx, fin_t)
        return ne, rem, act, fa, int(n_fin), fin_idx, fin_t

    r = run(_scalar.pacing_commit)
    k = run(get_backend().pacing_commit)
    for ref, got in zip(r[:5], k[:5]):
        np.testing.assert_array_equal(got, ref)
    np.testing.assert_array_equal(k[5][:k[4]], r[5][:r[4]])
    np.testing.assert_array_equal(k[6][:k[4]], r[6][:r[4]])
    # finished sources really ran out, and their finish time is the
    # instant their last committed frame was emitted
    for j in range(k[4]):
        i = int(k[5][j])
        assert k[1][i] <= 0.0 and not k[2][i]


def test_owed_repay_matches_scalar_reference():
    from repro.kernels import _scalar

    rng = np.random.default_rng(21)
    n = 8
    owed = np.where(rng.random(n) < 0.5, rng.uniform(-2e4, 2e4, n), 0.0)
    rates = rng.uniform(1e6, 1e9, n)
    until = 1e-3
    next_emit = np.where(rng.random(n) < 0.7,
                         until + rng.uniform(0.0, 1e-3, n),
                         rng.uniform(0.0, until, n))
    nxt = float(np.nextafter(until, np.inf))
    ref_owed, ref_ne = owed.copy(), next_emit.copy()
    _scalar.owed_repay(ref_owed, ref_ne, rates, until, nxt)
    got_owed, got_ne = owed.copy(), next_emit.copy()
    get_backend().owed_repay(got_owed, got_ne, rates, until, nxt)
    np.testing.assert_array_equal(got_owed, ref_owed)
    np.testing.assert_array_equal(got_ne, ref_ne)
    # sources already due before ``until`` are untouched
    before = next_emit <= until
    np.testing.assert_array_equal(got_ne[before], next_emit[before])
    np.testing.assert_array_equal(got_owed[before], owed[before])
    # repayment never reschedules a deferred source into the closed window
    assert np.all(got_ne[~before] >= nxt)


def test_bound_closures_mutate_like_direct_calls():
    """``bind_*`` closures must be call-for-call identical to the plain
    entry points on every tier (the cffi tier overrides them with
    precomputed pointers; the base class wraps the generic methods)."""
    be = get_backend()
    next_emit, paused, active, remaining, gaps = _pacing_case(31)
    until = 1.5e-3
    n = next_emit.size
    active = active.astype(np.uint8)

    d_first, d_counts = np.empty(n), np.empty(n, dtype=np.int64)
    d_total = int(be.pacing_plan(next_emit.copy(), paused, active,
                                 remaining.copy(), gaps, until,
                                 d_first, d_counts))

    b_ne, b_rem = next_emit.copy(), remaining.copy()
    b_first, b_counts = np.empty(n), np.empty(n, dtype=np.int64)
    bound_plan = be.bind_pacing_plan(b_ne, paused, active, b_rem, gaps,
                                     b_first, b_counts)
    assert int(bound_plan(until)) == d_total
    np.testing.assert_array_equal(b_first, d_first)
    np.testing.assert_array_equal(b_counts, d_counts)

    # owed_repay through a bound closure, twice (the closure must stay
    # valid across calls — pointers are cached, state is not)
    owed = np.array([1e4, 0.0, 5e3])
    ne = np.array([2e-3, 5e-4, 3e-3])
    rates = np.array([1e8, 1e8, 1e8])
    ref_owed, ref_ne = owed.copy(), ne.copy()
    be.owed_repay(ref_owed, ref_ne, rates, 1e-3,
                  float(np.nextafter(1e-3, np.inf)))
    be.owed_repay(ref_owed, ref_ne, rates, 2.5e-3,
                  float(np.nextafter(2.5e-3, np.inf)))
    bound_owed = be.bind_owed_repay(owed, ne, rates)
    bound_owed(1e-3, float(np.nextafter(1e-3, np.inf)))
    bound_owed(2.5e-3, float(np.nextafter(2.5e-3, np.inf)))
    np.testing.assert_array_equal(owed, ref_owed)
    np.testing.assert_array_equal(ne, ref_ne)


# -- fluid kernel -----------------------------------------------------------


def _fluid_case():
    from repro.experiments.presets import CASE1

    x0 = np.linspace(-0.5, 0.4, 6) * CASE1.q0
    return CASE1, x0


@requires_compiled
@pytest.mark.parametrize("mode", ["nonlinear", "linearized"])
def test_fluid_compiled_is_bitwise_equal_to_numpy(mode):
    from repro.fluid.batch import simulate_fluid_batch

    p, x0 = _fluid_case()
    ref = simulate_fluid_batch(p, x0, 0.0, t_max=20.0, mode=mode,
                               fluid_method="numpy")
    com = simulate_fluid_batch_compiled(p, x0, 0.0, t_max=20.0, mode=mode)
    np.testing.assert_array_equal(com.t, ref.t)
    np.testing.assert_array_equal(com.x, ref.x)
    np.testing.assert_array_equal(com.y, ref.y)
    np.testing.assert_array_equal(com.t_end, ref.t_end)
    np.testing.assert_array_equal(com.x_end, ref.x_end)
    np.testing.assert_array_equal(com.switch_counts, ref.switch_counts)
    np.testing.assert_array_equal(com.converged, ref.converged)
    assert com.end_reason == ref.end_reason
    assert com.events == ref.events


@requires_compiled
def test_fluid_compiled_physical_mode_within_libm_tolerance():
    from repro.fluid.batch import simulate_fluid_batch

    p, x0 = _fluid_case()
    ref = simulate_fluid_batch(p, x0, 0.0, t_max=20.0, mode="physical",
                               fluid_method="numpy")
    com = simulate_fluid_batch_compiled(p, x0, 0.0, t_max=20.0,
                                        mode="physical")
    scale = max(p.q0, p.capacity * 1e-3)
    assert np.max(np.abs(com.x - ref.x)) <= 1e-9 * scale
    np.testing.assert_array_equal(com.switch_counts, ref.switch_counts)


@requires_compiled
def test_fluid_float32_tracks_float64_within_tolerance():
    p, x0 = _fluid_case()
    f64 = simulate_fluid_batch_compiled(p, x0, 0.0, t_max=20.0,
                                        mode="nonlinear")
    f32 = simulate_fluid_batch_compiled(p, x0, 0.0, t_max=20.0,
                                        mode="nonlinear",
                                        precision="float32")
    assert f32.x.dtype == np.float32
    assert f32.y.dtype == np.float32
    assert f32.t.dtype == np.float64  # the grid stays exact
    # per-sample error stays ~1e-7 of the natural scales; allow 1e-4
    scale = max(p.q0, float(np.max(np.abs(f64.x))))
    assert np.max(np.abs(f32.x.astype(np.float64) - f64.x)) <= 1e-4 * scale
    # event *times* remain float64 and close to the double-precision ones
    for evs64, evs32 in zip(f64.events, f32.events):
        assert len(evs64) == len(evs32)


def test_fluid_method_seam_accepts_compiled_and_auto():
    from repro.fluid.batch import simulate_fluid_batch

    p, x0 = _fluid_case()
    ref = simulate_fluid_batch(p, x0, 0.0, t_max=5.0, mode="nonlinear",
                               fluid_method="numpy")
    for method in ("compiled", "auto"):
        out = simulate_fluid_batch(p, x0, 0.0, t_max=5.0, mode="nonlinear",
                                   fluid_method=method)
        np.testing.assert_array_equal(out.x, ref.x)
        np.testing.assert_array_equal(out.y, ref.y)
    with pytest.raises(ValueError):
        simulate_fluid_batch(p, x0, 0.0, t_max=5.0, fluid_method="???")
    with pytest.raises(ValueError):
        simulate_fluid_batch(p, x0, 0.0, t_max=5.0, precision="float16")


def test_fluid_numpy_fallback_casts_float32():
    from repro.fluid.batch import simulate_fluid_batch

    p, x0 = _fluid_case()
    out = simulate_fluid_batch(p, x0, 0.0, t_max=5.0, mode="nonlinear",
                               fluid_method="numpy", precision="float32")
    assert out.x.dtype == np.float32


# -- calendar queue ---------------------------------------------------------


def _drain_order(sim, times):
    seen = []
    for j, t in enumerate(times.tolist()):
        sim.schedule_at(t, lambda j=j, sim=sim: seen.append((sim.now, j)))
    sim.run(until=float(times.max()) + 1.0)
    return seen


@pytest.mark.parametrize("kernel", ["compiled", "compiled-calendar"])
def test_compiled_calendar_matches_heap_order(kernel):
    rng = np.random.default_rng(11)
    times = rng.uniform(0.0, 5e-3, 400)
    heap = _drain_order(make_simulator("heap"), times)
    comp = _drain_order(make_simulator(kernel, quantum_hint=1e-4), times)
    assert comp == heap


def test_compiled_calendar_rolls_horizon_like_parent():
    rng = np.random.default_rng(13)
    # spread far beyond one horizon so the overflow heap drains
    times = rng.uniform(0.0, 0.5, 300)
    heap = _drain_order(make_simulator("heap"), times)
    comp = _drain_order(make_simulator("compiled", slot_width=1e-4,
                                       n_slots=64), times)
    assert comp == heap


def test_calendar_slot_width_auto_derived_from_quantum_hint():
    assert CalendarSimulator(quantum_hint=6.4e-3)._slot_width == \
        pytest.approx(6.4e-3 / 64)
    # no hint: the legacy default
    assert CalendarSimulator()._slot_width == 1e-6
    # explicit width always wins
    assert CalendarSimulator(slot_width=2e-6,
                             quantum_hint=1.0)._slot_width == 2e-6
    # degenerate hints fall back instead of exploding
    assert CalendarSimulator(quantum_hint=0.0)._slot_width == 1e-6
    assert CalendarSimulator(quantum_hint=math.inf)._slot_width == 1e-6
    with pytest.raises(ValueError):
        CalendarSimulator(slot_width=0.0)


def test_calendar_degenerate_single_slot_schedule_stays_ordered():
    """Regression: with the legacy fixed width, a sub-microsecond event
    cluster lands entirely in bucket 0 and must still drain in exact
    (time, seq) order; the quantum hint spreads the same cluster over
    many buckets."""
    rng = np.random.default_rng(17)
    times = rng.uniform(0.0, 9e-7, 200)
    heap = _drain_order(make_simulator("heap"), times)
    legacy = _drain_order(CalendarSimulator(), times.copy())
    assert legacy == heap

    hinted = CalendarSimulator(quantum_hint=1e-6)
    for j, t in enumerate(times.tolist()):
        hinted.schedule_at(t, lambda: None)
    occupied = sum(1 for bucket in hinted._slots if bucket)
    assert occupied > 10  # the hint actually spreads the cluster
    legacy_sim = CalendarSimulator()
    for t in times.tolist():
        legacy_sim.schedule_at(t, lambda: None)
    assert sum(1 for b in legacy_sim._slots if b) == 1  # the degeneracy

"""Unit tests for the experiment-registry runner (repro.runner.executor)."""

import pytest

import repro.experiments  # noqa: F401 — registration side effects
from repro.experiments.base import ExperimentResult
from repro.runner import ResultCache, RunnerStats, run_experiments

FAST_IDS = ["fig6", "fig4", "fig9"]  # closed-form experiments, ~ms each
OPTIONS = {"render_plots": False}


class TestOrdering:
    def test_inline_preserves_requested_order(self):
        pairs = run_experiments(FAST_IDS, workers=0, options=OPTIONS)
        assert [eid for eid, _ in pairs] == FAST_IDS
        assert all(isinstance(r, ExperimentResult) for _, r in pairs)
        assert all(r.passed for _, r in pairs)

    def test_pooled_preserves_requested_order(self):
        pairs = run_experiments(FAST_IDS, workers=2, options=OPTIONS)
        assert [eid for eid, _ in pairs] == FAST_IDS
        assert all(r.passed for _, r in pairs)

    def test_pooled_matches_inline_results(self):
        inline = run_experiments(FAST_IDS, workers=0, options=OPTIONS)
        pooled = run_experiments(FAST_IDS, workers=2, options=OPTIONS)
        for (_, a), (_, b) in zip(inline, pooled):
            assert a.experiment_id == b.experiment_id
            assert a.verdicts == b.verdicts
            assert a.table_rows == b.table_rows

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiments(["nope"], workers=0)


class TestOptionFiltering:
    def test_runner_options_only_reach_aware_experiments(self):
        # fig4's run() accepts only render_plots; passing runner knobs
        # through the executor must not crash it.
        options = {**OPTIONS, "parallel": True, "workers": 0,
                   "cache_dir": None}
        pairs = run_experiments(["fig4", "v1"], workers=0, options=options)
        assert all(r.passed for _, r in pairs)
        v1 = dict(pairs)["v1"]
        assert any("runner:" in note for note in v1.notes)

    def test_pooled_dispatch_strips_execution_options(self):
        options = {**OPTIONS, "parallel": True, "workers": 2,
                   "cache_dir": None}
        pairs = run_experiments(["fig4", "v1"], workers=2, options=options)
        assert all(r.passed for _, r in pairs)


class TestCaching:
    def test_second_run_hits_and_skips(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_experiments(FAST_IDS, workers=0, cache=cache,
                                options=OPTIONS)
        stats = RunnerStats()
        second = run_experiments(FAST_IDS, workers=0,
                                 cache=ResultCache(tmp_path),
                                 options=OPTIONS, stats=stats)
        assert stats.evaluated == 0
        assert stats.cache_hits == len(FAST_IDS)
        for (_, a), (_, b) in zip(first, second):
            assert a.verdicts == b.verdicts
            assert a.table_rows == b.table_rows
            assert any("cache hit" in note for note in b.notes)

    def test_execution_knobs_do_not_split_the_cache(self, tmp_path):
        # A serial run primes the cache for a parallel one: parallel /
        # workers / cache_dir are execution strategy, not outcome.
        run_experiments(["v1"], workers=0, cache=ResultCache(tmp_path),
                        options=OPTIONS)
        stats = RunnerStats()
        run_experiments(
            ["v1"], workers=0, cache=ResultCache(tmp_path),
            options={**OPTIONS, "parallel": True, "workers": 2,
                     "cache_dir": None},
            stats=stats,
        )
        assert stats.cache_hits == 1

    def test_render_plots_is_part_of_the_key(self, tmp_path):
        run_experiments(["fig6"], workers=0, cache=ResultCache(tmp_path),
                        options={"render_plots": False})
        stats = RunnerStats()
        run_experiments(["fig6"], workers=0, cache=ResultCache(tmp_path),
                        options={"render_plots": True}, stats=stats)
        assert stats.cache_hits == 0


class TestInstrumentation:
    def test_stats_one_unit_per_experiment(self):
        stats = RunnerStats()
        run_experiments(FAST_IDS, workers=0, options=OPTIONS, stats=stats)
        assert len(stats.points) == len(FAST_IDS)
        assert stats.evaluated == len(FAST_IDS)
        assert stats.elapsed > 0

    def test_computed_results_note_their_wall_time(self):
        pairs = run_experiments(["fig6"], workers=0, options=OPTIONS)
        notes = pairs[0][1].notes
        assert any(note.startswith("runner: computed in") for note in notes)

"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main

PARAMS = ["--capacity", "10e9", "--flows", "50", "--q0", "2.5e6",
          "--buffer", "20e6"]


class TestAnalyze:
    def test_stable_config_exits_zero(self, capsys):
        code = main(["analyze", *PARAMS])
        out = capsys.readouterr().out
        assert code == 0
        assert "strongly stable: True" in out
        assert "case1" in out

    def test_unstable_config_exits_nonzero(self, capsys):
        code = main(["analyze", "--capacity", "10e9", "--flows", "50",
                     "--q0", "2.5e6", "--buffer", "5e6"])
        out = capsys.readouterr().out
        assert code == 1
        assert "strongly stable: False" in out

    def test_plot_flag_renders_ascii(self, capsys):
        main(["analyze", *PARAMS, "--plot"])
        out = capsys.readouterr().out
        assert "phase plane" in out
        assert "+---" in out


class TestDesign:
    def test_admitted_config(self, capsys):
        code = main(["design", *PARAMS])
        out = capsys.readouterr().out
        assert code == 0
        assert "ADMITTED" in out
        assert "max flows" in out

    def test_rejected_config(self, capsys):
        code = main(["design", "--capacity", "10e9", "--flows", "50",
                     "--q0", "2.5e6", "--buffer", "5e6"])
        assert code == 1
        assert "REJECTED" in capsys.readouterr().out


class TestSimulate:
    def test_simulate_reports_metrics(self, capsys):
        code = main(["simulate", "--capacity", "1e8", "--flows", "4",
                     "--q0", "1e5", "--buffer", "1e6", "--pm", "0.1",
                     "--ru", "1e5", "--duration", "0.02"])
        out = capsys.readouterr().out
        assert code == 0
        assert "utilization" in out
        assert "Jain fairness" in out


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_missing_required_arg_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--capacity", "1e9"])

"""Unit tests for the batched packet engine building blocks.

``BatchedSwitchKernel`` must reproduce the reference
:class:`~repro.simulation.switch.CoreSwitch` semantics exactly for
deterministic sampling: same queue trajectory, same samples, same
sigma values, same drop/forward counters.  The reference oracle here is
the event-driven switch itself, fed the identical arrival train.
"""


import numpy as np
import pytest

from repro.simulation.engine import Simulator
from repro.simulation.frames import EthernetFrame
from repro.simulation.source import RateRegulator, TrafficSource
from repro.simulation.switch import BatchedSwitchKernel, CoreSwitch


def _make_switch(sim, **overrides):
    kwargs = dict(
        cpid="cp",
        capacity=1e9,
        q0=30_000.0,
        buffer_bits=120_000.0,
        w=2.0,
        pm=0.25,
        fb_bits=6,
        require_association=False,
        positive_only_below_q0=False,
    )
    kwargs.update(overrides)
    return CoreSwitch(sim, **kwargs)


def _drive_reference(switch, times, srcs, frame_bits, duration):
    """Feed the event-driven switch the same train the kernel gets."""
    sim = switch.sim
    for t, s in zip(times, srcs):
        frame = EthernetFrame(src=int(s), dst="sink", size_bits=frame_bits,
                              flow_id=int(s), rrt_cpid=None, created_at=t)
        sim.schedule_at(t, lambda f=frame: switch.receive(f))
    sim.run(until=duration)


def _burst(n, start, gap, src=0):
    times = start + gap * np.arange(n)
    return times, np.full(n, src, dtype=int)


FRAME = 12_000  # bits; service time 12 us at 1 Gb/s


class TestKernelVsReferenceSwitch:
    """Exactness against the event-driven oracle (deterministic pm)."""

    def _compare(self, times, srcs, duration, **overrides):
        ref_sim = Simulator()
        ref = _make_switch(ref_sim, **overrides)
        _drive_reference(ref, times, srcs, FRAME, duration)

        bat_sim = Simulator()
        bat = _make_switch(bat_sim, **overrides)
        kernel = BatchedSwitchKernel(bat, FRAME)
        assoc = np.ones(len(times), dtype=bool)
        kernel.process(0.0, duration, np.asarray(times, float),
                       np.asarray(srcs), assoc)
        return ref, bat

    def test_overload_burst_matches(self):
        # 3 us spacing vs 12 us service: queue builds, sigma goes
        # negative; the buffer is deep enough that nothing drops, so
        # this exercises the vectorized fast path.
        times, srcs = _burst(60, 1e-5, 3e-6)
        ref, bat = self._compare(times, srcs, duration=1e-3,
                                 buffer_bits=200 * FRAME)
        assert bat.stats.samples == ref.stats.samples
        assert bat.stats.bcn_negative == ref.stats.bcn_negative
        assert bat.stats.bcn_positive == ref.stats.bcn_positive
        assert bat.stats.forwarded_frames == ref.stats.forwarded_frames
        assert bat.queue.enqueued_frames == ref.queue.enqueued_frames
        assert bat.queue.dropped_frames == ref.queue.dropped_frames == 0
        np.testing.assert_allclose(
            np.asarray(bat.sigma_history, float),
            np.asarray(ref.sigma_history, float), rtol=1e-12)

    def test_underload_matches(self):
        times, srcs = _burst(40, 1e-5, 20e-6)  # slower than service
        ref, bat = self._compare(times, srcs, duration=1e-3)
        assert bat.stats.forwarded_frames == ref.stats.forwarded_frames
        np.testing.assert_allclose(
            np.asarray(bat.sigma_history, float),
            np.asarray(ref.sigma_history, float), rtol=1e-12)

    def test_drop_window_falls_back_exactly(self):
        # Buffer of 5 frames: the burst overflows and drop-tail engages;
        # the kernel must take the scalar path and still match.
        times, srcs = _burst(80, 1e-5, 2e-6)
        ref, bat = self._compare(times, srcs, duration=1e-3,
                                 buffer_bits=5 * FRAME)
        assert ref.queue.dropped_frames > 0
        assert bat.queue.dropped_frames == ref.queue.dropped_frames
        assert bat.queue.enqueued_frames == ref.queue.enqueued_frames
        assert bat.stats.forwarded_frames == ref.stats.forwarded_frames
        assert bat.stats.samples == ref.stats.samples
        np.testing.assert_allclose(
            np.asarray(bat.sigma_history, float),
            np.asarray(ref.sigma_history, float), rtol=1e-12)

    def test_association_and_q0_gating_match(self):
        times, srcs = _burst(50, 1e-5, 4e-6)
        ref, bat = self._compare(times, srcs, duration=1e-3,
                                 buffer_bits=200 * FRAME,
                                 require_association=True,
                                 positive_only_below_q0=True)
        assert bat.stats.bcn_positive == ref.stats.bcn_positive
        assert bat.stats.bcn_negative == ref.stats.bcn_negative


class TestWindowSplitInvariance:
    """Processing one train as N windows must equal processing it as one."""

    @pytest.mark.parametrize("cut", [1, 7, 29, 59])
    def test_split_any_boundary(self, cut):
        times, srcs = _burst(60, 1e-5, 3e-6)
        assoc = np.ones(60, dtype=bool)

        one = _make_switch(Simulator(), buffer_bits=200 * FRAME)
        k1 = BatchedSwitchKernel(one, FRAME)
        k1.process(0.0, 1e-3, times, srcs, assoc)

        two = _make_switch(Simulator(), buffer_bits=200 * FRAME)
        k2 = BatchedSwitchKernel(two, FRAME)
        t_cut = float(times[cut - 1]) + 1e-9
        k2.process(0.0, t_cut, times[:cut], srcs[:cut], assoc[:cut])
        k2.process(t_cut, 1e-3, times[cut:], srcs[cut:], assoc[cut:])

        assert two.stats.samples == one.stats.samples
        assert two.stats.bcn_negative == one.stats.bcn_negative
        assert two.stats.forwarded_frames == one.stats.forwarded_frames
        assert two.queue.dequeued_frames == one.queue.dequeued_frames
        np.testing.assert_allclose(
            np.asarray(two.sigma_history, float),
            np.asarray(one.sigma_history, float), rtol=1e-9)

    def test_empty_window_between_trains(self):
        times, srcs = _burst(20, 1e-5, 3e-6)
        assoc = np.ones(20, dtype=bool)
        sw = _make_switch(Simulator(), buffer_bits=200 * FRAME)
        k = BatchedSwitchKernel(sw, FRAME)
        k.process(0.0, 2e-4, times, srcs, assoc)
        empty = np.empty(0)
        w = k.process(2e-4, 4e-4, empty, empty.astype(int),
                      empty.astype(bool))
        assert w.committed == 0
        # The backlog keeps draining through an empty window.
        assert sw.stats.forwarded_frames == 20


class TestQueueAt:
    def test_occupancy_probe_matches_hand_count(self):
        # Arrivals every 4 us, service 12 us: at t the queue holds
        # arrivals <= t minus services started <= t.
        times, srcs = _burst(10, 0.0, 4e-6)
        sw = _make_switch(Simulator())
        k = BatchedSwitchKernel(sw, FRAME)
        k.process(0.0, 1e-3, times, srcs, np.ones(10, dtype=bool))
        # At 13 us: arrivals at 0,4,8,12 us (4 of them); services started
        # at 0 and 12 us (the second frame waits for the first).
        q = k.queue_at(np.array([13e-6]))
        assert q[0] == pytest.approx(2 * FRAME)
        # After everything drains the occupancy probe reads zero.
        assert k.queue_at(np.array([0.9e-3]))[0] == 0.0


class TestPauseTruncation:
    def test_pause_crossing_cuts_window(self):
        times, srcs = _burst(60, 1e-5, 2e-6)
        sw = _make_switch(Simulator(), q_sc=4 * FRAME,
                          buffer_bits=1_000 * FRAME)
        k = BatchedSwitchKernel(sw, FRAME, pause_fanout=3)
        w = k.process(0.0, 1e-3, times, srcs, np.ones(60, dtype=bool))
        assert w.pause_at is not None
        assert 0 < w.committed < 60
        # The crossing arrival itself is committed.
        assert w.t_commit == pytest.approx(float(times[w.committed - 1]))
        assert sw.stats.pauses_sent == 3

    def test_pause_rearms_after_duration(self):
        times, srcs = _burst(60, 1e-5, 2e-6)
        sw = _make_switch(Simulator(), q_sc=4 * FRAME,
                          buffer_bits=1_000 * FRAME, pause_duration=30e-6)
        k = BatchedSwitchKernel(sw, FRAME, pause_fanout=1)
        w1 = k.process(0.0, 1e-3, times, srcs, np.ones(60, dtype=bool))
        assert w1.pause_at is not None
        rest = slice(w1.committed, None)
        w2 = k.process(w1.t_commit, 1e-3, times[rest], srcs[rest],
                       np.ones(60 - w1.committed, dtype=bool))
        # Arrivals before the re-arm time cannot trigger a second PAUSE,
        # later ones can.
        if w2.pause_at is not None:
            assert w2.pause_at >= w1.pause_at + 30e-6
        assert sw.stats.pauses_sent >= 1


class TestFrameTrainPlanning:
    def _source(self, rate=1e8, **kw):
        sim = Simulator()
        reg = RateRegulator(gi=4.0, gd=1 / 128, ru=8e6, initial_rate=rate,
                            min_rate=1e6, line_rate=1e9)
        return TrafficSource(sim, address=0, regulator=reg,
                             send=lambda f: None, frame_bits=FRAME, **kw)

    def test_plan_is_arithmetic_from_one_gap(self):
        src = self._source(rate=1.2e8)  # gap = 1e-4 s
        gap = FRAME / 1.2e8
        train = src.plan_train(until=10.5 * gap)
        np.testing.assert_allclose(train, gap * np.arange(1, 11), rtol=1e-12)

    def test_commit_full_then_continue(self):
        src = self._source(rate=1.2e8)
        gap = FRAME / 1.2e8
        train = src.plan_train(until=5.5 * gap)
        src.commit_train(train, len(train))
        assert src.frames_sent == 5
        assert src.bits_sent == 5 * FRAME
        nxt = src.plan_train(until=8.5 * gap)
        assert nxt[0] == pytest.approx(train[-1] + gap)

    def test_commit_partial_resumes_at_cut(self):
        src = self._source(rate=1.2e8)
        gap = FRAME / 1.2e8
        train = src.plan_train(until=9.5 * gap)
        src.commit_train(train, 3)
        assert src.frames_sent == 3
        nxt = src.plan_train(until=9.5 * gap)
        assert nxt[0] == pytest.approx(train[2] + gap)

    def test_commit_none_keeps_first_pending(self):
        src = self._source(rate=1.2e8)
        train = src.plan_train(until=4.5 * FRAME / 1.2e8)
        src.commit_train(train, 0)
        again = src.plan_train(until=4.5 * FRAME / 1.2e8)
        assert again[0] == pytest.approx(train[0])

    def test_finite_flow_truncates_train(self):
        src = self._source(rate=1.2e8, total_bits=3 * FRAME)
        train = src.plan_train(until=1.0)
        assert len(train) == 3

    def test_muted_source_plans_nothing(self):
        src = self._source()
        src.muted = True
        assert src.plan_train(until=1.0).size == 0

    def test_pause_defers_first_emission(self):
        src = self._source(rate=1.2e8)
        src.paused_until = 0.01
        train = src.plan_train(until=0.02)
        assert train[0] >= 0.01

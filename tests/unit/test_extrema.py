"""Unit tests for the paper's extremum formulas (repro.core.extrema)."""

import math

import numpy as np
import pytest

from repro.core.eigen import eigenstructure
from repro.core.extrema import (
    degenerate_extremum_paper,
    extremum_time,
    extremum_x,
    node_extremum_paper,
    spiral_amplitude,
    spiral_extremum_paper,
    spiral_t_star,
)
from repro.core.trajectories import linear_trajectory

FOCUS = eigenstructure(2.0, 1.0)
NODE = eigenstructure(8.0, 1.0)
DEGEN = eigenstructure(4.0, 1.0)


class TestSpiralTStar:
    @pytest.mark.parametrize("x0,y0", [
        (-10.0, 0.001),   # paper's canonical quadrant (x0 y0 < 0 handled below)
        (-10.0, 5.0),
        (-3.0, -4.0),
        (2.0, 6.0),
        (5.0, -1.0),
    ])
    def test_t_star_zeroes_y(self, x0, y0):
        t_star = spiral_t_star(FOCUS, x0, y0)
        traj = linear_trajectory(FOCUS, x0, y0)
        assert t_star >= 0
        y_at = traj.state(t_star)[1]
        scale = max(abs(x0), abs(y0))
        assert abs(y_at) < 1e-9 * scale * max(1.0, FOCUS.beta)

    def test_matches_robust_first_zero_in_canonical_quadrants(self):
        # For starts with x0*y0 >= 0 the printed branch gives the first
        # zero directly.
        for x0, y0 in [(2.0, 6.0), (-3.0, -4.0)]:
            t_paper = spiral_t_star(FOCUS, x0, y0)
            t_robust = extremum_time(FOCUS, x0, y0)
            assert t_paper == pytest.approx(t_robust, rel=1e-9)

    def test_rejects_zero_x0(self):
        with pytest.raises(ValueError):
            spiral_t_star(FOCUS, 0.0, 1.0)

    def test_rejects_node(self):
        with pytest.raises(ValueError):
            spiral_t_star(NODE, 1.0, 1.0)


class TestSpiralExtremum:
    def test_amplitude_formula(self):
        a, b = FOCUS.alpha, FOCUS.beta
        x0, y0 = -4.0, 3.0
        expected = math.sqrt((a * a + b * b) * x0 * x0 - 2 * a * x0 * y0
                             + y0 * y0) / b
        assert spiral_amplitude(FOCUS, x0, y0) == pytest.approx(expected)

    def test_amplitude_rejects_node(self):
        with pytest.raises(ValueError):
            spiral_amplitude(NODE, 1.0, 1.0)

    @pytest.mark.parametrize("x0,y0", [(2.0, 6.0), (-3.0, -4.0), (-1.0, 2.0)])
    def test_paper_extremum_matches_robust(self, x0, y0):
        paper = spiral_extremum_paper(FOCUS, x0, y0)
        robust = extremum_x(FOCUS, x0, y0)
        assert paper == pytest.approx(robust, rel=1e-9)

    def test_sign_rule(self):
        assert spiral_extremum_paper(FOCUS, -1.0, 2.0) > 0  # y0 > 0: max
        assert spiral_extremum_paper(FOCUS, 1.0, -2.0) < 0  # y0 < 0: min

    def test_rejects_zero_y0(self):
        with pytest.raises(ValueError):
            spiral_extremum_paper(FOCUS, 1.0, 0.0)


class TestGenericHelpers:
    def test_extremum_x_is_true_extremum_numerically(self):
        for eig, x0, y0 in [(FOCUS, -4.0, 3.0), (NODE, -6.0, 45.0),
                            (DEGEN, -4.0, 20.0)]:
            value = extremum_x(eig, x0, y0)
            traj = linear_trajectory(eig, x0, y0)
            t_star = extremum_time(eig, x0, y0)
            ts = np.linspace(max(0.0, t_star * 0.5), t_star * 1.5, 2001)
            xs = traj.states(ts)[:, 0]
            assert value == pytest.approx(
                float(xs.max() if y0 > 0 else xs.min()), rel=1e-6)

    def test_extremum_none_for_monotone(self):
        l1, l2 = NODE.real_eigenvalues
        assert extremum_x(NODE, 1.0, l2 * 1.0) is None
        assert extremum_time(NODE, 1.0, l2 * 1.0) is None

    def test_node_and_degenerate_paper_wrappers(self):
        assert node_extremum_paper(NODE, -6.0, 45.0) == pytest.approx(
            extremum_x(NODE, -6.0, 45.0), rel=1e-9)
        assert degenerate_extremum_paper(DEGEN, -4.0, 20.0) == pytest.approx(
            extremum_x(DEGEN, -4.0, 20.0), rel=1e-9)

"""Unit tests for the experiment framework itself (base + presets)."""

import numpy as np
import pytest

from repro.core.phase_plane import PaperCase, classify_case
from repro.experiments.base import ExperimentResult, get_experiment, register
from repro.experiments.presets import (
    CASE1,
    CASE1_SLOW,
    CASE2,
    CASE3,
    CASE4,
    CASE5,
    PAPER_PHYSICAL,
    scale_free,
)


class TestPresets:
    @pytest.mark.parametrize("preset,expected", [
        (CASE1, PaperCase.CASE1),
        (CASE2, PaperCase.CASE2),
        (CASE3, PaperCase.CASE3),
        (CASE4, PaperCase.CASE4),
        (CASE5, PaperCase.CASE5),
        (CASE1_SLOW, PaperCase.CASE1),
    ])
    def test_presets_classify_as_named(self, preset, expected):
        assert classify_case(preset) is expected

    def test_scale_free_threshold_is_four(self):
        p = scale_free(2.0, 0.02)
        assert p.focus_threshold == pytest.approx(4.0)

    def test_paper_physical_is_the_worked_example(self):
        assert PAPER_PHYSICAL.capacity == 10e9
        assert PAPER_PHYSICAL.n_flows == 50


class TestExperimentResult:
    def make(self, **overrides):
        base = dict(
            experiment_id="demo",
            title="A demo",
            table_headers=["k", "v"],
            table_rows=[["alpha", 1.5]],
            verdicts={"holds": True},
            notes=["a note"],
        )
        base.update(overrides)
        return ExperimentResult(**base)

    def test_passed_reflects_verdicts(self):
        assert self.make().passed
        failing = self.make(verdicts={"holds": True, "breaks": False})
        assert not failing.passed
        assert failing.failing_verdicts() == ["breaks"]

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "demo" in text
        assert "alpha" in text
        assert "[PASS] holds" in text
        assert "note: a note" in text

    def test_render_marks_failures(self):
        text = self.make(verdicts={"breaks": False}).render()
        assert "[FAIL] breaks" in text

    def test_save_series_pads_ragged_columns(self, tmp_path):
        result = self.make(series={
            "long": np.arange(5.0),
            "short": np.arange(2.0),
        })
        path = result.save_series(tmp_path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 6  # header + 5 rows
        assert "nan" in lines[-1]

    def test_save_series_none_without_series(self, tmp_path):
        assert self.make().save_series(tmp_path) is None


class TestRegistry:
    def test_register_and_lookup(self):
        @register("zz-test-experiment")
        def run(**kwargs):
            return ExperimentResult(experiment_id="zz", title="t")

        assert get_experiment("zz-test-experiment") is run

    def test_unknown_id_raises_with_catalog(self):
        with pytest.raises(KeyError) as err:
            get_experiment("nope")
        assert "known" in str(err.value)

"""Fixture: every statement here violates the ``rng`` check."""

import random

import numpy as np
from numpy.random import default_rng
from random import randint  # noqa: F401  (import itself is the violation)


def draws():
    a = np.random.rand(3)
    b = random.random()
    np.random.seed(0)
    c = default_rng()
    d = np.random.default_rng()
    e = random.Random()
    return a, b, c, d, e

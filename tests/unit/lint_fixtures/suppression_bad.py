"""Fixture: defective suppressions the meta-check must flag."""

import time


def stamps():
    a = time.time()  # repro-lint: disable=wall-clock
    b = 1  # repro-lint: disable=no-such-check -- the check name is a typo
    c = 2  # repro-lint: disable=rng -- nothing here draws randomness
    inert = 'text mentioning # repro-lint: disable=rng stays inert'
    return a, b, c, inert

"""Fixture: wall-clock and nondeterminism sites the check must flag.

Fixture files sit outside the ``repro`` package, so the hot-package
timer rules apply in full.
"""

import time
from datetime import datetime
from time import perf_counter


def stamps():
    a = time.time()
    b = datetime.now()
    c = time.perf_counter()
    d = perf_counter()
    total = 0
    for item in {3, 1, 2}:
        total += item
    return a, b, c, d, total

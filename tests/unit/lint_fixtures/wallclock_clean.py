"""Fixture: timer usage the ``wall-clock`` check must accept."""

import time


def timed(xs):
    started = time.perf_counter()  # repro-lint: disable=wall-clock -- fixture: instrumented span
    total = 0
    for x in sorted({1, 2, 3}):
        total += x
    for x in xs:
        total += x
    elapsed = time.perf_counter() - started  # repro-lint: disable=wall-clock -- fixture: instrumented span
    return total, elapsed

"""Fixture: seeded-generator discipline the ``rng`` check must accept."""

import random

import numpy as np
from numpy.random import default_rng


def draws(seed):
    rng = np.random.default_rng(seed)
    alt = default_rng(np.random.SeedSequence(seed))
    pr = random.Random(seed)
    return rng.random(), alt.random(), pr.random()

"""Unit tests for the parameter-sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import elasticity, sensitivity_table
from repro.core.parameters import paper_example_params


PARAMS = paper_example_params()


class TestElasticity:
    def test_buffer_is_linear_in_q0(self):
        assert elasticity(PARAMS, "required_buffer", "q0") == pytest.approx(
            1.0, abs=1e-3)

    def test_buffer_independent_of_w_and_pm(self):
        # the paper's Remarks: w and pm do not move the criterion
        assert elasticity(PARAMS, "required_buffer", "w") == pytest.approx(
            0.0, abs=1e-9)
        assert elasticity(PARAMS, "required_buffer", "pm") == pytest.approx(
            0.0, abs=1e-9)

    def test_buffer_sqrt_scaling_in_gains(self):
        # bound = q0 (1 + s), s = sqrt(RuGiN/GdC): elasticity w.r.t.
        # any gain inside the radical is 0.5 * s/(1+s)
        import math

        n = PARAMS.normalized()
        s = math.sqrt(n.a / (n.b * n.capacity))
        expected = 0.5 * s / (1.0 + s)
        for knob in ("n_flows", "gi", "ru"):
            assert elasticity(PARAMS, "required_buffer", knob) == (
                pytest.approx(expected, abs=5e-3))
        assert elasticity(PARAMS, "required_buffer", "gd") == pytest.approx(
            -expected, abs=5e-3)

    def test_settling_time_responds_to_w_and_pm_only_linearly(self):
        assert elasticity(PARAMS, "settling_time", "w") == pytest.approx(
            -1.0, abs=0.02)
        assert elasticity(PARAMS, "settling_time", "pm") == pytest.approx(
            1.0, abs=0.02)

    def test_queue_peak_tracks_buffer_elasticities(self):
        for knob in ("q0", "gi", "gd"):
            bound = elasticity(PARAMS, "required_buffer", knob)
            peak = elasticity(PARAMS, "queue_peak", knob)
            assert peak == pytest.approx(bound, abs=0.02)

    def test_custom_metric_callable(self):
        value = elasticity(PARAMS, lambda p: p.q0 ** 2, "q0")
        assert value == pytest.approx(2.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(KeyError):
            elasticity(PARAMS, "bogus_metric", "q0")
        with pytest.raises(ValueError):
            elasticity(PARAMS.with_(n_flows=1), "required_buffer", "n_flows")


class TestTable:
    def test_selected_rows_and_columns(self):
        table = sensitivity_table(
            PARAMS, metrics=["required_buffer"], parameters=["q0", "w"])
        assert set(table) == {"required_buffer"}
        assert set(table["required_buffer"]) == {"q0", "w"}

"""Unit tests for the dumbbell and multi-hop orchestrators."""

import numpy as np
import pytest

from repro.core.parameters import BCNParams
from repro.simulation.multihop import MultiHopNetwork, PortConfig
from repro.simulation.network import BCNNetworkSimulator
from repro.topology.graphs import dumbbell, fat_tree
from repro.workloads.flows import FlowSpec
from repro.workloads.generators import homogeneous, incast


def small_params(**overrides):
    config = dict(capacity=1e8, n_flows=4, q0=1e5, buffer_size=1e6,
                  pm=0.1, ru=1e5)
    config.update(overrides)
    return BCNParams(**config)


class TestDumbbell:
    def test_run_produces_consistent_result(self):
        net = BCNNetworkSimulator(small_params(), frame_bits=8000)
        res = net.run(0.1)
        assert res.duration == 0.1
        assert res.t.shape == res.queue.shape
        assert np.all(res.queue >= 0)
        assert np.all(res.queue <= 1e6)
        assert res.per_source_rate.shape == (4,)
        assert 0 <= res.utilization() <= 1.001
        assert 0 < res.jain_fairness() <= 1.0

    def test_overload_start_engages_bcn(self):
        net = BCNNetworkSimulator(small_params(), frame_bits=8000)
        res = net.run(0.1)
        assert res.bcn_negative > 0
        assert res.queue_peak() > 0

    def test_conservation_at_bottleneck(self):
        net = BCNNetworkSimulator(small_params(), frame_bits=8000)
        res = net.run(0.05)
        queue = net.switch.queue
        assert queue.conservation_holds()
        sent = sum(s.frames_sent for s in net.sources)
        in_flight_or_resident = sent - queue.dropped_frames - res.forwarded_frames
        assert in_flight_or_resident >= 0

    def test_delivered_bits_bounded_by_capacity(self):
        net = BCNNetworkSimulator(small_params(), frame_bits=8000)
        res = net.run(0.1)
        assert res.delivered_bits <= 1e8 * 0.1 * 1.01

    def test_rejects_nonpositive_duration(self):
        net = BCNNetworkSimulator(small_params())
        with pytest.raises(ValueError):
            net.run(0.0)

    def test_queue_mean_and_std_settle_window(self):
        net = BCNNetworkSimulator(small_params(), frame_bits=8000)
        res = net.run(0.1)
        assert res.queue_mean(settle=0.05) >= 0
        assert res.queue_std(settle=0.05) >= 0

    def test_regulator_mode_plumbed(self):
        net = BCNNetworkSimulator(small_params(), regulator_mode="fluid-exact")
        assert all(s.regulator.mode == "fluid-exact" for s in net.sources)


class TestMultiHop:
    def config(self):
        return PortConfig(q0=5e4, buffer_bits=5e5, pm=0.1)

    def test_incast_congests_last_hop(self):
        g = fat_tree(4, capacity=1e8)
        from repro.topology.graphs import hosts

        hs = hosts(g)
        flows = incast(hs[4:8], hs[0], response_bits=5e5, demand=1e8)
        net = MultiHopNetwork(g, flows, self.config(), frame_bits=8000)
        res = net.run(0.2)
        hottest = res.hottest_port()
        assert hottest[1] == hs[0]  # the client's last hop
        assert res.bcn_negative > 0

    def test_all_flows_deliver_on_uncongested_paths(self):
        g = dumbbell(2, capacity=1e8)
        flows = [
            FlowSpec(flow_id=0, src="h0", dst="sink", demand=1e7),
            FlowSpec(flow_id=1, src="h1", dst="sink", demand=1e7),
        ]
        net = MultiHopNetwork(g, flows, self.config(), frame_bits=8000)
        res = net.run(0.2)
        for fid in (0, 1):
            assert res.per_flow_delivered_bits[fid] > 0
        assert res.dropped_frames == 0

    def test_routes_filled_by_ecmp(self):
        g = fat_tree(4, capacity=1e8)
        from repro.topology.graphs import hosts

        hs = hosts(g)
        flows = homogeneous(hs[4:6], hs[0], demand=1e7)
        net = MultiHopNetwork(g, flows, self.config())
        for spec in flows:
            route = net.routes[spec.flow_id]
            assert route[0] == spec.src
            assert route[-1] == spec.dst

    def test_pinned_route_respected(self):
        g = dumbbell(2, capacity=1e8)
        route = ("h0", "edge0", "core0", "sink")
        flows = [FlowSpec(flow_id=0, src="h0", dst="sink", demand=1e7,
                          route=route)]
        net = MultiHopNetwork(g, flows, self.config())
        assert net.routes[0] == list(route)

    def test_start_times_respected(self):
        g = dumbbell(2, capacity=1e8)
        flows = [
            FlowSpec(flow_id=0, src="h0", dst="sink", demand=1e7),
            FlowSpec(flow_id=1, src="h1", dst="sink", demand=1e7,
                     start_time=0.15),
        ]
        net = MultiHopNetwork(g, flows, self.config(), frame_bits=8000)
        res = net.run(0.1)  # before flow 1 starts
        assert res.per_flow_delivered_bits[1] == 0.0
        assert res.per_flow_delivered_bits[0] > 0.0

    def test_requires_flows(self):
        with pytest.raises(ValueError):
            MultiHopNetwork(dumbbell(2), [], self.config())

    def test_jain_fairness_range(self):
        g = dumbbell(3, capacity=1e8)
        flows = homogeneous(["h0", "h1", "h2"], "sink", demand=5e7)
        net = MultiHopNetwork(g, flows, self.config(), frame_bits=8000)
        res = net.run(0.2)
        assert 0 < res.jain_fairness() <= 1.0


class TestHopLevelPause:
    def test_service_pause_defers_forwarding(self):
        from repro.simulation.engine import Simulator
        from repro.simulation.frames import EthernetFrame, PauseFrame
        from repro.simulation.switch import CoreSwitch

        sim = Simulator()
        out = []
        switch = CoreSwitch(sim, cpid="p", capacity=12000.0, q0=60000.0,
                            buffer_bits=600000.0,
                            forward=lambda f: out.append(sim.now))
        switch.receive_pause(PauseFrame(sa="down", duration=5.0))
        switch.receive(EthernetFrame(src=0, dst="sink", size_bits=12000,
                                     flow_id=0))
        sim.run(until=4.0)
        assert out == []  # still paused
        sim.run(until=7.0)
        assert out == [pytest.approx(6.0)]  # resumes at 5.0, serves 1s

    def test_victim_flow_starved_by_pause_rollback(self):
        """The Section I failure mode: PAUSE on a congested port rolls
        back and stalls an innocent flow sharing the upstream link."""
        from repro.experiments.m1_victim_flow import _run_config

        pause_only = _run_config(enable_bcn=False, enable_pause=True)
        bcn = _run_config(enable_bcn=True, enable_pause=False)
        assert pause_only.pauses > 0
        assert bcn.flow_throughput(3) > 2.0 * pause_only.flow_throughput(3)

"""Unit tests for repro.core.switching."""

import math

import pytest

from repro.core.eigen import Region
from repro.core.switching import SwitchingLine


LINE = SwitchingLine(k=2.0)


class TestGeometry:
    def test_sigma_is_negated_switching_function(self):
        assert LINE.sigma(1.0, 1.0) == -LINE.value(1.0, 1.0) == -3.0

    def test_region_partition(self):
        assert LINE.region(-5.0, 0.0) is Region.INCREASE  # sigma > 0
        assert LINE.region(5.0, 0.0) is Region.DECREASE
        assert LINE.region(-2.0, 1.0) is None  # exactly on the line

    def test_region_tolerance(self):
        assert LINE.region(1e-15, 0.0, tol=1e-12) is None
        assert LINE.region(1e-10, 0.0, tol=1e-12) is Region.DECREASE

    def test_slope(self):
        assert LINE.slope() == -0.5

    def test_points_on_line(self):
        x, y = LINE.point_at_y(3.0)
        assert LINE.value(x, y) == pytest.approx(0.0)
        x, y = LINE.point_at_x(4.0)
        assert LINE.value(x, y) == pytest.approx(0.0)

    def test_distance(self):
        # distance from (1, 0) to x + 2y = 0 is 1/sqrt(5)
        assert LINE.distance(1.0, 0.0) == pytest.approx(1.0 / math.sqrt(5.0))
        assert LINE.distance(-2.0, 1.0) == pytest.approx(0.0)

    def test_projection_lands_on_line(self):
        px, py = LINE.project(3.0, 4.0)
        assert LINE.value(px, py) == pytest.approx(0.0, abs=1e-12)
        # projection is orthogonal: displacement parallel to (1, k)
        dx, dy = 3.0 - px, 4.0 - py
        assert dx * (-LINE.k) + dy * 1.0 == pytest.approx(0.0, abs=1e-12)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SwitchingLine(0.0)
        with pytest.raises(ValueError):
            SwitchingLine(-1.0)
        with pytest.raises(ValueError):
            SwitchingLine(math.inf)


class TestFlowResolution:
    def test_crossing_direction(self):
        # On the line d(x+ky)/dt = y: upward crossings enter DECREASE.
        assert LINE.crossing_direction(2.0) is Region.DECREASE
        assert LINE.crossing_direction(-2.0) is Region.INCREASE
        with pytest.raises(ValueError):
            LINE.crossing_direction(0.0)

    def test_region_or_heading_off_line(self):
        assert LINE.region_or_heading(-5.0, 0.0) is Region.INCREASE
        assert LINE.region_or_heading(5.0, 0.0) is Region.DECREASE

    def test_region_or_heading_near_line_uses_flow(self):
        # A point microscopically on the wrong side of the line (as a
        # crossing solver produces) resolves by heading, not noise sign.
        y = 1000.0
        x = -LINE.k * y + 1e-9  # relative error ~5e-13: below rel tol
        assert LINE.region_or_heading(x, y) is Region.DECREASE
        x = -LINE.k * (-y) - 1e-9
        assert LINE.region_or_heading(x, -y) is Region.INCREASE

    def test_origin_defaults_to_increase(self):
        assert LINE.region_or_heading(0.0, 0.0) is Region.INCREASE

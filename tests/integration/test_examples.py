"""Integration: the example scripts run end-to-end.

Each example is executed in-process (runpy) with its ``main()`` patched
horizon where needed; stdout must contain the landmarks a reader is
promised.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    argv = sys.argv
    sys.argv = [name]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = argv
    return buffer.getvalue()


def test_quickstart_reports_stability_and_buffer():
    out = run_example("quickstart.py")
    assert "strongly stable: True" in out
    assert "13.8" in out  # Theorem 1 requirement
    assert "phase plane" in out


def test_buffer_sizing_tables():
    out = run_example("buffer_sizing.py")
    assert "Buffer requirement by fabric" in out
    assert "Gain trade-off" in out
    assert "100G" in out


@pytest.mark.slow
def test_incast_fattree():
    out = run_example("incast_fattree.py")
    assert "predicted congestion point" in out
    assert "hottest port" in out
    assert "fairness across servers" in out


@pytest.mark.slow
def test_parallel_io_dcell():
    out = run_example("parallel_io_dcell.py")
    assert "stripes >=95% delivered" in out
    assert "hottest ports" in out


@pytest.mark.slow
def test_scheme_shootout():
    out = run_example("scheme_shootout.py")
    for scheme in ("bcn", "qcn", "e2cm", "fera", "aimd"):
        assert scheme in out
    assert "Theorem 1" in out


def test_limit_cycle_tour():
    out = run_example("limit_cycle_tour.py")
    assert "closed orbit" in out
    assert "quantized feedback keeps the real system hunting" in out


@pytest.mark.slow
def test_trace_driven_fabric():
    out = run_example("trace_driven_fabric.py")
    assert "FCT p50" in out
    assert "hottest port" in out
    assert "traced port sample" in out


def test_fairness_dynamics():
    out = run_example("fairness_dynamics.py")
    assert "Jain index" in out
    assert "Chiu-Jain plane" in out
    assert "control arm" in out


@pytest.mark.slow
def test_delay_study():
    out = run_example("delay_study.py")
    assert "Nyquist margin" in out
    assert "critical delay" in out
    assert "limit cycle" in out


def test_phase_portrait_gallery():
    out = run_example("phase_portrait_gallery.py")
    for case in ("case1", "case2", "case3", "case4", "case5"):
        assert case in out

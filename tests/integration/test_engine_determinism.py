"""Determinism and cross-engine agreement of the packet engines.

Two guarantees, per ISSUE PR 4:

* **Determinism** — for either engine, the same parameters and seed
  produce a bit-identical :class:`SimulationResult` (series and
  counters), run to run within a process.
* **Agreement** — the batched engine tracks the reference engine within
  a documented tolerance on a fixed dumbbell scenario.  With
  deterministic (counter-based) ``pm`` sampling the two engines see the
  same sampling pattern and agree tightly on aggregate statistics; the
  trajectories themselves are compared in shape, not pointwise, because
  message timing may lag by up to one control quantum.
"""

import numpy as np
import pytest

from repro.core.parameters import BCNParams
from repro.simulation.network import PACKET_ENGINES, BCNNetworkSimulator


def _params():
    return BCNParams(
        capacity=1e9,
        n_flows=5,
        q0=1e6,
        buffer_size=8e6,
        w=2.0,
        pm=0.1,
        gi=4.0,
        gd=1 / 128,
        ru=8e6,
    )


def _run(engine, *, duration=0.02, random_sampling=False, **kw):
    net = BCNNetworkSimulator(
        _params(),
        frame_bits=12_000,
        engine=engine,
        random_sampling=random_sampling,
        **kw,
    )
    return net.run(duration)


@pytest.mark.parametrize("engine", PACKET_ENGINES)
@pytest.mark.parametrize("random_sampling", [False, True])
def test_engine_is_bit_deterministic(engine, random_sampling):
    a = _run(engine, random_sampling=random_sampling)
    b = _run(engine, random_sampling=random_sampling)
    np.testing.assert_array_equal(a.t, b.t)
    np.testing.assert_array_equal(a.queue, b.queue)
    np.testing.assert_array_equal(a.rate_t, b.rate_t)
    np.testing.assert_array_equal(a.rate_total, b.rate_total)
    np.testing.assert_array_equal(a.per_source_rate, b.per_source_rate)
    assert a.dropped_frames == b.dropped_frames
    assert a.forwarded_frames == b.forwarded_frames
    assert a.bcn_negative == b.bcn_negative
    assert a.bcn_positive == b.bcn_positive
    assert a.pauses == b.pauses
    assert a.delivered_bits == b.delivered_bits


@pytest.mark.parametrize("random_sampling", [False, True])
def test_compiled_matches_batched_bitwise(random_sampling):
    """``engine="compiled"`` replays the batched engine's exact
    arithmetic (and its RNG draw discipline), so the results match bit
    for bit on every backend tier — the numpy tier simply delegates."""
    a = _run("batched", random_sampling=random_sampling)
    b = _run("compiled", random_sampling=random_sampling)
    np.testing.assert_array_equal(a.t, b.t)
    np.testing.assert_array_equal(a.queue, b.queue)
    np.testing.assert_array_equal(a.rate_total, b.rate_total)
    np.testing.assert_array_equal(a.per_source_rate, b.per_source_rate)
    assert a.dropped_frames == b.dropped_frames
    assert a.forwarded_frames == b.forwarded_frames
    assert a.bcn_negative == b.bcn_negative
    assert a.bcn_positive == b.bcn_positive
    assert a.pauses == b.pauses
    assert a.delivered_bits == b.delivered_bits


class TestReferenceVsBatched:
    """Fixed-scenario agreement, deterministic sampling.

    Tolerances (documented): utilisation within 2 percentage points,
    queue mean within 15%, queue peak within 25%, message counts within
    20%.  These bound the one-quantum control lag of the batched
    engine; see ``BCNNetworkSimulator`` docs.
    """

    @pytest.fixture(scope="class")
    def runs(self):
        ref = _run("reference", duration=0.04)
        bat = _run("batched", duration=0.04)
        return ref, bat

    def test_utilization_agrees(self, runs):
        ref, bat = runs
        assert bat.utilization() == pytest.approx(ref.utilization(), abs=0.02)

    def test_queue_statistics_agree(self, runs):
        ref, bat = runs
        assert bat.queue_mean() == pytest.approx(ref.queue_mean(), rel=0.15)
        assert bat.queue_peak() == pytest.approx(ref.queue_peak(), rel=0.25)

    def test_control_plane_volume_agrees(self, runs):
        ref, bat = runs
        ref_msgs = ref.bcn_negative + ref.bcn_positive
        bat_msgs = bat.bcn_negative + bat.bcn_positive
        assert bat_msgs == pytest.approx(ref_msgs, rel=0.2)

    def test_no_unexpected_drops(self, runs):
        ref, bat = runs
        # Same buffer, same initial overshoot: drop counts track.
        assert abs(bat.dropped_frames - ref.dropped_frames) <= max(
            5, 0.2 * max(ref.dropped_frames, 1)
        )

    def test_recorder_grids_identical(self, runs):
        ref, bat = runs
        # Both engines sample the queue on the same deterministic grid.
        np.testing.assert_allclose(bat.t, ref.t, rtol=0, atol=1e-12)


class TestScenarioDeterminism:
    """Scenario runs and sweeps are reproducible, per ISSUE PR 6.

    * the same preset + seed produces bit-identical series, counters and
      per-flow FCTs, run to run, on either engine;
    * different seeds produce genuinely different event schedules for
      the randomised presets (the seed actually reaches the generators);
    * the parallel runner's pooled path returns records identical to the
      serial path, FCT distributions included.
    """

    @pytest.mark.parametrize("engine", PACKET_ENGINES)
    def test_scenario_rerun_is_bit_identical(self, engine):
        from repro.scenarios import get_preset, run_scenario

        a = run_scenario(get_preset("churn-heavy", seed=3), engine=engine)
        b = run_scenario(get_preset("churn-heavy", seed=3), engine=engine)
        np.testing.assert_array_equal(a.sim.t, b.sim.t)
        np.testing.assert_array_equal(a.sim.queue, b.sim.queue)
        assert a.sim.delivered_bits == b.sim.delivered_bits
        assert a.sim.pauses == b.sim.pauses
        assert a.sim.dropped_frames == b.sim.dropped_frames
        assert a.fcts == b.fcts
        assert a.injected_bits == b.injected_bits

    def test_seed_reaches_the_event_schedule(self):
        from repro.scenarios import get_preset

        plans = {get_preset("churn-heavy", seed=s).events for s in range(4)}
        assert len(plans) == 4

    def test_per_flow_streams_are_independent_of_population(self):
        """Seeding discipline: flow i's plan does not depend on how
        many other flows exist (per-flow streams keyed ``seed:i``)."""
        from repro.workloads import poisson_short_flows

        few = poisson_short_flows(
            ["h0", "h1"], "sink", arrival_rate=2000.0, demand=1e8,
            size_bits=120_000, horizon=0.02, seed=7)
        again = poisson_short_flows(
            ["h0", "h1"], "sink", arrival_rate=2000.0, demand=1e8,
            size_bits=120_000, horizon=0.02, seed=7)
        assert [(f.src, f.start_time) for f in few] == \
            [(f.src, f.start_time) for f in again]
        other = poisson_short_flows(
            ["h0", "h1"], "sink", arrival_rate=2000.0, demand=1e8,
            size_bits=120_000, horizon=0.02, seed=8)
        assert [f.start_time for f in few] != [f.start_time for f in other]

    @pytest.mark.parametrize("engine", PACKET_ENGINES)
    def test_serial_and_pooled_sweep_records_identical(self, engine):
        from repro.scenarios import run_scenario_sweep

        serial = run_scenario_sweep("dc-baseline", seeds=range(3),
                                    engine=engine, workers=1)
        pooled = run_scenario_sweep("dc-baseline", seeds=range(3),
                                    engine=engine, workers=2)
        assert len(serial.records) == len(pooled.records) == 3
        for rec_s, rec_p in zip(serial.records, pooled.records):
            assert rec_s == rec_p  # fcts lists compare exactly


def test_fluid_matched_mode_agrees_closely():
    """In the validation configuration (fluid-exact regulator, raw
    sigma, ungated positive feedback, fluid-calibrated gains) the
    batched engine reproduces the reference queue trajectory to a few
    percent nrmse."""
    from repro.analysis.validation import compare_series
    from repro.experiments.v2_fluid_vs_packet import validation_params

    kw = dict(
        frame_bits=1500,
        regulator_mode="fluid-exact",
        fb_bits=None,
        require_association=False,
        positive_only_below_q0=False,
        random_sampling=True,
        enable_pause=False,
    )
    params = validation_params()
    ref = BCNNetworkSimulator(params, engine="reference", **kw).run(0.1)
    bat = BCNNetworkSimulator(params, engine="batched", **kw).run(0.1)
    report = compare_series(ref.t, ref.queue, bat.t, bat.queue,
                            reference_level=params.q0)
    assert report.nrmse < 0.15
    assert report.mean_ratio == pytest.approx(1.0, abs=0.1)

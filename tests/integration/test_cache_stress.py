"""Stress tests: ResultCache under concurrent multi-process writers.

The job server shares one cache directory across server processes, CLI
runs, and pool workers.  These tests hammer the two mechanisms that
make that safe — atomic ``os.replace`` stores and ``O_EXCL`` claim
files — with real concurrent processes:

* racing same-key writers never corrupt an entry (readers only ever
  see a miss or a complete value);
* N processes racing :meth:`ResultCache.try_claim` elect exactly one
  owner;
* a claim left behind by a dead process is stolen, a live owner's is
  respected.
"""

import json
import multiprocessing
import os
import subprocess
import sys

from repro.runner.cache import ResultCache

CTX = multiprocessing.get_context("fork")

EXPERIMENT = "stress.entry"
PARAMS = {"key": "shared"}
VALUE = {"payload": list(range(256)), "digest": "a" * 64}


def _hammer_puts(directory, rounds):
    cache = ResultCache(directory, version="stress")
    for _ in range(rounds):
        cache.put(EXPERIMENT, PARAMS, VALUE)


def _race_claim(directory, barrier, queue):
    cache = ResultCache(directory, version="stress")
    barrier.wait(timeout=30)
    queue.put((os.getpid(), cache.try_claim(EXPERIMENT, PARAMS)))


def _dead_pid():
    """A pid guaranteed to belong to no live process (already exited)."""
    out = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True, text=True, check=True)
    return int(out.stdout)


def test_racing_same_key_writers_never_corrupt(tmp_path):
    writers = [CTX.Process(target=_hammer_puts, args=(tmp_path, 40))
               for _ in range(8)]
    for proc in writers:
        proc.start()
    # read continuously while the writers race: every observation must
    # be either a clean miss or the complete value, never a torn pickle
    reader = ResultCache(tmp_path, version="stress")
    missing = object()
    observations = 0
    while any(proc.is_alive() for proc in writers) or observations < 50:
        value = reader.get(EXPERIMENT, PARAMS, missing)
        assert value is missing or value == VALUE
        observations += 1
        if observations > 100_000:  # pragma: no cover - safety valve
            break
    for proc in writers:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    assert reader.stats.corrupt == 0
    assert reader.get(EXPERIMENT, PARAMS) == VALUE


def test_racing_distinct_key_writers_all_land(tmp_path):
    def hammer(seed):
        cache = ResultCache(tmp_path, version="stress")
        for i in range(20):
            cache.put(EXPERIMENT, {"writer": seed, "i": i}, {"v": seed * i})

    writers = [CTX.Process(target=hammer, args=(seed,)) for seed in range(6)]
    for proc in writers:
        proc.start()
    for proc in writers:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    reader = ResultCache(tmp_path, version="stress")
    assert reader.size(EXPERIMENT) == 6 * 20
    for seed in range(6):
        for i in range(20):
            assert reader.get(EXPERIMENT, {"writer": seed, "i": i}) == \
                {"v": seed * i}
    assert reader.stats.corrupt == 0


def test_exactly_one_claim_winner_across_processes(tmp_path):
    n = 8
    barrier = CTX.Barrier(n)
    queue = CTX.Queue()
    racers = [CTX.Process(target=_race_claim, args=(tmp_path, barrier, queue))
              for _ in range(n)]
    for proc in racers:
        proc.start()
    outcomes = [queue.get(timeout=30) for _ in range(n)]
    for proc in racers:
        proc.join(timeout=30)
        assert proc.exitcode == 0
    winners = [pid for pid, won in outcomes if won]
    assert len(winners) == 1, outcomes
    # the claim file records the winner's pid
    cache = ResultCache(tmp_path, version="stress")
    recorded = int(cache.claim_path(EXPERIMENT, PARAMS).read_text())
    assert recorded == winners[0]


def test_stale_claim_from_dead_process_is_stolen(tmp_path):
    cache = ResultCache(tmp_path, version="stress")
    claim = cache.claim_path(EXPERIMENT, PARAMS)
    claim.parent.mkdir(parents=True, exist_ok=True)
    claim.write_text(str(_dead_pid()))
    assert cache.claimed(EXPERIMENT, PARAMS)
    assert cache.try_claim(EXPERIMENT, PARAMS)  # stolen
    assert int(claim.read_text()) == os.getpid()
    cache.release_claim(EXPERIMENT, PARAMS)
    assert not cache.claimed(EXPERIMENT, PARAMS)


def test_live_claim_is_respected_and_garbage_claim_is_stolen(tmp_path):
    cache = ResultCache(tmp_path, version="stress")
    assert cache.try_claim(EXPERIMENT, PARAMS)
    # a second caller (same live pid counts as alive) must lose
    other = ResultCache(tmp_path, version="stress")
    assert not other.try_claim(EXPERIMENT, PARAMS)
    cache.release_claim(EXPERIMENT, PARAMS)
    # unparsable owner -> treated as dead, claim stolen
    claim = cache.claim_path(EXPERIMENT, PARAMS)
    claim.write_text("not-a-pid")
    assert other.try_claim(EXPERIMENT, PARAMS)
    other.release_claim(EXPERIMENT, PARAMS)


def test_claim_context_manager_releases_after_put(tmp_path):
    cache = ResultCache(tmp_path, version="stress")
    with cache.claim(EXPERIMENT, PARAMS) as owned:
        assert owned
        cache.put(EXPERIMENT, PARAMS, VALUE)
        assert cache.claimed(EXPERIMENT, PARAMS)
    assert not cache.claimed(EXPERIMENT, PARAMS)
    assert cache.get(EXPERIMENT, PARAMS) == VALUE
    # losing the claim does not release the winner's marker
    assert cache.try_claim(EXPERIMENT, PARAMS)
    with cache.claim(EXPERIMENT, PARAMS) as owned:
        assert not owned
    assert cache.claimed(EXPERIMENT, PARAMS)
    cache.release_claim(EXPERIMENT, PARAMS)


def test_corrupt_entry_is_dropped_not_raised(tmp_path):
    cache = ResultCache(tmp_path, version="stress")
    path = cache.put(EXPERIMENT, PARAMS, VALUE)
    path.write_bytes(b"\x80\x05 torn mid-write")
    missing = object()
    assert cache.get(EXPERIMENT, PARAMS, missing) is missing
    assert cache.stats.corrupt == 1
    assert not path.exists()  # dropped so the next writer heals it
    cache.put(EXPERIMENT, PARAMS, VALUE)
    assert cache.get(EXPERIMENT, PARAMS) == VALUE


def test_server_envelopes_share_cache_format(tmp_path):
    """The serve layer's envelope entries are plain cache entries —
    readable by any ResultCache over the same directory."""
    from repro.serve import normalize_request
    from repro.serve.server import ServeConfig
    from repro.serve.testing import ServerHarness

    payload = {"kind": "scenario", "preset": "dc-baseline", "seed": 0}
    with ServerHarness(ServeConfig(cache_dir=tmp_path)) as harness:
        with harness.client() as client:
            response = client.submit(payload, wait=True)
            key = response["key"]
    outside = ResultCache(tmp_path)
    envelope = outside.get("serve.envelope", {"key": key})
    assert envelope is not None
    assert envelope["key"] == key == normalize_request(payload).key()
    assert json.dumps(envelope, sort_keys=True) == \
        json.dumps(response["result"], sort_keys=True)

"""Fault injection: worker death, pool respawn, server retry-then-fail.

Covers the two failure layers end to end:

* :class:`repro.runner.pool.PersistentWorkerPool` — a worker killed
  mid-command surfaces as :class:`WorkerError` with ``died=True`` and a
  fresh process in the slot; a worker that *raises* surfaces the remote
  traceback with the process intact;
* :class:`repro.serve.server.JobServer` — a job whose attempt dies in a
  worker is retried once (``job_retried`` on its stream, fresh
  attempt counter) and, when the fault persists, failed cleanly without
  taking the server down.
"""

import os
import signal
import time

import pytest

from repro.runner.pool import PersistentWorkerPool, WorkerError
from repro.serve.client import ServeError
from repro.serve.server import JobState, ServeConfig
from repro.serve.testing import ServerHarness


class Counter:
    """Minimal picklable actor for pool tests."""

    def __init__(self, start=0):
        self.value = start

    def add(self, n):
        self.value += n
        return self.value

    def boom(self):
        raise ValueError("injected actor failure")

    def hang(self):
        time.sleep(60.0)  # killed long before this returns

    def pid(self):
        return os.getpid()


def _kill_and_wait(pool, worker):
    """SIGKILL one worker and wait until its process object is reaped
    (a bare ``os.kill(pid, 0)`` probe would see the zombie forever)."""
    os.kill(pool.worker_pid(worker), signal.SIGKILL)
    process = pool._workers[worker]
    process.join(timeout=10.0)
    assert not process.is_alive()


class TestPoolFaults:
    def test_raise_carries_remote_traceback_and_keeps_worker(self):
        with PersistentWorkerPool(1) as pool:
            pool.create(0, "c", Counter)
            pool.result(0)
            pid = pool.call_sync(0, "c", "pid")
            with pytest.raises(WorkerError) as excinfo:
                pool.call_sync(0, "c", "boom")
            err = excinfo.value
            assert not err.died and err.worker == 0
            assert "ValueError" in err.remote_traceback
            assert "injected actor failure" in err.remote_traceback
            assert pool.respawns == 0
            # same process, actor state intact
            assert pool.call_sync(0, "c", "pid") == pid
            assert pool.call_sync(0, "c", "add", 3) == 3

    def test_kill_mid_command_respawns_and_pool_stays_usable(self):
        with PersistentWorkerPool(2) as pool:
            pool.create(0, "c", Counter)
            pool.result(0)
            old_pid = pool.worker_pid(0)
            pool.call(0, "c", "hang")  # in flight, blocked in the worker
            _kill_and_wait(pool, 0)
            with pytest.raises(WorkerError) as excinfo:
                pool.result(0)
            err = excinfo.value
            assert err.died and err.worker == 0
            assert "died" in str(err)
            assert pool.respawns == 1
            assert pool.worker_pid(0) != old_pid
            # slot is fresh: actors are gone but new ones work
            pool.create(0, "c2", Counter, 10)
            pool.result(0)
            assert pool.call_sync(0, "c2", "add", 5) == 15
            # the untouched worker never noticed
            pool.create(1, "c", Counter)
            pool.result(1)
            assert pool.call_sync(1, "c", "add", 2) == 2

    def test_kill_before_send_respawns(self):
        with PersistentWorkerPool(1) as pool:
            _kill_and_wait(pool, 0)
            with pytest.raises(WorkerError) as excinfo:
                # the dead pipe is detected on send or on the matching
                # receive, depending on kernel buffering
                pool.create(0, "c", Counter)
                pool.result(0)
            assert excinfo.value.died
            assert pool.respawns == 1
            pool.create(0, "c", Counter)
            pool.result(0)
            assert pool.call_sync(0, "c", "add", 1) == 1

    def test_pipelined_commands_survive_unrelated_raise(self):
        with PersistentWorkerPool(1) as pool:
            pool.create(0, "c", Counter)
            pool.result(0)
            pool.call(0, "c", "add", 1)
            pool.call(0, "c", "boom")
            pool.call(0, "c", "add", 1)
            assert pool.result(0) == 1
            with pytest.raises(WorkerError):
                pool.result(0)
            assert pool.result(0) == 2


JOB = {"kind": "scenario", "preset": "dc-baseline", "seed": 0}


def _inject_worker_faults(monkeypatch, fail_first_n):
    """Patch the server's executor to die ``fail_first_n`` times per job."""
    import repro.serve.server as server_mod
    from repro.serve.jobs import execute_job as real_execute

    failures = {}
    calls = []

    def flaky(request, **kwargs):
        calls.append(request.key())
        count = failures.get(request.key(), 0)
        if count < fail_first_n:
            failures[request.key()] = count + 1
            raise WorkerError(0, "worker process died mid-command "
                                 "(injected)", died=True)
        return real_execute(request, **kwargs)

    monkeypatch.setattr(server_mod, "execute_job", flaky)
    return calls


class TestServerRetry:
    def test_worker_fault_is_retried_once_then_succeeds(self, monkeypatch,
                                                        tmp_path):
        calls = _inject_worker_faults(monkeypatch, fail_first_n=1)
        config = ServeConfig(cache_dir=tmp_path / "cache", max_retries=1)
        with ServerHarness(config) as harness:
            with harness.client() as client:
                events = []
                end = client.submit_and_watch(JOB, events.append)
                assert end["state"] == JobState.DONE
                result = client.result(end["key"])
                assert result["attempts"] == 2
                kinds = [e["record"]["kind"] for e in events]
                # attempt 1 -> retried -> attempt 2 -> finished
                assert kinds.count("job_started") == 2
                assert "job_retried" in kinds
                assert kinds.index("job_retried") > kinds.index("job_started")
                assert kinds[-1] == "job_finished"
                stats = client.stats()
                assert stats["counters"]["serve.retried"] == 1
                assert stats["counters"]["serve.computed"] == 1
        assert len(calls) == 2

    def test_persistent_fault_fails_cleanly_server_survives(self, monkeypatch,
                                                            tmp_path):
        _inject_worker_faults(monkeypatch, fail_first_n=99)
        config = ServeConfig(cache_dir=tmp_path / "cache", max_retries=1)
        with ServerHarness(config) as harness:
            with harness.client() as client:
                response = client.submit(JOB, wait=True)
                assert response["state"] == JobState.FAILED
                assert "worker fault" in response["failure"]
                assert "injected" in response["failure"]
                assert response["attempts"] == 2
                with pytest.raises(ServeError, match="failed"):
                    client.result(response["key"])
                status = client.status(response["key"])
                assert status["state"] == JobState.FAILED
                stats = client.stats()
                assert stats["counters"]["serve.failed"] == 1
                assert "serve.computed" not in stats["counters"]
                # the server is still healthy: failure events recorded,
                # protocol loop alive
                assert stats["events"]["job_failed"] == 1
                assert client.ping()["ok"] is True

    def test_failed_job_can_be_resubmitted(self, monkeypatch, tmp_path):
        calls = _inject_worker_faults(monkeypatch, fail_first_n=2)
        config = ServeConfig(cache_dir=tmp_path / "cache", max_retries=0)
        with ServerHarness(config) as harness:
            with harness.client() as client:
                first = client.submit(JOB, wait=True)
                assert first["state"] == JobState.FAILED
                second = client.submit(JOB, wait=True)
                assert second["state"] == JobState.FAILED
                third = client.submit(JOB, wait=True)
                assert third["state"] == JobState.DONE
                assert third["result"]["payload"]["record"]["utilization"] > 0
        assert len(calls) == 3

    def test_deterministic_error_is_not_retried(self, monkeypatch, tmp_path):
        import repro.serve.server as server_mod

        calls = []

        def broken(request, **kwargs):
            calls.append(request.key())
            raise ValueError("deterministic bug")

        monkeypatch.setattr(server_mod, "execute_job", broken)
        config = ServeConfig(cache_dir=tmp_path / "cache", max_retries=3)
        with ServerHarness(config) as harness:
            with harness.client() as client:
                response = client.submit(JOB, wait=True)
                assert response["state"] == JobState.FAILED
                assert "ValueError" in response["failure"]
        assert len(calls) == 1  # no retries burned on a deterministic bug

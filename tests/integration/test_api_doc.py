"""Integration: docs/API.md stays in sync with the public API."""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]


def test_api_doc_is_current():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import gen_api_doc
    finally:
        sys.path.pop(0)
    generated = gen_api_doc.generate()
    on_disk = (ROOT / "docs" / "API.md").read_text()
    assert generated == on_disk, (
        "docs/API.md is stale; regenerate with `python tools/gen_api_doc.py`"
    )


def test_api_doc_mentions_every_package():
    text = (ROOT / "docs" / "API.md").read_text()
    for package in ("repro.core", "repro.fluid", "repro.simulation",
                    "repro.baselines", "repro.experiments"):
        assert f"## `{package}`" in text

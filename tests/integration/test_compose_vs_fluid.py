"""Integration: closed-form composition vs numerical integration.

The semi-analytic composer and the scipy-based integrator solve the
same switched linear system by entirely different means; across the
case presets their switch times, crossing states and extrema must
coincide.
"""

import math

import numpy as np
import pytest

from repro.core.phase_plane import PhasePlaneAnalyzer
from repro.experiments.presets import CASE1, CASE1_SLOW, CASE2, CASE3, CASE4, CASE5
from repro.fluid.integrate import simulate_fluid

PRESETS = {
    "case1": CASE1,
    "case1_slow": CASE1_SLOW,
    "case2": CASE2,
    "case3": CASE3,
    "case4": CASE4,
    "case5": CASE5,
}


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_switch_times_agree(name):
    p = PRESETS[name]
    composed = PhasePlaneAnalyzer(p).compose(max_switches=8)
    horizon = composed.total_duration
    if math.isinf(horizon):
        horizon = (composed.switch_states[-1][0] + 10.0
                   if composed.switch_states else 10.0)
    fluid = simulate_fluid(p, t_max=horizon, mode="linearized",
                           max_switches=20)
    ct = [t for t, _, _ in composed.switch_states]
    ft = fluid.switch_times
    assert len(ft) >= min(len(ct), 5) - 1
    for c, f in zip(ct, ft):
        assert f == pytest.approx(c, rel=1e-4, abs=1e-4)


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_crossing_states_agree(name):
    p = PRESETS[name]
    composed = PhasePlaneAnalyzer(p).compose(max_switches=6)
    if not composed.switch_states:
        pytest.skip("no crossings for this preset")
    horizon = composed.switch_states[-1][0] * 1.01
    fluid = simulate_fluid(p, t_max=horizon, mode="linearized",
                           max_switches=20)
    switches = [e for e in fluid.events if e.kind == "switch"]
    for (tc, xc, yc), ev in zip(composed.switch_states, switches):
        scale = max(abs(xc), abs(yc), 1.0)
        assert abs(ev.x - xc) < 1e-3 * scale
        assert abs(ev.y - yc) < 1e-3 * scale


@pytest.mark.parametrize("name", ["case1", "case1_slow", "case2"])
def test_first_extrema_agree(name):
    p = PRESETS[name]
    composed = PhasePlaneAnalyzer(p).compose(max_switches=6)
    peaks_c = [x for _, x in composed.extrema if x > 0]
    horizon = composed.switch_states[-1][0] * 1.2
    fluid = simulate_fluid(p, t_max=horizon, mode="linearized",
                           max_switches=20)
    peaks_f = [x for _, x in fluid.extrema if x > 0]
    assert peaks_c and peaks_f
    assert peaks_f[0] == pytest.approx(peaks_c[0], rel=1e-5)


@pytest.mark.parametrize("name", ["case3", "case4"])
def test_no_overshoot_cases_agree(name):
    p = PRESETS[name]
    composed = PhasePlaneAnalyzer(p).compose(max_switches=6)
    fluid = simulate_fluid(p, t_max=50.0, mode="linearized", max_switches=20)
    assert composed.max_x() <= 1e-9 * p.q0
    assert fluid.max_x() <= 1e-6 * p.q0


def test_sampled_trajectories_overlap_case1():
    p = CASE1_SLOW
    composed = PhasePlaneAnalyzer(p).compose(max_switches=10)
    horizon = composed.switch_states[-1][0]
    fluid = simulate_fluid(p, t_max=horizon, mode="linearized",
                           max_switches=40)
    samples = composed.sample(400)
    mask = samples[:, 0] <= fluid.t[-1]
    x_interp = np.interp(samples[mask, 0], fluid.t, fluid.x)
    span = samples[:, 1].max() - samples[:, 1].min()
    # tolerance dominated by linear interpolation on the integrator's
    # native output grid, not by solution error
    err = np.max(np.abs(samples[mask, 1] - x_interp))
    assert err < 1e-3 * span

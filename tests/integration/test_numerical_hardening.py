"""Numerical hardening: cross-checks between independent machineries.

Each test pits two unrelated computations of the same quantity against
each other — the strongest correctness evidence the library can give.
"""


import numpy as np
import pytest

from repro.core.limit_cycle import linearized_contraction, return_map
from repro.core.parameters import NormalizedParams
from repro.core.phase_plane import PhasePlaneAnalyzer
from repro.core.stability import case1_excursion_bounds, required_buffer
from repro.core.transient import round_period, settling_time
from repro.fluid.delay import simulate_delayed
from repro.fluid.integrate import simulate_fluid


def norm(a=2.0, b=0.02, k=0.1, buffer_size=1e9):
    return NormalizedParams(a=a, b=b, k=k, capacity=100.0, q0=10.0,
                            buffer_size=buffer_size)


class TestDDEConvergence:
    def test_step_halving_converges(self):
        """RK4 + linear history interpolation: refining the step must
        change the solution by far less than the coarse error."""
        p = norm(k=1.0)
        coarse = simulate_delayed(p, tau=0.3, t_max=10.0, step=0.02)
        fine = simulate_delayed(p, tau=0.3, t_max=10.0, step=0.005)
        finest = simulate_delayed(p, tau=0.3, t_max=10.0, step=0.00125)
        x_c = np.interp(finest.t, coarse.t, coarse.x)
        x_f = np.interp(finest.t, fine.t, fine.x)
        err_coarse = np.max(np.abs(x_c - finest.x))
        err_fine = np.max(np.abs(x_f - finest.x))
        assert err_fine < err_coarse / 4.0  # at least 2nd-order overall

    def test_zero_delay_limit(self):
        """tau -> 0 recovers the undelayed switched system."""
        p = norm(k=1.0)
        tiny = simulate_delayed(p, tau=1e-4, t_max=8.0)
        undelayed = simulate_fluid(p, t_max=8.0, mode="nonlinear",
                                   max_switches=100)
        x_interp = np.interp(tiny.t, undelayed.t, undelayed.x)
        span = undelayed.x.max() - undelayed.x.min()
        assert np.max(np.abs(tiny.x - x_interp)) < 0.02 * span


class TestReturnMapVsComposer:
    def test_switching_ordinates_follow_the_map(self):
        """The composer's successive same-side crossing ordinates must
        decay by exactly the return map's linearised contraction."""
        p = norm(k=0.1)
        rho = linearized_contraction(p)
        ys = PhasePlaneAnalyzer(p).switching_ordinates(n_rounds=5)
        ups = [y for y in ys if y > 0]
        for y1, y2 in zip(ups, ups[1:]):
            assert y2 / y1 == pytest.approx(rho, rel=1e-6)

    def test_map_agrees_with_direct_fluid_integration(self):
        p = norm(k=0.1)
        y0 = 5.0
        mapped = return_map(p, y0, mode="nonlinear")
        fluid = simulate_fluid(p, x0=-p.k * y0, y0=y0, t_max=50.0,
                               mode="nonlinear", max_switches=3)
        switches = [e for e in fluid.events if e.kind == "switch"]
        assert len(switches) >= 2
        assert switches[1].y == pytest.approx(mapped, rel=1e-4)


class TestTransientVsSimulation:
    def test_settling_time_matches_envelope_decay(self):
        """The closed-form 1% settling time equals where the simulated
        oscillation envelope actually reaches 1%."""
        p = norm(k=0.2)
        t_settle = settling_time(p, fraction=0.01)
        traj = PhasePlaneAnalyzer(p).compose(max_switches=200)
        first_peak = next(x for _, x in traj.extrema if x > 0)
        late_peaks = [(t, x) for t, x in traj.extrema
                      if x > 0 and x < 0.01 * first_peak]
        assert late_peaks
        # the first sub-1% peak lands within one round of the formula
        assert late_peaks[0][0] == pytest.approx(
            t_settle, abs=1.5 * round_period(p))

    def test_bounds_linear_in_q0(self):
        """The whole linearised system is homogeneous of degree 1 in the
        state, so the Case-1 excursions scale exactly with q0."""
        p1 = norm(k=0.1)
        p2 = NormalizedParams(a=p1.a, b=p1.b, k=p1.k,
                              capacity=p1.capacity,
                              q0=3.0 * p1.q0, buffer_size=1e12)
        m1a, n1a = case1_excursion_bounds(p1)
        m1b, n1b = case1_excursion_bounds(p2)
        assert m1b == pytest.approx(3.0 * m1a, rel=1e-12)
        assert n1b == pytest.approx(3.0 * n1a, rel=1e-12)


class TestCriterionVsPhysicalModel:
    @pytest.mark.parametrize("k", [1.0, 0.1, 0.02])
    def test_theorem1_admits_only_safe_physical_runs(self, k):
        """With buffer at 1.05x the Theorem 1 requirement, the physical
        fluid model must never drop (pin at the buffer)."""
        need = required_buffer(norm(k=k))
        p = norm(k=k, buffer_size=need * 1.05)
        traj = simulate_fluid(p, t_max=300.0, mode="physical",
                              max_switches=2000)
        assert not traj.hit_buffer_full()

    def test_undersized_buffer_pins(self):
        need = required_buffer(norm(k=0.02))
        p = norm(k=0.02, buffer_size=need * 0.6)
        traj = simulate_fluid(p, t_max=100.0, mode="physical",
                              max_switches=2000)
        assert traj.hit_buffer_full()

"""Differential suite: the sharded fabric engine vs the serial network.

The determinism contract of :mod:`repro.shard`, as promised by the
module docstrings:

* **one shard == serial, bitwise** — a ``shards=1`` plan replays the
  serial :class:`MultiHopNetwork` construction and event order exactly,
  so every result field matches bit for bit, on every packet engine;
* **worker layout is invisible** — the same plan run with 1, 2 or 4
  workers produces bitwise-identical results (messages are ordered by
  the canonical ``(arrival, src_shard, seq)`` key, never by wall-clock
  arrival);
* **multi-shard tracks serial within documented tolerances** — cutting
  the fabric reorders same-timestamp events across shard boundaries,
  so multi-shard results are compared on aggregates: total delivered
  bits within 5%, the shared sampling grid bitwise, and conservation
  invariants exact;
* **scenario events ride along** — timed capacity changes, outages and
  departures are routed to owning shards and preserve all of the
  above.
"""

import numpy as np
import pytest

from repro.simulation.multihop import MultiHopNetwork, PortConfig
from repro.simulation.network import PACKET_ENGINES
from repro.topology.graphs import fat_tree
from repro.workloads import incast, permutation

FRAME_BITS = 12_000
DELAY = 1e-6
DURATION = 2e-4
CONFIG = PortConfig(q0=8 * FRAME_BITS, buffer_bits=60 * FRAME_BITS)


def _hosts(graph):
    return sorted(
        n for n, d in graph.nodes(data=True) if d.get("kind") == "host"
    )


def _network(flows=None, *, congested=False, **kwargs):
    g = fat_tree(4, capacity=10e9)
    hosts = _hosts(g)
    if flows is None:
        if congested:
            flows = incast(hosts[1:], hosts[0], response_bits=5e5,
                           demand=5e9)
        else:
            flows = permutation(hosts, demand=2e9, rounds=1)
    return MultiHopNetwork(g, flows, CONFIG, frame_bits=FRAME_BITS,
                           propagation_delay=DELAY, **kwargs)


def _run(**kwargs):
    return _network(**kwargs).run(DURATION)


def assert_bitwise_equal(a, b):
    assert a.per_flow_delivered_bits == b.per_flow_delivered_bits
    assert a.per_flow_rate == b.per_flow_rate
    assert a.finish_times == b.finish_times
    assert a.start_times == b.start_times
    assert a.dropped_frames == b.dropped_frames
    assert a.bcn_negative == b.bcn_negative
    assert a.bcn_positive == b.bcn_positive
    assert a.pauses == b.pauses
    np.testing.assert_array_equal(a.port_queue_times, b.port_queue_times)
    assert set(a.port_queues) == set(b.port_queues)
    for edge in a.port_queues:
        np.testing.assert_array_equal(a.port_queues[edge],
                                      b.port_queues[edge])


class TestOneShardIsSerialBitwise:
    @pytest.mark.parametrize("engine", PACKET_ENGINES)
    def test_plain_run(self, engine):
        serial = _run(engine=engine)
        sharded = _run(engine=engine, shards=1)
        assert_bitwise_equal(serial, sharded)

    def test_congested_run(self):
        serial = _run(congested=True)
        sharded = _run(congested=True, shards=1)
        assert serial.dropped_frames + serial.pauses + serial.bcn_negative > 0
        assert_bitwise_equal(serial, sharded)


class TestWorkerLayoutIsInvisible:
    @pytest.mark.parametrize("congested", [False, True])
    def test_1_2_4_workers_bitwise(self, congested):
        runs = [
            _run(congested=congested, shards=4, workers=w)
            for w in (1, 2, 4)
        ]
        assert_bitwise_equal(runs[0], runs[1])
        assert_bitwise_equal(runs[0], runs[2])

    def test_pool_path_matches_inline_on_every_engine(self):
        for engine in PACKET_ENGINES:
            inline = _run(engine=engine, shards=4, workers=1)
            pooled = _run(engine=engine, shards=4, workers=2)
            assert_bitwise_equal(inline, pooled)


class TestMultiShardTracksSerial:
    @pytest.mark.parametrize("congested", [False, True])
    def test_aggregates_within_tolerance(self, congested):
        serial = _run(congested=congested)
        sharded = _run(congested=congested, shards=4, workers=1)
        total_serial = sum(serial.per_flow_delivered_bits.values())
        total_sharded = sum(sharded.per_flow_delivered_bits.values())
        assert total_serial > 0
        # cutting the fabric only reorders same-timestamp events
        assert total_sharded == pytest.approx(total_serial, rel=0.05)
        # the sampling grid is plan-fixed, not engine-fixed
        np.testing.assert_array_equal(serial.port_queue_times,
                                      sharded.port_queue_times)
        assert set(serial.port_queues) == set(sharded.port_queues)

    def test_delivery_conservation(self):
        sharded = _run(congested=True, shards=4, workers=1)
        serial = _run(congested=True)
        for res in (serial, sharded):
            for fid, delivered in res.per_flow_delivered_bits.items():
                # nothing is delivered twice: finite flows never exceed
                # their size
                assert delivered <= 5e5 + FRAME_BITS


class TestScenarioEventsRideAlong:
    def _with_events(self, **kwargs):
        net = _network(**kwargs)
        edge = (net._plan.port_edges if net.sharded
                else tuple(net._port_edges))[0]
        net.schedule_capacity(5e-5, edge, 1e9)
        net.schedule_outage(1e-4, 3e-5, port=None)
        net.schedule_departure(1.5e-4, 0)
        return net.run(DURATION)

    def test_one_shard_bitwise_with_events(self):
        serial = self._with_events()
        sharded = self._with_events(shards=1)
        assert_bitwise_equal(serial, sharded)

    def test_worker_layout_invisible_with_events(self):
        inline = self._with_events(shards=4, workers=1)
        pooled = self._with_events(shards=4, workers=2)
        assert_bitwise_equal(inline, pooled)

    def test_multi_shard_tracks_serial_with_events(self):
        serial = self._with_events()
        sharded = self._with_events(shards=4, workers=1)
        total_serial = sum(serial.per_flow_delivered_bits.values())
        total_sharded = sum(sharded.per_flow_delivered_bits.values())
        assert total_sharded == pytest.approx(total_serial, rel=0.05)
        # the departed flow stops in both worlds
        assert sharded.per_flow_delivered_bits[0] == \
            pytest.approx(serial.per_flow_delivered_bits[0], rel=0.05)


class TestObsMerge:
    def test_counters_and_spans_merge_across_shards(self):
        from repro.obs import Observability

        obs = Observability()
        net = _network(congested=True, shards=4, workers=2, obs=obs)
        net.run(DURATION)
        counters = obs.metrics.counters
        n_windows = len(net._plan.window_edges(DURATION))
        assert counters["shard.windows"].value == n_windows
        assert counters["shard.msgs.sent"].value > 0
        # every sent message is received unless still in flight at the
        # final barrier
        assert counters["shard.msgs.recv"].value <= \
            counters["shard.msgs.sent"].value
        assert obs.event_counts()  # merged event counters survive

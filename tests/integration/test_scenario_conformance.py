"""Cross-engine conformance of the scenario presets.

Every named preset runs on the reference and the batched packet engine
and must agree within documented tolerances.  The declarative schedule
makes both engines see the *same* arrivals, bursts, outages and C(t)
steps, so disagreement here means an engine mis-handles a dynamic
event, not that the workloads diverged.

Tolerances (measured headroom at seed 0 is 2-4x tighter):

* utilisation within 1 percentage point (both measured against the same
  ``capacity_integral()``);
* queue mean within 15%, queue peak within 25% — the batched engine's
  one-quantum control lag shifts the transient envelope slightly;
* PAUSE frame counts within 15% when the reference pauses at all
  (the pause-commit horizon makes each episode admit the same in-flight
  frames, but episode boundaries can shift by one window);
* drop counts within ``max(10, 25%)`` frames;
* the *set* of finished dynamic flows is identical, and the FCT
  **distributions** agree quantile-by-quantile within 25% relative /
  0.5 ms absolute (individual flows can swap service order inside a
  contested episode, so per-flow FCTs are not compared — measured
  per-flow divergence reaches ~50% while the sorted distributions stay
  within ~15%);
* bits are conserved on each engine independently, up to the in-flight
  slack of ``(n_sources + 2) * frame_bits``.

The incast preset additionally must show a genuine PAUSE episode in the
obs stream of *both* engines (queue through ``q_sc``, ``pause_on``
events, FCT-slowdown histogram populated), and the varying-capacity
preset must exercise at least two ``C(t)`` transitions.
"""

import numpy as np
import pytest

from repro.obs import Observability
from repro.scenarios import get_preset, preset_names, run_scenario

#: One control quantum (the batched engine's message-lag scale), used as
#: the absolute floor for per-flow FCT agreement.
CONTROL_QUANTUM = 100e-6

_RUNS: dict[tuple[str, str], object] = {}


def _result(preset: str, engine: str):
    key = (preset, engine)
    if key not in _RUNS:
        obs = Observability()
        _RUNS[key] = run_scenario(get_preset(preset), engine=engine, obs=obs)
        _RUNS[key]._obs = obs
    return _RUNS[key]


@pytest.fixture(params=preset_names())
def preset(request):
    return request.param


class TestPresetConformance:
    def test_utilization_agrees(self, preset):
        ref = _result(preset, "reference")
        bat = _result(preset, "batched")
        assert bat.utilization() == pytest.approx(ref.utilization(),
                                                  abs=0.01)

    def test_queue_statistics_agree(self, preset):
        ref = _result(preset, "reference")
        bat = _result(preset, "batched")
        assert bat.sim.queue_mean() == pytest.approx(
            ref.sim.queue_mean(), rel=0.15)
        assert bat.sim.queue_peak() == pytest.approx(
            ref.sim.queue_peak(), rel=0.25)

    def test_pause_volume_agrees(self, preset):
        ref = _result(preset, "reference")
        bat = _result(preset, "batched")
        if ref.sim.pauses == 0:
            assert bat.sim.pauses == 0
        else:
            assert bat.sim.pauses == pytest.approx(ref.sim.pauses, rel=0.15)

    def test_drop_counts_track(self, preset):
        ref = _result(preset, "reference")
        bat = _result(preset, "batched")
        assert abs(bat.sim.dropped_frames - ref.sim.dropped_frames) <= max(
            10, 0.25 * max(ref.sim.dropped_frames, 1))

    def test_same_flows_finish_with_agreeing_fct_distribution(self, preset):
        ref = _result(preset, "reference")
        bat = _result(preset, "batched")
        assert sorted(ref.fcts) == sorted(bat.fcts)
        if not ref.fcts:
            return
        fct_ref = np.sort(list(ref.fcts.values()))
        fct_bat = np.sort(list(bat.fcts.values()))
        gap = np.abs(fct_bat - fct_ref)
        bound = np.maximum(0.25 * fct_ref, 5 * CONTROL_QUANTUM)
        assert (gap <= bound).all(), (
            f"FCT quantiles diverge: worst {gap.max():.6f} s")

    def test_bits_conserved_on_each_engine(self, preset):
        scenario = get_preset(preset)
        for engine in ("reference", "batched", "compiled"):
            res = _result(preset, engine)
            slack = (res.sim.per_source_rate.size + 2) * scenario.frame_bits
            assert abs(res.conservation_error()) <= slack, (
                f"{engine}: {res.conservation_error()} bits unaccounted")

    def test_schedule_events_identical_across_engines(self, preset):
        """flow_start/capacity_change/link_* streams match exactly."""
        ref_obs = _result(preset, "reference")._obs
        bat_obs = _result(preset, "batched")._obs

        def schedule_stream(obs, engine):
            return [
                (e.kind, e.t, e.flow, e.value)
                for e in obs.trace.records
                if e.kind in ("flow_start", "capacity_change",
                              "link_down", "link_up")
                and e.engine == f"packet.{engine}"
            ]

        assert schedule_stream(ref_obs, "reference") == \
            schedule_stream(bat_obs, "batched")


class TestCompiledEngineExact:
    """``engine="compiled"`` is the batched engine on compiled kernels:
    same windows, same messages, same RNG draws — so scenario results
    must match the batched engine **bit for bit** on every backend tier
    (the numpy tier delegates to the batched path outright)."""

    def test_series_and_counters_match_batched(self, preset):
        bat = _result(preset, "batched")
        com = _result(preset, "compiled")
        np.testing.assert_array_equal(com.sim.t, bat.sim.t)
        np.testing.assert_array_equal(com.sim.queue, bat.sim.queue)
        np.testing.assert_array_equal(com.sim.rate_total,
                                      bat.sim.rate_total)
        np.testing.assert_array_equal(com.sim.per_source_rate,
                                      bat.sim.per_source_rate)
        assert com.sim.dropped_frames == bat.sim.dropped_frames
        assert com.sim.forwarded_frames == bat.sim.forwarded_frames
        assert com.sim.pauses == bat.sim.pauses
        assert com.sim.delivered_bits == bat.sim.delivered_bits
        assert com.fcts == bat.fcts
        assert com.injected_bits == bat.injected_bits
        assert com.queued_bits_end == bat.queued_bits_end

    def test_obs_event_streams_match_batched(self, preset):
        """Event-for-event agreement (multiset: the compiled drop-tail
        fallback replays drop/bcn/pause events sorted by time, which
        can reorder simultaneous events from different sources)."""
        def stream(res):
            return sorted(
                (e.kind, e.t, e.node, e.flow, e.value)
                for e in res._obs.trace.records
            )

        assert stream(_result(preset, "compiled")) == \
            stream(_result(preset, "batched"))


class TestIncastEpisode:
    """The acceptance-criterion preset: a visible PAUSE episode."""

    @pytest.mark.parametrize("engine",
                             ["reference", "batched", "compiled"])
    def test_queue_punches_through_q_sc(self, engine):
        res = _result("incast-32", engine)
        q_sc = res.scenario.params.q_sc
        assert q_sc is not None
        assert res.sim.queue_peak() > q_sc
        assert res.sim.pauses > 0

    @pytest.mark.parametrize("engine",
                             ["reference", "batched", "compiled"])
    def test_pause_episode_visible_in_obs(self, engine):
        obs = _result("incast-32", engine)._obs
        counts = obs.event_counts(engine=f"packet.{engine}")
        assert counts.get("pause_on", 0) > 0
        assert counts.get("pause_off", 0) > 0
        assert counts.get("flow_finish", 0) == 32

    @pytest.mark.parametrize("engine",
                             ["reference", "batched", "compiled"])
    def test_fct_slowdown_histogram_populated(self, engine):
        obs = _result("incast-32", engine)._obs
        hist = obs.metrics.histograms.get(f"fct_slowdown.packet.{engine}")
        assert hist is not None
        assert sum(hist.counts) == 32
        # The burst contends with four elephants, so responses cannot
        # complete at ideal time: all mass sits above slowdown 1
        # (counts[0] = underflow below edge 0, counts[1] = [0, 1)).
        assert np.asarray(hist.edges)[1] == 1.0
        assert hist.counts[0] == 0 and hist.counts[1] == 0


class TestVaryingCapacity:
    def test_exercises_two_plus_transitions(self):
        scenario = get_preset("varying-capacity")
        assert scenario.n_capacity_transitions() >= 2

    @pytest.mark.parametrize("engine",
                             ["reference", "batched", "compiled"])
    def test_capacity_steps_land_in_obs(self, engine):
        obs = _result("varying-capacity", engine)._obs
        counts = obs.event_counts(engine=f"packet.{engine}")
        assert counts.get("capacity_change", 0) >= 2

    @pytest.mark.parametrize("engine",
                             ["reference", "batched", "compiled"])
    def test_utilization_measured_against_integral(self, engine):
        res = _result("varying-capacity", engine)
        # BCN keeps the reduced-capacity link busy: against nominal C
        # this would read ~0.84, against the integral it is ~1.
        assert res.utilization() > 0.95
        assert res.capacity_integral < (
            res.scenario.params.capacity * res.scenario.duration)


class TestLossyOutage:
    @pytest.mark.parametrize("engine",
                             ["reference", "batched", "compiled"])
    def test_outage_fills_buffer_and_drops(self, engine):
        res = _result("lossy-outage", engine)
        assert res.sim.dropped_frames > 0
        assert res.sim.queue_peak() == pytest.approx(
            res.scenario.params.buffer_size, rel=0.01)

"""Concurrency end-to-end: 8 clients, one compute per unique job.

The acceptance scenario for simulation-as-a-service: eight concurrent
clients over one server with a shared warm cache submit overlapping
work; every unique job is computed exactly once, duplicate submissions
get byte-identical results, every running job streams progress events,
the merged obs metrics equal a serial reference, and SIGTERM/drain
never loses or duplicates an accepted job.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.obs import Observability
from repro.runner.cache import ResultCache
from repro.serve import normalize_request
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import execute_job
from repro.serve.progress import ProgressStats
from repro.serve.server import JobState, ServeConfig
from repro.serve.testing import ServerHarness

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Four unique jobs; eight clients submit each twice.
UNIQUE_JOBS = [
    {"kind": "scenario", "preset": "dc-baseline", "seed": 0},
    {"kind": "scenario", "preset": "dc-baseline", "seed": 1},
    {"kind": "scenario", "preset": "dc-baseline", "seed": 2},
    {"kind": "sweep", "preset": "dc-baseline", "n_seeds": 3},
]


def _deterministic(counters):
    """Counters that must match a serial reference run exactly.

    Timing accumulators (``*seconds*``) and the server's own lifecycle
    bookkeeping (``serve.*``, ``events.job_*``) are run-dependent; the
    runner work counters and engine event counts are not.
    """
    return {
        name: value for name, value in counters.items()
        if "seconds" not in name
        and not name.startswith("serve.")
        and not name.startswith("events.job_")
    }


def _serial_reference():
    """The same four unique jobs, computed serially under one obs."""
    obs = Observability()
    for payload in UNIQUE_JOBS:
        request = normalize_request(payload)
        stats = ProgressStats(lambda done, label, cached: None,
                              obs=obs, workers=1)
        execute_job(request, cache=None, workers=0, stats=stats, obs=obs)
    return _deterministic(obs.metrics.snapshot()["counters"])


def test_eight_clients_one_compute_per_unique_job(tmp_path):
    config = ServeConfig(cache_dir=tmp_path / "cache", max_concurrent=4)
    results = {}        # client index -> (key, canonical result JSON)
    streams = {}        # client index -> list of streamed event kinds
    errors = []
    barrier = threading.Barrier(8)

    def run_client(index, harness):
        payload = UNIQUE_JOBS[index % len(UNIQUE_JOBS)]
        try:
            with harness.client() as client:
                barrier.wait(timeout=30)
                if index < len(UNIQUE_JOBS):
                    # one watcher per unique job streams its progress
                    events = []
                    end = client.submit_and_watch(payload, events.append)
                    assert end["state"] == JobState.DONE
                    key = end["key"]
                    envelope = client.result(key)
                    streams[index] = [e["record"]["kind"] for e in events]
                else:
                    response = client.submit(payload, wait=True)
                    assert response["state"] == JobState.DONE
                    key = response["key"]
                    envelope = response["result"]
                results[index] = (key, json.dumps(envelope, sort_keys=True))
        except BaseException as exc:  # surfaced after join
            errors.append((index, exc))

    with ServerHarness(config) as harness:
        threads = [threading.Thread(target=run_client, args=(i, harness))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not errors, errors

        with harness.client() as client:
            stats = client.stats()
            jobs = client.list_jobs()

    # exactly one compute per unique job, 8 accepted submissions
    assert stats["counters"]["serve.submitted"] == 8
    assert stats["counters"]["serve.computed"] == len(UNIQUE_JOBS)
    assert stats["counters"]["serve.completed"] == len(UNIQUE_JOBS)
    dedup = (stats["counters"].get("serve.dedup.inflight", 0)
             + stats["counters"].get("serve.dedup.cache", 0))
    assert dedup == 8 - len(UNIQUE_JOBS)
    assert len(jobs) == len(UNIQUE_JOBS)
    assert all(j["state"] == JobState.DONE for j in jobs)

    # duplicate submissions got byte-identical results
    by_key = {}
    for index, (key, blob) in results.items():
        by_key.setdefault(key, set()).add(blob)
    assert len(by_key) == len(UNIQUE_JOBS)
    for key, blobs in by_key.items():
        assert len(blobs) == 1, f"divergent results for {key}"

    # every running job streamed progress events
    for index, kinds in streams.items():
        assert "job_started" in kinds, (index, kinds)
        assert kinds[-1] == "job_finished", (index, kinds)
        if UNIQUE_JOBS[index]["kind"] == "sweep":
            assert kinds.count("job_progress") == 3

    # merged obs metrics equal the serial reference
    assert _deterministic(stats["counters"]) == _serial_reference()


def test_duplicate_submission_attaches_in_flight(monkeypatch, tmp_path):
    import repro.serve.server as server_mod
    from repro.serve.jobs import execute_job as real_execute

    release = threading.Event()
    started = threading.Event()

    def gated(request, **kwargs):
        started.set()
        assert release.wait(timeout=30)
        return real_execute(request, **kwargs)

    monkeypatch.setattr(server_mod, "execute_job", gated)
    payload = UNIQUE_JOBS[0]
    with ServerHarness(ServeConfig(cache_dir=tmp_path / "c")) as harness:
        with harness.client() as c1, harness.client() as c2:
            first = c1.submit(payload)
            assert first["dedup"] == "new"
            assert started.wait(timeout=30)
            second = c2.submit(payload)
            assert second["dedup"] == "inflight"
            assert second["key"] == first["key"]
            release.set()
            a = c1.result(first["key"])
            b = c2.result(second["key"])
            assert (json.dumps(a, sort_keys=True)
                    == json.dumps(b, sort_keys=True))
            stats = c1.stats()
            assert stats["counters"]["serve.computed"] == 1
            assert stats["counters"]["serve.dedup.inflight"] == 1


def test_warm_cache_survives_server_restart(tmp_path):
    payload = UNIQUE_JOBS[1]
    config = ServeConfig(cache_dir=tmp_path / "cache")
    with ServerHarness(config) as harness:
        with harness.client() as client:
            first = client.submit(payload, wait=True)
            assert first["dedup"] == "new"
            blob = json.dumps(first["result"], sort_keys=True)
    with ServerHarness(ServeConfig(cache_dir=tmp_path / "cache")) as harness:
        with harness.client() as client:
            second = client.submit(payload, wait=True)
            assert second["dedup"] == "cache"
            assert second["key"] == first["key"]
            assert json.dumps(second["result"], sort_keys=True) == blob
            stats = client.stats()
            assert "serve.computed" not in stats["counters"]


def test_drain_requeues_queued_jobs_without_loss(monkeypatch, tmp_path):
    import repro.serve.server as server_mod
    from repro.serve.jobs import execute_job as real_execute

    release = threading.Event()
    started = threading.Event()
    computed = []

    def gated(request, **kwargs):
        started.set()
        assert release.wait(timeout=60)
        computed.append(request.key())
        return real_execute(request, **kwargs)

    monkeypatch.setattr(server_mod, "execute_job", gated)
    cache_dir = tmp_path / "cache"
    payloads = [{"kind": "scenario", "preset": "dc-baseline", "seed": s}
                for s in range(4)]
    keys = []
    with ServerHarness(ServeConfig(cache_dir=cache_dir,
                                   max_concurrent=1)) as harness:
        with harness.client() as client:
            for payload in payloads:
                keys.append(client.submit(payload)["key"])
            assert started.wait(timeout=30)
            response = client.drain()
            assert response["requeued"] == 3  # one running, three queued
            with pytest.raises(ServeError, match="draining"):
                client.submit({"kind": "scenario", "preset": "dc-baseline",
                               "seed": 99})
            release.set()
    assert computed == keys[:1]  # only the running job computed here

    requeue = cache_dir / "spool" / "requeue.jsonl"
    requeued_keys = [normalize_request(json.loads(line)).key()
                     for line in requeue.read_text().splitlines()]
    assert sorted(requeued_keys) == sorted(keys[1:])

    # a successor over the same spool recovers and completes everything,
    # without recomputing the job the first server finished
    with ServerHarness(ServeConfig(cache_dir=cache_dir,
                                   max_concurrent=2)) as harness:
        with harness.client() as client:
            for payload, key in zip(payloads, keys):
                response = client.submit(payload, wait=True)
                assert response["state"] == JobState.DONE
                assert response["key"] == key
            assert client.stats()["counters"]["serve.computed"] == 3
    assert not requeue.exists()  # consumed by recovery
    assert sorted(computed) == sorted(keys)  # each job computed exactly once


def test_async_client_covers_the_same_surface(tmp_path):
    """AsyncServeClient speaks the identical protocol from a loop."""
    import asyncio

    from repro.serve import AsyncServeClient

    payload = UNIQUE_JOBS[0]

    async def drive(host, port):
        async with await AsyncServeClient.connect(host, port) as client:
            assert (await client.ping())["ok"] is True
            first = await client.submit(payload, wait=True)
            assert first["state"] == JobState.DONE
            events = []
            end = await client.submit_and_watch(payload, events.append)
            assert end["state"] == JobState.DONE
            assert end["key"] == first["key"]
            status = await client.status(first["key"])
            assert status["state"] == JobState.DONE
            envelope = await client.result(first["key"], timeout=30)
            assert envelope["key"] == first["key"]
            watched = await client.watch(first["key"])
            assert watched["state"] == JobState.DONE
            jobs = await client.list_jobs()
            assert len(jobs) == 1
            stats = await client.stats()
            assert stats["counters"]["serve.computed"] == 1
            drained = await client.drain()
            assert drained["draining"] is True
            return envelope

    def stable(envelope):
        return json.dumps(
            {**envelope,
             "counters": {k: v for k, v in envelope["counters"].items()
                          if "seconds" not in k}},
            sort_keys=True)

    # the final async drain() stops the server, so take the sync
    # reference from its own server; the recompute is deterministic up
    # to timing counters, which stable() strips
    with ServerHarness(ServeConfig(cache_dir=tmp_path / "c")) as harness:
        with harness.client() as sync_client:
            reference = sync_client.run(payload)
    with ServerHarness(ServeConfig(cache_dir=tmp_path / "c2")) as harness:
        envelope = asyncio.run(drive(harness.host, harness.port))
    assert stable(envelope) == stable(reference)


def test_sync_client_run_and_iter_watch(monkeypatch, tmp_path):
    import repro.serve.server as server_mod

    def broken(request, **kwargs):
        raise ValueError("deterministic bug")

    payload = UNIQUE_JOBS[2]
    with ServerHarness(ServeConfig(cache_dir=tmp_path / "c",
                                   max_retries=0)) as harness:
        with harness.client() as client:
            envelope = client.run(payload)
            assert envelope["job_kind"] == "scenario"
            key = client.submit(payload)["key"]
            seen = list(client.iter_watch(key))
            assert seen[-1]["event"] == "end"
            assert seen[-1]["state"] == JobState.DONE
            monkeypatch.setattr(server_mod, "execute_job", broken)
            with pytest.raises(ServeError, match="failed.*deterministic"):
                client.run({"kind": "scenario", "preset": "dc-baseline",
                            "seed": 41})


def test_sigterm_drains_subprocess_without_losing_jobs(tmp_path):
    cache_dir = tmp_path / "cache"
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--cache-dir", str(cache_dir), "--max-concurrent", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env, cwd=REPO_ROOT, text=True)
    try:
        listening = json.loads(proc.stdout.readline())["listening"]
        jobs = [{"kind": "sweep", "preset": "dc-baseline", "n_seeds": 6},
                {"kind": "scenario", "preset": "dc-baseline", "seed": 7},
                {"kind": "scenario", "preset": "dc-baseline", "seed": 8}]
        keys = []
        with ServeClient(listening["host"], listening["port"]) as client:
            for job in jobs:
                keys.append(client.submit(job)["key"])
        proc.send_signal(signal.SIGTERM)
        _, err = proc.communicate(timeout=180)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, err

    # no accepted job was lost: each is in the cache or the requeue file
    cache = ResultCache(cache_dir)
    requeue = cache_dir / "spool" / "requeue.jsonl"
    requeued_keys = set()
    if requeue.exists():
        requeued_keys = {normalize_request(json.loads(line)).key()
                         for line in requeue.read_text().splitlines()}
    missing = object()
    for key in keys:
        cached = cache.get("serve.envelope", {"key": key}, missing)
        assert cached is not missing or key in requeued_keys, \
            f"job {key} lost in drain"

    # recovery completes everything; nothing is computed twice
    match = re.search(r"drained: (\{.*\})", err)
    assert match, err
    computed_before = json.loads(match.group(1)).get("serve.computed", 0)
    with ServerHarness(ServeConfig(cache_dir=cache_dir,
                                   max_concurrent=2)) as harness:
        with harness.client() as client:
            for job, key in zip(jobs, keys):
                response = client.submit(job, wait=True)
                assert response["state"] == JobState.DONE
                assert response["key"] == key
            computed_after = client.stats()["counters"].get(
                "serve.computed", 0)
    assert computed_before + computed_after == len(jobs)

"""Integration: the packet-level DES reproduces the fluid dynamics.

Runs the V2 validation scenario at a shorter horizon and asserts shape
agreement — the end-to-end check that the paper's fluid conclusions
carry over to packet granularity.
"""

import pytest

from repro.analysis.validation import fluid_vs_packet
from repro.experiments.v2_fluid_vs_packet import validation_params


@pytest.fixture(scope="module")
def agreement():
    report, series = fluid_vs_packet(validation_params(), duration=0.25,
                                     frame_bits=1500)
    return report, series


class TestShapeAgreement:
    def test_low_normalized_rms_error(self, agreement):
        report, _ = agreement
        assert report.nrmse < 0.15

    def test_peak_agreement(self, agreement):
        report, _ = agreement
        assert report.peak_ratio == pytest.approx(1.0, abs=0.25)

    def test_steady_state_mean(self, agreement):
        report, _ = agreement
        assert report.mean_ratio == pytest.approx(1.0, abs=0.2)

    def test_same_classification(self, agreement):
        report, _ = agreement
        assert report.reference_class == report.candidate_class == "converging"

    def test_period_agreement(self, agreement):
        report, _ = agreement
        assert report.period_ratio is not None
        assert report.period_ratio == pytest.approx(1.0, abs=0.25)

    def test_series_well_formed(self, agreement):
        _, series = agreement
        assert series["fluid_t"].shape == series["fluid_q"].shape
        assert series["packet_t"].shape == series["packet_q"].shape
        assert series["packet_q"].min() >= 0.0

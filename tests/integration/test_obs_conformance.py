"""Cross-engine observability conformance suite.

Every engine narrates its run through the same
:class:`repro.obs.Observability` vocabulary, so the same scenario run on
two engines must tell the same story.  This suite pins down how closely:

**Fluid, reference vs batch** — both engines emit through the shared
:func:`repro.fluid.integrate.record_fluid_obs` helper and both detect
events by root-refinement of the same dynamics, so their event counts
(``region_switch``, ``extremum``, ``converged``) must agree **exactly**,
scenario by scenario.

**Packet, reference vs batched** — the batched engine replays the same
deterministic message semantics in frame-train windows, falling back to
exact scalar stepping around drops and PAUSE.  Frame-boundary effects
shift individual samples, so counts agree within documented tolerances:

* ``bcn`` message counts within 2% (observed: off by ≤ 1 message);
* ``drop`` counts within 12% (drop bursts at a full buffer split
  differently across window boundaries; observed ~9%);
* ``region_switch`` counts within ±2 (derived from the sampled sigma
  history; a switch graze near a sample instant can add or drop one);
* ``pause_on`` counts within ±2, and **within** each engine the PAUSE
  pairing is exact: every ``pause_on`` has a ``pause_off`` exactly
  ``pause_duration`` later, and the switch's ``pauses_sent`` stat is
  ``n_links x pause_on``.

Each packet engine's ``bcn`` event count must equal its own
``bcn_negative + bcn_positive`` stats exactly — events are emitted at
the emission sites, not re-derived.
"""

import pytest

from repro.core.parameters import BCNParams, paper_example_params
from repro.experiments.presets import CASE1, CASE3, CASE1_SLOW
from repro.fluid.batch import simulate_fluid_batch
from repro.fluid.integrate import simulate_fluid
from repro.obs import Observability
from repro.simulation.network import BCNNetworkSimulator

PAUSE_DURATION = 50e-6


def _fluid_counts(p, *, mode, t_max, max_switches=30, x0_frac=-0.5):
    x0 = x0_frac * p.q0
    ref_obs, batch_obs = Observability(), Observability()
    simulate_fluid(p, x0=x0, y0=0.0, t_max=t_max, mode=mode,
                   max_switches=max_switches, obs=ref_obs)
    simulate_fluid_batch(p, [x0], 0.0, t_max=t_max, mode=mode,
                         max_switches=max_switches, obs=batch_obs)
    return ref_obs, batch_obs


def _packet_run(params, engine, duration, **kwargs):
    obs = Observability()
    net = BCNNetworkSimulator(params, engine=engine, obs=obs, **kwargs)
    result = net.run(duration)
    return obs, result


FLUID_SCENARIOS = [
    pytest.param(CASE1, "nonlinear", 40.0, id="case1-nonlinear"),
    pytest.param(CASE3, "nonlinear", 40.0, id="case3-nonlinear"),
    pytest.param(CASE1_SLOW, "nonlinear", 80.0, id="case1-slow-limit-cycle"),
    pytest.param(CASE1, "linearized", 40.0, id="case1-linearized"),
]


@pytest.mark.parametrize("params, mode, t_max", FLUID_SCENARIOS)
def test_fluid_reference_vs_batch_events_exact(params, mode, t_max):
    ref_obs, batch_obs = _fluid_counts(params, mode=mode, t_max=t_max)
    ref, batch = ref_obs.event_counts(), batch_obs.event_counts()
    assert ref == batch
    assert ref["region_switch"] > 0
    # engine tags separate cleanly even though counts coincide
    assert ref_obs.event_counts("fluid.reference") == ref
    assert batch_obs.event_counts("fluid.batch") == batch


def test_fluid_queue_histograms_share_layout_and_agree():
    ref_obs, batch_obs = _fluid_counts(CASE1_SLOW, mode="nonlinear",
                                       t_max=80.0)
    ref = ref_obs.metrics.histograms["queue_frac.fluid.reference"]
    batch = batch_obs.metrics.histograms["queue_frac.fluid.batch"]
    assert ref.edges == batch.edges
    assert ref.count > 0 and batch.count > 0
    # sampling grids differ, so compare the distribution's mean only
    assert ref.mean() == pytest.approx(batch.mean(), rel=0.15)


PACKET_TOL_BCN = 0.02
PACKET_TOL_DROP = 0.12
PACKET_TOL_SWITCH = 2


def _assert_packet_conformance(params, duration, engine="batched",
                               **kwargs):
    ref_obs, ref_res = _packet_run(params, "reference", duration, **kwargs)
    bat_obs, bat_res = _packet_run(params, engine, duration, **kwargs)
    ref, bat = ref_obs.event_counts(), bat_obs.event_counts()

    # events are emitted at the emission sites: exact vs own stats
    assert ref.get("bcn", 0) == ref_res.bcn_negative + ref_res.bcn_positive
    assert bat.get("bcn", 0) == bat_res.bcn_negative + bat_res.bcn_positive
    assert ref.get("drop", 0) == ref_res.dropped_frames
    assert bat.get("drop", 0) == bat_res.dropped_frames

    assert ref["bcn"] == pytest.approx(bat["bcn"], rel=PACKET_TOL_BCN)
    if ref.get("drop", 0) or bat.get("drop", 0):
        assert ref["drop"] == pytest.approx(bat["drop"], rel=PACKET_TOL_DROP)
    assert abs(ref.get("region_switch", 0)
               - bat.get("region_switch", 0)) <= PACKET_TOL_SWITCH
    return (ref_obs, ref_res), (bat_obs, bat_res)


@pytest.mark.parametrize("engine", ["batched", "compiled"])
def test_packet_paper_message_mode_conformance(engine):
    _assert_packet_conformance(paper_example_params(), 0.03, engine=engine)


@pytest.mark.parametrize("engine", ["batched", "compiled"])
def test_packet_small_buffer_drop_storm_conformance(engine):
    params = BCNParams(capacity=1e9, n_flows=10, q0=1e6, buffer_size=4e6,
                       w=2.0, pm=0.1, gi=4.0, gd=1e-5, ru=8e6)
    (ref_obs, _), (bat_obs, _) = _assert_packet_conformance(
        params, 0.02, engine=engine)
    assert ref_obs.event_counts()["drop"] > 100  # the storm actually ran
    assert bat_obs.event_counts()["drop"] > 100


@pytest.mark.parametrize("engine", ["batched", "compiled"])
def test_packet_pause_pairing_conformance(engine):
    base = paper_example_params()
    params = base.with_(q_sc=0.6 * base.buffer_size)
    (ref_obs, ref_res), (bat_obs, bat_res) = _assert_packet_conformance(
        params, 0.03, engine=engine)

    for obs, res, n_links in (
        (ref_obs, ref_res, params.n_flows),
        (bat_obs, bat_res, params.n_flows),
    ):
        on = sorted(obs.trace.of_kind("pause_on"), key=lambda r: r.t)
        off = sorted(obs.trace.of_kind("pause_off"), key=lambda r: r.t)
        assert len(on) > 0
        assert len(on) == len(off)  # exact pairing within an engine
        for start, end in zip(on, off):
            assert end.t - start.t == pytest.approx(PAUSE_DURATION)
        # every excursion fans a PAUSE frame out to every source link
        assert res.pauses == n_links * len(on)

    ref_on = len(ref_obs.trace.of_kind("pause_on"))
    bat_on = len(bat_obs.trace.of_kind("pause_on"))
    # Episode counts agree within 12%: the batched engine commits the
    # in-flight frames that physically land during the first 2*d of a
    # PAUSE (its pause-commit horizon), which can split or merge
    # excursions relative to the reference by a window's worth of lag.
    assert abs(ref_on - bat_on) <= max(2, 0.12 * ref_on)


@pytest.mark.parametrize("engine", ["batched", "compiled"])
def test_packet_queue_histograms_agree(engine):
    ref_obs, _ = _packet_run(paper_example_params(), "reference", 0.03)
    bat_obs, _ = _packet_run(paper_example_params(), engine, 0.03)
    ref = ref_obs.metrics.histograms["queue_frac.packet.reference"]
    bat = bat_obs.metrics.histograms[f"queue_frac.packet.{engine}"]
    assert ref.edges == bat.edges
    assert ref.mean() == pytest.approx(bat.mean(), rel=0.15)


def test_packet_compiled_event_stream_matches_batched_exactly():
    """The compiled engine tells the batched engine's story verbatim:
    same records, same timestamps (multiset — the compiled drop-tail
    fallback replays its events sorted by time, which can swap
    simultaneous events from different sources)."""
    base = paper_example_params()
    params = base.with_(q_sc=0.6 * base.buffer_size)
    bat_obs, bat_res = _packet_run(params, "batched", 0.03)
    com_obs, com_res = _packet_run(params, "compiled", 0.03)

    def stream(obs):
        return sorted((e.kind, e.t, e.node, e.flow, e.value)
                      for e in obs.trace.records)

    assert stream(com_obs) == stream(bat_obs)
    assert com_res.bcn_negative == bat_res.bcn_negative
    assert com_res.bcn_positive == bat_res.bcn_positive
    assert com_res.pauses == bat_res.pauses
    assert com_res.dropped_frames == bat_res.dropped_frames

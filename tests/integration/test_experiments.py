"""Integration: every registered experiment runs and its verdicts pass.

This is the repository's figure-level regression suite: each experiment
encodes the shape claims of one paper figure/table as boolean verdicts.
"""

import numpy as np
import pytest

import repro.experiments  # noqa: F401 — registration side effects
from repro.experiments.base import all_experiments, get_experiment

EXPERIMENT_IDS = sorted(all_experiments())


def _run(experiment_id, **options):
    return get_experiment(experiment_id)(render_plots=False, **options)


@pytest.fixture(scope="module")
def results():
    cache = {}
    for experiment_id in EXPERIMENT_IDS:
        options = {}
        if experiment_id == "v2":
            options["duration"] = 0.25
        if experiment_id == "v6":
            options["duration"] = 0.2
        if experiment_id == "v3":
            options["duration"] = 0.02
        cache[experiment_id] = _run(experiment_id, **options)
    return cache


def test_all_expected_experiments_registered():
    assert set(EXPERIMENT_IDS) == {
        "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        "t1", "v1", "v2", "v3", "v4", "v5", "v6", "d1", "m1", "s1",
    }


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_experiment_verdicts_pass(results, experiment_id):
    result = results[experiment_id]
    assert result.passed, (
        f"{experiment_id} failing verdicts: {result.failing_verdicts()}"
    )


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_experiment_renders(results, experiment_id):
    text = results[experiment_id].render()
    assert experiment_id in text
    assert "FAIL" not in text


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_series_are_finite(results, experiment_id):
    for name, col in results[experiment_id].series.items():
        arr = np.asarray(col, dtype=float)
        assert np.isfinite(arr).all(), f"{experiment_id}:{name} has non-finite"


def test_save_series_writes_csv(results, tmp_path):
    path = results["fig6"].save_series(tmp_path)
    assert path is not None and path.exists()
    header = path.read_text().splitlines()[0]
    assert "t" in header and "x" in header


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        get_experiment("fig99")


class TestHeadlineNumbers:
    """The quantitative anchors of the reproduction."""

    def test_t1_required_buffer(self, results):
        rows = {row[0]: row for row in results["t1"].table_rows}
        reproduced = rows["required buffer (Mbit)"][2]
        assert reproduced == pytest.approx(13.81, abs=0.05)

    def test_v1_soundness(self, results):
        assert results["v1"].verdicts["bound_never_exceeded"]

    def test_v2_close_agreement(self, results):
        rows = {row[0]: row[1] for row in results["v2"].table_rows}
        assert rows["nrmse"] < 0.15

    def test_fig7_no_interior_cycle(self, results):
        assert results["fig7"].verdicts["no_interior_limit_cycle"]

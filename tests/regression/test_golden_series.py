"""Golden-series regression suite.

Every registered experiment that emits series has its figure data
checked into ``series_out/<id>.csv`` (the "golden" CSVs, regenerated
with ``python -m repro experiments --csv series_out`` — see
EXPERIMENTS.md, "Golden series").  This suite re-runs each experiment
through the real ``save_series`` writer and compares the result to the
golden file column by column, so execution-path refactors (the parallel
runner, caching, integrator changes) cannot silently change the
reproduced figures.

Tolerances
----------
All experiments are deterministic, so the default tolerance is tight
(``rtol=1e-7, atol=1e-12`` after the writer's ``.10g`` rounding — loose
enough to absorb BLAS/libm variation across platforms, tight enough to
catch any real change of dynamics).  Columns that accumulate many
integration steps may be given a documented per-column override in
``TOLERANCES``; none currently needs one.  NaN padding (ragged series)
must match positionally.
"""

from pathlib import Path

import numpy as np
import pytest

import repro.experiments  # noqa: F401 — registration side effects
from repro.experiments.base import all_experiments, get_experiment

ROOT = Path(__file__).resolve().parents[2]
GOLDEN_DIR = ROOT / "series_out"
GOLDEN_IDS = sorted(path.stem for path in GOLDEN_DIR.glob("*.csv"))

DEFAULT_RTOL = 1e-7
DEFAULT_ATOL = 1e-12

#: Per-experiment, per-column (rtol, atol) overrides.  Add an entry only
#: with a comment explaining which numerical effect it absorbs.
TOLERANCES: dict[str, dict[str, tuple[float, float]]] = {}

_results: dict[str, object] = {}


def result_for(experiment_id: str):
    """Run each experiment at most once for the whole suite."""
    if experiment_id not in _results:
        _results[experiment_id] = get_experiment(experiment_id)(
            render_plots=False
        )
    return _results[experiment_id]


def load_series_csv(path: Path) -> dict[str, np.ndarray]:
    lines = path.read_text().strip().splitlines()
    names = lines[0].split(",")
    rows = [[float(cell) if cell else np.nan for cell in line.split(",")]
            for line in lines[1:]]
    data = np.array(rows, dtype=float)
    return {name: data[:, i] for i, name in enumerate(names)}


def test_golden_directory_is_populated():
    assert GOLDEN_IDS, f"no golden CSVs found in {GOLDEN_DIR}"


def test_every_series_experiment_has_a_golden():
    """A new experiment with series must check in its golden CSV."""
    with_series = sorted(
        experiment_id
        for experiment_id in all_experiments()
        if result_for(experiment_id).series
    )
    missing = [eid for eid in with_series if eid not in GOLDEN_IDS]
    assert not missing, (
        f"experiments {missing} emit series but have no golden CSV; "
        "regenerate with `python -m repro experiments --csv series_out` "
        "and review the diff (see EXPERIMENTS.md)"
    )


@pytest.mark.parametrize("experiment_id", GOLDEN_IDS)
def test_series_matches_golden(experiment_id, tmp_path):
    result = result_for(experiment_id)
    fresh_path = result.save_series(tmp_path)
    assert fresh_path is not None, (
        f"{experiment_id} has a golden CSV but produced no series"
    )

    fresh = load_series_csv(fresh_path)
    golden = load_series_csv(GOLDEN_DIR / f"{experiment_id}.csv")

    assert list(fresh) == list(golden), (
        f"{experiment_id}: column set/order changed "
        f"({list(fresh)} vs golden {list(golden)})"
    )
    overrides = TOLERANCES.get(experiment_id, {})
    for column in golden:
        g, f = golden[column], fresh[column]
        assert f.shape == g.shape, (
            f"{experiment_id}.{column}: length {f.shape} vs golden {g.shape}"
        )
        assert np.array_equal(np.isnan(g), np.isnan(f)), (
            f"{experiment_id}.{column}: NaN padding moved"
        )
        rtol, atol = overrides.get(column, (DEFAULT_RTOL, DEFAULT_ATOL))
        mask = ~np.isnan(g)
        np.testing.assert_allclose(
            f[mask], g[mask], rtol=rtol, atol=atol,
            err_msg=(
                f"{experiment_id}.{column} drifted from the golden series; "
                "if the change is intended, re-bless via "
                "`python -m repro experiments --csv series_out`"
            ),
        )

#!/usr/bin/env python
"""Condense pytest-benchmark JSON into the committed ``BENCH_fluid.json``.

Usage::

    python -m pytest benchmarks/test_batch_fluid.py \
        --benchmark-json bench_raw.json
    python tools/bench_report.py bench_raw.json -o BENCH_fluid.json \
        [--min-speedup 1.0]

The raw pytest-benchmark dump is noisy and machine-heavy; the report
keeps what the perf trajectory needs:

* per-kernel mean/stddev wall time and, for workloads that tag
  ``extra_info["trajectory_seconds"]``, the throughput figure
  **ns per integrated trajectory-second**;
* per-workload speedups, pairing ``engine="batch"`` against
  ``engine="reference"`` rows that share ``extra_info["workload"]``.

Exits non-zero when any workload's batch engine is slower than
``--min-speedup`` × the reference, which is how the CI ``bench`` job
fails on a regression while absorbing shared-runner noise (the
committed report itself is regenerated on quiet hardware).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["build_report", "main"]


def _kernel_entry(bench: dict) -> dict:
    stats = bench["stats"]
    extra = dict(bench.get("extra_info", {}))
    entry = {
        "mean_s": stats["mean"],
        "stddev_s": stats["stddev"],
        "rounds": stats["rounds"],
        "extra_info": extra,
    }
    traj_seconds = extra.get("trajectory_seconds")
    if traj_seconds:
        entry["ns_per_trajectory_second"] = stats["mean"] / traj_seconds * 1e9
    return entry


def build_report(raw: dict) -> dict:
    """Build the condensed report dict from a pytest-benchmark dump."""
    kernels = {}
    by_workload: dict[str, dict[str, dict]] = {}
    for bench in raw.get("benchmarks", []):
        name = bench["name"]
        entry = _kernel_entry(bench)
        kernels[name] = entry
        extra = entry["extra_info"]
        workload, engine = extra.get("workload"), extra.get("engine")
        if workload and engine:
            by_workload.setdefault(workload, {})[engine] = entry

    speedups = {}
    for workload, engines in sorted(by_workload.items()):
        if "batch" in engines and "reference" in engines:
            batch_s = engines["batch"]["mean_s"]
            reference_s = engines["reference"]["mean_s"]
            speedups[workload] = {
                "batch_s": batch_s,
                "reference_s": reference_s,
                "speedup": reference_s / batch_s,
            }

    machine = raw.get("machine_info", {})
    return {
        "generated_by": "tools/bench_report.py",
        "source_datetime": raw.get("datetime"),
        "machine": {
            key: machine.get(key)
            for key in ("node", "processor", "machine", "python_version",
                        "cpu")
            if key in machine
        },
        "kernels": kernels,
        "speedups": speedups,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("raw", type=Path,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("-o", "--output", type=Path,
                        default=Path("BENCH_fluid.json"))
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail when any workload's batch/reference "
                             "speedup drops below this (default: 1.0)")
    args = parser.parse_args(argv)

    report = build_report(json.loads(args.raw.read_text()))
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    failed = False
    for workload, row in report["speedups"].items():
        verdict = "ok"
        if row["speedup"] < args.min_speedup:
            verdict = f"REGRESSION (< {args.min_speedup:g}x)"
            failed = True
        print(f"{workload}: batch {row['batch_s']:.4f}s vs reference "
              f"{row['reference_s']:.4f}s -> {row['speedup']:.2f}x {verdict}")
    if not report["speedups"]:
        print("warning: no batch/reference workload pairs found",
              file=sys.stderr)
    print(f"wrote {args.output}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Condense pytest-benchmark JSON into a committed ``BENCH_*.json``.

Usage::

    python -m pytest benchmarks/test_batch_fluid.py \
        --benchmark-json bench_raw.json
    python tools/bench_report.py bench_raw.json -o BENCH_fluid.json \
        [--min-speedup 1.0]

Several raw dumps can be merged into one report (kernel entries from
later files never clobber earlier ones; duplicate benchmark names keep
the first occurrence and warn)::

    python tools/bench_report.py fluid_raw.json packet_raw.json \
        -o BENCH_all.json

The raw pytest-benchmark dump is noisy and machine-heavy; the report
keeps what the perf trajectory needs:

* per-kernel mean/stddev wall time and, for workloads that tag
  ``extra_info["trajectory_seconds"]`` (fluid integrations) or
  ``extra_info["simulated_seconds"]`` (packet-level runs), the
  throughput figures **ns per integrated trajectory-second** / **ns per
  simulated second**;
* per-workload speedups, pairing the fast engine (``engine="batch"``
  for the fluid kernel, ``engine="batched"`` for the packet engine,
  ``engine="compiled"`` for the compiled kernel backend,
  ``engine="warm"`` for the job server's cached path)
  against ``engine="reference"`` rows that share
  ``extra_info["workload"]``.  Rows with other engine tags (e.g. the
  ``heap``/``calendar`` event-kernel microbenches) are reported but
  never gated;
* per-workload **event counts** for benchmarks that tag
  ``extra_info["event_counts"]`` (the observability layer's per-kind
  totals), so BENCH JSONs record what the run *did*, not just how fast;
* per-workload **observability overheads** for benchmarks that tag
  ``extra_info["obs_overhead"]`` (interleaved per-variant minimum wall
  times, keys ``baseline_s`` / ``obs_disabled_s`` / ``obs_enabled_s``):
  the relative cost of each variant against the baseline.  The variants
  are interleaved inside one benchmark because separate per-variant
  blocks drift apart by far more than the 2% being gated.

Exits non-zero when any workload's fast engine is slower than
``--min-speedup`` × the reference, or (with ``--max-overhead``) when
any workload's ``obs_disabled`` variant exceeds the baseline by more
than that fraction — how the CI ``bench`` job fails on a regression
while absorbing shared-runner noise (the committed report itself is
regenerated on quiet hardware).

``--validate`` flips the tool into schema-check mode: the positional
arguments are then committed ``BENCH_*.json`` reports, each checked
against the schema this script declares (required keys, value types,
engine tags, derived-figure consistency, event kinds against
``repro.obs.EVENT_KINDS`` when importable)::

    python tools/bench_report.py --validate BENCH_*.json

This is the CI guard against hand-edited or stale reports: a committed
report whose ``speedup`` no longer matches ``reference_s / batch_s``,
or that records an unknown engine tag or event kind, fails the lint
job rather than silently mis-documenting the perf trajectory.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["build_report", "main"]

#: engine tags paired against "reference" for the speedup/gate section
#: (listed fastest-first: when a workload carries several fast rows the
#: earliest present tag is the one gated)
_FAST_ENGINES = ("sharded", "compiled", "batch", "batched", "warm")


def _kernel_entry(bench: dict) -> dict:
    stats = bench["stats"]
    extra = dict(bench.get("extra_info", {}))
    entry = {
        "mean_s": stats["mean"],
        "min_s": stats["min"],
        "stddev_s": stats["stddev"],
        "rounds": stats["rounds"],
        "extra_info": extra,
    }
    traj_seconds = extra.get("trajectory_seconds")
    if traj_seconds:
        entry["ns_per_trajectory_second"] = stats["mean"] / traj_seconds * 1e9
    sim_seconds = extra.get("simulated_seconds")
    if sim_seconds:
        entry["ns_per_simulated_second"] = stats["mean"] / sim_seconds * 1e9
    return entry


def build_report(raws: dict | list[dict]) -> dict:
    """Build the condensed report from one or more benchmark dumps."""
    if isinstance(raws, dict):
        raws = [raws]
    kernels = {}
    by_workload: dict[str, dict[str, dict]] = {}
    overheads: dict[str, dict[str, float]] = {}
    events: dict[str, dict[str, dict]] = {}
    for raw in raws:
        for bench in raw.get("benchmarks", []):
            name = bench["name"]
            if name in kernels:
                print(f"warning: duplicate benchmark {name!r}; "
                      "keeping the first occurrence", file=sys.stderr)
                continue
            entry = _kernel_entry(bench)
            kernels[name] = entry
            extra = entry["extra_info"]
            workload, engine = extra.get("workload"), extra.get("engine")
            if workload and engine:
                by_workload.setdefault(workload, {})[engine] = entry
            counts = extra.get("event_counts")
            if workload and counts:
                events.setdefault(workload, {})[engine or "-"] = counts
            mins = extra.get("obs_overhead")
            if workload and mins and "baseline_s" in mins:
                row = {"baseline_s": mins["baseline_s"]}
                for key, wall in sorted(mins.items()):
                    if key == "baseline_s" or not key.endswith("_s"):
                        continue
                    row[key] = wall
                    row[f"{key[:-2]}_overhead"] = (
                        wall / mins["baseline_s"] - 1.0)
                overheads[workload] = row

    speedups = {}
    for workload, engines in sorted(by_workload.items()):
        fast_key = next((k for k in _FAST_ENGINES if k in engines), None)
        if fast_key and "reference" in engines:
            fast_s = engines[fast_key]["mean_s"]
            reference_s = engines["reference"]["mean_s"]
            speedups[workload] = {
                "batch_s": fast_s,
                "fast_engine": fast_key,
                "reference_s": reference_s,
                "speedup": reference_s / fast_s,
            }

    first = raws[0] if raws else {}
    machine = first.get("machine_info", {})
    return {
        "generated_by": "tools/bench_report.py",
        "source_datetime": first.get("datetime"),
        "machine": {
            key: machine.get(key)
            for key in ("node", "processor", "machine", "python_version",
                        "cpu")
            if key in machine
        },
        "kernels": kernels,
        "speedups": speedups,
        "events": events,
        "overheads": overheads,
    }


#: Required numeric fields of every ``kernels`` entry.
_KERNEL_FIELDS = ("mean_s", "min_s", "stddev_s", "rounds")

#: Required fields of every ``speedups`` entry.
_SPEEDUP_FIELDS = ("batch_s", "fast_engine", "reference_s", "speedup")

#: Relative tolerance for derived figures recorded in a report.
_DERIVED_RTOL = 1e-6


def _event_kinds() -> frozenset[str] | None:
    """The registered event-kind vocabulary, or None off-tree."""
    try:
        from repro.obs.trace import EVENT_KINDS
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
        try:
            from repro.obs.trace import EVENT_KINDS
        except ImportError:
            return None
    return EVENT_KINDS


def _drifted(recorded: float, expected: float) -> bool:
    return abs(recorded - expected) > _DERIVED_RTOL * max(
        abs(recorded), abs(expected), 1e-12)


def validate_report(doc: object, label: str = "report") -> list[str]:
    """Check one committed report against the declared schema.

    Returns human-readable problem strings (empty when the report is
    schema-clean and internally consistent).
    """
    problems: list[str] = []

    def err(message: str) -> None:
        problems.append(f"{label}: {message}")

    if not isinstance(doc, dict):
        return [f"{label}: top level must be a JSON object"]
    # events/overheads arrived later; reports generated before those
    # sections existed stay valid with them absent.
    for key in ("generated_by", "kernels", "speedups"):
        if key not in doc:
            err(f"missing required key {key!r}")
    if problems:
        return problems
    if doc["generated_by"] != "tools/bench_report.py":
        err(f"generated_by is {doc['generated_by']!r}, not this tool")

    kernels = doc["kernels"]
    if not isinstance(kernels, dict):
        err("kernels must be an object")
        kernels = {}
    for name, entry in kernels.items():
        if not isinstance(entry, dict):
            err(f"kernels[{name!r}] must be an object")
            continue
        for field in _KERNEL_FIELDS:
            value = entry.get(field)
            # min_s arrived after the first committed reports; absent
            # or null stays valid there.
            if value is None and field == "min_s":
                continue
            if not isinstance(value, (int, float)) or value < 0:
                err(f"kernels[{name!r}].{field} must be a non-negative "
                    f"number, got {value!r}")
        if not isinstance(entry.get("extra_info"), dict):
            err(f"kernels[{name!r}].extra_info must be an object")

    speedups = doc["speedups"]
    if not isinstance(speedups, dict):
        err("speedups must be an object")
        speedups = {}
    for workload, row in speedups.items():
        if not isinstance(row, dict):
            err(f"speedups[{workload!r}] must be an object")
            continue
        # fast_engine arrived after the first committed reports; the
        # legacy rows implicitly gated batch vs reference.
        missing = [f for f in _SPEEDUP_FIELDS
                   if f not in row and f != "fast_engine"]
        if missing:
            err(f"speedups[{workload!r}] missing {', '.join(missing)}")
            continue
        if "fast_engine" in row and row["fast_engine"] not in _FAST_ENGINES:
            err(f"speedups[{workload!r}].fast_engine "
                f"{row['fast_engine']!r} is not one of "
                f"{', '.join(_FAST_ENGINES)}")
        batch_s, reference_s = row["batch_s"], row["reference_s"]
        if not (isinstance(batch_s, (int, float)) and batch_s > 0
                and isinstance(reference_s, (int, float))
                and reference_s > 0):
            err(f"speedups[{workload!r}] wall times must be positive "
                "numbers")
            continue
        if _drifted(row["speedup"], reference_s / batch_s):
            err(f"speedups[{workload!r}].speedup {row['speedup']:.6g} "
                f"drifted from reference_s/batch_s = "
                f"{reference_s / batch_s:.6g}; regenerate the report")

    events = doc.get("events", {})
    kinds = _event_kinds()
    if not isinstance(events, dict):
        err("events must be an object")
        events = {}
    for workload, engines in events.items():
        if not isinstance(engines, dict):
            err(f"events[{workload!r}] must be an object")
            continue
        for engine, counts in engines.items():
            if not isinstance(counts, dict):
                err(f"events[{workload!r}][{engine!r}] must be an object")
                continue
            for kind, count in counts.items():
                if not isinstance(count, int) or count < 0:
                    err(f"events[{workload!r}][{engine!r}][{kind!r}] "
                        f"must be a non-negative integer, got {count!r}")
                if kinds is not None and kind not in kinds:
                    err(f"events[{workload!r}][{engine!r}] records "
                        f"unknown event kind {kind!r} (not in "
                        "repro.obs.EVENT_KINDS)")

    overheads = doc.get("overheads", {})
    if not isinstance(overheads, dict):
        err("overheads must be an object")
        overheads = {}
    for workload, row in overheads.items():
        if not isinstance(row, dict):
            err(f"overheads[{workload!r}] must be an object")
            continue
        baseline = row.get("baseline_s")
        if not isinstance(baseline, (int, float)) or baseline <= 0:
            err(f"overheads[{workload!r}].baseline_s must be a positive "
                f"number, got {baseline!r}")
            continue
        for key, wall in row.items():
            if key == "baseline_s" or not key.endswith("_s"):
                continue
            overhead_key = f"{key[:-2]}_overhead"
            if overhead_key not in row:
                err(f"overheads[{workload!r}] has {key} but no "
                    f"{overhead_key}")
                continue
            if _drifted(row[overhead_key], wall / baseline - 1.0):
                err(f"overheads[{workload!r}].{overhead_key} "
                    f"{row[overhead_key]:.6g} drifted from "
                    f"{key}/baseline_s - 1 = {wall / baseline - 1.0:.6g}; "
                    "regenerate the report")

    return problems


def _cmd_validate(paths: list[Path]) -> int:
    failed = False
    for path in paths:
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            failed = True
            continue
        problems = validate_report(doc, label=str(path))
        for problem in problems:
            print(problem, file=sys.stderr)
        if problems:
            failed = True
        else:
            n = len(doc.get("kernels", {}))
            print(f"{path}: ok ({n} kernel entries, "
                  f"{len(doc.get('speedups', {}))} gated workloads)")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("raw", type=Path, nargs="+",
                        help="pytest-benchmark --benchmark-json output(s); "
                             "multiple files merge into one report")
    parser.add_argument("-o", "--output", type=Path,
                        default=Path("BENCH_fluid.json"))
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail when any workload's fast/reference "
                             "speedup drops below this (default: 1.0)")
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail when any workload's obs_disabled "
                             "variant exceeds the baseline by more than "
                             "this fraction (e.g. 0.02 for 2%%)")
    parser.add_argument("--validate", action="store_true",
                        help="treat the positional arguments as "
                             "committed BENCH_*.json reports and check "
                             "them against the declared schema")
    args = parser.parse_args(argv)

    if args.validate:
        return _cmd_validate(args.raw)

    report = build_report([json.loads(p.read_text()) for p in args.raw])
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    failed = False
    for workload, row in report["speedups"].items():
        verdict = "ok"
        if row["speedup"] < args.min_speedup:
            verdict = f"REGRESSION (< {args.min_speedup:g}x)"
            failed = True
        print(f"{workload}: {row['fast_engine']} {row['batch_s']:.4f}s vs "
              f"reference {row['reference_s']:.4f}s -> "
              f"{row['speedup']:.2f}x {verdict}")
    if not report["speedups"]:
        print("warning: no fast/reference workload pairs found",
              file=sys.stderr)
    for workload, row in report["overheads"].items():
        for variant in sorted(k[:-len("_overhead")] for k in row
                              if k.endswith("_overhead")):
            overhead = row[f"{variant}_overhead"]
            verdict = ""
            if (args.max_overhead is not None and variant == "obs_disabled"
                    and overhead > args.max_overhead):
                verdict = f" REGRESSION (> {args.max_overhead:.1%})"
                failed = True
            print(f"{workload}: {variant} {row[f'{variant}_s']:.4f}s vs "
                  f"baseline {row['baseline_s']:.4f}s -> "
                  f"{overhead:+.2%} overhead{verdict}")
    if args.max_overhead is not None and not report["overheads"]:
        print("warning: --max-overhead given but no variant-tagged "
              "workloads found", file=sys.stderr)
    print(f"wrote {args.output}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Bench C — the compiled kernel backend vs the batched numpy engine.

Paired workloads gating the ``engine="compiled"`` /
``fluid_method="compiled"`` hot paths against the *batched* engine
(itself already ≥ 5× over the event-driven reference, see
``BENCH_packet.json``), i.e. the gate here is compiled-vs-vectorized,
not compiled-vs-interpreted:

* **compiled_dumbbell_fluid_vs_packet** — the V2 validation
  configuration (fluid-exact regulator, Bernoulli sampling, no PAUSE)
  on a 0.2 s horizon, ``engine="compiled"`` against ``engine="batched"``
  tagged as the reference row.  Exercises the full window pipeline:
  pacing plan/commit, train merge, packet plan/commit and the
  struct-of-array message kernel, all through the bound-closure API.
* **compiled_portrait_bundle** — a 64-trajectory phase-portrait bundle
  (CASE1, nonlinear mode, 40 s horizon) through the batch fluid RK4
  kernel, ``simulate_fluid_batch_compiled`` against the numpy
  integrator.  An ungated ``compiled-f32`` row records the float32
  variant for the trajectory-bundle use case where ~1e-7 relative
  error is acceptable.

Both compiled rows tag ``extra_info["event_counts"]`` (packet) or the
bundle's switch totals (fluid) so the committed ``BENCH_compiled.json``
records what the workloads did.  The whole module skips on the
pure-numpy fallback tier, where ``engine="compiled"`` simply delegates
to the batched engine and a speedup gate would be meaningless.

Regenerate the committed report with::

    python -m pytest benchmarks/test_compiled_kernels.py \
        --benchmark-json /tmp/compiled_raw.json
    python tools/bench_report.py /tmp/compiled_raw.json \
        -o BENCH_compiled.json --min-speedup 3.0
"""

import numpy as np
import pytest

from repro.experiments.presets import CASE1
from repro.experiments.v2_fluid_vs_packet import validation_params
from repro.fluid.batch import simulate_fluid_batch
from repro.kernels import get_backend, simulate_fluid_batch_compiled
from repro.obs import Observability
from repro.simulation.network import BCNNetworkSimulator

pytestmark = pytest.mark.skipif(
    not get_backend().compiled,
    reason="no compiled backend (numba, or cffi + C compiler) available",
)

V2_DURATION = 0.2

V2_KWARGS = dict(
    frame_bits=1500,
    regulator_mode="fluid-exact",
    fb_bits=None,
    require_association=False,
    positive_only_below_q0=False,
    random_sampling=True,
    enable_pause=False,
)

FLUID_X0 = np.linspace(-0.9, 0.9, 64) * CASE1.q0
FLUID_KWARGS = dict(t_max=40.0, mode="nonlinear", max_switches=200)


def _run_v2(engine, obs=None):
    net = BCNNetworkSimulator(validation_params(), engine=engine, obs=obs,
                              **V2_KWARGS)
    return net.run(V2_DURATION)


def _event_counts(engine):
    obs = Observability()
    _run_v2(engine, obs)
    return obs.event_counts()


# -- packet window pipeline -------------------------------------------------


def test_bench_dumbbell_compiled(benchmark):
    _run_v2("compiled")  # warm the backend outside the timed region
    res = benchmark.pedantic(lambda: _run_v2("compiled"),
                             rounds=5, iterations=1)
    benchmark.extra_info.update(
        workload="compiled_dumbbell_fluid_vs_packet", engine="compiled",
        simulated_seconds=V2_DURATION,
        kernel_backend=get_backend().name,
        event_counts=_event_counts("compiled"))
    assert res.forwarded_frames > 0
    assert 0.9 <= res.utilization() <= 1.0 + 1e-9


def test_bench_dumbbell_batched_baseline(benchmark):
    res = benchmark.pedantic(lambda: _run_v2("batched"),
                             rounds=5, iterations=1)
    benchmark.extra_info.update(
        workload="compiled_dumbbell_fluid_vs_packet", engine="reference",
        simulated_seconds=V2_DURATION)
    assert res.forwarded_frames > 0


# -- batch fluid RK4 kernel -------------------------------------------------


def _fluid_numpy():
    return simulate_fluid_batch(CASE1, FLUID_X0, 0.0,
                                fluid_method="numpy", **FLUID_KWARGS)


def test_bench_portrait_bundle_compiled(benchmark):
    simulate_fluid_batch_compiled(CASE1, FLUID_X0, 0.0, **FLUID_KWARGS)
    res = benchmark.pedantic(
        lambda: simulate_fluid_batch_compiled(CASE1, FLUID_X0, 0.0,
                                              **FLUID_KWARGS),
        rounds=5, iterations=1)
    benchmark.extra_info.update(
        workload="compiled_portrait_bundle", engine="compiled",
        trajectory_seconds=40.0 * FLUID_X0.size,
        kernel_backend=get_backend().name,
        switch_total=int(res.switch_counts.sum()),
        converged=int(res.converged.sum()))
    assert res.x.shape[1] == FLUID_X0.size


def test_bench_portrait_bundle_numpy_baseline(benchmark):
    res = benchmark.pedantic(_fluid_numpy, rounds=3, iterations=1)
    benchmark.extra_info.update(
        workload="compiled_portrait_bundle", engine="reference",
        trajectory_seconds=40.0 * FLUID_X0.size)
    assert res.x.shape[1] == FLUID_X0.size


def test_bench_portrait_bundle_float32(benchmark):
    # Ungated: float32 trades ~1e-7 relative error for extra throughput;
    # the row documents the trade, the gate stays on the exact variant.
    simulate_fluid_batch_compiled(CASE1, FLUID_X0, 0.0,
                                  precision="float32", **FLUID_KWARGS)
    res = benchmark.pedantic(
        lambda: simulate_fluid_batch_compiled(CASE1, FLUID_X0, 0.0,
                                              precision="float32",
                                              **FLUID_KWARGS),
        rounds=5, iterations=1)
    benchmark.extra_info.update(
        workload="compiled_portrait_bundle_f32", engine="compiled-f32",
        trajectory_seconds=40.0 * FLUID_X0.size,
        kernel_backend=get_backend().name)
    assert res.x.dtype == np.float32

"""Bench V6 — heterogeneous sources vs the homogeneous fluid model."""

from conftest import run_experiment_benchmark


def test_v6_heterogeneity(benchmark):
    result = run_experiment_benchmark(benchmark, "v6", duration=0.2)
    by_kind = {row[0]: row for row in result.table_rows}
    assert by_kind["none"][1] < 0.2  # baseline nrmse

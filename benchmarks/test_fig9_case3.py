"""Bench F9 — regenerate Fig. 9 (Case 3: no overshoot past q0)."""

from conftest import run_experiment_benchmark


def test_fig9_case3(benchmark):
    result = run_experiment_benchmark(benchmark, "fig9", rounds=3)
    rows = {row[0]: row[1] for row in result.table_rows}
    assert rows["max x (should be <= 0)"] <= 0.0

"""Bench O — observability overhead on the committed macro workloads.

Each workload from the committed BENCH reports runs in three variants:

* **baseline** — the exact call the committed bench makes (no ``obs``
  argument at all);
* **obs_disabled** — ``obs=Observability.disabled()``: the handle is
  passed but every consumer stores it as ``None``, so this measures the
  cost of the plumbing (the extra kwarg and the ``is not None`` checks
  on the hot paths);
* **obs_enabled** — a live :class:`~repro.obs.Observability` collecting
  metrics, spans and the full event trace.

The three variants are timed **interleaved inside one test** (round-
robin, compared on per-variant minimum wall time) rather than as one
pytest-benchmark block per variant: block-per-variant structure is
exposed to scheduler/thermal drift between blocks, which on shared
runners swamps the ~0% effect being measured.  The interleaved minimums
are tagged as ``extra_info["obs_overhead"]``; ``tools/bench_report.py``
folds them into the report's ``overheads`` section and, with
``--max-overhead``, fails when the ``obs_disabled`` variant exceeds the
baseline by more than the given fraction.  The committed
``BENCH_obs.json`` must show the disabled path within 2%; the CI gate
is looser to absorb residual noise.

Each test also tags ``extra_info["event_counts"]`` from an enabled run
so the report records what the workload did.
"""

import time

import numpy as np

from repro.core.parameters import paper_example_params
from repro.experiments.presets import CASE1_SLOW
from repro.fluid.batch import simulate_fluid_batch
from repro.obs import Observability
from repro.simulation.network import BCNNetworkSimulator

ROUNDS = 9

# portrait_bundle workload, exactly as benchmarks/test_batch_fluid.py
N_ORBITS = 64
T_MAX = 20.0
MAX_SWITCHES = 12

# dumbbell_message_mode workload, exactly as test_batched_packet.py
MSG_DURATION = 0.03


def _run_bundle(obs=None):
    p = CASE1_SLOW
    x0 = np.linspace(-0.9, -0.1, N_ORBITS) * p.q0
    kwargs = {} if obs is None else {"obs": obs}
    return simulate_fluid_batch(p, x0, 0.0, t_max=T_MAX,
                                max_switches=MAX_SWITCHES, **kwargs)


def _run_message(obs=None):
    kwargs = {} if obs is None else {"obs": obs}
    net = BCNNetworkSimulator(paper_example_params(), engine="batched",
                              **kwargs)
    return net.run(MSG_DURATION)


def _interleaved_mins(run, rounds=ROUNDS):
    """Round-robin the three variants, returning per-variant min walls."""
    variants = {
        "baseline": lambda: run(),
        "obs_disabled": lambda: run(Observability.disabled()),
        "obs_enabled": lambda: run(Observability()),
    }
    run()  # warm up
    mins = dict.fromkeys(variants, float("inf"))
    for _ in range(rounds):
        for name, call in variants.items():
            t0 = time.perf_counter()
            call()
            mins[name] = min(mins[name], time.perf_counter() - t0)
    return {f"{name}_s": wall for name, wall in mins.items()}


def _tag(benchmark, workload, run, rounds=ROUNDS):
    obs = Observability()
    run(obs)
    benchmark.extra_info.update(
        workload=workload,
        obs_overhead=_interleaved_mins(run, rounds),
        event_counts=obs.event_counts(),
    )


def test_bench_obs_bundle(benchmark):
    res = benchmark.pedantic(_run_bundle, rounds=3, iterations=1)
    _tag(benchmark, "portrait_bundle", _run_bundle)
    assert res.n_rows == N_ORBITS
    counts = benchmark.extra_info["event_counts"]
    assert counts["region_switch"] > 0


def test_bench_obs_message(benchmark):
    res = benchmark.pedantic(_run_message, rounds=3, iterations=1)
    # the 15 ms workload needs more rounds for its minimums to settle
    _tag(benchmark, "dumbbell_message_mode", _run_message, rounds=40)
    assert res.bcn_negative > 0
    counts = benchmark.extra_info["event_counts"]
    assert counts["bcn"] == res.bcn_negative + res.bcn_positive


def test_obs_disabled_overhead_guard():
    """Assert the disabled path costs nothing beyond CI noise margin.

    The true disabled-path cost is one ``is not None`` check per run
    (the handle is stored as ``None`` by every consumer), so the
    tolerance here is pure noise margin — an accidentally-live
    collection path costs well over 10% on this workload and trips the
    guard.
    """
    mins = _interleaved_mins(_run_message)
    ratio = mins["obs_disabled_s"] / mins["baseline_s"]
    assert ratio <= 1.10, f"obs-disabled min overhead {ratio - 1:+.1%}"

"""Bench F8 — regenerate Fig. 8 (Case 2: single overshoot, asymptote)."""

from conftest import run_experiment_benchmark


def test_fig8_case2(benchmark):
    result = run_experiment_benchmark(benchmark, "fig8", rounds=3)
    rows = {row[0]: row for row in result.table_rows}
    assert rows["peak max2{x}"][3] < 1e-9  # eq. (38)

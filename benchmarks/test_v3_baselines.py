"""Bench V3 — BCN vs QCN vs E2CM vs FERA vs binary AIMD."""

from conftest import run_experiment_benchmark


def test_v3_baselines(benchmark):
    result = run_experiment_benchmark(benchmark, "v3", duration=0.02)
    schemes = {row[0] for row in result.table_rows}
    assert schemes == {"bcn", "qcn", "e2cm", "fera", "aimd"}

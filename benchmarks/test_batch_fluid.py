"""Bench B — the vectorized batch fluid kernel vs the solve_ivp reference.

Two paired workloads, each timed with the batch kernel and with the
per-trajectory ``solve_ivp`` path it replaces:

* **portrait_bundle** — a fig4-style bundle of 64 orbits (the ISSUE's
  macrobenchmark; the committed ``BENCH_fluid.json`` must show ≥ 5×);
* **return_map_scan** — the 25-ordinate bracket scan behind
  ``find_limit_cycle``.

Every test tags ``benchmark.extra_info`` with ``workload``/``engine``
and the integrated ``trajectory_seconds``; ``tools/bench_report.py``
pairs the engines per workload, computes ns per trajectory-second and
the speedup, and fails when the batch kernel is slower than the
reference (``--min-speedup``, CI default 1.0 to absorb runner noise —
regenerate the committed report on quiet hardware).
"""

import numpy as np

from repro.core.limit_cycle import return_map
from repro.experiments.presets import CASE1_SLOW
from repro.fluid.batch import batch_return_map, simulate_fluid_batch
from repro.fluid.integrate import simulate_fluid

# fig4-style macro workload: one bundle of Case-1 orbits
N_ORBITS = 64
T_MAX = 20.0
MAX_SWITCHES = 12

# limit-cycle bracket-scan workload (find_limit_cycle's default grid)
N_ORDINATES = 25


def _bundle_starts(p):
    return np.linspace(-0.9, -0.1, N_ORBITS) * p.q0


def test_bench_portrait_bundle_batch(benchmark):
    p = CASE1_SLOW
    x0 = _bundle_starts(p)

    result = benchmark.pedantic(
        lambda: simulate_fluid_batch(
            p, x0, 0.0, t_max=T_MAX, max_switches=MAX_SWITCHES),
        rounds=3, iterations=1)
    benchmark.extra_info.update(
        workload="portrait_bundle", engine="batch",
        n_orbits=N_ORBITS, trajectory_seconds=N_ORBITS * T_MAX)
    assert result.n_rows == N_ORBITS
    assert int(result.switch_counts.min()) > 0


def test_bench_portrait_bundle_reference(benchmark):
    p = CASE1_SLOW
    x0 = _bundle_starts(p)

    def run():
        return [
            simulate_fluid(p, x0=x, y0=0.0, t_max=T_MAX,
                           max_switches=MAX_SWITCHES)
            for x in x0
        ]

    orbits = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        workload="portrait_bundle", engine="reference",
        n_orbits=N_ORBITS, trajectory_seconds=N_ORBITS * T_MAX)
    assert len(orbits) == N_ORBITS


def test_bench_return_map_scan_batch(benchmark):
    p = CASE1_SLOW
    ys = np.geomspace(1e-4, 0.95, N_ORDINATES) * p.capacity

    out = benchmark.pedantic(
        lambda: batch_return_map(p, ys), rounds=3, iterations=1)
    benchmark.extra_info.update(
        workload="return_map_scan", engine="batch",
        n_ordinates=N_ORDINATES)
    assert np.all((out > 0.0) & (out < ys))  # contraction everywhere


def test_bench_return_map_scan_reference(benchmark):
    p = CASE1_SLOW
    ys = np.geomspace(1e-4, 0.95, N_ORDINATES) * p.capacity

    out = benchmark.pedantic(
        lambda: [return_map(p, float(y)) for y in ys],
        rounds=1, iterations=1)
    benchmark.extra_info.update(
        workload="return_map_scan", engine="reference",
        n_ordinates=N_ORDINATES)
    assert len(out) == N_ORDINATES


def test_bench_batch_single_row(benchmark):
    """M=1 overhead floor: the batch kernel on one trajectory."""
    p = CASE1_SLOW

    result = benchmark.pedantic(
        lambda: simulate_fluid_batch(
            p, np.array([-0.8 * p.q0]), 0.0, t_max=T_MAX,
            max_switches=MAX_SWITCHES),
        rounds=3, iterations=1)
    benchmark.extra_info.update(
        workload="single_row", engine="batch",
        n_orbits=1, trajectory_seconds=T_MAX)
    assert int(result.switch_counts[0]) > 0

"""Bench F — the sharded conservative-parallel fabric engine vs serial.

Paired workloads, each run serially (``engine="reference"``) and through
the ``repro.shard`` conservative window-stepper on
:class:`repro.simulation.multihop.MultiHopNetwork`:

* **fabric_fat_tree_k8** — an 8-ary fat-tree (128 hosts, 80 switches)
  under two rounds of fabric-wide permutation traffic at 4 Gb/s per
  flow; pods partition cleanly, so this is the workload the sharded
  engine is built for and the one whose speedup the CI gate watches;
* **fabric_dcell_4_1** — a DCell(4, 1) fabric (20 hosts) under four
  congested permutation rounds.  DCell's cross-cell links are
  host-to-host, so ~60% of the flows cross shards and the barrier wire
  carries frames *and* BCN/PAUSE control — the deliberately adversarial
  partitioning case.  Its pair documents that the conservative engine's
  overhead stays bounded (the 0.8 gate floor), not a speedup.

The timed region covers construction plus the run — for the sharded
rows that includes partitioning, worker spawn and every window-barrier
exchange, so the speedup is end to end, not kernel-only.

The sharded rows use ``workers = min(4, cpu_count)``: the committed
report is honest about the hardware that produced it (the ``machine``
section records the core count).  On a single-core box the coordinator
falls back to the inline window-stepper and the fat-tree speedup
records only the smaller-heap/O(1)-forwarding win; the >= 3x target
for ``fat_tree(k=8)`` at 4 workers needs four physical cores — the CI
fabric job regenerates this report on multi-core runners under a
noise-tolerant ``--min-speedup`` gate.

Every test tags ``benchmark.extra_info`` with ``workload``/``engine``
and ``simulated_seconds``; ``tools/bench_report.py`` pairs the engines
per workload and computes ns per simulated second and the speedup.  The
sharded tests rerun once under an :class:`~repro.obs.Observability`
handle (outside the timed region) and tag ``event_counts`` — counters
merge commutatively across shards, so the totals are exact.
"""

import os

from repro.obs import Observability
from repro.simulation.multihop import MultiHopNetwork, PortConfig
from repro.topology.graphs import dcell, fat_tree
from repro.workloads import permutation

FRAME_BITS = 1500 * 8
DELAY = 5e-6
DURATION = 2e-3

#: Parallel workers for the sharded rows, capped by the machine.
WORKERS = max(1, min(4, os.cpu_count() or 1))


def _hosts(graph):
    return sorted(
        n for n, d in graph.nodes(data=True) if d.get("kind") == "host"
    )


def _run_fat_tree(obs=None, **kwargs):
    g = fat_tree(8, capacity=10e9)
    flows = permutation(_hosts(g), demand=4e9, rounds=2)
    cfg = PortConfig(q0=8 * FRAME_BITS, buffer_bits=150 * FRAME_BITS)
    net = MultiHopNetwork(g, flows, cfg, frame_bits=FRAME_BITS,
                          propagation_delay=DELAY, obs=obs, **kwargs)
    return net.run(DURATION)


def _run_dcell(obs=None, **kwargs):
    g = dcell(4, 1, capacity=10e9)
    flows = permutation(_hosts(g), demand=2e9, rounds=4)
    cfg = PortConfig(q0=8 * FRAME_BITS, buffer_bits=150 * FRAME_BITS)
    net = MultiHopNetwork(g, flows, cfg, frame_bits=FRAME_BITS,
                          propagation_delay=DELAY, obs=obs, **kwargs)
    return net.run(DURATION)


def _event_counts(run, **kwargs):
    obs = Observability()
    run(obs=obs, **kwargs)
    return obs.event_counts()


def test_bench_fabric_fat_tree_sharded(benchmark):
    kwargs = dict(shards=8, workers=WORKERS)
    res = benchmark.pedantic(lambda: _run_fat_tree(**kwargs),
                             rounds=3, iterations=1)
    benchmark.extra_info.update(
        workload="fabric_fat_tree_k8", engine="sharded",
        simulated_seconds=DURATION, shards=8, workers=WORKERS,
        event_counts=_event_counts(_run_fat_tree, **kwargs))
    assert sum(res.per_flow_delivered_bits.values()) > 0


def test_bench_fabric_fat_tree_reference(benchmark):
    res = benchmark.pedantic(lambda: _run_fat_tree(),
                             rounds=3, iterations=1)
    benchmark.extra_info.update(
        workload="fabric_fat_tree_k8", engine="reference",
        simulated_seconds=DURATION)
    assert sum(res.per_flow_delivered_bits.values()) > 0


def test_bench_fabric_dcell_sharded(benchmark):
    kwargs = dict(shards=4, workers=WORKERS)
    res = benchmark.pedantic(lambda: _run_dcell(**kwargs),
                             rounds=3, iterations=1)
    benchmark.extra_info.update(
        workload="fabric_dcell_4_1", engine="sharded",
        simulated_seconds=DURATION, shards=4, workers=WORKERS,
        event_counts=_event_counts(_run_dcell, **kwargs))
    assert sum(res.per_flow_delivered_bits.values()) > 0


def test_bench_fabric_dcell_reference(benchmark):
    res = benchmark.pedantic(lambda: _run_dcell(),
                             rounds=3, iterations=1)
    benchmark.extra_info.update(
        workload="fabric_dcell_4_1", engine="reference",
        simulated_seconds=DURATION)
    assert sum(res.per_flow_delivered_bits.values()) > 0

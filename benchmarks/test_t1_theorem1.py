"""Bench T1 — the Theorem 1 worked example (Section IV Remarks)."""

import pytest

from conftest import run_experiment_benchmark


def test_t1_theorem1_example(benchmark):
    result = run_experiment_benchmark(benchmark, "t1", rounds=3)
    rows = {row[0]: row for row in result.table_rows}
    # paper: 13.75 Mbit required, nearly 3x the 5 Mbit BDP
    assert rows["required buffer (Mbit)"][2] == pytest.approx(13.81, abs=0.05)
    assert 2.5 <= rows["required / BDP"][2] <= 3.0

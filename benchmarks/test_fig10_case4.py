"""Bench F10 — regenerate Fig. 10 (Case 4/5: unconditional stability)."""

from conftest import run_experiment_benchmark


def test_fig10_case4(benchmark):
    result = run_experiment_benchmark(benchmark, "fig10", rounds=3)
    rows = {row[0]: row[1] for row in result.table_rows}
    assert rows["max x (should be <= 0)"] <= 0.0

"""Bench V5 — trace-driven fat-tree under BCN."""

from conftest import run_experiment_benchmark


def test_v5_trace_driven(benchmark):
    result = run_experiment_benchmark(benchmark, "v5")
    rows = {row[0]: row[1] for row in result.table_rows}
    assert rows["mice completion fraction"] > 0.9

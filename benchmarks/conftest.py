"""Shared helpers for the figure-reproduction benchmarks.

Each ``test_<id>_*.py`` file regenerates one paper artefact: it runs the
registered experiment under ``pytest-benchmark`` timing, asserts the
figure's shape verdicts, and prints the rows/series the paper reports
(use ``-s`` to see them).
"""

from __future__ import annotations

import repro.experiments  # noqa: F401 — registration side effects
from repro.experiments.base import ExperimentResult, get_experiment


def run_experiment_benchmark(
    benchmark, experiment_id: str, *, rounds: int = 1, **options
) -> ExperimentResult:
    """Benchmark one experiment run and assert its verdicts."""

    def run() -> ExperimentResult:
        return get_experiment(experiment_id)(render_plots=False, **options)

    result = benchmark.pedantic(run, rounds=rounds, iterations=1)
    print()
    print(result.render())
    assert result.passed, (
        f"{experiment_id} failing verdicts: {result.failing_verdicts()}"
    )
    return result

"""Bench F3 — regenerate Fig. 3 (trajectory taxonomy vs strong stability)."""

from conftest import run_experiment_benchmark


def test_fig3_taxonomy(benchmark):
    result = run_experiment_benchmark(benchmark, "fig3")
    # the taxonomy covers all nine archetypes
    labels = {row[0] for row in result.table_rows}
    assert labels == {"l1/l2", "l3", "l4", "l5+l7", "l6", "l8", "l9"}

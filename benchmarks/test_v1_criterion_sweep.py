"""Bench V1 — Theorem 1 bound vs exact peak over the case grid."""

from conftest import run_experiment_benchmark


def test_v1_criterion_sweep(benchmark):
    result = run_experiment_benchmark(benchmark, "v1")
    # soundness on every grid point
    for row in result.table_rows:
        bound, peak = row[4], row[5]
        assert peak <= bound * (1 + 1e-9)

"""Bench F7 — regenerate Fig. 7 (limit-cycle motion)."""

from conftest import run_experiment_benchmark


def test_fig7_limit_cycle(benchmark):
    result = run_experiment_benchmark(benchmark, "fig7")
    rows = {row[0]: row[1] for row in result.table_rows}
    assert rows["peak drift over run (rel)"] < 1e-3  # closed orbit
    assert rows["max nonlinear P(y)/y"] < 1.0       # no interior cycle

"""Ablation benches for the design choices DESIGN.md calls out.

A1 — sampling discipline: the draft's deterministic every-Nth-frame
     sampling aliases against synchronized homogeneous sources, starving
     some regulators of feedback; Bernoulli sampling restores the fluid
     model's uniform per-flow message rate.  Measured as fluid-vs-packet
     agreement (nrmse) under each discipline.
A2 — regulator semantics: draft per-message AIMD on the quantized FB
     field vs the fluid-exact integration; both must control the queue,
     with the draft mode hunting more (larger steady std).
A3 — gain trade-off: smaller Gi shrinks Theorem 1's buffer but weakens
     the per-round contraction (slower convergence) — the paper's
     Remarks, quantified.
"""


import pytest

from repro.analysis.sweeps import sweep
from repro.core.limit_cycle import linearized_contraction
from repro.core.parameters import BCNParams, paper_example_params
from repro.core.stability import required_buffer
from repro.experiments.v2_fluid_vs_packet import validation_params
from repro.runner import run_sweep_parallel
from repro.simulation.network import BCNNetworkSimulator


def _a3_evaluate(p: BCNParams) -> dict:
    """A3 grid point: Theorem 1 buffer vs per-round contraction."""
    return {
        "buffer_mbit": required_buffer(p) / 1e6,
        "rho": linearized_contraction(p.normalized()),
    }


def _a4_evaluate(p: BCNParams) -> dict:
    """A4 grid point: one packet-level run at a PAUSE threshold.

    Module-level so the parallel runner can pickle it by reference.
    """
    net = BCNNetworkSimulator(p, regulator_mode="message", enable_pause=True)
    res = net.run(0.02)
    return {
        "pauses": res.pauses,
        "drops": res.dropped_frames,
        "util": res.utilization(),
    }


class TestSamplingDiscipline:
    def _agreement(self, random_sampling: bool) -> float:
        params = validation_params()
        net = BCNNetworkSimulator(
            params,
            frame_bits=1500,
            initial_rate=1.5 * params.capacity / params.n_flows,
            regulator_mode="fluid-exact",
            fb_bits=None,
            require_association=False,
            positive_only_below_q0=False,
            random_sampling=random_sampling,
            enable_pause=False,
        )
        packet = net.run(0.2)
        from repro.analysis.validation import compare_series
        from repro.fluid.integrate import simulate_fluid

        fluid = simulate_fluid(
            params.normalized(),
            y0=0.5 * params.capacity,
            t_max=0.2,
            mode="physical",
            max_switches=2000,
        )
        return compare_series(
            fluid.t, fluid.queue(), packet.t, packet.queue,
            reference_level=params.q0,
        ).nrmse

    def test_a1_bernoulli_sampling_tracks_fluid(self, benchmark):
        nrmse_random = benchmark.pedantic(
            lambda: self._agreement(True), rounds=1, iterations=1)
        nrmse_deterministic = self._agreement(False)
        print(f"\nA1: nrmse random={nrmse_random:.3f} "
              f"deterministic={nrmse_deterministic:.3f}")
        assert nrmse_random < 0.2
        # deterministic sampling aliases: markedly worse tracking
        assert nrmse_deterministic > 1.5 * nrmse_random


class TestRegulatorSemantics:
    @pytest.mark.parametrize("mode", ["message", "fluid-exact"])
    def test_a2_both_modes_control_queue(self, benchmark, mode):
        params = paper_example_params()

        def run():
            net = BCNNetworkSimulator(params, regulator_mode=mode)
            return net.run(0.03)

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\nA2[{mode}]: util={res.utilization():.3f} "
              f"q_mean={res.queue_mean(settle=0.015) / 1e6:.2f}M "
              f"q_std={res.queue_std(settle=0.015) / 1e6:.2f}M")
        assert res.utilization() > 0.9
        assert res.queue_mean(settle=0.015) < params.buffer_size / 2


class TestGainTradeoff:
    def test_a3_buffer_vs_convergence(self, benchmark):
        base = paper_example_params()
        axes = {"gi": [8.0, 4.0, 2.0, 1.0, 0.5]}

        result = benchmark(lambda: sweep(base, axes, _a3_evaluate))
        print("\nA3: Gi  buffer(Mbit)  contraction/round")
        for r in result.records:
            print(f"    {r['gi']:<4} {r['buffer_mbit']:<12.2f} {r['rho']:.6f}")
        buffers = result.column("buffer_mbit")
        rhos = result.column("rho")
        # smaller Gi: less buffer needed ...
        assert buffers == sorted(buffers, reverse=True)
        # ... but weaker contraction (rho closer to 1 = slower settling)
        assert rhos == sorted(rhos)


class TestExtensionExperiments:
    """D1 and M1 — the extension experiments as benches."""

    def test_d1_delay_analysis(self, benchmark):
        from conftest import run_experiment_benchmark

        result = run_experiment_benchmark(benchmark, "d1")
        rows = {row[0]: row[1] for row in result.table_rows}
        assert 0.8 <= rows["critical / Nyquist margin"] <= 1.2

    def test_m1_victim_flow(self, benchmark):
        from conftest import run_experiment_benchmark

        result = run_experiment_benchmark(benchmark, "m1")
        by_config = {row[0]: row for row in result.table_rows}
        assert by_config["bcn"][1] > 2.0 * by_config["pause-only"][1]


class TestPauseBackstop:
    """A4 — PAUSE threshold placement: backstop vs collateral damage.

    With BCN active, 802.3x PAUSE is only the last line of defence; set
    its threshold q_sc too low and it fires constantly (hurting
    throughput), too high and the buffer must absorb the transient
    alone.  Sweep q_sc/B and record drops, PAUSE count and utilisation.
    """

    def test_a4_pause_threshold_sweep(self, benchmark):
        params = paper_example_params()
        axes = {"q_sc": [frac * params.buffer_size
                         for frac in (0.4, 0.7, 0.95)]}

        def run_sweep():
            return run_sweep_parallel(params, axes, _a4_evaluate, workers=2)

        result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
        # parallel execution preserves the serial reference ordering
        assert result.column("q_sc") == axes["q_sc"]
        print("\nA4: q_sc/B  pauses  drops  util")
        for r in result.records:
            frac = r["q_sc"] / params.buffer_size
            print(f"    {frac:<6.2f} {r['pauses']:<7} {r['drops']:<6} "
                  f"{r['util']:.3f}")
        pauses = result.column("pauses")
        # a low threshold must fire at least as often as a high one
        assert pauses[0] >= pauses[-1]
        # the system stays functional across the sweep
        assert all(util > 0.5 for util in result.column("util"))

"""Bench P — the batched packet engine vs the event-driven reference.

Paired workloads, each run with ``engine="reference"`` and
``engine="batched"`` on :class:`repro.simulation.network.BCNNetworkSimulator`:

* **dumbbell_fluid_vs_packet** — the V2 validation configuration
  (fluid-exact regulator, Bernoulli sampling, no PAUSE) on a 0.2 s
  horizon; the ISSUE's macrobenchmark — the committed
  ``BENCH_packet.json`` must show ≥ 5×;
* **dumbbell_message_mode** — the Section IV example parameters under
  the draft's literal message semantics (deterministic sampling,
  quantized FB, association-gated positive feedback, PAUSE armed).

Every test tags ``benchmark.extra_info`` with ``workload``/``engine``
and the ``simulated_seconds`` horizon; ``tools/bench_report.py`` pairs
the engines per workload, computes ns per simulated second and the
speedup, and fails below ``--min-speedup``.  The batched tests rerun
their workload once under an :class:`~repro.obs.Observability` handle
(outside the timed region) and tag ``extra_info["event_counts"]`` so
the committed report also records what each workload *did*.

An unpaired microbench times the calendar-queue event kernel against
the binary heap on a pure schedule/fire storm (tagged
``engine="calendar"``/``"heap"``, deliberately not gated — the calendar
kernel's win depends on slot tuning, and the multihop fabric is its
only consumer).
"""

from repro.core.parameters import paper_example_params
from repro.experiments.v2_fluid_vs_packet import validation_params
from repro.obs import Observability
from repro.simulation.engine import make_simulator
from repro.simulation.network import BCNNetworkSimulator

V2_DURATION = 0.2
MSG_DURATION = 0.03

V2_KWARGS = dict(
    frame_bits=1500,
    regulator_mode="fluid-exact",
    fb_bits=None,
    require_association=False,
    positive_only_below_q0=False,
    random_sampling=True,
    enable_pause=False,
)


def _run_v2(engine, obs=None):
    net = BCNNetworkSimulator(validation_params(), engine=engine, obs=obs,
                              **V2_KWARGS)
    return net.run(V2_DURATION)


def _run_message(engine, obs=None):
    net = BCNNetworkSimulator(paper_example_params(), engine=engine, obs=obs)
    return net.run(MSG_DURATION)


def _event_counts(run, engine):
    obs = Observability()
    run(engine, obs)
    return obs.event_counts()


def test_bench_dumbbell_fluid_vs_packet_batched(benchmark):
    res = benchmark.pedantic(lambda: _run_v2("batched"),
                             rounds=3, iterations=1)
    benchmark.extra_info.update(
        workload="dumbbell_fluid_vs_packet", engine="batched",
        simulated_seconds=V2_DURATION,
        event_counts=_event_counts(_run_v2, "batched"))
    assert res.forwarded_frames > 0
    assert 0.9 <= res.utilization() <= 1.0 + 1e-9


def test_bench_dumbbell_fluid_vs_packet_reference(benchmark):
    res = benchmark.pedantic(lambda: _run_v2("reference"),
                             rounds=1, iterations=1)
    benchmark.extra_info.update(
        workload="dumbbell_fluid_vs_packet", engine="reference",
        simulated_seconds=V2_DURATION)
    assert res.forwarded_frames > 0


def test_bench_dumbbell_message_mode_batched(benchmark):
    res = benchmark.pedantic(lambda: _run_message("batched"),
                             rounds=3, iterations=1)
    benchmark.extra_info.update(
        workload="dumbbell_message_mode", engine="batched",
        simulated_seconds=MSG_DURATION,
        event_counts=_event_counts(_run_message, "batched"))
    assert res.bcn_negative > 0


def test_bench_dumbbell_message_mode_reference(benchmark):
    res = benchmark.pedantic(lambda: _run_message("reference"),
                             rounds=1, iterations=1)
    benchmark.extra_info.update(
        workload="dumbbell_message_mode", engine="reference",
        simulated_seconds=MSG_DURATION)
    assert res.bcn_negative > 0


# -- event-kernel microbench (unpaired, not gated) -------------------------

N_EVENTS = 50_000


def _event_storm(kernel):
    # Near-horizon churn plus a far tail that exercises the overflow
    # heap and horizon rolling on the calendar kernel.
    sim = make_simulator(kernel, slot_width=1e-5, n_slots=1024)
    count = 0

    def tick():
        nonlocal count
        count += 1

    for i in range(N_EVENTS):
        sim.schedule((i % 997) * 1e-5 + 1e-7, tick)
    for i in range(N_EVENTS // 10):
        sim.schedule(0.5 + (i % 89) * 1e-3, tick)
    sim.run()
    return count


def test_bench_event_kernel_heap(benchmark):
    fired = benchmark.pedantic(lambda: _event_storm("heap"),
                               rounds=3, iterations=1)
    benchmark.extra_info.update(workload="event_storm", engine="heap")
    assert fired == N_EVENTS + N_EVENTS // 10


def test_bench_event_kernel_calendar(benchmark):
    fired = benchmark.pedantic(lambda: _event_storm("calendar"),
                               rounds=3, iterations=1)
    benchmark.extra_info.update(workload="event_storm", engine="calendar")
    assert fired == N_EVENTS + N_EVENTS // 10

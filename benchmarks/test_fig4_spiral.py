"""Bench F4 — regenerate Fig. 4 (spiral trajectories and extrema)."""

from conftest import run_experiment_benchmark


def test_fig4_spiral(benchmark):
    result = run_experiment_benchmark(benchmark, "fig4", rounds=3)
    # eqs. (19)/(20) hold to near machine precision
    for row in result.table_rows:
        assert row[-1] < 1e-9

"""Micro-benchmarks of the library's hot paths.

Not tied to a paper figure; they track the cost of the primitives the
experiments are built from — closed-form composition, the stability
criterion, the return map, fluid integration and raw DES throughput.
"""

import pytest

from repro.core.parameters import paper_example_params
from repro.core.phase_plane import PhasePlaneAnalyzer
from repro.core.limit_cycle import return_map
from repro.core.stability import required_buffer, strong_stability_report
from repro.experiments.presets import CASE1_SLOW
from repro.fluid.integrate import simulate_fluid
from repro.simulation.network import BCNNetworkSimulator


def test_bench_compose_piecewise(benchmark):
    analyzer = PhasePlaneAnalyzer(CASE1_SLOW)
    traj = benchmark(lambda: analyzer.compose(max_switches=50))
    assert traj.n_switches > 0


def test_bench_required_buffer(benchmark):
    params = paper_example_params()
    value = benchmark(lambda: required_buffer(params))
    assert value == pytest.approx(13.81e6, rel=1e-2)


def test_bench_stability_report(benchmark):
    params = paper_example_params()
    report = benchmark.pedantic(
        lambda: strong_stability_report(params, max_switches=100),
        rounds=3, iterations=1)
    assert report.strongly_stable


def test_bench_return_map(benchmark):
    value = benchmark.pedantic(
        lambda: return_map(CASE1_SLOW, 20.0), rounds=5, iterations=1)
    assert 0 < value < 20.0


def test_bench_fluid_integration(benchmark):
    traj = benchmark.pedantic(
        lambda: simulate_fluid(CASE1_SLOW, t_max=30.0, mode="nonlinear",
                               max_switches=100),
        rounds=3, iterations=1)
    assert traj.t.size > 0


def test_bench_des_throughput(benchmark):
    """Packet events per wall-second at the paper's configuration."""
    params = paper_example_params()

    def run():
        net = BCNNetworkSimulator(params)
        net.run(0.005)
        return net.sim.events_processed

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    assert events > 1000

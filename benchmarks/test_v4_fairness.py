"""Bench V4 — Chiu-Jain fairness of the BCN AIMD laws."""

from conftest import run_experiment_benchmark


def test_v4_fairness(benchmark):
    result = run_experiment_benchmark(benchmark, "v4")
    rows = {row[0]: row[1] for row in result.table_rows}
    assert rows["Jain index end"] > 0.999
    assert rows["AIAD gap retention"] > 0.9  # the control arm

"""Bench S — job-server throughput: jobs/sec at 1/8/32 clients.

Each workload drives one :class:`repro.serve.server.JobServer` (real
sockets on loopback, newline-delimited JSON protocol) with a fixed
batch of 32 scenario jobs split across N concurrent clients, and is
measured twice:

* ``engine="reference"`` — **cold cache**: every round submits jobs
  with fresh, never-seen seeds, so each one is computed by the runner.
  This is the end-to-end cost of accept → canonicalise → execute →
  envelope → respond;
* ``engine="warm"`` — **warm cache**: the same 32 jobs were computed
  once before timing, so every submission dedups against the server's
  done-job table / result cache.  This isolates the serving overhead
  (protocol + dedup + envelope fan-out) from simulation compute.

``tools/bench_report.py`` pairs ``warm`` against ``reference`` per
workload, and the CI gate fails when the warm path stops being
substantially faster than recomputing — i.e. when dedup breaks or the
protocol layer grows a bottleneck.  ``extra_info`` records ``jobs``,
``clients`` and the derived ``jobs_per_second``.

The server runs with ``max_concurrent=4`` compute slots throughout, so
the client-count axis measures protocol/dedup scaling, not extra
compute parallelism.
"""

import itertools
import threading

from repro.serve.server import JobState, ServeConfig
from repro.serve.testing import ServerHarness

JOBS_PER_ROUND = 32
ROUNDS = 3

_fresh_seed = itertools.count(1_000_000).__next__


def _cold_jobs():
    """A batch of jobs no cache has ever seen."""
    return [{"kind": "scenario", "preset": "dc-baseline",
             "seed": _fresh_seed()} for _ in range(JOBS_PER_ROUND)]


def _warm_jobs():
    return [{"kind": "scenario", "preset": "dc-baseline", "seed": -s - 1}
            for s in range(JOBS_PER_ROUND)]


def _submit_all(harness, jobs, clients):
    """Split ``jobs`` across ``clients`` concurrent connections and wait
    for every result; raises if any job fails."""
    failures = []

    def worker(chunk):
        try:
            with harness.client() as client:
                for job in chunk:
                    response = client.submit(job, wait=True)
                    if response["state"] != JobState.DONE:
                        failures.append(response)
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    chunks = [jobs[i::clients] for i in range(clients)]
    threads = [threading.Thread(target=worker, args=(chunk,))
               for chunk in chunks if chunk]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures[:3]


def _bench_serve(benchmark, tmp_path, *, clients, warm):
    config = ServeConfig(cache_dir=tmp_path / "cache", max_concurrent=4)
    with ServerHarness(config) as harness:
        if warm:
            jobs = _warm_jobs()
            _submit_all(harness, jobs, clients)  # prime outside timing
            benchmark.pedantic(lambda: _submit_all(harness, jobs, clients),
                               rounds=ROUNDS, iterations=1)
        else:
            benchmark.pedantic(
                lambda jobs: _submit_all(harness, jobs, clients),
                setup=lambda: ((_cold_jobs(),), {}),
                rounds=ROUNDS, iterations=1)
        with harness.client() as client:
            counters = client.stats()["counters"]
    expected = JOBS_PER_ROUND * (1 if warm else ROUNDS)
    assert counters["serve.computed"] == expected
    benchmark.extra_info.update(
        workload=f"serve_jobs_c{clients}",
        engine="warm" if warm else "reference",
        jobs=JOBS_PER_ROUND, clients=clients,
        jobs_per_second=JOBS_PER_ROUND / benchmark.stats.stats.mean)


def test_bench_serve_1_client_cold(benchmark, tmp_path):
    _bench_serve(benchmark, tmp_path, clients=1, warm=False)


def test_bench_serve_1_client_warm(benchmark, tmp_path):
    _bench_serve(benchmark, tmp_path, clients=1, warm=True)


def test_bench_serve_8_clients_cold(benchmark, tmp_path):
    _bench_serve(benchmark, tmp_path, clients=8, warm=False)


def test_bench_serve_8_clients_warm(benchmark, tmp_path):
    _bench_serve(benchmark, tmp_path, clients=8, warm=True)


def test_bench_serve_32_clients_cold(benchmark, tmp_path):
    _bench_serve(benchmark, tmp_path, clients=32, warm=False)


def test_bench_serve_32_clients_warm(benchmark, tmp_path):
    _bench_serve(benchmark, tmp_path, clients=32, warm=True)

"""Bench F5 — regenerate Fig. 5 (node trajectories, invariant lines)."""

from conftest import run_experiment_benchmark


def test_fig5_node(benchmark):
    result = run_experiment_benchmark(benchmark, "fig5", rounds=3)
    for row in result.table_rows:
        assert row[-1] < 1e-9  # eq. (28) precision

"""Bench F6 — regenerate Fig. 6 (Case 1: spiral/spiral dynamics)."""

from conftest import run_experiment_benchmark


def test_fig6_case1(benchmark):
    result = run_experiment_benchmark(benchmark, "fig6", rounds=3)
    rows = {row[0]: row for row in result.table_rows}
    # eqs. (36)-(37) reproduce the first-round excursions
    assert rows["first peak max1{x}"][3] < 1e-9
    assert rows["first trough min1{x}"][3] < 1e-9

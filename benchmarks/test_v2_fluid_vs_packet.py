"""Bench V2 — fluid model vs packet-level DES agreement."""

from conftest import run_experiment_benchmark


def test_v2_fluid_vs_packet(benchmark):
    result = run_experiment_benchmark(benchmark, "v2", duration=0.3)
    rows = {row[0]: row[1] for row in result.table_rows}
    assert rows["nrmse"] < 0.15

"""A gallery of BCN phase portraits — all five cases at a glance.

For each of the paper's cases (Section IV.C) this script composes a
family of exact trajectories from a spread of initial states and
renders the portrait: how every start is funnelled by the switching
line into the spiral (Cases 1/2) or onto the node asymptote (Cases
3/4/5).  The global view the paper's single-trajectory figures imply.

Run with::

    python examples/phase_portrait_gallery.py
"""

from repro.core import classify_case, phase_portrait
from repro.experiments.presets import CASE1_SLOW, CASE2, CASE3, CASE4, CASE5


def main() -> None:
    presets = {
        "Case 1 (spiral/spiral)": CASE1_SLOW,
        "Case 2 (node/spiral)": CASE2,
        "Case 3 (spiral/node)": CASE3,
        "Case 4 (node/node)": CASE4,
        "Case 5 (degenerate)": CASE5,
    }
    for title, params in presets.items():
        portrait = phase_portrait(params, max_switches=25)
        label = f"{title} — classified {classify_case(params).value}"
        print(portrait.to_ascii(title=label, height=14))
        print()


if __name__ == "__main__":
    main()

"""Incast on a fat-tree fabric with BCN congestion management.

The partition/aggregate pattern — many servers answering one client at
once — is the canonical DCE stress case: the fan-in overwhelms the
client's last-hop port.  This example builds a k=4 fat-tree, runs a
synchronized incast with BCN at every port, and reports where the
congestion point forms, how much the regulators had to slow the
servers, and whether the (lossless-Ethernet-sized) buffer survived.

Run with::

    python examples/incast_fattree.py
"""

from repro.simulation import MultiHopNetwork, PortConfig
from repro.topology import bottleneck_edge, ecmp_route, fat_tree, hosts
from repro.viz import format_table
from repro.workloads import incast


def main() -> None:
    capacity = 1e9
    fabric = fat_tree(4, capacity=capacity)
    all_hosts = hosts(fabric)
    client, servers = all_hosts[0], all_hosts[4:12]  # 8 servers, other pods
    print(f"fabric: {fabric.name}, {len(all_hosts)} hosts; "
          f"{len(servers)} servers -> client {client}")

    flows = incast(servers, client, response_bits=4e6, demand=capacity)
    routes = [ecmp_route(fabric, f.src, f.dst, f.flow_id) for f in flows]
    predicted, sharing = bottleneck_edge(fabric, routes)
    print(f"predicted congestion point: {predicted} ({sharing} flows share it)")

    config = PortConfig(
        q0=100e3,
        buffer_bits=1e6,
        q_sc=900e3,  # PAUSE as the last-resort backstop
        pm=0.05,     # denser sampling = faster recovery after the burst
        min_rate=5e6,
        regulator_mode="message",
    )
    network = MultiHopNetwork(fabric, flows, config, propagation_delay=1e-6)
    result = network.run(0.6)

    hottest = result.hottest_port()
    rows = []
    for edge, series in sorted(result.port_queues.items()):
        peak = float(series.max())
        if peak > 0:
            rows.append([f"{edge[0]}->{edge[1]}", peak / 1e3,
                         float(series.mean()) / 1e3])
    print("\nper-port queue occupancy:")
    print(format_table(["port", "peak (kbit)", "mean (kbit)"], rows))

    print(f"\nhottest port: {hottest} (predicted {predicted}): "
          f"{'match' if hottest == predicted else 'differs'}")
    print(f"drops: {result.dropped_frames}, PAUSE frames: {result.pauses}, "
          f"negative BCN: {result.bcn_negative}")

    # No retransmission layer here: a single dropped frame permanently
    # caps a response below 100%, so report delivered fractions.
    fractions = [result.per_flow_delivered_bits[f.flow_id] / f.size_bits
                 for f in flows]
    done95 = sum(1 for fr in fractions if fr >= 0.95)
    print(f"responses >=95% delivered: {done95}/{len(flows)} "
          f"(mean fraction {sum(fractions) / len(fractions):.3f}; "
          f"drops are final — lossless Ethernet is the point)")
    rows = [[fid, result.flow_throughput(fid) / 1e6,
             result.per_flow_rate[fid] / 1e6] for fid in sorted(result.per_flow_rate)]
    print(format_table(["flow", "goodput (Mbit/s)", "final rate (Mbit/s)"], rows))
    print(f"fairness across servers: {result.jain_fairness():.3f}")


if __name__ == "__main__":
    main()

"""The 802.1Qau shoot-out: BCN vs QCN vs E2CM vs FERA vs binary AIMD.

Section II of the paper surveys the four congestion-management
proposals then before the 802.1Qau working group.  This example runs
all of them (plus the Chiu-Jain binary-AIMD reference point) on an
identical dumbbell and prints the trade-off table — queue behaviour vs
fairness vs control overhead — together with the queue traces, then
contrasts Theorem 1 with the buffer-blind linear verdict of [4].

Run with::

    python examples/scheme_shootout.py
"""

from repro.baselines import (
    AIMDParams,
    E2CMParams,
    FERAParams,
    QCNParams,
    linear_verdict,
    run_aimd_dumbbell,
    run_bcn_dumbbell,
    run_e2cm_dumbbell,
    run_fera_dumbbell,
    run_qcn_dumbbell,
)
from repro.core import paper_example_params, required_buffer, theorem1_criterion
from repro.viz import format_table, line_plot


def main() -> None:
    params = paper_example_params()
    c, n, q0, buf = params.capacity, params.n_flows, params.q0, params.buffer_size
    duration = 0.03
    settle = duration / 2

    runs = {
        "bcn": run_bcn_dumbbell(params, duration),
        "qcn": run_qcn_dumbbell(
            QCNParams(capacity=c, n_flows=n, q0=q0, buffer_bits=buf), duration),
        "e2cm": run_e2cm_dumbbell(
            E2CMParams(capacity=c, n_flows=n, q0=q0, buffer_bits=buf), duration),
        "fera": run_fera_dumbbell(
            FERAParams(capacity=c, n_flows=n, buffer_bits=buf, q0=q0), duration),
        "aimd": run_aimd_dumbbell(
            AIMDParams(capacity=c, n_flows=n, q0=q0, buffer_bits=buf), duration),
    }

    rows = []
    for name, res in runs.items():
        rows.append([
            name,
            res.utilization(),
            res.queue_mean(settle=settle) / 1e6,
            res.queue_std(settle=settle) / 1e6,
            res.dropped_frames,
            res.jain_fairness(),
            res.control_messages,
        ])
    print(format_table(
        ["scheme", "util", "q mean (Mb)", "q std (Mb)", "drops", "fairness", "msgs"],
        rows,
    ))

    for name in ("bcn", "fera"):
        res = runs[name]
        print()
        print(line_plot(res.t * 1e3, res.queue / 1e6, reference=q0 / 1e6,
                        title=f"{name}: queue (Mbit) vs time (ms)", height=10))

    print("\n--- stability criteria on the same configuration ---")
    small = params.with_(buffer_size=5e6, q_sc=None)
    for label, cfg in (("20 Mbit buffer", params), ("5 Mbit buffer", small)):
        lv = linear_verdict(cfg)
        print(f"{label}: linear analysis [4] says stable={lv.stable}; "
              f"Theorem 1 says ok={theorem1_criterion(cfg)} "
              f"(needs {required_buffer(cfg) / 1e6:.1f} Mbit)")
    print("-> the linear analysis cannot see the buffer at all; "
          "Theorem 1 rejects the configuration that would drop packets.")


if __name__ == "__main__":
    main()

"""Quickstart: analyse a BCN deployment in a dozen lines.

Takes the paper's worked example (50 flows on a 10 Gbit/s link with the
standard-draft gains), asks the three questions a network operator
would ask — is it stable? how big must the buffer be? what will the
transient look like? — and renders the phase trajectory in the
terminal.

Run with::

    python examples/quickstart.py
"""

from repro import (
    PhasePlaneAnalyzer,
    paper_example_params,
    required_buffer,
    strong_stability_report,
)
from repro.viz import line_plot, phase_plot


def main() -> None:
    params = paper_example_params()
    print(f"Link: {params.capacity / 1e9:.0f} Gbit/s, {params.n_flows} flows, "
          f"q0 = {params.q0 / 1e6:.1f} Mbit, buffer = {params.buffer_size / 1e6:.0f} Mbit")

    # 1. Is this configuration strongly stable (Definition 1)?
    report = strong_stability_report(params)
    print(f"\ncase: {report.case.value} (governed by Proposition {report.proposition})")
    print(f"strongly stable: {report.strongly_stable}")
    print(f"Theorem 1 satisfied: {report.theorem1_satisfied}")

    # 2. How much buffer does Theorem 1 ask for?
    needed = required_buffer(params)
    print(f"\nTheorem 1 buffer requirement: {needed / 1e6:.2f} Mbit "
          f"(paper reports 13.75 Mbit)")
    print(f"transient queue peak: {report.queue_peak / 1e6:.2f} Mbit")

    # 3. What does the transient look like?
    analyzer = PhasePlaneAnalyzer(params)
    trajectory = analyzer.compose(max_switches=12)
    samples = trajectory.sample(150)
    print()
    print(phase_plot(samples[:, 1] / 1e6, samples[:, 2] / 1e9,
                     title="phase plane: x = q - q0 (Mbit) vs y = N r - C (Gbit/s)"))
    t, q, _rate = trajectory.queue_time_series(150)
    print(line_plot(t * 1e3, q / 1e6, reference=params.q0 / 1e6,
                    title="queue length (Mbit) vs time (ms); '=' marks q0"))


if __name__ == "__main__":
    main()

"""How much feedback delay can a BCN loop take?

The paper drops propagation delay from its model; this example puts it
back with the library's DDE integrator and walks the whole story:

1. the Nyquist delay margin of the linearised loops (the [4]-style
   formula ``atan(k w*)/w*``);
2. a delay sweep of the actual switched system: stable below the
   margin, oscillation growth above it;
3. bisection for the empirical critical delay — it lands on the margin;
4. the supercritical side: growth saturates into an attracting limit
   cycle (constant-amplitude queue oscillation — the phenomenon field
   deployments reported);
5. the margin as a *design* quantity: how it scales with the gains, and
   where the paper's own example configuration sits.

Run with::

    python examples/delay_study.py
"""

import numpy as np

from repro.baselines import nyquist_delay_margin
from repro.core import NormalizedParams, paper_example_params
from repro.fluid import critical_delay, simulate_delayed
from repro.viz import format_table, line_plot


def main() -> None:
    p = NormalizedParams(a=2.0, b=0.02, k=1.0, capacity=100.0, q0=10.0,
                         buffer_size=1e9)
    margin = min(nyquist_delay_margin(p.n_increase, p.k),
                 nyquist_delay_margin(p.n_decrease, p.k))
    print(f"1. Nyquist margin of the linearised loops: {margin:.3f} s")

    print("\n2. delay sweep of the switched system:")
    rows = []
    for factor in (0.2, 0.6, 0.9, 1.2, 1.8):
        traj = simulate_delayed(p, tau=factor * margin, t_max=60.0)
        rows.append([f"{factor:.1f} x margin", traj.classify(),
                     traj.amplitude_trend() or "-"])
    print(format_table(["delay", "behaviour", "peak ratio/round"], rows))

    tau_c = critical_delay(p, tau_lo=0.2 * margin, tau_hi=2.5 * margin,
                           t_max=60.0, iterations=9)
    print(f"\n3. empirical critical delay: {tau_c:.3f} s "
          f"({tau_c / margin:.3f} x the Nyquist margin)")

    cycle = simulate_delayed(p, tau=1.5 * margin, t_max=200.0)
    late = np.abs(cycle.x[cycle.t > 150.0])
    print(f"\n4. past the boundary: amplitude saturates at |x| ~ "
          f"{late.max():.1f} (a delay-induced limit cycle)")
    thin = slice(None, None, max(1, cycle.t.size // 3000))
    print(line_plot(cycle.t[thin], cycle.x[thin], reference=0.0,
                    title="queue offset x(t) at 1.5x the margin", height=10))

    print("5. margin vs gains (stiffer loop = less delay tolerance):")
    rows = []
    for a in (0.5, 2.0, 8.0, 32.0):
        m = nyquist_delay_margin(a, p.k)
        rows.append([a, m])
    print(format_table(["a = RuGiN", "margin (s)"], rows))

    paper = paper_example_params().normalized()
    m_paper = min(nyquist_delay_margin(paper.n_increase, paper.k),
                  nyquist_delay_margin(paper.n_decrease, paper.k))
    print(f"\npaper's example config: margin {m_paper:.2e} s vs its 0.5 us "
          f"propagation delay — the fluid loop is *less* delay-tolerant "
          f"than the physical link; the real system survives because "
          f"per-message feedback is far slower than the fluid idealisation.")


if __name__ == "__main__":
    main()

"""Watching BCN's AIMD find fairness (the Chiu-Jain plane, live).

Two flows share the bottleneck starting from a 4:1 split.  The shared
sigma means increase episodes add the same amount to both flows while
decrease episodes scale each flow — so every congestion round shrinks
the rate gap's share, walking the state along Chiu & Jain's staircase
to the fairness line.  The script renders the (r1, r2) plane, the Jain
index over time, and the AIAD control arm that famously fails.

Run with::

    python examples/fairness_dynamics.py
"""

import numpy as np

from repro.analysis.fairness import fairness_trajectory
from repro.experiments.v4_fairness import _aiad_gap_ratio, fairness_params
from repro.viz import line_plot, phase_plot


def main() -> None:
    params = fairness_params()
    trajectory = fairness_trajectory(params, imbalance=4.0, t_max=3.0)
    jain = trajectory.jain_series()

    print(f"two flows on a {params.capacity / 1e9:.0f} Gbit/s link, "
          f"starting 4:1")
    print(f"Jain index: {jain[0]:.4f} -> {jain[-1]:.6f}")
    print(f"rate gap:   {trajectory.gap_series()[0]:.3f} -> "
          f"{trajectory.gap_series()[-1]:.2e}")

    print()
    print(phase_plot(trajectory.r1 / 1e6, trajectory.r2 / 1e6,
                     title="Chiu-Jain plane: r1 vs r2 (Mbit/s); "
                           "diagonal = fairness"))
    print(line_plot(trajectory.t, jain, reference=1.0,
                    title="Jain fairness index vs time (s)"))

    ratio = _aiad_gap_ratio(params, 3.0)
    print(f"control arm (AIAD — additive decrease): the gap retains "
          f"{ratio:.3f} of its size.")
    print("multiplicative decrease is what buys fairness — "
          "Chiu & Jain (1989), alive inside BCN.")


if __name__ == "__main__":
    main()

"""Buffer sizing for lossless Ethernet with Theorem 1.

The paper's headline practical result: once packets must not be
dropped, the bandwidth-delay-product rule stops being the right way to
size switch buffers — the transient excursion of the congestion-control
loop dominates, and Theorem 1 gives its envelope:

    B  >  (1 + sqrt(Ru Gi N / (Gd C))) * q0

This example uses the criterion as a design tool across link speeds and
flow counts, shows the Gi/Gd trade-off (smaller buffers <-> slower
convergence, measured as the per-round oscillation contraction), and
prints the sizing tables an operator would pin to the wall.

Run with::

    python examples/buffer_sizing.py
"""

from repro import paper_example_params, required_buffer
from repro.core import PhasePlaneAnalyzer, linearized_contraction
from repro.viz import format_table


def sizing_table() -> None:
    base = paper_example_params()
    rows = []
    for capacity_g in (10, 40, 100):
        for n_flows in (10, 50, 200):
            params = base.with_(
                capacity=capacity_g * 1e9,
                n_flows=n_flows,
                # keep q0 at 25% of a capacity-scaled buffer budget
                q0=2.5e6 * capacity_g / 10,
                buffer_size=1e9,  # placeholder; we compute the need
            )
            need = required_buffer(params)
            rows.append([
                f"{capacity_g}G",
                n_flows,
                params.q0 / 1e6,
                need / 1e6,
                need / params.q0,
            ])
    print("Buffer requirement by fabric (standard-draft gains):")
    print(format_table(
        ["link", "flows", "q0 (Mbit)", "buffer needed (Mbit)", "x q0"], rows
    ))


def gain_tradeoff() -> None:
    base = paper_example_params()
    rows = []
    for gi, gd in ((4.0, 1 / 128), (2.0, 1 / 128), (1.0, 1 / 128),
                   (4.0, 1 / 64), (4.0, 1 / 32)):
        params = base.with_(gi=gi, gd=gd)
        need = required_buffer(params)
        # Convergence speed: per-round contraction of the oscillation
        # (smaller = faster settling).
        rho = linearized_contraction(params.normalized())
        rounds_to_1pct = 0 if rho <= 0 else int(-4.605 / __import__("math").log(rho)) + 1
        rows.append([gi, f"1/{round(1/gd)}", need / 1e6, rho, rounds_to_1pct])
    print("\nGain trade-off: buffer need vs convergence speed")
    print(format_table(
        ["Gi", "Gd", "buffer (Mbit)", "contraction/round", "rounds to 1%"], rows
    ))
    print("(shrinking Gi or growing Gd cuts the buffer but slows convergence —")
    print(" the trade-off the paper's Remarks call out)")


def transient_preview() -> None:
    params = paper_example_params()
    analyzer = PhasePlaneAnalyzer(params)
    trajectory = analyzer.compose(max_switches=6)
    print(f"\nFirst-round excursion at draft gains: "
          f"peak q = {trajectory.queue_peak() / 1e6:.2f} Mbit, "
          f"required = {required_buffer(params) / 1e6:.2f} Mbit "
          f"(bound is {required_buffer(params) / trajectory.queue_peak():.4f}x the peak)")


if __name__ == "__main__":
    sizing_table()
    gain_tradeoff()
    transient_preview()

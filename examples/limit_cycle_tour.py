"""A tour of BCN limit cycles — when does the queue oscillate forever?

The paper flags the limit cycle as the phenomenon linear analysis
misses.  This example walks through the mechanics with the library's
return-map tools:

1. generic parameters: the Poincaré return map contracts, the spiral
   winds in, no cycle;
2. the contraction is ``exp(-pi k (sqrt(a)+sqrt(bC))/2)`` — all of it
   comes from ``k = w/(pm C)``, the queue-*derivative* weight in sigma;
3. send ``w -> 0`` and the damping is gone: every orbit closes and the
   queue oscillates with constant amplitude forever (Fig. 7);
4. the full nonlinear model adds a little dissipation of its own, so
   real fluid cycles decay slowly even at ``w = 0``;
5. in the packet world, FB quantization leaves a persistent hunting
   band around ``q0`` that never decays.

Run with::

    python examples/limit_cycle_tour.py
"""

import numpy as np

from repro.core import (
    NormalizedParams,
    amplitude_scan,
    find_limit_cycle,
    linearized_contraction,
    paper_example_params,
)
from repro.fluid import simulate_fluid
from repro.simulation import BCNNetworkSimulator
from repro.viz import format_table, line_plot, phase_plot


def main() -> None:
    base = dict(a=2.0, b=0.02, capacity=100.0, q0=10.0, buffer_size=1e7)

    print("1/2. return-map contraction vs k (the only source of damping):")
    rows = []
    for k in (0.5, 0.1, 0.02, 0.004):
        p = NormalizedParams(k=k, **base)
        rho = linearized_contraction(p)
        scan = amplitude_scan(p, np.geomspace(0.1, 50.0, 5))
        rows.append([k, rho, float(scan[:, 1].max()),
                     find_limit_cycle(p) is None])
    print(format_table(
        ["k", "rho (linear)", "max P(y)/y (nonlinear)", "no interior cycle"],
        rows,
    ))

    print("\n3. w -> 0: the undamped closed orbit (paper Fig. 7):")
    p0 = NormalizedParams(k=1e-6, **base)
    orbit = simulate_fluid(p0, x0=-8.0, y0=0.0, t_max=25.0,
                           mode="linearized", max_switches=100)
    print(phase_plot(orbit.x, orbit.y, title="closed orbit: x vs y"))
    print(line_plot(orbit.t, orbit.x, reference=0.0,
                    title="constant-amplitude queue oscillation", height=10))

    print("4. the nonlinear (y+C) factor dissipates even at w = 0:")
    nl = simulate_fluid(p0, x0=-8.0, y0=0.0, t_max=25.0,
                        mode="nonlinear", max_switches=100)
    peaks = [x for _, x in nl.extrema if x > 0]
    if len(peaks) >= 2:
        print(f"   successive peaks: {peaks[0]:.3f} -> {peaks[1]:.3f} "
              f"(decay {peaks[1] / peaks[0]:.4f} per round)")

    print("\n5. quantized feedback keeps the real system hunting:")
    des = BCNNetworkSimulator(paper_example_params(),
                              regulator_mode="message", fb_bits=4)
    res = des.run(0.08)
    tail = res.t >= 0.6 * res.t[-1]
    print(f"   steady queue band: mean {res.queue[tail].mean() / 1e6:.2f} Mbit, "
          f"std {res.queue[tail].std() / 1e6:.2f} Mbit (never reaches zero)")


if __name__ == "__main__":
    main()

"""Cluster-filesystem parallel writes on a DCell fabric.

The paper motivates its homogeneous-sources assumption with the
parallel reads/writes of cluster file systems (Lustre, Panasas) over
regular topologies (it cites DCell among them).  This example stripes
writes from a set of compute nodes across a storage tier inside a
DCell(4,1) fabric, with BCN managing every port, and reports stripe
completion, port hotspots and how evenly the fabric carried the load.

Run with::

    python examples/parallel_io_dcell.py
"""

from repro.simulation import MultiHopNetwork, PortConfig
from repro.topology import dcell, hosts
from repro.viz import format_table
from repro.workloads import parallel_io


def main() -> None:
    capacity = 1e9
    fabric = dcell(4, 1, capacity=capacity)
    all_hosts = hosts(fabric)
    compute, storage = all_hosts[:4], all_hosts[-4:]
    print(f"fabric: {fabric.name} ({len(all_hosts)} hosts); "
          f"compute {compute} -> storage {storage}")

    flows = parallel_io(compute, storage, stripe_bits=2e6,
                        demand=capacity / 2, write=True)
    print(f"{len(flows)} stripe flows of 2 Mbit each")

    # Denser sampling (pm) and a sane rate floor: BCN recovers through
    # positive feedback on *sampled* frames, so starved flows at a tiny
    # floor rate are sampled rarely and recover very slowly — the
    # weakness QCN later fixed with self-clocked recovery.
    config = PortConfig(q0=100e3, buffer_bits=1.2e6, pm=0.05,
                        min_rate=10e6, regulator_mode="message")
    network = MultiHopNetwork(fabric, flows, config, propagation_delay=1e-6)
    result = network.run(0.8)

    fractions = [result.per_flow_delivered_bits[f.flow_id] / f.size_bits
                 for f in flows]
    done95 = sum(1 for fr in fractions if fr >= 0.95)
    print(f"\nstripes >=95% delivered: {done95}/{len(flows)} "
          f"(mean fraction {sum(fractions) / len(fractions):.3f})  "
          f"drops: {result.dropped_frames}  "
          f"BCN messages: {result.bcn_negative + result.bcn_positive}")

    rows = []
    for edge, series in sorted(result.port_queues.items(),
                               key=lambda kv: -float(kv[1].max()))[:6]:
        rows.append([f"{edge[0]}->{edge[1]}", float(series.max()) / 1e3,
                     float(series.mean()) / 1e3])
    print("\nhottest ports:")
    print(format_table(["port", "peak (kbit)", "mean (kbit)"], rows))

    per_target: dict[str, float] = {}
    for flow in flows:
        per_target[flow.dst] = (
            per_target.get(flow.dst, 0.0)
            + result.per_flow_delivered_bits[flow.flow_id]
        )
    rows = [[dst, bits / 1e6] for dst, bits in sorted(per_target.items())]
    print("\nbits landed per storage target:")
    print(format_table(["target", "Mbit"], rows))


if __name__ == "__main__":
    main()

"""Driving a BCN fabric with a realistic (heavy-tailed) traffic trace.

Generates a synthetic trace — Poisson flow arrivals with bounded-Pareto
sizes, the standard stand-in for production data-center traces — and
replays it on a k=4 fat-tree with BCN at every port, reporting the
numbers an operator would look at: flow-completion times by size class,
hotspots, losses, and where the control plane actually worked.

Run with::

    python examples/trace_driven_fabric.py
"""

import numpy as np

from repro.simulation import FrameTracer, MultiHopNetwork, PortConfig
from repro.topology import fat_tree, hosts
from repro.viz import format_table
from repro.workloads import TraceConfig, generate_trace


def main() -> None:
    capacity = 1e9
    fabric = fat_tree(4, capacity=capacity)
    all_hosts = hosts(fabric)

    trace = generate_trace(
        TraceConfig(
            arrival_rate=500.0,
            mean_size_bits=1.5e6,
            horizon=0.3,
            pareto_shape=1.3,
            max_size_bits=2e7,
            demand=capacity / 2,
            seed=42,
        ),
        all_hosts,
    )
    print(f"trace: {trace.n_flows} flows, {trace.total_bits() / 1e6:.0f} Mbit "
          f"offered, elephants carry "
          f"{trace.elephant_share(threshold_bits=8e6):.0%} of bytes")

    config = PortConfig(q0=100e3, buffer_bits=1.2e6, pm=0.05, min_rate=10e6)
    network = MultiHopNetwork(fabric, trace.flows, config,
                              propagation_delay=1e-6)
    # peek at one port's data plane with the tracer
    tracer = FrameTracer(max_events=20_000)
    some_port = next(iter(network.ports.values()))
    tracer.attach_switch(some_port)
    result = network.run(0.5)

    # FCT by size class
    buckets = [("mice  (<1 Mbit)", 0.0, 1e6),
               ("medium (1-8 Mbit)", 1e6, 8e6),
               ("elephants (>8 Mbit)", 8e6, float("inf"))]
    rows = []
    for label, lo, hi in buckets:
        fcts = [
            result.flow_completion_time(f.flow_id) * 1e3
            for f in trace.flows
            if lo <= (f.size_bits or 0) < hi
            and result.flow_completion_time(f.flow_id) is not None
        ]
        total = sum(1 for f in trace.flows if lo <= (f.size_bits or 0) < hi)
        if fcts:
            rows.append([label, f"{len(fcts)}/{total}",
                         float(np.median(fcts)),
                         float(np.percentile(fcts, 95))])
        else:
            rows.append([label, f"0/{total}", "-", "-"])
    print()
    print(format_table(
        ["class", "completed", "FCT p50 (ms)", "FCT p95 (ms)"], rows))

    hot = result.hottest_port()
    print(f"\nhottest port: {hot[0]}->{hot[1]} "
          f"(peak queue {float(result.port_queues[hot].max()) / 1e3:.0f} kbit)")
    print(f"drops: {result.dropped_frames}   "
          f"negative BCN: {result.bcn_negative}   "
          f"positive BCN: {result.bcn_positive}")

    busy_ports = sum(
        1 for series in result.port_queues.values() if series.max() > 0)
    print(f"ports that ever queued: {busy_ports}/{len(result.port_queues)} "
          "(congestion stays local; BCN's point)")
    print(f"traced port sample: {tracer.summary()}")


if __name__ == "__main__":
    main()

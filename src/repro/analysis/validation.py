"""Fluid-model vs packet-level cross-validation.

The paper's entire analysis lives in the fluid approximation; this
module quantifies how well the packet-level DES substrate agrees with
it, so that conclusions drawn from the phase-plane machinery can be
trusted at packet granularity.  Agreement is assessed on *shape*:
normalised RMS error between resampled queue trajectories, the ratio of
their peaks, and their oscillation structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.parameters import BCNParams
from ..fluid.integrate import simulate_fluid
from ..simulation.network import BCNNetworkSimulator
from .metrics import summarize_oscillation

__all__ = ["AgreementReport", "compare_series", "fluid_vs_packet"]


@dataclass(frozen=True)
class AgreementReport:
    """Shape agreement between two queue trajectories.

    Attributes
    ----------
    nrmse:
        RMS error between the resampled series, normalised by the
        reference's peak-to-trough span.
    peak_ratio:
        ``peak(candidate) / peak(reference)``.
    mean_ratio:
        Ratio of time-averaged queue levels (steady-state agreement).
    reference_class, candidate_class:
        Oscillation classifications from
        :func:`repro.analysis.metrics.summarize_oscillation`.
    reference_period, candidate_period:
        Mean oscillation periods (None when fewer than two peaks).
    """

    nrmse: float
    peak_ratio: float
    mean_ratio: float
    reference_class: str
    candidate_class: str
    reference_period: float | None = None
    candidate_period: float | None = None

    @property
    def period_ratio(self) -> float | None:
        """``candidate_period / reference_period`` when both exist."""
        if not self.reference_period or not self.candidate_period:
            return None
        return self.candidate_period / self.reference_period

    def agrees(self, *, nrmse_tol: float = 0.3, peak_tol: float = 0.5) -> bool:
        """Loose shape-agreement verdict (defaults suit DES noise)."""
        return (
            self.nrmse <= nrmse_tol
            and (1.0 - peak_tol) <= self.peak_ratio <= (1.0 + peak_tol)
        )


def compare_series(
    t_ref: np.ndarray,
    v_ref: np.ndarray,
    t_cand: np.ndarray,
    v_cand: np.ndarray,
    *,
    reference_level: float,
    n_points: int = 500,
) -> AgreementReport:
    """Resample both series to a common grid and measure agreement."""
    t_ref = np.asarray(t_ref, float)
    v_ref = np.asarray(v_ref, float)
    t_cand = np.asarray(t_cand, float)
    v_cand = np.asarray(v_cand, float)
    if t_ref.size < 2 or t_cand.size < 2:
        raise ValueError("need at least two samples per series")
    t0 = max(t_ref[0], t_cand[0])
    t1 = min(t_ref[-1], t_cand[-1])
    if t1 <= t0:
        raise ValueError("series do not overlap in time")
    tt = np.linspace(t0, t1, n_points)
    r = np.interp(tt, t_ref, v_ref)
    c = np.interp(tt, t_cand, v_cand)
    span = float(r.max() - r.min()) or 1.0
    nrmse = float(np.sqrt(np.mean((r - c) ** 2))) / span
    peak_ref = float(r.max()) or 1.0
    mean_ref = float(r.mean()) or 1.0
    ref_summary = summarize_oscillation(tt, r, reference_level)
    cand_summary = summarize_oscillation(tt, c, reference_level)
    return AgreementReport(
        nrmse=nrmse,
        peak_ratio=float(c.max()) / peak_ref,
        mean_ratio=float(c.mean()) / mean_ref,
        reference_class=ref_summary.classification,
        candidate_class=cand_summary.classification,
        reference_period=ref_summary.period,
        candidate_period=cand_summary.period,
    )


def fluid_vs_packet(
    params: BCNParams,
    *,
    duration: float,
    frame_bits: int = 1500 * 8,
    initial_rate: float | None = None,
    regulator_mode: str = "fluid-exact",
    fluid_mode: str = "physical",
    fluid_engine: str = "reference",
    packet_engine: str = "reference",
) -> tuple[AgreementReport, dict]:
    """Run both substrates from matched initial conditions and compare.

    The DES uses the fluid-matched regulator semantics and unconditional
    positive feedback (the paper's idealisation); the fluid model runs in
    ``"physical"`` mode (buffer saturations included) so both sides see
    the same constraints.

    ``fluid_engine`` selects the fluid side: ``"reference"`` (default)
    is the event-accurate ``solve_ivp`` integrator, ``"batch"`` the
    vectorized RK4 kernel (:mod:`repro.fluid.batch`) — useful when the
    comparison is swept over many parameter points and the fluid side
    dominates the sweep cost.  ``packet_engine`` selects the packet
    side the same way: ``"reference"`` (event-driven oracle) or
    ``"batched"`` (frame-train batching, see
    :class:`~repro.simulation.network.BCNNetworkSimulator`).

    Returns the agreement report plus a dict of the raw series for
    plotting (keys ``fluid_t``, ``fluid_q``, ``packet_t``, ``packet_q``).
    """
    if initial_rate is None:
        initial_rate = 1.5 * params.capacity / params.n_flows
    net = BCNNetworkSimulator(
        params,
        frame_bits=frame_bits,
        initial_rate=initial_rate,
        regulator_mode=regulator_mode,
        fb_bits=None,
        require_association=False,
        positive_only_below_q0=False,
        random_sampling=True,
        enable_pause=False,
        engine=packet_engine,
    )
    packet = net.run(duration)

    y0 = params.n_flows * initial_rate - params.capacity
    if fluid_engine == "batch":
        from ..fluid.batch import simulate_fluid_batch

        fluid = simulate_fluid_batch(
            params.normalized(),
            np.array([-params.q0]),
            np.array([y0]),
            t_max=duration,
            mode=fluid_mode,
            max_switches=10_000,
        ).trajectory(0)
    elif fluid_engine == "reference":
        fluid = simulate_fluid(
            params.normalized(),
            x0=-params.q0,
            y0=y0,
            t_max=duration,
            mode=fluid_mode,
            max_switches=10_000,
        )
    else:
        raise ValueError(f"unknown fluid engine {fluid_engine!r}")
    report = compare_series(
        fluid.t,
        fluid.queue(),
        packet.t,
        packet.queue,
        reference_level=params.q0,
    )
    series = {
        "fluid_t": fluid.t,
        "fluid_q": fluid.queue(),
        "packet_t": packet.t,
        "packet_q": packet.queue,
    }
    return report, series

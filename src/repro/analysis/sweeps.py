"""Parameter sweep harness.

Runs a callable over the Cartesian grid of parameter overrides applied
to a base :class:`~repro.core.parameters.BCNParams` (or any dataclass
with a ``with_``-style replace), collecting one record per point.
Used by the criterion-validation experiment (V1) and the ablation
benches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from ..core.parameters import BCNParams

__all__ = ["SweepResult", "sweep", "grid"]


def _format_cell(value: Any) -> str:
    """One CSV cell, following ``viz.series.write_csv`` conventions.

    Floats use the same ``.10g`` format as the series writer; anything
    else is stringified and RFC-4180-quoted when it contains a comma,
    quote or newline (bare ``str()`` joins would corrupt the row).
    """
    if isinstance(value, (float, np.floating)):
        text = format(float(value), ".10g")
    else:
        text = str(value)
    if any(ch in text for ch in (",", '"', "\n", "\r")):
        text = '"' + text.replace('"', '""') + '"'
    return text


@dataclass
class SweepResult:
    """Records from a parameter sweep, with small-table conveniences."""

    axes: dict[str, list[Any]]
    records: list[dict[str, Any]] = field(default_factory=list)

    def column(self, key: str) -> list[Any]:
        """Extract one column across all records."""
        return [r[key] for r in self.records]

    def where(self, **conditions: Any) -> list[dict[str, Any]]:
        """Records matching all given key/value conditions."""
        return [
            r
            for r in self.records
            if all(r.get(k) == v for k, v in conditions.items())
        ]

    def to_rows(self, keys: list[str]) -> list[list[Any]]:
        """Project records onto a key list, for tabular printing."""
        return [[r.get(k) for k in keys] for r in self.records]

    def to_csv(self, path: str | Path, keys: list[str] | None = None) -> Path:
        """Write the records to a CSV file (floats in ``.10g``, quoted cells)."""
        if not self.records:
            raise ValueError("no records to write")
        cols = keys if keys is not None else sorted(self.records[0])
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            fh.write(",".join(_format_cell(c) for c in cols) + "\n")
            for record in self.records:
                fh.write(
                    ",".join(_format_cell(record.get(c, "")) for c in cols) + "\n"
                )
        return path


def grid(**axes: Iterable[Any]) -> list[dict[str, Any]]:
    """Cartesian product of named axes as a list of override dicts."""
    names = list(axes)
    combos = itertools.product(*(list(axes[n]) for n in names))
    return [dict(zip(names, values)) for values in combos]


def sweep(
    base: BCNParams,
    axes: Mapping[str, Iterable[Any]],
    evaluate: Callable[[BCNParams], Mapping[str, Any]],
    *,
    skip_invalid: bool = True,
) -> SweepResult:
    """Evaluate ``evaluate`` over the grid of overrides applied to ``base``.

    Each record contains the override values plus everything
    ``evaluate`` returns.  Parameter combinations that fail validation
    (e.g. ``q0 >= buffer_size``) are skipped when ``skip_invalid``.
    """
    axes_lists = {name: list(values) for name, values in axes.items()}
    result = SweepResult(axes=axes_lists)
    for overrides in grid(**axes_lists):
        try:
            params = base.with_(**overrides)
        except ValueError:
            if skip_invalid:
                continue
            raise
        record: dict[str, Any] = dict(overrides)
        record.update(evaluate(params))
        # reserved instrumentation key (see repro.runner.parallel): the
        # serial reference drops it too, keeping records differentially
        # identical to the parallel path
        record.pop("_kernel_wall", None)
        result.records.append(record)
    return result

"""Metrics, parameter sweeps and fluid-vs-packet validation."""

from .metrics import (
    OscillationSummary,
    amplitude_decay_ratio,
    find_peaks,
    jain_index,
    oscillation_period,
    overshoot,
    settling_time,
    summarize_oscillation,
    undershoot,
)
from .sensitivity import METRICS, PARAMETERS, elasticity, sensitivity_table
from .reporting import ReportEntry, ReproductionReport, run_reproduction_report
from .fairness import TwoFlowTrajectory, fairness_trajectory, simulate_two_flows
from .sweeps import SweepResult, grid, sweep
from .validation import AgreementReport, compare_series, fluid_vs_packet

__all__ = [
    "overshoot",
    "undershoot",
    "settling_time",
    "find_peaks",
    "oscillation_period",
    "amplitude_decay_ratio",
    "jain_index",
    "OscillationSummary",
    "summarize_oscillation",
    "SweepResult",
    "sweep",
    "grid",
    "AgreementReport",
    "compare_series",
    "fluid_vs_packet",
    "TwoFlowTrajectory",
    "simulate_two_flows",
    "fairness_trajectory",
    "ReproductionReport",
    "ReportEntry",
    "run_reproduction_report",
    "elasticity",
    "sensitivity_table",
    "METRICS",
    "PARAMETERS",
]

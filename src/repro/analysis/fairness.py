"""Fairness dynamics of the BCN rate laws (Chiu-Jain phase plane).

The paper adopts AIMD "since it has been proven to be stable, convergent
and fair under common network environments [11]" (Chiu & Jain 1989).
This module verifies that claim for the *BCN variant* of AIMD by lifting
the fluid model to two heterogeneous flows sharing the bottleneck:

.. math::

    \\dot q = r_1 + r_2 - C, \\qquad
    \\dot r_i = \\begin{cases}
        G_i R_u \\sigma & \\sigma > 0 \\\\
        G_d \\sigma r_i & \\sigma < 0
    \\end{cases}

with the shared measure ``sigma = (q0 - q) - w dq`` — both flows see the
*same* sigma, so increase episodes add equal amounts (moving parallel to
the fairness line) while decrease episodes scale each rate (moving
towards the origin along the current ray).  The classic Chiu-Jain
geometry then pulls every trajectory towards the fairness line
``r1 = r2``: each decrease-increase round multiplies the rate *gap*'s
share of the total.

:func:`simulate_two_flows` integrates the three-state system;
:func:`fairness_trajectory` projects it onto the Chiu-Jain plane
(``r1`` vs ``r2``) and reports the convergence of Jain's index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

from ..core.parameters import BCNParams
from .metrics import jain_index

__all__ = ["TwoFlowTrajectory", "simulate_two_flows", "fairness_trajectory"]


@dataclass
class TwoFlowTrajectory:
    """Sampled (q, r1, r2) trajectory of the two-flow fluid model."""

    params: BCNParams
    t: np.ndarray
    q: np.ndarray
    r1: np.ndarray
    r2: np.ndarray

    def jain_series(self) -> np.ndarray:
        """Jain's fairness index along the trajectory."""
        return np.array([
            jain_index(np.array([a, b])) for a, b in zip(self.r1, self.r2)
        ])

    def final_jain(self) -> float:
        return float(self.jain_series()[-1])

    def gap_series(self) -> np.ndarray:
        """Normalised rate gap ``|r1 - r2| / (r1 + r2)``."""
        total = self.r1 + self.r2
        return np.abs(self.r1 - self.r2) / np.where(total > 0, total, 1.0)

    def utilization_series(self) -> np.ndarray:
        return (self.r1 + self.r2) / self.params.capacity


def simulate_two_flows(
    params: BCNParams,
    *,
    r1_0: float,
    r2_0: float,
    q_0: float = 0.0,
    t_max: float,
    rtol: float = 1e-8,
    max_step: float | None = None,
) -> TwoFlowTrajectory:
    """Integrate the two-flow BCN fluid model from asymmetric rates.

    The queue is clamped at ``[0, B]`` through the same pinned dynamics
    as the single-flow physical model (empty queue feeds back
    ``sigma = q0``; full queue feeds back ``sigma = q0 - B``).
    """
    c, q0, w, pm = (params.capacity, params.q0, params.w, params.pm)
    gi_ru, gd = params.gi * params.ru, params.gd
    k_eff = w / (pm * c)
    buffer_size = params.buffer_size

    def rhs(t, state):
        q, r1, r2 = state
        dq = r1 + r2 - c
        if q <= 0.0 and dq < 0.0:
            dq_eff = 0.0
        elif q >= buffer_size and dq > 0.0:
            dq_eff = 0.0
        else:
            dq_eff = dq
        sigma = (q0 - min(max(q, 0.0), buffer_size)) - k_eff * dq_eff
        if sigma > 0:
            dr1 = gi_ru * sigma
            dr2 = gi_ru * sigma
        else:
            dr1 = gd * sigma * r1
            dr2 = gd * sigma * r2
        # rate floor at 0
        if r1 <= 0.0 and dr1 < 0.0:
            dr1 = 0.0
        if r2 <= 0.0 and dr2 < 0.0:
            dr2 = 0.0
        return [dq_eff, dr1, dr2]

    if max_step is None:
        a = params.ru * params.gi * 2
        max_step = 0.02 / np.sqrt(a / max(q0, 1.0)) if a > 0 else np.inf
        max_step = max(max_step, t_max / 20000.0)

    ts = np.linspace(0.0, t_max, 4000)
    sol = solve_ivp(rhs, (0.0, t_max), [q_0, r1_0, r2_0], t_eval=ts,
                    rtol=rtol, atol=1e-6 * c, max_step=max_step)
    q = np.clip(sol.y[0], 0.0, buffer_size)
    return TwoFlowTrajectory(params=params, t=sol.t, q=q,
                             r1=np.maximum(sol.y[1], 0.0),
                             r2=np.maximum(sol.y[2], 0.0))


def fairness_trajectory(
    params: BCNParams,
    *,
    imbalance: float = 4.0,
    t_max: float,
) -> TwoFlowTrajectory:
    """Canonical Chiu-Jain run: total = C, split ``imbalance : 1``."""
    if imbalance <= 0:
        raise ValueError("imbalance must be positive")
    total = params.capacity
    r1 = total * imbalance / (imbalance + 1.0)
    r2 = total / (imbalance + 1.0)
    return simulate_two_flows(params, r1_0=r1, r2_0=r2, t_max=t_max)

"""Reproduction report generation.

Runs every registered experiment and assembles a single markdown
report — the artefact a reviewer reads: per-experiment verdict tables,
pass/fail roll-up, and optionally the CSV series on the side.  Exposed
on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ReportEntry", "ReproductionReport", "run_reproduction_report"]


@dataclass
class ReportEntry:
    """One experiment's outcome inside the report."""

    experiment_id: str
    title: str
    passed: bool
    failing: list[str]
    wall_seconds: float
    rendered: str


@dataclass
class ReproductionReport:
    """The assembled report."""

    entries: list[ReportEntry] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(e.passed for e in self.entries)

    @property
    def total_wall_seconds(self) -> float:
        return sum(e.wall_seconds for e in self.entries)

    def summary_rows(self) -> list[list]:
        return [
            [e.experiment_id, "PASS" if e.passed else "FAIL",
             f"{e.wall_seconds:.1f}s", e.title]
            for e in self.entries
        ]

    def to_markdown(self) -> str:
        lines = [
            "# Reproduction report",
            "",
            f"{len(self.entries)} experiments, "
            f"{sum(e.passed for e in self.entries)} passed, "
            f"total {self.total_wall_seconds:.0f}s.",
            "",
            "| id | verdict | wall | title |",
            "|---|---|---|---|",
        ]
        for e in self.entries:
            verdict = "PASS" if e.passed else f"FAIL ({', '.join(e.failing)})"
            lines.append(
                f"| {e.experiment_id} | {verdict} | {e.wall_seconds:.1f}s "
                f"| {e.title} |"
            )
        lines.append("")
        for e in self.entries:
            lines += ["---", "", "```", e.rendered, "```", ""]
        return "\n".join(lines)

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_markdown())
        return path


def run_reproduction_report(
    ids: list[str] | None = None,
    *,
    csv_dir: str | Path | None = None,
    options_by_id: dict[str, dict] | None = None,
) -> ReproductionReport:
    """Run experiments (all by default) and assemble the report.

    ``options_by_id`` forwards keyword options to individual experiments
    (e.g. shorter durations for smoke runs).
    """
    from ..experiments import all_experiments, get_experiment

    report = ReproductionReport()
    chosen = ids if ids is not None else sorted(all_experiments())
    options_by_id = options_by_id or {}
    for experiment_id in chosen:
        run = get_experiment(experiment_id)
        start = time.perf_counter()
        result = run(render_plots=False, **options_by_id.get(experiment_id, {}))
        wall = time.perf_counter() - start
        if csv_dir is not None:
            result.save_series(csv_dir)
        report.entries.append(
            ReportEntry(
                experiment_id=experiment_id,
                title=result.title,
                passed=result.passed,
                failing=result.failing_verdicts(),
                wall_seconds=wall,
                rendered=result.render(),
            )
        )
    return report

"""Parameter sensitivity of the BCN loop's key figures of merit.

The paper's Remarks sketch how each knob moves the system (``max q``
grows with ``sqrt(N/C)``, ``w``/``pm`` touch only transients, ``q0``
trades warm-up time against buffer need); its conclusion promises a
fuller study as future work.  This module computes the full local
sensitivity picture:

* **elasticities** — logarithmic derivatives
  ``d ln(metric) / d ln(parameter)`` of any metric with respect to any
  physical knob, by central finite differences; an elasticity of 0.5
  means "metric grows like sqrt(parameter)";
* built-in metrics: Theorem 1's required buffer, the exact transient
  queue peak, the per-round contraction, and the 1% settling time;
* :func:`sensitivity_table` — the all-pairs matrix, which reproduces
  the Remarks' claims as numbers: buffer elasticity 0.5 in ``N``, -0.5
  in ``C`` (beyond the q0 floor), exactly 0 in ``w`` and ``pm``, while
  the settling time responds to ``w``/``pm`` alone.
"""

from __future__ import annotations

import math
from typing import Callable

from ..core.limit_cycle import linearized_contraction
from ..core.parameters import BCNParams
from ..core.phase_plane import PhasePlaneAnalyzer
from ..core.stability import required_buffer
from ..core.transient import settling_time

__all__ = ["METRICS", "PARAMETERS", "elasticity", "sensitivity_table"]


def _metric_required_buffer(params: BCNParams) -> float:
    return required_buffer(params)


def _metric_queue_peak(params: BCNParams) -> float:
    traj = PhasePlaneAnalyzer(params).compose(max_switches=12)
    return params.q0 + max(0.0, traj.max_x())


def _metric_contraction(params: BCNParams) -> float:
    return linearized_contraction(params.normalized())


def _metric_settling(params: BCNParams) -> float:
    return settling_time(params.normalized())


#: Figure-of-merit name -> callable.
METRICS: dict[str, Callable[[BCNParams], float]] = {
    "required_buffer": _metric_required_buffer,
    "queue_peak": _metric_queue_peak,
    "contraction": _metric_contraction,
    "settling_time": _metric_settling,
}

#: Physical knobs a network manager can turn.
PARAMETERS = ("n_flows", "capacity", "q0", "gi", "gd", "ru", "w", "pm")


def elasticity(
    params: BCNParams,
    metric: str | Callable[[BCNParams], float],
    parameter: str,
    *,
    rel_step: float = 0.02,
) -> float:
    """Logarithmic sensitivity ``d ln(metric)/d ln(parameter)``.

    Central differences with a multiplicative step.  Integer parameters
    (``n_flows``) are treated continuously through their effect on the
    derived constants (the fluid model itself is continuous in N).
    """
    fn = METRICS[metric] if isinstance(metric, str) else metric
    base_value = getattr(params, parameter)
    if base_value <= 0:
        raise ValueError(f"{parameter} must be positive for elasticity")
    up_value = base_value * (1.0 + rel_step)
    down_value = base_value * (1.0 - rel_step)
    if parameter == "n_flows":
        # keep the dataclass integral but difference across +-1 flow if
        # the relative step would round to nothing
        up_value = max(int(round(up_value)), int(base_value) + 1)
        down_value = min(int(round(down_value)), int(base_value) - 1)
        if down_value < 1:
            raise ValueError("n_flows too small for a central difference")
    up = fn(params.with_(**{parameter: up_value}))
    down = fn(params.with_(**{parameter: down_value}))
    if up <= 0 or down <= 0:
        raise ValueError("metric must stay positive across the step")
    return (math.log(up) - math.log(down)) / (
        math.log(up_value) - math.log(down_value)
    )


def sensitivity_table(
    params: BCNParams,
    *,
    metrics: list[str] | None = None,
    parameters: list[str] | None = None,
) -> dict[str, dict[str, float]]:
    """All-pairs elasticity matrix: ``{metric: {parameter: value}}``."""
    chosen_metrics = metrics if metrics is not None else list(METRICS)
    chosen_params = parameters if parameters is not None else list(PARAMETERS)
    table: dict[str, dict[str, float]] = {}
    for metric in chosen_metrics:
        row: dict[str, float] = {}
        for parameter in chosen_params:
            row[parameter] = elasticity(params, metric, parameter)
        table[metric] = row
    return table

"""Time-series metrics for queue/rate trajectories.

Quantifies the transient and steady behaviours the paper reasons about
qualitatively: overshoot past the reference, settling time into a band,
oscillation amplitude/period, geometric amplitude trend (the empirical
analogue of the return-map contraction) and Jain fairness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "overshoot",
    "undershoot",
    "settling_time",
    "find_peaks",
    "oscillation_period",
    "amplitude_decay_ratio",
    "jain_index",
    "OscillationSummary",
    "summarize_oscillation",
]


def overshoot(values: np.ndarray, reference: float) -> float:
    """Peak excursion above ``reference`` (0 if never exceeded)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return 0.0
    return max(0.0, float(values.max()) - reference)


def undershoot(values: np.ndarray, reference: float) -> float:
    """Deepest excursion below ``reference`` (0 if never below)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return 0.0
    return max(0.0, reference - float(values.min()))


def settling_time(
    t: np.ndarray, values: np.ndarray, reference: float, *, band: float
) -> float | None:
    """First time after which the signal stays within ``reference ± band``.

    Returns None if the signal never settles within the record.
    """
    t = np.asarray(t, dtype=float)
    values = np.asarray(values, dtype=float)
    if t.shape != values.shape or t.size == 0:
        raise ValueError("t and values must be equal-length, non-empty")
    if band <= 0:
        raise ValueError("band must be positive")
    outside = np.abs(values - reference) > band
    if not outside.any():
        return float(t[0])
    last_out = int(np.max(np.nonzero(outside)))
    if last_out == t.size - 1:
        return None
    return float(t[last_out + 1])


def find_peaks(
    t: np.ndarray,
    values: np.ndarray,
    *,
    min_prominence_frac: float = 0.0,
) -> list[tuple[float, float]]:
    """Local maxima of a sampled signal as ``(t, value)`` pairs.

    ``min_prominence_frac`` filters out ripples: a peak must rise at
    least that fraction of the signal's span above its surroundings
    (scipy prominence).  0 keeps every strict local maximum.
    """
    from scipy.signal import find_peaks as _scipy_find_peaks

    t = np.asarray(t, dtype=float)
    v = np.asarray(values, dtype=float)
    if v.size < 3:
        return []
    span = float(v.max() - v.min())
    prominence = min_prominence_frac * span if span > 0 else None
    idx, _ = _scipy_find_peaks(v, prominence=prominence or None)
    return [(float(t[i]), float(v[i])) for i in idx]


def oscillation_period(
    t: np.ndarray,
    values: np.ndarray,
    *,
    min_prominence_frac: float = 0.05,
) -> float | None:
    """Mean spacing between prominent local maxima (None if < 2 peaks).

    Prominence filtering (default 5% of the signal span) ignores
    sampling ripples, which matters for DES queue traces.
    """
    peaks = find_peaks(t, values, min_prominence_frac=min_prominence_frac)
    if len(peaks) < 2:
        return None
    times = np.array([p[0] for p in peaks])
    return float(np.mean(np.diff(times)))


def amplitude_decay_ratio(
    t: np.ndarray, values: np.ndarray, reference: float
) -> float | None:
    """Geometric ratio of successive peak excursions above ``reference``.

    The empirical analogue of the phase-plane return-map contraction:
    below 1 the oscillation decays, ~1 indicates a limit cycle, above 1
    divergence.  None with fewer than two peaks above the reference.
    """
    peaks = [
        v - reference
        for _, v in find_peaks(t, values, min_prominence_frac=0.05)
        if v > reference
    ]
    if len(peaks) < 2:
        return None
    ratios = [b / a for a, b in zip(peaks, peaks[1:]) if a > 0]
    if not ratios:
        return None
    return float(np.exp(np.mean(np.log(ratios))))


def jain_index(rates: np.ndarray) -> float:
    """Jain's fairness index ``(sum r)^2 / (n sum r^2)`` in ``(0, 1]``."""
    r = np.asarray(rates, dtype=float)
    if r.size == 0:
        raise ValueError("need at least one rate")
    denom = r.size * float(np.sum(r * r))
    if denom == 0.0:
        return 1.0
    return float(np.sum(r)) ** 2 / denom


@dataclass(frozen=True)
class OscillationSummary:
    """Compact description of a (possibly) oscillatory trajectory."""

    peak: float
    trough: float
    n_peaks: int
    period: float | None
    decay_ratio: float | None

    @property
    def classification(self) -> str:
        """``"converging"``, ``"limit_cycle"``, ``"diverging"`` or ``"monotone"``."""
        if self.decay_ratio is None:
            return "monotone"
        if self.decay_ratio > 1.02:
            return "diverging"
        if self.decay_ratio >= 0.98:
            return "limit_cycle"
        return "converging"


def summarize_oscillation(
    t: np.ndarray, values: np.ndarray, reference: float
) -> OscillationSummary:
    """Summarise the oscillatory structure of a trajectory."""
    v = np.asarray(values, dtype=float)
    peaks = find_peaks(t, v, min_prominence_frac=0.05)
    return OscillationSummary(
        peak=float(v.max()) if v.size else math.nan,
        trough=float(v.min()) if v.size else math.nan,
        n_peaks=len(peaks),
        period=oscillation_period(t, v),
        decay_ratio=amplitude_decay_ratio(t, v, reference),
    )

"""Figure 9 — Case 3: spiral increase, node decrease — no overshoot.

For ``a < 4 pm^2 C^2 / w^2`` and ``b > 4 pm^2 C / w^2``, Fig. 9 shows
the trajectory spiralling out of ``(-q0, 0)``, crossing the switching
line once in the second quadrant, and then — because the decrease
region is a node whose slow invariant line ``y = lambda_2 x`` is an
asymptote — sliding into the equilibrium while **remaining in the
second quadrant**: the queue never overshoots the reference ``q0``
(Fig. 9(b)), so the system is strongly stable for *any* buffer larger
than ``q0``.  Reproduced checks:

* case classification and exactly one switching-line crossing;
* ``x(t) < 0`` for all time (queue strictly below ``q0``; approaches
  from below);
* strong stability holds even with a buffer barely above ``q0``;
* Proposition 4 governs and agrees.
"""

from __future__ import annotations

import numpy as np

from ..core.phase_plane import PaperCase, PhasePlaneAnalyzer, classify_case
from ..core.stability import proposition4_applies, strong_stability_report
from ..viz.ascii import line_plot, phase_plot
from .base import ExperimentResult, register
from .presets import CASE3, scale_free

__all__ = ["run"]


@register("fig9")
def run(*, render_plots: bool = True) -> ExperimentResult:
    p = CASE3
    analyzer = PhasePlaneAnalyzer(p)
    result = ExperimentResult(
        experiment_id="fig9",
        title="Case 3: spiral increase / node decrease — no overshoot (Fig. 9)",
        table_headers=["quantity", "value"],
    )
    result.verdicts["classifies_as_case3"] = classify_case(p) is PaperCase.CASE3

    traj = analyzer.compose(max_switches=20)
    samples = traj.sample(300)
    result.series["t"] = samples[:, 0]
    result.series["x"] = samples[:, 1]
    result.series["y"] = samples[:, 2]

    result.verdicts["single_crossing"] = traj.n_switches == 1
    result.verdicts["never_overshoots_q0"] = traj.max_x() <= 1e-9 * p.q0
    result.verdicts["queue_stays_in_second_quadrant_after_crossing"] = bool(
        np.all(samples[:, 1] <= 1e-9 * p.q0)
    )
    result.table_rows.append(["max x (should be <= 0)", traj.max_x()])
    result.table_rows.append(["crossings", traj.n_switches])

    # Strong stability survives a buffer barely above q0.
    p_tight = scale_free(p.a, p.b, k=p.k, capacity=p.capacity, q0=p.q0,
                         buffer_size=1.05 * p.q0)
    tight_report = strong_stability_report(p_tight)
    result.verdicts["strongly_stable_with_tight_buffer"] = tight_report.strongly_stable
    result.verdicts["proposition4_governs"] = (
        proposition4_applies(p) and tight_report.proposition == 4
    )

    if render_plots:
        result.plots.append(
            phase_plot(samples[:, 1], samples[:, 2], switching_k=p.k,
                       title="Fig.9(a): Case-3 phase trajectory")
        )
        result.plots.append(
            line_plot(samples[:, 0], samples[:, 1], reference=0.0,
                      title="Fig.9(b): x(t) approaches 0 from below")
        )
    return result

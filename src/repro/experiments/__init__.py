"""One module per reproduced figure/table of the paper.

================  ==================================================
id                artefact
================  ==================================================
``fig3``          Fig. 3 — trajectory taxonomy vs strong stability
``fig4``          Fig. 4 — spiral trajectories and extrema
``fig5``          Fig. 5 — node trajectories and invariant lines
``fig6``          Fig. 6 — Case 1 dynamics (eqs. 36-37 check)
``fig7``          Fig. 7 — limit-cycle motion
``fig8``          Fig. 8 — Case 2 dynamics (eq. 38 check)
``fig9``          Fig. 9 — Case 3: no overshoot
``fig10``         Fig. 10 — Case 4 (and 5): no overshoot
``t1``            Section IV Remarks — Theorem 1 worked example
``v1``            extension — Theorem 1 conservativeness sweep
``v2``            extension — fluid vs packet-level agreement
``v3``            extension — BCN vs QCN/E2CM/FERA/AIMD
``v4``            extension — Chiu-Jain fairness of the BCN laws
``v5``            extension — trace-driven fat-tree (mice/elephants)
``v6``            extension — heterogeneous sources vs mean field
``d1``            extension — feedback delay / Hopf limit cycle
``m1``            extension — victim flow: PAUSE spreading vs BCN
``s1``            extension — scenario presets: incast + varying C(t)
================  ==================================================

Run one with ``get_experiment("fig6")(render_plots=True)`` or all via
``python -m repro.experiments``.
"""

from . import (  # noqa: F401  (registration side effects)
    d1_delay,
    fig3_taxonomy,
    fig4_spiral,
    fig5_node,
    fig6_case1,
    fig7_limit_cycle,
    fig8_case2,
    fig9_case3,
    fig10_case4,
    m1_victim_flow,
    s1_scenarios,
    t1_theorem1,
    v1_criterion_sweep,
    v2_fluid_vs_packet,
    v3_baselines,
    v4_fairness,
    v5_trace_driven,
    v6_heterogeneity,
)
from .base import ExperimentResult, all_experiments, get_experiment

__all__ = ["ExperimentResult", "get_experiment", "all_experiments"]

"""Figure 6 — Case 1 dynamics: spiral in both regions.

Fig. 6 shows, for ``a < 4 pm^2 C^2 / w^2`` and ``b < 4 pm^2 C / w^2``,
(a) the phase trajectory from the canonical start ``(-q0, 0)`` winding
across the switching line round after round, (b) the queue offset
``x(t)`` as a decaying oscillation whose first peak/trough are
``max_x^s``/``min_x^s``, and (c) the rate offset ``y(t)``.  Reproduced
checks:

* the case classifies as Case 1 and both regions are foci;
* the composed trajectory's first-round peak and trough equal the
  paper's chained closed forms (eqs. 36-37) to near machine precision;
* extrema alternate in sign and decay geometrically (the linearised
  return-map contraction), so the system converges — and the measured
  per-round decay matches ``exp(pi(alpha_i/beta_i + alpha_d/beta_d))``;
* the strong-stability report applies Proposition 2 and its verdict
  matches the trajectory-level Definition 1 check.
"""

from __future__ import annotations

import numpy as np

from ..core.limit_cycle import linearized_contraction
from ..core.phase_plane import PaperCase, PhasePlaneAnalyzer, classify_case
from ..core.stability import case1_excursion_bounds, strong_stability_report
from ..viz.ascii import line_plot, phase_plot
from .base import ExperimentResult, register
from .presets import CASE1_SLOW

__all__ = ["run"]


@register("fig6")
def run(*, render_plots: bool = True) -> ExperimentResult:
    p = CASE1_SLOW
    analyzer = PhasePlaneAnalyzer(p)
    result = ExperimentResult(
        experiment_id="fig6",
        title="Case 1: spiral/spiral dynamics from (-q0, 0) (Fig. 6)",
        table_headers=["quantity", "composed trajectory", "paper closed form", "rel err"],
    )

    result.verdicts["classifies_as_case1"] = classify_case(p) is PaperCase.CASE1

    traj = analyzer.compose(max_switches=40)
    samples = traj.sample(200)
    result.series["t"] = samples[:, 0]
    result.series["x"] = samples[:, 1]
    result.series["y"] = samples[:, 2]

    max1, min1 = case1_excursion_bounds(p)
    peaks = [x for _, x in traj.extrema if x > 0]
    troughs = [x for _, x in traj.extrema if x < 0]
    rel_peak = abs(peaks[0] - max1) / abs(max1)
    rel_trough = abs(troughs[0] - min1) / abs(min1)
    result.table_rows.append(["first peak max1{x}", peaks[0], max1, rel_peak])
    result.table_rows.append(["first trough min1{x}", troughs[0], min1, rel_trough])
    result.verdicts["eq36_matches_first_peak"] = rel_peak < 1e-9
    result.verdicts["eq37_matches_first_trough"] = rel_trough < 1e-9

    # Alternating, decaying extrema.
    signs = [np.sign(x) for _, x in traj.extrema[:8]]
    result.verdicts["extrema_alternate"] = all(
        a != b for a, b in zip(signs, signs[1:])
    )
    rho_measured = peaks[1] / peaks[0] if len(peaks) >= 2 else np.nan
    rho_predicted = linearized_contraction(p)
    result.table_rows.append(
        ["per-round contraction", rho_measured, rho_predicted,
         abs(rho_measured - rho_predicted) / rho_predicted]
    )
    result.verdicts["contraction_matches_closed_form"] = (
        abs(rho_measured - rho_predicted) / rho_predicted < 1e-6
    )
    result.verdicts["oscillation_decays"] = rho_measured < 1.0

    report = strong_stability_report(p)
    result.verdicts["proposition2_governs"] = report.proposition == 2
    result.verdicts["report_consistent"] = report.consistent
    result.verdicts["strongly_stable"] = report.strongly_stable

    if render_plots:
        result.plots.append(
            phase_plot(samples[:, 1], samples[:, 2], switching_k=p.k,
                       title="Fig.6(a): Case-1 phase trajectory")
        )
        result.plots.append(
            line_plot(samples[:, 0], samples[:, 1], reference=0.0,
                      title="Fig.6(b): queue offset x(t)")
        )
        result.plots.append(
            line_plot(samples[:, 0], samples[:, 2], reference=0.0,
                      title="Fig.6(c): rate offset y(t)")
        )
    return result

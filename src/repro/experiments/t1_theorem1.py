"""T1 — Theorem 1's worked example and buffer-sizing guidance.

The Remarks of Section IV apply Theorem 1 to a concrete DCE
configuration: ``N = 50`` flows on a ``C = 10`` Gbit/s, 100 m link
(0.5 us propagation delay), ``q0 = 2.5`` Mbit, and the standard-draft
gains ``Gi = 4``, ``Gd = 1/128``, ``Ru = 8`` Mbit/s.  The paper reports:

* required buffer ``(1 + sqrt(Ru Gi N / (Gd C))) q0 ~= 13.75`` Mbit,
  "nearly three times" the 5 Mbit bandwidth-delay product;
* ``max q(t)`` scales with ``sqrt(N / C) * q0`` and is independent of
  ``w`` and ``pm``;
* decreasing ``Gi`` / increasing ``Gd`` shrinks the required buffer at
  the cost of sluggish convergence; small ``q0`` helps stability but
  stretches the start-up time ``T0 = (C - N mu)/(N Ru Gi q0)``.

All of this is reproduced and checked.  One arithmetic note (recorded,
not "fixed"): 10 Gbit/s x 0.5 us is 5 *kbit*, so the paper's "5 Mbits"
BDP corresponds to a 0.5 ms RTT (or is quoted at a 1000x scale); we
carry the paper's 5 Mbit figure for the ratio comparison and also
report the literal product.
"""

from __future__ import annotations

import math

from ..core.parameters import paper_example_params
from ..core.stability import required_buffer, strong_stability_report
from .base import ExperimentResult, register

__all__ = ["run"]

PAPER_REQUIRED_MBIT = 13.75
PAPER_BDP_MBIT = 5.0


@register("t1")
def run(*, render_plots: bool = True) -> ExperimentResult:
    p = paper_example_params()
    result = ExperimentResult(
        experiment_id="t1",
        title="Theorem 1 worked example (Section IV Remarks)",
        table_headers=["quantity", "paper", "reproduced", "rel err"],
    )

    required = required_buffer(p)
    rel = abs(required / 1e6 - PAPER_REQUIRED_MBIT) / PAPER_REQUIRED_MBIT
    result.table_rows.append(
        ["required buffer (Mbit)", PAPER_REQUIRED_MBIT, required / 1e6, rel]
    )
    result.verdicts["required_buffer_matches_paper"] = rel < 0.01

    ratio = required / (PAPER_BDP_MBIT * 1e6)
    result.table_rows.append(
        ["required / BDP", "nearly 3x", ratio, abs(ratio - 2.75) / 2.75]
    )
    result.verdicts["nearly_three_times_bdp"] = 2.5 <= ratio <= 3.0

    literal_bdp = p.capacity * 0.5e-6
    result.table_rows.append(
        ["literal C*delay (bits)", "5e6 (paper)", literal_bdp, float("nan")]
    )

    # The bound dominates the actual transient peak (composed trajectory).
    report = strong_stability_report(p)
    result.table_rows.append(
        ["max q(t) (Mbit)", "<= bound", report.queue_peak / 1e6,
         report.queue_peak / required]
    )
    result.verdicts["bound_dominates_peak"] = report.queue_peak <= required
    result.verdicts["strongly_stable_with_20Mbit_buffer"] = report.strongly_stable

    # Scaling claims: sqrt(N/C) growth; independence from w and pm.
    required_4n = required_buffer(p.with_(n_flows=200))
    expected = p.q0 + (required - p.q0) * 2.0  # sqrt(4N) = 2 sqrt(N)
    result.table_rows.append(
        ["buffer at 4N (Mbit)", expected / 1e6, required_4n / 1e6,
         abs(required_4n - expected) / expected]
    )
    result.verdicts["scales_with_sqrt_n"] = (
        abs(required_4n - expected) / expected < 1e-9
    )
    result.verdicts["independent_of_w_pm"] = (
        required_buffer(p.with_(w=4.0)) == required
        and required_buffer(p.with_(pm=0.05)) == required
    )

    # Gain trade-off: smaller Gi (or larger Gd) shrinks the buffer...
    gentler = p.with_(gi=1.0)
    result.verdicts["smaller_gi_shrinks_buffer"] = (
        required_buffer(gentler) < required
    )
    # ...but slows convergence (longer start-up and weaker contraction).
    t0_base = p.warmup_duration()
    t0_small_q0 = p.with_(q0=p.q0 / 4).warmup_duration()
    result.table_rows.append(["warm-up T0 (s)", "grows as q0 shrinks",
                              t0_base, float("nan")])
    result.verdicts["smaller_q0_stretches_warmup"] = t0_small_q0 > t0_base

    result.notes.append(
        "sqrt(Ru Gi N/(Gd C)) = "
        f"{math.sqrt(p.ru * p.gi * p.n_flows / (p.gd * p.capacity)):.4f}; "
        "the paper's 13.75 Mbit corresponds to rounding this factor to 4.5."
    )
    return result

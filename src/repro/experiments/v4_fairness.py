"""V4 (extension) — AIMD fairness of the BCN rate laws (Chiu-Jain).

The paper adopts AIMD citing Chiu & Jain's proof that it converges to
fairness; this experiment verifies the property holds for the *BCN
variant* (shared sigma, per-source multiplicative decrease) by lifting
the fluid model to two heterogeneous flows and watching the Chiu-Jain
plane:

* from a 4:1 rate split at full load, Jain's index climbs monotonically
  (after the transient) to 1;
* the normalised rate gap decays geometrically — each
  decrease/increase round multiplies it by a fixed factor < 1;
* the bottleneck stays near full utilisation throughout (fairness is
  not bought with idle capacity);
* the fairness dynamics are BCN's decrease law at work: a run with the
  multiplicative decrease replaced by *additive* decrease (AIAD) keeps
  the gap constant — Chiu & Jain's classic negative result, reproduced
  as the control arm.
"""

from __future__ import annotations

import numpy as np

from ..analysis.fairness import fairness_trajectory, simulate_two_flows
from ..core.parameters import BCNParams
from ..viz.ascii import line_plot
from .base import ExperimentResult, register

__all__ = ["run", "fairness_params"]


def fairness_params() -> BCNParams:
    """A gentle-gain two-flow configuration (smooth fluid dynamics)."""
    return BCNParams(
        capacity=1e9,
        n_flows=2,
        q0=2e6,
        buffer_size=16e6,
        pm=0.1,
        gd=1e-5,
        ru=2000.0,
    )


def _aiad_gap_ratio(params: BCNParams, t_max: float) -> float:
    """Control arm: additive-increase/additive-decrease keeps the gap.

    With both laws additive the two rates receive identical derivatives,
    so the absolute gap r1 - r2 is exactly conserved; we verify by
    direct integration of the AIAD variant.
    """
    from scipy.integrate import solve_ivp

    c, q0, w, pm = params.capacity, params.q0, params.w, params.pm
    gi_ru = params.gi * params.ru
    k_eff = w / (pm * c)
    total = params.capacity
    r1_0, r2_0 = 0.8 * total, 0.2 * total

    def rhs(t, state):
        q, r1, r2 = state
        dq = r1 + r2 - c
        if (q <= 0 and dq < 0) or (q >= params.buffer_size and dq > 0):
            dq = 0.0
        sigma = (q0 - min(max(q, 0.0), params.buffer_size)) - k_eff * dq
        # additive in BOTH directions (the Chiu-Jain negative case)
        dr = gi_ru * sigma
        return [dq, dr, dr]

    sol = solve_ivp(rhs, (0.0, t_max), [0.0, r1_0, r2_0], rtol=1e-8,
                    max_step=t_max / 5000.0)
    gap_start = abs(r1_0 - r2_0)
    gap_end = abs(sol.y[1][-1] - sol.y[2][-1])
    return gap_end / gap_start


@register("v4")
def run(*, render_plots: bool = True, t_max: float = 3.0) -> ExperimentResult:
    params = fairness_params()
    result = ExperimentResult(
        experiment_id="v4",
        title="Chiu-Jain fairness of the BCN AIMD laws (two-flow fluid)",
        table_headers=["quantity", "value"],
    )

    traj = fairness_trajectory(params, imbalance=4.0, t_max=t_max)
    jain = traj.jain_series()
    gap = traj.gap_series()
    util = traj.utilization_series()
    result.series["t"] = traj.t
    result.series["r1"] = traj.r1
    result.series["r2"] = traj.r2
    result.series["jain"] = jain
    result.table_rows.append(["Jain index start", float(jain[0])])
    result.table_rows.append(["Jain index end", float(jain[-1])])
    result.table_rows.append(["rate gap start", float(gap[0])])
    result.table_rows.append(["rate gap end", float(gap[-1])])
    result.table_rows.append(["mean utilisation (settled)",
                              float(util[traj.t > t_max / 3].mean())])

    result.verdicts["jain_converges_to_one"] = float(jain[-1]) > 0.999
    result.verdicts["gap_decays_by_100x"] = float(gap[-1]) < 0.01 * float(gap[0])
    # geometric decay: log-gap roughly linear over the mid-run
    mid = (traj.t > 0.2 * t_max) & (traj.t < 0.8 * t_max) & (gap > 1e-12)
    if mid.sum() > 100:
        log_gap = np.log(gap[mid])
        slope, intercept = np.polyfit(traj.t[mid], log_gap, 1)
        residual = np.std(log_gap - (slope * traj.t[mid] + intercept))
        result.table_rows.append(["gap decay rate (1/s)", float(-slope)])
        result.verdicts["gap_decay_geometric"] = (
            slope < 0 and residual < 0.6
        )
    result.verdicts["link_stays_utilized"] = bool(
        util[traj.t > t_max / 3].mean() > 0.9
    )

    # second start: different imbalance, same destination
    traj2 = simulate_two_flows(params, r1_0=0.95e9, r2_0=0.05e9, t_max=t_max)
    result.verdicts["converges_from_extreme_split"] = (
        traj2.final_jain() > 0.99
    )

    # control arm: AIAD keeps the gap (Chiu-Jain's negative result)
    aiad_ratio = _aiad_gap_ratio(params, t_max)
    result.table_rows.append(["AIAD gap retention", aiad_ratio])
    result.verdicts["aiad_does_not_converge"] = aiad_ratio > 0.9

    if render_plots:
        result.plots.append(
            line_plot(traj.t, jain, reference=1.0,
                      title="V4: Jain index along the two-flow trajectory")
        )
        result.plots.append(
            line_plot(traj.t, traj.r1 / 1e6, title="V4: r1 (Mbit/s)",
                      height=8)
        )
    result.notes.append(
        "Multiplicative decrease does the equalising: decrease episodes "
        "scale both rates (shrinking the gap share), increase episodes "
        "add equally — the Chiu-Jain geometry in BCN's laws."
    )
    return result

"""V2 (extension) — fluid model vs packet-level DES agreement.

The paper's results live entirely in the fluid approximation; this
experiment checks that the packet-level substrate reproduces the same
queue dynamics where the approximation's premises hold (BCN message
interval well below the control-loop period).  The run uses the
fluid-matched regulator semantics and the paper's idealised
unconditional positive feedback, then compares shapes: both sides must
show the same decaying oscillation around ``q0`` with commensurate peak
and period.
"""

from __future__ import annotations

from ..analysis.validation import fluid_vs_packet
from ..core.parameters import BCNParams
from ..viz.ascii import line_plot
from .base import ExperimentResult, register

__all__ = ["run", "validation_params"]


def validation_params() -> BCNParams:
    """A regime where the fluid limit holds: message interval ~1 ms
    (1.5 kbit frames, ``pm = 0.1``) against a ~50 ms spiral period."""
    return BCNParams(
        capacity=1e9,
        n_flows=10,
        q0=2e6,
        buffer_size=16e6,
        w=2.0,
        pm=0.1,
        gi=4.0,
        gd=1e-5,
        ru=400.0,
    )


@register("v2")
def run(*, render_plots: bool = True, duration: float = 0.4,
        engine: str = "reference") -> ExperimentResult:
    params = validation_params()
    report, series = fluid_vs_packet(params, duration=duration, frame_bits=1500,
                                     packet_engine=engine)
    result = ExperimentResult(
        experiment_id="v2",
        title="Fluid model vs packet-level DES (queue trajectory shape)",
        table_headers=["metric", "value"],
        series={
            "fluid_t": series["fluid_t"],
            "fluid_q": series["fluid_q"],
            "packet_t": series["packet_t"],
            "packet_q": series["packet_q"],
        },
    )
    result.table_rows.append(["nrmse", report.nrmse])
    result.table_rows.append(["peak ratio (packet/fluid)", report.peak_ratio])
    result.table_rows.append(["mean ratio", report.mean_ratio])
    result.table_rows.append(["period ratio", report.period_ratio])
    result.table_rows.append(["fluid class", report.reference_class])
    result.table_rows.append(["packet class", report.candidate_class])

    result.verdicts["same_oscillation_class"] = (
        report.reference_class == report.candidate_class
    )
    result.verdicts["peak_within_2x"] = 0.5 <= report.peak_ratio <= 2.0
    result.verdicts["steady_mean_within_50pct"] = 0.5 <= report.mean_ratio <= 1.5
    if report.period_ratio is not None:
        result.verdicts["period_within_50pct"] = 0.5 <= report.period_ratio <= 1.5

    if render_plots:
        result.plots.append(
            line_plot(series["fluid_t"], series["fluid_q"] / 1e6,
                      reference=params.q0 / 1e6,
                      title="V2: fluid q(t) (Mbit)")
        )
        result.plots.append(
            line_plot(series["packet_t"], series["packet_q"] / 1e6,
                      reference=params.q0 / 1e6,
                      title="V2: packet-level q(t) (Mbit)")
        )
    return result

"""Figure 4 — logarithmic-spiral trajectories of the focus case.

Fig. 4 shows two spiral phase trajectories of a focus-type subsystem
(``m^2 - 4n < 0``) starting from ``(x1(0), y1(0))`` (above the x-axis)
and ``(x2(0), y2(0))`` (below), with their first extrema
``max_x^s``/``min_x^s`` marked.  The reproduced checks:

* the closed-form solution (eq. 12) satisfies the ODE and, in the polar
  coordinates of eq. (17), has monotonically shrinking radius
  (``r = sqrt(c1) e^{alpha theta / beta}`` with ``alpha < 0``);
* the extremum time/value formulas (eqs. 18-20) agree with the robust
  evaluation at the first ``y = 0`` crossing;
* extrema lie exactly on the x-axis (``y = 0``) with alternating sides.
"""

from __future__ import annotations

import numpy as np

from ..core.eigen import Region, region_eigenstructure
from ..core.extrema import spiral_extremum_paper
from ..core.trajectories import SpiralTrajectory
from ..viz.ascii import phase_plot
from .base import ExperimentResult, register
from .presets import CASE1_SLOW

__all__ = ["run"]


@register("fig4")
def run(*, render_plots: bool = True) -> ExperimentResult:
    p = CASE1_SLOW
    eig = region_eigenstructure(p, Region.INCREASE)
    result = ExperimentResult(
        experiment_id="fig4",
        title="Spiral (stable focus) trajectories and extrema (Fig. 4)",
        table_headers=[
            "start", "t* (robust)", "extremum (robust)", "extremum (paper eq.19/20)",
            "rel err",
        ],
    )

    starts = {
        "p1": (-0.8 * p.q0, 0.6 * p.capacity / 10.0),
        "p2": (0.5 * p.q0, -0.4 * p.capacity / 10.0),
    }
    formulas_agree = True
    radius_monotone = True
    for name, (x0, y0) in starts.items():
        traj = SpiralTrajectory(x0, y0, eig)
        t_star = traj.first_y_zero_time()
        ext_robust = traj.extremum_x()
        ext_paper = spiral_extremum_paper(eig, x0, y0)
        rel = abs(ext_paper - ext_robust) / max(abs(ext_robust), 1e-12)
        formulas_agree = formulas_agree and rel < 1e-9
        result.table_rows.append([f"{name} ({x0:.3g},{y0:.3g})", t_star,
                                  ext_robust, ext_paper, rel])

        # Sample three revolutions; check the polar radius decreases.
        ts = np.linspace(0.0, 3.0 * traj.revolution_period(), 600)
        states = traj.states(ts)
        radii = np.array([traj.polar(t)[0] for t in ts])
        radius_monotone = radius_monotone and bool(np.all(np.diff(radii) < 1e-12))
        result.series[f"{name}_x"] = states[:, 0]
        result.series[f"{name}_y"] = states[:, 1]

        # The extremum sits on the x-axis: y(t*) = 0 and the sign of the
        # extremum matches the paper's rule (max for y0 > 0).
        y_at_star = traj.state(t_star)[1]
        result.verdicts[f"{name}_extremum_on_axis"] = abs(y_at_star) <= 1e-9 * abs(y0)
        expected_max = y0 > 0
        result.verdicts[f"{name}_extremum_side"] = (
            (ext_robust > x0) if expected_max else (ext_robust < x0)
        )

    result.verdicts["paper_formulas_match_robust"] = formulas_agree
    result.verdicts["polar_radius_monotone_decreasing"] = radius_monotone

    if render_plots:
        result.plots.append(
            phase_plot(
                np.concatenate([result.series["p1_x"], result.series["p2_x"]]),
                np.concatenate([result.series["p1_y"], result.series["p2_y"]]),
                title="Fig.4: two spiral trajectories (stable focus)",
            )
        )
    return result

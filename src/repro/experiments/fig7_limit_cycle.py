"""Figure 7 — limit-cycle motion of the BCN queue.

Fig. 7 shows a closed phase trajectory: queue and rate oscillating with
constant amplitude forever, a behaviour "observed in some experiments
of [4]" that linear analysis cannot explain.  This experiment
reproduces the phenomenon and sharpens the paper's account of *when* it
occurs:

1. **Return-map scan.**  For generic parameters the Poincaré return map
   on the switching line is strictly contracting at every amplitude
   (``P(y)/y <= rho_lin < 1``): the increase region is exactly linear
   with fixed contraction and the decrease nonlinearity only helps.  So
   the smooth fluid model has **no isolated interior limit cycle**, and
   the paper's cycle condition ``x_i^k(0) = x_i^{k+1}(0)`` is the
   knife-edge ``rho = 1``.
2. **The w -> 0 mechanism.**  All damping in the BCN loop enters
   through ``k = w/(pm C)`` — the weight of the queue *derivative* in
   ``sigma``.  The per-round contraction is
   ``rho = exp(-pi k (sqrt(a) + sqrt(bC))/2 + O(k^3))``, so
   ``rho -> 1`` as ``w -> 0``: with the derivative term disabled the
   feedback is purely proportional to the queue offset, both regions
   become undamped centers, and **every** orbit closes — the queue and
   rate oscillate forever with initial-condition-dependent amplitude,
   exactly Fig. 7's picture (an oval with different half-widths
   ``y0/sqrt(bC)`` right of the line and ``y0/sqrt(a)`` left of it).
   We reproduce the closed orbit at ``k = 1e-6`` and verify amplitude
   constancy and closure over several rounds.
3. **Residual cycling in the real system.**  The quantized DES never
   converges exactly — FB quantization leaves a persistent hunting
   oscillation around ``q0`` whose amplitude floors near the
   quantization unit; measured here as a non-vanishing steady-state
   queue std.

Together: limit cycles in BCN mark the loss of derivative damping
(small ``w``, aggressive sampling scaling) plus the granularity of real
feedback — and they sit outside strong stability because the system
never settles, as the paper argues.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.limit_cycle import amplitude_scan, find_limit_cycle, linearized_contraction
from ..core.parameters import paper_example_params
from ..fluid.batch import simulate_fluid_batch
from ..simulation.network import BCNNetworkSimulator
from ..viz.ascii import line_plot, phase_plot
from .base import ExperimentResult, register
from .presets import CASE1_SLOW, scale_free

__all__ = ["run"]


@register("fig7")
def run(*, render_plots: bool = True, with_des: bool = True) -> ExperimentResult:
    p = CASE1_SLOW
    result = ExperimentResult(
        experiment_id="fig7",
        title="Limit-cycle motion (Fig. 7)",
        table_headers=["quantity", "value"],
    )

    # 1. Generic parameters: the smooth model contracts everywhere.
    rho_lin = linearized_contraction(p)
    ys = np.geomspace(1e-3 * p.capacity, 0.9 * p.capacity, 10)
    scan = amplitude_scan(p, ys)
    ratios = scan[:, 1]
    result.series["scan_y"] = scan[:, 0]
    result.series["scan_ratio"] = ratios
    result.table_rows.append(["rho_lin at k=0.1", rho_lin])
    result.table_rows.append(["max nonlinear P(y)/y", float(ratios.max())])
    result.verdicts["smooth_model_contracts_everywhere"] = bool(np.all(ratios < 1.0))
    result.verdicts["no_interior_limit_cycle"] = find_limit_cycle(p) is None

    # 2. rho -> 1 as k -> 0 (loss of derivative damping).
    rhos = []
    for k in (0.2, 0.05, 0.01, 0.001):
        pk = scale_free(p.a, p.b, k=k, capacity=p.capacity, q0=p.q0,
                        buffer_size=p.buffer_size)
        rhos.append(linearized_contraction(pk))
        result.table_rows.append([f"rho at k={k}", rhos[-1]])
    result.verdicts["contraction_vanishes_as_k_to_0"] = bool(
        np.all(np.diff(rhos) > 0) and rhos[-1] > 0.99
    )
    predicted = math.exp(
        -math.pi * 0.001 * (math.sqrt(p.a) + math.sqrt(p.b * p.capacity)) / 2.0
    )
    result.verdicts["small_k_expansion_matches"] = (
        abs(rhos[-1] - predicted) / predicted < 1e-4
    )

    # The closed orbit at k ~ 0: constant-amplitude oscillation.  The
    # orbit is integrated in the paper's linearised system (eq. 9, the
    # system its Fig. 7 describes); in the *full nonlinear* system even
    # the k = 0 orbits spiral slowly inward, because the (y + C) factor
    # is asymmetric across a decrease pass (enter at +y*, exit at
    # -y' with y' < y*) — quantified below as a further sharpening.
    p0 = scale_free(p.a, p.b, k=1e-6, capacity=p.capacity, q0=p.q0,
                    buffer_size=1e6 * p.q0)
    # The whole closed-orbit family (three amplitudes) is one vectorized
    # ensemble integration; row 0 is the canonical Fig. 7 orbit.
    family_starts = np.array([-0.8, -0.5, -0.25]) * p0.q0
    family = simulate_fluid_batch(p0, family_starts, 0.0, t_max=40.0,
                                  mode="linearized", max_switches=200)
    orbit = family.trajectory(0)
    peaks = np.array([x for _, x in orbit.extrema if x > 0])
    troughs = np.array([x for _, x in orbit.extrema if x < 0])
    result.series["cycle_t"] = orbit.t
    result.series["cycle_x"] = orbit.x
    result.series["cycle_y"] = orbit.y
    amplitudes = []
    for row in range(family.n_rows):
        row_peaks = np.array([x for _, x in family.extrema(row) if x > 0.0])
        amplitudes.append(float(row_peaks.mean()) if row_peaks.size else np.nan)
    result.series["family_start"] = np.abs(family_starts)
    result.series["family_amplitude"] = np.array(amplitudes)
    # Fig. 7's amplitude is set by the initial condition, not the
    # dynamics: each family member oscillates at its own level forever.
    result.verdicts["amplitude_set_by_initial_condition"] = bool(
        np.all(np.isfinite(amplitudes))
        and amplitudes[2] < amplitudes[1] < amplitudes[0]
    )
    result.table_rows.append(["closed-orbit rounds observed", len(peaks)])
    if len(peaks) >= 4:
        drift = float(np.ptp(peaks)) / float(np.mean(peaks))
        result.table_rows.append(["peak drift over run (rel)", drift])
        result.verdicts["constant_amplitude_oscillation"] = drift < 1e-3
        result.verdicts["does_not_converge"] = not orbit.converged
        # Fig. 7 oval shape: right/left half-width ratio ~ sqrt(a / bC).
        shape = float(np.mean(peaks)) / float(-np.mean(troughs))
        expected_shape = math.sqrt(p.a / (p.b * p.capacity))
        result.table_rows.append(["half-width ratio", shape])
        result.verdicts["oval_shape_matches_sqrt_a_over_bc"] = (
            abs(shape - expected_shape) / expected_shape < 0.05
        )

    # Sharpening: the nonlinear (y + C) decrease factor dissipates even
    # at k = 0 — the same start in the full model spirals slowly inward.
    nonlinear_orbit = simulate_fluid_batch(
        p0, np.array([-0.8 * p0.q0]), 0.0, t_max=40.0, mode="nonlinear",
        max_switches=200,
    ).trajectory(0)
    nl_peaks = np.array([x for _, x in nonlinear_orbit.extrema if x > 0])
    if len(nl_peaks) >= 3:
        per_round = float(nl_peaks[1] / nl_peaks[0])
        result.table_rows.append(
            ["nonlinear per-round decay at k=0", per_round]
        )
        result.verdicts["nonlinearity_dissipates_even_at_k0"] = per_round < 1.0

    # 3. Quantization keeps the real system hunting forever.
    if with_des:
        des = BCNNetworkSimulator(
            paper_example_params(), regulator_mode="message", fb_bits=4
        )
        des_res = des.run(0.1)
        tail = des_res.t >= 0.7 * des_res.t[-1]
        residual_std = float(des_res.queue[tail].std())
        unit = paper_example_params().q0 / 4.0  # 4-bit FB quantization unit
        result.table_rows.append(["DES residual queue std (bits)", residual_std])
        result.table_rows.append(["FB quantization unit (bits)", unit])
        result.verdicts["quantized_des_keeps_hunting"] = residual_std > 0.01 * unit
        result.series["des_t"] = des_res.t
        result.series["des_q"] = des_res.queue

    if render_plots:
        result.plots.append(
            phase_plot(orbit.x, orbit.y,
                       title="Fig.7(a): closed orbit at w->0 (limit cycle)")
        )
        result.plots.append(
            line_plot(orbit.t, orbit.x, reference=0.0,
                      title="Fig.7(b): constant-amplitude queue oscillation")
        )
    result.notes.append(
        "Sharpened account: for k > 0 the smooth fluid model always spirals "
        "in (no interior cycle); the Fig.7 cycle is the k -> 0 (w -> 0) "
        "marginal case, where sigma loses its derivative damping term."
    )
    result.notes.append(
        "Orbit family and return-map scans run on the vectorized batch "
        f"kernel (repro.fluid.batch; {family.kernel_seconds:.3f} s for "
        f"{family.n_rows} orbits), differentially tested against the "
        "solve_ivp reference."
    )
    return result

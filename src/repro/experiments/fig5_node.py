"""Figure 5 — parabola-like trajectories of the stable-node case.

Fig. 5 shows node-case (``m^2 - 4n > 0``) trajectories from several
initial points together with the invariant lines ``y = lambda_1 x`` and
``y = lambda_2 x``.  Reproduced checks:

* the invariant lines are genuinely invariant (a trajectory started on
  one stays on it, eq. 24/25);
* every other trajectory obeys the power-curve relation of eq. (26)/(27)
  in the ``(u, v)`` coordinates, and approaches the origin *tangent to
  the slow line* ``y = lambda_2 x`` (its asymptote);
* the global-extremum formula (eq. 28) matches the robust evaluation;
* the BCN structural ordering ``lambda_1 < lambda_2 < -1/k`` holds, the
  geometric fact behind "node regions never re-cross the switching
  line".
"""

from __future__ import annotations

import math

import numpy as np

from ..core.eigen import Region, region_eigenstructure
from ..core.trajectories import NodeTrajectory
from ..viz.ascii import phase_plot
from .base import ExperimentResult, register
from .presets import CASE4

__all__ = ["run"]


@register("fig5")
def run(*, render_plots: bool = True) -> ExperimentResult:
    p = CASE4
    eig = region_eigenstructure(p, Region.INCREASE)
    lam1, lam2 = eig.real_eigenvalues
    result = ExperimentResult(
        experiment_id="fig5",
        title="Node trajectories and invariant lines (Fig. 5)",
        table_headers=["start", "extremum (robust)", "extremum (paper eq.28)", "rel err"],
    )

    result.verdicts["eigenvalue_ordering_lam1_lt_lam2_lt_minus_1_over_k"] = (
        lam1 < lam2 < -1.0 / p.k
    )

    # Invariant lines stay invariant.
    for lam, name in ((lam1, "fast"), (lam2, "slow")):
        traj = NodeTrajectory(1.0, lam, eig)
        ts = np.linspace(0.0, 5.0 / abs(lam2), 100)
        states = traj.states(ts)
        residual = np.max(np.abs(states[:, 1] - lam * states[:, 0]))
        result.verdicts[f"{name}_line_invariant"] = residual < 1e-9

    starts = {
        "p1": (-p.q0, 0.8 * p.q0),
        "p2": (0.6 * p.q0, -0.9 * p.q0),
        "p3": (-0.4 * p.q0, -0.5 * p.q0),
    }
    formula_ok = True
    asymptote_ok = True
    power_curve_ok = True
    for name, (x0, y0) in starts.items():
        traj = NodeTrajectory(x0, y0, eig)
        ts = np.linspace(0.0, 8.0 / abs(lam2), 400)
        states = traj.states(ts)
        result.series[f"{name}_x"] = states[:, 0]
        result.series[f"{name}_y"] = states[:, 1]

        ext_robust = traj.extremum_x()
        ext_paper = traj.extremum_x_paper_formula()
        if ext_robust is not None and ext_paper is not None:
            rel = abs(ext_paper - ext_robust) / max(abs(ext_robust), 1e-12)
            formula_ok = formula_ok and rel < 1e-9
            result.table_rows.append([f"{name} ({x0:.3g},{y0:.3g})",
                                      ext_robust, ext_paper, rel])

        # Late-time slope tends to lambda_2 (slow asymptote), unless the
        # start sits exactly on the fast line.
        x_late, y_late = traj.state(ts[-1])
        if abs(x_late) > 1e-300:
            asymptote_ok = asymptote_ok and math.isclose(
                y_late / x_late, lam2, rel_tol=1e-3
            )

        # eq. (26): (y - l2 x)^l2 * c = (y - l1 x)^l1 — checked through the
        # (u, v) transform: log v - (l1/l2) log u must be constant.
        us, vs = [], []
        for t in np.linspace(0.0, 2.0 / abs(lam2), 50):
            u, v = traj.curve_exponent_relation(float(t))
            if u * traj.curve_exponent_relation(0.0)[0] > 0 and v * traj.curve_exponent_relation(0.0)[1] > 0:
                us.append(abs(u))
                vs.append(abs(v))
        if len(us) > 10:
            const = np.log(vs) - (lam1 / lam2) * np.log(us)
            power_curve_ok = power_curve_ok and float(np.ptp(const)) < 1e-6

    result.verdicts["paper_eq28_matches_robust"] = formula_ok
    result.verdicts["trajectories_approach_slow_asymptote"] = asymptote_ok
    result.verdicts["power_curve_relation_eq27"] = power_curve_ok

    if render_plots:
        xs = np.concatenate([result.series[f"{n}_x"] for n in starts])
        ys = np.concatenate([result.series[f"{n}_y"] for n in starts])
        result.plots.append(
            phase_plot(xs, ys, title="Fig.5: node trajectories (invariant lines omitted)")
        )
    result.notes.append(
        f"lambda_1 = {lam1:.4g}, lambda_2 = {lam2:.4g}, -1/k = {-1.0 / p.k:.4g}"
    )
    return result

"""D1 (extension) — feedback delay: testing the paper's neglect of RTT.

The model drops propagation delay on the grounds that DCE RTTs (a few
microseconds) are small against queueing timescales.  This experiment
quantifies exactly how much delay the loop tolerates and what happens
beyond:

1. the delayed switched fluid model is integrated for a delay sweep;
   the empirical **critical delay** (bisection on the amplitude trend)
   is compared against the per-subsystem **Nyquist margin**
   ``atan(k w*)/w*`` from the linear analysis of [4] — they agree to a
   few percent, validating both machineries against each other;
2. past the boundary the ``(y + C)`` nonlinearity saturates the growth
   into an attracting **delay-induced limit cycle** (a supercritical
   Hopf-type scenario): constant-amplitude queue/rate oscillation, the
   asymmetric Fig. 7 oval — the most plausible mechanism behind the
   cycles the experiments of [4] observed;
3. the paper's example configuration is then checked: its physical RTT
   sits orders of magnitude *below* the worst-case margin? No — at the
   paper's stiff gains the margin is tens of nanoseconds, *below* the
   0.5 us propagation delay, so the delay-free model is only saved by
   the much slower per-message feedback of the real system.  Reported
   as a finding, not a verdict (the fluid abstraction and the packet
   reality genuinely differ here).
"""

from __future__ import annotations

import numpy as np

from ..baselines.linear_analysis import nyquist_delay_margin
from ..core.parameters import NormalizedParams, paper_example_params
from ..fluid.delay import critical_delay, simulate_delayed
from ..viz.ascii import line_plot
from .base import ExperimentResult, register

__all__ = ["run"]


def _delay_params() -> NormalizedParams:
    return NormalizedParams(a=2.0, b=0.02, k=1.0, capacity=100.0, q0=10.0,
                            buffer_size=1e9)


@register("d1")
def run(*, render_plots: bool = True) -> ExperimentResult:
    p = _delay_params()
    result = ExperimentResult(
        experiment_id="d1",
        title="Feedback delay: critical delay, Nyquist margin, Hopf cycle",
        table_headers=["quantity", "value"],
    )

    margin_i = nyquist_delay_margin(p.n_increase, p.k)
    margin_d = nyquist_delay_margin(p.n_decrease, p.k)
    margin = min(margin_i, margin_d)
    result.table_rows.append(["Nyquist margin (increase loop)", margin_i])
    result.table_rows.append(["Nyquist margin (decrease loop)", margin_d])

    # 1. Delay sweep and empirical critical delay.
    sweep = []
    for tau in (0.1 * margin, 0.5 * margin, 0.9 * margin,
                1.5 * margin, 2.0 * margin):
        traj = simulate_delayed(p, tau=tau, t_max=60.0)
        sweep.append((tau, traj.classify()))
        result.table_rows.append([f"tau = {tau:.3f}", traj.classify()])
    result.verdicts["small_delay_stable"] = all(
        cls == "stable" for tau, cls in sweep if tau < 0.9 * margin
    )
    result.verdicts["large_delay_unstable"] = all(
        cls == "unstable" for tau, cls in sweep if tau > 1.4 * margin
    )

    tau_c = critical_delay(p, tau_lo=0.1 * margin, tau_hi=2.5 * margin,
                           t_max=60.0, iterations=9)
    result.table_rows.append(["empirical critical delay", tau_c])
    result.table_rows.append(["critical / Nyquist margin", tau_c / margin])
    result.verdicts["critical_delay_matches_nyquist_margin"] = (
        abs(tau_c - margin) / margin < 0.10
    )

    # 2. Beyond the boundary: delay-induced limit cycle.
    cycle = simulate_delayed(p, tau=1.5 * margin, t_max=300.0)
    from ..analysis.metrics import find_peaks

    peaks = [v for _, v in find_peaks(cycle.t, np.abs(cycle.x),
                                      min_prominence_frac=0.02)]
    result.series["cycle_t"] = cycle.t[:: max(1, cycle.t.size // 4000)]
    result.series["cycle_x"] = cycle.x[:: max(1, cycle.t.size // 4000)]
    if len(peaks) >= 12:
        late = np.array(peaks[-8:])
        early = np.array(peaks[:4])
        # two-peak alternation: compare same-parity peaks
        drift = float(np.ptp(late[::2])) / float(np.mean(late[::2]))
        result.table_rows.append(["late-cycle peak drift", drift])
        result.table_rows.append(["cycle amplitude (|x| peak)", float(late.max())])
        result.verdicts["growth_saturates_into_cycle"] = (
            drift < 0.01 and late.max() < 1e3 * p.q0
        )
        result.verdicts["cycle_amplitude_exceeds_initial"] = (
            float(late.max()) > float(early.max())
        )

    # 3. The paper's configuration in context.
    paper = paper_example_params().normalized()
    margin_paper = min(
        nyquist_delay_margin(paper.n_increase, paper.k),
        nyquist_delay_margin(paper.n_decrease, paper.k),
    )
    result.table_rows.append(["paper-config Nyquist margin (s)", margin_paper])
    result.table_rows.append(["paper-config propagation delay (s)", 0.5e-6])
    result.notes.append(
        "At the paper's stiff gains the fluid-loop delay margin "
        f"({margin_paper:.3g} s) is below the 0.5 us propagation delay: "
        "the delay-free fluid analysis is optimistic there, and the real "
        "system is stabilised by its much slower per-message feedback."
    )

    if render_plots:
        result.plots.append(
            line_plot(result.series["cycle_t"], result.series["cycle_x"],
                      reference=0.0,
                      title="D1: delay-induced limit cycle (tau = 1.5 margin)")
        )
    return result

"""S1 (extension) — heavy-traffic scenario presets on both packet engines.

The paper's analysis assumes a fixed population of N homogeneous
sources on a constant-capacity bottleneck.  Real data-center traffic is
nothing like that: flows arrive and depart, synchronized incast fan-ins
slam the queue through the PAUSE threshold, links blink, and effective
capacity moves.  The scenario layer (:mod:`repro.scenarios`) expresses
those regimes declaratively; this experiment runs the two presets whose
dynamics are the most structured — ``incast-32`` and
``varying-capacity`` — on **both** packet engines and checks that

* the incast burst drives a genuine PAUSE episode (queue through
  ``q_sc``, PAUSE frames on the wire) and every one of the 32 responses
  still completes,
* the piecewise ``C(t)`` profile exercises at least two capacity
  transitions and the loop re-converges after each,
* the reference and batched engines agree on utilisation and FCT under
  both regimes, and
* bit conservation (injected = delivered + queued + dropped) holds on
  every run.

The golden series is the reference-engine queue trajectory of each
preset resampled onto a fixed 256-point grid — the regression suite
pins it bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..scenarios import get_preset, run_scenario
from .base import ExperimentResult, register

__all__ = ["run"]

PRESET_IDS = ("incast-32", "varying-capacity")

#: Fixed resampling grid for the golden queue series.
N_GRID = 256


@register("s1")
def run(*, render_plots: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="s1",
        title="Scenario presets: incast PAUSE episode and time-varying C(t)",
        table_headers=["preset", "engine", "utilization", "queue peak",
                       "drops", "pauses", "finished", "FCT mean (ms)"],
    )

    runs: dict[tuple[str, str], object] = {}
    for preset_id in PRESET_IDS:
        for engine in ("reference", "batched"):
            scenario = get_preset(preset_id, seed)
            res = run_scenario(scenario, engine=engine)
            runs[(preset_id, engine)] = res
            fcts = [f.fct for f in res.flows if f.fct is not None]
            result.table_rows.append([
                preset_id,
                engine,
                res.utilization(),
                res.sim.queue_peak(),
                res.sim.dropped_frames,
                res.sim.pauses,
                f"{len(fcts)}/{len(res.flows)}",
                1e3 * float(np.mean(fcts)) if fcts else float("nan"),
            ])

    # Golden series: reference-engine queue trajectories on a fixed grid.
    grid = np.linspace(0.0, get_preset(PRESET_IDS[0], seed).duration, N_GRID)
    result.series["t"] = grid
    for preset_id in PRESET_IDS:
        sim = runs[(preset_id, "reference")].sim
        key = preset_id.replace("-", "_") + "_queue"
        result.series[key] = np.interp(grid, sim.t, sim.queue)

    incast = get_preset("incast-32", seed)
    varying = get_preset("varying-capacity", seed)
    inc_ref = runs[("incast-32", "reference")]
    inc_bat = runs[("incast-32", "batched")]
    var_ref = runs[("varying-capacity", "reference")]
    var_bat = runs[("varying-capacity", "batched")]

    result.verdicts["incast_pause_episode_both_engines"] = all(
        r.sim.pauses > 0 and r.sim.queue_peak() > incast.params.q_sc
        for r in (inc_ref, inc_bat)
    )
    result.verdicts["incast_all_responses_finish"] = all(
        f.fct is not None for r in (inc_ref, inc_bat) for f in r.flows
    )
    result.verdicts["varying_has_two_plus_transitions"] = (
        varying.n_capacity_transitions() >= 2
    )
    result.verdicts["engines_agree_on_utilization"] = all(
        abs(a.utilization() - b.utilization()) < 0.02
        for a, b in ((inc_ref, inc_bat), (var_ref, var_bat))
    )
    fct_ref = np.mean([f.fct for f in inc_ref.flows])
    fct_bat = np.mean([f.fct for f in inc_bat.flows])
    result.verdicts["engines_agree_on_incast_fct"] = (
        abs(fct_ref - fct_bat) < 0.15 * fct_ref
    )
    slack = (36 + 2) * incast.frame_bits  # 4 elephants + 32 responders
    result.verdicts["bits_conserved_every_run"] = all(
        r.conservation_error() <= slack for r in runs.values()
    )

    result.notes.append(
        "incast-32 offers ~6.4 Gb/s into the 1 Gb/s port at t=4 ms; the "
        "queue shoots through q_sc=3 Mb and 802.3x PAUSE carries the "
        "burst — the regime the paper's Section V buffer theorem is "
        "designed to survive."
    )
    result.notes.append(
        "varying-capacity steps C(t) 1 -> 0.6 -> 0.8 -> 1 Gb/s; "
        "utilisation is measured against the integral of C(t), not the "
        "nominal rate."
    )
    if render_plots:
        from ..viz.ascii import line_plot

        q = result.series["incast_32_queue"]
        result.plots.append(line_plot(
            grid, q, reference=incast.params.q_sc,
            title="incast-32 queue q(t), reference engine (ref = q_sc)",
        ))
    return result

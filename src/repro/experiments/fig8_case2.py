"""Figure 8 — Case 2: node in the increase region, spiral in the decrease.

For ``a > 4 pm^2 C^2 / w^2`` and ``b < 4 pm^2 C / w^2``, Fig. 8 shows a
trajectory that leaves ``(-q0, 0)`` along a parabola-like node curve,
crosses the switching line in the second quadrant, spirals once through
the decrease region producing a single overshoot ``max2{x}``, re-enters
the increase region in the fourth quadrant, and then approaches the
equilibrium along the slow invariant line ``y = lambda_2 x`` without
ever crossing the switching line again.  Reproduced checks:

* case classification and exactly two switching-line crossings;
* the first crossing is in the second quadrant (x < 0, y > 0), the
  second in the fourth;
* the single positive peak equals the paper's eq. (38) closed form;
* the final segment's slope tends to ``lambda_2`` (asymptote approach)
  and the trajectory never re-crosses (the ``lambda_2 < -1/k`` geometry);
* Proposition 3 and Theorem 1 agree with the trajectory verdict.
"""

from __future__ import annotations

import math


from ..core.eigen import Region
from ..core.phase_plane import PaperCase, PhasePlaneAnalyzer, classify_case
from ..core.stability import case2_peak_bound, strong_stability_report, theorem1_criterion
from ..viz.ascii import line_plot, phase_plot
from .base import ExperimentResult, register
from .presets import CASE2

__all__ = ["run"]


@register("fig8")
def run(*, render_plots: bool = True) -> ExperimentResult:
    p = CASE2
    analyzer = PhasePlaneAnalyzer(p)
    result = ExperimentResult(
        experiment_id="fig8",
        title="Case 2: node increase / spiral decrease (Fig. 8)",
        table_headers=["quantity", "composed", "paper closed form", "rel err"],
    )
    result.verdicts["classifies_as_case2"] = classify_case(p) is PaperCase.CASE2

    traj = analyzer.compose(max_switches=20)
    samples = traj.sample(300)
    result.series["t"] = samples[:, 0]
    result.series["x"] = samples[:, 1]
    result.series["y"] = samples[:, 2]

    result.verdicts["exactly_two_crossings"] = traj.n_switches == 2
    if traj.n_switches >= 2:
        _, x1, y1 = traj.switch_states[0]
        _, x2, y2 = traj.switch_states[1]
        result.verdicts["first_crossing_second_quadrant"] = x1 < 0 < y1
        result.verdicts["second_crossing_fourth_quadrant"] = y2 < 0 < x2

    peaks = [x for _, x in traj.extrema if x > 0]
    max2 = case2_peak_bound(p)
    rel = abs(peaks[0] - max2) / max2 if peaks else math.inf
    result.table_rows.append(["peak max2{x}", peaks[0] if peaks else None, max2, rel])
    result.verdicts["eq38_matches_peak"] = rel < 1e-9
    result.verdicts["single_overshoot"] = len(peaks) == 1

    # Final segment: approaches the slow line of the increase region.
    final = traj.segments[-1]
    result.verdicts["final_segment_in_increase_region"] = final.region is Region.INCREASE
    eig = analyzer.region_eig(Region.INCREASE)
    lam1, lam2 = eig.real_eigenvalues
    x_late, y_late = final.trajectory.state(6.0 / abs(lam2))
    result.verdicts["approaches_slow_asymptote"] = (
        abs(x_late) > 0 and math.isclose(y_late / x_late, lam2, rel_tol=1e-3)
    )

    report = strong_stability_report(p)
    result.verdicts["proposition3_governs"] = report.proposition == 3
    result.verdicts["strongly_stable_iff_theorem1"] = (
        report.strongly_stable or not theorem1_criterion(p)
    )
    result.table_rows.append(
        ["queue peak (q units)", report.queue_peak, report.bound_peak,
         abs(report.queue_peak - report.bound_peak) / report.bound_peak]
    )

    if render_plots:
        result.plots.append(
            phase_plot(samples[:, 1], samples[:, 2], switching_k=p.k,
                       title="Fig.8(a): Case-2 phase trajectory")
        )
        result.plots.append(
            line_plot(samples[:, 0], samples[:, 1], reference=0.0,
                      title="Fig.8(b): queue offset x(t) — single overshoot")
        )
    return result

"""V5 (extension) — trace-driven fabric run: mice, elephants and BCN.

The paper analyses homogeneous long-lived flows; real fabrics carry a
heavy-tailed mix.  This experiment drives a fat-tree with a synthetic
trace (Poisson arrivals, bounded-Pareto sizes — the standard substitute
for production traces) under BCN at every port and checks that the
congestion-management story survives realistic traffic:

* the fabric stays functional: most mice (small flows) complete, and
  their completion times sit far below the elephants';
* BCN engages only where congestion actually forms (negative BCN > 0,
  and the hottest port is one of the statically most-shared edges);
* losses remain a small fraction of frames carried.
"""

from __future__ import annotations

import numpy as np

from ..simulation.multihop import MultiHopNetwork, PortConfig
from ..topology.graphs import fat_tree, hosts
from ..topology.routing import bottleneck_edge, ecmp_route
from ..workloads.traces import TraceConfig, generate_trace
from .base import ExperimentResult, register

__all__ = ["run"]

CAPACITY = 1e9
MICE_THRESHOLD = 1e6  # flows below 1 Mbit are "mice"


@register("v5")
def run(*, render_plots: bool = True, horizon: float = 0.5,
        seed: int = 11, engine: str = "reference") -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="v5",
        title="Trace-driven fat-tree under BCN (heavy-tailed mix)",
        table_headers=["quantity", "value"],
    )

    fabric = fat_tree(4, capacity=CAPACITY)
    all_hosts = hosts(fabric)
    trace = generate_trace(
        TraceConfig(
            arrival_rate=400.0,
            mean_size_bits=1.5e6,
            horizon=horizon * 0.6,  # stop arrivals early so tails drain
            pareto_shape=1.3,
            max_size_bits=2e7,
            demand=CAPACITY / 2,
            seed=seed,
        ),
        all_hosts,
    )
    result.table_rows.append(["flows in trace", trace.n_flows])
    result.table_rows.append(["offered bits (Mbit)", trace.total_bits() / 1e6])
    result.table_rows.append(
        ["elephant byte share", trace.elephant_share(threshold_bits=8e6)]
    )

    config = PortConfig(q0=100e3, buffer_bits=1.2e6, pm=0.05, min_rate=10e6)
    network = MultiHopNetwork(fabric, trace.flows, config,
                              propagation_delay=1e-6, engine=engine)
    res = network.run(horizon)

    mice = [f for f in trace.flows if (f.size_bits or 0) < MICE_THRESHOLD]
    elephants = [f for f in trace.flows if (f.size_bits or 0) >= MICE_THRESHOLD]
    mice_fct = [res.flow_completion_time(f.flow_id) for f in mice]
    mice_fct = [v for v in mice_fct if v is not None]
    eleph_fct = [res.flow_completion_time(f.flow_id) for f in elephants]
    eleph_fct = [v for v in eleph_fct if v is not None]

    mice_done = len(mice_fct) / max(1, len(mice))
    result.table_rows.append(["mice completion fraction", mice_done])
    result.table_rows.append(["elephants completed",
                              f"{len(eleph_fct)}/{len(elephants)}"])
    if mice_fct:
        result.table_rows.append(["mice FCT p50 (ms)",
                                  float(np.median(mice_fct)) * 1e3])
    if eleph_fct:
        result.table_rows.append(["elephant FCT p50 (ms)",
                                  float(np.median(eleph_fct)) * 1e3])
    result.table_rows.append(["drops", res.dropped_frames])
    result.table_rows.append(["negative BCN", res.bcn_negative])

    result.verdicts["most_mice_complete"] = mice_done > 0.9
    if mice_fct and eleph_fct:
        result.verdicts["mice_much_faster_than_elephants"] = (
            float(np.median(mice_fct)) < 0.3 * float(np.median(eleph_fct))
        )
    result.verdicts["bcn_engaged"] = res.bcn_negative > 0

    frames_carried = sum(res.per_flow_delivered_bits.values()) / 12000.0
    result.verdicts["loss_fraction_small"] = (
        res.dropped_frames < 0.05 * max(frames_carried, 1.0)
    )

    # hotspot plausibility: the hottest port is among the most-shared
    routes = [ecmp_route(fabric, f.src, f.dst, f.flow_id)
              for f in trace.flows]
    _, max_share = bottleneck_edge(fabric, routes)
    hot = res.hottest_port()
    hot_share = sum(
        1 for r in routes
        if hot in list(zip(r, r[1:]))
    )
    result.table_rows.append(["hottest port", f"{hot[0]}->{hot[1]}"])
    result.table_rows.append(["flows sharing it", hot_share])
    result.verdicts["hotspot_is_heavily_shared"] = (
        hot_share >= 0.3 * max_share
    )
    return result

"""Figure 3 — taxonomy of phase trajectories and strong stability.

The paper's Fig. 3 sketches nine archetypal queue phase curves l1-l9 to
motivate Definition 1 (strong stability): classical stability criteria
accept every curve that eventually reaches the equilibrium, yet curves
that transiently hit the buffer limits (l3: overflow, l4: underflow)
drop packets or idle the link, and the closed curve l5+l7 (limit cycle)
never converges at all.  Only trajectories that stay strictly inside
the buffer strip after a transient (l6, l8, l9 — and the interior of
l5/l7) are *strongly* stable.

This experiment constructs one concrete trajectory per archetype from
the actual BCN dynamics (the divergent curves l1/l2 are time-reversed
stable spirals — the paper's sketch, like ours, shows shapes the rate
laws themselves never produce, since Proposition 1 rules them out) and
verifies that the strong-stability classifier labels each exactly as
the paper does.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.eigen import Region, region_eigenstructure
from ..core.phase_plane import PhasePlaneAnalyzer
from ..core.trajectories import SpiralTrajectory
from ..fluid.batch import simulate_fluid_batch
from ..viz.ascii import phase_plot
from .base import ExperimentResult, register
from .presets import CASE1_SLOW, scale_free

__all__ = ["run"]


def _composed_xy(params, x0, y0, *, max_switches=40, points=120):
    analyzer = PhasePlaneAnalyzer(params)
    traj = analyzer.compose(x0, y0, max_switches=max_switches)
    samples = traj.sample(points)
    return traj, samples[:, 1], samples[:, 2]


@register("fig3")
def run(*, render_plots: bool = True) -> ExperimentResult:
    """Reproduce the Fig. 3 taxonomy; verdict per archetype label."""
    p = CASE1_SLOW
    strip_lo, strip_hi = -p.q0, p.buffer_size - p.q0
    result = ExperimentResult(
        experiment_id="fig3",
        title="Taxonomy of phase trajectories vs strong stability (Fig. 3)",
        table_headers=["curve", "construction", "peak x", "trough x", "label", "as paper"],
    )

    # -- l1/l2: divergent spirals (time-reversed stable increase spiral).
    eig = region_eigenstructure(p, Region.INCREASE)
    seed = SpiralTrajectory(0.05 * p.q0, 0.0, eig)
    # Integrate backwards long enough for the growing spiral to escape
    # the buffer strip (growth is exp(|alpha| t)).
    t_escape = math.log(strip_hi / (0.05 * p.q0) * 4.0) / abs(eig.alpha)
    ts = np.linspace(0.0, -t_escape, 600)
    diverging = seed.states(ts)
    div_peak = float(diverging[:, 0].max())
    div_escapes = div_peak >= strip_hi or float(diverging[:, 0].min()) <= strip_lo
    result.table_rows.append(
        ["l1/l2", "time-reversed spiral", div_peak, float(diverging[:, 0].min()),
         "unstable", div_escapes]
    )
    result.verdicts["l1_l2_divergent_escapes_strip"] = div_escapes
    result.series["l1_x"] = diverging[:, 0]
    result.series["l1_y"] = diverging[:, 1]

    # -- l3: converging but transiently overflowing (small buffer).
    p_small_buffer = scale_free(p.a, p.b, k=p.k, capacity=p.capacity,
                                q0=p.q0, buffer_size=p.q0 * 1.6)
    traj3, x3, y3 = _composed_xy(p_small_buffer, -p.q0, 0.0)
    l3_overflows = traj3.overflows() and traj3.amplitude_trend() is not None
    result.table_rows.append(
        ["l3", "converging, buffer 1.6*q0", traj3.max_x(), traj3.min_x_after_start(),
         "not strongly stable (overflow)", l3_overflows]
    )
    result.verdicts["l3_overflow_detected"] = l3_overflows
    result.series["l3_x"] = x3
    result.series["l3_y"] = y3

    # -- l4: converging but re-emptying the queue (large initial rate).
    traj4, x4, y4 = _composed_xy(p, 0.0, 6.0 * p.q0)
    l4_underflows = traj4.min_x_after_start() <= strip_lo
    result.table_rows.append(
        ["l4", "start (0, 6 q0): deep trough", traj4.max_x(), traj4.min_x_after_start(),
         "not strongly stable (underflow)", l4_underflows]
    )
    result.verdicts["l4_underflow_detected"] = l4_underflows
    result.series["l4_x"] = x4
    result.series["l4_y"] = y4

    # -- l5+l7: the closed curve — the w -> 0 (undamped) limit cycle.
    # Two amplitudes integrated as one batch: the outer orbit is the
    # paper's l5+l7 curve, the inner one shows the cycle amplitude is
    # set by the start (each orbit closes at its own level).
    p_cycle = scale_free(p.a, p.b, k=1e-6, capacity=p.capacity,
                         q0=p.q0, buffer_size=p.buffer_size)
    cycle_batch = simulate_fluid_batch(
        p_cycle, np.array([-0.8, -0.5]) * p.q0, 0.0, t_max=30.0,
        mode="nonlinear", max_switches=200,
    )
    cycle = cycle_batch.trajectory(0)
    inner = cycle_batch.trajectory(1)
    peaks = [x for _, x in cycle.extrema if x > 0]
    inner_peaks = [x for _, x in inner.extrema if x > 0]
    sustained = (
        not cycle.converged
        and len(peaks) >= 3
        and np.std(peaks[-3:]) <= 0.05 * abs(np.mean(peaks[-3:])) + 1e-9
    )
    result.table_rows.append(
        ["l5+l7", "w -> 0 closed orbit", cycle.max_x(), cycle.min_x(),
         "limit cycle (not strongly stable)", sustained]
    )
    result.verdicts["l5_l7_limit_cycle_sustained"] = sustained
    result.verdicts["l5_l7_amplitude_tracks_start"] = bool(
        inner_peaks and peaks and np.mean(inner_peaks) < np.mean(peaks)
    )
    result.series["l5_x"] = cycle.x
    result.series["l5_y"] = cycle.y
    result.series["l5_inner_x"] = inner.x
    result.series["l5_inner_y"] = inner.y

    # -- l6/l8/l9: strongly stable trajectories from assorted starts.
    stable_ok = True
    for name, (x0, y0) in {
        "l6": (-p.q0, 0.0),
        "l8": (0.3 * p.q0, 0.0),
        "l9": (0.0, -0.05 * p.capacity),
    }.items():
        traj, xs, ys = _composed_xy(p, x0, y0)
        inside = (
            traj.max_x() < strip_hi
            and traj.min_x_after_start() > strip_lo
            and (traj.converged or (traj.amplitude_trend() or 1.0) < 1.0)
        )
        stable_ok = stable_ok and inside
        result.table_rows.append(
            [name, f"start ({x0:.3g}, {y0:.3g})", traj.max_x(),
             traj.min_x_after_start(), "strongly stable", inside]
        )
        result.series[f"{name}_x"] = xs
        result.series[f"{name}_y"] = ys
    result.verdicts["l6_l8_l9_strongly_stable"] = stable_ok

    if render_plots:
        result.plots.append(
            phase_plot(
                np.concatenate([result.series["l6_x"], result.series["l5_x"]]),
                np.concatenate([result.series["l6_y"], result.series["l5_y"]]),
                switching_k=p.k,
                title="Fig.3 (excerpt): strongly stable spiral + boundary limit cycle",
            )
        )
    result.notes.append(
        "l1/l2 cannot arise from the BCN rate laws (Proposition 1); they are "
        "shown, as in the paper, to complete the taxonomy."
    )
    return result

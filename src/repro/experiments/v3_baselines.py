"""V3 (extension) — BCN against the other 802.1Qau proposals.

Places BCN next to QCN, E2CM, FERA and classic binary AIMD on the same
dumbbell (Section II's landscape of proposals), measuring utilisation,
queue behaviour, drops, fairness and control overhead, plus the linear
analysis of [4] for contrast.  The expected qualitative ordering (all
reproduced as verdicts):

* explicit-rate FERA holds the smallest, calmest queue and perfect
  fairness, at the price of a much higher control-message rate;
* E2CM sits between BCN and FERA (it blends the two);
* the queue-feedback schemes (BCN, QCN) keep utilisation near 1 but
  hunt around the reference;
* binary AIMD, with one bit of feedback, pays in utilisation and/or
  queue swing;
* the Lu et al. linear verdict calls *every* configuration stable —
  including one whose buffer Theorem 1 (correctly) rejects.
"""

from __future__ import annotations

from ..baselines import (
    AIMDParams,
    E2CMParams,
    FERAParams,
    QCNParams,
    linear_verdict,
    run_aimd_dumbbell,
    run_bcn_dumbbell,
    run_e2cm_dumbbell,
    run_fera_dumbbell,
    run_qcn_dumbbell,
)
from ..core.parameters import paper_example_params
from ..core.stability import theorem1_criterion
from .base import ExperimentResult, register

__all__ = ["run"]


@register("v3")
def run(*, render_plots: bool = True, duration: float = 0.03,
        engine: str = "reference") -> ExperimentResult:
    bcn_params = paper_example_params()
    c, n, q0, buf = (
        bcn_params.capacity,
        bcn_params.n_flows,
        bcn_params.q0,
        bcn_params.buffer_size,
    )
    settle = duration / 2

    runs = {
        "bcn": run_bcn_dumbbell(bcn_params, duration, engine=engine),
        "qcn": run_qcn_dumbbell(
            QCNParams(capacity=c, n_flows=n, q0=q0, buffer_bits=buf), duration
        ),
        "e2cm": run_e2cm_dumbbell(
            E2CMParams(capacity=c, n_flows=n, q0=q0, buffer_bits=buf), duration
        ),
        "fera": run_fera_dumbbell(
            FERAParams(capacity=c, n_flows=n, buffer_bits=buf, q0=q0), duration
        ),
        "aimd": run_aimd_dumbbell(
            AIMDParams(capacity=c, n_flows=n, q0=q0, buffer_bits=buf), duration
        ),
    }

    result = ExperimentResult(
        experiment_id="v3",
        title="BCN vs QCN vs E2CM vs FERA vs binary AIMD (dumbbell)",
        table_headers=[
            "scheme", "util", "q mean (Mbit)", "q std (Mbit)", "drops",
            "fairness", "ctrl msgs",
        ],
    )
    metrics = {}
    for name, res in runs.items():
        metrics[name] = {
            "util": res.utilization(),
            "q_mean": res.queue_mean(settle=settle),
            "q_std": res.queue_std(settle=settle),
            "drops": res.dropped_frames,
            "fair": res.jain_fairness(),
            "msgs": res.control_messages,
        }
        result.table_rows.append([
            name,
            metrics[name]["util"],
            metrics[name]["q_mean"] / 1e6,
            metrics[name]["q_std"] / 1e6,
            metrics[name]["drops"],
            metrics[name]["fair"],
            metrics[name]["msgs"],
        ])
        result.series[f"{name}_t"] = res.t
        result.series[f"{name}_q"] = res.queue

    result.verdicts["all_schemes_functional"] = all(
        m["util"] > 0.5 for m in metrics.values()
    )
    result.verdicts["fera_calmest_queue"] = (
        metrics["fera"]["q_std"] <= min(m["q_std"] for m in metrics.values()) + 1e-9
    )
    result.verdicts["fera_most_fair"] = (
        metrics["fera"]["fair"] >= max(m["fair"] for m in metrics.values()) - 1e-6
    )
    result.verdicts["fera_highest_overhead"] = (
        metrics["fera"]["msgs"] >= metrics["bcn"]["msgs"]
        and metrics["fera"]["msgs"] >= metrics["qcn"]["msgs"]
    )
    result.verdicts["bcn_high_utilization"] = metrics["bcn"]["util"] > 0.9
    result.verdicts["e2cm_calmer_than_bcn"] = (
        metrics["e2cm"]["q_std"] <= metrics["bcn"]["q_std"]
    )
    result.verdicts["aimd_not_better_everywhere"] = not (
        metrics["aimd"]["util"] > metrics["bcn"]["util"]
        and metrics["aimd"]["q_std"] < metrics["bcn"]["q_std"]
    )

    # The linear analysis of [4] cannot tell a good buffer from a bad one.
    small_buffer = bcn_params.with_(buffer_size=5e6, q_sc=None)
    result.verdicts["linear_verdict_buffer_blind"] = (
        linear_verdict(bcn_params).stable
        and linear_verdict(small_buffer).stable
        and theorem1_criterion(bcn_params)
        and not theorem1_criterion(small_buffer)
    )
    result.notes.append(
        "linear analysis accepts the 5 Mbit buffer that Theorem 1 rejects "
        "(needs 13.8 Mbit) — the paper's core argument, quantified."
    )
    return result

"""Run every registered experiment and print its report.

Usage::

    python -m repro.experiments            # all experiments
    python -m repro.experiments fig6 t1    # a subset
    python -m repro.experiments --csv out  # also dump series CSVs
"""

from __future__ import annotations

import argparse
import sys

from .base import all_experiments, get_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--csv", metavar="DIR", help="directory for series CSVs")
    parser.add_argument("--no-plots", action="store_true")
    args = parser.parse_args(argv)

    ids = args.ids or sorted(all_experiments())
    failures = 0
    for experiment_id in ids:
        run = get_experiment(experiment_id)
        result = run(render_plots=not args.no_plots)
        print(result.render())
        print()
        if args.csv:
            result.save_series(args.csv)
        if not result.passed:
            failures += 1
            print(f"!! {experiment_id} failing verdicts: "
                  f"{result.failing_verdicts()}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Run every registered experiment and print its report.

Usage::

    python -m repro.experiments                # all experiments, serially
    python -m repro.experiments fig6 t1        # a subset
    python -m repro.experiments --csv out      # also dump series CSVs
    python -m repro.experiments --parallel     # process-pool runner
    python -m repro.experiments --parallel --workers 4 --cache-dir .cache
    python -m repro.experiments --cache-dir .cache --no-cache  # cache off

The plain invocation keeps the serial loop below as the reference
execution path; ``--parallel``/``--cache-dir`` route through
:mod:`repro.runner`, which is differentially tested to produce identical
results.
"""

from __future__ import annotations

import argparse
import sys

from .base import ExperimentResult, all_experiments, get_experiment


def _run_with_runner(args: argparse.Namespace, ids: list[str]) -> list[ExperimentResult]:
    from ..runner import ResultCache, RunnerStats, run_experiments

    cache = None
    if args.cache_dir and not args.no_cache:
        cache = ResultCache(args.cache_dir)
    options = {"render_plots": not args.no_plots}
    if args.parallel:
        # Runner-aware experiments (v1) parallelise their own sweep too.
        options.update(
            parallel=True,
            workers=args.workers,
            cache_dir=args.cache_dir if cache is not None else None,
        )
    stats = RunnerStats()
    pairs = run_experiments(
        ids,
        workers=(args.workers if args.parallel else 1),
        cache=cache,
        options=options,
        stats=stats,
    )
    print(stats.summary_table(), file=sys.stderr)
    return [result for _, result in pairs]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--csv", metavar="DIR", help="directory for series CSVs")
    parser.add_argument("--no-plots", action="store_true")
    parser.add_argument("--parallel", action="store_true",
                        help="run through the process-pool runner")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for --parallel (default: cpu count)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="content-addressed result cache directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir (cache disabled)")
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")

    ids = args.ids or sorted(all_experiments())
    if args.parallel or (args.cache_dir and not args.no_cache):
        results = _run_with_runner(args, ids)
    else:
        results = [
            get_experiment(experiment_id)(render_plots=not args.no_plots)
            for experiment_id in ids
        ]

    failures = 0
    for experiment_id, result in zip(ids, results):
        print(result.render())
        print()
        if args.csv:
            result.save_series(args.csv)
        if not result.passed:
            failures += 1
            print(f"!! {experiment_id} failing verdicts: "
                  f"{result.failing_verdicts()}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""M1 (extension) — the victim-flow motivation of Section I.

The paper motivates end-to-end congestion management with the failure
mode of hop-by-hop PAUSE: "the congestion can roll back from switch to
switch, affecting flows that do not contribute to the congestion, but
happen to share a link with flows that do."

Scenario: on a two-tier fabric, a set of aggressor flows congests one
output port; a *victim* flow shares the aggressors' ingress link but
exits through an uncongested port.  Compared configurations:

* **PAUSE-only** (no BCN): the congested port's PAUSE silences the
  shared upstream entirely — the victim is collateral damage;
* **BCN** (no PAUSE): rate regulation targets only the flows the
  congestion point actually sampled — the victim keeps its throughput.

Verdicts: the victim's goodput under BCN exceeds its goodput under
PAUSE-only by a clear factor, while both configurations protect the
congested port's buffer.
"""

from __future__ import annotations

import networkx as nx

from ..simulation.multihop import MultiHopNetwork, PortConfig
from ..workloads.flows import FlowSpec
from .base import ExperimentResult, register

__all__ = ["run"]

CAPACITY = 1e9


def _two_port_fabric() -> nx.Graph:
    """Hosts h0..h3 -> switch s0 -> switch s1 -> {hot, cool} sinks."""
    g = nx.Graph(name="victim-demo")
    for node, kind, layer in [
        ("s0", "edge", 1), ("s1", "core", 2),
        ("hot", "host", 0), ("cool", "host", 0),
    ]:
        g.add_node(node, kind=kind, layer=layer)
    g.add_edge("s0", "s1", capacity=CAPACITY)
    g.add_edge("s1", "hot", capacity=CAPACITY / 4)  # the congested port
    g.add_edge("s1", "cool", capacity=CAPACITY)
    for i in range(4):
        g.add_node(f"h{i}", kind="host", layer=0)
        g.add_edge(f"h{i}", "s0", capacity=CAPACITY)
    return g


def _flows() -> list[FlowSpec]:
    aggressors = [
        FlowSpec(flow_id=i, src=f"h{i}", dst="hot", demand=CAPACITY / 2)
        for i in range(3)
    ]
    victim = FlowSpec(flow_id=3, src="h3", dst="cool", demand=CAPACITY / 4)
    return aggressors + [victim]


def _run_config(*, enable_bcn: bool, enable_pause: bool,
                engine: str = "reference"):
    fabric = _two_port_fabric()
    config = PortConfig(
        q0=100e3,
        buffer_bits=1.5e6,
        # pm -> 0 effectively disables BCN (one sample per 1e9 frames)
        pm=0.05 if enable_bcn else 1e-9,
        q_sc=1.2e6 if enable_pause else None,
        min_rate=5e6,
        regulator_mode="message",
    )
    network = MultiHopNetwork(fabric, _flows(), config,
                              propagation_delay=1e-6, engine=engine)
    return network.run(0.3)


@register("m1")
def run(*, render_plots: bool = True,
        engine: str = "reference") -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="m1",
        title="Victim flow: PAUSE-only congestion spreading vs BCN",
        table_headers=["config", "victim goodput (Mb/s)",
                       "aggressor goodput (Mb/s)", "drops", "pauses"],
    )

    pause_only = _run_config(enable_bcn=False, enable_pause=True,
                             engine=engine)
    bcn = _run_config(enable_bcn=True, enable_pause=False, engine=engine)

    def victim_goodput(res):
        return res.flow_throughput(3)

    def aggressor_goodput(res):
        return sum(res.flow_throughput(i) for i in range(3))

    for name, res in (("pause-only", pause_only), ("bcn", bcn)):
        result.table_rows.append([
            name,
            victim_goodput(res) / 1e6,
            aggressor_goodput(res) / 1e6,
            res.dropped_frames,
            res.pauses,
        ])

    v_pause = victim_goodput(pause_only)
    v_bcn = victim_goodput(bcn)
    result.verdicts["pause_actually_fired"] = pause_only.pauses > 0
    result.verdicts["bcn_regulated_aggressors"] = bcn.bcn_negative > 0
    result.verdicts["victim_protected_by_bcn"] = v_bcn > 1.5 * v_pause
    # the victim's own path is uncongested: BCN should leave it at
    # (close to) full demand
    result.verdicts["victim_near_demand_under_bcn"] = (
        v_bcn > 0.5 * CAPACITY / 4
    )
    result.notes.append(
        "PAUSE silences the shared s0->s1 link wholesale, starving the "
        "victim; BCN's per-flow rate regulation leaves it untouched — "
        "the Section I argument, measured."
    )
    return result

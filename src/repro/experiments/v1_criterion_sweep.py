"""V1 (extension) — Theorem 1's conservativeness across parameter space.

Theorem 1 is a *sufficient* condition; this sweep quantifies how tight
it is.  Over a grid of normalised parameters spanning Cases 1-4 we
compare the bound ``q0 * sqrt(a/(bC))`` against the exact transient
peak of the composed trajectory from ``(-q0, 0)`` and check:

* **soundness** — the bound is never exceeded (every point);
* **tightness** — in the spiral-decrease cases (1 and 2) the peak
  approaches the bound as damping vanishes (small ``k``), while in the
  node-decrease cases (3-5) the true peak is 0 (no overshoot), making
  the bound maximally conservative there — exactly the structure the
  paper's proof exhibits.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.parameters import NormalizedParams
from ..core.phase_plane import PhasePlaneAnalyzer, classify_case
from .base import ExperimentResult, register

__all__ = ["run"]


@register("v1")
def run(*, render_plots: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="v1",
        title="Theorem 1 bound vs exact transient peak (sweep)",
        table_headers=["a", "b", "k", "case", "bound", "peak", "tightness"],
    )

    sound = True
    tightness_by_case: dict[str, list[float]] = {}
    rows_a, rows_bound, rows_peak = [], [], []
    for a in (0.5, 2.0, 8.0, 32.0):
        for b in (0.005, 0.02, 0.08):
            for k in (0.05, 0.2, 1.0):
                p = NormalizedParams(a=a, b=b, k=k, capacity=100.0, q0=10.0,
                                     buffer_size=1e9)
                case = classify_case(p).value
                bound = p.q0 * math.sqrt(a / (b * p.capacity))
                traj = PhasePlaneAnalyzer(p).compose(max_switches=60)
                peak = max(0.0, traj.max_x())
                tight = peak / bound
                sound = sound and peak <= bound * (1 + 1e-9)
                tightness_by_case.setdefault(case, []).append(tight)
                result.table_rows.append([a, b, k, case, bound, peak, tight])
                rows_a.append(a)
                rows_bound.append(bound)
                rows_peak.append(peak)

    result.series["bound"] = np.array(rows_bound)
    result.series["peak"] = np.array(rows_peak)
    result.verdicts["bound_never_exceeded"] = sound

    spiral_tight = tightness_by_case.get("case1", []) + tightness_by_case.get("case2", [])
    node_tight = tightness_by_case.get("case3", []) + tightness_by_case.get("case4", [])
    result.verdicts["spiral_cases_bound_approached"] = (
        bool(spiral_tight) and max(spiral_tight) > 0.8
    )
    result.verdicts["node_cases_no_overshoot"] = (
        bool(node_tight) and max(node_tight) <= 1e-9
    )
    for case, values in sorted(tightness_by_case.items()):
        result.notes.append(
            f"{case}: tightness median {float(np.median(values)):.3f}, "
            f"max {max(values):.3f} over {len(values)} points"
        )
    return result

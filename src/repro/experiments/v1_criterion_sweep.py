"""V1 (extension) — Theorem 1's conservativeness across parameter space.

Theorem 1 is a *sufficient* condition; this sweep quantifies how tight
it is.  Over a grid of normalised parameters spanning Cases 1-4 we
compare the bound ``q0 * sqrt(a/(bC))`` against the exact transient
peak of the composed trajectory from ``(-q0, 0)`` and check:

* **soundness** — the bound is never exceeded (every point);
* **tightness** — in the spiral-decrease cases (1 and 2) the peak
  approaches the bound as damping vanishes (small ``k``), while in the
  node-decrease cases (3-5) the true peak is 0 (no overshoot), making
  the bound maximally conservative there — exactly the structure the
  paper's proof exhibits.

The grid runs through the sweep harness
(:func:`repro.analysis.sweeps.sweep` serially, or
:func:`repro.runner.run_sweep_parallel` with ``parallel=True``) so the
``repro experiments v1 --parallel --cache-dir DIR`` CLI path exercises
the process pool and the result cache while producing records identical
to the serial reference.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..analysis.sweeps import sweep
from ..core.parameters import NormalizedParams
from ..core.phase_plane import PhasePlaneAnalyzer, classify_case
from .base import ExperimentResult, register

__all__ = ["run", "AXES", "evaluate_point", "base_point"]

#: Sweep grid of Section IV.A normalised parameters (spans Cases 1-4).
AXES = {
    "a": [0.5, 2.0, 8.0, 32.0],
    "b": [0.005, 0.02, 0.08],
    "k": [0.05, 0.2, 1.0],
}


def base_point() -> NormalizedParams:
    """Base parameterisation the grid overrides (first point of AXES)."""
    return NormalizedParams(a=AXES["a"][0], b=AXES["b"][0], k=AXES["k"][0],
                            capacity=100.0, q0=10.0, buffer_size=1e9)


def evaluate_point(p: NormalizedParams) -> dict[str, object]:
    """One grid point: case label, Theorem 1 bound, exact peak, tightness.

    Module-level and pure so the parallel runner can pickle it and the
    cache can replay it.  The reserved ``"_kernel_wall"`` key reports
    the trajectory-composition kernel time; both sweep paths pop it
    before it reaches the records, and the parallel runner surfaces it
    as per-point kernel time vs pool overhead in the stats summary.
    """
    case = classify_case(p).value
    bound = p.q0 * math.sqrt(p.a / (p.b * p.capacity))
    t0 = time.perf_counter()
    traj = PhasePlaneAnalyzer(p).compose(max_switches=60)
    kernel_wall = time.perf_counter() - t0
    peak = max(0.0, traj.max_x())
    return {"case": case, "bound": bound, "peak": peak,
            "tightness": peak / bound, "_kernel_wall": kernel_wall}


@register("v1")
def run(
    *,
    render_plots: bool = True,
    parallel: bool = False,
    workers: int | None = None,
    cache_dir: str | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="v1",
        title="Theorem 1 bound vs exact transient peak (sweep)",
        table_headers=["a", "b", "k", "case", "bound", "peak", "tightness"],
    )

    if parallel or cache_dir is not None:
        from ..runner import ResultCache, RunnerStats, run_sweep_parallel

        cache = ResultCache(cache_dir) if cache_dir is not None else None
        stats = RunnerStats()
        swept = run_sweep_parallel(
            base_point(), AXES, evaluate_point,
            workers=workers if parallel else 0,
            cache=cache, cache_id="v1", stats=stats,
        )
        result.notes.extend(stats.notes())
    else:
        swept = sweep(base_point(), AXES, evaluate_point)

    sound = True
    tightness_by_case: dict[str, list[float]] = {}
    for r in swept.records:
        sound = sound and r["peak"] <= r["bound"] * (1 + 1e-9)
        tightness_by_case.setdefault(r["case"], []).append(r["tightness"])
        result.table_rows.append(
            [r["a"], r["b"], r["k"], r["case"], r["bound"], r["peak"],
             r["tightness"]]
        )

    result.series["bound"] = np.array(swept.column("bound"))
    result.series["peak"] = np.array(swept.column("peak"))
    result.verdicts["bound_never_exceeded"] = sound

    spiral_tight = tightness_by_case.get("case1", []) + tightness_by_case.get("case2", [])
    node_tight = tightness_by_case.get("case3", []) + tightness_by_case.get("case4", [])
    result.verdicts["spiral_cases_bound_approached"] = (
        bool(spiral_tight) and max(spiral_tight) > 0.8
    )
    result.verdicts["node_cases_no_overshoot"] = (
        bool(node_tight) and max(node_tight) <= 1e-9
    )
    for case, values in sorted(tightness_by_case.items()):
        result.notes.append(
            f"{case}: tightness median {float(np.median(values)):.3f}, "
            f"max {max(values):.3f} over {len(values)} points"
        )
    return result

"""Canonical parameter presets for the per-case experiments.

The case taxonomy depends only on ``a`` and ``b C`` against the focus
threshold ``4/k^2``, so the figures use a scale-free normalisation
(``k = 1``, ``C = 100``, ``q0 = 10``) where the threshold is simply 4:
trajectories and verdicts are then easy to read, and every property is
invariant under rescaling back to physical units (10 Gbit/s class
parameters are exercised separately through :data:`PAPER_PHYSICAL`).
"""

from __future__ import annotations

from ..core.parameters import NormalizedParams, paper_example_params

__all__ = [
    "scale_free",
    "CASE1",
    "CASE2",
    "CASE3",
    "CASE4",
    "CASE5",
    "CASE1_SLOW",
    "PAPER_PHYSICAL",
]


def scale_free(
    a: float,
    b: float,
    *,
    k: float = 1.0,
    capacity: float = 100.0,
    q0: float = 10.0,
    buffer_size: float = 100.0,
) -> NormalizedParams:
    """Build a scale-free parameter set (focus threshold ``4/k^2``)."""
    return NormalizedParams(
        a=a, b=b, k=k, capacity=capacity, q0=q0, buffer_size=buffer_size
    )


#: Case 1 — both regions spiral (a < 4, bC < 4 with k = 1).
CASE1 = scale_free(2.0, 0.02)

#: Case 2 — increase node, decrease spiral (a > 4, bC < 4).
CASE2 = scale_free(8.0, 0.02)

#: Case 3 — increase spiral, decrease node (a < 4, bC > 4).
CASE3 = scale_free(2.0, 0.08)

#: Case 4 — both regions node (a > 4, bC > 4).
CASE4 = scale_free(8.0, 0.08)

#: Case 5 — degenerate boundary (a exactly at the threshold).
CASE5 = scale_free(4.0, 0.02)

#: A gently damped Case 1 (small k): many visible oscillation rounds,
#: the regime of the paper's worked example.
CASE1_SLOW = scale_free(2.0, 0.02, k=0.1, buffer_size=200.0)

#: The Section IV worked example in physical units.
PAPER_PHYSICAL = paper_example_params()

"""Figure 10 — Case 4: node in both regions — no overshoot.

For ``a > 4 pm^2 C^2 / w^2`` and ``b > 4 pm^2 C / w^2`` the trajectory
is parabola-like in both regions: out of ``(-q0, 0)`` along the
increase node curve, one crossing into the decrease region, then into
the equilibrium along the decrease region's slow asymptote — never
leaving the second quadrant, exactly as in Case 3, so strong stability
is unconditional (Proposition 4).  Case 5 (the degenerate boundary
``a = 4/k^2``) is verified alongside, since the paper folds it into the
same proposition.
"""

from __future__ import annotations


from ..core.eigen import FixedPointType, Region
from ..core.phase_plane import PaperCase, PhasePlaneAnalyzer, classify_case
from ..core.stability import proposition4_applies, strong_stability_report
from ..viz.ascii import line_plot, phase_plot
from .base import ExperimentResult, register
from .presets import CASE4, CASE5, scale_free

__all__ = ["run"]


@register("fig10")
def run(*, render_plots: bool = True) -> ExperimentResult:
    p = CASE4
    analyzer = PhasePlaneAnalyzer(p)
    result = ExperimentResult(
        experiment_id="fig10",
        title="Case 4: node/node — unconditional strong stability (Fig. 10)",
        table_headers=["quantity", "value"],
    )
    result.verdicts["classifies_as_case4"] = classify_case(p) is PaperCase.CASE4
    result.verdicts["both_regions_node"] = all(
        analyzer.region_eig(r).kind is FixedPointType.NODE
        for r in (Region.INCREASE, Region.DECREASE)
    )

    traj = analyzer.compose(max_switches=20)
    samples = traj.sample(300)
    result.series["t"] = samples[:, 0]
    result.series["x"] = samples[:, 1]
    result.series["y"] = samples[:, 2]

    result.verdicts["single_crossing"] = traj.n_switches == 1
    result.verdicts["never_overshoots_q0"] = traj.max_x() <= 1e-9 * p.q0
    result.table_rows.append(["max x (should be <= 0)", traj.max_x()])

    p_tight = scale_free(p.a, p.b, k=p.k, capacity=p.capacity, q0=p.q0,
                         buffer_size=1.05 * p.q0)
    report = strong_stability_report(p_tight)
    result.verdicts["strongly_stable_with_tight_buffer"] = report.strongly_stable
    result.verdicts["proposition4_governs"] = proposition4_applies(p)

    # Case 5 (degenerate boundary) rides along: also strongly stable.
    case5 = CASE5
    result.verdicts["case5_classifies"] = classify_case(case5) is PaperCase.CASE5
    case5_report = strong_stability_report(case5)
    result.verdicts["case5_strongly_stable"] = case5_report.strongly_stable
    result.table_rows.append(["case5 queue peak", case5_report.queue_peak])

    if render_plots:
        result.plots.append(
            phase_plot(samples[:, 1], samples[:, 2], switching_k=p.k,
                       title="Fig.10(a): Case-4 phase trajectory")
        )
        result.plots.append(
            line_plot(samples[:, 0], samples[:, 1], reference=0.0,
                      title="Fig.10(b): x(t) approaches 0 from below")
        )
    return result

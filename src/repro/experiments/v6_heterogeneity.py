"""V6 (extension) — how far does the homogeneity assumption stretch?

Section III justifies a single-source model by the symmetry of DCE
topologies and workloads: all sources "have the same characteristics,
follow the same routes, and experience the same round-trip propagation
delays".  Real fleets are never perfectly uniform.  This experiment
perturbs the DES away from homogeneity and measures how well the
*aggregate* still follows the homogeneous fluid model:

* **rate jitter** — initial rates drawn ±50% around the mean;
* **gain jitter** — per-source Gi and Gd spread ±30%;
* **delay jitter** — per-source propagation delays spread 10x.

For each perturbation the packet-level queue trajectory is compared
against the unperturbed fluid prediction (same aggregate start).  The
mean-field expectation — and the verdict set — is that aggregate shape
survives mild heterogeneity (same oscillation class, commensurate peak
and steady mean), degrading gracefully rather than qualitatively.
"""

from __future__ import annotations

import random

import numpy as np

from ..analysis.validation import compare_series
from ..fluid.batch import simulate_fluid_batch
from ..simulation.network import BCNNetworkSimulator
from .base import ExperimentResult, register
from .v2_fluid_vs_packet import validation_params

__all__ = ["run"]


def _perturbed_run(kind: str, seed: int = 3, duration: float = 0.3):
    params = validation_params()
    rng = random.Random(seed)
    n = params.n_flows
    fair = params.capacity / n

    net = BCNNetworkSimulator(
        params,
        frame_bits=1500,
        initial_rate=1.5 * fair,
        regulator_mode="fluid-exact",
        fb_bits=None,
        require_association=False,
        positive_only_below_q0=False,
        random_sampling=True,
        enable_pause=False,
    )
    if kind == "rate":
        # jitter initial rates +-50% around 1.5x fair, keeping the sum
        factors = [rng.uniform(0.5, 1.5) for _ in range(n)]
        scale = n / sum(factors)
        for source, f in zip(net.sources, factors):
            source.regulator.rate = 1.5 * fair * f * scale
    elif kind == "gain":
        for source in net.sources:
            source.regulator.gi = params.gi * rng.uniform(0.7, 1.3)
            source.regulator.gd = params.gd * rng.uniform(0.7, 1.3)
    elif kind == "delay":
        # 10x spread of control/data path delays (0.1 us .. 1 us)
        for source in net.sources:
            delay = rng.uniform(0.1e-6, 1e-6)
            source.send.__self__.delay = delay  # uplink Link
    elif kind != "none":
        raise ValueError(f"unknown perturbation {kind!r}")
    return params, net.run(duration)


@register("v6")
def run(*, render_plots: bool = True, duration: float = 0.3) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="v6",
        title="Heterogeneous sources vs the homogeneous fluid model",
        table_headers=["perturbation", "nrmse", "peak ratio", "mean ratio",
                       "class"],
    )
    params = validation_params()
    # Fluid reference ensemble in one batched physical-mode integration:
    # row 0 is the nominal prediction the DES runs are compared against,
    # rows 1-2 bracket it with ±10% initial aggregate-rate offsets so
    # the comparison tolerance is visibly wider than the model's own
    # sensitivity to the starting point.
    y0_nominal = 0.5 * params.capacity
    ensemble = simulate_fluid_batch(
        params.normalized(),
        -params.q0,
        np.array([1.0, 0.9, 1.1]) * y0_nominal,
        t_max=duration,
        mode="physical",
        max_switches=4000,
    )
    fluid = ensemble.trajectory(0)
    fluid_peaks = [x for _, x in fluid.extrema if x > 0.0]
    result.verdicts["fluid_reference_peaks_decay"] = bool(
        len(fluid_peaks) < 2 or fluid_peaks[-1] < fluid_peaks[0]
    )

    reports = {}
    for kind in ("none", "rate", "gain", "delay"):
        _, packet = _perturbed_run(kind, duration=duration)
        report = compare_series(
            fluid.t, fluid.queue(), packet.t, packet.queue,
            reference_level=params.q0,
        )
        reports[kind] = report
        result.table_rows.append([
            kind, report.nrmse, report.peak_ratio, report.mean_ratio,
            report.candidate_class,
        ])
        result.series[f"{kind}_t"] = packet.t
        result.series[f"{kind}_q"] = packet.queue

    base = reports["none"]
    result.verdicts["baseline_tracks_fluid"] = base.nrmse < 0.15
    for kind in ("rate", "gain", "delay"):
        rep = reports[kind]
        result.verdicts[f"{kind}_same_class"] = (
            rep.candidate_class == base.candidate_class
        )
        result.verdicts[f"{kind}_peak_commensurate"] = (
            0.6 <= rep.peak_ratio <= 1.6
        )
        result.verdicts[f"{kind}_mean_commensurate"] = (
            0.6 <= rep.mean_ratio <= 1.6
        )
    # graceful, not catastrophic: worst nrmse under mild heterogeneity
    # stays within a small multiple of the homogeneous baseline
    worst = max(reports[k].nrmse for k in ("rate", "gain", "delay"))
    result.table_rows.append(["worst perturbed nrmse", worst, "", "", ""])
    result.verdicts["degrades_gracefully"] = worst < max(0.3, 5.0 * base.nrmse)
    result.notes.append(
        "Mild heterogeneity in rates, gains or delays leaves the aggregate "
        "queue dynamics on the homogeneous fluid prediction — the paper's "
        "symmetry assumption is a mean-field statement, not a knife edge."
    )
    result.notes.append(
        "Fluid reference ensemble (nominal ±10% initial rate) integrated "
        f"by the batch kernel in {ensemble.kernel_seconds:.3f} s."
    )
    return result

"""Common result shape and registry for the paper's experiments.

Every figure/table of the paper maps to one module in this package
exposing ``run(**options) -> ExperimentResult``.  The result carries the
figure's data series (CSV-ready columns), any tabular rows, and a dict
of named boolean **verdicts** — the shape properties the paper claims,
checked programmatically (e.g. "Case 3 never overshoots q0").  The
benchmark harness runs each experiment, asserts its verdicts and prints
the series, which is this reproduction's analogue of regenerating the
figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..viz.series import format_table, write_csv

__all__ = ["ExperimentResult", "register", "get_experiment", "all_experiments"]


@dataclass
class ExperimentResult:
    """Outcome of one reproduced figure/table."""

    experiment_id: str
    title: str
    series: dict[str, np.ndarray] = field(default_factory=dict)
    table_headers: list[str] = field(default_factory=list)
    table_rows: list[list[Any]] = field(default_factory=list)
    verdicts: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    plots: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """All shape verdicts hold."""
        return all(self.verdicts.values())

    def failing_verdicts(self) -> list[str]:
        return [name for name, ok in self.verdicts.items() if not ok]

    def render(self) -> str:
        """Human-readable report: title, table, verdicts, plots, notes."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.table_rows:
            lines.append(format_table(self.table_headers, self.table_rows))
        if self.verdicts:
            lines.append("verdicts:")
            for name, ok in self.verdicts.items():
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        lines += self.plots
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def save_series(self, directory: str | Path) -> Path | None:
        """Write the figure's series to ``<dir>/<id>.csv`` (if any)."""
        if not self.series:
            return None
        lengths = {k: np.asarray(v).size for k, v in self.series.items()}
        n = max(lengths.values())
        padded = {}
        for key, col in self.series.items():
            arr = np.asarray(col, dtype=float).ravel()
            if arr.size < n:
                arr = np.concatenate([arr, np.full(n - arr.size, np.nan)])
            padded[key] = arr
        return write_csv(Path(directory) / f"{self.experiment_id}.csv", padded)


_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator registering an experiment's ``run`` callable."""

    def decorator(func: Callable[..., ExperimentResult]):
        _REGISTRY[experiment_id] = func
        return func

    return decorator


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a registered experiment by id (e.g. ``"fig6"``)."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> dict[str, Callable[..., ExperimentResult]]:
    """All registered experiments, id -> run callable."""
    return dict(_REGISTRY)

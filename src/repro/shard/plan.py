"""Static sharding plan: ownership, channels and the safe window.

:func:`build_plan` turns (topology, flows, partition) into the
immutable :class:`ShardPlan` every shard worker receives.  The plan
fixes, independently of worker count:

* **routes** — the same deterministic ECMP selection the serial
  :class:`~repro.simulation.multihop.MultiHopNetwork` makes;
* **port ownership** — the directed output port ``(u, v)`` lives in the
  shard owning ``u`` (the transmitting node);
* **source ownership** — a flow's source/regulator lives in the shard
  owning its first route node (the host);
* **lookahead** — the conservative synchronization window.  Every
  cross-shard interaction (frame forwarding, BCN feedback, PAUSE)
  travels over a link of at least one propagation delay, so a shard
  simulating ``(T, T + delay]`` cannot be affected by anything a peer
  does inside the same window — the Chandy–Misra null-message bound
  realised as a fixed barrier cadence.  When the partition cuts no
  channel the lookahead is infinite and the run needs a single window.

The plan must be picklable: it is shipped once to each worker of the
:class:`~repro.runner.pool.PersistentWorkerPool` and stepped thousands
of times in place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx

from ..simulation.multihop import PortConfig
from ..topology.partition import Partition, partition_graph
from ..topology.routing import ecmp_route, route_edges
from ..workloads.flows import FlowSpec

__all__ = ["ShardPlan", "build_plan", "resolve_shards"]

Edge = tuple[str, str]


def resolve_shards(shards: int | str, graph: nx.Graph,
                   workers: int | None) -> int:
    """Effective shard count for a ``shards=`` seam value.

    ``"auto"`` picks one shard per effective worker
    (:func:`~repro.runner.parallel.resolve_workers` semantics), capped
    by the number of non-host nodes so no shard is guaranteed empty of
    switching capacity.  Integers pass through validated.
    """
    from ..runner.parallel import resolve_workers

    n_switches = sum(
        1 for _, data in graph.nodes(data=True) if data.get("kind") != "host"
    )
    if shards == "auto":
        return max(1, min(resolve_workers(workers) or 1, max(1, n_switches)))
    if isinstance(shards, bool) or not isinstance(shards, int):
        raise ValueError(f"shards must be an int or 'auto', got {shards!r}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return shards


@dataclass(frozen=True)
class ShardPlan:
    """Everything a shard worker needs to build and step its region."""

    graph: nx.Graph
    flows: tuple[FlowSpec, ...]
    routes: dict[int, tuple[str, ...]]
    config: PortConfig
    partition: Partition
    frame_bits: int
    delay: float
    hop_level_pause: bool
    engine: str
    queue_dt: float
    #: Directed in-fabric port edges, in first-traversal order (the
    #: serial network's instantiation order).
    port_edges: tuple[Edge, ...]
    port_owner: dict[Edge, int] = field(repr=False)
    source_owner: dict[int, int] = field(repr=False)
    #: Minimum latency of any cross-shard channel (`inf` = no channel).
    lookahead: float = math.inf

    @property
    def n_shards(self) -> int:
        return self.partition.n_shards

    def window_edges(self, duration: float) -> list[float]:
        """Barrier times for a run of ``duration`` seconds.

        Monotonically increasing, ending exactly at ``duration``; one
        entry per conservative window.  Computed by multiplication
        (``k * lookahead``), not accumulation, so boundary ``k`` is the
        same float in every shard and every worker layout.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not math.isfinite(self.lookahead):
            return [duration]
        n_windows = max(1, math.ceil(duration / self.lookahead - 1e-9))
        edges = [
            min((k + 1) * self.lookahead, duration) for k in range(n_windows)
        ]
        edges[-1] = duration
        return edges

    def events_for_shard(
        self, shard: int,
        timed_events: list[tuple[float, int, str, tuple]],
    ) -> list[tuple[float, int, str, tuple]]:
        """The subset of declarative timed events this shard applies.

        Global (``port=None``) outages go to every shard; port events
        to the port's owner; departures to the source's owner.  The
        global registration sequence number rides along so ties at one
        timestamp fire in registration order inside each shard.
        """
        mine = []
        for t, seq, kind, payload in timed_events:
            if kind == "capacity":
                owner = self.port_owner[payload[0]]
            elif kind == "outage":
                port = payload[1]
                owner = shard if port is None else self.port_owner[port]
            elif kind == "departure":
                owner = self.source_owner[payload[0]]
            else:
                raise ValueError(f"unknown timed event kind {kind!r}")
            if owner == shard:
                mine.append((t, seq, kind, payload))
        return mine


def build_plan(
    graph: nx.Graph,
    flows: list[FlowSpec],
    config: PortConfig,
    *,
    n_shards: int,
    frame_bits: int,
    delay: float,
    hop_level_pause: bool,
    engine: str,
    queue_dt: float,
    partition: Partition | None = None,
    routes: dict[int, list[str]] | None = None,
) -> ShardPlan:
    """Build the sharding plan for one fabric workload.

    ``partition`` defaults to :func:`~repro.topology.partition_graph`
    over the full node set; pass one explicitly to pin shard
    boundaries (it is validated against the graph).  ``routes`` may
    carry the serial network's already-computed ECMP selection.
    """
    if not flows:
        raise ValueError("need at least one flow")
    if partition is None:
        partition = partition_graph(graph, n_shards)
    else:
        if partition.n_shards != n_shards:
            raise ValueError(
                f"partition has {partition.n_shards} shards, expected {n_shards}"
            )
        partition.validate(graph)

    resolved_routes: dict[int, tuple[str, ...]] = {}
    for spec in flows:
        if routes is not None and spec.flow_id in routes:
            route = tuple(routes[spec.flow_id])
        elif spec.route is not None:
            route = tuple(spec.route)
        else:
            route = tuple(ecmp_route(graph, spec.src, spec.dst, spec.flow_id))
        resolved_routes[spec.flow_id] = route

    assignment = partition.assignment
    port_edges: list[Edge] = []
    port_owner: dict[Edge, int] = {}
    for spec in flows:
        route = resolved_routes[spec.flow_id]
        for u, v in route_edges(list(route)):
            if u == route[0]:
                continue  # host NIC: pacing models the first hop
            if (u, v) not in port_owner:
                port_owner[(u, v)] = assignment[u]
                port_edges.append((u, v))

    source_owner = {
        spec.flow_id: assignment[resolved_routes[spec.flow_id][0]]
        for spec in flows
    }

    lookahead = _min_cross_latency(
        flows, resolved_routes, port_owner, source_owner,
        hop_level_pause, delay,
    )
    if lookahead <= 0:
        raise ValueError(
            "sharded execution needs a positive propagation delay: every "
            "cross-shard channel's latency bounds the conservative window"
        )

    return ShardPlan(
        graph=graph,
        flows=tuple(flows),
        routes=resolved_routes,
        config=config,
        partition=partition,
        frame_bits=frame_bits,
        delay=delay,
        hop_level_pause=hop_level_pause,
        engine=engine,
        queue_dt=queue_dt,
        port_edges=tuple(port_edges),
        port_owner=port_owner,
        source_owner=source_owner,
        lookahead=lookahead,
    )


def _min_cross_latency(
    flows: tuple[FlowSpec, ...] | list[FlowSpec],
    routes: dict[int, tuple[str, ...]],
    port_owner: dict[Edge, int],
    source_owner: dict[int, int],
    hop_level_pause: bool,
    delay: float,
) -> float:
    """Minimum latency over every channel that crosses a shard boundary.

    Channels mirror the serial network's wiring exactly: the source
    uplink and hop-by-hop forwarding (one ``delay``), BCN backward
    links (``delay * (hop + 1)``) and PAUSE links (one ``delay``).
    Returns ``inf`` when the partition cuts nothing.
    """
    lookahead = math.inf
    for spec in flows:
        route = routes[spec.flow_id]
        src_shard = source_owner[spec.flow_id]
        edges = route_edges(list(route))
        on_route = [e for e in edges if e in port_owner]
        # source uplink -> entry port
        if len(edges) >= 2 and port_owner[edges[1]] != src_shard:
            lookahead = min(lookahead, delay)
        # hop-by-hop frame forwarding
        for prev_edge, next_edge in zip(on_route, on_route[1:]):
            if port_owner[prev_edge] != port_owner[next_edge]:
                lookahead = min(lookahead, delay)
        # BCN backward links (and source-directed PAUSE reuses them)
        for i, edge in enumerate(edges):
            if edge in port_owner and port_owner[edge] != src_shard:
                lookahead = min(lookahead, delay * (i + 1))
        # hop-level PAUSE: first port -> source NIC, then downstream ->
        # upstream along the route
        if hop_level_pause and on_route:
            if port_owner[on_route[0]] != src_shard:
                lookahead = min(lookahead, delay)
            for upstream, downstream in zip(on_route, on_route[1:]):
                if port_owner[downstream] != port_owner[upstream]:
                    lookahead = min(lookahead, delay)
    return lookahead

"""Per-shard simulation state: one event kernel over one fabric region.

A :class:`ShardRuntime` instantiates exactly the ports and sources its
shard owns (per the :class:`~repro.shard.plan.ShardPlan` ownership
rules) and steps them window by window.  Channels whose far end lives
in another shard are replaced by :class:`RemoteLink` stubs that append
to a per-destination outbox instead of scheduling locally; the
coordinator exchanges outboxes at every window barrier.

Determinism contract
--------------------
Construction and the run preamble replay the serial
:class:`~repro.simulation.multihop.MultiHopNetwork` order exactly —
ports in first-traversal order over flows, sources in flow order, BCN
before PAUSE wiring per flow — so a one-shard plan produces the
bitwise-identical event sequence.  Inbound messages are scheduled in
the canonical ``(arrival_time, source_shard, message_seq)`` order,
which depends only on the plan, never on how shards map to workers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from ..simulation.engine import CalendarSimulator, Simulator, make_simulator
from ..simulation.frames import EthernetFrame
from ..simulation.link import Link
from ..simulation.multihop import QueueRecorder
from ..simulation.source import RateRegulator, TrafficSource
from ..simulation.switch import CoreSwitch
from ..workloads.flows import FlowSpec
from .plan import ShardPlan

__all__ = ["RemoteLink", "ShardRuntime"]

Edge = tuple[str, str]

#: Message kinds on the barrier wire, dispatched to the owning object:
#: ``frame`` -> port.receive, ``ctrl`` -> source.receive_control,
#: ``pause`` -> port.receive_pause.
_KINDS = ("frame", "ctrl", "pause")


@dataclass
class RemoteLink:
    """A :class:`~repro.simulation.link.Link` whose far end is remote.

    Duck-types ``transmit``: instead of scheduling a local delivery it
    stamps the arrival time (``now + delay``) and appends to the
    runtime's outbox for the owning shard.  The conservative window
    guarantees the message is exchanged before the receiver simulates
    past its arrival.
    """

    runtime: "ShardRuntime"
    dst_shard: int
    delay: float
    kind: str
    target: object

    def transmit(self, payload) -> None:
        self.runtime._emit(
            self.dst_shard,
            self.runtime.sim.now + self.delay,
            self.kind,
            self.target,
            payload,
        )


class ShardRuntime:
    """Build and step one shard of a sharded fabric run.

    Lifecycle (driven by the coordinator, locally or over the worker
    pool): construct, :meth:`start`, ``run_window`` per barrier,
    :meth:`finish` for the partial result.
    """

    def __init__(
        self,
        plan: ShardPlan,
        shard: int,
        timed_events: list[tuple[float, int, str, tuple]],
        obs_enabled: bool = False,
    ) -> None:
        self.plan = plan
        self.shard = shard
        # (flow, node) -> hop index, mirroring MultiHopNetwork's O(1)
        # forwarding lookup.
        self._hop_index = {
            fid: {node: i for i, node in enumerate(route)}
            for fid, route in plan.routes.items()
        }
        self._timed_events = timed_events
        if obs_enabled:
            from ..obs import Observability

            self.obs = Observability()
        else:
            self.obs = None
        self._obs_engine = f"packet.{plan.engine}"
        self.sim = _make_kernel(plan)

        # Mirror the serial construction order exactly (see module
        # docstring): ports in first-traversal order over flows...
        self.ports: dict[Edge, CoreSwitch] = {}
        for spec in plan.flows:
            route = plan.routes[spec.flow_id]
            for edge in _route_edges(route):
                if edge[0] == route[0]:
                    continue  # host NIC: pacing models the first hop
                if plan.port_owner.get(edge) == shard and edge not in self.ports:
                    self.ports[edge] = self._make_port(*edge)

        # ...then sources (and control wiring) in flow order.
        self._specs = {spec.flow_id: spec for spec in plan.flows}
        self._finish_times: dict[int, float] = {}
        self._pause_wired: set[tuple[Edge, tuple[str, str]]] = set()
        self._fwd_links: dict[Edge, Link] = {}
        self._remote_fwd: dict[Edge, RemoteLink] = {}
        self.sources: dict[int, TrafficSource] = {}
        self._delivered: dict[int, float] = {}
        self._outbox: dict[int, list[tuple[float, str, object, object]]] = {}
        self._msgs_sent = 0
        self._msgs_recv = 0
        self._window_count = 0
        for spec in plan.flows:
            self._wire_flow(spec)

        self._recorder: QueueRecorder | None = None

    # -- construction ------------------------------------------------------

    def _make_port(self, u: str, v: str) -> CoreSwitch:
        cfg = self.plan.config
        port = CoreSwitch(
            self.sim,
            cpid=f"{u}->{v}",
            capacity=self.plan.graph.edges[u, v]["capacity"],
            q0=cfg.q0,
            buffer_bits=cfg.buffer_bits,
            w=cfg.w,
            pm=cfg.pm,
            q_sc=cfg.q_sc,
            fb_bits=cfg.fb_bits,
        )
        port.forward = lambda frame, _v=v: self._forward(frame, _v)
        port.attach_obs(self.obs, self._obs_engine)
        return port

    def _wire_flow(self, spec: FlowSpec) -> None:
        plan = self.plan
        fid = spec.flow_id
        route = plan.routes[fid]
        edges = _route_edges(route)
        owns_source = plan.source_owner[fid] == self.shard

        source: TrafficSource | None = None
        if owns_source:
            cfg = plan.config
            regulator = RateRegulator(
                gi=cfg.gi,
                gd=cfg.gd,
                ru=cfg.ru,
                initial_rate=spec.demand,
                min_rate=cfg.min_rate,
                line_rate=spec.demand,
                mode=cfg.regulator_mode,
            )
            source = TrafficSource(
                self.sim,
                address=fid,
                regulator=regulator,
                send=self._uplink(fid, route, edges).transmit,
                frame_bits=plan.frame_bits,
                dst=spec.dst,
                total_bits=spec.size_bits,
            )
            self.sources[fid] = source
            self._delivered.setdefault(fid, 0.0)

        def control_link(latency: float):
            """Link carrying BCN/PAUSE back to this flow's source."""
            if owns_source:
                return Link(self.sim, latency, source.receive_control)
            return RemoteLink(
                self, plan.source_owner[fid], latency, "ctrl", fid
            )

        # Backward control path at every *owned* port on the route.
        on_route = [e for e in edges if e in plan.port_owner]
        for i, edge in enumerate(edges):
            if edge in plan.port_owner and plan.port_owner[edge] == self.shard:
                back = control_link(plan.delay * (i + 1))
                self.ports[edge].register_bcn_link(fid, back)
                if not plan.hop_level_pause:
                    self.ports[edge].register_pause_link(back)

        if plan.hop_level_pause and on_route:
            # Hop-by-hop 802.3x, same dedup keys as the serial network:
            # the first in-fabric port pauses the source NIC, every
            # downstream port pauses the port feeding it.
            first = on_route[0]
            key = (first, ("src", str(fid)))
            if plan.port_owner[first] == self.shard and key not in self._pause_wired:
                self._pause_wired.add(key)
                self.ports[first].register_pause_link(control_link(plan.delay))
            for upstream, downstream in zip(on_route, on_route[1:]):
                key = (downstream, upstream)
                if plan.port_owner[downstream] != self.shard:
                    continue
                if key in self._pause_wired:
                    continue
                self._pause_wired.add(key)
                if plan.port_owner[upstream] == self.shard:
                    link = Link(
                        self.sim, plan.delay, self.ports[upstream].receive_pause
                    )
                else:
                    link = RemoteLink(
                        self, plan.port_owner[upstream], plan.delay,
                        "pause", upstream,
                    )
                self.ports[downstream].register_pause_link(link)

    def _uplink(self, fid: int, route: tuple[str, ...], edges: list[Edge]):
        """The source's NIC link to its first in-fabric port (or sink)."""
        if len(edges) >= 2:
            entry = edges[1]
            if self.plan.port_owner[entry] == self.shard:
                return Link(self.sim, self.plan.delay, self.ports[entry].receive)
            return RemoteLink(
                self, self.plan.port_owner[entry], self.plan.delay,
                "frame", entry,
            )
        # Direct host-to-host (DCell level links): deliver straight away.
        return Link(self.sim, self.plan.delay, self._sink(fid))

    def _sink(self, fid: int):
        def deliver(frame: EthernetFrame) -> None:
            self._record_delivery(frame.flow_id, frame.size_bits)

        return deliver

    # -- data path ---------------------------------------------------------

    def _record_delivery(self, flow_id: int, bits: float) -> None:
        self._delivered[flow_id] = self._delivered.get(flow_id, 0.0) + bits
        spec = self._specs[flow_id]
        if (spec.size_bits is not None
                and flow_id not in self._finish_times
                and self._delivered[flow_id] >= spec.size_bits):
            self._finish_times[flow_id] = self.sim.now

    def _forward(self, frame: EthernetFrame, at_node: str) -> None:
        route = self.plan.routes[frame.flow_id]
        idx = self._hop_index[frame.flow_id][at_node]
        if idx == len(route) - 1:
            self._record_delivery(frame.flow_id, frame.size_bits)
            return
        next_edge = (at_node, route[idx + 1])
        if self.plan.port_owner[next_edge] == self.shard:
            link = self._fwd_links.get(next_edge)
            if link is None:
                link = Link(
                    self.sim, self.plan.delay, self.ports[next_edge].receive
                )
                self._fwd_links[next_edge] = link
            link.transmit(frame)
            return
        remote = self._remote_fwd.get(next_edge)
        if remote is None:
            remote = RemoteLink(
                self, self.plan.port_owner[next_edge], self.plan.delay,
                "frame", next_edge,
            )
            self._remote_fwd[next_edge] = remote
        remote.transmit(frame)

    def _emit(self, dst_shard: int, arrival: float, kind: str,
              target: object, payload: object) -> None:
        self._outbox.setdefault(dst_shard, []).append(
            (arrival, kind, target, payload)
        )
        self._msgs_sent += 1

    # -- lifecycle (coordinator-driven) ------------------------------------

    def start(self, duration: float) -> None:
        """Schedule timed events, source starts and queue sampling.

        Mirrors the serial ``run()`` preamble verbatim: sorted timed
        events, sources in flow order, one immediate sample, then the
        periodic recorder.
        """
        for t_event, _, kind, payload in sorted(
            self._timed_events, key=lambda ev: ev[:2]
        ):
            self.sim.schedule_at(
                t_event, partial(self._apply_event, kind, payload)
            )
        for spec in self.plan.flows:
            if spec.flow_id in self.sources:
                self.sim.schedule_at(
                    spec.start_time, self.sources[spec.flow_id].start
                )
        expected = int(duration / self.plan.queue_dt) + 3
        self._recorder = QueueRecorder(self.sim, self.ports, expected)
        self._recorder.record()
        self.sim.schedule_every(
            self.plan.queue_dt, self._recorder.record, until=duration
        )

    def _apply_event(self, kind: str, payload: tuple) -> None:
        if kind == "capacity":
            self.ports[payload[0]].set_capacity(payload[1])
        elif kind == "outage":
            outage_duration, port = payload
            until = self.sim.now + outage_duration
            edges = [port] if port is not None else list(self.ports)
            for edge in edges:
                self.ports[edge].suspend_service(until)
        elif kind == "departure":
            self.sources[payload[0]].muted = True
        else:  # pragma: no cover - plan.events_for_shard already validates
            raise ValueError(f"unknown timed event kind {kind!r}")

    def run_window(
        self,
        t_end: float,
        inbound: list[tuple[float, int, int, str, object, object]],
    ) -> dict[int, list[tuple[float, str, object, object]]]:
        """Deliver inbound barrier messages, simulate up to ``t_end``.

        ``inbound`` rows are ``(arrival, src_shard, seq, kind, target,
        payload)``; they are scheduled in canonical sorted order so the
        local tie-break is identical for every worker layout.  Returns
        (and clears) the outbox accumulated during the window.
        """
        wall = time.perf_counter() if self.obs is not None else 0.0
        now = self.sim.now
        for arrival, _src, _seq, kind, target, payload in sorted(
            inbound, key=lambda m: (m[0], m[1], m[2])
        ):
            self._msgs_recv += 1
            if kind == "frame":
                fn = self.ports[target].receive
            elif kind == "ctrl":
                fn = self.sources[target].receive_control
            elif kind == "pause":
                fn = self.ports[target].receive_pause
            else:
                raise ValueError(f"unknown barrier message kind {kind!r}")
            # Guard against float round-off placing the arrival a hair
            # before the barrier the receiver already reached; the clamp
            # is layout-independent (every shard sits exactly at the
            # window edge when messages are delivered).
            self.sim.schedule_at(max(arrival, now), partial(fn, payload))
        self.sim.run_window(t_end)
        self._window_count += 1
        out = self._outbox
        self._outbox = {}
        if self.obs is not None:
            self.obs.add_span("shard.window", time.perf_counter() - wall)
        return out

    def finish(self) -> dict:
        """Final sample + per-shard partial result for the merge."""
        assert self._recorder is not None, "finish() before start()"
        self._recorder.record()
        if self.obs is not None:
            from ..obs import emit_sign_switches

            self.obs.count("shard.msgs.sent", self._msgs_sent)
            self.obs.count("shard.msgs.recv", self._msgs_recv)
            queues = self._recorder.queues()
            for edge, port in self.ports.items():
                hist = port.sigma_history
                emit_sign_switches(self.obs, [h[0] for h in hist],
                                   [h[1] for h in hist],
                                   engine=self._obs_engine, node=port.cpid)
                self.obs.observe_queue(
                    self._obs_engine, queues[edge],
                    self.plan.config.buffer_bits, self.plan.config.q0)
        return {
            "shard": self.shard,
            "delivered": dict(self._delivered),
            "finish_times": dict(self._finish_times),
            "rates": {fid: src.rate for fid, src in self.sources.items()},
            "port_queues": self._recorder.queues(),
            "sample_times": self._recorder.times(),
            "dropped": sum(
                p.queue.dropped_frames for p in self.ports.values()
            ),
            "bcn_negative": sum(
                p.stats.bcn_negative for p in self.ports.values()
            ),
            "bcn_positive": sum(
                p.stats.bcn_positive for p in self.ports.values()
            ),
            "pauses": sum(p.stats.pauses_sent for p in self.ports.values()),
            "msgs_sent": self._msgs_sent,
            "msgs_recv": self._msgs_recv,
            "obs": self.obs.snapshot() if self.obs is not None else None,
        }


def _make_kernel(plan: ShardPlan) -> Simulator:
    """The per-shard event kernel for the plan's ``engine`` seam value."""
    if plan.engine == "reference":
        return Simulator()
    fastest = max(
        (data["capacity"] for _, _, data in plan.graph.edges(data=True)
         if "capacity" in data),
        default=1e9,
    )
    slot = plan.frame_bits / fastest
    if plan.engine == "batched":
        return CalendarSimulator(slot_width=slot, n_slots=4096)
    if plan.engine == "compiled":
        return make_simulator("compiled", slot_width=slot, n_slots=4096)
    raise ValueError(f"unknown packet engine {plan.engine!r}")


def _route_edges(route: tuple[str, ...]) -> list[Edge]:
    return list(zip(route, route[1:]))

"""Sharded fabric simulation — conservative parallel multi-hop engine.

Partitions a topology into shards (:mod:`repro.topology.partition`),
builds one event kernel per shard (:mod:`.runtime`) inside the
persistent runner pool (:class:`repro.runner.PersistentWorkerPool`),
and advances all shards in lockstep conservative windows sized from
the minimum cross-shard link latency (:mod:`.plan`), exchanging
frames, BCN feedback and PAUSE as batched message buffers at every
window barrier (:mod:`.coordinator`).

The public seam is ``MultiHopNetwork(..., shards=..., workers=...)``;
this package is the machinery behind it.  Results are bitwise
identical for any worker count, and identical to the serial engine for
one shard.
"""

from __future__ import annotations

from .coordinator import run_sharded
from .plan import ShardPlan, build_plan, resolve_shards
from .runtime import RemoteLink, ShardRuntime

__all__ = [
    "RemoteLink",
    "ShardPlan",
    "ShardRuntime",
    "build_plan",
    "resolve_shards",
    "run_sharded",
]

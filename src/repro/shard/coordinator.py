"""Window-barrier coordinator for sharded fabric runs.

:func:`run_sharded` drives ``n_shards`` :class:`~repro.shard.runtime.
ShardRuntime` instances through the conservative window schedule of a
:class:`~repro.shard.plan.ShardPlan` and merges their partial results
into the same :class:`~repro.simulation.multihop.MultiHopResult` the
serial engine returns.

Two execution modes share the loop:

* ``workers <= 1`` — every runtime lives in-process and is stepped
  inline.  No pickling, no processes; used for the determinism tests
  and as the degenerate path on single-CPU boxes.
* ``workers > 1`` — runtimes are actors in a
  :class:`~repro.runner.pool.PersistentWorkerPool`; shard ``s`` lives
  on worker ``s % n_workers``.  Per window the coordinator pipelines
  one ``run_window`` command to every worker, gathers replies in shard
  order, and routes the outboxes — one barrier round trip per window.

Determinism: the message exchange tags every message with its source
shard and per-buffer position, and receivers sort on ``(arrival,
src_shard, seq)``, so results are bitwise identical for any worker
count (including the inline path).  Observability metrics and spans
from the shards are merged commutatively into the caller's handle;
per-event trace records stay in the workers (documented limitation —
traces are not merged across shards).
"""

from __future__ import annotations

import time

import numpy as np

from ..runner.parallel import resolve_workers
from ..runner.pool import PersistentWorkerPool
from ..simulation.multihop import MultiHopResult
from .plan import ShardPlan
from .runtime import ShardRuntime

__all__ = ["run_sharded"]

TimedEvent = tuple[float, int, str, tuple]
Outbox = dict[int, list[tuple[float, str, object, object]]]


def run_sharded(
    plan: ShardPlan,
    duration: float,
    *,
    workers: int | None = None,
    timed_events: list[TimedEvent] | None = None,
    obs=None,
) -> MultiHopResult:
    """Run the sharded fabric for ``duration`` seconds."""
    obs = obs if (obs is not None and obs.enabled) else None
    wall_start = time.perf_counter() if obs is not None else 0.0
    events = list(timed_events or [])
    per_shard_events = [
        plan.events_for_shard(shard, events) for shard in range(plan.n_shards)
    ]
    barriers = plan.window_edges(duration)
    n_workers = min(resolve_workers(workers) or 1, plan.n_shards)

    if n_workers <= 1:
        partials = _run_inline(plan, duration, barriers, per_shard_events,
                               obs is not None)
    else:
        partials = _run_pooled(plan, duration, barriers, per_shard_events,
                               obs is not None, n_workers)

    result = _merge(plan, duration, partials)
    if obs is not None:
        for part in partials:
            if part["obs"] is not None:
                obs.merge_metrics(part["obs"])
        obs.count("shard.windows", len(barriers))
        obs.add_span(f"packet.{plan.engine}.sharded.run",
                     time.perf_counter() - wall_start)
    return result


def _route(outboxes: list[Outbox], n_shards: int):
    """Turn per-shard outboxes into per-shard canonical inboxes.

    Sources are visited in shard order and each message keeps its
    position in its (src, dst) buffer, so the ``(arrival, src_shard,
    seq)`` tags — and therefore the receiver-side sort — are identical
    for every worker layout.
    """
    inboxes: list[list] = [[] for _ in range(n_shards)]
    for src_shard, outbox in enumerate(outboxes):
        for dst_shard in sorted(outbox):
            for seq, (arrival, kind, target, payload) in enumerate(
                outbox[dst_shard]
            ):
                inboxes[dst_shard].append(
                    (arrival, src_shard, seq, kind, target, payload)
                )
    return inboxes


def _run_inline(plan, duration, barriers, per_shard_events, obs_enabled):
    runtimes = [
        ShardRuntime(plan, shard, per_shard_events[shard], obs_enabled)
        for shard in range(plan.n_shards)
    ]
    for runtime in runtimes:
        runtime.start(duration)
    inboxes: list[list] = [[] for _ in runtimes]
    for t_end in barriers:
        outboxes = [
            runtime.run_window(t_end, inbox)
            for runtime, inbox in zip(runtimes, inboxes)
        ]
        inboxes = _route(outboxes, plan.n_shards)
    return [runtime.finish() for runtime in runtimes]


def _run_pooled(plan, duration, barriers, per_shard_events, obs_enabled,
                n_workers):
    worker_of = [shard % n_workers for shard in range(plan.n_shards)]
    names = [f"shard-{shard}" for shard in range(plan.n_shards)]
    shards = range(plan.n_shards)
    with PersistentWorkerPool(n_workers) as pool:
        # One pipelined command wave per step; replies gathered in shard
        # order, which per worker matches send order (FIFO pipes).
        for shard in shards:
            pool.create(worker_of[shard], names[shard], ShardRuntime,
                        plan, shard, per_shard_events[shard], obs_enabled)
        for shard in shards:
            pool.result(worker_of[shard])
        for shard in shards:
            pool.call(worker_of[shard], names[shard], "start", duration)
        for shard in shards:
            pool.result(worker_of[shard])
        inboxes: list[list] = [[] for _ in shards]
        for t_end in barriers:
            for shard in shards:
                pool.call(worker_of[shard], names[shard], "run_window",
                          t_end, inboxes[shard])
            outboxes = [pool.result(worker_of[shard]) for shard in shards]
            inboxes = _route(outboxes, plan.n_shards)
        for shard in shards:
            pool.call(worker_of[shard], names[shard], "finish")
        return [pool.result(worker_of[shard]) for shard in shards]


def _merge(plan: ShardPlan, duration: float, partials: list[dict]
           ) -> MultiHopResult:
    """Fold per-shard partials into one :class:`MultiHopResult`.

    Every merged quantity is either owned by exactly one shard (rates,
    port queues, finish times, delivered bits of a flow) or a plain sum
    of disjoint counters, so the fold is order-independent.  Sample
    timestamps are identical in every shard (same recorder cadence);
    the first shard's row is used.
    """
    delivered = {spec.flow_id: 0.0 for spec in plan.flows}
    rates: dict[int, float] = {}
    finish_times: dict[int, float] = {}
    port_queues: dict[tuple[str, str], np.ndarray] = {}
    dropped = bcn_negative = bcn_positive = pauses = 0
    for part in partials:
        for fid, bits in part["delivered"].items():
            delivered[fid] += bits
        rates.update(part["rates"])
        finish_times.update(part["finish_times"])
        port_queues.update(part["port_queues"])
        dropped += part["dropped"]
        bcn_negative += part["bcn_negative"]
        bcn_positive += part["bcn_positive"]
        pauses += part["pauses"]
    return MultiHopResult(
        duration=duration,
        per_flow_delivered_bits=delivered,
        per_flow_rate=rates,
        port_queues=port_queues,
        port_queue_times=np.asarray(partials[0]["sample_times"], dtype=float),
        dropped_frames=dropped,
        bcn_negative=bcn_negative,
        bcn_positive=bcn_positive,
        pauses=pauses,
        finish_times=finish_times,
        start_times={spec.flow_id: spec.start_time for spec in plan.flows},
    )

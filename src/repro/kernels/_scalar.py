"""Scalar (per-element) kernel bodies shared by every compiled backend.

These functions are the *semantic source of truth* for the compiled
hot paths: each one is written in nopython style (numpy arrays, scalar
arithmetic, no python objects) so the same body serves three backends:

* ``numba`` — :func:`numba.njit(cache=True)` applied verbatim;
* ``cffi`` (C) — :mod:`repro.kernels._cbuild` carries a line-for-line C
  translation, differentially tested for bit-identical float64 output
  against these bodies in ``tests/unit/test_kernels.py``;
* plain python — the functions run as-is (slowly), which is what the
  unit tests exercise on machines with neither numba nor a C compiler.

The floating-point operation *order* in each body deliberately mirrors
the vectorized numpy implementations in
:class:`repro.simulation.switch.BatchedSwitchKernel` and
:mod:`repro.fluid.batch` element-by-element, so a compiled engine run
reproduces the batched engines bit-for-bit (transcendental calls —
``exp``/``log`` — may differ by ulps across libm builds; everything
else is exact).

Calling convention: outputs are written into caller-preallocated numpy
arrays; scalar results travel through small ``out_d`` (float64) /
``out_i`` (int64) arrays so the signatures stay identical across
backends (C pointers, numba arrays, python arrays).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "merge_trains",
    "pacing_plan",
    "pacing_commit",
    "owed_repay",
    "packet_plan",
    "packet_commit",
    "packet_scalar",
    "apply_messages",
    "fluid_rows",
    "next_nonempty",
]

_NEG_INF = -math.inf


# ---------------------------------------------------------------------------
# packet: frame-train planning (k-way merge of arithmetic emission trains)
# ---------------------------------------------------------------------------

def merge_trains(first, gaps, counts, assoc, d, out_t, out_src, out_assoc):
    """Merge per-source arithmetic emission trains into one sorted train.

    Source ``i`` emits ``counts[i]`` frames at ``first[i] + gaps[i]*k + d``
    (``k = 0..counts[i]-1``).  Output order is (time, source index) —
    identical to the stable argsort of the concatenated trains the
    batched engine performs.  Returns the total emitted count.
    """
    n_src = first.shape[0]
    m = 0
    for i in range(n_src):
        m += int(counts[i])
    if m == 0:
        return 0

    # array-based binary heap of (next_time, src), keyed lexicographically
    hp_t = np.empty(n_src, dtype=np.float64)
    hp_s = np.empty(n_src, dtype=np.int64)
    size = 0
    emitted = np.zeros(n_src, dtype=np.int64)
    for i in range(n_src):
        if counts[i] > 0:
            t0 = first[i] + gaps[i] * 0.0 + d
            # sift-up insert
            j = size
            hp_t[j] = t0
            hp_s[j] = i
            size += 1
            while j > 0:
                parent = (j - 1) >> 1
                if (hp_t[j] < hp_t[parent]) or (
                    hp_t[j] == hp_t[parent] and hp_s[j] < hp_s[parent]
                ):
                    hp_t[j], hp_t[parent] = hp_t[parent], hp_t[j]
                    hp_s[j], hp_s[parent] = hp_s[parent], hp_s[j]
                    j = parent
                else:
                    break
    for out in range(m):
        t = hp_t[0]
        i = hp_s[0]
        out_t[out] = t
        out_src[out] = i
        out_assoc[out] = assoc[i]
        emitted[i] += 1
        if emitted[i] < counts[i]:
            nt = first[i] + gaps[i] * float(emitted[i]) + d
            hp_t[0] = nt
            hp_s[0] = i
        else:
            size -= 1
            hp_t[0] = hp_t[size]
            hp_s[0] = hp_s[size]
        # sift-down
        j = 0
        while True:
            left = 2 * j + 1
            if left >= size:
                break
            right = left + 1
            small = left
            if right < size and (
                hp_t[right] < hp_t[left]
                or (hp_t[right] == hp_t[left] and hp_s[right] < hp_s[left])
            ):
                small = right
            if (hp_t[small] < hp_t[j]) or (
                hp_t[small] == hp_t[j] and hp_s[small] < hp_s[j]
            ):
                hp_t[j], hp_t[small] = hp_t[small], hp_t[j]
                hp_s[j], hp_s[small] = hp_s[small], hp_s[j]
                j = small
            else:
                break
    return m


# ---------------------------------------------------------------------------
# packet: per-window source pacing (plan / commit / owed-bits repayment)
# ---------------------------------------------------------------------------

def pacing_plan(next_emit, paused, active, remaining, gaps, until,
                first, counts):
    """Plan one window of per-source frame emission.

    Element-by-element identical to the batched engine's vectorized
    plan: ``first = max(next_emit, paused)``, then for each active
    source whose train reaches into the window, the emission count is
    ``floor((until - first) / gap) + 1`` clipped to the frames it has
    left.  Writes ``first``/``counts`` in place and returns the total.
    """
    n = next_emit.shape[0]
    total = 0
    for i in range(n):
        f = next_emit[i]
        if paused[i] > f:
            f = paused[i]
        first[i] = f
        c = 0
        if active[i] != 0 and f <= until:
            cf = math.floor((until - f) / gaps[i]) + 1.0
            if remaining[i] < cf:
                cf = remaining[i]
            c = int(cf)
        counts[i] = c
        total += c
    return total


def pacing_commit(srcs, m_committed, first, gaps, counts, any_finite,
                  next_emit, remaining, active, frames_acc, comm,
                  fin_idx, fin_t):
    """Fold a window's committed arrivals back into the pacing state.

    Counts the committed frames per source (``srcs[:m_committed]``),
    advances ``next_emit`` (sources whose frames were all held keep
    their planned ``first``), and — when ``any_finite`` — decrements
    ``remaining`` and retires finished sources, writing their index and
    finish time into ``fin_idx``/``fin_t``.  Returns the number of
    finished sources.
    """
    n = next_emit.shape[0]
    for i in range(n):
        comm[i] = 0
    for k in range(m_committed):
        comm[srcs[k]] += 1
    n_fin = 0
    for i in range(n):
        c = comm[i]
        frames_acc[i] += c
        if c > 0:
            next_emit[i] = first[i] + gaps[i] * float(c)
            if any_finite != 0:
                remaining[i] -= float(c)
                if remaining[i] <= 0.0:
                    active[i] = 0
                    fin_idx[n_fin] = i
                    fin_t[n_fin] = first[i] + gaps[i] * (float(c) - 1.0)
                    n_fin += 1
        elif counts[i] > 0:
            next_emit[i] = first[i]
    return n_fin


def owed_repay(owed, next_emit, rates, until, nxt):
    """Repay the owed-bits lag ledger by advancing emission times.

    For each source whose next emission lies beyond the window
    (``next_emit > until``) the emission moves earlier by
    ``owed / rate`` seconds, floored at ``nxt`` (the caller passes
    ``np.nextafter(until, inf)``), and the ledger is debited by the
    bits actually moved.  Elementwise identical to the batched
    engine's vectorized repayment; entries with zero owed bits are
    bit-exact no-ops, so the call needs no emptiness gate.
    """
    n = owed.shape[0]
    for i in range(n):
        ne = next_emit[i]
        if ne > until:
            t = ne - owed[i] / rates[i]
            if t < nxt:
                t = nxt
            owed[i] -= (ne - t) * rates[i]
            next_emit[i] = t


# ---------------------------------------------------------------------------
# packet: window planning (Lindley service hull + drop / PAUSE detection)
# ---------------------------------------------------------------------------

def packet_plan(
    times, t_start, t_end, ssvc, L, B, q_sc,
    n_res, next_free, inflight, frozen_until, pause_rearm_at, pause_horizon,
    starts, completions, q_bits, out_d, out_i,
):
    """Plan one control window without mutating any state.

    Computes the no-drop Lindley service hull over ``n_res`` residual
    frames followed by the ``times`` arrivals, the occupancy seen by
    each new arrival, and detects drop-tail engagement (handing the
    window to :func:`packet_scalar`) or a PAUSE crossing (truncating the
    committed prefix).

    ``out_i = [needs_scalar, m_eff, total_eff]``;
    ``out_d = [pause_at (nan: none), t_commit, new_pause_rearm_at]``.
    """
    m = times.shape[0]
    total = n_res + m
    c0 = next_free if inflight != 0 else t_start
    if frozen_until > c0:
        c0 = frozen_until

    hull = _NEG_INF
    for i in range(total):
        a_i = t_start if i < n_res else times[i - n_res]
        term = a_i - ssvc * float(i)
        if term > hull:
            hull = term
        base = c0 if c0 > hull else hull
        comp = ssvc * float(i + 1) + base
        completions[i] = comp
        starts[i] = comp - ssvc

    needs_scalar = 0
    p = 0
    for j in range(m):
        t_j = times[j]
        g = n_res + j
        while p < total and starts[p] <= t_j:
            p += 1
        sb = p if p < g else g
        q = L * float((g + 1) - sb)
        q_bits[j] = q
        if q > B:
            needs_scalar = 1
            break

    pause_at = math.nan
    m_eff = m
    t_commit = t_end
    new_rearm = pause_rearm_at
    if needs_scalar == 0 and q_sc == q_sc:  # q_sc is not NaN
        for j in range(m):
            if q_bits[j] > q_sc and times[j] >= pause_rearm_at:
                pause_at = times[j]
                new_rearm = pause_at  # + duration, applied by the wrapper
                limit = pause_at + pause_horizon
                if t_end < limit:
                    limit = t_end
                # searchsorted(times, limit, side="right")
                lo, hi = 0, m
                while lo < hi:
                    mid = (lo + hi) >> 1
                    if times[mid] <= limit:
                        lo = mid + 1
                    else:
                        hi = mid
                m_eff = lo if lo > j + 1 else j + 1
                t_commit = limit
                break

    out_i[0] = needs_scalar
    out_i[1] = m_eff
    out_i[2] = n_res + m_eff
    out_d[0] = pause_at
    out_d[1] = t_commit
    out_d[2] = new_rearm


# ---------------------------------------------------------------------------
# packet: window commit (sampling, sigma, BCN emission, service accounting)
# ---------------------------------------------------------------------------

def packet_commit(
    m_eff, n_res, times, srcs, assoc, q_bits, starts, completions,
    t_start, t_commit, prev_inflight, prev_next_free,
    uniforms, use_rng, pm, interval, since, q_prev,
    q0, w, pos_only, req_assoc, sigma_unit, full_scale,
    msg_t, msg_src, msg_sigma, msg_qoff, msg_dq, msg_fb,
    samp_t, samp_sigma, out_d, out_i,
):
    """Execute the no-drop window planned by :func:`packet_plan`.

    ``uniforms`` holds ``m_eff`` pre-drawn Bernoulli uniforms when
    ``use_rng`` (the wrapper owns the numpy Generator so the stream is
    identical to the batched engine's); otherwise the deterministic
    counter sampler is replicated.  ``sigma_unit`` is NaN for raw-sigma
    feedback.  Outputs mirror :class:`BatchedWindow`.

    ``out_i = [n_msg, n_samp, neg, pos, delivered, n_started, backlog,
    inflight, since]``; ``out_d = [next_free, q_at_last_sample]``.
    """
    total_eff = n_res + m_eff
    n_msg = 0
    n_samp = 0
    neg = 0
    pos = 0
    prev = q_prev
    for j in range(m_eff):
        if use_rng != 0:
            sampled = uniforms[j] < pm
        else:
            sampled = (since + (j + 1)) % interval == 0
        if not sampled:
            continue
        qs = q_bits[j]
        dq = qs - prev
        sigma = (q0 - qs) - w * dq
        prev = qs
        samp_t[n_samp] = times[j]
        samp_sigma[n_samp] = sigma
        n_samp += 1
        negative = sigma < 0.0
        positive = (
            sigma > 0.0
            and (qs < q0 or pos_only == 0)
            and (req_assoc == 0 or assoc[j] != 0)
        )
        if negative:
            neg += 1
        if positive:
            pos += 1
        if negative or positive:
            msg_t[n_msg] = times[j]
            msg_src[n_msg] = srcs[j]
            msg_sigma[n_msg] = sigma
            msg_qoff[n_msg] = q0 - qs
            msg_dq[n_msg] = dq
            if sigma_unit == sigma_unit:  # quantized FB
                fb = _round_half_even(sigma / sigma_unit)
                if fb < -full_scale:
                    fb = -full_scale
                elif fb > full_scale - 1.0:
                    fb = full_scale - 1.0
                msg_fb[n_msg] = fb
            else:
                msg_fb[n_msg] = sigma
            n_msg += 1
    if use_rng == 0:
        since = (since + m_eff) % interval

    # service accounting over the committed prefix
    delivered = 0
    lo, hi = 0, total_eff
    while lo < hi:
        mid = (lo + hi) >> 1
        if completions[mid] <= t_commit:
            lo = mid + 1
        else:
            hi = mid
    delivered = lo
    if (prev_inflight != 0 and t_start < prev_next_free
            and prev_next_free <= t_commit):
        delivered += 1
    lo, hi = 0, total_eff
    while lo < hi:
        mid = (lo + hi) >> 1
        if starts[mid] <= t_commit:
            lo = mid + 1
        else:
            hi = mid
    n_started = lo

    next_free = prev_next_free
    inflight = prev_inflight
    if n_started:
        next_free = completions[n_started - 1]
        inflight = 1 if next_free > t_commit else 0
    elif prev_inflight != 0 and prev_next_free <= t_commit:
        inflight = 0

    out_i[0] = n_msg
    out_i[1] = n_samp
    out_i[2] = neg
    out_i[3] = pos
    out_i[4] = delivered
    out_i[5] = n_started
    out_i[6] = total_eff - n_started
    out_i[7] = inflight
    out_i[8] = since
    out_d[0] = next_free
    out_d[1] = prev
    return n_msg


def _round_half_even(v):
    """``np.round`` / C ``rint`` semantics (ties to even)."""
    r = math.floor(v)
    diff = v - r
    if diff > 0.5:
        r += 1.0
    elif diff == 0.5 and math.fmod(r, 2.0) != 0.0:
        r += 1.0
    return r


# ---------------------------------------------------------------------------
# packet: exact per-frame fallback (drop-tail windows)
# ---------------------------------------------------------------------------

def packet_scalar(
    times, srcs, assoc, uniforms, use_rng, pm, interval, since,
    t_start, t_end, ssvc, L, B, q_sc, q0, w, pos_only, req_assoc,
    sigma_unit, full_scale, backlog, next_free0, inflight, frozen_until,
    pause_rearm_at, pause_duration, pause_horizon, q_prev,
    msg_t, msg_src, msg_sigma, msg_qoff, msg_dq, msg_fb,
    samp_t, samp_sigma, drop_t, drop_src, acc_arrivals, starts_out,
    pause_ts, out_d, out_i,
):
    """Reference-faithful per-frame window loop (drop-tail engaged).

    A line-for-line port of
    :meth:`repro.simulation.switch.BatchedSwitchKernel._process_scalar`.
    ``uniforms`` must hold one pre-drawn uniform per arrival; the
    wrapper rewinds its Generator to the ``committed`` count afterwards
    so the consumed stream matches the batched engine's per-frame
    draws exactly.

    ``out_i = [committed, n_msg, n_samp, n_drop, delivered, backlog,
    inflight, since, n_starts, n_acc, neg, pos, any_started, n_pause]``;
    ``out_d = [pause_at, t_commit, next_free, q_at_last_sample,
    pause_rearm_at]``; ``pause_ts[:n_pause]`` records every PAUSE
    firing (multiple per window when the duration is shorter than the
    commit horizon).
    """
    m = times.shape[0]
    prev_inflight = inflight
    prev_next_free = next_free0
    next_free = next_free0 if inflight != 0 else _NEG_INF
    if t_start > next_free:
        next_free = t_start
    if frozen_until > next_free:
        next_free = frozen_until
    any_started = 0

    n_acc = 0
    for _ in range(backlog):
        acc_arrivals[n_acc] = t_start
        n_acc += 1
    n_starts = 0
    n_msg = 0
    n_samp = 0
    n_drop = 0
    neg = 0
    pos = 0
    accepted_new = 0
    n_pause = 0
    pause_at = math.nan
    pause_limit = math.inf
    t_commit = t_end
    committed = 0
    q_last = q_prev

    for j in range(m):
        a = times[j]
        if a > pause_limit:
            break
        while backlog > 0 and next_free < a:
            starts_out[n_starts] = next_free
            n_starts += 1
            next_free += ssvc
            backlog -= 1
            any_started = 1
        if use_rng != 0:
            sampled = uniforms[j] < pm
        else:
            since += 1
            sampled = since >= interval
            if sampled:
                since = 0
        occ = backlog * L
        accepted = occ + L <= B
        if accepted:
            accepted_new += 1
            acc_arrivals[n_acc] = a
            n_acc += 1
            if backlog == 0 and next_free <= a:
                starts_out[n_starts] = a
                n_starts += 1
                next_free = a + ssvc
                any_started = 1
            else:
                backlog += 1
            q_now = occ + L
        else:
            n_drop += 1
            drop_t[n_drop - 1] = a
            drop_src[n_drop - 1] = srcs[j]
            q_now = occ
        if sampled:
            dq = q_now - q_last
            q_last = q_now
            sigma = (q0 - q_now) - w * dq
            samp_t[n_samp] = a
            samp_sigma[n_samp] = sigma
            n_samp += 1
            emit = 0
            if sigma < 0.0:
                neg += 1
                emit = 1
            elif (
                sigma > 0.0
                and (q_now < q0 or pos_only == 0)
                and (req_assoc == 0 or assoc[j] != 0)
            ):
                pos += 1
                emit = 1
            if emit != 0:
                msg_t[n_msg] = a
                msg_src[n_msg] = srcs[j]
                msg_sigma[n_msg] = sigma
                msg_qoff[n_msg] = q0 - q_now
                msg_dq[n_msg] = dq
                if sigma_unit == sigma_unit:
                    fb = _round_half_even(sigma / sigma_unit)
                    if fb < -full_scale:
                        fb = -full_scale
                    elif fb > full_scale - 1.0:
                        fb = full_scale - 1.0
                    msg_fb[n_msg] = fb
                else:
                    msg_fb[n_msg] = sigma
                n_msg += 1
        committed += 1
        if q_sc == q_sc and q_now > q_sc and a >= pause_rearm_at:
            pause_at = a
            pause_rearm_at = a + pause_duration
            pause_ts[n_pause] = a
            n_pause += 1
            pause_limit = a + pause_horizon
            if t_end < pause_limit:
                pause_limit = t_end
            t_commit = pause_limit
    while backlog > 0 and next_free <= t_commit:
        starts_out[n_starts] = next_free
        n_starts += 1
        next_free += ssvc
        backlog -= 1
        any_started = 1

    delivered = 0
    for i in range(n_starts):
        if starts_out[i] + ssvc <= t_commit:
            delivered += 1
        else:
            break
    if (prev_inflight != 0 and t_start < prev_next_free
            and prev_next_free <= t_commit):
        delivered += 1

    out_next_free = next_free0
    out_inflight = prev_inflight
    if any_started != 0:
        out_next_free = next_free
        out_inflight = 1 if next_free > t_commit else 0
    elif prev_inflight != 0 and prev_next_free <= t_commit:
        out_inflight = 0

    out_i[0] = committed
    out_i[1] = n_msg
    out_i[2] = n_samp
    out_i[3] = n_drop
    out_i[4] = delivered
    out_i[5] = backlog
    out_i[6] = out_inflight
    out_i[7] = since
    out_i[8] = n_starts
    out_i[9] = n_acc
    out_i[10] = neg
    out_i[11] = pos
    out_i[12] = any_started
    out_i[13] = n_pause
    out_d[0] = pause_at
    out_d[1] = t_commit
    out_d[2] = out_next_free
    out_d[3] = q_last
    out_d[4] = pause_rearm_at


# ---------------------------------------------------------------------------
# packet: boundary delivery of the window's BCN messages
# ---------------------------------------------------------------------------

def apply_messages(
    msg_t, msg_src, msg_fb, msg_sigma,
    mode, gi, gd, ru, max_dt, d, t_commit,
    rate, last_update, assoc8, updates, min_rate, line_rate, owed, out_d,
):
    """Apply one window's BCN messages to the per-source regulator arrays.

    A port of :meth:`repro.simulation.source.RateRegulator.apply` over
    struct-of-array state (``mode``: 0 message, 1 fluid-euler, 2
    fluid-exact; ``last_update`` NaN means "never updated"; ``max_dt``
    < 0 disables the dt cap).  ``owed`` accumulates the lag-compensation
    ledger exactly as the batched orchestrator does, and
    ``out_d[0]`` carries the running ``total_rate`` (updated with the
    same per-message ``+=`` order as the batched engine).
    """
    n = msg_t.shape[0]
    total_rate = out_d[0]
    for k in range(n):
        i = int(msg_src[k])
        now = msg_t[k] + d
        r0 = rate[i]
        r = r0
        if mode == 0:
            fb = msg_fb[k]
            if fb > 0.0:
                r = r + gi * ru * fb
            elif fb < 0.0:
                factor = 1.0 + gd * fb
                if factor < 0.0:
                    factor = 0.0
                r = r * factor
        else:
            sigma = msg_sigma[k]
            lu = last_update[i]
            dt = 0.0 if lu != lu else now - lu
            if max_dt >= 0.0 and dt > max_dt:
                dt = max_dt
            last_update[i] = now
            if sigma > 0.0:
                r = r + gi * ru * sigma * dt
            elif sigma < 0.0:
                if mode == 2:
                    r = r * math.exp(gd * sigma * dt)
                else:
                    factor = 1.0 + gd * sigma * dt
                    if factor < 0.0:
                        factor = 0.0
                    r = r * factor
        if r < min_rate[i]:
            r = min_rate[i]
        if r > line_rate[i]:
            r = line_rate[i]
        rate[i] = r
        updates[i] += 1
        fb_sign = msg_fb[k] if mode == 0 else msg_sigma[k]
        if fb_sign < 0.0:
            assoc8[i] = 1
        elif r >= line_rate[i]:
            assoc8[i] = 0
        if r != r0:
            delta = r - r0
            lag = t_commit - now
            if lag < 0.0:
                lag = 0.0
            owed[i] += delta * lag
            total_rate += delta
    out_d[0] = total_rate


# ---------------------------------------------------------------------------
# fluid: per-row switched RK4 with cubic-Hermite event refinement
# ---------------------------------------------------------------------------

def _fluid_refine(
    x0, y0, dec, h, x1, y1, alpha, beta, gamma,
    a, b, cap, k, linear_dec,
):
    """Scalar :func:`repro.fluid.batch._refine_event` (one row)."""
    s0 = x0 + k * y0
    coef0 = (b * cap if linear_dec != 0 else b * (y0 + cap)) if dec else a
    f0x = y0
    f0y = -coef0 * s0
    s1 = x1 + k * y1
    coef1 = (b * cap if linear_dec != 0 else b * (y1 + cap)) if dec else a
    f1x = y1
    f1y = -coef1 * s1
    u0 = alpha * x0 + beta * y0 + gamma
    u1 = alpha * x1 + beta * y1 + gamma
    d0 = h * (alpha * f0x + beta * f0y)
    d1 = h * (alpha * f1x + beta * f1y)
    c0 = u0
    c1 = d0
    c2 = 3.0 * (u1 - u0) - 2.0 * d0 - d1
    c3 = 2.0 * (u0 - u1) + d0 + d1
    lo = 0.0
    hi = 1.0
    g_lo = u0
    b2 = 2.0 * c2
    b3 = 3.0 * c3
    denom = u0 - u1
    theta = math.nan if denom == 0.0 else u0 / denom
    if not math.isfinite(theta):
        theta = 0.5
    elif theta < 0.0:
        theta = 0.0
    elif theta > 1.0:
        theta = 1.0
    for _ in range(16):
        g = ((c3 * theta + c2) * theta + c1) * theta + c0
        if g_lo * g > 0.0:
            lo = theta
            g_lo = g
        else:
            hi = theta
        slope = (b3 * theta + b2) * theta + c1
        if slope != 0.0:
            newton = theta - g / slope
        else:
            newton = math.inf
        if newton > lo and newton < hi:
            theta = newton
        else:
            theta = 0.5 * (lo + hi)
    t2 = theta * theta
    om = 1.0 - theta
    h00 = (1.0 + 2.0 * theta) * om * om
    h10 = theta * om * om
    h01 = t2 * (3.0 - 2.0 * theta)
    h11 = t2 * (theta - 1.0)
    xt = h00 * x0 + h10 * (h * f0x) + h01 * x1 + h11 * (h * f1x)
    yt = h00 * y0 + h10 * (h * f0y) + h01 * y1 + h11 * (h * f1y)
    return theta, xt, yt


def fluid_rows(
    x0, y0, t_grid, a, b, cap, k, q0, x_full, x_empty,
    linear_dec, physical, max_switches, conv_rtol, t_max,
    xs, ys, reason, switches, t_end, x_end, y_end,
    ev_cap, n_events, ev_t, ev_kind, ev_x, ev_y, out_i,
):
    """Integrate every row of the switched fluid ensemble independently.

    A per-row port of :func:`repro.fluid.batch.simulate_fluid_batch`'s
    stepping loop (the rows of the numpy implementation are fully
    independent, so a scalar sweep commits the same float64 operations
    in the same order).  Events are recorded per row into
    ``ev_* [row*ev_cap + j]`` with kind codes 0 switch / 1 extremum /
    2 buffer_full / 3 buffer_empty.

    ``out_i = [last_grid_index, event_overflow]``.
    """
    m = x0.shape[0]
    n_steps = t_grid.shape[0] - 1
    last = 0
    overflow = 0

    for r in range(m):
        x = x0[r]
        y = y0[r]
        s = x + k * y
        dec = (s > 0.0) or (s == 0.0 and y > 0.0)
        alive = 1
        rsn = 0
        pinned = 0
        pin_t = 0.0
        pin_y = 0.0
        unpin_t = math.inf
        sw_count = 0
        te = 0.0
        xe_final = x
        ye_final = y
        n_ev = 0
        dead_step = n_steps

        conv = (abs(x) / q0 <= conv_rtol) and (abs(y) / cap <= conv_rtol)
        if conv:
            alive = 0
            rsn = 1
            dead_step = 0
        elif physical != 0 and x <= x_empty and y < 0.0:
            # warm-up: start pinned at the empty buffer
            if n_ev < ev_cap:
                base = r * ev_cap + n_ev
                ev_t[base] = 0.0
                ev_kind[base] = 3
                ev_x[base] = x_empty
                ev_y[base] = y
                n_ev += 1
            else:
                overflow = 1
            pinned = 2
            pin_t = 0.0
            pin_y = y
            duration = -y / (a * q0)
            unpin_t = pin_t + duration
            if t_max < unpin_t:
                unpin_t = t_max
            x = x_empty

        xs[r] = x
        ys[r] = y

        for i in range(n_steps):
            t0 = t_grid[i]
            t1 = t_grid[i + 1]
            if alive != 0 and pinned == 0:
                # ---- advance(t0, t1 - t0), iteratively -------------------
                h = t1 - t0
                while True:
                    xx0 = x
                    yy0 = y
                    rsign = 1.0 if dec else -1.0
                    # RK4 with the frozen region mask
                    s_ = xx0 + k * yy0
                    coef = (b * cap if linear_dec != 0
                            else b * (yy0 + cap)) if dec else a
                    k1x = yy0
                    k1y = -coef * s_
                    ax = xx0 + 0.5 * h * k1x
                    ay = yy0 + 0.5 * h * k1y
                    s_ = ax + k * ay
                    coef = (b * cap if linear_dec != 0
                            else b * (ay + cap)) if dec else a
                    k2x = ay
                    k2y = -coef * s_
                    ax = xx0 + 0.5 * h * k2x
                    ay = yy0 + 0.5 * h * k2y
                    s_ = ax + k * ay
                    coef = (b * cap if linear_dec != 0
                            else b * (ay + cap)) if dec else a
                    k3x = ay
                    k3y = -coef * s_
                    ax = xx0 + h * k3x
                    ay = yy0 + h * k3y
                    s_ = ax + k * ay
                    coef = (b * cap if linear_dec != 0
                            else b * (ay + cap)) if dec else a
                    k4x = ay
                    k4y = -coef * s_
                    sixth = h / 6.0
                    x1 = xx0 + sixth * (k1x + 2.0 * (k2x + k3x) + k4x)
                    y1 = yy0 + sixth * (k1y + 2.0 * (k2y + k3y) + k4y)

                    s1 = x1 + k * y1
                    line_tol = 1e-12 * (abs(x1) + k * abs(y1) + q0)
                    theta = 1.0
                    xe = x1
                    ye = y1
                    term = 0
                    if s1 * rsign < -line_tol:
                        th, xt, yt = _fluid_refine(
                            xx0, yy0, dec, h, x1, y1, 1.0, k, 0.0,
                            a, b, cap, k, linear_dec,
                        )
                        if th < theta:
                            theta = th
                            xe = xt
                            ye = yt
                            term = 1
                    if physical != 0:
                        if xx0 < x_full and x1 >= x_full:
                            th, xt, yt = _fluid_refine(
                                xx0, yy0, dec, h, x1, y1, 1.0, 0.0, -x_full,
                                a, b, cap, k, linear_dec,
                            )
                            if th < theta:
                                theta = th
                                xe = xt
                                ye = yt
                                term = 2
                        if xx0 > x_empty and x1 <= x_empty:
                            th, xt, yt = _fluid_refine(
                                xx0, yy0, dec, h, x1, y1, 1.0, 0.0, -x_empty,
                                a, b, cap, k, linear_dec,
                            )
                            if th < theta:
                                theta = th
                                xe = xt
                                ye = yt
                                term = 3
                    t_ev = t0 + theta * h

                    # non-terminal events on the kept part of the step
                    if yy0 * ye < 0.0:
                        hk = h * theta
                        th, xt, yt = _fluid_refine(
                            xx0, yy0, dec, hk, xe, ye, 0.0, 1.0, 0.0,
                            a, b, cap, k, linear_dec,
                        )
                        if n_ev < ev_cap:
                            base = r * ev_cap + n_ev
                            ev_t[base] = t0 + th * hk
                            ev_kind[base] = 1
                            ev_x[base] = xt
                            ev_y[base] = yt
                            n_ev += 1
                        else:
                            overflow = 1
                    if physical == 0:
                        if xx0 < x_full and xe >= x_full:
                            hk = h * theta
                            th, xt, yt = _fluid_refine(
                                xx0, yy0, dec, hk, xe, ye, 1.0, 0.0, -x_full,
                                a, b, cap, k, linear_dec,
                            )
                            if n_ev < ev_cap:
                                base = r * ev_cap + n_ev
                                ev_t[base] = t0 + th * hk
                                ev_kind[base] = 2
                                ev_x[base] = xt
                                ev_y[base] = yt
                                n_ev += 1
                            else:
                                overflow = 1
                        if xx0 > x_empty and xe <= x_empty:
                            hk = h * theta
                            th, xt, yt = _fluid_refine(
                                xx0, yy0, dec, hk, xe, ye, 1.0, 0.0, -x_empty,
                                a, b, cap, k, linear_dec,
                            )
                            if n_ev < ev_cap:
                                base = r * ev_cap + n_ev
                                ev_t[base] = t0 + th * hk
                                ev_kind[base] = 3
                                ev_x[base] = xt
                                ev_y[base] = yt
                                n_ev += 1
                            else:
                                overflow = 1

                    if term == 0:
                        x = xe
                        y = ye
                        break
                    if term == 1:
                        if n_ev < ev_cap:
                            base = r * ev_cap + n_ev
                            ev_t[base] = t_ev
                            ev_kind[base] = 0
                            ev_x[base] = xe
                            ev_y[base] = ye
                            n_ev += 1
                        else:
                            overflow = 1
                        sw_count += 1
                        over = sw_count > max_switches
                        conv = (not over) and (
                            abs(xe) / q0 <= conv_rtol
                            and abs(ye) / cap <= conv_rtol
                        )
                        if over or conv:
                            alive = 0
                            rsn = 3 if over else 1
                            te = t_ev
                            xe_final = xe
                            ye_final = ye
                            x = xe
                            y = ye
                            dead_step = i + 1
                            break
                        dec = ye > 0.0
                        x = xe
                        y = ye
                        t0 = t_ev
                        h = h * (1.0 - theta)
                        continue
                    # term 2/3: buffer pinning (physical mode)
                    kind_code = 2 if term == 2 else 3
                    if n_ev < ev_cap:
                        base = r * ev_cap + n_ev
                        ev_t[base] = t_ev
                        ev_kind[base] = kind_code
                        ev_x[base] = x_full if term == 2 else x_empty
                        ev_y[base] = ye
                        n_ev += 1
                    else:
                        overflow = 1
                    pinned = 1 if term == 2 else 2
                    pin_t = t_ev
                    pin_y = ye
                    if term == 2:
                        duration = math.log((ye + cap) / cap) / (b * x_full)
                    else:
                        duration = -ye / (a * q0)
                    unpin_t = pin_t + duration
                    if t_max < unpin_t:
                        unpin_t = t_max
                    x = x_full if term == 2 else x_empty
                    y = ye
                    t_step_end = t0 + h
                    if unpin_t <= t_step_end:
                        t_up = unpin_t
                        x_pin = x_full if term == 2 else x_empty
                        x = x_pin
                        y = 0.0
                        pinned = 0
                        unpin_t = math.inf
                        dec = x_pin > 0.0
                        t0 = t_up
                        h = t_step_end - t_up
                        continue
                    break
                # ---- end advance ----------------------------------------
            if (physical != 0 and alive != 0 and pinned != 0
                    and unpin_t <= t1 and unpin_t < t_max):
                x_pin = x_full if pinned == 1 else x_empty
                t_up = unpin_t
                x = x_pin
                y = 0.0
                pinned = 0
                unpin_t = math.inf
                dec = x_pin > 0.0
                # advance(t_up, t1 - t_up) — same loop as above
                h = t1 - t_up
                t0b = t_up
                while True:
                    xx0 = x
                    yy0 = y
                    rsign = 1.0 if dec else -1.0
                    s_ = xx0 + k * yy0
                    coef = (b * cap if linear_dec != 0
                            else b * (yy0 + cap)) if dec else a
                    k1x = yy0
                    k1y = -coef * s_
                    ax = xx0 + 0.5 * h * k1x
                    ay = yy0 + 0.5 * h * k1y
                    s_ = ax + k * ay
                    coef = (b * cap if linear_dec != 0
                            else b * (ay + cap)) if dec else a
                    k2x = ay
                    k2y = -coef * s_
                    ax = xx0 + 0.5 * h * k2x
                    ay = yy0 + 0.5 * h * k2y
                    s_ = ax + k * ay
                    coef = (b * cap if linear_dec != 0
                            else b * (ay + cap)) if dec else a
                    k3x = ay
                    k3y = -coef * s_
                    ax = xx0 + h * k3x
                    ay = yy0 + h * k3y
                    s_ = ax + k * ay
                    coef = (b * cap if linear_dec != 0
                            else b * (ay + cap)) if dec else a
                    k4x = ay
                    k4y = -coef * s_
                    sixth = h / 6.0
                    x1 = xx0 + sixth * (k1x + 2.0 * (k2x + k3x) + k4x)
                    y1 = yy0 + sixth * (k1y + 2.0 * (k2y + k3y) + k4y)
                    s1 = x1 + k * y1
                    line_tol = 1e-12 * (abs(x1) + k * abs(y1) + q0)
                    theta = 1.0
                    xe = x1
                    ye = y1
                    term = 0
                    if s1 * rsign < -line_tol:
                        th, xt, yt = _fluid_refine(
                            xx0, yy0, dec, h, x1, y1, 1.0, k, 0.0,
                            a, b, cap, k, linear_dec,
                        )
                        if th < theta:
                            theta = th
                            xe = xt
                            ye = yt
                            term = 1
                    if physical != 0:
                        if xx0 < x_full and x1 >= x_full:
                            th, xt, yt = _fluid_refine(
                                xx0, yy0, dec, h, x1, y1, 1.0, 0.0, -x_full,
                                a, b, cap, k, linear_dec,
                            )
                            if th < theta:
                                theta = th
                                xe = xt
                                ye = yt
                                term = 2
                        if xx0 > x_empty and x1 <= x_empty:
                            th, xt, yt = _fluid_refine(
                                xx0, yy0, dec, h, x1, y1, 1.0, 0.0, -x_empty,
                                a, b, cap, k, linear_dec,
                            )
                            if th < theta:
                                theta = th
                                xe = xt
                                ye = yt
                                term = 3
                    t_ev = t0b + theta * h
                    if yy0 * ye < 0.0:
                        hk = h * theta
                        th, xt, yt = _fluid_refine(
                            xx0, yy0, dec, hk, xe, ye, 0.0, 1.0, 0.0,
                            a, b, cap, k, linear_dec,
                        )
                        if n_ev < ev_cap:
                            base = r * ev_cap + n_ev
                            ev_t[base] = t0b + th * hk
                            ev_kind[base] = 1
                            ev_x[base] = xt
                            ev_y[base] = yt
                            n_ev += 1
                        else:
                            overflow = 1
                    if term == 0:
                        x = xe
                        y = ye
                        break
                    if term == 1:
                        if n_ev < ev_cap:
                            base = r * ev_cap + n_ev
                            ev_t[base] = t_ev
                            ev_kind[base] = 0
                            ev_x[base] = xe
                            ev_y[base] = ye
                            n_ev += 1
                        else:
                            overflow = 1
                        sw_count += 1
                        over = sw_count > max_switches
                        conv = (not over) and (
                            abs(xe) / q0 <= conv_rtol
                            and abs(ye) / cap <= conv_rtol
                        )
                        if over or conv:
                            alive = 0
                            rsn = 3 if over else 1
                            te = t_ev
                            xe_final = xe
                            ye_final = ye
                            x = xe
                            y = ye
                            dead_step = i + 1
                            break
                        dec = ye > 0.0
                        x = xe
                        y = ye
                        t0b = t_ev
                        h = h * (1.0 - theta)
                        continue
                    kind_code = 2 if term == 2 else 3
                    if n_ev < ev_cap:
                        base = r * ev_cap + n_ev
                        ev_t[base] = t_ev
                        ev_kind[base] = kind_code
                        ev_x[base] = x_full if term == 2 else x_empty
                        ev_y[base] = ye
                        n_ev += 1
                    else:
                        overflow = 1
                    pinned = 1 if term == 2 else 2
                    pin_t = t_ev
                    pin_y = ye
                    if term == 2:
                        duration = math.log((ye + cap) / cap) / (b * x_full)
                    else:
                        duration = -ye / (a * q0)
                    unpin_t = pin_t + duration
                    if t_max < unpin_t:
                        unpin_t = t_max
                    x = x_full if term == 2 else x_empty
                    y = ye
                    t_step_end = t0b + h
                    if unpin_t <= t_step_end:
                        t_up2 = unpin_t
                        x_pin = x_full if term == 2 else x_empty
                        x = x_pin
                        y = 0.0
                        pinned = 0
                        unpin_t = math.inf
                        dec = x_pin > 0.0
                        t0b = t_up2
                        h = t_step_end - t_up2
                        continue
                    break
            if physical != 0 and alive != 0 and pinned != 0:
                dt = t1 - pin_t
                if pinned == 1:
                    x = x_full
                    y = (pin_y + cap) * math.exp(-b * x_full * dt) - cap
                else:
                    x = x_empty
                    y = pin_y + a * q0 * dt
            xs[(i + 1) * m + r] = x
            ys[(i + 1) * m + r] = y

        if alive != 0:
            conv = (
                pinned == 0
                and abs(x) / q0 <= conv_rtol
                and abs(y) / cap <= conv_rtol
            )
            rsn = 1 if conv else 2
            te = t_max
            xe_final = x
            ye_final = y
            dead_step = n_steps
        reason[r] = rsn
        switches[r] = sw_count
        t_end[r] = te
        x_end[r] = xe_final
        y_end[r] = ye_final
        n_events[r] = n_ev
        # hold the frozen state on the remaining samples (rows that froze
        # early repeat their end state, as the numpy kernel does)
        for i2 in range(dead_step, n_steps):
            xs[(i2 + 1) * m + r] = x
            ys[(i2 + 1) * m + r] = y
        if dead_step > last:
            last = dead_step

    if last < 1:
        last = 1  # the numpy kernel always commits at least one grid step
    out_i[0] = last
    out_i[1] = overflow


# ---------------------------------------------------------------------------
# calendar: slot-directory scan
# ---------------------------------------------------------------------------

def next_nonempty(counts, cursor):
    """First slot index ``>= cursor`` with a pending event, or -1."""
    n = counts.shape[0]
    for i in range(cursor, n):
        if counts[i] > 0:
            return i
    return -1

"""Compiled batch fluid integrator (``fluid_method="compiled"``).

:func:`simulate_fluid_batch_compiled` mirrors
:func:`repro.fluid.batch.simulate_fluid_batch` — same signature, same
:class:`~repro.fluid.batch.BatchFluidResult` — but runs the per-row
switched RK4 + cubic-Hermite event refinement as one compiled kernel
call instead of a python stepping loop over numpy temporaries.  In
float64 the kernel commits the same floating-point operations in the
same order as the numpy implementation, so trajectories match
bit-for-bit in the ``nonlinear``/``linearized`` modes (``physical``
mode's pinned closed forms call ``exp``/``log``, identical through
libm but allowed a ~1e-12 relative tolerance against numpy's SIMD
vectorized transcendentals).

``precision="float32"`` halves the state memory for ensemble work —
appropriate for statistics over many trajectories (portraits, sweeps,
stability scans) where per-sample error ~1e-7 of the natural scales is
acceptable; event *times* remain float64.  Without a compiled backend
this module transparently delegates to the numpy implementation
(computing in float64 and casting, so results are deterministic across
tiers).
"""

from __future__ import annotations

import math
import time

import numpy as np

from ._backend import KernelBackend, consume_warmup_span, get_backend

__all__ = ["simulate_fluid_batch_compiled"]

#: event kind codes emitted by the kernel, in ``FluidEvent.kind`` terms
_KINDS = ("switch", "extremum", "buffer_full", "buffer_empty")


def simulate_fluid_batch_compiled(
    params,
    x0,
    y0=0.0,
    *,
    t_max: float = 10.0,
    mode: str = "nonlinear",
    max_switches: int = 500,
    dt: float | None = None,
    dt_scale: float = 0.02,
    convergence_rtol: float | None = None,
    obs=None,
    precision: str = "float64",
    backend: KernelBackend | None = None,
):
    """Compiled drop-in for :func:`repro.fluid.batch.simulate_fluid_batch`."""
    from ..fluid import batch as _batch

    if precision not in ("float64", "float32"):
        raise ValueError(f"unknown precision {precision!r}")
    if convergence_rtol is None:
        convergence_rtol = _batch._CONVERGENCE_RTOL
    be = backend if backend is not None else get_backend()
    if not be.compiled:
        return _batch.simulate_fluid_batch(
            params, x0, y0, t_max=t_max, mode=mode,
            max_switches=max_switches, dt=dt, dt_scale=dt_scale,
            convergence_rtol=convergence_rtol, obs=obs,
            fluid_method="numpy", precision=precision,
        )

    p = _batch.as_normalized(params)
    if dt is None:
        dt = _batch.default_time_step(p, dt_scale=dt_scale)
    n_steps = max(1, math.ceil(t_max / dt))
    if n_steps > _batch._MAX_STEPS:
        raise ValueError(
            f"t_max/dt = {n_steps} exceeds {_batch._MAX_STEPS} steps; "
            "pass a larger dt or a shorter horizon"
        )

    x0a = np.atleast_1d(np.asarray(x0, dtype=float))
    y0a = np.atleast_1d(np.asarray(y0, dtype=float))
    xb, yb = np.broadcast_arrays(x0a, y0a)
    real = np.float32 if precision == "float32" else np.float64
    xr = np.ascontiguousarray(xb, dtype=real)
    yr = np.ascontiguousarray(yb, dtype=real)
    m = xr.size

    t_grid = np.linspace(0.0, t_max, n_steps + 1)
    xs = np.zeros((n_steps + 1) * m, dtype=real)
    ys = np.zeros((n_steps + 1) * m, dtype=real)
    reason = np.zeros(m, dtype=np.int8)
    switches = np.zeros(m, dtype=np.int64)
    t_end = np.zeros(m)
    x_end = np.zeros(m)
    y_end = np.zeros(m)
    ev_cap = 8 * (max_switches + 8)
    n_events = np.zeros(m, dtype=np.int64)
    ev_t = np.zeros(m * ev_cap)
    ev_kind = np.zeros(m * ev_cap, dtype=np.int8)
    ev_x = np.zeros(m * ev_cap)
    ev_y = np.zeros(m * ev_cap)
    out_i = np.zeros(2, dtype=np.int64)

    started = time.perf_counter()  # repro-lint: disable=wall-clock -- kernel span timing
    be.fluid_rows(
        xr, yr, t_grid, p.a, p.b, p.capacity, p.k, p.q0,
        p.buffer_size - p.q0, -p.q0,
        1 if mode == "linearized" else 0,
        1 if mode == "physical" else 0,
        int(max_switches), float(convergence_rtol), float(t_max),
        xs, ys, reason, switches, t_end, x_end, y_end,
        ev_cap, n_events, ev_t, ev_kind, ev_x, ev_y, out_i,
    )
    kernel_seconds = time.perf_counter() - started  # repro-lint: disable=wall-clock -- kernel span timing

    if out_i[1]:
        # Pathological event density blew the preallocated buffers —
        # redo on the numpy path, which allocates dynamically.
        return _batch.simulate_fluid_batch(
            params, x0, y0, t_max=t_max, mode=mode,
            max_switches=max_switches, dt=dt, dt_scale=dt_scale,
            convergence_rtol=convergence_rtol, obs=obs,
            fluid_method="numpy", precision=precision,
        )

    last = int(out_i[0])
    xs = xs.reshape(n_steps + 1, m)
    ys = ys.reshape(n_steps + 1, m)

    events = []
    for r in range(m):
        base = r * ev_cap
        evs = [
            _batch.FluidEvent(
                time=float(ev_t[base + j]), kind=_KINDS[ev_kind[base + j]],
                x=float(ev_x[base + j]), y=float(ev_y[base + j]))
            for j in range(int(n_events[r]))
        ]
        evs.sort(key=lambda e: e.time)
        events.append(evs)

    if obs is not None and obs.enabled:
        consume_warmup_span(obs)
        obs.add_span("fluid.batch.kernel", kernel_seconds)
        t_used = t_grid[: last + 1]
        for row in range(m):
            live = t_used <= t_end[row]
            _batch.record_fluid_obs(
                obs, "fluid.compiled", p, events[row],
                bool(reason[row] == 1), float(t_end[row]),
                xs[: last + 1][live, row].astype(float), row=row)

    return _batch.BatchFluidResult(
        params=p,
        mode=mode,
        t=t_grid[: last + 1],
        x=xs[: last + 1],
        y=ys[: last + 1],
        events=events,
        converged=reason == 1,
        end_reason=[_batch._REASONS[r] for r in reason],
        switch_counts=switches,
        t_end=t_end,
        x_end=x_end,
        y_end=y_end,
        kernel_seconds=kernel_seconds,
    )

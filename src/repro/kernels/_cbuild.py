"""cffi build recipe for the C translation of :mod:`repro.kernels._scalar`.

The C source below is a line-for-line translation of the scalar kernel
bodies (same float64 operation order, same libm transcendentals), so
the float64 entry points are bit-identical to the python/numba bodies —
``tests/unit/test_kernels.py`` asserts exact equality.  The fluid
kernel is instantiated twice from one template (``double`` and
``float``) to provide the float32 ensemble mode.

Builds are out-of-line cffi API-mode extensions, keyed by a content
hash of the declarations + source, cached under
``src/repro/kernels/_build/`` (override with ``REPRO_KERNEL_BUILD_DIR``)
and loaded via :mod:`importlib`.  Compilation happens in a
per-process scratch directory and the finished extension is moved into
place with :func:`os.replace`, so concurrent workers (the runner's
process pool) race benignly: first finisher wins, everyone loads the
same file.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import sys
import sysconfig
import time
from pathlib import Path

__all__ = ["build_seconds", "load_cffi_kernels"]

#: Wall-clock seconds spent compiling + loading, for the warm-up span.
build_seconds: float = 0.0

CDEF = """
int64_t k_merge_trains(int64_t n_src, double *first, double *gaps,
    int64_t *counts, uint8_t *assoc, double d,
    double *out_t, int64_t *out_src, uint8_t *out_assoc);

int64_t k_pacing_plan(int64_t n, double *next_emit, double *paused,
    uint8_t *active, double *remaining, double *gaps, double until,
    double *first, int64_t *counts);

int64_t k_pacing_commit(int64_t n, int64_t m_committed, int64_t *srcs,
    double *first, double *gaps, int64_t *counts, int64_t any_finite,
    double *next_emit, double *remaining, uint8_t *active,
    int64_t *frames_acc, int64_t *comm, int64_t *fin_idx, double *fin_t);

void k_owed_repay(int64_t n, double *owed, double *next_emit,
    double *rates, double until, double nxt);

void k_packet_plan(int64_t m, double *times, double t_start, double t_end,
    double ssvc, double L, double B, double q_sc, int64_t n_res,
    double next_free, int64_t inflight, double frozen_until,
    double pause_rearm_at, double pause_horizon,
    double *starts, double *completions, double *q_bits,
    double *out_d, int64_t *out_i);

void k_packet_commit(int64_t m_eff, int64_t n_res, double *times,
    int64_t *srcs, uint8_t *assoc, double *q_bits, double *starts,
    double *completions, double t_start, double t_commit,
    int64_t prev_inflight, double prev_next_free, double *uniforms,
    int64_t use_rng, double pm, int64_t interval, int64_t since,
    double q_prev, double q0, double w, int64_t pos_only,
    int64_t req_assoc, double sigma_unit, double full_scale,
    double *msg_t, int64_t *msg_src, double *msg_sigma, double *msg_qoff,
    double *msg_dq, double *msg_fb, double *samp_t, double *samp_sigma,
    double *out_d, int64_t *out_i);

void k_packet_scalar(int64_t m, double *times, int64_t *srcs,
    uint8_t *assoc, double *uniforms, int64_t use_rng, double pm,
    int64_t interval, int64_t since, double t_start, double t_end,
    double ssvc, double L, double B, double q_sc, double q0, double w,
    int64_t pos_only, int64_t req_assoc, double sigma_unit,
    double full_scale, int64_t backlog, double next_free0,
    int64_t inflight, double frozen_until, double pause_rearm_at,
    double pause_duration, double pause_horizon, double q_prev,
    double *msg_t, int64_t *msg_src, double *msg_sigma, double *msg_qoff,
    double *msg_dq, double *msg_fb, double *samp_t, double *samp_sigma,
    double *drop_t, int64_t *drop_src, double *acc_arrivals,
    double *starts_out, double *pause_ts, double *out_d, int64_t *out_i);

void k_apply_messages(int64_t n, double *msg_t, int64_t *msg_src,
    double *msg_fb, double *msg_sigma, int64_t mode, double gi, double gd,
    double ru, double max_dt, double d, double t_commit,
    double *rate, double *last_update, uint8_t *assoc8, int64_t *updates,
    double *min_rate, double *line_rate, double *owed, double *out_d);

void k_fluid_f64(int64_t m, int64_t n_steps, double *t_grid,
    double *x0, double *y0, double a, double b, double cap, double kk,
    double q0, double x_full, double x_empty, int64_t linear_dec,
    int64_t physical, int64_t max_switches, double conv_rtol,
    double t_max, double *xs, double *ys, int8_t *reason,
    int64_t *switches, double *t_endv, double *x_endv, double *y_endv,
    int64_t ev_cap, int64_t *n_events, double *ev_t, int8_t *ev_kind,
    double *ev_x, double *ev_y, int64_t *out_i);

void k_fluid_f32(int64_t m, int64_t n_steps, double *t_grid,
    float *x0, float *y0, double a, double b, double cap, double kk,
    double q0, double x_full, double x_empty, int64_t linear_dec,
    int64_t physical, int64_t max_switches, double conv_rtol,
    double t_max, float *xs, float *ys, int8_t *reason,
    int64_t *switches, double *t_endv, double *x_endv, double *y_endv,
    int64_t ev_cap, int64_t *n_events, double *ev_t, int8_t *ev_kind,
    double *ev_x, double *ev_y, int64_t *out_i);

int64_t k_next_nonempty(int64_t *counts, int64_t cursor, int64_t n);
"""

_COMMON = r"""
#include <math.h>
#include <stdint.h>

/* np.round / python round(): ties to even (default FP rounding mode). */
static double round_half_even(double v) { return rint(v); }

static int64_t bisect_right(const double *arr, int64_t n, double v) {
    int64_t lo = 0, hi = n;
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        if (arr[mid] <= v) lo = mid + 1; else hi = mid;
    }
    return lo;
}

int64_t k_merge_trains(int64_t n_src, double *first, double *gaps,
    int64_t *counts, uint8_t *assoc, double d,
    double *out_t, int64_t *out_src, uint8_t *out_assoc)
{
    int64_t m = 0, i, size = 0, out;
    double hp_t[4096];
    int64_t hp_s[4096];
    int64_t emitted_stack[4096];
    double *ht = hp_t; int64_t *hs = hp_s, *emitted = emitted_stack;
    double *ht_heap = 0; int64_t *hs_heap = 0, *em_heap = 0;
    for (i = 0; i < n_src; i++) m += counts[i];
    if (m == 0) return 0;
    if (n_src > 4096) {
        ht_heap = (double *)malloc((size_t)n_src * sizeof(double));
        hs_heap = (int64_t *)malloc((size_t)n_src * sizeof(int64_t));
        em_heap = (int64_t *)malloc((size_t)n_src * sizeof(int64_t));
        ht = ht_heap; hs = hs_heap; emitted = em_heap;
    }
    for (i = 0; i < n_src; i++) {
        emitted[i] = 0;
        if (counts[i] > 0) {
            double t0 = first[i] + gaps[i] * 0.0 + d;
            int64_t j = size;
            ht[j] = t0; hs[j] = i; size++;
            while (j > 0) {
                int64_t parent = (j - 1) >> 1;
                if (ht[j] < ht[parent] ||
                    (ht[j] == ht[parent] && hs[j] < hs[parent])) {
                    double tt = ht[j]; ht[j] = ht[parent]; ht[parent] = tt;
                    int64_t ss = hs[j]; hs[j] = hs[parent]; hs[parent] = ss;
                    j = parent;
                } else break;
            }
        }
    }
    for (out = 0; out < m; out++) {
        double t = ht[0];
        int64_t src = hs[0], j = 0;
        out_t[out] = t;
        out_src[out] = src;
        out_assoc[out] = assoc[src];
        emitted[src]++;
        if (emitted[src] < counts[src]) {
            ht[0] = first[src] + gaps[src] * (double)emitted[src] + d;
            hs[0] = src;
        } else {
            size--;
            ht[0] = ht[size];
            hs[0] = hs[size];
        }
        for (;;) {
            int64_t left = 2 * j + 1, right, small;
            if (left >= size) break;
            right = left + 1;
            small = left;
            if (right < size && (ht[right] < ht[left] ||
                (ht[right] == ht[left] && hs[right] < hs[left]))) small = right;
            if (ht[small] < ht[j] ||
                (ht[small] == ht[j] && hs[small] < hs[j])) {
                double tt = ht[j]; ht[j] = ht[small]; ht[small] = tt;
                int64_t ss = hs[j]; hs[j] = hs[small]; hs[small] = ss;
                j = small;
            } else break;
        }
    }
    if (ht_heap) { free(ht_heap); free(hs_heap); free(em_heap); }
    return m;
}

int64_t k_pacing_plan(int64_t n, double *next_emit, double *paused,
    uint8_t *active, double *remaining, double *gaps, double until,
    double *first, int64_t *counts)
{
    int64_t i, total = 0;
    for (i = 0; i < n; i++) {
        double f = next_emit[i];
        int64_t c = 0;
        if (paused[i] > f) f = paused[i];
        first[i] = f;
        if (active[i] != 0 && f <= until) {
            double cf = floor((until - f) / gaps[i]) + 1.0;
            if (remaining[i] < cf) cf = remaining[i];
            c = (int64_t)cf;
        }
        counts[i] = c;
        total += c;
    }
    return total;
}

int64_t k_pacing_commit(int64_t n, int64_t m_committed, int64_t *srcs,
    double *first, double *gaps, int64_t *counts, int64_t any_finite,
    double *next_emit, double *remaining, uint8_t *active,
    int64_t *frames_acc, int64_t *comm, int64_t *fin_idx, double *fin_t)
{
    int64_t i, k, n_fin = 0;
    for (i = 0; i < n; i++) comm[i] = 0;
    for (k = 0; k < m_committed; k++) comm[srcs[k]]++;
    for (i = 0; i < n; i++) {
        int64_t c = comm[i];
        frames_acc[i] += c;
        if (c > 0) {
            next_emit[i] = first[i] + gaps[i] * (double)c;
            if (any_finite != 0) {
                remaining[i] -= (double)c;
                if (remaining[i] <= 0.0) {
                    active[i] = 0;
                    fin_idx[n_fin] = i;
                    fin_t[n_fin] = first[i] + gaps[i] * ((double)c - 1.0);
                    n_fin++;
                }
            }
        } else if (counts[i] > 0) {
            next_emit[i] = first[i];
        }
    }
    return n_fin;
}

void k_owed_repay(int64_t n, double *owed, double *next_emit,
    double *rates, double until, double nxt)
{
    int64_t i;
    for (i = 0; i < n; i++) {
        double ne = next_emit[i];
        if (ne > until) {
            double t = ne - owed[i] / rates[i];
            if (t < nxt) t = nxt;
            owed[i] -= (ne - t) * rates[i];
            next_emit[i] = t;
        }
    }
}

void k_packet_plan(int64_t m, double *times, double t_start, double t_end,
    double ssvc, double L, double B, double q_sc, int64_t n_res,
    double next_free, int64_t inflight, double frozen_until,
    double pause_rearm_at, double pause_horizon,
    double *starts, double *completions, double *q_bits,
    double *out_d, int64_t *out_i)
{
    int64_t total = n_res + m, i, j, p = 0;
    double c0 = inflight != 0 ? next_free : t_start;
    double hull = -INFINITY;
    double pause_at = NAN, t_commit = t_end, new_rearm = pause_rearm_at;
    int64_t needs_scalar = 0, m_eff = m;
    if (frozen_until > c0) c0 = frozen_until;

    for (i = 0; i < total; i++) {
        double a_i = i < n_res ? t_start : times[i - n_res];
        double term = a_i - ssvc * (double)i;
        double base;
        if (term > hull) hull = term;
        base = c0 > hull ? c0 : hull;
        completions[i] = ssvc * (double)(i + 1) + base;
        starts[i] = completions[i] - ssvc;
    }
    for (j = 0; j < m; j++) {
        double t_j = times[j];
        int64_t g = n_res + j, sb;
        double q;
        while (p < total && starts[p] <= t_j) p++;
        sb = p < g ? p : g;
        q = L * (double)((g + 1) - sb);
        q_bits[j] = q;
        if (q > B) { needs_scalar = 1; break; }
    }
    if (needs_scalar == 0 && q_sc == q_sc) {
        for (j = 0; j < m; j++) {
            if (q_bits[j] > q_sc && times[j] >= pause_rearm_at) {
                double limit;
                int64_t lo;
                pause_at = times[j];
                new_rearm = pause_at;
                limit = pause_at + pause_horizon;
                if (t_end < limit) limit = t_end;
                lo = bisect_right(times, m, limit);
                m_eff = lo > j + 1 ? lo : j + 1;
                t_commit = limit;
                break;
            }
        }
    }
    out_i[0] = needs_scalar;
    out_i[1] = m_eff;
    out_i[2] = n_res + m_eff;
    out_d[0] = pause_at;
    out_d[1] = t_commit;
    out_d[2] = new_rearm;
}

static double quant_fb(double sigma, double sigma_unit, double full_scale) {
    double fb = round_half_even(sigma / sigma_unit);
    if (fb < -full_scale) fb = -full_scale;
    else if (fb > full_scale - 1.0) fb = full_scale - 1.0;
    return fb;
}

void k_packet_commit(int64_t m_eff, int64_t n_res, double *times,
    int64_t *srcs, uint8_t *assoc, double *q_bits, double *starts,
    double *completions, double t_start, double t_commit,
    int64_t prev_inflight, double prev_next_free, double *uniforms,
    int64_t use_rng, double pm, int64_t interval, int64_t since,
    double q_prev, double q0, double w, int64_t pos_only,
    int64_t req_assoc, double sigma_unit, double full_scale,
    double *msg_t, int64_t *msg_src, double *msg_sigma, double *msg_qoff,
    double *msg_dq, double *msg_fb, double *samp_t, double *samp_sigma,
    double *out_d, int64_t *out_i)
{
    int64_t total_eff = n_res + m_eff;
    int64_t n_msg = 0, n_samp = 0, neg = 0, pos = 0, j;
    int64_t delivered, n_started, inflight;
    double prev = q_prev, next_free;
    for (j = 0; j < m_eff; j++) {
        int sampled, negative, positive;
        double qs, dq, sigma;
        if (use_rng != 0) sampled = uniforms[j] < pm;
        else sampled = (since + (j + 1)) % interval == 0;
        if (!sampled) continue;
        qs = q_bits[j];
        dq = qs - prev;
        sigma = (q0 - qs) - w * dq;
        prev = qs;
        samp_t[n_samp] = times[j];
        samp_sigma[n_samp] = sigma;
        n_samp++;
        negative = sigma < 0.0;
        positive = sigma > 0.0 && (qs < q0 || pos_only == 0)
                   && (req_assoc == 0 || assoc[j] != 0);
        if (negative) neg++;
        if (positive) pos++;
        if (negative || positive) {
            msg_t[n_msg] = times[j];
            msg_src[n_msg] = srcs[j];
            msg_sigma[n_msg] = sigma;
            msg_qoff[n_msg] = q0 - qs;
            msg_dq[n_msg] = dq;
            if (sigma_unit == sigma_unit)
                msg_fb[n_msg] = quant_fb(sigma, sigma_unit, full_scale);
            else
                msg_fb[n_msg] = sigma;
            n_msg++;
        }
    }
    if (use_rng == 0) since = (since + m_eff) % interval;

    delivered = bisect_right(completions, total_eff, t_commit);
    if (prev_inflight != 0 && t_start < prev_next_free
        && prev_next_free <= t_commit) delivered++;
    n_started = bisect_right(starts, total_eff, t_commit);

    next_free = prev_next_free;
    inflight = prev_inflight;
    if (n_started) {
        next_free = completions[n_started - 1];
        inflight = next_free > t_commit ? 1 : 0;
    } else if (prev_inflight != 0 && prev_next_free <= t_commit) {
        inflight = 0;
    }
    out_i[0] = n_msg;
    out_i[1] = n_samp;
    out_i[2] = neg;
    out_i[3] = pos;
    out_i[4] = delivered;
    out_i[5] = n_started;
    out_i[6] = total_eff - n_started;
    out_i[7] = inflight;
    out_i[8] = since;
    out_d[0] = next_free;
    out_d[1] = prev;
}

void k_packet_scalar(int64_t m, double *times, int64_t *srcs,
    uint8_t *assoc, double *uniforms, int64_t use_rng, double pm,
    int64_t interval, int64_t since, double t_start, double t_end,
    double ssvc, double L, double B, double q_sc, double q0, double w,
    int64_t pos_only, int64_t req_assoc, double sigma_unit,
    double full_scale, int64_t backlog, double next_free0,
    int64_t inflight, double frozen_until, double pause_rearm_at,
    double pause_duration, double pause_horizon, double q_prev,
    double *msg_t, int64_t *msg_src, double *msg_sigma, double *msg_qoff,
    double *msg_dq, double *msg_fb, double *samp_t, double *samp_sigma,
    double *drop_t, int64_t *drop_src, double *acc_arrivals,
    double *starts_out, double *pause_ts, double *out_d, int64_t *out_i)
{
    int64_t prev_inflight = inflight;
    double prev_next_free = next_free0;
    double next_free = inflight != 0 ? next_free0 : -INFINITY;
    int64_t any_started = 0, n_acc = 0, n_starts = 0;
    int64_t n_msg = 0, n_samp = 0, n_drop = 0, neg = 0, pos = 0;
    int64_t committed = 0, j, i, delivered = 0;
    int64_t out_inflight, n_pause = 0;
    double pause_at = NAN, pause_limit = INFINITY, t_commit = t_end;
    double q_last = q_prev, out_next_free;
    if (t_start > next_free) next_free = t_start;
    if (frozen_until > next_free) next_free = frozen_until;
    for (i = 0; i < backlog; i++) acc_arrivals[n_acc++] = t_start;

    for (j = 0; j < m; j++) {
        double a = times[j], occ, q_now;
        int sampled, accepted;
        if (a > pause_limit) break;
        while (backlog > 0 && next_free < a) {
            starts_out[n_starts++] = next_free;
            next_free += ssvc;
            backlog--;
            any_started = 1;
        }
        if (use_rng != 0) sampled = uniforms[j] < pm;
        else {
            since++;
            sampled = since >= interval;
            if (sampled) since = 0;
        }
        occ = (double)backlog * L;
        accepted = occ + L <= B;
        if (accepted) {
            acc_arrivals[n_acc++] = a;
            if (backlog == 0 && next_free <= a) {
                starts_out[n_starts++] = a;
                next_free = a + ssvc;
                any_started = 1;
            } else backlog++;
            q_now = occ + L;
        } else {
            drop_t[n_drop] = a;
            drop_src[n_drop] = srcs[j];
            n_drop++;
            q_now = occ;
        }
        if (sampled) {
            double dq = q_now - q_last, sigma;
            int emit = 0;
            q_last = q_now;
            sigma = (q0 - q_now) - w * dq;
            samp_t[n_samp] = a;
            samp_sigma[n_samp] = sigma;
            n_samp++;
            if (sigma < 0.0) { neg++; emit = 1; }
            else if (sigma > 0.0 && (q_now < q0 || pos_only == 0)
                     && (req_assoc == 0 || assoc[j] != 0)) { pos++; emit = 1; }
            if (emit) {
                msg_t[n_msg] = a;
                msg_src[n_msg] = srcs[j];
                msg_sigma[n_msg] = sigma;
                msg_qoff[n_msg] = q0 - q_now;
                msg_dq[n_msg] = dq;
                if (sigma_unit == sigma_unit)
                    msg_fb[n_msg] = quant_fb(sigma, sigma_unit, full_scale);
                else msg_fb[n_msg] = sigma;
                n_msg++;
            }
        }
        committed++;
        if (q_sc == q_sc && q_now > q_sc && a >= pause_rearm_at) {
            pause_at = a;
            pause_rearm_at = a + pause_duration;
            pause_ts[n_pause++] = a;
            pause_limit = a + pause_horizon;
            if (t_end < pause_limit) pause_limit = t_end;
            t_commit = pause_limit;
        }
    }
    while (backlog > 0 && next_free <= t_commit) {
        starts_out[n_starts++] = next_free;
        next_free += ssvc;
        backlog--;
        any_started = 1;
    }
    for (i = 0; i < n_starts; i++) {
        if (starts_out[i] + ssvc <= t_commit) delivered++;
        else break;
    }
    if (prev_inflight != 0 && t_start < prev_next_free
        && prev_next_free <= t_commit) delivered++;

    out_next_free = next_free0;
    out_inflight = prev_inflight;
    if (any_started != 0) {
        out_next_free = next_free;
        out_inflight = next_free > t_commit ? 1 : 0;
    } else if (prev_inflight != 0 && prev_next_free <= t_commit) {
        out_inflight = 0;
    }
    out_i[0] = committed;
    out_i[1] = n_msg;
    out_i[2] = n_samp;
    out_i[3] = n_drop;
    out_i[4] = delivered;
    out_i[5] = backlog;
    out_i[6] = out_inflight;
    out_i[7] = since;
    out_i[8] = n_starts;
    out_i[9] = n_acc;
    out_i[10] = neg;
    out_i[11] = pos;
    out_i[12] = any_started;
    out_i[13] = n_pause;
    out_d[0] = pause_at;
    out_d[1] = t_commit;
    out_d[2] = out_next_free;
    out_d[3] = q_last;
    out_d[4] = pause_rearm_at;
}

void k_apply_messages(int64_t n, double *msg_t, int64_t *msg_src,
    double *msg_fb, double *msg_sigma, int64_t mode, double gi, double gd,
    double ru, double max_dt, double d, double t_commit,
    double *rate, double *last_update, uint8_t *assoc8, int64_t *updates,
    double *min_rate, double *line_rate, double *owed, double *out_d)
{
    double total_rate = out_d[0];
    int64_t k;
    for (k = 0; k < n; k++) {
        int64_t i = msg_src[k];
        double now = msg_t[k] + d;
        double r0 = rate[i], r = r0, fb_sign;
        if (mode == 0) {
            double fb = msg_fb[k];
            if (fb > 0.0) r = r + gi * ru * fb;
            else if (fb < 0.0) {
                double factor = 1.0 + gd * fb;
                if (factor < 0.0) factor = 0.0;
                r = r * factor;
            }
        } else {
            double sigma = msg_sigma[k];
            double lu = last_update[i];
            double dt = lu != lu ? 0.0 : now - lu;
            if (max_dt >= 0.0 && dt > max_dt) dt = max_dt;
            last_update[i] = now;
            if (sigma > 0.0) r = r + gi * ru * sigma * dt;
            else if (sigma < 0.0) {
                if (mode == 2) r = r * exp(gd * sigma * dt);
                else {
                    double factor = 1.0 + gd * sigma * dt;
                    if (factor < 0.0) factor = 0.0;
                    r = r * factor;
                }
            }
        }
        if (r < min_rate[i]) r = min_rate[i];
        if (r > line_rate[i]) r = line_rate[i];
        rate[i] = r;
        updates[i]++;
        fb_sign = mode == 0 ? msg_fb[k] : msg_sigma[k];
        if (fb_sign < 0.0) assoc8[i] = 1;
        else if (r >= line_rate[i]) assoc8[i] = 0;
        if (r != r0) {
            double delta = r - r0;
            double lag = t_commit - now;
            if (lag < 0.0) lag = 0.0;
            owed[i] += delta * lag;
            total_rate += delta;
        }
    }
    out_d[0] = total_rate;
}

int64_t k_next_nonempty(int64_t *counts, int64_t cursor, int64_t n) {
    int64_t i;
    for (i = cursor; i < n; i++) if (counts[i] > 0) return i;
    return -1;
}
"""

_FLUID_TEMPLATE = r"""
/* ---- switched-fluid row integrator, REAL = $REAL$ ---------------------- */

typedef struct {
    double a, b, cap, k, q0, x_full, x_empty, conv_rtol, t_max;
    int64_t linear_dec, physical, max_switches, ev_cap, m;
    double *ev_t; int8_t *ev_kind; double *ev_x, *ev_y;
    int64_t overflow;
} fparams_$SFX$;

typedef struct {
    $REAL$ x, y;
    int dec, alive, pinned, rsn;
    double pin_t, unpin_t;
    $REAL$ pin_y;
    int64_t sw_count, n_ev, dead_step;
    double te;
    $REAL$ xe_final, ye_final;
} frow_$SFX$;

static void record_$SFX$(fparams_$SFX$ *p, frow_$SFX$ *rs, int64_t r,
    double t, int8_t kind, double xv, double yv)
{
    if (rs->n_ev < p->ev_cap) {
        int64_t base = r * p->ev_cap + rs->n_ev;
        p->ev_t[base] = t;
        p->ev_kind[base] = kind;
        p->ev_x[base] = xv;
        p->ev_y[base] = yv;
        rs->n_ev++;
    } else p->overflow = 1;
}

static void refine_$SFX$(fparams_$SFX$ *p, $REAL$ x0, $REAL$ y0, int dec,
    $REAL$ h, $REAL$ x1, $REAL$ y1, $REAL$ alpha, $REAL$ beta, $REAL$ gamma,
    $REAL$ *th_out, $REAL$ *xt_out, $REAL$ *yt_out)
{
    $REAL$ A = ($REAL$)p->a, B = ($REAL$)p->b, C = ($REAL$)p->cap;
    $REAL$ K = ($REAL$)p->k;
    $REAL$ s0 = x0 + K * y0;
    $REAL$ coef0 = dec ? (p->linear_dec ? B * C : B * (y0 + C)) : A;
    $REAL$ f0x = y0, f0y = -coef0 * s0;
    $REAL$ s1 = x1 + K * y1;
    $REAL$ coef1 = dec ? (p->linear_dec ? B * C : B * (y1 + C)) : A;
    $REAL$ f1x = y1, f1y = -coef1 * s1;
    $REAL$ u0 = alpha * x0 + beta * y0 + gamma;
    $REAL$ u1 = alpha * x1 + beta * y1 + gamma;
    $REAL$ d0 = h * (alpha * f0x + beta * f0y);
    $REAL$ d1 = h * (alpha * f1x + beta * f1y);
    $REAL$ c0 = u0, c1 = d0;
    $REAL$ c2 = ($REAL$)3.0 * (u1 - u0) - ($REAL$)2.0 * d0 - d1;
    $REAL$ c3 = ($REAL$)2.0 * (u0 - u1) + d0 + d1;
    $REAL$ lo = 0.0, hi = 1.0, g_lo = u0;
    $REAL$ b2 = ($REAL$)2.0 * c2, b3 = ($REAL$)3.0 * c3;
    $REAL$ denom = u0 - u1, theta, t2, om, h00, h10, h01, h11;
    int it;
    theta = denom == ($REAL$)0.0 ? ($REAL$)NAN : u0 / denom;
    if (!isfinite(theta)) theta = ($REAL$)0.5;
    else if (theta < ($REAL$)0.0) theta = 0.0;
    else if (theta > ($REAL$)1.0) theta = 1.0;
    for (it = 0; it < 16; it++) {
        $REAL$ g = ((c3 * theta + c2) * theta + c1) * theta + c0;
        $REAL$ slope, newton;
        if (g_lo * g > ($REAL$)0.0) { lo = theta; g_lo = g; }
        else hi = theta;
        slope = (b3 * theta + b2) * theta + c1;
        newton = slope != ($REAL$)0.0 ? theta - g / slope : ($REAL$)INFINITY;
        if (newton > lo && newton < hi) theta = newton;
        else theta = ($REAL$)0.5 * (lo + hi);
    }
    t2 = theta * theta;
    om = ($REAL$)1.0 - theta;
    h00 = (($REAL$)1.0 + ($REAL$)2.0 * theta) * om * om;
    h10 = theta * om * om;
    h01 = t2 * (($REAL$)3.0 - ($REAL$)2.0 * theta);
    h11 = t2 * (theta - ($REAL$)1.0);
    *th_out = theta;
    *xt_out = h00 * x0 + h10 * (h * f0x) + h01 * x1 + h11 * (h * f1x);
    *yt_out = h00 * y0 + h10 * (h * f0y) + h01 * y1 + h11 * (h * f1y);
}

static void advance_$SFX$(fparams_$SFX$ *p, frow_$SFX$ *rs, int64_t r,
    double t0, double h_in, int64_t step_i)
{
    double t0d = t0, h = h_in;
    $REAL$ A = ($REAL$)p->a, B = ($REAL$)p->b, C = ($REAL$)p->cap;
    $REAL$ K = ($REAL$)p->k, Q0 = ($REAL$)p->q0;
    $REAL$ XF = ($REAL$)p->x_full, XE = ($REAL$)p->x_empty;
    for (;;) {
        $REAL$ xx0 = rs->x, yy0 = rs->y;
        $REAL$ rsign = rs->dec ? ($REAL$)1.0 : ($REAL$)-1.0;
        $REAL$ hr = ($REAL$)h;
        $REAL$ s_, coef, k1x, k1y, k2x, k2y, k3x, k3y, k4x, k4y, ax, ay;
        $REAL$ sixth, x1, y1, s1, line_tol, theta, xe, ye;
        double t_ev;
        int term = 0;
        s_ = xx0 + K * yy0;
        coef = rs->dec ? (p->linear_dec ? B * C : B * (yy0 + C)) : A;
        k1x = yy0; k1y = -coef * s_;
        ax = xx0 + ($REAL$)0.5 * hr * k1x; ay = yy0 + ($REAL$)0.5 * hr * k1y;
        s_ = ax + K * ay;
        coef = rs->dec ? (p->linear_dec ? B * C : B * (ay + C)) : A;
        k2x = ay; k2y = -coef * s_;
        ax = xx0 + ($REAL$)0.5 * hr * k2x; ay = yy0 + ($REAL$)0.5 * hr * k2y;
        s_ = ax + K * ay;
        coef = rs->dec ? (p->linear_dec ? B * C : B * (ay + C)) : A;
        k3x = ay; k3y = -coef * s_;
        ax = xx0 + hr * k3x; ay = yy0 + hr * k3y;
        s_ = ax + K * ay;
        coef = rs->dec ? (p->linear_dec ? B * C : B * (ay + C)) : A;
        k4x = ay; k4y = -coef * s_;
        sixth = hr / ($REAL$)6.0;
        x1 = xx0 + sixth * (k1x + ($REAL$)2.0 * (k2x + k3x) + k4x);
        y1 = yy0 + sixth * (k1y + ($REAL$)2.0 * (k2y + k3y) + k4y);

        s1 = x1 + K * y1;
        line_tol = ($REAL$)1e-12 * (($REAL$)fabs((double)x1)
                   + K * ($REAL$)fabs((double)y1) + Q0);
        theta = 1.0;
        xe = x1; ye = y1;
        if (s1 * rsign < -line_tol) {
            $REAL$ th, xt, yt;
            refine_$SFX$(p, xx0, yy0, rs->dec, hr, x1, y1,
                         ($REAL$)1.0, K, ($REAL$)0.0, &th, &xt, &yt);
            if (th < theta) { theta = th; xe = xt; ye = yt; term = 1; }
        }
        if (p->physical) {
            if (xx0 < XF && x1 >= XF) {
                $REAL$ th, xt, yt;
                refine_$SFX$(p, xx0, yy0, rs->dec, hr, x1, y1,
                             ($REAL$)1.0, ($REAL$)0.0, -XF, &th, &xt, &yt);
                if (th < theta) { theta = th; xe = xt; ye = yt; term = 2; }
            }
            if (xx0 > XE && x1 <= XE) {
                $REAL$ th, xt, yt;
                refine_$SFX$(p, xx0, yy0, rs->dec, hr, x1, y1,
                             ($REAL$)1.0, ($REAL$)0.0, -XE, &th, &xt, &yt);
                if (th < theta) { theta = th; xe = xt; ye = yt; term = 3; }
            }
        }
        t_ev = t0d + (double)theta * h;

        if (yy0 * ye < ($REAL$)0.0) {
            $REAL$ hk = hr * theta, th, xt, yt;
            refine_$SFX$(p, xx0, yy0, rs->dec, hk, xe, ye,
                         ($REAL$)0.0, ($REAL$)1.0, ($REAL$)0.0, &th, &xt, &yt);
            record_$SFX$(p, rs, r, t0d + (double)th * (double)hk, 1,
                         (double)xt, (double)yt);
        }
        if (!p->physical) {
            if (xx0 < XF && xe >= XF) {
                $REAL$ hk = hr * theta, th, xt, yt;
                refine_$SFX$(p, xx0, yy0, rs->dec, hk, xe, ye,
                             ($REAL$)1.0, ($REAL$)0.0, -XF, &th, &xt, &yt);
                record_$SFX$(p, rs, r, t0d + (double)th * (double)hk, 2,
                             (double)xt, (double)yt);
            }
            if (xx0 > XE && xe <= XE) {
                $REAL$ hk = hr * theta, th, xt, yt;
                refine_$SFX$(p, xx0, yy0, rs->dec, hk, xe, ye,
                             ($REAL$)1.0, ($REAL$)0.0, -XE, &th, &xt, &yt);
                record_$SFX$(p, rs, r, t0d + (double)th * (double)hk, 3,
                             (double)xt, (double)yt);
            }
        }

        if (term == 0) { rs->x = xe; rs->y = ye; return; }
        if (term == 1) {
            int over, conv;
            record_$SFX$(p, rs, r, t_ev, 0, (double)xe, (double)ye);
            rs->sw_count++;
            over = rs->sw_count > p->max_switches;
            conv = !over
                && fabs((double)xe) / p->q0 <= p->conv_rtol
                && fabs((double)ye) / p->cap <= p->conv_rtol;
            if (over || conv) {
                rs->alive = 0;
                rs->dead_step = step_i + 1;
                rs->te = t_ev;
                rs->xe_final = xe; rs->ye_final = ye;
                rs->x = xe; rs->y = ye;
                rs->rsn = over ? 3 : 1; /* max_switches : converged */
                return;
            }
            rs->dec = ye > ($REAL$)0.0;
            rs->x = xe; rs->y = ye;
            t0d = t_ev;
            h = h * (1.0 - (double)theta);
            continue;
        }
        {
            int is_full = term == 2;
            double duration, t_step_end;
            record_$SFX$(p, rs, r, t_ev, is_full ? 2 : 3,
                         is_full ? (double)XF : (double)XE, (double)ye);
            rs->pinned = is_full ? 1 : 2;
            rs->pin_t = t_ev;
            rs->pin_y = ye;
            if (is_full)
                duration = log(((double)ye + p->cap) / p->cap)
                           / (p->b * p->x_full);
            else
                duration = -(double)ye / (p->a * p->q0);
            rs->unpin_t = t_ev + duration;
            if (p->t_max < rs->unpin_t) rs->unpin_t = p->t_max;
            rs->x = is_full ? XF : XE;
            rs->y = ye;
            t_step_end = t0d + h;
            if (rs->unpin_t <= t_step_end) {
                double t_up = rs->unpin_t;
                $REAL$ x_pin = is_full ? XF : XE;
                rs->x = x_pin; rs->y = 0.0;
                rs->pinned = 0;
                rs->unpin_t = INFINITY;
                rs->dec = x_pin > ($REAL$)0.0;
                t0d = t_up;
                h = t_step_end - t_up;
                continue;
            }
            return;
        }
    }
}

void k_fluid_$SFX$(int64_t m, int64_t n_steps, double *t_grid,
    $REAL$ *x0, $REAL$ *y0, double a, double b, double cap, double kk,
    double q0, double x_full, double x_empty, int64_t linear_dec,
    int64_t physical, int64_t max_switches, double conv_rtol,
    double t_max, $REAL$ *xs, $REAL$ *ys, int8_t *reason,
    int64_t *switches, double *t_endv, double *x_endv, double *y_endv,
    int64_t ev_cap, int64_t *n_events, double *ev_t, int8_t *ev_kind,
    double *ev_x, double *ev_y, int64_t *out_i)
{
    fparams_$SFX$ p;
    int64_t r, last = 0;
    p.a = a; p.b = b; p.cap = cap; p.k = kk; p.q0 = q0;
    p.x_full = x_full; p.x_empty = x_empty;
    p.conv_rtol = conv_rtol; p.t_max = t_max;
    p.linear_dec = linear_dec; p.physical = physical;
    p.max_switches = max_switches; p.ev_cap = ev_cap; p.m = m;
    p.ev_t = ev_t; p.ev_kind = ev_kind; p.ev_x = ev_x; p.ev_y = ev_y;
    p.overflow = 0;

    for (r = 0; r < m; r++) {
        frow_$SFX$ rs;
        $REAL$ K = ($REAL$)kk, XF = ($REAL$)x_full, XE = ($REAL$)x_empty;
        $REAL$ s;
        int64_t i, i2;
        rs.x = x0[r]; rs.y = y0[r];
        s = rs.x + K * rs.y;
        rs.dec = (s > ($REAL$)0.0)
                 || (s == ($REAL$)0.0 && rs.y > ($REAL$)0.0);
        rs.alive = 1; rs.pinned = 0; rs.rsn = 0;
        rs.pin_t = 0.0; rs.pin_y = 0.0; rs.unpin_t = INFINITY;
        rs.sw_count = 0; rs.n_ev = 0;
        rs.te = 0.0; rs.xe_final = rs.x; rs.ye_final = rs.y;
        rs.dead_step = n_steps;

        if (fabs((double)rs.x) / q0 <= conv_rtol
            && fabs((double)rs.y) / cap <= conv_rtol) {
            rs.alive = 0;
            rs.rsn = 1;
            rs.dead_step = 0;
        } else if (physical && rs.x <= XE && rs.y < ($REAL$)0.0) {
            double duration;
            record_$SFX$(&p, &rs, r, 0.0, 3, (double)XE, (double)rs.y);
            rs.pinned = 2;
            rs.pin_t = 0.0;
            rs.pin_y = rs.y;
            duration = -(double)rs.y / (a * q0);
            rs.unpin_t = duration < t_max ? duration : t_max;
            rs.x = XE;
        }
        xs[r] = rs.x;
        ys[r] = rs.y;

        for (i = 0; i < n_steps; i++) {
            double t0 = t_grid[i], t1 = t_grid[i + 1];
            if (rs.alive && rs.pinned == 0)
                advance_$SFX$(&p, &rs, r, t0, t1 - t0, i);
            if (physical && rs.alive && rs.pinned != 0
                && rs.unpin_t <= t1 && rs.unpin_t < t_max) {
                $REAL$ x_pin = rs.pinned == 1 ? XF : XE;
                double t_up = rs.unpin_t;
                rs.x = x_pin; rs.y = 0.0;
                rs.pinned = 0;
                rs.unpin_t = INFINITY;
                rs.dec = x_pin > ($REAL$)0.0;
                advance_$SFX$(&p, &rs, r, t_up, t1 - t_up, i);
            }
            if (physical && rs.alive && rs.pinned != 0) {
                double dt = t1 - rs.pin_t;
                if (rs.pinned == 1) {
                    rs.x = XF;
                    rs.y = ($REAL$)(((double)rs.pin_y + cap)
                           * exp(-b * x_full * dt) - cap);
                } else {
                    rs.x = XE;
                    rs.y = ($REAL$)((double)rs.pin_y + a * q0 * dt);
                }
            }
            xs[(i + 1) * m + r] = rs.x;
            ys[(i + 1) * m + r] = rs.y;
        }
        if (rs.alive) {
            int conv = rs.pinned == 0
                && fabs((double)rs.x) / q0 <= conv_rtol
                && fabs((double)rs.y) / cap <= conv_rtol;
            rs.rsn = conv ? 1 : 2;
            rs.te = t_max;
            rs.xe_final = rs.x;
            rs.ye_final = rs.y;
            rs.dead_step = n_steps;
        }
        reason[r] = (int8_t)rs.rsn;
        switches[r] = rs.sw_count;
        t_endv[r] = rs.te;
        x_endv[r] = (double)rs.xe_final;
        y_endv[r] = (double)rs.ye_final;
        n_events[r] = rs.n_ev;
        for (i2 = rs.dead_step; i2 < n_steps; i2++) {
            xs[(i2 + 1) * m + r] = rs.x;
            ys[(i2 + 1) * m + r] = rs.y;
        }
        if (rs.dead_step > last) last = rs.dead_step;
    }
    if (last < 1) last = 1;
    out_i[0] = last;
    out_i[1] = p.overflow;
}
"""

SOURCE = (
    "#include <stdlib.h>\n"
    + _COMMON
    + _FLUID_TEMPLATE.replace("$REAL$", "double").replace("$SFX$", "f64")
    + _FLUID_TEMPLATE.replace("$REAL$", "float").replace("$SFX$", "f32")
)


def _build_root() -> Path:
    env = os.environ.get("REPRO_KERNEL_BUILD_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parent / "_build"


def _content_hash() -> str:
    payload = (CDEF + SOURCE).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def load_cffi_kernels():
    """Compile (once, content-addressed) and load the C kernels.

    Returns the loaded extension module's ``lib`` / ``ffi`` pair, or
    raises (``ImportError``, compiler errors, …) — callers treat any
    exception as "backend unavailable" and fall through to numpy.
    """
    global build_seconds
    import cffi

    tag = _content_hash()
    modname = f"_repro_kernels_{tag}"
    root = _build_root()
    ext = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    target = root / f"{modname}{ext}"

    started = time.perf_counter()  # repro-lint: disable=wall-clock -- one-off C build timing
    if not target.exists():
        root.mkdir(parents=True, exist_ok=True)
        scratch = root / f".tmp-{os.getpid()}"
        scratch.mkdir(parents=True, exist_ok=True)
        try:
            ffi = cffi.FFI()
            ffi.cdef(CDEF)
            ffi.set_source(modname, SOURCE,
                           extra_compile_args=["-O2", "-fno-math-errno"])
            built = Path(ffi.compile(tmpdir=str(scratch), verbose=False))
            os.replace(built, target)  # atomic: concurrent builders race safely
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    spec = importlib.util.spec_from_file_location(modname, target)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load kernel extension {target}")
    module = importlib.util.module_from_spec(spec)
    # register so repeated loads (and cffi internals) reuse the module
    sys.modules.setdefault(modname, module)
    spec.loader.exec_module(module)
    build_seconds += time.perf_counter() - started  # repro-lint: disable=wall-clock -- one-off C build timing
    return module.lib, module.ffi

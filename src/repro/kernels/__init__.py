"""Compiled hot-path kernels behind the ``engine="compiled"`` seam.

This package provides native implementations of the three hottest
paths the ``repro.obs`` span profiles identify — the batched packet
window (Lindley service hull + sigma sampling + PAUSE truncation), the
batch fluid RK4 stepper with cubic-Hermite event refinement (float64
and float32), and the calendar-queue slot operations — each compiled
through whichever backend the environment offers:

* **numba** ``@njit(cache=True)`` over the shared scalar bodies in
  :mod:`repro.kernels._scalar` (install via ``pip install
  repro[compiled]``);
* a **cffi**-built C translation of the same bodies (any C compiler);
* pure **numpy** — no compilation at all: the compiled entry points
  transparently delegate to the existing batched engines, which the
  scalar bodies mirror bit-for-bit.

Select explicitly with ``REPRO_KERNEL_BACKEND=auto|numba|cffi|numpy``.
Engine selection is one flag everywhere: ``engine="compiled"`` on
:class:`~repro.simulation.network.BCNNetworkSimulator`, the scenario
runtime and the CLI; ``fluid_method="compiled"`` on
:func:`~repro.fluid.batch.simulate_fluid_batch`;
``kernel="compiled-calendar"`` on
:func:`~repro.simulation.engine.make_simulator`.
"""

from ._backend import (KernelBackend, available_backends,
                       consume_warmup_span, get_backend, reset_backend)
from .calendar import CompiledCalendarSimulator
from .fluid import simulate_fluid_batch_compiled
from .packet import CompiledSwitchKernel

__all__ = [
    "CompiledCalendarSimulator",
    "CompiledSwitchKernel",
    "KernelBackend",
    "available_backends",
    "consume_warmup_span",
    "get_backend",
    "reset_backend",
    "simulate_fluid_batch_compiled",
]

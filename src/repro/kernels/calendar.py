"""Calendar-queue event kernel with compiled slot operations.

:class:`CompiledCalendarSimulator` keeps the event objects (python
callbacks) in the inherited per-slot lists but mirrors the bucket
occupancy in a typed ``int64`` array, so the hot cursor scan — finding
the next non-empty bucket, which the interpreted kernel does one slot
at a time — collapses into a single compiled ``next_nonempty`` call.
Event ordering is identical to :class:`CalendarSimulator` (and hence
to the reference heap kernel); with no compiled backend the class
still works, using the pure-python scan over the same typed array.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..simulation.engine import CalendarSimulator, Event
from ._backend import KernelBackend, get_backend

__all__ = ["CompiledCalendarSimulator"]


class CompiledCalendarSimulator(CalendarSimulator):
    """Calendar queue whose slot scans run in compiled code."""

    def __init__(self, *, slot_width: float | None = None,
                 n_slots: int = 1024, quantum_hint: float | None = None,
                 backend: KernelBackend | None = None) -> None:
        super().__init__(slot_width=slot_width, n_slots=n_slots,
                         quantum_hint=quantum_hint)
        self._backend = backend if backend is not None else get_backend()
        self._counts = np.zeros(n_slots, dtype=np.int64)

    # -- queue storage -----------------------------------------------------

    def _push(self, event: Event) -> None:
        offset = event.time - self._horizon_start
        if offset < self._horizon:
            idx = int(offset / self._slot_width)
            if idx >= self._n_slots:  # float edge: t == horizon end
                idx = self._n_slots - 1
            if idx < self._cursor:
                idx = self._cursor
            if idx == self._cursor and self._active_is_heap:
                heapq.heappush(self._slots[idx], event)
            else:
                self._slots[idx].append(event)
            self._counts[idx] += 1
        else:
            heapq.heappush(self._overflow, event)
        self._size += 1

    def _advance_to_nonempty(self) -> bool:
        n = self._n_slots
        while True:
            nxt = int(self._backend.next_nonempty(self._counts, self._cursor))
            if nxt >= 0:
                if nxt != self._cursor:
                    self._cursor = nxt
                    self._active_is_heap = False
                bucket = self._slots[nxt]
                if not self._active_is_heap:
                    heapq.heapify(bucket)
                    self._active_is_heap = True
                return True
            # Calendar exhausted: roll the horizon forward and refill
            # from the overflow heap (same arithmetic as the parent).
            if not self._overflow:
                return False
            next_time = self._overflow[0].time
            periods = max(1, int((next_time - self._horizon_start)
                                 / self._horizon))
            self._horizon_start += periods * self._horizon
            self._cursor = 0
            self._active_is_heap = False
            horizon_end = self._horizon_start + self._horizon
            overflow = self._overflow
            slots = self._slots
            counts = self._counts
            while overflow and overflow[0].time < horizon_end:
                event = heapq.heappop(overflow)
                idx = int((event.time - self._horizon_start)
                          / self._slot_width)
                if idx >= n:  # float edge
                    idx = n - 1
                slots[idx].append(event)
                counts[idx] += 1

    def _pop_min(self) -> Event:
        if not self._advance_to_nonempty():  # pragma: no cover - guarded
            raise IndexError("pop from empty calendar")
        event = heapq.heappop(self._slots[self._cursor])
        self._counts[self._cursor] -= 1
        self._size -= 1
        if event.cancelled:
            self._cancelled_pending -= 1
        return event

    def _clear(self) -> None:
        super()._clear()
        self._counts[:] = 0

    def _compact(self) -> None:
        super()._compact()
        for idx, bucket in enumerate(self._slots):
            self._counts[idx] = len(bucket)

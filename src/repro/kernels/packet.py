"""Compiled frame-train window processing (``engine="compiled"``).

:class:`CompiledSwitchKernel` subclasses the numpy-vectorized
:class:`repro.simulation.switch.BatchedSwitchKernel` and replaces its
``process()`` hot path with three compiled kernels — window planning
(Lindley hull + drop/PAUSE detection), window commit (sampling, sigma,
BCN emission, service accounting) and the exact per-frame fallback for
drop-tail windows — while keeping every observable side effect
(switch stats, queue counters, sigma history, obs events, RNG stream
position) identical to the batched engine.  When no compiled backend
is available the class transparently delegates to the inherited numpy
implementation, so ``engine="compiled"`` is always safe to request.
"""

from __future__ import annotations

import math

import numpy as np

from ..simulation.switch import BatchedSwitchKernel, BatchedWindow
from ._backend import KernelBackend, get_backend

__all__ = ["CompiledSwitchKernel"]

_EMPTY = np.empty(0)


class CompiledSwitchKernel(BatchedSwitchKernel):
    """Drop-in :class:`BatchedSwitchKernel` running compiled kernels."""

    def __init__(self, *args, backend: KernelBackend | None = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._backend = backend if backend is not None else get_backend()
        # Per-window output buffers, reused across windows (grow-on-
        # demand).  Reuse keeps allocation out of the hot loop and lets
        # the cffi backend cache its pointer casts; every consumer of
        # these arrays (recorder, obs replay, message delivery) reads
        # them within the same window iteration, before the next
        # ``process()`` call overwrites them.
        self._scratch: dict[str, np.ndarray] = {}
        self._plan_d = np.empty(3)
        self._plan_i = np.empty(3, dtype=np.int64)
        self._out_d = np.empty(2)
        self._out_i = np.empty(9, dtype=np.int64)
        self._sout_d = np.empty(5)
        self._sout_i = np.empty(14, dtype=np.int64)
        # The plan/commit kernels run through bound closures (see
        # ``KernelBackend.bind_packet_plan``) that capture the scratch
        # buffers; ``_bufgen`` bumps whenever ``_buf`` reallocates one,
        # invalidating the closures so they re-bind the new arrays.
        self._bufgen = 0
        self._bound_gen = -1
        self._bound_plan = None
        self._bound_commit = None

    def _buf(self, name: str, n: int, dtype=np.float64) -> np.ndarray:
        buf = self._scratch.get(name)
        if buf is None or buf.shape[0] < n:
            buf = np.empty(max(64, 2 * n), dtype)
            self._scratch[name] = buf
            self._bufgen += 1
        return buf

    # -- feedback-field constants -----------------------------------------

    def _fb_quant(self) -> tuple[float, float]:
        sw = self.switch
        if sw.fb_bits is not None and sw.sigma_unit is not None:
            return float(sw.sigma_unit), float(2 ** (sw.fb_bits - 1))
        return math.nan, 0.0

    # -- window processing -------------------------------------------------

    def process(self, t_start, t_end, times, srcs, assoc):
        be = self._backend
        if not be.compiled:
            # numpy tier: the inherited vectorized path IS the fallback
            return super().process(t_start, t_end, times, srcs, assoc)

        sw = self.switch
        Lf = float(self.frame_bits)
        m = int(times.size)
        n_res = self._backlog
        total = n_res + m

        times = np.ascontiguousarray(times, dtype=np.float64)
        srcs64 = np.ascontiguousarray(srcs, dtype=np.int64)
        assoc8 = np.ascontiguousarray(assoc, dtype=np.uint8)

        # All scratch sized by the pre-truncation counts (``total`` and
        # ``m`` bound ``total_eff`` and ``m_eff``) so a single bind
        # covers plan and commit; the kernels never read output shapes.
        starts = self._buf("starts", total)
        completions = self._buf("completions", total)
        q_bits = self._buf("q_bits", m)
        msg_t = self._buf("msg_t", m)
        msg_src = self._buf("msg_src", m, np.int64)
        msg_sigma = self._buf("msg_sigma", m)
        msg_qoff = self._buf("msg_qoff", m)
        msg_dq = self._buf("msg_dq", m)
        msg_fb = self._buf("msg_fb", m)
        samp_t = self._buf("samp_t", m)
        samp_sigma = self._buf("samp_sigma", m)
        plan_d = self._plan_d
        plan_i = self._plan_i
        q_sc = float(sw.q_sc) if sw.q_sc is not None else math.nan

        if self._bound_gen != self._bufgen:
            sigma_unit, full_scale = self._fb_quant()
            self._bound_plan = be.bind_packet_plan(
                Lf, sw.queue.capacity_bits, q_sc,
                self.pause_commit_horizon, starts, completions, q_bits,
                plan_d, plan_i)
            self._bound_commit = be.bind_packet_commit(
                sw.pm, sw.q0, sw.w,
                1 if sw.positive_only_below_q0 else 0,
                1 if sw.require_association else 0,
                sigma_unit, full_scale, q_bits, starts, completions,
                msg_t, msg_src, msg_sigma, msg_qoff, msg_dq, msg_fb,
                samp_t, samp_sigma, self._out_d, self._out_i)
            self._bound_gen = self._bufgen

        self._bound_plan(
            times, float(t_start), float(t_end), self._ssvc, n_res,
            self._next_free, 1 if self._inflight else 0,
            self._frozen_until, self._pause_rearm_at,
        )
        if plan_i[0]:
            # drop-tail engages inside the window: exact per-frame kernel
            return self._process_scalar_compiled(
                be, t_start, t_end, times, srcs64, assoc8)

        m_eff = int(plan_i[1])
        total_eff = int(plan_i[2])
        pause_at = float(plan_d[0])
        t_commit = float(plan_d[1])
        has_pause = pause_at == pause_at  # not NaN

        if has_pause:
            self._pause_rearm_at = pause_at + sw.pause_duration
            sw.stats.pauses_sent += self.pause_fanout
            if sw.obs is not None:
                sw.obs.event("pause_on", pause_at, engine=sw.obs_engine,
                             node=sw.cpid, value=sw.pause_duration)
                sw.obs.event("pause_off", pause_at + sw.pause_duration,
                             engine=sw.obs_engine, node=sw.cpid)

        # Bernoulli draws happen after truncation, exactly as the batched
        # engine draws ``rng.random(m)`` on the truncated window.
        if self._rng is not None and m_eff:
            uniforms = self._rng.random(m_eff)
            use_rng, interval, since = 1, 1, 0
        else:
            uniforms = _EMPTY
            use_rng = 1 if self._rng is not None else 0
            interval = sw._sample_interval
            since = sw._arrivals_since_sample

        out_d = self._out_d
        out_i = self._out_i

        self._bound_commit(
            m_eff, n_res, times, srcs64, assoc8, float(t_start), t_commit,
            1 if self._inflight else 0, self._next_free, uniforms,
            use_rng, interval, since, sw._q_at_last_sample,
        )

        n_msg = int(out_i[0])
        n_samp = int(out_i[1])
        delivered = int(out_i[4])

        if use_rng == 0 and m_eff:
            sw._arrivals_since_sample = int(out_i[8])
        if n_samp:
            sw._q_at_last_sample = float(out_d[1])
            sw.stats.samples += n_samp
            sw.sigma_history.extend(
                zip(samp_t[:n_samp].tolist(), samp_sigma[:n_samp].tolist()))
            sw.stats.bcn_negative += int(out_i[2])
            sw.stats.bcn_positive += int(out_i[3])

        if sw.obs is not None and n_msg:
            for mt, msrc, msig in zip(msg_t[:n_msg].tolist(),
                                      msg_src[:n_msg].tolist(),
                                      msg_sigma[:n_msg].tolist()):
                sw.obs.event("bcn", mt, engine=sw.obs_engine, node=sw.cpid,
                             flow=int(msrc), value=msig)

        n_started = int(out_i[5])
        self._next_free = float(out_d[0])
        self._inflight = bool(out_i[7])
        self._backlog = int(out_i[6])

        delivered_bits = float(delivered) * Lf
        sw.stats.forwarded_frames += delivered
        sw.stats.forwarded_bits += delivered_bits
        q = sw.queue
        q.enqueued_frames += m_eff
        q.enqueued_bits += float(m_eff) * Lf
        q.dequeued_frames += n_started
        q.dequeued_bits += float(n_started) * Lf

        arrivals = self._buf("arrivals", total_eff)[:total_eff]
        arrivals[:n_res] = t_start
        arrivals[n_res:] = times[:m_eff]
        self._win_arrivals = arrivals
        self._win_starts = starts[:total_eff]

        if n_msg:
            w_msg = (msg_t[:n_msg], msg_src[:n_msg], msg_fb[:n_msg],
                     msg_sigma[:n_msg], msg_qoff[:n_msg], msg_dq[:n_msg])
        else:
            w_msg = (_EMPTY,) * 6

        return BatchedWindow(
            t_start=t_start, t_commit=t_commit, committed=m_eff,
            msg_t=w_msg[0], msg_src=w_msg[1], msg_fb=w_msg[2],
            msg_sigma=w_msg[3], msg_q_off=w_msg[4], msg_dq=w_msg[5],
            pause_at=pause_at if has_pause else None,
            delivered_bits=delivered_bits, drops=0,
        )

    # -- exact per-frame fallback (drop-tail windows) ----------------------

    def _process_scalar_compiled(self, be, t_start, t_end, times, srcs64,
                                 assoc8):
        sw = self.switch
        Lf = float(self.frame_bits)
        m = int(times.size)
        backlog0 = self._backlog
        cap = backlog0 + m

        rng = self._rng
        if rng is not None:
            # The reference loop draws one scalar per processed arrival;
            # pre-draw the worst case, then rewind and consume exactly
            # ``committed`` draws so the stream position matches.
            state = rng.bit_generator.state
            uniforms = rng.random(m)
            use_rng, interval, since = 1, 1, 0
        else:
            uniforms = _EMPTY
            use_rng = 0
            interval = sw._sample_interval
            since = sw._arrivals_since_sample

        msg_t = self._buf("msg_t", m)
        msg_src = self._buf("msg_src", m, np.int64)
        msg_sigma = self._buf("msg_sigma", m)
        msg_qoff = self._buf("msg_qoff", m)
        msg_dq = self._buf("msg_dq", m)
        msg_fb = self._buf("msg_fb", m)
        samp_t = self._buf("samp_t", m)
        samp_sigma = self._buf("samp_sigma", m)
        drop_t = self._buf("drop_t", m)
        drop_src = self._buf("drop_src", m, np.int64)
        acc_arrivals = self._buf("acc_arrivals", cap)
        starts_out = self._buf("starts_out", cap)
        pause_ts = self._buf("pause_ts", m)
        out_d = self._sout_d
        out_i = self._sout_i
        q_sc = float(sw.q_sc) if sw.q_sc is not None else math.nan
        sigma_unit, full_scale = self._fb_quant()

        be.packet_scalar(
            times, srcs64, assoc8, uniforms, use_rng, float(sw.pm), interval,
            since, float(t_start), float(t_end), self._ssvc, Lf,
            float(sw.queue.capacity_bits), q_sc, float(sw.q0), float(sw.w),
            1 if sw.positive_only_below_q0 else 0,
            1 if sw.require_association else 0, sigma_unit, full_scale,
            backlog0, self._next_free, 1 if self._inflight else 0,
            self._frozen_until, self._pause_rearm_at,
            float(sw.pause_duration), self.pause_commit_horizon,
            sw._q_at_last_sample,
            msg_t, msg_src, msg_sigma, msg_qoff, msg_dq, msg_fb,
            samp_t, samp_sigma, drop_t, drop_src, acc_arrivals, starts_out,
            pause_ts, out_d, out_i,
        )

        committed = int(out_i[0])
        n_msg = int(out_i[1])
        n_samp = int(out_i[2])
        n_drop = int(out_i[3])
        delivered = int(out_i[4])
        n_starts = int(out_i[8])
        n_acc = int(out_i[9])
        n_pause = int(out_i[13])
        t_commit = float(out_d[1])

        if rng is not None:
            rng.bit_generator.state = state
            if committed:
                rng.random(committed)
        else:
            sw._arrivals_since_sample = int(out_i[7])
        sw._q_at_last_sample = float(out_d[3])
        self._pause_rearm_at = float(out_d[4])

        sw.stats.samples += n_samp
        if n_samp:
            sw.sigma_history.extend(
                zip(samp_t[:n_samp].tolist(), samp_sigma[:n_samp].tolist()))
        sw.stats.bcn_negative += int(out_i[10])
        sw.stats.bcn_positive += int(out_i[11])
        sw.stats.pauses_sent += n_pause * self.pause_fanout

        q = sw.queue
        accepted_new = n_acc - backlog0
        q.enqueued_frames += accepted_new
        q.enqueued_bits += float(accepted_new) * Lf
        q.dropped_frames += n_drop
        q.dropped_bits += float(n_drop) * Lf
        q.dequeued_frames += n_starts
        q.dequeued_bits += float(n_starts) * Lf

        delivered_bits = float(delivered) * Lf
        sw.stats.forwarded_frames += delivered
        sw.stats.forwarded_bits += delivered_bits

        self._next_free = float(out_d[2])
        self._inflight = bool(out_i[6])
        self._backlog = int(out_i[5])
        self._win_arrivals = acc_arrivals[:n_acc]
        self._win_starts = starts_out[:n_starts]

        if sw.obs is not None:
            self._replay_scalar_obs(
                sw, Lf, drop_t[:n_drop], drop_src[:n_drop],
                msg_t[:n_msg], msg_src[:n_msg], msg_sigma[:n_msg],
                pause_ts[:n_pause])

        if n_msg:
            w_msg = (msg_t[:n_msg], msg_src[:n_msg], msg_fb[:n_msg],
                     msg_sigma[:n_msg], msg_qoff[:n_msg], msg_dq[:n_msg])
        else:
            w_msg = (_EMPTY,) * 6

        pause_at = float(out_d[0])
        return BatchedWindow(
            t_start=t_start, t_commit=t_commit, committed=committed,
            msg_t=w_msg[0], msg_src=w_msg[1], msg_fb=w_msg[2],
            msg_sigma=w_msg[3], msg_q_off=w_msg[4], msg_dq=w_msg[5],
            pause_at=pause_at if pause_at == pause_at else None,
            delivered_bits=delivered_bits, drops=n_drop,
        )

    @staticmethod
    def _replay_scalar_obs(sw, Lf, drop_t, drop_src, msg_t, msg_src,
                           msg_sigma, pause_ts):
        """Re-emit the per-frame loop's obs events in time order.

        The reference loop interleaves drop / bcn / pause events as it
        walks arrivals; replaying sorted by (time, kind) reproduces that
        order (within one arrival the loop emits drop, then bcn, then
        pause; simultaneous arrivals from different sources are rare
        enough that the conformance suites compare event multisets).
        """
        events = []
        for t, src in zip(drop_t.tolist(), drop_src.tolist()):
            events.append((t, 0, src, 0.0))
        for t, src, sig in zip(msg_t.tolist(), msg_src.tolist(),
                               msg_sigma.tolist()):
            events.append((t, 1, src, sig))
        for t in pause_ts.tolist():
            events.append((t, 2, -1, 0.0))
        events.sort(key=lambda e: (e[0], e[1]))
        for t, kind, src, val in events:
            if kind == 0:
                sw.obs.event("drop", t, engine=sw.obs_engine, node=sw.cpid,
                             flow=int(src), value=Lf)
            elif kind == 1:
                sw.obs.event("bcn", t, engine=sw.obs_engine, node=sw.cpid,
                             flow=int(src), value=val)
            else:
                sw.obs.event("pause_on", t, engine=sw.obs_engine,
                             node=sw.cpid, value=sw.pause_duration)
                sw.obs.event("pause_off", t + sw.pause_duration,
                             engine=sw.obs_engine, node=sw.cpid)

"""Backend selection for the compiled kernels.

Three tiers, tried in order (override with ``REPRO_KERNEL_BACKEND`` set
to ``auto`` / ``numba`` / ``cffi`` / ``numpy``):

``numba``
    :func:`numba.njit`-compiled versions of the pure-python bodies in
    :mod:`repro.kernels._scalar` (``cache=True``, so the second process
    start skips compilation).  Installed via the ``[compiled]`` extra.
``cffi``
    The out-of-line C extension from :mod:`repro.kernels._cbuild` — a
    line-for-line C translation of the same bodies, compiled once into
    a content-addressed cache directory.  Used automatically when numba
    is absent but a C compiler + cffi are available.
``numpy``
    No compiled code at all.  The engine wrappers detect
    ``backend.compiled is False`` and delegate to the existing
    numpy-vectorized batched implementations, so ``engine="compiled"``
    degrades gracefully to bit-identical batched behaviour.

Whichever tier wins, the one-time warm-up cost (JIT compilation or the
C build) is accumulated in ``warmup_seconds`` and surfaced to the
observability layer by :func:`consume_warmup_span`, so ``repro
profile`` separates first-call compilation from steady-state kernel
time.
"""

from __future__ import annotations

import os
import time

import numpy as np

from . import _scalar

__all__ = [
    "KernelBackend",
    "available_backends",
    "consume_warmup_span",
    "get_backend",
    "reset_backend",
]

#: obs span name under which warm-up/compile time is recorded.
WARMUP_SPAN = "kernels.jit_warmup"


class KernelBackend:
    """Uniform facade over one backend tier.

    Exposes the kernel entry points with the exact python signatures of
    :mod:`repro.kernels._scalar`; ``compiled`` tells callers whether the
    calls actually run native code (when False, engines should prefer
    their existing vectorized paths instead).
    """

    name = "numpy"
    compiled = False
    #: One-time compile/warm-up cost paid constructing this backend.
    warmup_seconds = 0.0

    # Pure-python fallbacks: semantically exact but interpreted — only
    # used directly by the differential tests, never by the engines.
    merge_trains = staticmethod(_scalar.merge_trains)
    pacing_plan = staticmethod(_scalar.pacing_plan)
    pacing_commit = staticmethod(_scalar.pacing_commit)
    owed_repay = staticmethod(_scalar.owed_repay)
    packet_plan = staticmethod(_scalar.packet_plan)
    packet_commit = staticmethod(_scalar.packet_commit)
    packet_scalar = staticmethod(_scalar.packet_scalar)
    apply_messages = staticmethod(_scalar.apply_messages)
    fluid_rows = staticmethod(_scalar.fluid_rows)
    next_nonempty = staticmethod(_scalar.next_nonempty)

    # -- bound fast-call closures -----------------------------------------
    #
    # The packet loop calls the same kernels every window on the same
    # preallocated arrays.  ``bind_*`` returns a closure with the
    # persistent arrays (and per-run constants) already captured, so the
    # per-window call passes only what actually changes.  The base
    # implementations simply close over the generic entry points; the
    # cffi tier overrides them to also precompute the pointer casts.
    # Callers must re-bind after replacing any captured array object.

    def bind_pacing_plan(self, next_emit, paused, active, remaining, gaps,
                         first, counts):
        fn = self.pacing_plan

        def call(until):
            return fn(next_emit, paused, active, remaining, gaps, until,
                      first, counts)

        return call

    def bind_pacing_commit(self, srcs, first, gaps, counts, any_finite,
                           next_emit, remaining, active, frames_acc,
                           comm, fin_idx, fin_t):
        fn = self.pacing_commit

        def call(m_committed):
            return fn(srcs, m_committed, first, gaps, counts, any_finite,
                      next_emit, remaining, active, frames_acc, comm,
                      fin_idx, fin_t)

        return call

    def bind_merge_trains(self, first, gaps, counts, assoc,
                          out_t, out_src, out_assoc):
        fn = self.merge_trains

        def call(d):
            return fn(first, gaps, counts, assoc, d, out_t, out_src,
                      out_assoc)

        return call

    def bind_owed_repay(self, owed, next_emit, rates):
        fn = self.owed_repay

        def call(until, nxt):
            return fn(owed, next_emit, rates, until, nxt)

        return call

    def bind_apply_messages(self, mode, gi, gd, ru, max_dt, d, rate,
                            last_update, assoc8, updates, min_rate,
                            line_rate, owed, out_d):
        fn = self.apply_messages

        def call(msg_t, msg_src, msg_fb, msg_sigma, t_commit):
            return fn(msg_t, msg_src, msg_fb, msg_sigma, mode, gi, gd,
                      ru, max_dt, d, t_commit, rate, last_update, assoc8,
                      updates, min_rate, line_rate, owed, out_d)

        return call

    def bind_packet_plan(self, L, B, q_sc, pause_horizon, starts,
                         completions, q_bits, out_d, out_i):
        fn = self.packet_plan

        def call(times, t_start, t_end, ssvc, n_res, next_free, inflight,
                 frozen_until, pause_rearm_at):
            return fn(times, t_start, t_end, ssvc, L, B, q_sc, n_res,
                      next_free, inflight, frozen_until, pause_rearm_at,
                      pause_horizon, starts, completions, q_bits,
                      out_d, out_i)

        return call

    def bind_packet_commit(self, pm, q0, w, pos_only, req_assoc,
                           sigma_unit, full_scale, q_bits, starts,
                           completions, msg_t, msg_src, msg_sigma,
                           msg_qoff, msg_dq, msg_fb, samp_t, samp_sigma,
                           out_d, out_i):
        fn = self.packet_commit

        def call(m_eff, n_res, times, srcs, assoc, t_start, t_commit,
                 prev_inflight, prev_next_free, uniforms, use_rng,
                 interval, since, q_prev):
            return fn(m_eff, n_res, times, srcs, assoc, q_bits, starts,
                      completions, t_start, t_commit, prev_inflight,
                      prev_next_free, uniforms, use_rng, pm, interval,
                      since, q_prev, q0, w, pos_only, req_assoc,
                      sigma_unit, full_scale, msg_t, msg_src, msg_sigma,
                      msg_qoff, msg_dq, msg_fb, samp_t, samp_sigma,
                      out_d, out_i)

        return call

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KernelBackend {self.name} compiled={self.compiled}>"


class _NumbaKernels(KernelBackend):
    """:func:`numba.njit` compilation of the ``_scalar`` bodies."""

    name = "numba"
    compiled = True

    def __init__(self) -> None:
        import numba

        t0 = time.perf_counter()  # repro-lint: disable=wall-clock -- jit warm-up span timing
        jit = numba.njit(cache=True, fastmath=False)
        # The kernel bodies call the module-level helpers by global name;
        # nopython compilation requires those globals to already be
        # dispatchers, so swap them in place (the jitted helpers return
        # the same float64 values, so the pure-python callers that share
        # these globals are unaffected semantically).
        _scalar._fluid_refine = jit(_scalar._fluid_refine)
        _scalar._round_half_even = jit(_scalar._round_half_even)
        self.merge_trains = jit(_scalar.merge_trains)
        self.pacing_plan = jit(_scalar.pacing_plan)
        self.pacing_commit = jit(_scalar.pacing_commit)
        self.owed_repay = jit(_scalar.owed_repay)
        self.packet_plan = jit(_scalar.packet_plan)
        self.packet_commit = jit(_scalar.packet_commit)
        self.packet_scalar = jit(_scalar.packet_scalar)
        self.apply_messages = jit(_scalar.apply_messages)
        self.fluid_rows = jit(_scalar.fluid_rows)
        self.next_nonempty = jit(_scalar.next_nonempty)
        self._warm_up()
        self.warmup_seconds = time.perf_counter() - t0  # repro-lint: disable=wall-clock -- jit warm-up span timing

    def _warm_up(self) -> None:
        """Trigger compilation on empty inputs so later calls are hot."""
        f = np.zeros(0)
        i = np.zeros(0, dtype=np.int64)
        u8 = np.zeros(0, dtype=np.uint8)
        out_d = np.zeros(8)
        out_i = np.zeros(16, dtype=np.int64)
        self.merge_trains(f, f, i, u8, 0.0, f.copy(), i.copy(), u8.copy())
        z1f = np.zeros(1)
        z1i = np.zeros(1, dtype=np.int64)
        z1b = np.zeros(1, dtype=np.bool_)
        self.pacing_plan(z1f, z1f.copy(), z1b, z1f.copy(), np.ones(1),
                         0.0, z1f.copy(), z1i)
        self.pacing_commit(z1i, 0, z1f, np.ones(1), z1i.copy(), 0,
                           z1f.copy(), z1f.copy(), z1b.copy(), z1i.copy(),
                           z1i.copy(), z1i.copy(), z1f.copy())
        self.owed_repay(z1f, z1f.copy(), np.ones(1), 0.0, 0.0)
        self.packet_plan(
            f, 0.0, 1.0, 1.0, 1.0, 1.0, float("nan"), 0, 0.0, 0,
            -np.inf, np.inf, 0.0, f.copy(), f.copy(), f.copy(), out_d, out_i,
        )
        self.packet_commit(
            0, 0, f, i, u8, f, f, f, 0.0, 1.0, 0, 0.0, f, 0, 0.01, 100, 0,
            0.0, 1.0, 2.0, 0, 0, float("nan"), 32.0,
            f.copy(), i.copy(), f.copy(), f.copy(), f.copy(), f.copy(),
            f.copy(), f.copy(), out_d, out_i,
        )
        self.packet_scalar(
            f, i, u8, f, 0, 0.01, 100, 0, 0.0, 1.0, 1.0, 1.0, 10.0,
            float("nan"), 1.0, 2.0, 0, 0, float("nan"), 32.0, 0, 0.0, 0,
            -np.inf, np.inf, 1e-3, 0.0, 0.0,
            f.copy(), i.copy(), f.copy(), f.copy(), f.copy(), f.copy(),
            f.copy(), f.copy(), f.copy(), i.copy(), f.copy(), f.copy(),
            f.copy(), out_d, out_i,
        )
        self.apply_messages(
            f, i, f, f, 0, 0.1, 0.01, 1.0, -1.0, 0.0, 1.0,
            f.copy(), f.copy(), u8.copy(), i.copy(), f.copy(), f.copy(),
            f.copy(), out_d,
        )
        tg = np.linspace(0.0, 1.0, 3)
        z1 = np.zeros(1)
        self.fluid_rows(
            z1, z1.copy(), tg, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, -1.0,
            0, 0, 4, 1e-5, 1.0,
            np.zeros((3, 1)), np.zeros((3, 1)),
            np.zeros(1, dtype=np.int8), np.zeros(1, dtype=np.int64),
            z1.copy(), z1.copy(), z1.copy(),
            4, np.zeros(1, dtype=np.int64), np.zeros(4),
            np.zeros(4, dtype=np.int8), np.zeros(4), np.zeros(4), out_i,
        )
        self.next_nonempty(np.zeros(4, dtype=np.int64), 0)


def _ptr(ffi, arr, ctype):
    return ffi.cast(ctype, ffi.from_buffer(arr))


class _CffiKernels(KernelBackend):
    """Wrappers over the cffi-compiled C translation."""

    name = "cffi"
    compiled = True

    #: Entries kept in the pointer cache before it is flushed wholesale.
    _PCACHE_LIMIT = 1024

    def __init__(self) -> None:
        from . import _cbuild

        lib, ffi = _cbuild.load_cffi_kernels()
        self._lib = lib
        self._ffi = ffi
        # ``ffi.from_buffer`` + ``ffi.cast`` cost ~0.5 µs per argument,
        # which dominates the per-window overhead once the kernels are
        # fast.  The engines pass the same preallocated scratch buffers
        # on every call, so cache the cast per (id, ctype).  Each entry
        # keeps a strong reference to its array, which both guarantees
        # the id cannot be recycled while the entry lives and keeps the
        # cached pointer valid; the cache is flushed when transient
        # arrays (slices, RNG draws) grow it past ``_PCACHE_LIMIT``.
        self._pcache: dict = {}
        self.warmup_seconds = _cbuild.build_seconds

    # -- pointer helpers --------------------------------------------------

    def _ptr(self, arr, ctype):
        key = (id(arr), ctype)
        ent = self._pcache.get(key)
        if ent is not None:
            return ent[1]
        p = self._ffi.cast(ctype, self._ffi.from_buffer(arr))
        if len(self._pcache) >= self._PCACHE_LIMIT:
            self._pcache.clear()
        self._pcache[key] = (arr, p)
        return p

    def _d(self, arr):
        return self._ptr(arr, "double *")

    def _f(self, arr):
        return self._ptr(arr, "float *")

    def _i(self, arr):
        return self._ptr(arr, "int64_t *")

    def _u8(self, arr):
        return self._ptr(arr, "uint8_t *")

    def _i8(self, arr):
        return self._ptr(arr, "int8_t *")

    # -- kernels ----------------------------------------------------------

    def merge_trains(self, first, gaps, counts, assoc, d, out_t, out_src,
                     out_assoc):
        return int(self._lib.k_merge_trains(
            first.shape[0], self._d(first), self._d(gaps), self._i(counts),
            self._u8(assoc), float(d), self._d(out_t), self._i(out_src),
            self._u8(out_assoc),
        ))

    def pacing_plan(self, next_emit, paused, active, remaining, gaps,
                    until, first, counts):
        return int(self._lib.k_pacing_plan(
            next_emit.shape[0], self._d(next_emit), self._d(paused),
            self._u8(active), self._d(remaining), self._d(gaps),
            float(until), self._d(first), self._i(counts),
        ))

    def pacing_commit(self, srcs, m_committed, first, gaps, counts,
                      any_finite, next_emit, remaining, active, frames_acc,
                      comm, fin_idx, fin_t):
        return int(self._lib.k_pacing_commit(
            next_emit.shape[0], int(m_committed), self._i(srcs),
            self._d(first), self._d(gaps), self._i(counts),
            int(any_finite), self._d(next_emit), self._d(remaining),
            self._u8(active), self._i(frames_acc), self._i(comm),
            self._i(fin_idx), self._d(fin_t),
        ))

    def owed_repay(self, owed, next_emit, rates, until, nxt):
        self._lib.k_owed_repay(
            owed.shape[0], self._d(owed), self._d(next_emit),
            self._d(rates), float(until), float(nxt),
        )

    def packet_plan(self, times, t_start, t_end, ssvc, L, B, q_sc, n_res,
                    next_free, inflight, frozen_until, pause_rearm_at,
                    pause_horizon, starts, completions, q_bits, out_d, out_i):
        self._lib.k_packet_plan(
            times.shape[0], self._d(times), float(t_start), float(t_end),
            float(ssvc), float(L), float(B), float(q_sc), int(n_res),
            float(next_free), int(inflight), float(frozen_until),
            float(pause_rearm_at), float(pause_horizon), self._d(starts),
            self._d(completions), self._d(q_bits), self._d(out_d),
            self._i(out_i),
        )

    def packet_commit(self, m_eff, n_res, times, srcs, assoc, q_bits, starts,
                      completions, t_start, t_commit, prev_inflight,
                      prev_next_free, uniforms, use_rng, pm, interval, since,
                      q_prev, q0, w, pos_only, req_assoc, sigma_unit,
                      full_scale, msg_t, msg_src, msg_sigma, msg_qoff, msg_dq,
                      msg_fb, samp_t, samp_sigma, out_d, out_i):
        self._lib.k_packet_commit(
            int(m_eff), int(n_res), self._d(times), self._i(srcs),
            self._u8(assoc), self._d(q_bits), self._d(starts),
            self._d(completions), float(t_start), float(t_commit),
            int(prev_inflight), float(prev_next_free), self._d(uniforms),
            int(use_rng), float(pm), int(interval), int(since),
            float(q_prev), float(q0), float(w), int(pos_only),
            int(req_assoc), float(sigma_unit), float(full_scale),
            self._d(msg_t), self._i(msg_src), self._d(msg_sigma),
            self._d(msg_qoff), self._d(msg_dq), self._d(msg_fb),
            self._d(samp_t), self._d(samp_sigma), self._d(out_d),
            self._i(out_i),
        )

    def packet_scalar(self, times, srcs, assoc, uniforms, use_rng, pm,
                      interval, since, t_start, t_end, ssvc, L, B, q_sc, q0,
                      w, pos_only, req_assoc, sigma_unit, full_scale, backlog,
                      next_free0, inflight, frozen_until, pause_rearm_at,
                      pause_duration, pause_horizon, q_prev, msg_t, msg_src,
                      msg_sigma, msg_qoff, msg_dq, msg_fb, samp_t, samp_sigma,
                      drop_t, drop_src, acc_arrivals, starts_out, pause_ts,
                      out_d, out_i):
        self._lib.k_packet_scalar(
            times.shape[0], self._d(times), self._i(srcs), self._u8(assoc),
            self._d(uniforms), int(use_rng), float(pm), int(interval),
            int(since), float(t_start), float(t_end), float(ssvc), float(L),
            float(B), float(q_sc), float(q0), float(w), int(pos_only),
            int(req_assoc), float(sigma_unit), float(full_scale),
            int(backlog), float(next_free0), int(inflight),
            float(frozen_until), float(pause_rearm_at), float(pause_duration),
            float(pause_horizon), float(q_prev), self._d(msg_t),
            self._i(msg_src), self._d(msg_sigma), self._d(msg_qoff),
            self._d(msg_dq), self._d(msg_fb), self._d(samp_t),
            self._d(samp_sigma), self._d(drop_t), self._i(drop_src),
            self._d(acc_arrivals), self._d(starts_out), self._d(pause_ts),
            self._d(out_d), self._i(out_i),
        )

    def apply_messages(self, msg_t, msg_src, msg_fb, msg_sigma, mode, gi, gd,
                       ru, max_dt, d, t_commit, rate, last_update, assoc8,
                       updates, min_rate, line_rate, owed, out_d):
        self._lib.k_apply_messages(
            msg_t.shape[0], self._d(msg_t), self._i(msg_src),
            self._d(msg_fb), self._d(msg_sigma), int(mode), float(gi),
            float(gd), float(ru), float(max_dt), float(d), float(t_commit),
            self._d(rate), self._d(last_update), self._u8(assoc8),
            self._i(updates), self._d(min_rate), self._d(line_rate),
            self._d(owed), self._d(out_d),
        )

    def fluid_rows(self, x0, y0, t_grid, a, b, cap, k, q0, x_full, x_empty,
                   linear_dec, physical, max_switches, conv_rtol, t_max,
                   xs, ys, reason, switches, t_end, x_end, y_end,
                   ev_cap, n_events, ev_t, ev_kind, ev_x, ev_y, out_i):
        if x0.dtype == np.float32:
            fn, cast = self._lib.k_fluid_f32, self._f
        else:
            fn, cast = self._lib.k_fluid_f64, self._d
        fn(
            x0.shape[0], t_grid.shape[0] - 1, self._d(t_grid), cast(x0),
            cast(y0), float(a), float(b), float(cap), float(k), float(q0),
            float(x_full), float(x_empty), int(linear_dec), int(physical),
            int(max_switches), float(conv_rtol), float(t_max), cast(xs),
            cast(ys), self._i8(reason), self._i(switches), self._d(t_end),
            self._d(x_end), self._d(y_end), int(ev_cap), self._i(n_events),
            self._d(ev_t), self._i8(ev_kind), self._d(ev_x), self._d(ev_y),
            self._i(out_i),
        )

    def next_nonempty(self, counts, cursor):
        return int(self._lib.k_next_nonempty(
            self._i(counts), int(cursor), counts.shape[0]))

    # -- bound fast-call closures (pointer casts hoisted out of the loop) --
    #
    # Each closure keeps a reference to the arrays it captured (``keep``)
    # so the cached pointers can never outlive their buffers, even if
    # the pointer cache is flushed.

    def bind_pacing_plan(self, next_emit, paused, active, remaining, gaps,
                         first, counts):
        lib = self._lib
        n = next_emit.shape[0]
        keep = (next_emit, paused, active, remaining, gaps, first, counts)
        p_ne, p_pa = self._d(next_emit), self._d(paused)
        p_ac, p_re = self._u8(active), self._d(remaining)
        p_ga, p_fi, p_co = self._d(gaps), self._d(first), self._i(counts)

        def call(until, _keep=keep):
            return lib.k_pacing_plan(n, p_ne, p_pa, p_ac, p_re, p_ga,
                                     until, p_fi, p_co)

        return call

    def bind_pacing_commit(self, srcs, first, gaps, counts, any_finite,
                           next_emit, remaining, active, frames_acc,
                           comm, fin_idx, fin_t):
        lib = self._lib
        n = next_emit.shape[0]
        keep = (srcs, first, gaps, counts, next_emit, remaining, active,
                frames_acc, comm, fin_idx, fin_t)
        p_sr = self._i(srcs)
        p_fi, p_ga, p_co = self._d(first), self._d(gaps), self._i(counts)
        p_ne, p_re = self._d(next_emit), self._d(remaining)
        p_ac, p_fr = self._u8(active), self._i(frames_acc)
        p_cm, p_fx, p_ft = self._i(comm), self._i(fin_idx), self._d(fin_t)
        af = int(any_finite)

        def call(m_committed, _keep=keep):
            return lib.k_pacing_commit(n, m_committed, p_sr, p_fi, p_ga,
                                       p_co, af, p_ne, p_re, p_ac, p_fr,
                                       p_cm, p_fx, p_ft)

        return call

    def bind_merge_trains(self, first, gaps, counts, assoc,
                          out_t, out_src, out_assoc):
        lib = self._lib
        n = first.shape[0]
        keep = (first, gaps, counts, assoc, out_t, out_src, out_assoc)
        p_fi, p_ga, p_co = self._d(first), self._d(gaps), self._i(counts)
        p_as = self._u8(assoc)
        p_ot, p_os, p_oa = (self._d(out_t), self._i(out_src),
                            self._u8(out_assoc))

        def call(d, _keep=keep):
            return lib.k_merge_trains(n, p_fi, p_ga, p_co, p_as, d,
                                      p_ot, p_os, p_oa)

        return call

    def bind_owed_repay(self, owed, next_emit, rates):
        lib = self._lib
        n = owed.shape[0]
        keep = (owed, next_emit, rates)
        p_ow, p_ne, p_ra = (self._d(owed), self._d(next_emit),
                            self._d(rates))

        def call(until, nxt, _keep=keep):
            lib.k_owed_repay(n, p_ow, p_ne, p_ra, until, nxt)

        return call

    def bind_apply_messages(self, mode, gi, gd, ru, max_dt, d, rate,
                            last_update, assoc8, updates, min_rate,
                            line_rate, owed, out_d):
        lib = self._lib
        _d = self._d
        _i = self._i
        keep = (rate, last_update, assoc8, updates, min_rate, line_rate,
                owed, out_d)
        p_ra, p_lu = _d(rate), _d(last_update)
        p_as, p_up = self._u8(assoc8), _i(updates)
        p_mi, p_li = _d(min_rate), _d(line_rate)
        p_ow, p_od = _d(owed), _d(out_d)
        mode_i, max_dt_f = int(mode), float(max_dt)
        gi_f, gd_f, ru_f, d_f = float(gi), float(gd), float(ru), float(d)

        def call(msg_t, msg_src, msg_fb, msg_sigma, t_commit, _keep=keep):
            lib.k_apply_messages(
                msg_t.shape[0], _d(msg_t), _i(msg_src), _d(msg_fb),
                _d(msg_sigma), mode_i, gi_f, gd_f, ru_f, max_dt_f, d_f,
                t_commit, p_ra, p_lu, p_as, p_up, p_mi, p_li, p_ow, p_od,
            )

        return call

    def bind_packet_plan(self, L, B, q_sc, pause_horizon, starts,
                         completions, q_bits, out_d, out_i):
        lib = self._lib
        _d = self._d
        keep = (starts, completions, q_bits, out_d, out_i)
        p_st, p_cp, p_qb = _d(starts), _d(completions), _d(q_bits)
        p_od, p_oi = _d(out_d), self._i(out_i)
        L_f, B_f = float(L), float(B)
        q_sc_f, hor_f = float(q_sc), float(pause_horizon)

        def call(times, t_start, t_end, ssvc, n_res, next_free, inflight,
                 frozen_until, pause_rearm_at, _keep=keep):
            lib.k_packet_plan(
                times.shape[0], _d(times), t_start, t_end, ssvc, L_f,
                B_f, q_sc_f, n_res, next_free, inflight, frozen_until,
                pause_rearm_at, hor_f, p_st, p_cp, p_qb, p_od, p_oi,
            )

        return call

    def bind_packet_commit(self, pm, q0, w, pos_only, req_assoc,
                           sigma_unit, full_scale, q_bits, starts,
                           completions, msg_t, msg_src, msg_sigma,
                           msg_qoff, msg_dq, msg_fb, samp_t, samp_sigma,
                           out_d, out_i):
        lib = self._lib
        _d = self._d
        _i = self._i
        _u8 = self._u8
        keep = (q_bits, starts, completions, msg_t, msg_src, msg_sigma,
                msg_qoff, msg_dq, msg_fb, samp_t, samp_sigma, out_d, out_i)
        p_qb, p_st, p_cp = _d(q_bits), _d(starts), _d(completions)
        p_mt, p_ms, p_mg = _d(msg_t), _i(msg_src), _d(msg_sigma)
        p_mq, p_md, p_mf = _d(msg_qoff), _d(msg_dq), _d(msg_fb)
        p_st2, p_ss = _d(samp_t), _d(samp_sigma)
        p_od, p_oi = _d(out_d), _i(out_i)
        pm_f, q0_f, w_f = float(pm), float(q0), float(w)
        po_i, ra_i = int(pos_only), int(req_assoc)
        su_f, fs_f = float(sigma_unit), float(full_scale)

        def call(m_eff, n_res, times, srcs, assoc, t_start, t_commit,
                 prev_inflight, prev_next_free, uniforms, use_rng,
                 interval, since, q_prev, _keep=keep):
            lib.k_packet_commit(
                m_eff, n_res, _d(times), _i(srcs), _u8(assoc), p_qb,
                p_st, p_cp, t_start, t_commit, prev_inflight,
                prev_next_free, _d(uniforms), use_rng, pm_f, interval,
                since, q_prev, q0_f, w_f, po_i, ra_i, su_f, fs_f,
                p_mt, p_ms, p_mg, p_mq, p_md, p_mf, p_st2, p_ss,
                p_od, p_oi,
            )

        return call


_BACKEND: KernelBackend | None = None
_WARMUP_REPORTED = False


def _select(choice: str) -> KernelBackend:
    if choice in ("auto", "numba"):
        try:
            return _NumbaKernels()
        except Exception:
            if choice == "numba":
                raise
    if choice in ("auto", "cffi"):
        try:
            return _CffiKernels()
        except Exception:
            if choice == "cffi":
                raise
    return KernelBackend()


def get_backend() -> KernelBackend:
    """Return the process-wide kernel backend (built on first use)."""
    global _BACKEND
    if _BACKEND is None:
        choice = os.environ.get("REPRO_KERNEL_BACKEND", "auto").lower()
        if choice not in ("auto", "numba", "cffi", "numpy"):
            raise ValueError(
                f"REPRO_KERNEL_BACKEND={choice!r}: expected auto, numba, "
                "cffi, or numpy"
            )
        _BACKEND = KernelBackend() if choice == "numpy" else _select(choice)
    return _BACKEND


def reset_backend() -> None:
    """Drop the cached backend (tests switch tiers via the env var)."""
    global _BACKEND, _WARMUP_REPORTED
    _BACKEND = None
    _WARMUP_REPORTED = False


def available_backends() -> list[str]:
    """Names of the tiers importable in this environment (cheap probe)."""
    names = []
    try:
        import numba  # noqa: F401

        names.append("numba")
    except Exception:
        pass
    try:
        import cffi  # noqa: F401

        names.append("cffi")
    except Exception:
        pass
    names.append("numpy")
    return names


def consume_warmup_span(obs) -> None:
    """Record the one-time JIT/compile cost as a ``repro.obs`` span.

    Called by the engines right after their first kernel use; the span
    is emitted once per process so ``repro profile`` attributes warm-up
    separately from steady-state kernel time.
    """
    global _WARMUP_REPORTED
    if obs is None or not getattr(obs, "enabled", False) or _WARMUP_REPORTED:
        return
    backend = get_backend()
    if backend.warmup_seconds > 0.0:
        obs.add_span(f"{WARMUP_SPAN}.{backend.name}",
                     backend.warmup_seconds)
    _WARMUP_REPORTED = True

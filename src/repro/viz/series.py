"""Series export: CSV writing and downsampling for figure data.

Every experiment emits its figure as named columns; these helpers write
them to CSV (the artefact a plotting environment would consume) and
thin dense trajectories for readable logs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

import numpy as np

__all__ = ["write_csv", "downsample", "format_table"]


def write_csv(path: str | Path, columns: Mapping[str, np.ndarray]) -> Path:
    """Write named, equal-length columns to ``path`` as CSV."""
    if not columns:
        raise ValueError("no columns given")
    arrays = {name: np.asarray(col).ravel() for name, col in columns.items()}
    lengths = {name: arr.size for name, arr in arrays.items()}
    if len(set(lengths.values())) != 1:
        raise ValueError(f"column lengths differ: {lengths}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = list(arrays)
    with path.open("w") as fh:
        fh.write(",".join(names) + "\n")
        for row in zip(*(arrays[n] for n in names)):
            fh.write(",".join(f"{v:.10g}" for v in row) + "\n")
    return path


def downsample(*arrays: np.ndarray, max_points: int = 500) -> tuple[np.ndarray, ...]:
    """Thin parallel arrays to at most ``max_points`` (keeping endpoints)."""
    if not arrays:
        raise ValueError("no arrays given")
    n = np.asarray(arrays[0]).size
    for arr in arrays:
        if np.asarray(arr).size != n:
            raise ValueError("arrays must be parallel")
    if n <= max_points:
        return tuple(np.asarray(a) for a in arrays)
    idx = np.unique(np.linspace(0, n - 1, max_points).astype(int))
    return tuple(np.asarray(a)[idx] for a in arrays)


def format_table(headers: list[str], rows: list[list], *, floatfmt: str = ".4g") -> str:
    """Plain-text table with aligned columns."""

    def fmt(value) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in str_rows]
    return "\n".join(lines)

"""ASCII plotting and CSV series export (no plotting stack required)."""

from .ascii import AsciiCanvas, line_plot, phase_plot
from .series import downsample, format_table, write_csv

__all__ = [
    "AsciiCanvas",
    "phase_plot",
    "line_plot",
    "write_csv",
    "downsample",
    "format_table",
]

"""ASCII rendering of phase planes and time series.

The execution environment has no plotting stack, so the experiment
harness renders figures as character rasters: good enough to eyeball a
spiral, a limit cycle or a queue trace in a terminal or a log file, and
deliberately dependency-free.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["AsciiCanvas", "phase_plot", "line_plot"]


class AsciiCanvas:
    """A character raster with data-space coordinates."""

    def __init__(
        self,
        width: int = 72,
        height: int = 24,
        *,
        x_range: tuple[float, float],
        y_range: tuple[float, float],
    ) -> None:
        if width < 8 or height < 4:
            raise ValueError("canvas too small")
        x_lo, x_hi = x_range
        y_lo, y_hi = y_range
        if not (x_hi > x_lo and y_hi > y_lo):
            raise ValueError("ranges must be non-degenerate")
        self.width = width
        self.height = height
        self.x_range = (x_lo, x_hi)
        self.y_range = (y_lo, y_hi)
        self._cells = [[" "] * width for _ in range(height)]

    def _to_cell(self, x: float, y: float) -> tuple[int, int] | None:
        x_lo, x_hi = self.x_range
        y_lo, y_hi = self.y_range
        if not (x_lo <= x <= x_hi and y_lo <= y <= y_hi):
            return None
        col = int((x - x_lo) / (x_hi - x_lo) * (self.width - 1))
        row = int((y_hi - y) / (y_hi - y_lo) * (self.height - 1))
        return row, col

    def plot(self, xs, ys, marker: str = "*") -> None:
        """Scatter points; off-canvas points are silently clipped."""
        for x, y in zip(np.asarray(xs, float), np.asarray(ys, float)):
            if math.isnan(x) or math.isnan(y):
                continue
            cell = self._to_cell(float(x), float(y))
            if cell is not None:
                row, col = cell
                self._cells[row][col] = marker

    def hline(self, y: float, marker: str = "-") -> None:
        """Horizontal guide line at data ordinate ``y``."""
        cell = self._to_cell(self.x_range[0], y)
        if cell is None:
            return
        row = cell[0]
        for col in range(self.width):
            if self._cells[row][col] == " ":
                self._cells[row][col] = marker

    def vline(self, x: float, marker: str = "|") -> None:
        """Vertical guide line at data abscissa ``x``."""
        cell = self._to_cell(x, self.y_range[1])
        if cell is None:
            return
        col = cell[1]
        for row in range(self.height):
            if self._cells[row][col] == " ":
                self._cells[row][col] = marker

    def line(self, slope: float, intercept: float = 0.0, marker: str = ".") -> None:
        """Draw ``y = slope * x + intercept`` across the canvas."""
        xs = np.linspace(self.x_range[0], self.x_range[1], self.width * 2)
        self.plot(xs, slope * xs + intercept, marker)

    def render(self, *, title: str | None = None) -> str:
        """Return the raster as a framed multi-line string."""
        border = "+" + "-" * self.width + "+"
        lines = []
        if title:
            lines.append(title)
        lines.append(border)
        lines += ["|" + "".join(row) + "|" for row in self._cells]
        lines.append(border)
        lines.append(
            f"x: [{self.x_range[0]:.4g}, {self.x_range[1]:.4g}]  "
            f"y: [{self.y_range[0]:.4g}, {self.y_range[1]:.4g}]"
        )
        return "\n".join(lines)


def _padded_range(values: np.ndarray, pad: float = 0.08) -> tuple[float, float]:
    lo, hi = float(np.min(values)), float(np.max(values))
    if hi == lo:
        span = abs(hi) if hi else 1.0
        return lo - span * pad, hi + span * pad
    span = hi - lo
    return lo - span * pad, hi + span * pad


def phase_plot(
    x: np.ndarray,
    y: np.ndarray,
    *,
    switching_k: float | None = None,
    title: str | None = None,
    width: int = 72,
    height: int = 24,
) -> str:
    """Render a phase trajectory, with axes and the switching line."""
    x = np.asarray(x, float)
    y = np.asarray(y, float)
    canvas = AsciiCanvas(
        width, height, x_range=_padded_range(x), y_range=_padded_range(y)
    )
    canvas.hline(0.0)
    canvas.vline(0.0)
    if switching_k is not None and switching_k > 0:
        canvas.line(-1.0 / switching_k, marker=":")
    canvas.plot(x, y)
    return canvas.render(title=title)


def line_plot(
    t: np.ndarray,
    v: np.ndarray,
    *,
    reference: float | None = None,
    title: str | None = None,
    width: int = 72,
    height: int = 16,
) -> str:
    """Render a time series, optionally with a reference guide line."""
    t = np.asarray(t, float)
    v = np.asarray(v, float)
    v_lo, v_hi = _padded_range(v)
    if reference is not None:
        v_lo = min(v_lo, reference - abs(reference) * 0.05)
        v_hi = max(v_hi, reference + abs(reference) * 0.05)
    canvas = AsciiCanvas(
        width, height, x_range=_padded_range(t, 0.0), y_range=(v_lo, v_hi)
    )
    if reference is not None:
        canvas.hline(reference, "=")
    canvas.plot(t, v)
    return canvas.render(title=title)

"""Entry point: ``python -m repro <command>`` (see :mod:`repro.cli`)."""

import sys

from .cli import main

sys.exit(main())

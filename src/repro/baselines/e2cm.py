"""E2CM — Extended Ethernet Congestion Management (IBM Zurich proposal).

E2CM combines BCN's reactive queue feedback with FERA-style explicit
rate computation: the switch keeps per-flow arrival accounting and the
BCN message additionally carries a rate recommendation, so sources
converge to the fair share in a few control actions instead of hunting
via AIMD.  Implemented as documented in the 802.1 meeting slides, with
one simplification recorded here: the proposal's per-flow "probe"
frames are folded into the sampled-frame feedback path (same
information, same direction; the probe's extra reverse-path bandwidth
is accounted in ``control_messages``).

Control law at the reaction point on receiving an E2CM message::

    r <- (1 - blend) * r_bcn  +  blend * r_explicit

where ``r_bcn`` is the BCN AIMD update of eq. (2) applied to the
current rate and ``r_explicit`` is the switch's fair-share estimate.
``blend = 0`` degenerates to pure BCN, ``blend = 1`` to pure explicit
rate control.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulation.engine import Simulator
from ..simulation.frames import EthernetFrame
from ..simulation.link import Link
from .common import BaselineResult, DumbbellRun, PacedSource, QueuedPort

__all__ = ["E2CMParams", "E2CMPort", "E2CMScheme", "run_e2cm_dumbbell"]


@dataclass(frozen=True)
class E2CMParams:
    """E2CM configuration (BCN gains + explicit-rate blending)."""

    capacity: float
    n_flows: int
    q0: float
    buffer_bits: float
    w: float = 2.0
    pm: float = 0.01
    gi: float = 4.0
    gd: float = 1.0 / 128.0
    ru: float = 8e6
    fb_bits: int = 6
    blend: float = 0.5
    measurement_interval: float = 1e-3
    min_rate: float = 1e5

    def __post_init__(self) -> None:
        if not 0.0 <= self.blend <= 1.0:
            raise ValueError("blend must lie in [0, 1]")


@dataclass(frozen=True)
class E2CMMessage:
    """BCN-style feedback augmented with an explicit rate."""

    da: int
    fb: float  #: quantized sigma, as in BCN
    explicit_rate: float  #: switch's fair-share estimate for this flow
    sent_at: float


class E2CMPort(QueuedPort):
    """E2CM congestion point: BCN sampling + per-flow rate accounting."""

    def __init__(self, sim: Simulator, params: E2CMParams, forward) -> None:
        super().__init__(
            sim,
            capacity=params.capacity,
            buffer_bits=params.buffer_bits,
            forward=forward,
        )
        self.p = params
        self._sample_interval = max(1, round(1.0 / params.pm))
        self._arrivals = 0
        self._q_last = 0.0
        self._bits_in: dict[int, float] = {}
        self._fair_share = params.capacity / params.n_flows
        self.messages_sent = 0
        self._links: dict[int, Link] = {}
        self.on_arrival = self._arrival
        sim.schedule(params.measurement_interval, self._measure)

    def register_link(self, address: int, link: Link) -> None:
        self._links[address] = link

    def _measure(self) -> None:
        """Periodic fair-share estimate from per-flow accounting."""
        active = max(1, sum(1 for b in self._bits_in.values() if b > 0))
        backlog_drain = max(0.0, self.queue_bits - self.p.q0) / self.p.measurement_interval
        self._fair_share = max(
            self.p.min_rate, (self.capacity - backlog_drain) / active
        )
        self._bits_in.clear()
        self.sim.schedule(self.p.measurement_interval, self._measure)

    def _arrival(self, frame: EthernetFrame, accepted: bool) -> None:
        self._bits_in[frame.src] = (
            self._bits_in.get(frame.src, 0.0) + frame.size_bits
        )
        self._arrivals += 1
        if self._arrivals < self._sample_interval:
            return
        self._arrivals = 0
        q = self.queue_bits
        sigma = (self.p.q0 - q) - self.p.w * (q - self._q_last)
        self._q_last = q
        if sigma == 0:
            return
        unit = self.p.q0 / float(2 ** (self.p.fb_bits - 2))
        full = 2 ** (self.p.fb_bits - 1)
        fb = float(max(-full, min(full - 1, round(sigma / unit))))
        link = self._links.get(frame.src)
        if link is not None:
            link.transmit(
                E2CMMessage(frame.src, fb, self._fair_share, self.sim.now)
            )
            self.messages_sent += 1


class E2CMScheme:
    """Adapter wiring E2CM into the shared dumbbell harness."""

    def __init__(self, params: E2CMParams) -> None:
        self.p = params
        self.port: E2CMPort | None = None

    def make_port(self, sim: Simulator, forward) -> E2CMPort:
        self.port = E2CMPort(sim, self.p, forward)
        return self.port

    def attach_source(
        self, sim: Simulator, port: QueuedPort, source: PacedSource, delay: float
    ) -> None:
        assert isinstance(port, E2CMPort)
        p = self.p

        def on_message(msg: E2CMMessage) -> None:
            rate = source.rate
            if msg.fb > 0:
                r_bcn = rate + p.gi * p.ru * msg.fb
            elif msg.fb < 0:
                r_bcn = rate * max(1.0 + p.gd * msg.fb, 0.0)
            else:
                r_bcn = rate
            blended = (1.0 - p.blend) * r_bcn + p.blend * msg.explicit_rate
            source.set_rate(max(blended, p.min_rate))

        port.register_link(source.address, Link(sim, delay, on_message))

    @property
    def control_messages(self) -> int:
        return self.port.messages_sent if self.port is not None else 0


def run_e2cm_dumbbell(
    params: E2CMParams,
    duration: float,
    *,
    initial_rate: float | None = None,
    frame_bits: int = 1500 * 8,
    propagation_delay: float = 0.5e-6,
) -> BaselineResult:
    """Run the E2CM dumbbell scenario."""
    if initial_rate is None:
        initial_rate = 1.5 * params.capacity / params.n_flows
    scheme = E2CMScheme(params)
    run = DumbbellRun(
        scheme,
        name="e2cm",
        capacity=params.capacity,
        n_flows=params.n_flows,
        initial_rate=initial_rate,
        frame_bits=frame_bits,
        propagation_delay=propagation_delay,
    )
    return run.run(duration)

"""QCN — Quantized Congestion Notification (802.1Qau proposal 4).

QCN keeps BCN's queue-based congestion measure but (a) quantizes the
feedback to a few bits and (b) sends **only negative** feedback; rate
*recovery* is driven autonomously at the reaction point by a byte
counter, through Fast Recovery then Active Increase stages (the design
later standardised in 802.1Qau).  Implemented here:

Congestion point (:class:`QCNPort`)
    Samples arriving frames every ``sample_interval_bits``; computes
    ``Fb = -(q_off + w * q_delta)`` with ``q_off = q - q0``; quantizes
    to ``fb_bits``; when ``Fb < 0`` sends a congestion notification
    message (CNM) carrying ``|Fb|`` to the sampled frame's source.

Reaction point (:class:`QCNRegulator`)
    On CNM: ``target_rate <- current_rate``, then
    ``current_rate *= (1 - Gd * |Fb|/Fb_max ... )`` — per the spec,
    ``current_rate *= (1 - Gd * qFb)`` with ``Gd * qFb_max = 1/2``.
    Recovery: every ``bc_limit`` bits sent counts one cycle; the first
    ``fast_recovery_cycles`` cycles average current toward target
    (Fast Recovery); afterwards target additionally grows by ``r_ai``
    (Active Increase).  The optional recovery *timer* of the spec is
    omitted (byte-counter recovery dominates at data-center speeds; the
    omission only slows recovery of nearly-silent sources).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulation.engine import Simulator
from ..simulation.frames import EthernetFrame
from ..simulation.link import Link
from .common import BaselineResult, DumbbellRun, PacedSource, QueuedPort

__all__ = ["QCNParams", "QCNPort", "QCNRegulator", "QCNScheme", "run_qcn_dumbbell"]


@dataclass(frozen=True)
class QCNParams:
    """QCN configuration (defaults follow the 802.1Qau discussions)."""

    capacity: float
    n_flows: int
    q0: float
    buffer_bits: float
    w: float = 2.0
    sample_interval_bits: float = 150e3 * 8  #: ~150 kB between samples
    fb_bits: int = 6
    gd: float = 1.0 / 128.0
    bc_limit_bits: float = 150e3 * 8  #: byte-counter cycle length
    fast_recovery_cycles: int = 5
    r_ai: float = 5e6  #: Active Increase step in bits/s
    min_rate: float = 1e5

    @property
    def fb_max(self) -> int:
        return 2 ** (self.fb_bits - 1)


@dataclass(frozen=True)
class CNMessage:
    """QCN congestion notification message (negative feedback only)."""

    da: int
    fb_quantized: int  #: |Fb| after quantization, in [1, fb_max]
    sent_at: float


class QCNRegulator:
    """QCN reaction point: multiplicative decrease + self-clocked recovery."""

    def __init__(self, params: QCNParams, source: PacedSource) -> None:
        self.p = params
        self.source = source
        self.target_rate = source.rate
        self._bits_since_cycle = 0.0
        self._cycles_since_congestion = 0

    def on_cnm(self, message: CNMessage) -> None:
        """Multiplicative decrease; resets the recovery state machine."""
        rate = self.source.rate
        self.target_rate = rate
        factor = 1.0 - self.p.gd * message.fb_quantized
        self.source.set_rate(max(rate * factor, self.p.min_rate))
        self._cycles_since_congestion = 0
        self._bits_since_cycle = 0.0

    def on_bits_sent(self, bits: float) -> None:
        """Byte-counter clock driving Fast Recovery / Active Increase."""
        self._bits_since_cycle += bits
        if self._bits_since_cycle < self.p.bc_limit_bits:
            return
        self._bits_since_cycle -= self.p.bc_limit_bits
        self._cycles_since_congestion += 1
        if self._cycles_since_congestion > self.p.fast_recovery_cycles:
            self.target_rate += self.p.r_ai  # Active Increase
        self.source.set_rate((self.source.rate + self.target_rate) / 2.0)


class QCNPort(QueuedPort):
    """QCN congestion point: quantized, negative-only feedback."""

    def __init__(self, sim: Simulator, params: QCNParams, forward) -> None:
        super().__init__(
            sim,
            capacity=params.capacity,
            buffer_bits=params.buffer_bits,
            forward=forward,
        )
        self.p = params
        self._bits_since_sample = 0.0
        self._q_old = 0.0
        self.cnm_sent = 0
        self._links: dict[int, Link] = {}
        self.on_arrival = self._arrival

    def register_link(self, address: int, link: Link) -> None:
        self._links[address] = link

    def _arrival(self, frame: EthernetFrame, accepted: bool) -> None:
        self._bits_since_sample += frame.size_bits
        if self._bits_since_sample < self.p.sample_interval_bits:
            return
        self._bits_since_sample = 0.0
        q = self.queue_bits
        fb = -((q - self.p.q0) + self.p.w * (q - self._q_old))
        self._q_old = q
        if fb >= 0:
            return  # QCN sends no positive feedback
        # Quantize |Fb| against the full-scale offset 2*q0 (spec scaling).
        unit = 2.0 * self.p.q0 / self.p.fb_max
        quantum = min(self.p.fb_max, max(1, round(-fb / unit)))
        link = self._links.get(frame.src)
        if link is not None:
            link.transmit(CNMessage(frame.src, quantum, self.sim.now))
            self.cnm_sent += 1


class QCNScheme:
    """Adapter wiring QCN into the shared dumbbell harness."""

    def __init__(self, params: QCNParams) -> None:
        self.p = params
        self.port: QCNPort | None = None
        self.regulators: list[QCNRegulator] = []

    def make_port(self, sim: Simulator, forward) -> QCNPort:
        self.port = QCNPort(sim, self.p, forward)
        return self.port

    def attach_source(
        self, sim: Simulator, port: QueuedPort, source: PacedSource, delay: float
    ) -> None:
        assert isinstance(port, QCNPort)
        regulator = QCNRegulator(self.p, source)
        self.regulators.append(regulator)
        back = Link(sim, delay, regulator.on_cnm)
        port.register_link(source.address, back)
        original_emit = source._emit

        def emit_with_counter() -> None:
            original_emit()
            regulator.on_bits_sent(source.frame_bits)

        source._emit = emit_with_counter  # count bits for the BC clock

    @property
    def control_messages(self) -> int:
        return self.port.cnm_sent if self.port is not None else 0


def run_qcn_dumbbell(
    params: QCNParams,
    duration: float,
    *,
    initial_rate: float | None = None,
    frame_bits: int = 1500 * 8,
    propagation_delay: float = 0.5e-6,
) -> BaselineResult:
    """Run the QCN dumbbell scenario and return the common result shape."""
    if initial_rate is None:
        initial_rate = 1.5 * params.capacity / params.n_flows
    scheme = QCNScheme(params)
    run = DumbbellRun(
        scheme,
        name="qcn",
        capacity=params.capacity,
        n_flows=params.n_flows,
        initial_rate=initial_rate,
        frame_bits=frame_bits,
        propagation_delay=propagation_delay,
    )
    return run.run(duration)

"""Fluid model of QCN, for analytic comparison with BCN.

QCN (the proposal that eventually became 802.1Qau) differs from BCN in
two structural ways the fluid level can capture:

1. **negative-only feedback** — the switch never tells sources to speed
   up; and
2. **self-clocked recovery** — the reaction point raises its rate
   towards a remembered ``target_rate`` on a byte-counter clock,
   averaging ``r <- (r + target)/2`` every ``bc_limit`` sent bits.

The resulting per-source fluid equations (following the style of the
Alizadeh et al. QCN analyses, simplified to the byte-counter clock and
aggregated over N homogeneous sources):

.. math::

    \\dot q = N r - C

    \\dot r = \\underbrace{G_d\\,\\sigma_-(t)\\,r\\,\\lambda_s}_{\\text{decrease}}
            + \\underbrace{\\frac{r}{2\\,T_{bc}(r)}\\,(r_T - r)\\ /\\ r}
              _{\\text{recovery towards } r_T}

where ``sigma_- = min(0, -(q - q0) - w dq)`` is the (negative-only)
congestion measure, ``lambda_s`` the per-source sampling rate, and
``T_bc(r) = bc\\_limit / r`` the byte-counter period.  The target-rate
memory makes this a three-state system ``(q, r, r_T)``: on sustained
congestion ``r_T`` tracks ``r`` down; in recovery ``r`` relaxes to
``r_T`` at rate ``r / (2 T_bc)``.

The point of the comparison: QCN's recovery clock gives a queue that
*undershoots* after congestion (rates keep falling until the byte
counter fires) and converges without positive feedback, while BCN needs
``sigma > 0`` messages to recover — visible in
:func:`compare_bcn_qcn_fluid`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

from ..core.parameters import BCNParams

__all__ = ["QCNFluidParams", "QCNFluidTrajectory", "simulate_qcn_fluid",
           "compare_bcn_qcn_fluid"]


@dataclass(frozen=True)
class QCNFluidParams:
    """Fluid-level QCN configuration."""

    capacity: float
    n_flows: int
    q0: float
    buffer_size: float
    w: float = 2.0
    gd: float = 1.0 / 128.0
    sample_interval_bits: float = 150e3 * 8
    bc_limit_bits: float = 150e3 * 8
    r_ai: float = 5e6  #: Active Increase step per byte-counter cycle
    sigma_unit: float | None = None  #: defaults to q0/16 (6-bit style)

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.n_flows < 1 or self.q0 <= 0:
            raise ValueError("capacity, n_flows and q0 must be positive")
        if self.q0 >= self.buffer_size:
            raise ValueError("q0 must be below the buffer size")

    @property
    def effective_sigma_unit(self) -> float:
        return self.q0 / 16.0 if self.sigma_unit is None else self.sigma_unit


@dataclass
class QCNFluidTrajectory:
    """Sampled (q, r, r_T) trajectory of the QCN fluid model."""

    params: QCNFluidParams
    t: np.ndarray
    q: np.ndarray
    r: np.ndarray
    target: np.ndarray

    def queue_peak(self) -> float:
        return float(self.q.max())

    def queue_mean(self, *, settle: float = 0.0) -> float:
        mask = self.t >= settle
        return float(self.q[mask].mean())

    def converged_near(self, level: float, *, rtol: float = 0.25) -> bool:
        tail = self.q[self.t >= 0.75 * self.t[-1]]
        return bool(abs(float(tail.mean()) - level) <= rtol * level)


def simulate_qcn_fluid(
    params: QCNFluidParams,
    *,
    initial_rate: float,
    t_max: float,
    q_0: float = 0.0,
) -> QCNFluidTrajectory:
    """Integrate the (q, r, r_T) QCN fluid model."""
    p = params
    c, n = p.capacity, p.n_flows
    unit = p.effective_sigma_unit

    def rhs(t, state):
        q, r, r_t = state
        q_eff = min(max(q, 0.0), p.buffer_size)
        dq = n * r - c
        if (q <= 0.0 and dq < 0.0) or (q >= p.buffer_size and dq > 0.0):
            dq = 0.0
        # Negative-only congestion measure in FB quanta, with the queue
        # variation taken over one sampling interval Ts = bits/C, and
        # clamped like the 6-bit wire field.
        ts = p.sample_interval_bits / c
        fb = -((q_eff - p.q0) + p.w * dq * ts) / unit
        fb = max(-32.0, min(0.0, fb))
        # Per-CNM step: r <- r (1 + Gd fb) with fb <= 0, delivered at
        # the per-source CNM rate lambda_s = r / sample_interval, so the
        # fluid decrease is dr = Gd fb r lambda_s.
        lam_s = r / p.sample_interval_bits
        decrease = p.gd * fb * r * lam_s
        # Recovery: every bc_limit bits the gap to target halves,
        # i.e. relaxes at rate r / (2 * bc_limit).
        recovery = (r_t - r) * (r / (2.0 * p.bc_limit_bits))
        dr = decrease + recovery
        # Target memory: under congestion CNMs reset r_T towards the
        # current rate at the message rate; in quiet periods Active
        # Increase grows the target by r_ai once per byte-counter cycle.
        if fb < 0.0:
            dr_t = (r - r_t) * lam_s
        else:
            dr_t = p.r_ai * (r / p.bc_limit_bits)
        return [dq, dr, dr_t]

    ts = np.linspace(0.0, t_max, 4000)
    sol = solve_ivp(rhs, (0.0, t_max), [q_0, initial_rate, initial_rate],
                    t_eval=ts, rtol=1e-8, atol=1e-6 * c,
                    max_step=t_max / 2000.0)
    return QCNFluidTrajectory(
        params=p,
        t=sol.t,
        q=np.clip(sol.y[0], 0.0, p.buffer_size),
        r=np.maximum(sol.y[1], 0.0),
        target=np.maximum(sol.y[2], 0.0),
    )


def compare_bcn_qcn_fluid(
    bcn_params: BCNParams,
    *,
    duration: float,
    initial_rate_factor: float = 1.5,
) -> dict:
    """Run the BCN and QCN fluid models from matched overload starts.

    Returns a dict with both queue series and summary metrics, used by
    the scheme-comparison analyses and tests.
    """
    from ..fluid.integrate import simulate_fluid

    c, n = bcn_params.capacity, bcn_params.n_flows
    r0 = initial_rate_factor * c / n

    bcn = simulate_fluid(
        bcn_params.normalized(),
        x0=-bcn_params.q0,
        y0=n * r0 - c,
        t_max=duration,
        mode="physical",
        max_switches=5000,
    )
    qcn = simulate_qcn_fluid(
        QCNFluidParams(
            capacity=c,
            n_flows=n,
            q0=bcn_params.q0,
            buffer_size=bcn_params.buffer_size,
            w=bcn_params.w,
            gd=bcn_params.gd,
        ),
        initial_rate=r0,
        t_max=duration,
    )
    return {
        "bcn_t": bcn.t,
        "bcn_q": bcn.queue(),
        "qcn_t": qcn.t,
        "qcn_q": qcn.q,
        "bcn_peak": bcn.queue_peak(),
        "qcn_peak": qcn.queue_peak(),
        "qcn_settles_near_q0": qcn.converged_near(bcn_params.q0, rtol=0.5),
    }

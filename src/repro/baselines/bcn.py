"""BCN adapter producing the common baseline result shape.

Wraps :class:`repro.simulation.network.BCNNetworkSimulator` so the
scheme-comparison experiments can place BCN next to QCN, E2CM, FERA and
binary AIMD with identical metrics.
"""

from __future__ import annotations

from ..core.parameters import BCNParams
from ..simulation.network import BCNNetworkSimulator
from .common import BaselineResult

__all__ = ["run_bcn_dumbbell"]


def run_bcn_dumbbell(
    params: BCNParams,
    duration: float,
    *,
    initial_rate: float | None = None,
    frame_bits: int = 1500 * 8,
    propagation_delay: float = 0.5e-6,
    regulator_mode: str = "message",
    engine: str = "reference",
) -> BaselineResult:
    """Run the BCN dumbbell and return the common result shape."""
    net = BCNNetworkSimulator(
        params,
        frame_bits=frame_bits,
        propagation_delay=propagation_delay,
        initial_rate=initial_rate,
        regulator_mode=regulator_mode,
        engine=engine,
    )
    res = net.run(duration)
    return BaselineResult(
        scheme="bcn",
        t=res.t,
        queue=res.queue,
        per_source_rate=res.per_source_rate,
        dropped_frames=res.dropped_frames,
        delivered_bits=res.delivered_bits,
        duration=res.duration,
        capacity=res.capacity,
        control_messages=res.bcn_negative + res.bcn_positive,
    )

"""Classic binary-feedback AIMD (Chiu & Jain, 1989).

The reference point BCN's rate law descends from: the switch feeds back
a single congestion bit (queue above/below the reference), and every
source applies additive increase / multiplicative decrease each control
interval.  Chiu & Jain proved this converges to the efficiency line and
oscillates around fairness; BCN's refinement is to modulate *how much*
to move using the sigma measure.  Comparing the two shows what the
proportional feedback buys (smaller oscillation at equal convergence).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulation.engine import Simulator
from ..simulation.link import Link
from .common import BaselineResult, DumbbellRun, PacedSource, QueuedPort

__all__ = ["AIMDParams", "AIMDPort", "AIMDScheme", "run_aimd_dumbbell"]


@dataclass(frozen=True)
class AIMDParams:
    """Binary-feedback AIMD configuration."""

    capacity: float
    n_flows: int
    q0: float
    buffer_bits: float
    control_interval: float = 1e-3
    additive_step: float = 10e6  #: bits/s added per uncongested interval
    decrease_factor: float = 0.5  #: rate multiplier on congestion
    min_rate: float = 1e5


@dataclass(frozen=True)
class BinaryFeedback:
    """One congestion bit, broadcast each control interval."""

    congested: bool
    sent_at: float


class AIMDPort(QueuedPort):
    """Switch that broadcasts one congestion bit per control interval."""

    def __init__(self, sim: Simulator, params: AIMDParams, forward) -> None:
        super().__init__(
            sim,
            capacity=params.capacity,
            buffer_bits=params.buffer_bits,
            forward=forward,
        )
        self.p = params
        self._links: list[Link] = []
        self.broadcasts = 0
        sim.schedule(params.control_interval, self._broadcast)

    def register_link(self, link: Link) -> None:
        self._links.append(link)

    def _broadcast(self) -> None:
        congested = self.queue_bits > self.p.q0
        fb = BinaryFeedback(congested, self.sim.now)
        for link in self._links:
            link.transmit(fb)
        self.broadcasts += len(self._links)
        self.sim.schedule(self.p.control_interval, self._broadcast)


class AIMDScheme:
    """Adapter wiring binary AIMD into the shared dumbbell harness."""

    def __init__(self, params: AIMDParams) -> None:
        self.p = params
        self.port: AIMDPort | None = None

    def make_port(self, sim: Simulator, forward) -> AIMDPort:
        self.port = AIMDPort(sim, self.p, forward)
        return self.port

    def attach_source(
        self, sim: Simulator, port: QueuedPort, source: PacedSource, delay: float
    ) -> None:
        assert isinstance(port, AIMDPort)
        p = self.p

        def on_feedback(fb: BinaryFeedback) -> None:
            if fb.congested:
                source.set_rate(max(source.rate * p.decrease_factor, p.min_rate))
            else:
                source.set_rate(source.rate + p.additive_step)

        port.register_link(Link(sim, delay, on_feedback))

    @property
    def control_messages(self) -> int:
        return self.port.broadcasts if self.port is not None else 0


def run_aimd_dumbbell(
    params: AIMDParams,
    duration: float,
    *,
    initial_rate: float | None = None,
    frame_bits: int = 1500 * 8,
    propagation_delay: float = 0.5e-6,
) -> BaselineResult:
    """Run the binary-feedback AIMD dumbbell scenario."""
    if initial_rate is None:
        initial_rate = 1.5 * params.capacity / params.n_flows
    scheme = AIMDScheme(params)
    run = DumbbellRun(
        scheme,
        name="aimd",
        capacity=params.capacity,
        n_flows=params.n_flows,
        initial_rate=initial_rate,
        frame_bits=frame_bits,
        propagation_delay=propagation_delay,
    )
    return run.run(duration)

"""FERA — Forward Explicit Rate Advertising (Jain et al., ICC 2008).

FERA is the odd one out among the 802.1Qau proposals: instead of
feeding queue dynamics back for AIMD, the switch *computes* each flow's
allowed rate (a variant of the ERICA algorithm from ATM ABR) and
advertises it explicitly.  Per measurement interval ``T`` the switch:

1. measures the input rate ``lambda`` and counts active flows ``N_a``;
2. computes the overload factor ``z = lambda / (eta * C)`` with target
   utilisation ``eta`` (ERICA uses 0.9-0.95);
3. computes ``fair_share = eta * C / N_a`` and, per flow,
   ``vc_share = flow_rate / z``;
4. advertises ``ER = max(fair_share, vc_share)`` (capped at ``eta*C``),
   which drives the system towards max-min fairness at the target
   utilisation.

We advertise backwards to the sources directly (the original sends the
rate forward in frame tags and the receiver reflects it; the loop delay
difference is one RTT, negligible at DCE scales — recorded as a
substitution).  Sources set their rate to the advertisement
immediately: no AIMD, no oscillation around ``q0`` — but also no
control of the *queue*, which is why ERICA adds a queue-drain term we
include as an optional correction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulation.engine import Simulator
from ..simulation.frames import EthernetFrame
from ..simulation.link import Link
from .common import BaselineResult, DumbbellRun, PacedSource, QueuedPort

__all__ = ["FERAParams", "FERAPort", "FERAScheme", "run_fera_dumbbell"]


@dataclass(frozen=True)
class FERAParams:
    """FERA/ERICA configuration."""

    capacity: float
    n_flows: int
    buffer_bits: float
    target_utilization: float = 0.95
    measurement_interval: float = 1e-3
    q0: float = 0.0  #: optional queue-drain target (0 disables the term)
    queue_drain_gain: float = 0.1
    min_rate: float = 1e5


@dataclass(frozen=True)
class RateAdvertisement:
    """Explicit-rate message to one source."""

    da: int
    explicit_rate: float
    sent_at: float


class FERAPort(QueuedPort):
    """FERA switch: periodic per-flow explicit-rate computation."""

    def __init__(self, sim: Simulator, params: FERAParams, forward) -> None:
        super().__init__(
            sim,
            capacity=params.capacity,
            buffer_bits=params.buffer_bits,
            forward=forward,
        )
        self.p = params
        self._links: dict[int, Link] = {}
        self._bits_in: dict[int, float] = {}
        self.advertisements_sent = 0
        self.on_arrival = self._arrival
        sim.schedule(params.measurement_interval, self._advertise)

    def register_link(self, address: int, link: Link) -> None:
        self._links[address] = link

    def _arrival(self, frame: EthernetFrame, accepted: bool) -> None:
        self._bits_in[frame.src] = (
            self._bits_in.get(frame.src, 0.0) + frame.size_bits
        )

    def _advertise(self) -> None:
        p = self.p
        interval = p.measurement_interval
        total_in = sum(self._bits_in.values())
        input_rate = total_in / interval
        active = [src for src, bits in self._bits_in.items() if bits > 0]
        n_active = max(1, len(active))

        target = p.target_utilization * p.capacity
        if p.q0 > 0:
            # ERICA+-style queue-drain correction: divert capacity to
            # draining the backlog above q0.
            backlog = self.queue_bits - p.q0
            target = max(0.1 * p.capacity, target - p.queue_drain_gain * backlog / interval)
        z = max(input_rate / target, 1e-9)
        fair_share = target / n_active

        for src in active:
            flow_rate = self._bits_in[src] / interval
            vc_share = flow_rate / z
            er = min(max(fair_share, vc_share), target)
            link = self._links.get(src)
            if link is not None:
                link.transmit(RateAdvertisement(src, er, self.sim.now))
                self.advertisements_sent += 1
        self._bits_in.clear()
        self.sim.schedule(interval, self._advertise)


class FERAScheme:
    """Adapter wiring FERA into the shared dumbbell harness."""

    def __init__(self, params: FERAParams) -> None:
        self.p = params
        self.port: FERAPort | None = None

    def make_port(self, sim: Simulator, forward) -> FERAPort:
        self.port = FERAPort(sim, self.p, forward)
        return self.port

    def attach_source(
        self, sim: Simulator, port: QueuedPort, source: PacedSource, delay: float
    ) -> None:
        assert isinstance(port, FERAPort)

        def on_advertisement(msg: RateAdvertisement) -> None:
            source.set_rate(max(msg.explicit_rate, self.p.min_rate))

        port.register_link(source.address, Link(sim, delay, on_advertisement))

    @property
    def control_messages(self) -> int:
        return self.port.advertisements_sent if self.port is not None else 0


def run_fera_dumbbell(
    params: FERAParams,
    duration: float,
    *,
    initial_rate: float | None = None,
    frame_bits: int = 1500 * 8,
    propagation_delay: float = 0.5e-6,
) -> BaselineResult:
    """Run the FERA dumbbell scenario."""
    if initial_rate is None:
        initial_rate = 1.5 * params.capacity / params.n_flows
    scheme = FERAScheme(params)
    run = DumbbellRun(
        scheme,
        name="fera",
        capacity=params.capacity,
        n_flows=params.n_flows,
        initial_rate=initial_rate,
        frame_bits=frame_bits,
        propagation_delay=propagation_delay,
    )
    return run.run(duration)

"""Baseline congestion-control schemes and the linear analysis of [4].

The other three 802.1Qau proposals — QCN (:mod:`.qcn`), E2CM
(:mod:`.e2cm`) and FERA (:mod:`.fera`) — plus classic binary-feedback
AIMD (:mod:`.aimd`), all runnable on a shared dumbbell harness
(:mod:`.common`) with a BCN adapter (:mod:`.bcn`) for side-by-side
comparison.  :mod:`.linear_analysis` reimplements the Lu et al. [4]
linear stability analysis the paper argues against.
"""

from .aimd import AIMDParams, run_aimd_dumbbell
from .bcn import run_bcn_dumbbell
from .common import BaselineResult
from .e2cm import E2CMParams, run_e2cm_dumbbell
from .fera import FERAParams, run_fera_dumbbell
from .linear_analysis import (
    LinearVerdict,
    gain_crossover,
    linear_verdict,
    nyquist_delay_margin,
    routh_hurwitz_stable,
)
from .qcn import QCNParams, run_qcn_dumbbell
from .qcn_fluid import (
    QCNFluidParams,
    QCNFluidTrajectory,
    compare_bcn_qcn_fluid,
    simulate_qcn_fluid,
)

__all__ = [
    "BaselineResult",
    "QCNParams",
    "run_qcn_dumbbell",
    "E2CMParams",
    "run_e2cm_dumbbell",
    "FERAParams",
    "run_fera_dumbbell",
    "AIMDParams",
    "run_aimd_dumbbell",
    "run_bcn_dumbbell",
    "LinearVerdict",
    "linear_verdict",
    "routh_hurwitz_stable",
    "nyquist_delay_margin",
    "gain_crossover",
    "QCNFluidParams",
    "QCNFluidTrajectory",
    "simulate_qcn_fluid",
    "compare_bcn_qcn_fluid",
]

"""Shared infrastructure for the baseline congestion-control schemes.

Every 802.1Qau proposal shares the same data plane — a serviced FIFO at
the congestion point and paced sources at the edge — and differs only
in the control plane (what is measured, what is signalled, how the rate
reacts).  :class:`QueuedPort` provides that shared data plane;
:class:`DumbbellRun` is a small harness that wires ``N`` paced sources
through one port and records the same series as the BCN dumbbell so the
schemes are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from ..simulation.engine import Simulator
from ..simulation.frames import EthernetFrame
from ..simulation.link import Link
from ..simulation.queueing import DropTailQueue

__all__ = ["QueuedPort", "PacedSource", "DumbbellRun", "BaselineResult"]


class QueuedPort:
    """A drop-tail FIFO serviced at line rate, with an arrival hook.

    Subclasses (or composition via ``on_arrival``/``on_departure``)
    implement the scheme-specific control plane.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        capacity: float,
        buffer_bits: float,
        forward: Callable[[EthernetFrame], None] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.queue = DropTailQueue(buffer_bits)
        self.forward = forward or (lambda frame: None)
        self.on_arrival: Callable[[EthernetFrame, bool], None] | None = None
        self.on_departure: Callable[[EthernetFrame], None] | None = None
        self._busy = False

    @property
    def queue_bits(self) -> float:
        return self.queue.occupancy_bits

    def receive(self, frame: EthernetFrame) -> None:
        accepted = self.queue.offer(frame)
        if self.on_arrival is not None:
            self.on_arrival(frame, accepted)
        if accepted and not self._busy:
            self._serve()

    def _serve(self) -> None:
        frame = self.queue.poll()
        if frame is None:
            self._busy = False
            return
        self._busy = True

        def done() -> None:
            if self.on_departure is not None:
                self.on_departure(frame)
            self.forward(frame)
            self._serve()

        self.sim.schedule(frame.size_bits / self.capacity, done)


class PacedSource:
    """A paced source whose rate is set externally by a scheme regulator."""

    def __init__(
        self,
        sim: Simulator,
        *,
        address: int,
        rate: float,
        send: Callable[[EthernetFrame], None],
        frame_bits: int = 1500 * 8,
        min_rate: float = 1e5,
        max_rate: float = float("inf"),
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.address = address
        self.rate = rate
        self.send = send
        self.frame_bits = frame_bits
        self.min_rate = min_rate
        self.max_rate = max_rate
        self.frames_sent = 0
        self._started = False

    def set_rate(self, rate: float) -> None:
        self.rate = min(max(rate, self.min_rate), self.max_rate)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.schedule(self.frame_bits / self.rate, self._emit)

    def _emit(self) -> None:
        self.send(
            EthernetFrame(
                src=self.address,
                dst="sink",
                size_bits=self.frame_bits,
                flow_id=self.address,
                created_at=self.sim.now,
            )
        )
        self.frames_sent += 1
        self.sim.schedule(self.frame_bits / self.rate, self._emit)


@dataclass
class BaselineResult:
    """Common result shape for baseline dumbbell runs."""

    scheme: str
    t: np.ndarray
    queue: np.ndarray
    per_source_rate: np.ndarray
    dropped_frames: int
    delivered_bits: float
    duration: float
    capacity: float
    control_messages: int

    def utilization(self) -> float:
        return self.delivered_bits / (self.capacity * self.duration)

    def queue_peak(self) -> float:
        return float(self.queue.max()) if self.queue.size else 0.0

    def queue_mean(self, *, settle: float = 0.0) -> float:
        mask = self.t >= settle
        return float(self.queue[mask].mean()) if mask.any() else 0.0

    def queue_std(self, *, settle: float = 0.0) -> float:
        mask = self.t >= settle
        return float(self.queue[mask].std()) if mask.any() else 0.0

    def jain_fairness(self) -> float:
        r = self.per_source_rate
        if r.size == 0 or float(np.sum(r * r)) == 0.0:
            return 1.0
        return float(np.sum(r)) ** 2 / (r.size * float(np.sum(r * r)))


class SchemeWiring(Protocol):
    """What a scheme must provide to the dumbbell harness."""

    def make_port(self, sim: Simulator, forward) -> QueuedPort: ...

    def attach_source(
        self, sim: Simulator, port: QueuedPort, source: PacedSource, delay: float
    ) -> None: ...

    @property
    def control_messages(self) -> int: ...


class DumbbellRun:
    """Wire and run ``N`` paced sources through one scheme-controlled port."""

    def __init__(
        self,
        scheme: SchemeWiring,
        *,
        name: str,
        capacity: float,
        n_flows: int,
        initial_rate: float,
        frame_bits: int = 1500 * 8,
        propagation_delay: float = 0.5e-6,
        queue_sample_interval: float | None = None,
    ) -> None:
        self.scheme = scheme
        self.name = name
        self.capacity = capacity
        self.sim = Simulator()
        self._delivered = 0.0

        def deliver(frame: EthernetFrame) -> None:
            self._delivered += frame.size_bits

        self.port = scheme.make_port(self.sim, deliver)
        self.sources: list[PacedSource] = []
        for i in range(n_flows):
            uplink = Link(self.sim, propagation_delay, self.port.receive)
            source = PacedSource(
                self.sim,
                address=i,
                rate=initial_rate,
                send=uplink.transmit,
                frame_bits=frame_bits,
                max_rate=capacity,
            )
            scheme.attach_source(self.sim, self.port, source, propagation_delay)
            self.sources.append(source)
        self._dt = (
            queue_sample_interval
            if queue_sample_interval is not None
            else 50 * frame_bits / capacity
        )
        self._samples: list[tuple[float, float]] = []

    def _record(self) -> None:
        self._samples.append((self.sim.now, self.port.queue_bits))

    def run(self, duration: float) -> BaselineResult:
        for source in self.sources:
            source.start()
        self._record()
        self.sim.schedule_every(self._dt, self._record, until=duration)
        self.sim.run(until=duration)
        self._record()
        return BaselineResult(
            scheme=self.name,
            t=np.array([t for t, _ in self._samples]),
            queue=np.array([q for _, q in self._samples]),
            per_source_rate=np.array([s.rate for s in self.sources]),
            dropped_frames=self.port.queue.dropped_frames,
            delivered_bits=self._delivered,
            duration=duration,
            capacity=self.capacity,
            control_messages=self.scheme.control_messages,
        )

"""The linear stability analysis of Lu et al. [4] — the paper's foil.

Reference [4] ("Congestion Control in Networks with No Congestion
Drops", Allerton 2006, by the BCN inventors) analyses each rate law in
isolation with classical linear control theory: split the switched
system into the increase and decrease subsystems, linearise, and apply
the Routh-Hurwitz / Nyquist criteria separately.  The paper under
reproduction shows what this misses — transient switching behaviour,
buffer constraints, limit cycles — so this module implements the linear
analysis faithfully, to be *contrasted* with the strong-stability
verdicts:

* :func:`routh_hurwitz_stable` — Proposition 1: with positive physical
  parameters both subsystems are always (Lyapunov-)stable; the combined
  criterion is vacuous and, notably, independent of the buffer ``B``.
* :func:`nyquist_delay_margin` — the delay-aware refinement: with a
  feedback delay ``tau`` the characteristic equation becomes
  ``lambda^2 + (k n lambda + n) e^{-lambda tau} = 0``; the Nyquist
  condition bounds the tolerable delay by ``tau < atan(k w*) / w*``
  where ``w*`` is the gain-crossover frequency,
  ``w*^2 = n sqrt(1 + (k w*)^2)``.
* :func:`linear_verdict` — the full [4]-style verdict for a parameter
  set, for side-by-side comparison with
  :func:`repro.core.stability.strong_stability_report`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.optimize import brentq

from ..core.parameters import BCNParams, NormalizedParams

__all__ = [
    "routh_hurwitz_stable",
    "gain_crossover",
    "nyquist_delay_margin",
    "LinearVerdict",
    "linear_verdict",
]


def _as_normalized(params: NormalizedParams | BCNParams) -> NormalizedParams:
    return params.normalized() if isinstance(params, BCNParams) else params


def routh_hurwitz_stable(params: NormalizedParams | BCNParams) -> bool:
    """Proposition 1: both linearised subsystems are Routh-Hurwitz stable.

    The characteristic polynomial ``lambda^2 + m lambda + n`` is stable
    iff ``m > 0`` and ``n > 0``; with physically meaningful (positive)
    parameters this always holds — which is exactly why the analysis of
    [4] cannot distinguish a well-dimensioned BCN system from one that
    drops packets in every transient.
    """
    p = _as_normalized(params)
    for n in (p.n_increase, p.n_decrease):
        m = p.k * n
        if not (m > 0 and n > 0):
            return False
    return True


def gain_crossover(n: float, k: float) -> float:
    """Gain-crossover frequency ``w*`` of the delayed loop.

    Solves ``w^2 = n * sqrt(1 + (k w)^2)`` (where the open-loop gain
    ``|n (1 + j k w) / (j w)^2|`` equals one).  Unique positive root.
    """
    if n <= 0 or k <= 0:
        raise ValueError("n and k must be positive")

    def f(w: float) -> float:
        return w * w - n * math.sqrt(1.0 + (k * w) ** 2)

    # Bracket: f(0+) < 0; for large w, f ~ w^2 - n k w > 0.
    hi = max(2.0 * n * k, 2.0 * math.sqrt(n), 1.0)
    while f(hi) <= 0:
        hi *= 2.0
    return float(brentq(f, 1e-12 * hi, hi))


def nyquist_delay_margin(n: float, k: float) -> float:
    """Maximum feedback delay the linearised loop tolerates.

    The loop transfer function with delay ``tau`` is
    ``G(s) = n (1 + k s) e^{-s tau} / s^2``; at the crossover ``w*`` the
    phase is ``-pi + atan(k w*) - w* tau``, so the phase margin is
    positive iff ``tau < atan(k w*) / w*``.
    """
    w_star = gain_crossover(n, k)
    return math.atan(k * w_star) / w_star


@dataclass(frozen=True)
class LinearVerdict:
    """The [4]-style assessment of a BCN parameter set."""

    increase_stable: bool
    decrease_stable: bool
    increase_delay_margin: float
    decrease_delay_margin: float

    @property
    def stable(self) -> bool:
        """The combined (delay-free) linear verdict."""
        return self.increase_stable and self.decrease_stable

    def stable_with_delay(self, tau: float) -> bool:
        """Whether both loops tolerate feedback delay ``tau``."""
        return (
            self.stable
            and tau < self.increase_delay_margin
            and tau < self.decrease_delay_margin
        )


def linear_verdict(params: NormalizedParams | BCNParams) -> LinearVerdict:
    """Assess a parameter set exactly as the linear analysis of [4] would.

    Note what is absent: the buffer size ``B`` plays no role, so two
    systems differing only in ``B`` — one of which drops packets on
    every transient — receive identical verdicts.  Contrast with
    :func:`repro.core.stability.theorem1_criterion`.
    """
    p = _as_normalized(params)
    n_i, n_d = p.n_increase, p.n_decrease
    return LinearVerdict(
        increase_stable=routh_hurwitz_stable(p),
        decrease_stable=routh_hurwitz_stable(p),
        increase_delay_margin=nyquist_delay_margin(n_i, p.k),
        decrease_delay_margin=nyquist_delay_margin(n_d, p.k),
    )

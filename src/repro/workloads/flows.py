"""Flow specifications shared by the workload generators.

A :class:`FlowSpec` names one long-lived or finite flow: endpoints,
start time, optional size, and the demand (initial/unregulated rate).
Workload generators (:mod:`repro.workloads`) produce lists of specs;
the multi-hop simulator (:mod:`repro.simulation.multihop`) instantiates
a paced source per spec.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlowSpec"]


@dataclass(frozen=True)
class FlowSpec:
    """One flow of a workload.

    Attributes
    ----------
    flow_id:
        Unique integer id (also the source address on the wire).
    src, dst:
        Host node names in the topology graph.
    start_time:
        Simulation time at which the source starts pacing.
    demand:
        Desired (unregulated) sending rate in bits/s; the BCN regulator
        modulates below this.
    size_bits:
        Total bits to transfer, or None for a long-lived flow.
    route:
        Optional pre-computed node path; filled in by the simulator via
        ECMP when absent.
    """

    flow_id: int
    src: str
    dst: str
    start_time: float = 0.0
    demand: float = 10e9
    size_bits: float | None = None
    route: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ValueError("demand must be positive")
        if self.start_time < 0:
            raise ValueError("start_time cannot be negative")
        if self.size_bits is not None and self.size_bits <= 0:
            raise ValueError("size_bits must be positive when given")
        if self.src == self.dst:
            raise ValueError("src and dst must differ")

"""Workload generators for DCE congestion experiments."""

from .flows import FlowSpec
from .traces import SyntheticTrace, TraceConfig, generate_trace
from .generators import (
    OnOffSchedule,
    homogeneous,
    incast,
    on_off,
    parallel_io,
    permutation,
    poisson_short_flows,
    shuffle,
    staggered,
)

__all__ = [
    "FlowSpec",
    "homogeneous",
    "incast",
    "parallel_io",
    "staggered",
    "shuffle",
    "permutation",
    "on_off",
    "poisson_short_flows",
    "OnOffSchedule",
    "TraceConfig",
    "SyntheticTrace",
    "generate_trace",
]

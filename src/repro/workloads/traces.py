"""Synthetic traffic traces (substitute for production traces).

The reproduction has no access to production data-center traces, so
this module generates the closest synthetic equivalents, seeded and
reproducible: Poisson flow arrivals with heavy-tailed (bounded-Pareto)
sizes between uniformly drawn host pairs — the mix measurement studies
of the era report (most flows tiny, most bytes in elephants).  Traces
convert directly to :class:`~repro.workloads.flows.FlowSpec` lists for
the multi-hop simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .flows import FlowSpec

__all__ = ["TraceConfig", "SyntheticTrace", "generate_trace"]


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of the synthetic trace generator.

    Attributes
    ----------
    arrival_rate:
        Mean flow arrivals per second (Poisson process).
    mean_size_bits:
        Target mean flow size; the bounded-Pareto shape is scaled to it.
    pareto_shape:
        Tail index ``alpha``; 1 < alpha < 2 gives the heavy tail
        reported for data-center flow sizes (default 1.2).
    min_size_bits, max_size_bits:
        Truncation bounds of the size distribution.
    demand:
        Per-flow unregulated rate.
    horizon:
        Trace duration in seconds.
    seed:
        RNG seed (traces are fully reproducible).
    """

    arrival_rate: float
    mean_size_bits: float
    horizon: float
    pareto_shape: float = 1.2
    min_size_bits: float = 12e3  # one 1500-byte frame
    max_size_bits: float = 8e8  # 100 MB elephant
    demand: float = 1e9
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0 or self.horizon <= 0:
            raise ValueError("arrival_rate and horizon must be positive")
        if not 1.0 < self.pareto_shape:
            raise ValueError("pareto_shape must exceed 1")
        if not 0 < self.min_size_bits < self.max_size_bits:
            raise ValueError("need 0 < min_size_bits < max_size_bits")


@dataclass
class SyntheticTrace:
    """A generated trace: flow specs plus summary statistics."""

    config: TraceConfig
    flows: list[FlowSpec] = field(default_factory=list)

    @property
    def n_flows(self) -> int:
        return len(self.flows)

    def total_bits(self) -> float:
        return sum(f.size_bits or 0.0 for f in self.flows)

    def offered_load(self, capacity: float) -> float:
        """Mean offered load as a fraction of ``capacity``."""
        return self.total_bits() / (capacity * self.config.horizon)

    def elephant_share(self, *, threshold_bits: float = 8e6) -> float:
        """Fraction of bytes carried by flows above ``threshold_bits``."""
        total = self.total_bits()
        if total == 0:
            return 0.0
        big = sum(f.size_bits or 0.0 for f in self.flows
                  if (f.size_bits or 0.0) >= threshold_bits)
        return big / total

    def arrivals_in(self, t0: float, t1: float) -> int:
        return sum(1 for f in self.flows if t0 <= f.start_time < t1)


def _bounded_pareto(rng: random.Random, alpha: float, lo: float,
                    hi: float) -> float:
    """Inverse-CDF sample of a Pareto truncated to ``[lo, hi]``."""
    u = rng.random()
    la, ha = lo**alpha, hi**alpha
    return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)


def generate_trace(
    config: TraceConfig,
    hosts: list[str],
    *,
    sink: str | None = None,
) -> SyntheticTrace:
    """Generate a trace between ``hosts`` (or all towards ``sink``).

    Flow sizes are bounded-Pareto scaled so the *mean* matches
    ``config.mean_size_bits``; arrivals are Poisson over the horizon.
    """
    if len(hosts) < 2 and sink is None:
        raise ValueError("need at least two hosts (or a sink)")
    rng = random.Random(config.seed)

    # scale factor so the truncated-Pareto mean hits the target
    probe = [_bounded_pareto(rng, config.pareto_shape,
                             config.min_size_bits, config.max_size_bits)
             for _ in range(2000)]
    scale = config.mean_size_bits / (sum(probe) / len(probe))
    rng = random.Random(config.seed)  # reset so the probe doesn't shift flows

    trace = SyntheticTrace(config=config)
    t = 0.0
    flow_id = 0
    while True:
        t += rng.expovariate(config.arrival_rate)
        if t >= config.horizon:
            break
        size = scale * _bounded_pareto(
            rng, config.pareto_shape, config.min_size_bits,
            config.max_size_bits)
        size = min(max(size, config.min_size_bits), config.max_size_bits)
        if sink is not None:
            src = rng.choice(hosts)
            dst = sink
        else:
            src, dst = rng.sample(hosts, 2)
        trace.flows.append(
            FlowSpec(
                flow_id=flow_id,
                src=src,
                dst=dst,
                start_time=t,
                demand=config.demand,
                size_bits=size,
            )
        )
        flow_id += 1
    return trace

"""Workload generators for DCE congestion experiments.

The paper's analysis assumes homogeneous long-lived sources — the
traffic pattern of parallel reads/writes in cluster file systems
(Lustre, Panasas) over regular fabrics.  These generators produce that
pattern and its common variants:

* :func:`homogeneous` — N identical long-lived flows to one sink (the
  paper's model, and the dumbbell scenario's default);
* :func:`incast` — a partition/aggregate fan-in: many servers answer
  one client simultaneously, the classic DCE stress case;
* :func:`parallel_io` — cluster-FS style striped reads/writes between a
  set of compute nodes and a set of storage targets;
* :func:`staggered` — homogeneous flows with ramped start times, for
  convergence/fairness experiments;
* :func:`shuffle` — all-to-all transfers (the MapReduce shuffle stage);
* :func:`on_off` — flows toggling between demand and silence with
  exponential holding times (deterministically seeded);
* :func:`poisson_short_flows` — a Poisson arrival process of finite
  "mice" flows over a horizon (the churn half of a dynamic scenario).

Seeding discipline
------------------
Randomised generators draw every flow's variates from a stream keyed
``f"{seed}:{i}"`` (plus a separate stream for the shared arrival
process), so flow ``i``'s schedule depends only on the seed and its own
index — adding or removing flows never perturbs the others, and the
serial and parallel runner paths see identical workloads.
"""

from __future__ import annotations

import random

from .flows import FlowSpec

__all__ = ["homogeneous", "incast", "parallel_io", "staggered", "on_off",
           "shuffle", "poisson_short_flows", "permutation", "OnOffSchedule"]


def homogeneous(
    sources: list[str],
    sink: str,
    *,
    demand: float,
    start_time: float = 0.0,
) -> list[FlowSpec]:
    """N identical long-lived flows from ``sources`` to ``sink``."""
    if not sources:
        raise ValueError("need at least one source")
    return [
        FlowSpec(flow_id=i, src=s, dst=sink, start_time=start_time, demand=demand)
        for i, s in enumerate(sources)
    ]


def incast(
    servers: list[str],
    client: str,
    *,
    response_bits: float,
    demand: float,
    start_time: float = 0.0,
) -> list[FlowSpec]:
    """Synchronised fan-in: every server sends ``response_bits`` at once.

    Models the partition/aggregate pattern: a client's request fans out
    and all responses arrive in lock-step, overwhelming the client's
    last-hop port — the scenario PAUSE-based flow control handles worst
    and BCN is meant to tame.
    """
    if not servers:
        raise ValueError("need at least one server")
    return [
        FlowSpec(
            flow_id=i,
            src=s,
            dst=client,
            start_time=start_time,
            demand=demand,
            size_bits=response_bits,
        )
        for i, s in enumerate(servers)
    ]


def parallel_io(
    compute_nodes: list[str],
    storage_nodes: list[str],
    *,
    stripe_bits: float,
    demand: float,
    write: bool = True,
    start_time: float = 0.0,
) -> list[FlowSpec]:
    """Striped parallel I/O between compute and storage tiers.

    Each compute node stripes one object across every storage node
    (write) or reads its stripes back (read): ``len(compute) *
    len(storage)`` synchronized flows of ``stripe_bits`` each — the
    Lustre/Panasas pattern the paper cites.
    """
    if not compute_nodes or not storage_nodes:
        raise ValueError("need both tiers populated")
    flows = []
    fid = 0
    for cn in compute_nodes:
        for sn in storage_nodes:
            src, dst = (cn, sn) if write else (sn, cn)
            flows.append(
                FlowSpec(
                    flow_id=fid,
                    src=src,
                    dst=dst,
                    start_time=start_time,
                    demand=demand,
                    size_bits=stripe_bits,
                )
            )
            fid += 1
    return flows


def staggered(
    sources: list[str],
    sink: str,
    *,
    demand: float,
    interval: float,
) -> list[FlowSpec]:
    """Homogeneous flows whose starts are spaced ``interval`` apart."""
    if interval < 0:
        raise ValueError("interval cannot be negative")
    return [
        FlowSpec(
            flow_id=i, src=s, dst=sink, start_time=i * interval, demand=demand
        )
        for i, s in enumerate(sources)
    ]


def permutation(
    hosts: list[str],
    *,
    demand: float,
    rounds: int = 1,
    start_time: float = 0.0,
) -> list[FlowSpec]:
    """Fabric-wide permutation traffic: ``rounds`` shifted pairings.

    Round ``r`` (0-based) sends host ``i`` to host ``(i + r + 1) mod
    n`` — every host sources and sinks exactly ``rounds`` long-lived
    flows, spreading load across the whole fabric core without the
    ``n^2`` blow-up of :func:`shuffle`.  Deterministic; the standard
    workload for fabric-scale engine benchmarks.
    """
    n = len(hosts)
    if n < 2:
        raise ValueError("permutation needs at least two hosts")
    if not 1 <= rounds < n:
        raise ValueError(f"rounds must lie in [1, {n - 1}], got {rounds}")
    flows = []
    fid = 0
    for r in range(rounds):
        for i in range(n):
            flows.append(
                FlowSpec(flow_id=fid, src=hosts[i],
                         dst=hosts[(i + r + 1) % n],
                         start_time=start_time, demand=demand)
            )
            fid += 1
    return flows


def shuffle(
    hosts: list[str],
    *,
    transfer_bits: float,
    demand: float,
    start_time: float = 0.0,
) -> list[FlowSpec]:
    """All-to-all shuffle: every host sends to every other host.

    The MapReduce/shuffle stage pattern: ``n (n-1)`` simultaneous
    transfers of ``transfer_bits`` each, stressing the fabric core
    rather than a single port.
    """
    if len(hosts) < 2:
        raise ValueError("shuffle needs at least two hosts")
    flows = []
    fid = 0
    for src in hosts:
        for dst in hosts:
            if src == dst:
                continue
            flows.append(
                FlowSpec(flow_id=fid, src=src, dst=dst,
                         start_time=start_time, demand=demand,
                         size_bits=transfer_bits)
            )
            fid += 1
    return flows


class OnOffSchedule:
    """Deterministic exponential on/off toggling for a set of flows.

    Produces, per flow, a list of ``(on_time, off_time)`` intervals
    covering ``horizon`` seconds, from a seeded RNG so experiments are
    reproducible.
    """

    def __init__(
        self,
        n_flows: int,
        *,
        mean_on: float,
        mean_off: float,
        horizon: float,
        seed: int = 0,
    ) -> None:
        if mean_on <= 0 or mean_off <= 0 or horizon <= 0:
            raise ValueError("mean_on, mean_off and horizon must be positive")
        self.horizon = horizon
        self.intervals: list[list[tuple[float, float]]] = []
        for i in range(n_flows):
            # One independent stream per flow (keyed by seed and index)
            # so flow i's schedule never depends on how many variates
            # the other flows consumed — see the module seeding notes.
            rng = random.Random(f"{seed}:{i}")
            t = 0.0
            spans: list[tuple[float, float]] = []
            while t < horizon:
                on = t
                t += rng.expovariate(1.0 / mean_on)
                spans.append((on, min(t, horizon)))
                t += rng.expovariate(1.0 / mean_off)
            self.intervals.append(spans)

    def active_at(self, flow_index: int, t: float) -> bool:
        """Whether flow ``flow_index`` is in an ON span at time ``t``."""
        return any(a <= t < b for a, b in self.intervals[flow_index])

    def duty_cycle(self, flow_index: int) -> float:
        """Fraction of the horizon the flow spends ON."""
        return (
            sum(b - a for a, b in self.intervals[flow_index]) / self.horizon
        )


def poisson_short_flows(
    sources: list[str],
    sink: str,
    *,
    arrival_rate: float,
    demand: float,
    size_bits: float,
    horizon: float,
    seed: int = 0,
    first_flow_id: int = 0,
) -> list[FlowSpec]:
    """A Poisson process of finite "mice" flows over ``horizon`` seconds.

    Arrivals form one aggregate Poisson process of ``arrival_rate``
    flows/s (exponential inter-arrivals from a dedicated seeded
    stream); each arriving flow picks its source host from its own
    per-flow stream, sends ``size_bits`` at up to ``demand`` bits/s,
    and departs when done.  Flow ids are assigned in arrival order from
    ``first_flow_id`` so the mice can coexist with persistent elephants
    in one workload.
    """
    if not sources:
        raise ValueError("need at least one source")
    if arrival_rate <= 0 or horizon <= 0:
        raise ValueError("arrival_rate and horizon must be positive")
    if size_bits <= 0:
        raise ValueError("size_bits must be positive")
    arrivals_rng = random.Random(f"{seed}:arrivals")
    flows: list[FlowSpec] = []
    t = arrivals_rng.expovariate(arrival_rate)
    i = 0
    while t < horizon:
        host_rng = random.Random(f"{seed}:{i}")
        flows.append(
            FlowSpec(
                flow_id=first_flow_id + i,
                src=host_rng.choice(sources),
                dst=sink,
                start_time=t,
                demand=demand,
                size_bits=size_bits,
            )
        )
        t += arrivals_rng.expovariate(arrival_rate)
        i += 1
    return flows


def on_off(
    sources: list[str],
    sink: str,
    *,
    demand: float,
    mean_on: float,
    mean_off: float,
    horizon: float,
    seed: int = 0,
) -> tuple[list[FlowSpec], OnOffSchedule]:
    """Homogeneous flows plus a deterministic on/off schedule."""
    flows = homogeneous(sources, sink, demand=demand)
    schedule = OnOffSchedule(
        len(flows), mean_on=mean_on, mean_off=mean_off, horizon=horizon, seed=seed
    )
    return flows, schedule

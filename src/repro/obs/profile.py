"""Span-based profiling hooks with a near-free disabled path.

A :class:`SpanProfiler` accumulates named wall-clock spans measured
with the monotonic clock.  The two usage patterns are::

    with obs.span("fluid.batch.kernel"):
        ...                              # timed block

    obs.add_span("packet.run", elapsed)  # pre-measured duration

When the profiler is disabled, ``span()`` returns one pre-built no-op
context manager (no allocation, no clock read), so instrumented hot
paths cost a single attribute check.

:class:`PointTiming` — the per-work-unit wall record the parallel
runner aggregates — lives here as well; ``repro.runner.instrumentation``
re-exports it for backwards compatibility.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..viz.series import format_table

__all__ = ["PointTiming", "SpanStats", "SpanProfiler"]


@dataclass(frozen=True)
class PointTiming:
    """Wall-clock record of one executed (or cache-served) work unit.

    ``kernel`` is the portion of ``wall`` the work unit reported as time
    spent inside its numerical kernel (e.g.
    ``BatchFluidResult.kernel_seconds``, forwarded by the runner's
    reserved ``"_kernel_wall"`` record key); the remainder is
    serialisation, dispatch and bookkeeping overhead.  Cache-served
    units always carry ``kernel == 0.0`` — no kernel ran.
    """

    label: str
    wall: float
    cached: bool = False
    kernel: float = 0.0


@dataclass
class SpanStats:
    """Accumulated timings for one span name."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "SpanStats") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class _NullSpan:
    """Reusable no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "SpanProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self):
        self._t0 = time.monotonic()
        return self

    def __exit__(self, *exc):
        self._profiler.add(self._name, time.monotonic() - self._t0)
        return False


class SpanProfiler:
    """Accumulates named monotonic-clock spans."""

    __slots__ = ("enabled", "spans")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: dict[str, SpanStats] = {}

    def span(self, name: str):
        """Context manager timing a block under ``name``."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Record a pre-measured duration under ``name``."""
        if not self.enabled:
            return
        stats = self.spans.get(name)
        if stats is None:
            stats = self.spans[name] = SpanStats()
        stats.add(seconds)

    # -- snapshots / merging ------------------------------------------------

    def snapshot(self) -> dict:
        return {
            name: [s.count, s.total, s.min, s.max]
            for name, s in self.spans.items()
        }

    def merge_snapshot(self, snap: dict) -> None:
        for name, (count, total, mn, mx) in snap.items():
            stats = self.spans.get(name)
            if stats is None:
                stats = self.spans[name] = SpanStats()
            stats.merge(SpanStats(count=count, total=total, min=mn, max=mx))

    # -- rendering ----------------------------------------------------------

    def summary_rows(self) -> list[list]:
        rows = []
        for name in sorted(self.spans, key=lambda n: -self.spans[n].total):
            s = self.spans[name]
            rows.append([name, s.count, f"{s.total:.6f}", f"{s.mean():.6f}",
                         f"{s.min:.6f}", f"{s.max:.6f}"])
        return rows

    def summary_table(self) -> str:
        return format_table(
            ["span", "count", "total (s)", "mean (s)", "min (s)", "max (s)"],
            self.summary_rows(),
        )

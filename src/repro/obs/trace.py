"""Structured trace records and a stable JSONL export format.

Every engine emits the same event vocabulary (:data:`EVENT_KINDS`), so
traces from the reference fluid integrator, the batch kernel and both
packet engines are directly comparable — the basis of the cross-engine
conformance suite.

The on-disk format is JSON Lines: a header object carrying
``schema_version`` followed by one object per event.  Fields that are
``None`` are omitted from the serialised record; :func:`read_trace`
restores them, so write→read is a lossless round trip.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_KINDS",
    "TraceRecord",
    "TraceSink",
    "write_trace",
    "read_trace",
]

#: Bump when a field is renamed/removed or a kind changes meaning.
SCHEMA_VERSION = 1

#: The shared cross-engine event vocabulary.
EVENT_KINDS = frozenset({
    "region_switch",   # switching-line crossing (sigma changes sign)
    "pause_on",        # PAUSE excursion starts
    "pause_off",       # PAUSE excursion ends / expires
    "bcn",             # BCN message emitted (value = fb sign or fb)
    "drop",            # frame dropped at a full queue
    "buffer_full",     # queue pinned at the physical buffer
    "buffer_empty",    # queue pinned at zero
    "extremum",        # trajectory extremum (fluid return map)
    "converged",       # trajectory met the convergence criterion
    "arrive",          # frame enqueued (packet engines, tracing only)
    "depart",          # frame serviced (packet engines, tracing only)
    # Scenario-layer events (additive in schema v1): the declarative
    # schedule is known up front, so repro.scenarios emits these
    # identically for both packet engines.
    "flow_start",      # a dynamic flow begins sending
    "flow_finish",     # a finite flow sent its last frame (value = FCT)
    "link_down",       # outage begins (value = outage duration)
    "link_up",         # outage ends
    "capacity_change",  # C(t) transition (value = new capacity)
    # Job-server lifecycle events (additive in schema v1): emitted by
    # repro.serve with engine="serve" and node=<job key>, streamed live
    # to subscribed clients as the per-job JSONL progress sink.  ``t``
    # is seconds since the job was accepted (monotonic delta — the
    # serve layer has no simulated clock of its own).
    "job_queued",      # job accepted and queued (value = queue depth)
    "job_started",     # execution began (value = attempt number)
    "job_progress",    # one work unit finished (value = units done)
    "job_finished",    # terminal success (value = compute wall seconds)
    "job_failed",      # terminal failure (detail = error text)
    "job_retried",     # attempt failed, job re-queued for another try
})


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace event.

    ``t`` is simulation time in seconds.  ``engine`` identifies the
    producer (``"fluid.reference"``, ``"fluid.batch"``,
    ``"packet.reference"``, ``"packet.batched"``, ``"runner"``);
    ``node`` the emitting component (a switch cpid, a port label);
    ``row`` the batch row index for vectorised engines; ``flow`` a flow
    id; ``value`` a kind-specific scalar (feedback value, queue level,
    pause duration); ``detail`` free-form text.
    """

    kind: str
    t: float
    engine: str = ""
    node: str | None = None
    row: int | None = None
    flow: int | None = None
    value: float | None = None
    detail: str = ""

    def to_json_obj(self) -> dict:
        obj: dict = {"t": self.t, "kind": self.kind}
        if self.engine:
            obj["engine"] = self.engine
        for key in ("node", "row", "flow", "value"):
            val = getattr(self, key)
            if val is not None:
                obj[key] = val
        if self.detail:
            obj["detail"] = self.detail
        return obj

    @classmethod
    def from_json_obj(cls, obj: dict) -> "TraceRecord":
        return cls(
            kind=obj["kind"],
            t=float(obj["t"]),
            engine=obj.get("engine", ""),
            node=obj.get("node"),
            row=obj.get("row"),
            flow=obj.get("flow"),
            value=obj.get("value"),
            detail=obj.get("detail", ""),
        )


@dataclass
class TraceSink:
    """In-memory event log with an optional size cap.

    Once ``max_records`` is reached further records are counted in
    ``truncated`` but not stored, so long runs cannot exhaust memory
    while event *counts* (kept in the metrics registry, not here) stay
    exact.
    """

    records: list[TraceRecord] = field(default_factory=list)
    max_records: int | None = None
    truncated: int = 0

    def append(self, record: TraceRecord) -> None:
        if (self.max_records is not None
                and len(self.records) >= self.max_records):
            self.truncated += 1
            return
        self.records.append(record)

    def extend(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.append(record)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    def sorted_records(self) -> list[TraceRecord]:
        """Records ordered by time (stable for simultaneous events)."""
        return sorted(self.records, key=lambda r: r.t)


def write_trace(path: str | Path, records: Iterable[TraceRecord],
                *, meta: dict | None = None) -> Path:
    """Write a JSONL trace: header line, then one event per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {"schema_version": SCHEMA_VERSION}
    if meta:
        header.update(meta)
    with path.open("w") as fh:
        fh.write(json.dumps(header) + "\n")
        for record in records:
            fh.write(json.dumps(record.to_json_obj()) + "\n")
    return path


def read_trace(path: str | Path) -> tuple[dict, list[TraceRecord]]:
    """Read a JSONL trace back as ``(header, records)``.

    Raises :class:`ValueError` on a missing header or an unsupported
    ``schema_version``.
    """
    path = Path(path)
    with path.open() as fh:
        lines: Iterator[str] = iter(fh)
        try:
            header = json.loads(next(lines))
        except StopIteration:
            raise ValueError(f"{path}: empty trace file") from None
        version = header.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"{path}: unsupported trace schema_version {version!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        records = [TraceRecord.from_json_obj(json.loads(line))
                   for line in lines if line.strip()]
    return header, records

"""The :class:`Observability` handle — one object threaded everywhere.

Engines and the runner accept an optional ``obs`` argument.  ``None``
(the default) keeps hot paths on a single ``if obs is not None`` check;
:meth:`Observability.disabled` builds a handle that accepts every call
as a cheap no-op — useful for measuring the instrumentation overhead
itself; ``Observability()`` records everything.

Event emission does double duty: every :meth:`event` call bumps the
``events.<kind>`` counter in the metrics registry (exact even when the
trace sink truncates) and appends a :class:`TraceRecord` to the sink.
"""

from __future__ import annotations

import numpy as np

from .metrics import (MetricsRegistry, QUEUE_FRAC_EDGES, SOJOURN_REL_EDGES)
from .profile import SpanProfiler
from .trace import EVENT_KINDS, SCHEMA_VERSION, TraceRecord, TraceSink, write_trace

__all__ = ["Observability", "emit_sign_switches"]


class Observability:
    """Bundle of metrics registry, span profiler and trace sink."""

    __slots__ = ("enabled", "metrics", "profiler", "trace")

    def __init__(self, *, enabled: bool = True,
                 max_trace_events: int | None = 200_000) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.profiler = SpanProfiler(enabled=enabled)
        self.trace = TraceSink(max_records=max_trace_events)

    @classmethod
    def disabled(cls) -> "Observability":
        """A handle that swallows every call with minimal work."""
        return cls(enabled=False, max_trace_events=0)

    # -- events -------------------------------------------------------------

    def event(self, kind: str, t: float, *, engine: str = "",
              node: str | None = None, row: int | None = None,
              flow: int | None = None, value: float | None = None,
              detail: str = "") -> None:
        """Record one structured event (counter + trace record)."""
        if not self.enabled:
            return
        assert kind in EVENT_KINDS, f"unknown event kind {kind!r}"
        self.metrics.inc(f"events.{kind}")
        self.trace.append(TraceRecord(
            kind=kind, t=float(t), engine=engine, node=node, row=row,
            flow=flow, value=value, detail=detail,
        ))

    def event_counts(self, engine: str | None = None) -> dict[str, int]:
        """Per-kind event totals.

        With ``engine=None`` the exact counter totals are returned;
        with an engine filter the (possibly truncated) trace is
        consulted instead.
        """
        if engine is None:
            return {
                name.split(".", 1)[1]: int(c.value)
                for name, c in sorted(self.metrics.counters.items())
                if name.startswith("events.")
            }
        out: dict[str, int] = {}
        for r in self.trace.records:
            if r.engine == engine:
                out[r.kind] = out.get(r.kind, 0) + 1
        return out

    # -- metrics ------------------------------------------------------------

    def count(self, name: str, n: float = 1.0) -> None:
        if self.enabled:
            self.metrics.inc(name, n)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float, edges) -> None:
        if self.enabled:
            self.metrics.observe(name, value, edges)

    def observe_array(self, name: str, values, edges) -> None:
        if self.enabled:
            self.metrics.observe_many(name, values, edges)

    def observe_queue(self, engine: str, q_bits, buffer_bits: float,
                      q0_bits: float) -> None:
        """Record normalised queue occupancy + sojourn histograms."""
        if not self.enabled:
            return
        q = np.asarray(q_bits, dtype=float).ravel()
        if q.size == 0:
            return
        if buffer_bits > 0:
            self.metrics.observe_many(f"queue_frac.{engine}",
                                      q / buffer_bits, QUEUE_FRAC_EDGES)
        if q0_bits > 0:
            self.metrics.observe_many(f"sojourn_rel.{engine}",
                                      q / q0_bits, SOJOURN_REL_EDGES)

    # -- profiling ----------------------------------------------------------

    def span(self, name: str):
        return self.profiler.span(name)

    def add_span(self, name: str, seconds: float) -> None:
        self.profiler.add(name, seconds)

    # -- worker merge -------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable snapshot (metrics + spans) for cross-process merge."""
        return {
            "metrics": self.metrics.snapshot(),
            "spans": self.profiler.snapshot(),
        }

    def merge_metrics(self, snap: dict) -> None:
        """Fold a worker :meth:`snapshot` into this handle."""
        if not self.enabled:
            return
        self.metrics.merge_snapshot(snap.get("metrics", {}))
        self.profiler.merge_snapshot(snap.get("spans", {}))

    # -- export -------------------------------------------------------------

    def write_trace(self, path, *, meta: dict | None = None):
        """Dump the trace sink as a schema-versioned JSONL file."""
        full_meta = {"events_truncated": self.trace.truncated}
        if meta:
            full_meta.update(meta)
        return write_trace(path, self.trace.sorted_records(), meta=full_meta)

    def summary(self) -> str:
        counts = self.event_counts()
        parts = [f"{kind}={counts[kind]}" for kind in sorted(counts)]
        return (f"obs[schema v{SCHEMA_VERSION}]: "
                f"{sum(counts.values())} events ({', '.join(parts)})")


def emit_sign_switches(obs: Observability | None, times, values, *,
                       engine: str, node: str | None = None,
                       kind: str = "region_switch") -> int:
    """Emit one event per sign change of ``values`` along ``times``.

    Used to derive region-switch events from a sampled ``sigma``
    history (packet engines) where the control law is only evaluated at
    sample instants.  Zero samples inherit the previous sign so a
    grazing touch does not double-count.  Returns the number of events
    emitted (0 when ``obs`` is None/disabled).
    """
    if obs is None or not obs.enabled:
        return 0
    values = np.asarray(values, dtype=float)
    times = np.asarray(times, dtype=float)
    if values.size < 2:
        return 0
    signs = np.sign(values)
    # Carry the previous sign through exact zeros.
    for i in range(signs.size):
        if signs[i] == 0:
            signs[i] = signs[i - 1] if i else 0.0
    flips = np.nonzero(signs[1:] * signs[:-1] < 0)[0]
    for i in flips:
        obs.event(kind, times[i + 1], engine=engine, node=node,
                  value=float(values[i + 1]))
    return int(flips.size)

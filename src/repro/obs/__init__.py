"""Unified observability: metrics registry, profiling spans, trace export.

One :class:`Observability` handle instruments all four engines (the
reference and batch fluid integrators, the reference and batched packet
engines) and the parallel runner.  See ``EXPERIMENTS.md`` for a usage
guide and ``repro trace`` / ``repro profile`` for the CLI surface.
"""

from .handle import Observability, emit_sign_switches
from .metrics import (
    Counter,
    FCT_SLOWDOWN_EDGES,
    Gauge,
    Histogram,
    MetricsRegistry,
    POINT_WALL_EDGES,
    QUEUE_FRAC_EDGES,
    SOJOURN_REL_EDGES,
)
from .profile import PointTiming, SpanProfiler, SpanStats
from .trace import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    TraceRecord,
    TraceSink,
    read_trace,
    write_trace,
)
from .vocab import (
    COUNTER_NAMES,
    HISTOGRAM_NAMES,
    SPAN_NAMES,
    registered_counter,
    registered_gauge,
    registered_histogram,
    registered_span,
)

__all__ = [
    "Observability",
    "emit_sign_switches",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QUEUE_FRAC_EDGES",
    "SOJOURN_REL_EDGES",
    "POINT_WALL_EDGES",
    "FCT_SLOWDOWN_EDGES",
    "PointTiming",
    "SpanProfiler",
    "SpanStats",
    "EVENT_KINDS",
    "SCHEMA_VERSION",
    "TraceRecord",
    "TraceSink",
    "read_trace",
    "write_trace",
    "SPAN_NAMES",
    "COUNTER_NAMES",
    "HISTOGRAM_NAMES",
    "registered_span",
    "registered_counter",
    "registered_histogram",
    "registered_gauge",
]

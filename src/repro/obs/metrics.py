"""Lightweight metrics primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named metrics that all
engines and the runner write into through one
:class:`~repro.obs.handle.Observability` handle.  The design constraints
come from the parallel runner and the conformance suite:

* **mergeable** — a worker process snapshots its registry
  (:meth:`MetricsRegistry.snapshot`, a plain picklable dict) and the
  parent folds it in (:meth:`MetricsRegistry.merge_snapshot`).  Counter
  and histogram merges are commutative and associative (integer bucket
  counts; float sums commute up to round-off), so the fold order —
  whichever order pool futures complete in — cannot change the result.
* **fixed buckets** — histograms carry explicit, immutable bucket edges
  chosen at creation; two histograms merge only when their edges are
  identical.  The canonical queue histograms use *normalised* values
  (occupancy as a fraction of the buffer, sojourn relative to the
  reference sojourn ``q0/C``) so every engine and parameter point shares
  one bucket layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..viz.series import format_table

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QUEUE_FRAC_EDGES",
    "SOJOURN_REL_EDGES",
    "POINT_WALL_EDGES",
    "FCT_SLOWDOWN_EDGES",
]

#: Queue occupancy as a fraction of the physical buffer: 16 uniform
#: buckets on [0, 1] plus under/overflow (overflow = recorder values
#: above ``B``, which only numerical slop can produce).
QUEUE_FRAC_EDGES: tuple[float, ...] = tuple(np.linspace(0.0, 1.0, 17))

#: Sojourn time relative to the reference sojourn ``q0 / C`` (i.e.
#: ``q / q0``): 16 uniform buckets on [0, 4] plus under/overflow.
SOJOURN_REL_EDGES: tuple[float, ...] = tuple(np.linspace(0.0, 4.0, 17))

#: Per-point runner wall time in seconds, roughly log-spaced.
POINT_WALL_EDGES: tuple[float, ...] = (
    0.0, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
)

#: Flow-completion slowdown: achieved FCT over the ideal transfer time
#: ``size / demand``.  1.0 is an unimpeded flow; log-spaced buckets out
#: to 100x cover everything short of a stalled mouse (overflow bucket).
FCT_SLOWDOWN_EDGES: tuple[float, ...] = (
    0.0, 1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 35.0, 60.0, 100.0,
)


@dataclass
class Counter:
    """A monotonically increasing sum (float so it can carry seconds)."""

    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def merge(self, other: "Counter | float") -> None:
        self.value += other.value if isinstance(other, Counter) else float(other)


@dataclass
class Gauge:
    """A last-written value (not commutatively mergeable; merges keep
    the larger update count's value, ties prefer ``self``)."""

    value: float = 0.0
    updates: int = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def merge(self, other: "Gauge | tuple") -> None:
        if not isinstance(other, Gauge):
            other = Gauge(*other)
        if other.updates > self.updates:
            self.value = other.value
        self.updates += other.updates


class Histogram:
    """Fixed-bucket histogram with explicit under/overflow buckets.

    ``counts`` has ``len(edges) + 1`` slots: ``counts[0]`` holds values
    below ``edges[0]``, ``counts[i]`` values in ``[edges[i-1],
    edges[i])``, and ``counts[-1]`` values at or above ``edges[-1]``.
    Bucket counts are integers, so merging histograms is exactly
    associative and commutative; the tracked ``sum`` commutes up to
    float round-off.
    """

    __slots__ = ("edges", "counts", "sum")

    def __init__(self, edges) -> None:
        edges = tuple(float(e) for e in edges)
        if len(edges) < 2:
            raise ValueError("a histogram needs at least two bucket edges")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.edges = edges
        self.counts = np.zeros(len(edges) + 1, dtype=np.int64)
        self.sum = 0.0

    @property
    def count(self) -> int:
        """Total number of observed values (all buckets)."""
        return int(self.counts.sum())

    def mean(self) -> float:
        n = self.count
        return self.sum / n if n else 0.0

    def observe(self, value: float) -> None:
        self.counts[int(np.searchsorted(self.edges, value, side="right"))] += 1
        self.sum += float(value)

    def observe_many(self, values) -> None:
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        idx = np.searchsorted(self.edges, values, side="right")
        self.counts += np.bincount(idx, minlength=self.counts.size)
        self.sum += float(values.sum())

    def merge(self, other: "Histogram") -> None:
        if tuple(other.edges) != self.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{other.edges!r} vs {self.edges!r}"
            )
        self.counts += other.counts
        self.sum += other.sum

    def snapshot(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": self.counts.tolist(),
            "sum": self.sum,
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Histogram":
        hist = cls(snap["edges"])
        hist.counts = np.asarray(snap["counts"], dtype=np.int64).copy()
        hist.sum = float(snap["sum"])
        return hist


@dataclass
class MetricsRegistry:
    """A flat, mergeable namespace of counters, gauges and histograms."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    # -- access / recording -------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str, edges=None) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            if edges is None:
                raise KeyError(
                    f"histogram {name!r} does not exist and no edges were given"
                )
            hist = self.histograms[name] = Histogram(edges)
        elif edges is not None and tuple(float(e) for e in edges) != hist.edges:
            raise ValueError(f"histogram {name!r} already exists with other edges")
        return hist

    def inc(self, name: str, n: float = 1.0) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, value: float, edges=None) -> None:
        self.histogram(name, edges).observe(value)

    def observe_many(self, name: str, values, edges=None) -> None:
        self.histogram(name, edges).observe_many(values)

    # -- snapshots / merging ------------------------------------------------

    def snapshot(self) -> dict:
        """A plain picklable/JSON-able dict of the whole registry."""
        return {
            "counters": {k: c.value for k, c in self.counters.items()},
            "gauges": {k: [g.value, g.updates] for k, g in self.gauges.items()},
            "histograms": {k: h.snapshot() for k, h in self.histograms.items()},
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).merge(value)
        for name, pair in snap.get("gauges", {}).items():
            self.gauge(name).merge(tuple(pair))
        for name, hsnap in snap.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                self.histograms[name] = Histogram.from_snapshot(hsnap)
            else:
                hist.merge(Histogram.from_snapshot(hsnap))

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_snapshot(other.snapshot())

    # -- rendering ----------------------------------------------------------

    def counter_values(self, prefix: str = "") -> dict[str, float]:
        return {
            name: c.value for name, c in sorted(self.counters.items())
            if name.startswith(prefix)
        }

    def summary_rows(self) -> list[list]:
        rows: list[list] = []
        for name, counter in sorted(self.counters.items()):
            rows.append([name, counter.value])
        for name, gauge in sorted(self.gauges.items()):
            rows.append([name, gauge.value])
        for name, hist in sorted(self.histograms.items()):
            rows.append([f"{name} (n, mean)", f"{hist.count}, {hist.mean():.6g}"])
        return rows

    def summary_table(self) -> str:
        return format_table(["metric", "value"], self.summary_rows())

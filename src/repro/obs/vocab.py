"""The registered observability *name* vocabulary.

:mod:`repro.obs.trace` owns the cross-engine **event kind** vocabulary
(:data:`~repro.obs.trace.EVENT_KINDS`).  This module registers every
other name the instrumentation layer is allowed to write — span names,
counter names and histogram names — so ad-hoc strings cannot leak into
metric registries or profiles where they would silently fork the
cross-engine conformance contract.

The registries are **plain string literals** on purpose: the
``obs-vocab`` check in :mod:`repro.lint` extracts them from this file's
AST without importing the package, so the vocabulary is enforceable
before any code runs.  Names with a dynamic component (per-engine
histograms, per-backend warm-up spans) are registered as ``_PREFIXES``
or ``_SUFFIXES``: a dynamic name is legal when one of its registered
literal anchors matches.

Adding an instrumentation point therefore means adding its name here
first; a typo'd or unregistered name is a lint error, not a mystery row
in a metrics table.
"""

from __future__ import annotations

from .trace import EVENT_KINDS

__all__ = [
    "EVENT_KINDS",
    "SPAN_NAMES",
    "SPAN_PREFIXES",
    "SPAN_SUFFIXES",
    "COUNTER_NAMES",
    "COUNTER_PREFIXES",
    "HISTOGRAM_NAMES",
    "HISTOGRAM_PREFIXES",
    "GAUGE_NAMES",
    "registered_span",
    "registered_counter",
    "registered_histogram",
    "registered_gauge",
]

#: Exact span names (profiler wall-time buckets).
SPAN_NAMES = (
    "runner.experiments",      # repro.runner.executor: whole-suite wall
    "runner.sweep",            # repro.runner.parallel: one sweep's wall
    "fluid.reference.simulate",  # solve_ivp reference integrator
    "fluid.batch.kernel",      # batch RK4 kernel (numpy and compiled)
    "shard.window",            # repro.shard.runtime: one conservative window
    "serve.job",               # repro.serve.server: one job's compute wall
    "serve.drain",             # repro.serve.server: drain-to-quiesce wall
)

#: Span-name prefixes with a dynamic tail.
SPAN_PREFIXES = (
    "kernels.jit_warmup.",     # + backend tier name (numba/cffi)
)

#: Span-name suffixes with a dynamic engine head.
SPAN_SUFFIXES = (
    ".run",                    # packet.<engine>.run, <engine>.multihop.run
)

#: Exact counter names (beyond the per-kind event counters).
COUNTER_NAMES = (
    "runner.evaluated",
    "runner.cache_hit",
    "runner.cache_miss",
    "runner.kernel_seconds",
    "runner.worker.points",
    "runner.worker.kernel_seconds",
    "shard.windows",           # repro.shard.coordinator: barrier count
    "shard.msgs.sent",         # repro.shard.runtime: cross-shard messages out
    "shard.msgs.recv",         # repro.shard.runtime: cross-shard messages in
    "serve.connections",       # repro.serve.server: client connections seen
    "serve.requests",          # protocol requests handled (all ops)
    "serve.submitted",         # submit ops accepted (incl. deduplicated)
    "serve.dedup.inflight",    # submissions attached to a running job
    "serve.dedup.cache",       # submissions served from the result cache
    "serve.computed",          # jobs that actually executed (unique work)
    "serve.completed",         # jobs reaching the done state
    "serve.failed",            # jobs reaching the failed state
    "serve.retried",           # attempts retried after a WorkerError
    "serve.requeued",          # queued jobs written to the requeue file
)

#: Counter-name prefixes with a dynamic tail.
COUNTER_PREFIXES = (
    "events.",                 # + event kind (validated against EVENT_KINDS)
)

#: Exact histogram names.
HISTOGRAM_NAMES = (
    "runner.point_wall_seconds",
    "runner.worker.point_wall_seconds",
    "serve.job_wall_seconds",  # repro.serve.server: per-job compute wall
)

#: Histogram-name prefixes with a dynamic engine tail.
HISTOGRAM_PREFIXES = (
    "queue_frac.",             # + engine tag (occupancy / buffer)
    "sojourn_rel.",            # + engine tag (sojourn / reference)
    "fct_slowdown.",           # + engine tag (FCT / ideal transfer time)
)

#: Exact gauge names (none registered yet).
GAUGE_NAMES: tuple[str, ...] = ()


def _registered(name: str, names: tuple[str, ...],
                prefixes: tuple[str, ...] = (),
                suffixes: tuple[str, ...] = ()) -> bool:
    if name in names:
        return True
    if any(name.startswith(p) and len(name) > len(p) for p in prefixes):
        return True
    return any(name.endswith(s) and len(name) > len(s) for s in suffixes)


def registered_span(name: str) -> bool:
    """True when ``name`` is a registered profiler span name."""
    return _registered(name, SPAN_NAMES, SPAN_PREFIXES, SPAN_SUFFIXES)


def registered_counter(name: str) -> bool:
    """True when ``name`` is a registered metrics counter name."""
    if name.startswith("events."):
        return name.removeprefix("events.") in EVENT_KINDS
    return _registered(name, COUNTER_NAMES, COUNTER_PREFIXES)


def registered_histogram(name: str) -> bool:
    """True when ``name`` is a registered metrics histogram name."""
    return _registered(name, HISTOGRAM_NAMES, HISTOGRAM_PREFIXES)


def registered_gauge(name: str) -> bool:
    """True when ``name`` is a registered metrics gauge name."""
    return _registered(name, GAUGE_NAMES)

"""The job-server wire format: newline-delimited JSON messages.

Every message — request, response, or streamed progress event — is one
JSON object serialised on a single line and terminated by ``"\\n"``.
The format is deliberately primitive: any language with a socket and a
JSON parser is a client, and a session transcript is itself a valid
JSONL file.

Requests carry an ``op`` field naming the operation (:data:`OPS`) plus
op-specific fields; responses carry ``ok`` (bool) plus either result
fields or an ``error`` string.  Streamed progress events (the ``watch``
op and ``submit`` with ``watch=true``) carry an ``event`` field instead
of ``ok``: one ``{"event": "progress", "record": {...}}`` message per
tailed trace record, then a final ``{"event": "end", "state": ...}``.

Lines longer than :data:`MAX_LINE_BYTES` are a protocol error on both
sides — the server must not buffer unbounded client input, and results
larger than the cap should be fetched from the cache directory instead
of the socket.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "ProtocolError",
    "encode_line",
    "decode_line",
    "validate_request",
    "error_response",
]

#: Bump when a request/response field is renamed or changes meaning.
PROTOCOL_VERSION = 1

#: Hard cap on one serialised message (8 MiB).
MAX_LINE_BYTES = 8 * 1024 * 1024

#: The request vocabulary.
OPS = frozenset({
    "ping",      # liveness + protocol version probe
    "submit",    # submit one job (optionally watch its progress)
    "status",    # one job's state/attempts/error
    "result",    # one job's result envelope (optionally wait for it)
    "watch",     # stream a job's progress events until terminal
    "list",      # all jobs this server knows about
    "stats",     # server-level obs counters and spans
    "drain",     # stop accepting, requeue queued jobs, finish running
})


class ProtocolError(ValueError):
    """A message violating the wire format (not valid JSON, no op, …)."""


def encode_line(obj: dict[str, Any]) -> bytes:
    """Serialise one message to its wire form (compact JSON + newline)."""
    data = json.dumps(obj, separators=(",", ":"), sort_keys=True,
                      allow_nan=False).encode()
    if len(data) + 1 > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line cap")
    return data + b"\n"


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line back into a message dict."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"line of {len(line)} bytes exceeds the "
                f"{MAX_LINE_BYTES}-byte cap")
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty message line")
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(obj).__name__}")
    return obj


def validate_request(obj: dict[str, Any]) -> str:
    """Check a decoded request and return its ``op``.

    Raises :class:`ProtocolError` on a missing/unknown op or a protocol
    version the server does not speak (absent ``v`` is accepted and
    treated as the current version).
    """
    op = obj.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; known ops: {', '.join(sorted(OPS))}")
    version = obj.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} not supported "
            f"(server speaks v{PROTOCOL_VERSION})")
    return op


def error_response(message: str) -> dict[str, Any]:
    """The standard error payload."""
    return {"ok": False, "error": message}

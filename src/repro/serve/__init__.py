"""Simulation-as-a-service: an asyncio job server over the runner.

The runner (process-pool execution), the content-addressed
:class:`~repro.runner.cache.ResultCache` and the obs JSONL trace sink
are the ingredients of a long-running service; this package binds them
together so many concurrent clients share one warm cache and one
scheduler:

* :mod:`repro.serve.protocol` — the newline-delimited-JSON wire format;
* :mod:`repro.serve.jobs` — request canonicalisation into content
  addresses (the dedup key) and the blocking per-kind executors;
* :mod:`repro.serve.server` — the asyncio :class:`JobServer`: in-flight
  and cache dedup, bounded concurrency, retry-once on worker faults,
  graceful drain-on-SIGTERM with requeue;
* :mod:`repro.serve.progress` — the per-job streaming JSONL trace sink
  that subscribed clients tail;
* :mod:`repro.serve.client` — sync and async client libraries;
* :mod:`repro.serve.testing` — a background-thread server harness for
  tests and benchmarks.

CLI: ``repro serve`` runs a server; ``repro submit`` submits jobs,
watches progress, and fetches results.
"""

from .client import AsyncServeClient, ServeClient, ServeError
from .jobs import (JOB_KINDS, JobError, JobRequest, execute_job, job_key,
                   normalize_request)
from .progress import ProgressStats, StreamingTraceSink, TraceStreamWriter
from .protocol import (MAX_LINE_BYTES, PROTOCOL_VERSION, ProtocolError,
                       decode_line, encode_line)
from .server import Job, JobServer, JobState, ServeConfig

__all__ = [
    "AsyncServeClient",
    "ServeClient",
    "ServeError",
    "JOB_KINDS",
    "JobError",
    "JobRequest",
    "execute_job",
    "job_key",
    "normalize_request",
    "ProgressStats",
    "StreamingTraceSink",
    "TraceStreamWriter",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_line",
    "encode_line",
    "Job",
    "JobServer",
    "JobState",
    "ServeConfig",
]

"""Per-job progress streaming over the obs JSONL trace format.

Each running job gets its own trace file in the server's spool
directory, written *incrementally*: a schema header on open, then one
line per event, flushed as it happens.  The file is a valid obs trace
at every instant (:func:`repro.obs.read_trace` can load a prefix of a
live job), which is what makes tailing it the transport for progress
streaming — the server's watch loop and any out-of-band ``tail -f``
see the same bytes.

Three pieces:

* :class:`TraceStreamWriter` — the append-and-flush JSONL writer
  (thread-safe: the executor thread and the event loop both emit);
* :class:`StreamingTraceSink` — an obs :class:`~repro.obs.TraceSink`
  that forwards every appended record to a writer, so engines wired to
  a job's :class:`~repro.obs.Observability` handle stream for free;
* :class:`TraceTail` — the incremental reader: remembers its byte
  offset and returns only records appended since the last poll;
* :class:`ProgressStats` — a :class:`~repro.runner.RunnerStats` whose
  ``record`` also reports one finished work unit to a callback, which
  the server turns into a ``job_progress`` trace event.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Callable

from ..obs.trace import SCHEMA_VERSION, TraceRecord, TraceSink
from ..runner.instrumentation import RunnerStats

__all__ = [
    "TraceStreamWriter",
    "StreamingTraceSink",
    "TraceTail",
    "ProgressStats",
]


class TraceStreamWriter:
    """Appends obs trace records to a JSONL file, one flush per record.

    The header goes out on construction so the file is decodable from
    the first byte.  ``write`` is safe to call from any thread; closing
    is idempotent and later writes are silently dropped (a job may
    still be flushing its last records while the server tears the spool
    down).
    """

    def __init__(self, path: str | Path, *, meta: dict | None = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        header = {"schema_version": SCHEMA_VERSION}
        if meta:
            header.update(meta)
        self._fh = self.path.open("w")
        self._fh.write(json.dumps(header, sort_keys=True) + "\n")
        self._fh.flush()

    def write(self, record: TraceRecord) -> None:
        line = json.dumps(record.to_json_obj(), sort_keys=True) + "\n"
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(line)
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "TraceStreamWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StreamingTraceSink(TraceSink):
    """A trace sink that mirrors every appended record to a writer.

    The in-memory cap (``max_records``) still applies to what the sink
    *retains*; the file keeps the full stream, so the writer is the
    authoritative record and the memory copy is a bounded working set.
    """

    def __init__(self, writer: TraceStreamWriter,
                 max_records: int | None = None):
        super().__init__(max_records=max_records)
        self.writer = writer

    def append(self, record: TraceRecord) -> None:
        super().append(record)
        self.writer.write(record)


class TraceTail:
    """Incremental reader over a live streamed trace file.

    ``poll()`` returns the records appended since the previous call,
    tolerating a partially written final line (it is left for the next
    poll).  The header line is validated once and not returned.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._offset = 0
        self._buffer = b""
        self._header: dict | None = None

    @property
    def header(self) -> dict | None:
        """The trace header, once the first poll has seen it."""
        return self._header

    def poll(self) -> list[TraceRecord]:
        try:
            with self.path.open("rb") as fh:
                fh.seek(self._offset)
                chunk = fh.read()
        except FileNotFoundError:
            return []
        self._offset += len(chunk)
        self._buffer += chunk
        records: list[TraceRecord] = []
        while True:
            line, sep, rest = self._buffer.partition(b"\n")
            if not sep:
                break
            self._buffer = rest
            if not line.strip():
                continue
            obj = json.loads(line)
            if self._header is None:
                version = obj.get("schema_version")
                if version != SCHEMA_VERSION:
                    raise ValueError(
                        f"{self.path}: unsupported trace schema_version "
                        f"{version!r} (expected {SCHEMA_VERSION})")
                self._header = obj
                continue
            records.append(TraceRecord.from_json_obj(obj))
        return records


class ProgressStats(RunnerStats):
    """Runner stats that report each finished work unit as progress.

    The parallel runner calls ``record`` in the parent process as
    results come back, so the callback fires once per completed unit —
    ``on_unit(done, label, cached)`` — from whatever thread is driving
    the job.  The server's callback turns that into a ``job_progress``
    trace event on the job's stream.
    """

    def __init__(self, on_unit: Callable[[int, str, bool], None],
                 **kwargs):
        super().__init__(**kwargs)
        self._on_unit = on_unit

    def record(self, label: str, wall: float, *, cached: bool = False,
               kernel: float = 0.0) -> None:
        super().record(label, wall, cached=cached, kernel=kernel)
        self._on_unit(len(self.points), label, cached)

"""The asyncio :class:`JobServer`: dedup, retry, drain, streaming.

One server process owns one scheduler, one obs handle, and (optionally)
one on-disk :class:`~repro.runner.cache.ResultCache` shared by every
client.  The protocol loop runs on the event loop; job execution runs
on a bounded thread pool (the runner fans out to *processes* below
that, so the GIL is not on the compute path).

Deduplication happens at three levels, checked in order on submit:

1. **in-flight** — an identical job already queued/running: the new
   submission attaches to it (one compute, many waiters);
2. **memory** — an identical job already finished this process: served
   from the job table;
3. **cache** — the envelope is in the result cache (warm start from a
   previous server): served from disk.  A cross-process O_EXCL *claim*
   around the compute lets several servers share one cache directory
   without duplicating work.

A failed attempt that died in a worker (:class:`~repro.runner.pool.
WorkerError`) is retried up to ``max_retries`` times; any other
exception fails the job immediately (deterministic errors do not get
better by retrying).

Graceful drain (SIGTERM/SIGINT or the ``drain`` op): new submissions
are refused, queued-but-unstarted jobs are appended to the spool's
``requeue.jsonl`` (resubmitted automatically by the next server over
the same spool), running jobs finish, then the server stops.  Accepted
jobs are never lost — they end in the cache or in the requeue file —
and never duplicated, because resubmission dedups against the cache.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any

from ..obs import Observability, POINT_WALL_EDGES
from ..obs.trace import TraceRecord
from ..runner.cache import ResultCache
from ..runner.pool import WorkerError
from .jobs import JobError, JobRequest, execute_job, normalize_request
from .progress import ProgressStats, StreamingTraceSink, TraceStreamWriter, TraceTail
from .protocol import (MAX_LINE_BYTES, PROTOCOL_VERSION, ProtocolError,
                       decode_line, encode_line, error_response,
                       validate_request)

__all__ = ["JobState", "Job", "ServeConfig", "JobServer"]

_MISS = object()

#: Cache namespace for finished job envelopes.
_ENVELOPE_ID = "serve.envelope"


class JobState:
    """Job lifecycle states (plain strings on the wire)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    REQUEUED = "requeued"

    ALL = frozenset({QUEUED, RUNNING, DONE, FAILED, REQUEUED})
    TERMINAL = frozenset({DONE, FAILED, REQUEUED})


@dataclass
class ServeConfig:
    """Knobs for one :class:`JobServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read JobServer.port after start()
    cache_dir: Path | str | None = None  # None = in-memory dedup only
    spool_dir: Path | str | None = None  # trace streams + requeue file
    workers: int = 0        # process-pool size per job (0 = inline)
    max_concurrent: int = 2  # jobs executing at once
    max_retries: int = 1     # extra attempts after a worker fault
    poll_interval: float = 0.02  # watch-loop tail period (seconds)


@dataclass
class Job:
    """One accepted job and everything the server knows about it."""

    request: JobRequest
    key: str
    trace_path: Path
    state: str = JobState.QUEUED
    attempts: int = 0
    units: int = 0
    submissions: int = 1
    error: str = ""
    envelope: dict | None = None
    accepted_at: float = 0.0  # monotonic; trace t is relative to this
    done: asyncio.Event = field(default_factory=asyncio.Event)
    writer: TraceStreamWriter | None = None
    task: asyncio.Task | None = None

    def summary(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "kind": self.request.job_kind,
            "description": self.request.describe(),
            "state": self.state,
            "attempts": self.attempts,
            "units": self.units,
            "submissions": self.submissions,
        }


class JobServer:
    """Accepts jobs over newline-delimited JSON and runs them dedup'd."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.obs = Observability()
        self.cache: ResultCache | None = None
        if self.config.cache_dir is not None:
            self.cache = ResultCache(Path(self.config.cache_dir))
        spool = self.config.spool_dir
        if spool is None and self.config.cache_dir is not None:
            spool = Path(self.config.cache_dir) / "spool"
        self._tmp_spool: tempfile.TemporaryDirectory | None = None
        if spool is None:
            self._tmp_spool = tempfile.TemporaryDirectory(prefix="repro-serve-")
            spool = self._tmp_spool.name
        self.spool_dir = Path(spool)
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        self.requeue_path = self.spool_dir / "requeue.jsonl"
        self.jobs: dict[str, Job] = {}
        self.port: int | None = None
        self._sem = asyncio.Semaphore(self.config.max_concurrent)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrent,
            thread_name_prefix="serve-job")
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._stopped = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "JobServer":
        """Bind the listening socket and recover any requeued jobs."""
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port,
            limit=MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        self._recover_requeued()
        return self

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT start a graceful drain (CLI entry point)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, self.begin_drain)

    async def run(self) -> None:
        """Block until the server has fully drained and stopped."""
        await self._stopped.wait()

    def begin_drain(self) -> int:
        """Refuse new work, requeue unstarted jobs, finish the rest.

        Returns the number of jobs written to the requeue file.  Safe
        to call more than once (later calls are no-ops) and from a
        signal handler (it only schedules work on the loop).
        """
        if self._draining:
            return 0
        self._draining = True
        requeued: list[dict] = []
        with self.obs.span("serve.drain"):
            for job in self.jobs.values():
                if job.state != JobState.QUEUED:
                    continue
                self._emit(job, "job_retried",
                           detail="requeued: server draining")
                job.state = JobState.REQUEUED
                self.obs.count("serve.requeued")
                requeued.append(job.request.to_payload())
                if job.task is not None:
                    job.task.cancel()
            if requeued:
                with self.requeue_path.open("a") as fh:
                    for payload in requeued:
                        fh.write(json.dumps(payload, sort_keys=True) + "\n")
        asyncio.ensure_future(self._finish_drain())
        return len(requeued)

    async def _finish_drain(self) -> None:
        for job in list(self.jobs.values()):
            await job.done.wait()
        await self.stop()

    async def stop(self) -> None:
        """Close the socket and release resources (idempotent)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False)
        for job in self.jobs.values():
            if job.writer is not None:
                job.writer.close()
        self._stopped.set()

    def _recover_requeued(self) -> None:
        """Resubmit jobs a previous server drained into the spool."""
        try:
            lines = self.requeue_path.read_text().splitlines()
        except FileNotFoundError:
            return
        self.requeue_path.unlink()
        for line in lines:
            if not line.strip():
                continue
            with contextlib.suppress(JobError):
                self.submit_job(json.loads(line))

    # -- submission ---------------------------------------------------------

    def submit_job(self, payload: Any) -> tuple[Job, str]:
        """Accept one job payload; returns ``(job, dedup)``.

        ``dedup`` says how the job was satisfied: ``"new"`` (scheduled),
        ``"inflight"`` (attached to a running identical job), ``"done"``
        (identical job already finished in this process) or ``"cache"``
        (envelope found in the shared result cache).  Raises
        :class:`~repro.serve.jobs.JobError` on a bad payload or while
        draining.
        """
        if self._draining:
            raise JobError("server is draining; resubmit to its successor")
        request = normalize_request(payload)
        key = request.key()
        self.obs.count("serve.submitted")
        job = self.jobs.get(key)
        if job is not None:
            if job.state in (JobState.QUEUED, JobState.RUNNING):
                job.submissions += 1
                self.obs.count("serve.dedup.inflight")
                return job, "inflight"
            if job.state == JobState.DONE:
                job.submissions += 1
                self.obs.count("serve.dedup.cache")
                return job, "done"
            # FAILED/REQUEUED: fall through and schedule a fresh run.
        if self.cache is not None:
            envelope = self.cache.get(_ENVELOPE_ID, {"key": key}, _MISS)
            if envelope is not _MISS:
                job = self._make_job(request, key)
                job.state = JobState.DONE
                job.envelope = envelope
                job.attempts = int(envelope.get("attempts", 0))
                self._emit(job, "job_finished", value=0.0, detail="cache")
                job.writer.close()
                job.done.set()
                self.jobs[key] = job
                self.obs.count("serve.dedup.cache")
                return job, "cache"
        job = self._make_job(request, key)
        self.jobs[key] = job
        depth = sum(1 for j in self.jobs.values()
                    if j.state == JobState.QUEUED)
        self._emit(job, "job_queued", value=float(depth))
        job.task = asyncio.ensure_future(self._run_job(job))
        return job, "new"

    def _make_job(self, request: JobRequest, key: str) -> Job:
        trace_path = self.spool_dir / f"{key}.trace.jsonl"
        job = Job(request=request, key=key, trace_path=trace_path,
                  accepted_at=time.monotonic())
        job.writer = TraceStreamWriter(
            trace_path, meta={"job": key, "kind": request.job_kind})
        return job

    # -- execution ----------------------------------------------------------

    def _emit(self, job: Job, kind: str, *, value: float | None = None,
              detail: str = "") -> None:
        """Record one lifecycle event (server obs + the job's stream)."""
        t = time.monotonic() - job.accepted_at
        self.obs.event(kind, t, engine="serve", node=job.key, value=value,
                       detail=detail)
        job.writer.write(TraceRecord(kind=kind, t=t, engine="serve",
                                     node=job.key, value=value,
                                     detail=detail))

    def _unit_callback(self, job: Job, loop: asyncio.AbstractEventLoop):
        """Progress hook: runs on the job's executor thread."""
        def on_unit(done: int, label: str, cached: bool) -> None:
            job.units = done
            t = time.monotonic() - job.accepted_at
            job.writer.write(TraceRecord(
                kind="job_progress", t=t, engine="serve", node=job.key,
                value=float(done), detail=label))
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(partial(
                    self.obs.event, "job_progress", t, engine="serve",
                    node=job.key, value=float(done), detail=label))
        return on_unit

    async def _run_job(self, job: Job) -> None:
        try:
            async with self._sem:
                await self._execute_with_retry(job)
        except asyncio.CancelledError:
            if job.state not in JobState.TERMINAL:
                job.state = JobState.REQUEUED
            raise
        except Exception as exc:  # scheduler bug — fail, don't hang
            self._fail(job, f"internal error: {type(exc).__name__}: {exc}")
        finally:
            job.done.set()
            job.writer.close()

    async def _execute_with_retry(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        claimed = False
        if self.cache is not None:
            claimed = await self._await_claim(job)
            if not claimed:
                return  # another process computed it while we waited
        try:
            max_attempts = 1 + max(0, self.config.max_retries)
            for attempt in range(1, max_attempts + 1):
                job.attempts = attempt
                job.state = JobState.RUNNING
                self._emit(job, "job_started", value=float(attempt))
                job_obs = Observability()
                job_obs.trace = StreamingTraceSink(
                    job.writer, max_records=job_obs.trace.max_records)
                stats = ProgressStats(
                    self._unit_callback(job, loop), obs=job_obs,
                    workers=max(1, self.config.workers))
                t0 = time.monotonic()
                try:
                    payload = await loop.run_in_executor(
                        self._executor,
                        partial(execute_job, job.request, cache=self.cache,
                                workers=self.config.workers, stats=stats,
                                obs=job_obs))
                except WorkerError as exc:
                    # "worker N died:" plus the first line of detail
                    reason = " ".join(
                        line.strip()
                        for line in str(exc).splitlines()[:2]).strip()
                    if attempt < max_attempts:
                        self.obs.count("serve.retried")
                        self._emit(job, "job_retried", detail=reason)
                        continue
                    self._fail(job, f"worker fault persisted across "
                                    f"{attempt} attempts: {reason}")
                    return
                except Exception as exc:
                    self._fail(job, f"{type(exc).__name__}: {exc}")
                    return
                self._finish(job, payload, time.monotonic() - t0, job_obs)
                return
        finally:
            if claimed:
                self.cache.release_claim(_ENVELOPE_ID, {"key": job.key})

    async def _await_claim(self, job: Job) -> bool:
        """Win the cross-process claim, or adopt a foreign result.

        Returns True when this server owns the compute.  False means
        another process holding the claim finished first — the job is
        completed from its cached envelope.
        """
        while True:
            envelope = self.cache.get(_ENVELOPE_ID, {"key": job.key}, _MISS)
            if envelope is not _MISS:
                job.envelope = envelope
                job.state = JobState.DONE
                self.obs.count("serve.dedup.cache")
                self.obs.count("serve.completed")
                self._emit(job, "job_finished", value=0.0, detail="cache")
                return False
            if self.cache.try_claim(_ENVELOPE_ID, {"key": job.key}):
                return True
            await asyncio.sleep(self.config.poll_interval * 5)

    def _finish(self, job: Job, payload: dict, wall: float,
                job_obs: Observability) -> None:
        self.obs.merge_metrics(job_obs.snapshot())
        counters = job_obs.metrics.snapshot().get("counters", {})
        job.envelope = {
            "job_kind": job.request.job_kind,
            "key": job.key,
            "payload": payload,
            "attempts": job.attempts,
            "units": job.units,
            "counters": {k: v for k, v in sorted(counters.items())},
        }
        job.state = JobState.DONE
        if self.cache is not None:
            self.cache.put(_ENVELOPE_ID, {"key": job.key}, job.envelope)
        self.obs.count("serve.computed")
        self.obs.count("serve.completed")
        self.obs.observe("serve.job_wall_seconds", wall, POINT_WALL_EDGES)
        self.obs.add_span("serve.job", wall)
        self._emit(job, "job_finished", value=wall)

    def _fail(self, job: Job, error: str) -> None:
        job.error = error
        job.state = JobState.FAILED
        self.obs.count("serve.failed")
        self._emit(job, "job_failed", detail=error)

    # -- protocol loop ------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.obs.count("serve.connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_line(error_response(
                        f"line exceeds the {MAX_LINE_BYTES}-byte cap")))
                    await writer.drain()
                    break
                if not line:
                    break
                self.obs.count("serve.requests")
                try:
                    msg = decode_line(line)
                    op = validate_request(msg)
                    await self._dispatch(op, msg, writer)
                except (ProtocolError, JobError) as exc:
                    writer.write(encode_line(error_response(str(exc))))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _require_job(self, msg: dict) -> Job:
        key = msg.get("key")
        job = self.jobs.get(key) if isinstance(key, str) else None
        if job is None:
            raise ProtocolError(f"unknown job key {key!r}")
        return job

    def _status_obj(self, job: Job, *, dedup: str | None = None,
                    include_result: bool = False) -> dict:
        obj: dict[str, Any] = {"ok": True, **job.summary()}
        if dedup is not None:
            obj["dedup"] = dedup
        if job.error:
            obj["failure"] = job.error
        if include_result and job.envelope is not None:
            obj["result"] = job.envelope
        return obj

    async def _dispatch(self, op: str, msg: dict,
                        writer: asyncio.StreamWriter) -> None:
        if op == "ping":
            writer.write(encode_line({
                "ok": True, "v": PROTOCOL_VERSION, "server": "repro.serve",
                "draining": self._draining, "jobs": len(self.jobs)}))
        elif op == "submit":
            job, dedup = self.submit_job(msg.get("job"))
            if msg.get("watch"):
                writer.write(encode_line(self._status_obj(job, dedup=dedup)))
                await writer.drain()
                await self._stream(job, writer)
                return
            if msg.get("wait"):
                await job.done.wait()
            writer.write(encode_line(self._status_obj(
                job, dedup=dedup, include_result=bool(msg.get("wait")))))
        elif op == "status":
            writer.write(encode_line(self._status_obj(self._require_job(msg))))
        elif op == "result":
            job = self._require_job(msg)
            if msg.get("wait", True):
                timeout = msg.get("timeout")
                try:
                    await asyncio.wait_for(job.done.wait(), timeout)
                except asyncio.TimeoutError:
                    writer.write(encode_line(error_response(
                        f"timed out after {timeout}s waiting for "
                        f"{job.key}")))
                    return
            if job.state == JobState.DONE and job.envelope is not None:
                writer.write(encode_line(self._status_obj(
                    job, include_result=True)))
            else:
                writer.write(encode_line(error_response(
                    f"job {job.key} is {job.state}"
                    + (f": {job.error}" if job.error else ""))))
        elif op == "watch":
            await self._stream(self._require_job(msg), writer)
        elif op == "list":
            writer.write(encode_line({
                "ok": True,
                "jobs": [j.summary() for j in self.jobs.values()]}))
        elif op == "stats":
            snap = self.obs.metrics.snapshot()
            writer.write(encode_line({
                "ok": True,
                "draining": self._draining,
                "counters": snap.get("counters", {}),
                "events": self.obs.event_counts(),
                "spans": self.obs.profiler.snapshot(),
            }))
        elif op == "drain":
            requeued = self.begin_drain()
            writer.write(encode_line({
                "ok": True, "draining": True, "requeued": requeued}))
        else:  # unreachable: validate_request vets op against OPS
            raise ProtocolError(f"unhandled op {op!r}")

    async def _stream(self, job: Job, writer: asyncio.StreamWriter) -> None:
        """Tail the job's trace stream to one client until terminal."""
        tail = TraceTail(job.trace_path)
        while True:
            finished = job.done.is_set()
            for record in tail.poll():
                writer.write(encode_line(
                    {"event": "progress", "record": record.to_json_obj()}))
            await writer.drain()
            if finished:
                break
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(job.done.wait(),
                                       self.config.poll_interval)
        end: dict[str, Any] = {"event": "end", "state": job.state,
                               "key": job.key}
        if job.error:
            end["failure"] = job.error
        writer.write(encode_line(end))
        await writer.drain()

"""A background-thread server harness for tests and benchmarks.

pytest functions are synchronous, so the harness runs the whole asyncio
server on a dedicated thread with its own event loop; test code talks
to it through the blocking :class:`~repro.serve.client.ServeClient`
exactly as an external process would.  The context-manager form drains
and joins on exit:

    with ServerHarness(ServeConfig(cache_dir=tmp)) as harness:
        with harness.client() as client:
            client.run({"kind": "scenario", "preset": "dc-baseline"})
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable

from .client import ServeClient
from .server import JobServer, ServeConfig

__all__ = ["ServerHarness"]


class ServerHarness:
    """Runs one :class:`~repro.serve.server.JobServer` on its own loop."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.server: JobServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ServerHarness":
        self._thread = threading.Thread(
            target=self._run, name="serve-harness", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        return self

    def stop(self) -> None:
        """Drain gracefully and join the server thread."""
        loop = self._loop
        if loop is not None and loop.is_running():
            try:
                loop.call_soon_threadsafe(self.server.begin_drain)
            except RuntimeError:
                pass  # loop already closing
        if self._thread is not None:
            self._thread.join(timeout=60.0)

    def __enter__(self) -> "ServerHarness":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surfaced via start()
            self._startup_error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = JobServer(self.config)
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        self._ready.set()
        await self.server.run()

    # -- access -------------------------------------------------------------

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    def client(self, **kwargs: Any) -> ServeClient:
        """A fresh blocking client connected to this server."""
        return ServeClient(self.host, self.port, **kwargs)

    def call_in_loop(self, fn: Callable[[], Any],
                     timeout: float = 30.0) -> Any:
        """Run ``fn()`` on the server's event loop thread and return
        its value — for poking server internals mid-test."""
        assert self._loop is not None or self.server is not None
        loop = self._loop
        if loop is None:
            loop = asyncio.get_event_loop()  # pragma: no cover
        done = threading.Event()
        box: list[Any] = [None, None]

        def call() -> None:
            try:
                box[0] = fn()
            except BaseException as exc:
                box[1] = exc
            done.set()

        loop.call_soon_threadsafe(call)
        if not done.wait(timeout):
            raise TimeoutError("call_in_loop timed out")
        if box[1] is not None:
            raise box[1]
        return box[0]
